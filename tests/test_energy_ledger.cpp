// Energy attribution ledger: unit behavior, the conservation invariant
// against the EnergyMeter across the full knob matrix, collapsed-stack
// export, and the sweep-level attribution/phase aggregates' bit-identity
// across --jobs (the PR-2 determinism contract extended to observability).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/runner.hpp"
#include "obs/energy_ledger.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/report.hpp"
#include "obs/stream_sink.hpp"
#include "radio/graph_generators.hpp"
#include "verify/experiment.hpp"

namespace emis {
namespace {

// --- EnergyLedger units ----------------------------------------------------

TEST(EnergyLedger, ChargesLandUnderCurrentKey) {
  obs::EnergyLedger ledger(3);
  ledger.ChargeListen(0);  // before any phase: unattributed
  ledger.SetPhase("luby-phase 0");
  ledger.ChargeTransmit(0);
  ledger.ChargeListen(1);
  ledger.SetSub("competition");
  ledger.ChargeListen(1);
  ledger.SetSub({});               // back to phase level
  ledger.ChargeTransmit(2);
  ledger.SetPhase("luby-phase 1"); // clears the sub context too
  ledger.ChargeListen(2);

  const auto table = ledger.Table();
  ASSERT_EQ(table.size(), 4u);
  // First-charge order: unattributed, phase 0, competition, phase 1.
  EXPECT_EQ(table[0].phase, "");
  EXPECT_EQ(table[0].listen_rounds, 1u);
  EXPECT_EQ(table[1].phase, "luby-phase 0");
  EXPECT_EQ(table[1].sub, "");
  EXPECT_EQ(table[1].transmit_rounds, 2u);
  EXPECT_EQ(table[1].listen_rounds, 1u);
  EXPECT_EQ(table[1].nodes_charged, 3u);
  EXPECT_EQ(table[2].phase, "luby-phase 0");
  EXPECT_EQ(table[2].sub, "competition");
  EXPECT_EQ(table[2].listen_rounds, 1u);
  EXPECT_EQ(table[2].nodes_charged, 1u);
  EXPECT_EQ(table[3].phase, "luby-phase 1");
  EXPECT_EQ(table[3].listen_rounds, 1u);

  // Per-node attributed totals cover every charge.
  EXPECT_EQ(ledger.AttributedTransmit(0), 1u);
  EXPECT_EQ(ledger.AttributedListen(0), 1u);
  EXPECT_EQ(ledger.AttributedListen(1), 2u);
  EXPECT_EQ(ledger.AttributedTransmit(2), 1u);
  EXPECT_EQ(ledger.AttributedListen(2), 1u);
}

TEST(EnergyLedger, PercentilesMatchMeterConvention) {
  // Nodes charged 1, 2, 3, 4 listen rounds under one key: nearest-rank with
  // idx = q/100 * (size-1) + 0.5, the EnergyMeter::PercentileAwake rule.
  obs::EnergyLedger ledger(4);
  ledger.SetPhase("p");
  for (NodeId v = 0; v < 4; ++v) {
    for (NodeId c = 0; c <= v; ++c) ledger.ChargeListen(v);
  }
  const auto table = ledger.Table();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].max_awake, 4u);
  EXPECT_EQ(table[0].p50_awake, 3u);  // idx = 0.5*3 + 0.5 = 2 -> awake[2]
  EXPECT_EQ(table[0].p90_awake, 4u);
  EXPECT_EQ(table[0].p99_awake, 4u);
}

TEST(EnergyLedger, RevisitedKeyFoldsPerNode) {
  // A node charged under p, then q, then p again must count once in p's
  // nodes_charged and with its combined total in the distribution.
  obs::EnergyLedger ledger(1);
  ledger.SetPhase("p");
  ledger.ChargeListen(0);
  ledger.SetPhase("q");
  ledger.ChargeListen(0);
  ledger.SetPhase("p");
  ledger.ChargeListen(0);
  const auto table = ledger.Table();
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table[0].phase, "p");
  EXPECT_EQ(table[0].listen_rounds, 2u);
  EXPECT_EQ(table[0].nodes_charged, 1u);
  EXPECT_EQ(table[0].max_awake, 2u);
  EXPECT_EQ(ledger.NumKeys(), 2u);
}

TEST(EnergyLedger, WriteCollapsedEmitsFlamegraphLines) {
  obs::EnergyLedger ledger(2);
  ledger.ChargeListen(0);
  ledger.SetPhase("luby-phase 0");
  ledger.ChargeTransmit(0);
  ledger.SetSub("competition");
  ledger.ChargeListen(1);
  ledger.ChargeListen(1);
  std::ostringstream out;
  ledger.WriteCollapsed(out, "cd");
  EXPECT_EQ(out.str(),
            "cd;(unattributed) 1\n"
            "cd;luby-phase 0 1\n"
            "cd;luby-phase 0;competition 2\n");
}

TEST(EnergyLedger, ClearResets) {
  obs::EnergyLedger ledger(2);
  ledger.SetPhase("p");
  ledger.ChargeTransmit(0);
  ledger.Clear();
  EXPECT_EQ(ledger.NumKeys(), 0u);
  EXPECT_TRUE(ledger.Table().empty());
  EXPECT_EQ(ledger.AttributedTransmit(0), 0u);
  ledger.ChargeListen(1);  // fresh context: lands unattributed
  ASSERT_EQ(ledger.Table().size(), 1u);
  EXPECT_EQ(ledger.Table()[0].phase, "");
}

TEST(AttributionTable, MergesKeyedSums) {
  obs::EnergyLedger a(2);
  a.SetPhase("p");
  a.ChargeTransmit(0);
  a.ChargeListen(1);
  obs::EnergyLedger b(2);
  b.SetPhase("p");
  b.ChargeListen(0);
  b.SetPhase("q");
  b.ChargeListen(0);

  obs::AttributionTable first;
  first.Accumulate(a);
  obs::AttributionTable second;
  second.Accumulate(b);
  first.MergeFrom(second);

  const auto& rows = first.Rows();
  ASSERT_EQ(rows.size(), 2u);
  const auto& p = rows.at({"p", ""});
  EXPECT_EQ(p.transmit_rounds, 1u);
  EXPECT_EQ(p.listen_rounds, 2u);
  EXPECT_EQ(p.nodes_charged, 3u);  // 2 nodes in trial a + 1 in trial b
  EXPECT_EQ(p.trials, 2u);
  EXPECT_EQ(rows.at({"q", ""}).trials, 1u);
  EXPECT_FALSE(first.ToText().empty());
}

// --- Conservation against the EnergyMeter ----------------------------------

/// Σ over keys of per-node attributed charges must equal the EnergyMeter's
/// per-node entries exactly — for every core, loss rate, resolution mode and
/// compaction setting of the existing knob matrix. The ledger charges beside
/// the meter in the scheduler, so a violation means the wiring regressed.
TEST(EnergyLedger, ConservationAcrossKnobMatrix) {
  Rng rng(2026);
  const Graph g = gen::ErdosRenyi(48, 0.12, rng);
  for (MisAlgorithm algorithm :
       {MisAlgorithm::kCd, MisAlgorithm::kNoCd, MisAlgorithm::kNoCdDaviesProfile,
        MisAlgorithm::kNoCdUnknownDelta, MisAlgorithm::kNoCdRoundEfficient}) {
    for (double loss : {0.0, 0.3}) {
      for (bool compaction : {true, false}) {
        for (ChannelResolution resolution :
             {ChannelResolution::kAuto, ChannelResolution::kPush,
              ChannelResolution::kPull}) {
          obs::PhaseTimeline timeline;
          obs::EnergyLedger ledger(g.NumNodes());
          MisRunConfig cfg;
          cfg.algorithm = algorithm;
          cfg.seed = 7;
          cfg.link_loss = loss;
          cfg.resolution = resolution;
          cfg.compaction = compaction;
          cfg.timeline = &timeline;
          cfg.ledger = &ledger;
          const MisRunResult r = RunMis(g, cfg);
          const std::string what = std::string(ToString(algorithm)) + " loss " +
                                   std::to_string(loss) + " compaction " +
                                   std::to_string(compaction) + " resolution " +
                                   std::to_string(static_cast<int>(resolution));
          for (NodeId v = 0; v < g.NumNodes(); ++v) {
            EXPECT_EQ(ledger.AttributedTransmit(v),
                      r.energy.Of(v).transmit_rounds)
                << what << " node " << v;
            EXPECT_EQ(ledger.AttributedListen(v), r.energy.Of(v).listen_rounds)
                << what << " node " << v;
          }
          std::uint64_t tx = 0;
          std::uint64_t lx = 0;
          for (const obs::AttributionRow& row : ledger.Table()) {
            tx += row.transmit_rounds;
            lx += row.listen_rounds;
          }
          EXPECT_EQ(tx, r.energy.TotalTransmit()) << what;
          EXPECT_EQ(lx, r.energy.TotalListen()) << what;
        }
      }
    }
  }
}

TEST(EnergyLedger, AnnotatedRunsAttributeMostEnergyToPhases) {
  Rng rng(11);
  const Graph g = gen::ErdosRenyi(64, 0.1, rng);
  obs::PhaseTimeline timeline;
  obs::EnergyLedger ledger(g.NumNodes());
  const MisRunResult r = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = 3,
                                    .timeline = &timeline, .ledger = &ledger});
  ASSERT_TRUE(r.Valid());
  std::uint64_t attributed = 0;
  for (const obs::AttributionRow& row : ledger.Table()) {
    if (!row.phase.empty()) attributed += row.AwakeRounds();
  }
  // mis_cd annotates every Luby phase, so the unattributed remainder is
  // at most bookkeeping rounds around the annotated region.
  EXPECT_GT(attributed, 0u);
  EXPECT_GE(2 * attributed, r.energy.TotalAwake());
}

// --- Report integration ----------------------------------------------------

TEST(EnergyLedger, ReportBlockConservesTotalsAndValidates) {
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(56, 0.1, rng);
  obs::MetricsRegistry metrics;
  obs::PhaseTimeline timeline;
  obs::EnergyLedger ledger(g.NumNodes());
  const MisRunResult r =
      RunMis(g, {.algorithm = MisAlgorithm::kNoCd, .seed = 2,
                 .metrics = &metrics, .timeline = &timeline, .ledger = &ledger});
  ASSERT_TRUE(r.Valid());
  const obs::JsonValue doc =
      obs::BuildRunReport({.algorithm = "nocd",
                           .graph = "er-test",
                           .preset = "practical",
                           .seed = 2,
                           .nodes = g.NumNodes(),
                           .edges = g.NumEdges(),
                           .max_degree = g.MaxDegree(),
                           .valid_mis = r.Valid(),
                           .mis_size = r.MisSize(),
                           .stats = &r.stats,
                           .energy = &r.energy,
                           .timeline = &timeline,
                           .metrics = &metrics,
                           .ledger = &ledger});
  EXPECT_EQ(obs::ValidateRunReport(doc), "");
  const obs::JsonValue* attribution = doc.Find("energy_attribution");
  ASSERT_NE(attribution, nullptr);
  EXPECT_DOUBLE_EQ(attribution->Find("total_transmit")->AsNumber(),
                   static_cast<double>(r.energy.TotalTransmit()));
  EXPECT_DOUBLE_EQ(attribution->Find("total_listen")->AsNumber(),
                   static_cast<double>(r.energy.TotalListen()));
  double key_awake = 0;
  for (const obs::JsonValue& k : attribution->Find("keys")->Items()) {
    key_awake += k.Find("awake_rounds")->AsNumber();
  }
  EXPECT_DOUBLE_EQ(key_awake, static_cast<double>(r.energy.TotalAwake()));

  // A present-but-malformed block must be rejected. (Set() appends, so the
  // replacement has to rebuild the document entry by entry.)
  obs::JsonValue broken = obs::JsonValue::MakeObject();
  for (const auto& [k, v] : doc.Entries()) {
    if (k == "energy_attribution") {
      broken.Set(k, obs::JsonValue("not an object"));
    } else {
      broken.Set(k, v);
    }
  }
  EXPECT_NE(obs::ValidateRunReport(broken), "");
}

// --- Sweep aggregates: --jobs determinism ----------------------------------

SweepConfig SmallSweep() {
  SweepConfig cfg;
  cfg.algorithm = MisAlgorithm::kNoCd;  // exercises sub-phase keys too
  cfg.factory = families::SparseErdosRenyi(6.0);
  cfg.sizes = {48, 64};
  cfg.seeds_per_size = 3;
  cfg.seed_base = 7;
  return cfg;
}

TEST(SweepObservability, AggregatesAndTelemetryBitIdenticalAcrossJobs) {
  obs::PhaseAggregate phases1;
  obs::AttributionTable attribution1;
  std::ostringstream telemetry1;
  SweepConfig cfg1 = SmallSweep();
  cfg1.phases = &phases1;
  cfg1.attribution = &attribution1;
  cfg1.telemetry_out = &telemetry1;
  cfg1.telemetry_config.heartbeat_every = 4;
  const auto serial = RunSweep(cfg1, 1);

  obs::PhaseAggregate phases8;
  obs::AttributionTable attribution8;
  std::ostringstream telemetry8;
  SweepConfig cfg8 = SmallSweep();
  cfg8.phases = &phases8;
  cfg8.attribution = &attribution8;
  cfg8.telemetry_out = &telemetry8;
  cfg8.telemetry_config.heartbeat_every = 4;
  const auto parallel = RunSweep(cfg8, 8);

  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_FALSE(phases1.Empty());
  EXPECT_FALSE(attribution1.Empty());
  EXPECT_EQ(phases1.ToText(), phases8.ToText());
  EXPECT_EQ(attribution1.ToText(), attribution8.ToText());
  EXPECT_FALSE(telemetry1.str().empty());
  EXPECT_EQ(telemetry1.str(), telemetry8.str());

  // The stream is valid NDJSON framed by per-trial run_begin/run_end pairs.
  std::istringstream lines(telemetry1.str());
  std::string line;
  std::uint64_t begins = 0;
  std::uint64_t ends = 0;
  while (std::getline(lines, line)) {
    const obs::JsonValue event = obs::ParseJson(line);
    const std::string& kind = event.Find("event")->AsString();
    begins += kind == "run_begin";
    ends += kind == "run_end";
    if (kind == "run_end") {
      EXPECT_DOUBLE_EQ(event.Find("dropped_events")->AsNumber(), 0.0);
    }
  }
  EXPECT_EQ(begins, 6u);  // 2 sizes x 3 seeds
  EXPECT_EQ(ends, 6u);
}

}  // namespace
}  // namespace emis
