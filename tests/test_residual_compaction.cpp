// Residual-graph compaction: per-round channel cost must track live edges
// while staying invisible to the radio semantics. Properties checked here:
//   * ResidualGraph bookkeeping — live degrees/edges, the half-dead row
//     compaction trigger, stable (sorted) scan-row order, retire-twice
//     rejection;
//   * ResolveDirection in isolation — forced overrides win, kAuto takes the
//     strictly cheaper side and breaks ties toward push;
//   * the scheduler's cost model sums *live* degrees once nodes retire
//     (companion to test_channel_direction's static-cost-model test);
//   * RunMis receptions, decisions and energy are bit-identical across
//     compaction on/off x push/pull/auto x loss {0, 0.3} (golden trace
//     hashes);
//   * the payload tie-break contract: a reception's payload is observable
//     only when exactly one transmitter survives; >= 2 survivors perceive as
//     collision/silence/beep with payload 0, on seed and compacted rows
//     alike, in both directions;
//   * retirement lifecycle — a retired node that transmits or listens trips
//     an invariant, finishing implies retirement (ActiveCount reaches 0),
//     and retiring is still legal (sleep + finish) afterwards;
//   * parallel sweeps stay bit-identical across job counts with compaction
//     on, and compaction on/off sweeps produce identical points;
//   * the graph.compactions / graph.edges_reclaimed / chan.live_edges
//     telemetry lands in the caller's MetricsRegistry.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/contracts.hpp"
#include "core/runner.hpp"
#include "obs/metrics.hpp"
#include "radio/channel.hpp"
#include "radio/graph.hpp"
#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"
#include "radio/trace.hpp"
#include "verify/experiment.hpp"

namespace emis {
namespace {

// --- ResidualGraph unit tests ---------------------------------------------

TEST(ResidualGraph, TracksLiveDegreesAndEdges) {
  const Graph g = gen::Star(5);  // hub 0, leaves 1..4
  ResidualGraph r(g);
  EXPECT_EQ(r.ActiveCount(), 5u);
  EXPECT_EQ(r.LiveEdges(), g.NumEdges());  // undirected live-edge count
  EXPECT_EQ(r.LiveDegree(0), 4u);
  EXPECT_EQ(r.LiveDegree(1), 1u);
  EXPECT_TRUE(r.Active(3));

  r.Retire(1);
  EXPECT_FALSE(r.Active(1));
  EXPECT_EQ(r.ActiveCount(), 4u);
  EXPECT_EQ(r.LiveDegree(0), 3u);
  EXPECT_EQ(r.LiveDegree(1), 0u);
  // The hub--leaf edge died with its first endpoint.
  EXPECT_EQ(r.LiveEdges(), 3u);
  EXPECT_TRUE(r.ScanRow(1).empty());
}

TEST(ResidualGraph, CompactsRowOnceHalfDead) {
  const Graph g = gen::Star(5);  // hub row: [1, 2, 3, 4]
  ResidualGraph r(g);

  // One dead entry out of four: the prefix keeps the dead slot (a scan
  // skips it), no compaction yet.
  r.Retire(2);
  EXPECT_EQ(r.Compactions(), 0u);
  ASSERT_EQ(r.ScanRow(0).size(), 4u);

  // Second death crosses the half-dead threshold: the hub row compacts in
  // place to exactly its live neighbors, preserving sorted CSR order.
  r.Retire(4);
  EXPECT_EQ(r.Compactions(), 1u);
  const std::span<const NodeId> row = r.ScanRow(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], 1u);
  EXPECT_EQ(row[1], 3u);
  EXPECT_EQ(r.LiveDegree(0), 2u);
  EXPECT_GE(r.EdgesReclaimed(), 2u);
}

TEST(ResidualGraph, ScanRowPrefixCoversLiveNeighborsInOrder) {
  Rng rng(99);
  const Graph g = gen::ErdosRenyi(48, 0.2, rng);
  ResidualGraph r(g);
  // Retire every third node and keep checking the overlay's core invariant:
  // each scan row is a sorted supersequence of the live neighborhood.
  for (NodeId v = 0; v < g.NumNodes(); v += 3) r.Retire(v);
  std::uint64_t live_edges = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (!r.Active(v)) continue;
    std::vector<NodeId> live;
    for (NodeId w : g.Neighbors(v)) {
      if (r.Active(w)) live.push_back(w);
    }
    std::vector<NodeId> scanned;
    for (NodeId w : r.ScanRow(v)) {
      if (r.Active(w)) scanned.push_back(w);
    }
    EXPECT_EQ(scanned, live) << "node " << v;
    EXPECT_EQ(r.LiveDegree(v), live.size()) << "node " << v;
    live_edges += live.size();
  }
  // Each undirected live edge was counted from both endpoints.
  EXPECT_EQ(r.LiveEdges(), live_edges / 2);
}

TEST(ResidualGraph, RetireTwiceThrows) {
  const Graph g = gen::Path(3);
  ResidualGraph r(g);
  r.Retire(1);
  EXPECT_THROW(r.Retire(1), PreconditionError);
  EXPECT_THROW(r.Retire(3), PreconditionError);  // out of range
}

// --- ResolveDirection (the cost model in isolation) -----------------------

TEST(ResolveDirection, ForcedOverridesWinUnconditionally) {
  EXPECT_EQ(ResolveDirection(ChannelResolution::kPush, 1, 1000),
            ChannelDirection::kPush);
  EXPECT_EQ(ResolveDirection(ChannelResolution::kPull, 1000, 1),
            ChannelDirection::kPull);
}

TEST(ResolveDirection, AutoTakesCheaperSideTiesToPush) {
  EXPECT_EQ(ResolveDirection(ChannelResolution::kAuto, 10, 3),
            ChannelDirection::kPull);
  EXPECT_EQ(ResolveDirection(ChannelResolution::kAuto, 3, 10),
            ChannelDirection::kPush);
  EXPECT_EQ(ResolveDirection(ChannelResolution::kAuto, 7, 7),
            ChannelDirection::kPush);
  EXPECT_EQ(ResolveDirection(ChannelResolution::kAuto, 0, 0),
            ChannelDirection::kPush);
}

// --- Scheduler cost model on live degrees ---------------------------------

proc::Task<void> TransmitEachRound(NodeApi api, int rounds) {
  for (int i = 0; i < rounds; ++i) co_await api.Transmit(1);
}

proc::Task<void> ListenEachRound(NodeApi api, int rounds) {
  for (int i = 0; i < rounds; ++i) (void)co_await api.Listen();
}

proc::Task<void> FinishImmediately(NodeApi) { co_return; }

TEST(ResidualCompaction, CostModelSumsLiveDegrees) {
  // Star(64): the hub transmits, leaf 1 listens, leaves 2..63 finish at
  // spawn and are auto-retired. With the static cost model pull would win
  // (1 listener-degree-1 vs hub-degree-63); on live degrees the hub's
  // degree collapses to 1, the sums tie, and auto resolves push. This is
  // the intended behavior change pinned the other way (compaction off) in
  // test_channel_direction.cpp's AutoPullsWhenListenersAreCheap.
  const Graph g = gen::Star(64);
  obs::MetricsRegistry metrics;
  Scheduler sched(g, {.metrics = &metrics}, 1);
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return TransmitEachRound(api, 4);
    if (api.Id() == 1) return ListenEachRound(api, 4);
    return FinishImmediately(api);
  });
  sched.Run();
  EXPECT_EQ(metrics.GetCounter("chan.push_rounds").Value(), 4u);
  EXPECT_EQ(metrics.GetCounter("chan.pull_rounds").Value(), 0u);
}

// --- Reception equivalence: compaction is invisible to the radio ----------

/// FNV-1a over every traced action and reception — any divergence in who
/// acted, what was heard, or which payload was decoded changes the hash.
class HashTrace final : public TraceSink {
 public:
  void OnEvent(const TraceEvent& e) override {
    Mix(e.round);
    Mix(e.node);
    Mix(static_cast<std::uint64_t>(e.action));
    Mix(e.payload);
    Mix(static_cast<std::uint64_t>(e.reception.kind));
    Mix(e.reception.payload);
  }
  std::uint64_t Value() const noexcept { return hash_; }

 private:
  void Mix(std::uint64_t x) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (x >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;
    }
  }
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

struct RunFingerprint {
  std::vector<MisStatus> status;
  Round rounds = 0;
  std::uint64_t total_awake = 0;
  std::uint64_t max_awake = 0;
  std::uint64_t trace_hash = 0;

  friend bool operator==(const RunFingerprint&, const RunFingerprint&) = default;
};

RunFingerprint Fingerprint(const Graph& g, MisAlgorithm algorithm,
                           bool compaction, ChannelResolution resolution,
                           double loss) {
  HashTrace trace;
  MisRunConfig cfg;
  cfg.algorithm = algorithm;
  cfg.seed = 7;
  cfg.trace = &trace;
  cfg.link_loss = loss;
  cfg.resolution = resolution;
  cfg.compaction = compaction;
  const MisRunResult r = RunMis(g, cfg);
  EXPECT_TRUE(r.Valid() || loss > 0.0);
  return {r.status, r.stats.rounds_used, r.energy.TotalAwake(),
          r.energy.MaxAwake(), trace.Value()};
}

TEST(ResidualCompaction, ReceptionsBitIdenticalAcrossKnobs) {
  Rng rng(2026);
  const Graph g = gen::ErdosRenyi(72, 0.1, rng);
  for (MisAlgorithm algorithm : {MisAlgorithm::kCd, MisAlgorithm::kNoCd}) {
    for (double loss : {0.0, 0.3}) {
      const RunFingerprint base = Fingerprint(
          g, algorithm, /*compaction=*/true, ChannelResolution::kAuto, loss);
      for (bool compaction : {true, false}) {
        for (ChannelResolution resolution :
             {ChannelResolution::kAuto, ChannelResolution::kPush,
              ChannelResolution::kPull}) {
          const RunFingerprint got =
              Fingerprint(g, algorithm, compaction, resolution, loss);
          EXPECT_EQ(got, base)
              << ToString(algorithm) << " loss " << loss << " compaction "
              << compaction << " resolution " << static_cast<int>(resolution);
        }
      }
    }
  }
}

TEST(ResidualCompaction, GoldenTraceHashes) {
  // Pinned fingerprints: a change to retirement timing, scan order or the
  // loss stream shows up here as a golden mismatch even if on/off still
  // agree with each other.
  Rng rng(424242);
  const Graph g = gen::RandomGeometric(64, 0.22, rng);
  const RunFingerprint cd = Fingerprint(g, MisAlgorithm::kCd, true,
                                        ChannelResolution::kAuto, 0.0);
  const RunFingerprint cd_lossy = Fingerprint(g, MisAlgorithm::kCd, true,
                                              ChannelResolution::kAuto, 0.3);
  const RunFingerprint nocd = Fingerprint(g, MisAlgorithm::kNoCd, true,
                                          ChannelResolution::kAuto, 0.0);
  EXPECT_EQ(cd.trace_hash, 0xB54A7384D88D1E30ULL);
  EXPECT_EQ(cd_lossy.trace_hash, 0x0FA217956D3014ABULL);
  EXPECT_EQ(nocd.trace_hash, 0xE8D014E39E2297D4ULL);
}

// --- Payload tie-break contract (channel.hpp "Payload tie-break") ----------

TEST(ResidualCompaction, PayloadObservableOnlyForLoneTransmitter) {
  const Graph g = gen::Star(5);  // hub 0, leaves 1..4
  for (ChannelDirection dir : {ChannelDirection::kPush, ChannelDirection::kPull}) {
    for (ChannelModel model :
         {ChannelModel::kCd, ChannelModel::kNoCd, ChannelModel::kBeeping}) {
      Channel ch(g, model);
      // Two survivors: the perceived payload is 0 regardless of which
      // transmitter's payload an implementation kept internally (push keeps
      // the first delivery, pull the last scanned CSR neighbor — both
      // unobservable by contract).
      ch.BeginRound(dir);
      ch.AddTransmitter(1, 0xAAA);
      ch.AddTransmitter(3, 0xBBB);
      Reception two = ch.ResolveListener(0);
      EXPECT_EQ(two.payload, 0u);
      switch (model) {
        case ChannelModel::kCd:
          EXPECT_EQ(two.kind, ReceptionKind::kCollision);
          break;
        case ChannelModel::kNoCd:
          EXPECT_EQ(two.kind, ReceptionKind::kSilence);
          break;
        case ChannelModel::kBeeping:
          EXPECT_EQ(two.kind, ReceptionKind::kBeep);
          break;
      }
      // One survivor: the exact payload comes through (beeping stays unary).
      ch.BeginRound(dir);
      ch.AddTransmitter(3, 0xBBB);
      Reception one = ch.ResolveListener(0);
      if (model == ChannelModel::kBeeping) {
        EXPECT_EQ(one.kind, ReceptionKind::kBeep);
      } else {
        EXPECT_EQ(one.kind, ReceptionKind::kMessage);
        EXPECT_EQ(one.payload, 0xBBBu);
      }
    }
  }
}

TEST(ResidualCompaction, TieBreakContractHoldsOnCompactedRows) {
  const Graph g = gen::Star(5);
  ResidualGraph residual(g);
  residual.Retire(1);
  residual.Retire(2);  // hub row compacts to [3, 4]
  ASSERT_EQ(residual.Compactions(), 1u);
  for (ChannelDirection dir : {ChannelDirection::kPush, ChannelDirection::kPull}) {
    Channel ch(g, ChannelModel::kCd);
    ch.AttachResidual(&residual);
    ch.BeginRound(dir);
    ch.AddTransmitter(3, 0x333);
    ch.AddTransmitter(4, 0x444);
    const Reception two = ch.ResolveListener(0);
    EXPECT_EQ(two.kind, ReceptionKind::kCollision);
    EXPECT_EQ(two.payload, 0u);
    EXPECT_EQ(ch.TransmittingNeighbors(0), 2u);

    ch.BeginRound(dir);
    ch.AddTransmitter(4, 0x444);
    const Reception one = ch.ResolveListener(0);
    EXPECT_EQ(one.kind, ReceptionKind::kMessage);
    EXPECT_EQ(one.payload, 0x444u);
  }
}

// --- Retirement lifecycle --------------------------------------------------

proc::Task<void> RetireThenTransmit(NodeApi api) {
  api.Retire();
  co_await api.Transmit(1);
}

proc::Task<void> RetireThenSleep(NodeApi api) {
  api.Retire();
  co_await api.SleepFor(3);
}

TEST(ResidualCompaction, RetiredNodeActingTripsInvariant) {
  const Graph g = gen::Path(2);
  Scheduler sched(g, {}, 1);
  // The retire request is consumed before the resume slice's action is
  // filed, so the transmit submitted alongside it is rejected.
  EXPECT_THROW(
      sched.Spawn([](NodeApi api) -> proc::Task<void> {
        return RetireThenTransmit(api);
      }),
      InvariantError);
}

TEST(ResidualCompaction, RetiredNodeMaySleepAndFinish) {
  const Graph g = gen::Path(2);
  Scheduler sched(g, {}, 1);
  sched.Spawn([](NodeApi api) -> proc::Task<void> {
    return RetireThenSleep(api);
  });
  sched.Run();
  EXPECT_TRUE(sched.AllFinished());
  ASSERT_NE(sched.Residual(), nullptr);
  EXPECT_EQ(sched.Residual()->ActiveCount(), 0u);
}

TEST(ResidualCompaction, FinishingImpliesRetirement) {
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(40, 0.15, rng);
  MisRunConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.seed = 3;
  const MisRunResult r = RunMis(g, cfg);
  EXPECT_TRUE(r.Valid());
  // RunMis tears its scheduler down, so observe via a direct run instead.
  Scheduler sched(g, {}, 3);
  sched.Spawn([](NodeApi api) -> proc::Task<void> {
    return TransmitEachRound(api, 2);
  });
  sched.Run();
  ASSERT_NE(sched.Residual(), nullptr);
  EXPECT_EQ(sched.Residual()->ActiveCount(), 0u);
  EXPECT_EQ(sched.Residual()->LiveEdges(), 0u);
}

TEST(ResidualCompaction, CompactionOffDisablesOverlayButKeepsInvariant) {
  const Graph g = gen::Path(2);
  Scheduler sched(g, {.compaction = false}, 1);
  EXPECT_EQ(sched.Residual(), nullptr);
  EXPECT_THROW(
      sched.Spawn([](NodeApi api) -> proc::Task<void> {
        return RetireThenTransmit(api);
      }),
      InvariantError);
}

// --- Parallel sweeps and telemetry -----------------------------------------

void ExpectSamePoints(const std::vector<SweepPoint>& a,
                      const std::vector<SweepPoint>& b) {
  const auto same = [](const Summary& x, const Summary& y) {
    return x.count == y.count && x.mean == y.mean && x.m2 == y.m2 &&
           x.min == y.min && x.max == y.max;
  };
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].failures, b[i].failures);
    EXPECT_TRUE(same(a[i].max_energy, b[i].max_energy)) << "point " << i;
    EXPECT_TRUE(same(a[i].avg_energy, b[i].avg_energy)) << "point " << i;
    EXPECT_TRUE(same(a[i].rounds, b[i].rounds)) << "point " << i;
    EXPECT_TRUE(same(a[i].mis_size, b[i].mis_size)) << "point " << i;
  }
}

TEST(ResidualCompaction, SweepsDeterministicAcrossJobsAndKnob) {
  SweepConfig cfg;
  cfg.algorithm = MisAlgorithm::kNoCd;
  cfg.factory = families::SparseErdosRenyi(6.0);
  cfg.sizes = {48, 96};
  cfg.seeds_per_size = 4;
  cfg.compaction = true;
  const std::vector<SweepPoint> serial = RunSweep(cfg);
  const std::vector<SweepPoint> threaded = RunSweep(cfg, 4, nullptr);
  ExpectSamePoints(serial, threaded);
  SweepConfig off = cfg;
  off.compaction = false;
  ExpectSamePoints(serial, RunSweep(off, 4, nullptr));
}

TEST(ResidualCompaction, TelemetryReachesRegistry) {
  Rng rng(11);
  const Graph g = gen::ErdosRenyi(96, 0.12, rng);
  obs::MetricsRegistry metrics;
  MisRunConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.seed = 9;
  cfg.metrics = &metrics;
  const MisRunResult r = RunMis(g, cfg);
  EXPECT_TRUE(r.Valid());
  // Every node decided, so the residual drained to zero live edges, and the
  // dense seed rows crossed the half-dead threshold along the way.
  EXPECT_EQ(metrics.GetGauge("chan.live_edges").Value(), 0.0);
  EXPECT_GT(metrics.GetCounter("graph.compactions").Value(), 0u);
  EXPECT_EQ(metrics.GetCounter("graph.edges_reclaimed").Value(),
            2 * g.NumEdges());
}

}  // namespace
}  // namespace emis
