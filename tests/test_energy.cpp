#include "radio/energy.hpp"

#include <gtest/gtest.h>

namespace emis {
namespace {

TEST(EnergyMeter, StartsAtZero) {
  EnergyMeter m(4);
  EXPECT_EQ(m.MaxAwake(), 0u);
  EXPECT_EQ(m.AverageAwake(), 0.0);
  EXPECT_EQ(m.TotalAwake(), 0u);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(m.Of(v).Awake(), 0u);
}

TEST(EnergyMeter, ChargesSeparately) {
  EnergyMeter m(2);
  m.ChargeTransmit(0);
  m.ChargeTransmit(0);
  m.ChargeListen(0);
  m.ChargeListen(1);
  EXPECT_EQ(m.Of(0).transmit_rounds, 2u);
  EXPECT_EQ(m.Of(0).listen_rounds, 1u);
  EXPECT_EQ(m.Of(0).Awake(), 3u);
  EXPECT_EQ(m.Of(1).Awake(), 1u);
  EXPECT_EQ(m.TotalTransmit(), 2u);
  EXPECT_EQ(m.TotalListen(), 2u);
}

TEST(EnergyMeter, MaxAndAverage) {
  EnergyMeter m(4);
  for (int i = 0; i < 10; ++i) m.ChargeListen(2);
  m.ChargeTransmit(0);
  EXPECT_EQ(m.MaxAwake(), 10u);
  EXPECT_DOUBLE_EQ(m.AverageAwake(), 11.0 / 4.0);
  EXPECT_EQ(m.TotalAwake(), 11u);
}

TEST(EnergyMeter, Percentiles) {
  EnergyMeter m(5);
  // Awake counts: 0, 1, 2, 3, 4.
  for (NodeId v = 0; v < 5; ++v) {
    for (NodeId i = 0; i < v; ++i) m.ChargeListen(v);
  }
  EXPECT_EQ(m.PercentileAwake(0), 0u);
  EXPECT_EQ(m.PercentileAwake(50), 2u);
  EXPECT_EQ(m.PercentileAwake(100), 4u);
  EXPECT_THROW(m.PercentileAwake(101), PreconditionError);
  EXPECT_THROW(m.PercentileAwake(-1), PreconditionError);
}

TEST(EnergyMeter, OutOfRangeRejected) {
  EnergyMeter m(2);
  EXPECT_THROW(m.Of(2), PreconditionError);
}

TEST(EnergyMeter, EmptyMeter) {
  EnergyMeter m(0);
  EXPECT_EQ(m.MaxAwake(), 0u);
  EXPECT_EQ(m.AverageAwake(), 0.0);
  EXPECT_EQ(m.PercentileAwake(50), 0u);
  EXPECT_EQ(m.PercentileAwake(0), 0u);
  EXPECT_EQ(m.PercentileAwake(100), 0u);
  EXPECT_EQ(m.TotalAwake(), 0u);
}

TEST(EnergyMeter, PercentileSingleNode) {
  EnergyMeter m(1);
  for (int i = 0; i < 7; ++i) m.ChargeListen(0);
  // Every percentile of a one-node meter is that node's awake count.
  EXPECT_EQ(m.PercentileAwake(0), 7u);
  EXPECT_EQ(m.PercentileAwake(50), 7u);
  EXPECT_EQ(m.PercentileAwake(100), 7u);
}

TEST(EnergyMeter, PercentileBoundaryQuantiles) {
  EnergyMeter m(3);
  // Awake counts: 0, 5, 10.
  for (int i = 0; i < 5; ++i) m.ChargeTransmit(1);
  for (int i = 0; i < 10; ++i) m.ChargeListen(2);
  EXPECT_EQ(m.PercentileAwake(0), 0u);
  EXPECT_EQ(m.PercentileAwake(100), 10u);
  // q just inside the range must not throw or index past the end.
  EXPECT_EQ(m.PercentileAwake(99.999), 10u);
  EXPECT_EQ(m.PercentileAwake(0.001), 0u);
}

TEST(EnergyMeter, TotalsStayConsistentWithPerNode) {
  EnergyMeter m(8);
  std::uint64_t expected_tx = 0, expected_ls = 0;
  for (NodeId v = 0; v < 8; ++v) {
    for (NodeId i = 0; i <= v; ++i) {
      if (i % 2 == 0) {
        m.ChargeTransmit(v);
        ++expected_tx;
      } else {
        m.ChargeListen(v);
        ++expected_ls;
      }
    }
  }
  EXPECT_EQ(m.TotalTransmit(), expected_tx);
  EXPECT_EQ(m.TotalListen(), expected_ls);
  std::uint64_t per_node_sum = 0;
  for (NodeId v = 0; v < 8; ++v) per_node_sum += m.Of(v).Awake();
  EXPECT_EQ(m.TotalAwake(), per_node_sum);
}

}  // namespace
}  // namespace emis
