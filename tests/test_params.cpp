// Tests for parameter derivation and the Algorithm 2 phase schedule.
#include "core/params.hpp"

#include <gtest/gtest.h>

namespace emis {
namespace {

TEST(BackoffWindow, Values) {
  EXPECT_EQ(BackoffWindow(0), 1u);
  EXPECT_EQ(BackoffWindow(1), 1u);
  EXPECT_EQ(BackoffWindow(2), 2u);
  EXPECT_EQ(BackoffWindow(3), 3u);
  EXPECT_EQ(BackoffWindow(4), 3u);
  EXPECT_EQ(BackoffWindow(1024), 11u);
}

TEST(BackoffRounds, Product) {
  EXPECT_EQ(BackoffRounds(5, 16), 5u * 5);
  EXPECT_EQ(BackoffRounds(0, 16), 0u);
  EXPECT_EQ(BackoffRounds(3, 1), 3u);
}

TEST(CdParams, LogNFloorsAtOne) {
  EXPECT_EQ(CdParams::LogN(0), 1u);
  EXPECT_EQ(CdParams::LogN(1), 1u);
  EXPECT_EQ(CdParams::LogN(2), 1u);
  EXPECT_EQ(CdParams::LogN(3), 2u);
  EXPECT_EQ(CdParams::LogN(1024), 10u);
  EXPECT_EQ(CdParams::LogN(1025), 11u);
}

TEST(CdParams, PresetsScaleWithLogN) {
  const CdParams small = CdParams::Practical(64);
  const CdParams large = CdParams::Practical(64 * 1024);
  EXPECT_GT(large.luby_phases, small.luby_phases);
  EXPECT_GT(large.rank_bits, small.rank_bits);
  // Doubling the exponent should not double the parameters' ratio more than
  // linearly in log n.
  EXPECT_LE(large.rank_bits, 3 * small.rank_bits);
}

TEST(CdParams, TheoryUsesPaperConstants) {
  const CdParams p = CdParams::Theory(1024);  // log n = 10
  EXPECT_EQ(p.luby_phases, 40u);              // C = 4
  EXPECT_EQ(p.rank_bits, 40u);                // beta = 4
}

TEST(CdParams, PhaseAndTotalRounds) {
  const CdParams p{.luby_phases = 7, .rank_bits = 12};
  EXPECT_EQ(p.PhaseRounds(), 13u);
  EXPECT_EQ(p.TotalRounds(), 91u);
}

TEST(SimCdParams, RoundFormulas) {
  SimCdParams p;
  p.luby_phases = 3;
  p.rank_bits = 5;
  p.reps = 4;
  p.delta = 16;  // window 5
  p.delta_est = 16;
  EXPECT_EQ(p.BittyRounds(), 20u);
  EXPECT_EQ(p.PhaseRounds(), 6u * 20);
  EXPECT_EQ(p.TotalRounds(), 3u * 6 * 20);
}

TEST(NoCdSchedule, OffsetsArePartitioned) {
  const NoCdParams p = NoCdParams::Practical(256, 32);
  const NoCdSchedule s = NoCdSchedule::Of(p);
  EXPECT_EQ(s.competition,
            static_cast<Round>(p.rank_bits) * BackoffRounds(p.deep_reps, p.delta));
  EXPECT_EQ(s.deep_check, BackoffRounds(p.deep_reps, p.delta));
  EXPECT_EQ(s.low_degree, p.low_degree.TotalRounds());
  EXPECT_EQ(s.shallow_check, BackoffRounds(1, p.delta));
  EXPECT_EQ(s.phase,
            s.competition + 2 * s.deep_check + s.low_degree + s.shallow_check);
  // Offset accessors are cumulative.
  EXPECT_EQ(s.CompetitionEnd(), s.competition);
  EXPECT_EQ(s.FirstDeepEnd(), s.competition + s.deep_check);
  EXPECT_EQ(s.SecondDeepEnd(), s.competition + 2 * s.deep_check);
  EXPECT_EQ(s.LowDegreeEnd(), s.competition + 2 * s.deep_check + s.low_degree);
  EXPECT_EQ(s.PhaseEnd(), s.phase);
}

TEST(NoCdParams, LowDegreeSubgraphUsesCommitDegree) {
  const NoCdParams p = NoCdParams::Practical(1024, 600);
  EXPECT_EQ(p.low_degree.delta, p.commit_degree);
  EXPECT_EQ(p.low_degree.delta_est, p.commit_degree);
  EXPECT_EQ(p.low_degree.style, BackoffStyle::kEnergyEfficient);
}

TEST(NoCdParams, TheoryConstantsMatchPaper) {
  const NoCdParams p = NoCdParams::Theory(1 << 10, 64);  // log n = 10
  EXPECT_EQ(p.luby_phases, 1760u);   // C = 4 / log2(64/63) ≈ 176
  EXPECT_EQ(p.rank_bits, 40u);       // beta = 4
  EXPECT_EQ(p.commit_degree, 50u);   // kappa = 5
  EXPECT_EQ(p.deep_reps, 260u);      // (7/8)^k <= n^-5
  EXPECT_EQ(p.delta, 64u);
}

TEST(NoCdParams, RoundComplexityShape) {
  // T_L should be dominated by T_C + T_G and grow polylogarithmically.
  const NoCdParams small = NoCdParams::Practical(1 << 8, 16);
  const NoCdParams large = NoCdParams::Practical(1 << 12, 16);
  const Round tl_small = NoCdSchedule::Of(small).phase;
  const Round tl_large = NoCdSchedule::Of(large).phase;
  EXPECT_GT(tl_large, tl_small);
  EXPECT_LT(tl_large, 30 * tl_small);  // no polynomial blow-up
}

}  // namespace
}  // namespace emis
