#include "verify/experiment.hpp"

#include <gtest/gtest.h>

namespace emis {
namespace {

TEST(Experiment, SweepAggregatesAllRuns) {
  SweepConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.factory = families::SparseErdosRenyi(4.0);
  cfg.sizes = {32, 64};
  cfg.seeds_per_size = 4;
  const auto points = RunSweep(cfg);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& p : points) {
    EXPECT_EQ(p.runs, 4u);
    EXPECT_EQ(p.max_energy.count, 4u);
    EXPECT_GT(p.max_energy.mean, 0.0);
    EXPECT_GT(p.mis_size.mean, 0.0);
    EXPECT_LE(p.failures, p.runs);
  }
  EXPECT_EQ(points[0].n, 32u);
  EXPECT_EQ(points[1].n, 64u);
}

TEST(Experiment, SweepIsDeterministic) {
  SweepConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.factory = families::StarFamily();
  cfg.sizes = {40};
  cfg.seeds_per_size = 3;
  const auto a = RunSweep(cfg);
  const auto b = RunSweep(cfg);
  EXPECT_EQ(a[0].max_energy.mean, b[0].max_energy.mean);
  EXPECT_EQ(a[0].rounds.mean, b[0].rounds.mean);
}

TEST(Experiment, FamiliesProduceExpectedShapes) {
  Rng rng(1);
  const Graph er = families::SparseErdosRenyi(6.0)(300, rng);
  EXPECT_NEAR(2.0 * static_cast<double>(er.NumEdges()) / 300.0, 6.0, 2.0);

  const Graph poly = families::PolynomialDegreeErdosRenyi()(400, rng);
  // Expected degree ~ sqrt(n) = 20.
  EXPECT_GT(poly.MaxDegree(), 10u);

  const Graph udg = families::UnitDisk(5.0)(300, rng);
  EXPECT_GT(udg.NumEdges(), 100u);

  const Graph lb = families::LowerBoundFamily()(64, rng);
  EXPECT_EQ(lb.NumEdges(), 16u);

  EXPECT_EQ(families::StarFamily()(10, rng).MaxDegree(), 9u);
  EXPECT_EQ(families::CompleteFamily()(8, rng).NumEdges(), 28u);
  EXPECT_EQ(families::TreeFamily()(30, rng).NumEdges(), 29u);
}

TEST(Experiment, ExtractorsAlign) {
  SweepConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.factory = families::TreeFamily();
  cfg.sizes = {16, 32, 64};
  cfg.seeds_per_size = 2;
  const auto points = RunSweep(cfg);
  const auto n = Sizes(points);
  const auto e = MeanMaxEnergy(points);
  const auto r = MeanRounds(points);
  ASSERT_EQ(n.size(), 3u);
  ASSERT_EQ(e.size(), 3u);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(n[2], 64.0);
  for (double v : e) EXPECT_GT(v, 0.0);
  for (double v : r) EXPECT_GT(v, 0.0);
}

TEST(Experiment, RenderSweepMentionsEverySize) {
  SweepConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.factory = families::SparseErdosRenyi(4.0);
  cfg.sizes = {20, 40};
  cfg.seeds_per_size = 2;
  const auto points = RunSweep(cfg);
  const std::string out = RenderSweep("demo sweep", points);
  EXPECT_NE(out.find("demo sweep"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
  EXPECT_NE(out.find("40"), std::string::npos);
  EXPECT_NE(out.find("2/2"), std::string::npos);
}

TEST(Experiment, MissingFactoryRejected) {
  SweepConfig cfg;
  cfg.sizes = {8};
  EXPECT_THROW(RunSweep(cfg), PreconditionError);
}

}  // namespace
}  // namespace emis
