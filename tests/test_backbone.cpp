#include "apps/backbone.hpp"

#include <gtest/gtest.h>

#include "radio/graph_generators.hpp"

namespace emis {
namespace {

BackboneResult Build(const Graph& g, std::uint64_t seed) {
  const BackboneParams params = BackboneParams::Practical(
      std::max<NodeId>(g.NumNodes(), 2), std::max(1u, g.MaxDegree()));
  return BuildBackbone(g, params, seed);
}

TEST(Backbone, SingleNodeIsItsOwnHead) {
  const auto r = Build(gen::Empty(1), 1);
  EXPECT_EQ(CheckBackbone(gen::Empty(1), r), "");
  EXPECT_EQ(r.NumHeads(), 1u);
  EXPECT_TRUE(r.nodes[0].affiliated);
  EXPECT_NE(r.nodes[0].head_id, 0u);
}

TEST(Backbone, StarFormsOneOrManyClusters) {
  Graph g = gen::Star(30);
  const auto r = Build(g, 2);
  EXPECT_EQ(CheckBackbone(g, r), "");
  const bool hub_head = r.nodes[0].role == MisStatus::kInMis;
  EXPECT_EQ(r.NumHeads(), hub_head ? 1u : 29u);
  EXPECT_EQ(r.NumAffiliated(), 30u);
  if (hub_head) {
    // Every leaf carries the hub's identifier.
    for (NodeId v = 1; v < 30; ++v) {
      EXPECT_EQ(r.nodes[v].head_id, r.nodes[0].head_id);
    }
  }
}

TEST(Backbone, ValidAcrossFamilies) {
  Rng rng(3);
  const Graph graphs[] = {
      gen::Path(40),        gen::Cycle(33),
      gen::Grid(6, 7),      gen::ErdosRenyi(150, 0.05, rng),
      gen::RandomGeometric(120, 0.15, rng), gen::DisjointCliques(6, 5),
      gen::MatchingPlusIsolated(40),
  };
  std::uint64_t seed = 10;
  for (const Graph& g : graphs) {
    const auto r = Build(g, seed++);
    EXPECT_EQ(CheckBackbone(g, r), "") << "n=" << g.NumNodes();
    EXPECT_EQ(r.NumAffiliated(), g.NumNodes());
  }
}

TEST(Backbone, HeadIdsAreDistinct) {
  Rng rng(4);
  Graph g = gen::ErdosRenyi(200, 0.03, rng);
  const auto r = Build(g, 5);
  ASSERT_EQ(CheckBackbone(g, r), "");
  std::vector<std::uint64_t> ids;
  for (const auto& n : r.nodes) {
    if (n.role == MisStatus::kInMis) ids.push_back(n.head_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(Backbone, MembersJoinAdjacentHeads) {
  Rng rng(5);
  Graph g = gen::RandomGeometric(100, 0.2, rng);
  const auto r = Build(g, 6);
  ASSERT_EQ(CheckBackbone(g, r), "");
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (r.nodes[v].role != MisStatus::kOutMis) continue;
    bool adjacent = false;
    for (NodeId w : g.Neighbors(v)) {
      adjacent = adjacent || (r.nodes[w].role == MisStatus::kInMis &&
                              r.nodes[w].head_id == r.nodes[v].head_id);
    }
    EXPECT_TRUE(adjacent) << "node " << v;
  }
}

TEST(Backbone, DeterministicGivenSeed) {
  Rng rng(6);
  Graph g = gen::ErdosRenyi(80, 0.06, rng);
  const auto a = Build(g, 9);
  const auto b = Build(g, 9);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(a.nodes[v].role, b.nodes[v].role);
    EXPECT_EQ(a.nodes[v].head_id, b.nodes[v].head_id);
  }
}

TEST(Backbone, RoundsWithinSchedule) {
  Rng rng(7);
  Graph g = gen::ErdosRenyi(100, 0.08, rng);
  const BackboneParams params = BackboneParams::Practical(100, g.MaxDegree());
  const auto r = BuildBackbone(g, params, 3);
  EXPECT_EQ(CheckBackbone(g, r), "");
  EXPECT_LE(r.stats.rounds_used, params.TotalRounds());
}

TEST(Backbone, EnergyStaysPolylog) {
  Rng rng(8);
  Graph g = gen::ErdosRenyi(1024, 8.0 / 1024, rng);
  const auto r = Build(g, 4);
  ASSERT_EQ(CheckBackbone(g, r), "");
  // MIS stage O(log n) + affiliation O(k log Δ) = O(log² n)-ish; far below n.
  EXPECT_LT(r.energy.MaxAwake(), 600u);
}

TEST(Backbone, NoCdVariantValidAcrossFamilies) {
  // Stage 1 = Algorithm 2 on the no-CD channel; affiliation backoffs run on
  // the same channel.
  Rng rng(11);
  const Graph graphs[] = {gen::Path(20), gen::Star(24),
                          gen::ErdosRenyi(64, 0.1, rng)};
  std::uint64_t seed = 40;
  for (const Graph& g : graphs) {
    const BackboneParams params = BackboneParams::PracticalNoCd(
        std::max<NodeId>(g.NumNodes(), 2), std::max(1u, g.MaxDegree()));
    const auto r = BuildBackbone(g, params, seed++);
    EXPECT_EQ(CheckBackbone(g, r), "") << "n=" << g.NumNodes();
    EXPECT_EQ(r.NumAffiliated(), g.NumNodes());
    EXPECT_LE(r.stats.rounds_used, params.TotalRounds());
  }
}

TEST(Backbone, NoCdCostsMoreRoundsThanCd) {
  Rng rng(12);
  Graph g = gen::ErdosRenyi(48, 0.1, rng);
  const auto cd = BuildBackbone(g, BackboneParams::Practical(48, g.MaxDegree()), 1);
  const auto nocd =
      BuildBackbone(g, BackboneParams::PracticalNoCd(48, g.MaxDegree()), 1);
  ASSERT_EQ(CheckBackbone(g, cd), "");
  ASSERT_EQ(CheckBackbone(g, nocd), "");
  EXPECT_GT(nocd.stats.rounds_used, 10 * cd.stats.rounds_used);
}

TEST(Backbone, CheckerFlagsBrokenAffiliations) {
  Graph g = gen::Path(3);
  auto r = Build(g, 1);
  ASSERT_EQ(CheckBackbone(g, r), "");
  // Corrupt: point a member at a bogus id.
  for (auto& n : r.nodes) {
    if (n.role == MisStatus::kOutMis) {
      n.head_id ^= 0xDEADBEEF;
      break;
    }
  }
  EXPECT_NE(CheckBackbone(g, r), "");
}

}  // namespace
}  // namespace emis
