// Tests for the non-radio baselines: wired Luby (CONGEST) and the
// centralized greedy references.
#include "baselines/greedy_mis.hpp"
#include "baselines/luby_congest.hpp"

#include <gtest/gtest.h>

#include "radio/graph_generators.hpp"
#include "verify/mis_checker.hpp"

namespace emis {
namespace {

TEST(LubyCongest, ValidOnFamilies) {
  Rng rng(1);
  const Graph graphs[] = {
      gen::Empty(10),
      gen::Path(40),
      gen::Cycle(33),
      gen::Star(50),
      gen::Complete(30),
      gen::ErdosRenyi(300, 0.02, rng),
      gen::Grid(10, 10),
      gen::MatchingPlusIsolated(64),
      gen::BarabasiAlbert(200, 2, rng),
  };
  std::uint64_t seed = 5;
  for (const Graph& g : graphs) {
    auto r = LubyCongest(g, seed++);
    EXPECT_TRUE(r.all_decided);
    EXPECT_TRUE(IsValidMis(g, r.status)) << CheckMis(g, r.status).Describe();
  }
}

TEST(LubyCongest, PhasesAreLogarithmic) {
  Rng rng(2);
  Graph g = gen::ErdosRenyi(2000, 8.0 / 2000, rng);
  auto r = LubyCongest(g, 3);
  EXPECT_TRUE(r.all_decided);
  // Luby finishes in O(log n) phases whp; log2(2000) ~ 11.
  EXPECT_LE(r.phases_used, 40u);
}

TEST(LubyCongest, EnergyMatchesPhaseParticipation) {
  // A node pays 2 per phase it is undecided in. On a star: phase 1 decides
  // the hub and every leaf whose priority beats the hub's; any remaining
  // leaves (isolated among the undecided) all join in phase 2. So phases
  // <= 2 and total energy = 2n + 2 * (phase-2 stragglers).
  Graph g = gen::Star(20);
  auto r = LubyCongest(g, 7);
  EXPECT_TRUE(r.all_decided);
  EXPECT_LE(r.phases_used, 2u);
  EXPECT_GE(r.energy.TotalAwake(), 40u);
  EXPECT_LE(r.energy.TotalAwake(), 40u + 2u * 18u);
  // Energy is 2 * (phases participated), per node.
  EXPECT_EQ(r.energy.Of(0).transmit_rounds, r.energy.Of(0).listen_rounds);
}

TEST(LubyCongest, DeterministicGivenSeed) {
  Rng rng(3);
  Graph g = gen::ErdosRenyi(100, 0.05, rng);
  auto a = LubyCongest(g, 11);
  auto b = LubyCongest(g, 11);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.phases_used, b.phases_used);
}

TEST(LubyCongest, MaxPhasesGuard) {
  Graph g = gen::Complete(8);
  auto r = LubyCongest(g, 1, /*max_phases=*/0);
  EXPECT_FALSE(r.all_decided);
  EXPECT_EQ(r.phases_used, 0u);
}

TEST(GreedyMis, ValidAndDeterministic) {
  Rng rng(4);
  Graph g = gen::ErdosRenyi(150, 0.05, rng);
  auto a = GreedyMis(g);
  auto b = GreedyMis(g);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(IsValidMis(g, a)) << CheckMis(g, a).Describe();
}

TEST(GreedyMis, IdOrderPicksNodeZeroFirst) {
  Graph g = gen::Star(5);
  auto s = GreedyMis(g);
  EXPECT_EQ(s[0], MisStatus::kInMis);
  EXPECT_EQ(MisSize(s), 1u);
}

TEST(RandomOrderGreedy, ValidAcrossSeeds) {
  Rng topo(5);
  Graph g = gen::ErdosRenyi(120, 0.06, topo);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    auto s = RandomOrderGreedyMis(g, rng);
    EXPECT_TRUE(IsValidMis(g, s)) << CheckMis(g, s).Describe();
  }
}

TEST(RandomOrderGreedy, DifferentSeedsGiveDifferentSets) {
  Rng topo(6);
  Graph g = gen::ErdosRenyi(120, 0.06, topo);
  Rng r1(1), r2(2);
  auto a = RandomOrderGreedyMis(g, r1);
  auto b = RandomOrderGreedyMis(g, r2);
  EXPECT_NE(a, b);
}

TEST(MisSizeHelper, Counts) {
  EXPECT_EQ(MisSize({}), 0u);
  EXPECT_EQ(MisSize({MisStatus::kInMis, MisStatus::kOutMis, MisStatus::kInMis}), 2u);
}

TEST(Baselines, AgreeOnMisSizeForCliques) {
  // Every correct MIS of k disjoint cliques has size exactly k.
  Graph g = gen::DisjointCliques(7, 4);
  EXPECT_EQ(MisSize(GreedyMis(g)), 7u);
  auto luby = LubyCongest(g, 9);
  EXPECT_EQ(MisSize(luby.status), 7u);
}

}  // namespace
}  // namespace emis
