// Tests for the unknown-Δ doubling scheme (paper §1.1 footnote).
#include "core/delta_doubling.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"
#include "verify/mis_checker.hpp"

namespace emis {
namespace {

TEST(DeltaDoubling, GuessSequenceShape) {
  DeltaDoublingParams p = DeltaDoublingParams::Practical(1024);
  const auto guesses = p.Guesses();
  // 2, 4, 16, 256, then capped at 1024.
  ASSERT_EQ(guesses.size(), 5u);
  EXPECT_EQ(guesses[0], 2u);
  EXPECT_EQ(guesses[1], 4u);
  EXPECT_EQ(guesses[2], 16u);
  EXPECT_EQ(guesses[3], 256u);
  EXPECT_EQ(guesses[4], 1024u);
}

TEST(DeltaDoubling, GuessSequenceSmallN) {
  EXPECT_EQ(DeltaDoublingParams{.n = 1}.Guesses(), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(DeltaDoublingParams{.n = 2}.Guesses(), (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(DeltaDoublingParams{.n = 3}.Guesses(),
            (std::vector<std::uint32_t>{2, 3}));
  // Ends exactly at n, strictly increasing.
  for (std::uint64_t n : {17ULL, 100ULL, 65537ULL}) {
    const auto g = DeltaDoublingParams{.n = n}.Guesses();
    EXPECT_EQ(g.back(), n);
    for (std::size_t i = 1; i < g.size(); ++i) EXPECT_GT(g[i], g[i - 1]);
  }
}

MisRunResult RunUnknownDelta(const Graph& g, std::uint64_t seed) {
  return RunMis(g, {.algorithm = MisAlgorithm::kNoCdUnknownDelta, .seed = seed});
}

TEST(DeltaDoubling, ValidOnLowDegreeGraphs) {
  // Early guesses (Δ = 2, 4) already fit these; later epochs must not
  // destroy the standing MIS.
  Rng rng(1);
  const Graph graphs[] = {gen::Path(24), gen::Cycle(20),
                          gen::MatchingPlusIsolated(32), gen::RandomTree(30, rng)};
  std::uint64_t seed = 5;
  for (const Graph& g : graphs) {
    auto r = RunUnknownDelta(g, seed++);
    EXPECT_TRUE(r.Valid()) << "n=" << g.NumNodes() << ": " << r.report.Describe();
  }
}

TEST(DeltaDoubling, ValidOnHighDegreeGraphs) {
  // Here the early guesses are badly wrong (windows too narrow, collisions
  // look like silence, false winners galore) — verification must demote the
  // violators and the Δ >= true-degree epochs must repair everything.
  Rng rng(2);
  const Graph graphs[] = {gen::Star(40), gen::Complete(24),
                          gen::ErdosRenyi(64, 0.3, rng),
                          gen::CompleteBipartite(12, 20)};
  std::uint64_t seed = 21;
  for (const Graph& g : graphs) {
    auto r = RunUnknownDelta(g, seed++);
    EXPECT_TRUE(r.Valid()) << "n=" << g.NumNodes() << " Δ=" << g.MaxDegree()
                           << ": " << r.report.Describe();
  }
}

TEST(DeltaDoubling, RepeatedSeedsOnDenseGraph) {
  Rng rng(3);
  const Graph g = gen::ErdosRenyi(48, 0.4, rng);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto r = RunUnknownDelta(g, seed);
    EXPECT_TRUE(r.Valid()) << "seed " << seed << ": " << r.report.Describe();
  }
}

TEST(DeltaDoubling, DeterministicGivenSeed) {
  Rng rng(4);
  const Graph g = gen::ErdosRenyi(40, 0.2, rng);
  auto a = RunUnknownDelta(g, 9);
  auto b = RunUnknownDelta(g, 9);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.energy.MaxAwake(), b.energy.MaxAwake());
}

TEST(DeltaDoubling, RoundsWithinTotalSchedule) {
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(48, 0.25, rng);
  auto r = RunUnknownDelta(g, 3);
  ASSERT_TRUE(r.Valid());
  const auto p = DeltaDoublingParams::Practical(48);
  EXPECT_LE(r.stats.rounds_used, DeltaDoublingTotalRounds(p));
}

TEST(DeltaDoubling, EnergyOverheadIsModest) {
  // §1.1 promises an O(log log n) energy factor over the known-Δ run. With
  // log log n ≈ 3 at this scale, assert the measured factor stays small.
  Rng rng(6);
  const Graph g = gen::ErdosRenyi(96, 8.0 / 96, rng);
  std::uint64_t unknown = 0, known = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto ru = RunUnknownDelta(g, seed);
    auto rk = RunMis(g, {.algorithm = MisAlgorithm::kNoCd, .seed = seed});
    ASSERT_TRUE(ru.Valid() && rk.Valid());
    unknown += ru.energy.MaxAwake();
    known += rk.energy.MaxAwake();
  }
  EXPECT_LT(unknown, known * 8);
}

TEST(DeltaDoubling, SingleNodeAndEdgeless) {
  auto r1 = RunUnknownDelta(gen::Empty(1), 1);
  ASSERT_TRUE(r1.Valid());
  EXPECT_EQ(r1.status[0], MisStatus::kInMis);
  auto r2 = RunUnknownDelta(gen::Empty(7), 2);
  ASSERT_TRUE(r2.Valid());
  EXPECT_EQ(r2.MisSize(), 7u);
}

}  // namespace
}  // namespace emis
