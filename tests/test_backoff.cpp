// Tests for Algorithm 4 (energy-efficient backoff) and traditional Decay —
// Lemmas 8 and 9.
#include "core/backoff.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"

namespace emis {
namespace {

struct BackoffProbe {
  Round snd_duration = 0;
  Round rec_duration = 0;
  bool heard = false;
};

proc::Task<void> SenderNode(NodeApi api, BackoffStyle style, std::uint32_t k,
                            std::uint32_t delta, BackoffProbe* probe) {
  const Round start = api.Now();
  co_await SndBackoff(api, style, k, delta);
  probe->snd_duration = api.Now() - start;
}

proc::Task<void> ReceiverNode(NodeApi api, BackoffStyle style, std::uint32_t k,
                              std::uint32_t delta, std::uint32_t delta_est,
                              BackoffProbe* probe) {
  const Round start = api.Now();
  probe->heard = co_await RecBackoff(api, style, k, delta, delta_est);
  probe->rec_duration = api.Now() - start;
}

/// Runs one backoff on a star: `senders` leaves run the sender side, the hub
/// runs the receiver side. Returns the probe and per-node energy.
struct StarRun {
  BackoffProbe hub;
  std::vector<BackoffProbe> leaves;
  NodeEnergy hub_energy;
  std::vector<NodeEnergy> leaf_energy;
};

StarRun RunStar(std::uint32_t senders, BackoffStyle style, std::uint32_t k,
                std::uint32_t delta, std::uint32_t delta_est, std::uint64_t seed) {
  Graph g = gen::Star(senders + 1);
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, seed);
  StarRun run;
  run.leaves.resize(senders);
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return ReceiverNode(api, style, k, delta, delta_est, &run.hub);
    return SenderNode(api, style, k, delta, &run.leaves[api.Id() - 1]);
  });
  sched.Run();
  run.hub_energy = sched.Energy().Of(0);
  for (NodeId v = 1; v <= senders; ++v) run.leaf_energy.push_back(sched.Energy().Of(v));
  return run;
}

// ---- Lemma 8: durations and energy ----------------------------------------

TEST(EBackoff, TakesExactlyKLogDeltaRounds) {
  for (std::uint32_t k : {1u, 3u, 8u}) {
    for (std::uint32_t delta : {2u, 7u, 64u}) {
      auto run = RunStar(2, BackoffStyle::kEnergyEfficient, k, delta, delta, 42);
      const Round expected = BackoffRounds(k, delta);
      EXPECT_EQ(run.hub.rec_duration, expected) << "k=" << k << " delta=" << delta;
      EXPECT_EQ(run.leaves[0].snd_duration, expected);
      EXPECT_EQ(run.leaves[1].snd_duration, expected);
    }
  }
}

TEST(EBackoff, DegenerateDeltaUsesOneRoundWindow) {
  auto run = RunStar(1, BackoffStyle::kEnergyEfficient, 5, 1, 1, 7);
  EXPECT_EQ(run.hub.rec_duration, 5u);
  // Window of 1: the single sender transmits every iteration and the
  // receiver hears it in iteration 1.
  EXPECT_TRUE(run.hub.heard);
}

TEST(EBackoff, SenderAwakeExactlyKRounds) {
  // Lemma 8: Snd-EBackoff(k, Δ) is awake exactly k rounds, all transmitting.
  for (std::uint32_t k : {1u, 4u, 16u}) {
    auto run = RunStar(3, BackoffStyle::kEnergyEfficient, k, 32, 32, 3);
    for (const auto& e : run.leaf_energy) {
      EXPECT_EQ(e.transmit_rounds, k);
      EXPECT_EQ(e.listen_rounds, 0u);
    }
  }
}

TEST(EBackoff, ReceiverAwakeAtMostKLogDeltaEst) {
  const std::uint32_t k = 8, delta = 256, delta_est = 4;
  auto run = RunStar(0, BackoffStyle::kEnergyEfficient, k, delta, delta_est, 5);
  // No senders: the receiver listens its full budget, k * ceil(log delta_est).
  EXPECT_EQ(run.hub_energy.listen_rounds, k * BackoffWindow(delta_est));
  EXPECT_FALSE(run.hub.heard);
  // Duration is still governed by delta, not delta_est.
  EXPECT_EQ(run.hub.rec_duration, BackoffRounds(k, delta));
}

TEST(EBackoff, ReceiverSleepsAfterHearing) {
  // With exactly one sender, the receiver hears in some early iteration and
  // must spend (much) less than its full listen budget over many iterations.
  const std::uint32_t k = 50, delta = 16;
  auto run = RunStar(1, BackoffStyle::kEnergyEfficient, k, delta, delta, 11);
  EXPECT_TRUE(run.hub.heard);
  EXPECT_LT(run.hub_energy.listen_rounds, BackoffRounds(k, delta) / 2);
}

// ---- Lemma 9: detection probability ----------------------------------------

TEST(EBackoff, NoSenderNeverDetects) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto run = RunStar(0, BackoffStyle::kEnergyEfficient, 6, 16, 16, seed);
    EXPECT_FALSE(run.hub.heard);
  }
}

TEST(EBackoff, SingleIterationDetectsWithConstantProbability) {
  // Lemma 9 with k = 1: detection probability >= 1/8 for any sender count
  // <= delta_est. Empirically it is far higher; assert the bound with slack.
  for (std::uint32_t senders : {1u, 2u, 5u, 15u}) {
    int detected = 0;
    const int kTrials = 300;
    for (int t = 0; t < kTrials; ++t) {
      auto run = RunStar(senders, BackoffStyle::kEnergyEfficient, 1, 16, 16,
                         1000 + static_cast<std::uint64_t>(t));
      detected += run.hub.heard;
    }
    EXPECT_GT(detected, kTrials / 8) << senders << " senders";
  }
}

TEST(EBackoff, DetectionImprovesGeometricallyWithK) {
  // 1 - (7/8)^k: k = 32 should make misses rare (<= ~1.4% theoretical).
  const std::uint32_t senders = 8;
  int missed = 0;
  const int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    auto run = RunStar(senders, BackoffStyle::kEnergyEfficient, 32, 16, 16,
                       5000 + static_cast<std::uint64_t>(t));
    missed += !run.hub.heard;
  }
  EXPECT_LE(missed, 10);  // generous: theory predicts ~3 expected
}

TEST(EBackoff, ManySendersBeyondDeltaEstStillWithinWindow) {
  // delta_est undershoots the sender count: the receiver only listens the
  // short window, where the geometric slots of too many senders mostly
  // collide. The call must remain structurally sound (exact duration, no
  // crash); detection is best-effort.
  auto run = RunStar(32, BackoffStyle::kEnergyEfficient, 4, 64, 2, 77);
  EXPECT_EQ(run.hub.rec_duration, BackoffRounds(4, 64));
}

// ---- Traditional Decay ------------------------------------------------------

TEST(Decay, EveryoneAwakeWholeBackoff) {
  const std::uint32_t k = 6, delta = 32;
  auto run = RunStar(3, BackoffStyle::kTraditional, k, delta, delta, 9);
  const std::uint64_t total = BackoffRounds(k, delta);
  EXPECT_EQ(run.hub_energy.Awake(), total);
  EXPECT_EQ(run.hub_energy.listen_rounds, total);
  for (const auto& e : run.leaf_energy) {
    EXPECT_EQ(e.Awake(), total);
    EXPECT_GE(e.transmit_rounds, k);  // at least one transmit per iteration
  }
}

TEST(Decay, DetectsSenders) {
  int detected = 0;
  const int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    auto run = RunStar(5, BackoffStyle::kTraditional, 8, 16, 16,
                       9000 + static_cast<std::uint64_t>(t));
    detected += run.hub.heard;
  }
  EXPECT_GT(detected, 90);
}

TEST(Decay, NoSenderNeverDetects) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto run = RunStar(0, BackoffStyle::kTraditional, 4, 16, 16, seed);
    EXPECT_FALSE(run.hub.heard);
  }
}

// ---- Synchronization across mixed outcomes ---------------------------------

proc::Task<void> TwoBackoffsReceiver(NodeApi api, std::uint32_t k, std::uint32_t delta,
                                     BackoffProbe* probe) {
  // Hearing early in the first backoff must not desynchronize the second.
  (void)co_await RecEBackoff(api, k, delta, delta);
  probe->heard = co_await RecEBackoff(api, k, delta, delta);
}

proc::Task<void> TwoBackoffsSender(NodeApi api, std::uint32_t k, std::uint32_t delta,
                                   bool second_only) {
  if (second_only) {
    co_await api.SleepFor(BackoffRounds(k, delta));
  } else {
    co_await SndEBackoff(api, k, delta);
  }
  co_await SndEBackoff(api, k, delta);
}

TEST(EBackoff, BackToBackCallsStaySynchronized) {
  // Leaf 1 sends in both backoffs; leaf 2 only in the second. The hub must
  // hear the second backoff despite having slept out the tail of the first.
  Graph g = gen::Star(3);
  BackoffProbe probe;
  const std::uint32_t k = 24, delta = 4;
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, 31);
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return TwoBackoffsReceiver(api, k, delta, &probe);
    return TwoBackoffsSender(api, k, delta, api.Id() == 2);
  });
  sched.Run();
  EXPECT_TRUE(probe.heard);
}

}  // namespace
}  // namespace emis
