# CTest script: the observability sinks and the bench regression gate,
# end to end through the shipped binaries.
#
#  1. `emis_cli run` with every sink flag produces a valid report plus
#     non-empty flamegraph / telemetry / metrics-text artifacts.
#  2. `emis_report_diff` on identical artifacts exits 0 (self-diff clean),
#     and its emis-diff-report/1 output validates.
#  3. `emis_report_diff` between runs with different seeds exits 1
#     (out-of-tolerance), so real drift cannot pass the gate.

set(report_a "${WORK_DIR}/gate_a.json")
set(report_b "${WORK_DIR}/gate_b.json")
set(flame "${WORK_DIR}/gate_a.folded")
set(telemetry "${WORK_DIR}/gate_a.ndjson")
set(metrics_text "${WORK_DIR}/gate_a.prom")

execute_process(
  COMMAND ${EMIS_CLI} run --graph er:n=96,p=0.06 --alg cd --seed 2
          --report-out ${report_a} --flamegraph-out ${flame}
          --telemetry-out ${telemetry} --metrics-text ${metrics_text} --quiet
  RESULT_VARIABLE run_a_rc)
if(NOT run_a_rc EQUAL 0)
  message(FATAL_ERROR "emis_cli run with sink flags failed (rc=${run_a_rc})")
endif()
foreach(artifact ${flame} ${telemetry} ${metrics_text})
  if(NOT EXISTS ${artifact})
    message(FATAL_ERROR "sink artifact ${artifact} was not written")
  endif()
  file(SIZE ${artifact} artifact_size)
  if(artifact_size EQUAL 0)
    message(FATAL_ERROR "sink artifact ${artifact} is empty")
  endif()
endforeach()

execute_process(
  COMMAND ${EMIS_CLI} validate-report ${report_a}
  RESULT_VARIABLE validate_rc)
if(NOT validate_rc EQUAL 0)
  message(FATAL_ERROR "validate-report rejected ${report_a} (rc=${validate_rc})")
endif()

# Self-diff must be clean, and the diff report itself must validate.
set(diff_clean "${WORK_DIR}/gate_diff_clean.json")
execute_process(
  COMMAND ${EMIS_REPORT_DIFF} --baseline ${report_a} --current ${report_a}
          --out ${diff_clean} --quiet
  RESULT_VARIABLE self_rc)
if(NOT self_rc EQUAL 0)
  message(FATAL_ERROR "self-diff was not clean (rc=${self_rc})")
endif()
execute_process(
  COMMAND ${EMIS_CLI} validate-report ${diff_clean}
  RESULT_VARIABLE diff_validate_rc)
if(NOT diff_validate_rc EQUAL 0)
  message(FATAL_ERROR "validate-report rejected ${diff_clean} (rc=${diff_validate_rc})")
endif()

# A genuinely different run (new seed) must trip the gate with exit 1.
execute_process(
  COMMAND ${EMIS_CLI} run --graph er:n=96,p=0.06 --alg cd --seed 3
          --report-out ${report_b} --quiet
  RESULT_VARIABLE run_b_rc)
if(NOT run_b_rc EQUAL 0)
  message(FATAL_ERROR "emis_cli run (seed 3) failed (rc=${run_b_rc})")
endif()
execute_process(
  COMMAND ${EMIS_REPORT_DIFF} --baseline ${report_a} --current ${report_b} --quiet
  RESULT_VARIABLE drift_rc)
if(NOT drift_rc EQUAL 1)
  message(FATAL_ERROR "drifted diff should exit 1, got rc=${drift_rc}")
endif()
