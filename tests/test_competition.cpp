// Tests for Algorithm 3 (Competition) — Lemmas 11, 12, 14, 15 and the
// synchronization contract.
#include "core/competition.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"

namespace emis {
namespace {

struct CompResult {
  CompetitionOutcome outcome = CompetitionOutcome::kLose;
  Round duration = 0;
};

proc::Task<void> CompetitionNode(NodeApi api, NoCdParams params,
                                 std::vector<CompResult>* out) {
  const Round start = api.Now();
  (*out)[api.Id()].outcome = co_await Competition(api, params);
  (*out)[api.Id()].duration = api.Now() - start;
}

std::vector<CompResult> RunCompetition(const Graph& g, const NoCdParams& params,
                                       std::uint64_t seed) {
  std::vector<CompResult> results(g.NumNodes());
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, seed);
  sched.Spawn([&](NodeApi api) { return CompetitionNode(api, params, &results); });
  sched.Run();
  return results;
}

NoCdParams ParamsFor(const Graph& g) {
  return NoCdParams::Practical(std::max<std::uint64_t>(g.NumNodes(), 2),
                               std::max<std::uint32_t>(g.MaxDegree(), 1));
}

TEST(Competition, TakesExactlyTcRoundsForEveryOutcome) {
  Rng rng(1);
  Graph g = gen::ErdosRenyi(60, 0.1, rng);
  const NoCdParams p = ParamsFor(g);
  const Round tc = static_cast<Round>(p.rank_bits) * BackoffRounds(p.deep_reps, p.delta);
  auto results = RunCompetition(g, p, 7);
  for (const auto& r : results) EXPECT_EQ(r.duration, tc);
}

TEST(Competition, IsolatedNodeAlwaysWins) {
  Graph g = gen::Empty(5);
  const NoCdParams p = NoCdParams::Practical(8, 1);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    for (const auto& r : RunCompetition(g, p, seed)) {
      EXPECT_EQ(r.outcome, CompetitionOutcome::kWin);
    }
  }
}

TEST(Competition, PairProducesAtMostOneWinner) {
  // Lemma 15 analogue: two neighbors must not both win (whp). With the
  // practical constants a double win should never appear in 50 runs.
  Graph g = gen::Path(2);
  const NoCdParams p = NoCdParams::Practical(16, 1);
  int winner_counts[3] = {0, 0, 0};
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    auto results = RunCompetition(g, p, seed);
    const int winners = (results[0].outcome == CompetitionOutcome::kWin) +
                        (results[1].outcome == CompetitionOutcome::kWin);
    ++winner_counts[winners];
  }
  EXPECT_EQ(winner_counts[2], 0) << "adjacent double-win observed";
  // And a winner usually emerges (ties leading to 0 winners are possible
  // but rare).
  EXPECT_GT(winner_counts[1], 35);
}

TEST(Competition, NoTwoAdjacentWinnersOnDenseGraph) {
  Rng rng(2);
  Graph g = gen::ErdosRenyi(80, 0.15, rng);
  const NoCdParams p = ParamsFor(g);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto results = RunCompetition(g, p, seed);
    for (const Edge& e : g.EdgeList()) {
      EXPECT_FALSE(results[e.u].outcome == CompetitionOutcome::kWin &&
                   results[e.v].outcome == CompetitionOutcome::kWin)
          << "seed " << seed << " edge " << e.u << "-" << e.v;
    }
  }
}

TEST(Competition, SomeWinnerUsuallyExistsPerClique) {
  // Lemma 14 analogue: the local rank maximum of each clique wins whp. A
  // single backoff miss (probability (7/8)^k per 0-bit) can occasionally
  // leave a clique winnerless for one competition — Algorithm 2 absorbs
  // that in later phases — so assert ≤1 winner strictly (independence) and
  // ≥1 winner statistically.
  Graph g = gen::DisjointCliques(6, 5);
  const NoCdParams p = ParamsFor(g);
  int cliques_total = 0, cliques_with_winner = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto results = RunCompetition(g, p, seed);
    for (NodeId c = 0; c < 6; ++c) {
      int winners = 0;
      for (NodeId v = 0; v < 5; ++v) {
        winners += results[c * 5 + v].outcome == CompetitionOutcome::kWin;
      }
      EXPECT_LE(winners, 1) << "clique " << c << " seed " << seed;
      ++cliques_total;
      cliques_with_winner += winners >= 1;
    }
  }
  EXPECT_GT(cliques_with_winner * 10, cliques_total * 6);  // >60% at practical k
}

TEST(Competition, EveryCliqueProgressesViaWinOrCommit) {
  // Zero-winner competitions are a designed-in outcome: when the eventual
  // local maximum's first 0-bit is a *shared* 0-bit, every active node
  // commits, and committed "stragglers" that later diverge keep transmitting
  // their 1-bits — which can make even the maximum hear something and end as
  // commit instead of win. Algorithm 2 then resolves the committed set via
  // LowDegreeMIS. The hard guarantee is progress: the local maximum never
  // *loses* (its first 0-bit is the first shared-0 bit, where silence
  // commits it), so every clique retains at least one win-or-commit node.
  Graph g = gen::DisjointCliques(6, 5);
  NoCdParams p = ParamsFor(g);
  p.deep_reps = 60;  // make backoff misses negligible: (7/8)^60 ≈ 3e-4
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto results = RunCompetition(g, p, seed);
    for (NodeId c = 0; c < 6; ++c) {
      int winners = 0, committed = 0;
      for (NodeId v = 0; v < 5; ++v) {
        winners += results[c * 5 + v].outcome == CompetitionOutcome::kWin;
        committed += results[c * 5 + v].outcome == CompetitionOutcome::kCommit;
      }
      EXPECT_LE(winners, 1) << "clique " << c << " seed " << seed;
      EXPECT_GE(winners + committed, 1) << "clique " << c << " seed " << seed;
    }
  }
}

TEST(Competition, CommittedSubgraphHasBoundedDegree) {
  // Corollary 13(2): the commit set induces an O(log n)-degree subgraph.
  // On a dense random graph the commit degree must stay at most
  // commit_degree (κ log n) whp.
  Rng rng(4);
  Graph g = gen::ErdosRenyi(120, 0.3, rng);
  const NoCdParams p = ParamsFor(g);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto results = RunCompetition(g, p, seed);
    std::vector<NodeId> committed;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      // kWin includes committed-and-silent nodes; both classes belong to the
      // commit-time subgraph of Lemma 12.
      if (results[v].outcome != CompetitionOutcome::kLose) committed.push_back(v);
    }
    auto sub = g.Induced(committed);
    EXPECT_LE(sub.graph.MaxDegree(), p.commit_degree)
        << "seed " << seed << ", committed " << committed.size() << " nodes";
  }
}

TEST(Competition, DeterministicGivenSeed) {
  Rng rng(5);
  Graph g = gen::ErdosRenyi(40, 0.2, rng);
  const NoCdParams p = ParamsFor(g);
  auto a = RunCompetition(g, p, 11);
  auto b = RunCompetition(g, p, 11);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(a[v].outcome, b[v].outcome);
  }
}

TEST(Competition, CompleteGraphMostlyLosers) {
  // On K_n nearly everyone hears quickly and loses; winners are rare and
  // never adjacent (i.e. at most one on a complete graph).
  Graph g = gen::Complete(40);
  const NoCdParams p = ParamsFor(g);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto results = RunCompetition(g, p, seed);
    int winners = 0;
    for (const auto& r : results) winners += r.outcome == CompetitionOutcome::kWin;
    EXPECT_LE(winners, 1);
  }
}

}  // namespace
}  // namespace emis
