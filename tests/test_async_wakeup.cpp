#include "core/async_wakeup.hpp"

#include <gtest/gtest.h>

#include "core/mis_cd.hpp"
#include "core/runner.hpp"
#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"
#include "verify/mis_checker.hpp"

namespace emis {
namespace {

struct StaggeredRun {
  std::vector<MisStatus> status;
  RunStats stats;
  bool valid = false;
};

StaggeredRun RunStaggeredCd(const Graph& g, Round window, std::uint64_t seed) {
  Rng wake_rng(seed ^ 0xABCD);
  const std::vector<Round> wake = UniformWakeRounds(g.NumNodes(), window, wake_rng);
  StaggeredRun run;
  run.status.assign(g.NumNodes(), MisStatus::kUndecided);
  const CdParams params = CdParams::Practical(std::max<NodeId>(g.NumNodes(), 2));
  Scheduler sched(g, {.model = ChannelModel::kCd}, seed);
  sched.Spawn(StaggeredProtocol(MisCdProtocol(params, &run.status), &wake));
  run.stats = sched.Run();
  run.valid = IsValidMis(g, run.status);
  return run;
}

TEST(AsyncWakeup, UniformWakeRoundsRespectWindow) {
  Rng rng(1);
  const auto wake = UniformWakeRounds(1000, 25, rng);
  ASSERT_EQ(wake.size(), 1000u);
  Round max_seen = 0;
  for (Round w : wake) {
    EXPECT_LE(w, 25u);
    max_seen = std::max(max_seen, w);
  }
  EXPECT_GT(max_seen, 15u);  // actually spread out
}

TEST(AsyncWakeup, ZeroWindowIsSynchronous) {
  Rng rng(2);
  const auto wake = UniformWakeRounds(50, 0, rng);
  for (Round w : wake) EXPECT_EQ(w, 0u);

  // And a zero-window staggered run equals the plain run exactly.
  Graph g = gen::ErdosRenyi(60, 0.1, rng);
  const auto staggered = RunStaggeredCd(g, 0, 7);
  const auto plain = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = 7});
  EXPECT_EQ(staggered.status, plain.status);
  EXPECT_EQ(staggered.stats.rounds_used, plain.stats.rounds_used);
}

TEST(AsyncWakeup, IsolatedNodesAlwaysSafe) {
  // Stagger cannot hurt nodes with no neighbors: they hear nothing, win
  // their first phase, join.
  Graph g = gen::Empty(10);
  const auto run = RunStaggeredCd(g, 1000, 3);
  EXPECT_TRUE(run.valid);
  for (MisStatus s : run.status) EXPECT_EQ(s, MisStatus::kInMis);
}

TEST(AsyncWakeup, LargeStaggerBreaksSynchronousAlgorithm) {
  // The reason the paper assumes synchronous wake-up: once wake times spread
  // across a phase, rank bits are compared against misaligned phases and
  // correctness is lost with noticeable probability. We assert failures
  // *occur* across seeds (and that zero stagger never fails) — this is a
  // characterization of the model boundary, not of a bug.
  Rng rng(4);
  Graph g = gen::ErdosRenyi(128, 0.08, rng);
  const CdParams params = CdParams::Practical(128);
  int failures_staggered = 0, failures_sync = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    failures_staggered += RunStaggeredCd(g, params.PhaseRounds(), seed).valid ? 0 : 1;
    failures_sync += RunStaggeredCd(g, 0, seed).valid ? 0 : 1;
  }
  EXPECT_EQ(failures_sync, 0);
  EXPECT_GT(failures_staggered, 0);
}

TEST(AsyncWakeup, StaggeredRunsStillTerminate) {
  Rng rng(5);
  Graph g = gen::ErdosRenyi(64, 0.1, rng);
  const auto run = RunStaggeredCd(g, 500, 11);
  // Termination bound: max wake + full schedule.
  const CdParams params = CdParams::Practical(64);
  EXPECT_LE(run.stats.rounds_used, 500 + params.TotalRounds());
}

TEST(AsyncWakeup, RejectsMissingWakeRounds) {
  Graph g = gen::Empty(3);
  std::vector<MisStatus> status(3, MisStatus::kUndecided);
  const std::vector<Round> too_short = {0, 1};  // only 2 entries for 3 nodes
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  const CdParams params = CdParams::Practical(3);
  EXPECT_THROW(
      sched.Spawn(StaggeredProtocol(MisCdProtocol(params, &status), &too_short)),
      PreconditionError);
}

}  // namespace
}  // namespace emis
