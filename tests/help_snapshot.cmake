# CTest script: `emis_cli --help` must exit 0 and match the committed
# snapshot byte-for-byte, so the documented flag surface (--resolution,
# --compaction, graph specs) cannot drift from the golden file without a
# deliberate update. Regenerate with:
#   build/tools/emis_cli --help > tests/golden/emis_cli_help.txt
foreach(invocation "help" "--help" "-h")
  execute_process(
    COMMAND ${EMIS_CLI} ${invocation}
    OUTPUT_VARIABLE help_out
    RESULT_VARIABLE help_rc)
  if(NOT help_rc EQUAL 0)
    message(FATAL_ERROR "emis_cli ${invocation} exited ${help_rc}, want 0")
  endif()
  file(READ ${GOLDEN} golden_out)
  if(NOT help_out STREQUAL golden_out)
    message(FATAL_ERROR
      "emis_cli ${invocation} output does not match ${GOLDEN}; if the change "
      "is intentional, regenerate the snapshot (see header of this script)")
  endif()
endforeach()
