// Pins the pull-scan kernel contract (radio/channel_kernels.hpp): both the
// portable loop and the AVX2 gather kernel must return the exact
// transmitting-entry count and the row position of the LAST transmitting
// entry, treating stale (epoch-mismatched) words as empty. The AVX2 kernel
// is exercised directly — not through ResolveScanRowFn — so the equivalence
// holds on AVX2 hosts and degrades to portable-vs-portable elsewhere.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "radio/channel_kernels.hpp"
#include "radio/rng.hpp"

namespace emis {
namespace {

using chan_kernels::kNoHit;
using chan_kernels::ScanHits;
using chan_kernels::ScanRowAvx2;
using chan_kernels::ScanRowPortable;
using chan_kernels::TxWord;

/// Unoptimized reference: one bitset probe per row entry, no word caching.
ScanHits ScanRowNaive(const std::vector<NodeId>& row,
                      const std::vector<TxWord>& words, std::uint64_t epoch) {
  ScanHits h;
  for (std::size_t i = 0; i < row.size(); ++i) {
    const TxWord& w = words[row[i] >> 6];
    if (w.epoch != epoch) continue;
    if (((w.bits >> (row[i] & 63)) & 1u) == 0) continue;
    ++h.count;
    h.last_hit = i;
  }
  return h;
}

void ExpectAllKernelsAgree(const std::vector<NodeId>& row,
                           const std::vector<TxWord>& words,
                           std::uint64_t epoch) {
  const ScanHits want = ScanRowNaive(row, words, epoch);
  const ScanHits portable =
      ScanRowPortable(row.data(), row.size(), words.data(), epoch);
  const ScanHits avx2 = ScanRowAvx2(row.data(), row.size(), words.data(), epoch);
  EXPECT_EQ(portable.count, want.count);
  EXPECT_EQ(portable.last_hit, want.last_hit);
  EXPECT_EQ(avx2.count, want.count);
  EXPECT_EQ(avx2.last_hit, want.last_hit);
}

TEST(ChannelKernels, EmptyRowReportsNoHits) {
  const std::vector<TxWord> words(4);
  const std::vector<NodeId> row;
  for (chan_kernels::ScanRowFn fn : {&ScanRowPortable, &ScanRowAvx2}) {
    const ScanHits h = fn(row.data(), 0, words.data(), 1);
    EXPECT_EQ(h.count, 0u);
    EXPECT_EQ(h.last_hit, kNoHit);
  }
}

TEST(ChannelKernels, AllEntriesTransmitting) {
  const NodeId n = 200;
  std::vector<TxWord> words((n + 63) / 64);
  const std::uint64_t epoch = 7;
  for (auto& w : words) w = {epoch, ~std::uint64_t{0}};
  std::vector<NodeId> row(n);
  for (NodeId v = 0; v < n; ++v) row[v] = v;
  ExpectAllKernelsAgree(row, words, epoch);
  const ScanHits h = ScanRowAvx2(row.data(), row.size(), words.data(), epoch);
  EXPECT_EQ(h.count, n);
  EXPECT_EQ(h.last_hit, static_cast<std::size_t>(n - 1));
}

TEST(ChannelKernels, StaleWordsReadAsEmpty) {
  std::vector<TxWord> words(2);
  words[0] = {5, ~std::uint64_t{0}};  // fresh: all 64 transmit
  words[1] = {4, ~std::uint64_t{0}};  // stale epoch: none transmit
  const std::vector<NodeId> row = {0, 1, 63, 64, 65, 100, 127};
  ExpectAllKernelsAgree(row, words, /*epoch=*/5);
  const ScanHits h = ScanRowAvx2(row.data(), row.size(), words.data(), 5);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.last_hit, 2u);  // position of id 63, the last fresh entry
}

TEST(ChannelKernels, LastHitLandsInScalarTail) {
  // Row length 4k+3 with the only transmitter in the final (tail) entries —
  // exercises the AVX2 kernel's portable-tail splice and offset fixup.
  std::vector<TxWord> words(8);
  const std::uint64_t epoch = 9;
  std::vector<NodeId> row;
  for (NodeId v = 0; v < 39; ++v) row.push_back(v * 3);
  const NodeId hot = row[38];
  words[hot >> 6] = {epoch, 1ULL << (hot & 63)};
  ExpectAllKernelsAgree(row, words, epoch);
  const ScanHits h = ScanRowAvx2(row.data(), row.size(), words.data(), epoch);
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.last_hit, 38u);
}

TEST(ChannelKernels, RandomizedRowsAgreeAcrossKernels) {
  Rng rng(20260807);
  for (int iter = 0; iter < 400; ++iter) {
    const NodeId n = 1 + static_cast<NodeId>(rng.UniformBelow(2048));
    const std::uint64_t epoch = 1 + rng.UniformBelow(64);
    std::vector<TxWord> words((n + 63) / 64);
    for (auto& w : words) {
      // Mix fresh, stale, and never-written words; sparse through dense bits.
      const auto age = rng.UniformBelow(3);
      w.epoch = age == 0 ? epoch : (age == 1 ? epoch - 1 : 0);
      w.bits = rng.NextU64() & rng.NextU64() &
               (rng.Bernoulli(0.3) ? ~std::uint64_t{0} : rng.NextU64());
    }
    // Sorted distinct ids, like a CSR row / residual live prefix.
    std::vector<NodeId> row;
    for (NodeId v = 0; v < n; ++v) {
      if (rng.Bernoulli(0.4)) row.push_back(v);
    }
    ExpectAllKernelsAgree(row, words, epoch);
  }
}

TEST(ChannelKernels, ResolveReturnsStableNonNullKernel) {
  const chan_kernels::ScanRowFn fn = chan_kernels::ResolveScanRowFn();
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn, chan_kernels::ResolveScanRowFn());
  EXPECT_TRUE(fn == &ScanRowPortable || fn == &ScanRowAvx2);
}

}  // namespace
}  // namespace emis
