// Tests for the leveled contracts layer (core/contracts.hpp): mode parsing,
// the audit/abort firing semantics, a corrupted-channel demonstration that
// the epoch-consistency invariant actually trips, and the satellite
// acceptance check that audit-mode smoke runs across the algorithm matrix
// complete with zero contract firings.
#include "core/contracts.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "radio/channel.hpp"
#include "radio/graph_generators.hpp"
#include "radio/rng.hpp"

namespace emis {
namespace {

/// RAII guard: forces a contract mode for one test and restores abort (the
/// suite default) afterwards, so test order cannot leak modes.
class ModeGuard {
 public:
  explicit ModeGuard(ContractMode mode) {
    contracts::SetMode(mode);
    contracts::ResetAuditFiringCount();
  }
  ~ModeGuard() { contracts::SetMode(ContractMode::kAbort); }
};

TEST(ContractMode, ParseRecognizesAllLevels) {
  EXPECT_EQ(contracts::ParseMode("off"), ContractMode::kOff);
  EXPECT_EQ(contracts::ParseMode("audit"), ContractMode::kAudit);
  EXPECT_EQ(contracts::ParseMode("abort"), ContractMode::kAbort);
}

TEST(ContractMode, UnknownAndNullDefaultToAbort) {
  EXPECT_EQ(contracts::ParseMode(nullptr), ContractMode::kAbort);
  EXPECT_EQ(contracts::ParseMode(""), ContractMode::kAbort);
  EXPECT_EQ(contracts::ParseMode("loud"), ContractMode::kAbort);
}

TEST(Contracts, AbortModeThrowsTypedErrors) {
  ModeGuard guard(ContractMode::kAbort);
  // EMIS_EXPECTS models precondition violations; the rest are invariants.
  EXPECT_THROW(EMIS_EXPECTS(false, "precondition"), PreconditionError);
  EXPECT_THROW(EMIS_ENSURES(false, "postcondition"), InvariantError);
  EXPECT_THROW(EMIS_INVARIANT(false, "invariant"), InvariantError);
  EXPECT_THROW(EMIS_UNREACHABLE("unreachable"), InvariantError);
}

TEST(Contracts, AuditModeCountsWithoutThrowing) {
  ModeGuard guard(ContractMode::kAudit);
  EXPECT_NO_THROW(EMIS_EXPECTS(false, "precondition"));
  EXPECT_NO_THROW(EMIS_ENSURES(false, "postcondition"));
  EXPECT_NO_THROW(EMIS_INVARIANT(false, "invariant"));
  EXPECT_EQ(contracts::AuditFiringCount(), 3u);
  // A passing check fires nothing.
  EMIS_INVARIANT(true, "holds");
  EXPECT_EQ(contracts::AuditFiringCount(), 3u);
}

TEST(Contracts, OffModeSkipsEvaluationEntirely) {
  ModeGuard guard(ContractMode::kOff);
  int evaluations = 0;
  auto probe = [&]() { ++evaluations; return false; };
  EXPECT_NO_THROW(EMIS_INVARIANT(probe(), "never evaluated"));
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(contracts::AuditFiringCount(), 0u);
}

TEST(Contracts, UnreachableThrowsEvenInAuditMode) {
  // Falling past an UNREACHABLE has no valid continuation, so audit mode
  // cannot log-and-continue through it.
  ModeGuard guard(ContractMode::kAudit);
  EXPECT_THROW(EMIS_UNREACHABLE("no continuation"), InvariantError);
}

// ---------------------------------------------------------------------------
// The corrupted-channel demonstration: a rewound epoch makes stamps point at
// a "future" round, which the epoch-consistency invariant in ResolveListener
// must catch (abort) or count (audit) instead of misreading stale buffers as
// live traffic.

TEST(ChannelEpochInvariant, CorruptedEpochTripsAbort) {
  ModeGuard guard(ContractMode::kAbort);
  const Graph g = gen::Star(5);
  Channel ch(g, ChannelModel::kCd);
  ch.BeginRound();
  ch.AddTransmitter(1, 42);
  ch.CorruptEpochForTesting(0);
  EXPECT_THROW(ch.ResolveListener(0), InvariantError);
}

TEST(ChannelEpochInvariant, CorruptedEpochCountsInAuditMode) {
  ModeGuard guard(ContractMode::kAudit);
  const Graph g = gen::Star(5);
  Channel ch(g, ChannelModel::kCd);
  ch.BeginRound();
  ch.AddTransmitter(1, 42);
  ch.CorruptEpochForTesting(0);
  EXPECT_NO_THROW(ch.ResolveListener(0));
  EXPECT_GE(contracts::AuditFiringCount(), 1u);
}

TEST(ChannelEpochInvariant, UncorruptedChannelFiresNothing) {
  ModeGuard guard(ContractMode::kAudit);
  const Graph g = gen::Star(5);
  Channel ch(g, ChannelModel::kCd);
  ch.BeginRound();
  ch.AddTransmitter(1, 42);
  EXPECT_EQ(ch.ResolveListener(0).payload, 42u);
  EXPECT_EQ(contracts::AuditFiringCount(), 0u);
}

// ---------------------------------------------------------------------------
// Audit-mode smoke matrix: representative configs across the algorithm,
// loss and resolution axes must complete with zero contract firings — the
// contracts describe the code, they don't flag healthy runs.

struct SmokeCase {
  MisAlgorithm algorithm;
  double link_loss;
  ChannelResolution resolution;
};

class AuditSmoke : public ::testing::TestWithParam<SmokeCase> {};

TEST_P(AuditSmoke, RunsWithZeroContractFirings) {
  ModeGuard guard(ContractMode::kAudit);
  const SmokeCase& c = GetParam();
  Rng graph_rng(7);
  const Graph g = gen::ErdosRenyi(96, 0.06, graph_rng);
  MisRunConfig config;
  config.algorithm = c.algorithm;
  config.seed = 11;
  config.link_loss = c.link_loss;
  config.resolution = c.resolution;
  const MisRunResult result = RunMis(g, config);
  // Lossy channels may legitimately leave the MIS incomplete at smoke sizes;
  // the contract question is only whether healthy code paths fire checks.
  if (c.link_loss == 0.0) {
    EXPECT_TRUE(result.Valid());
  }
  EXPECT_EQ(contracts::AuditFiringCount(), 0u)
      << "audit-mode contracts fired during a healthy run";
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmMatrix, AuditSmoke,
    ::testing::Values(
        SmokeCase{MisAlgorithm::kCd, 0.0, ChannelResolution::kAuto},
        SmokeCase{MisAlgorithm::kCdBeeping, 0.0, ChannelResolution::kPull},
        SmokeCase{MisAlgorithm::kNoCd, 0.0, ChannelResolution::kPush},
        SmokeCase{MisAlgorithm::kNoCdUnknownDelta, 0.0, ChannelResolution::kAuto},
        SmokeCase{MisAlgorithm::kCd, 0.1, ChannelResolution::kAuto},
        SmokeCase{MisAlgorithm::kNoCdRoundEfficient, 0.0, ChannelResolution::kAuto}));

}  // namespace
}  // namespace emis
