// Pins the hot/cold context split and the flat-lane geometry the resume
// loop's cache behavior depends on (DESIGN.md §12.2). The size budgets in
// radio/size_budget.hpp are already static_asserted at the definition
// sites; these tests additionally pin *placement* — field offsets, packing
// of the status flags into one byte, and the strides the flat factories
// publish — so a well-intentioned reorder that stays under a byte budget
// but splits a hot field pair across cache lines still fails visibly.
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "core/delta_doubling.hpp"
#include "core/flat_mis.hpp"
#include "core/params.hpp"
#include "core/status.hpp"
#include "radio/process.hpp"
#include "radio/size_budget.hpp"
#include "radio/types.hpp"

namespace emis {
namespace {

// ---------------------------------------------------------------------------
// HotNodeContext: the 16-byte half the scheduler streams on every resume.
// ---------------------------------------------------------------------------

static_assert(std::is_standard_layout_v<HotNodeContext>,
              "offsetof below requires standard layout — keep all members "
              "public and non-virtual");
static_assert(std::is_trivially_copyable_v<HotNodeContext>,
              "hot contexts are bulk-initialized in a flat vector");

TEST(HotContextLayout, SizeAlignmentAndFieldPlacement) {
  EXPECT_EQ(sizeof(HotNodeContext), kHotContextBytes);
  EXPECT_EQ(alignof(HotNodeContext), alignof(std::uint64_t));
  // The action argument fills the first word; the narrowed clock and the
  // packed flags byte share the second. Moving or widening any of these
  // changes which lines the resume loop touches (16 B = four contexts per
  // line, none straddling) — that is what this pin is for.
  EXPECT_EQ(offsetof(HotNodeContext, arg), 0u);
  EXPECT_EQ(offsetof(HotNodeContext, now), 8u);
  EXPECT_EQ(offsetof(HotNodeContext, flags), 12u);
}

TEST(HotContextLayout, DefaultIsParkedSleeper) {
  const HotNodeContext hot;
  EXPECT_EQ(hot.now, 0u);
  EXPECT_EQ(hot.Pending(), ActionKind::kSleep);
  EXPECT_FALSE(hot.Done());
  EXPECT_FALSE(hot.RetireRequested());
  EXPECT_FALSE(hot.Retired());
}

TEST(HotContextLayout, ActionFilingOverwritesTheArgumentSlot) {
  HotNodeContext hot;
  // The u64 argument is an overlay: transmit payload and wake round never
  // coexist because filing an action overwrites both the kind and the slot.
  hot.FileTransmit(0xabcdu);
  EXPECT_EQ(hot.Pending(), ActionKind::kTransmit);
  EXPECT_EQ(hot.Payload(), 0xabcdu);
  hot.FileSleep(17);
  EXPECT_EQ(hot.Pending(), ActionKind::kSleep);
  EXPECT_EQ(hot.WakeRound(), 17u);
  hot.FileListen();
  EXPECT_EQ(hot.Pending(), ActionKind::kListen);
}

TEST(HotContextLayout, StatusBitsPackAndSurviveRefiling) {
  HotNodeContext hot;
  hot.MarkDone();
  EXPECT_TRUE(hot.Done());
  EXPECT_EQ(hot.Pending(), ActionKind::kSleep);  // status bits ≠ action bits
  hot.RequestRetire();
  EXPECT_TRUE(hot.RetireRequested());
  EXPECT_FALSE(hot.Retired());
  // Retiring consumes the request in the same single-byte update.
  hot.MarkRetired();
  EXPECT_TRUE(hot.Retired());
  EXPECT_FALSE(hot.RetireRequested());
  // Filing actions touches only the low pending bits.
  hot.FileTransmit(1);
  EXPECT_TRUE(hot.Done());
  EXPECT_TRUE(hot.Retired());
  EXPECT_EQ(hot.Pending(), ActionKind::kTransmit);
}

// ---------------------------------------------------------------------------
// ColdNodeContext: the rarely-touched half (parallel array).
// ---------------------------------------------------------------------------

TEST(ColdContextLayout, SizeAlignmentAndFieldOrder) {
  EXPECT_LE(sizeof(ColdNodeContext), kColdContextBytes);
  EXPECT_EQ(alignof(ColdNodeContext), 8u);
  // Pin the declaration order by address (offsetof on a struct with a
  // non-trivial Rng member is only conditionally supported): RNG state
  // first (the most common cold access, protocol draws), then the listen
  // result, then the coroutine/pointer tail.
  const ColdNodeContext cold;
  const char* base = reinterpret_cast<const char*>(&cold);
  EXPECT_EQ(reinterpret_cast<const char*>(&cold.rng) - base, 0);
  EXPECT_LT(reinterpret_cast<const char*>(&cold.rng),
            reinterpret_cast<const char*>(&cold.last_reception));
  EXPECT_LT(reinterpret_cast<const char*>(&cold.last_reception),
            reinterpret_cast<const char*>(&cold.resume_point));
  EXPECT_LT(reinterpret_cast<const char*>(&cold.resume_point),
            reinterpret_cast<const char*>(&cold.energy));
  EXPECT_LT(reinterpret_cast<const char*>(&cold.energy),
            reinterpret_cast<const char*>(&cold.timeline));
  EXPECT_LT(reinterpret_cast<const char*>(&cold.timeline),
            reinterpret_cast<const char*>(&cold.id));
}

TEST(ContextView, IsTwoPointers) {
  EXPECT_EQ(sizeof(NodeContext), kContextViewBytes);
  static_assert(std::is_trivially_copyable_v<NodeContext>,
                "the view is passed by value through Step/NodeApi");
}

// ---------------------------------------------------------------------------
// Flat lane strides: what the factories publish is what the scheduler
// prefetches by, and what mem.lane_bytes reports.
// ---------------------------------------------------------------------------

TEST(LaneStrides, StayWithinBudgets) {
  std::vector<MisStatus> out(4);
  EXPECT_LE(FlatMisCdProtocol(CdParams::Practical(64), &out, 4)->Lanes().stride,
            kCdLaneBytes);
  EXPECT_LE(FlatSimulatedCdMisProtocol(SimCdParams::LowDegree(64, 7, 4, 4, 2),
                                       &out, 4)
                ->Lanes()
                .stride,
            kSimCdLaneBytes);
  EXPECT_LE(
      FlatGhaffariMisProtocol(GhaffariParams::Practical(64, 8), &out, 4)
          ->Lanes()
          .stride,
      kGhaffariLaneBytes);
  EXPECT_LE(FlatMisNoCdProtocol(NoCdParams::Practical(64, 8), &out, 4)
                ->Lanes()
                .stride,
            kNoCdLaneBytes);
  EXPECT_LE(
      FlatDeltaDoublingMisProtocol(DeltaDoublingParams::Practical(64), &out, 4)
          ->Lanes()
          .stride,
      kDeltaLaneBytes);
}

}  // namespace
}  // namespace emis
