#include "apps/coloring.hpp"

#include <gtest/gtest.h>

#include "radio/graph_generators.hpp"

namespace emis {
namespace {

ColoringResult Color(const Graph& g, std::uint64_t seed) {
  const ColoringParams params = ColoringParams::Practical(
      std::max<NodeId>(g.NumNodes(), 2), g.MaxDegree());
  return ColorGraph(g, params, seed);
}

TEST(Coloring, SingleNodeGetsColorZero) {
  const auto r = Color(gen::Empty(1), 1);
  EXPECT_TRUE(r.AllColored());
  EXPECT_EQ(r.color[0], 0u);
  EXPECT_EQ(r.colors_used, 1u);
}

TEST(Coloring, EdgelessGraphIsMonochromatic) {
  const auto r = Color(gen::Empty(12), 2);
  EXPECT_TRUE(r.AllColored());
  EXPECT_EQ(r.colors_used, 1u);
}

TEST(Coloring, PathUsesFewColors) {
  Graph g = gen::Path(40);
  const auto r = Color(g, 3);
  EXPECT_EQ(CheckColoring(g, r, ColoringParams::Practical(40, 2).max_colors), "");
  // Path is 2-colorable; iterated MIS typically needs 2-3.
  EXPECT_LE(r.colors_used, 4u);
}

TEST(Coloring, CompleteGraphNeedsExactlyN) {
  Graph g = gen::Complete(10);
  const auto r = Color(g, 4);
  EXPECT_EQ(CheckColoring(g, r, ColoringParams::Practical(10, 9).max_colors), "");
  EXPECT_EQ(r.colors_used, 10u);  // χ(K_10) = 10, one new color per epoch
}

TEST(Coloring, ValidAcrossFamilies) {
  Rng rng(5);
  const Graph graphs[] = {
      gen::Cycle(31),
      gen::Grid(6, 6),
      gen::Star(25),
      gen::ErdosRenyi(100, 0.08, rng),
      gen::RandomGeometric(80, 0.2, rng),
      gen::DisjointCliques(5, 5),
      gen::CompleteBipartite(10, 12),
  };
  std::uint64_t seed = 20;
  for (const Graph& g : graphs) {
    const ColoringParams params = ColoringParams::Practical(
        std::max<NodeId>(g.NumNodes(), 2), g.MaxDegree());
    const auto r = ColorGraph(g, params, seed++);
    EXPECT_EQ(CheckColoring(g, r, params.max_colors), "")
        << "n=" << g.NumNodes() << " Δ=" << g.MaxDegree();
  }
}

TEST(Coloring, ColorsStayNearDeltaPlusOne) {
  // The structural bound: node v is colored by epoch deg(v)+1 when every
  // epoch is maximal, so colors_used <= Δ+1 whp (budget adds slack only for
  // the undecided tail).
  Rng rng(6);
  Graph g = gen::NearRegular(120, 6, rng);
  const auto r = Color(g, 7);
  const ColoringParams params = ColoringParams::Practical(120, g.MaxDegree());
  ASSERT_EQ(CheckColoring(g, r, params.max_colors), "");
  EXPECT_LE(r.colors_used, g.MaxDegree() + 1);
}

TEST(Coloring, BipartiteOftenUsesFewColors) {
  Graph g = gen::CompleteBipartite(15, 15);
  const auto r = Color(g, 8);
  const ColoringParams params = ColoringParams::Practical(30, 15);
  ASSERT_EQ(CheckColoring(g, r, params.max_colors), "");
  // Each epoch's MIS in K_{a,b} is one full side: 2 colors, always.
  EXPECT_EQ(r.colors_used, 2u);
}

TEST(Coloring, DeterministicGivenSeed) {
  Rng rng(9);
  Graph g = gen::ErdosRenyi(60, 0.1, rng);
  const auto a = Color(g, 11);
  const auto b = Color(g, 11);
  EXPECT_EQ(a.color, b.color);
}

TEST(Coloring, RoundsWithinSchedule) {
  Rng rng(10);
  Graph g = gen::ErdosRenyi(80, 0.1, rng);
  const ColoringParams params = ColoringParams::Practical(80, g.MaxDegree());
  const auto r = ColorGraph(g, params, 2);
  ASSERT_EQ(CheckColoring(g, r, params.max_colors), "");
  EXPECT_LE(r.stats.rounds_used, params.TotalRounds());
}

TEST(Coloring, CheckerCatchesViolations) {
  Graph g = gen::Path(3);
  ColoringResult bad;
  bad.color = {0, 0, 1};  // monochromatic edge 0-1
  EXPECT_NE(CheckColoring(g, bad, 5), "");
  bad.color = {0, kUncolored, 0};  // uncolored node
  EXPECT_NE(CheckColoring(g, bad, 5), "");
  bad.color = {0, 7, 0};  // out of budget
  EXPECT_NE(CheckColoring(g, bad, 5), "");
  bad.color = {0, 1, 0};
  EXPECT_EQ(CheckColoring(g, bad, 5), "");
}

}  // namespace
}  // namespace emis
