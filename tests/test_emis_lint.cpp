// Fixture tests for the emis_lint rule engine: every rule has a positive
// fixture (violating source → finding), a negative fixture (idiomatic source
// → clean), and a suppression fixture (violation + waiver → suppressed, not
// reported). The suite ends with the acceptance gate: the real tree must lint
// clean.
#include "tools/emis_lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace {

using emis_lint::Finding;
using emis_lint::LintSource;
using emis_lint::Report;

bool HasRule(const Report& r, std::string_view rule) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// ---------------------------------------------------------------------------
// banned-random

TEST(BannedRandom, FlagsRandCallAndMt19937) {
  const Report r = LintSource("src/core/bad.cpp",
                              "int f() { return rand() % 7; }\n"
                              "std::mt19937 gen(42);\n");
  EXPECT_EQ(r.findings.size(), 2u);
  EXPECT_TRUE(HasRule(r, "banned-random"));
}

TEST(BannedRandom, FlagsRandomDeviceSeed) {
  const Report r = LintSource("bench/bad.cpp",
                              "std::random_device rd;\n"
                              "auto seed = rd();\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "banned-random");
  EXPECT_EQ(r.findings[0].line, 1);
}

TEST(BannedRandom, CleanOnEmisRngAndObsScope) {
  // Idiomatic: seed-addressed Rng. Also: src/obs/ is exempt.
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "emis::Rng rng(seed);\n"
                         "auto child = rng.Split(3);\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("src/obs/ok.cpp", "std::random_device rd;\n")
                  .findings.empty());
}

TEST(BannedRandom, IgnoresCommentsAndStrings) {
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "// rand() is banned here\n"
                         "const char* msg = \"no rand() allowed\";\n"
                         "/* std::mt19937 would be wrong */\n")
                  .findings.empty());
}

TEST(BannedRandom, SuppressedByAllowComment) {
  const Report r = LintSource(
      "src/core/waived.cpp",
      "int f() { return rand(); }  // emis-lint: allow(banned-random)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// banned-clock

TEST(BannedClock, FlagsSteadyClockOutsideObs) {
  const Report r = LintSource(
      "src/verify/bad.cpp",
      "double now() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "banned-clock");
}

TEST(BannedClock, FlagsPosixClockInTools) {
  const Report r = LintSource("tools/bad.cpp",
                              "void f(timespec* t) { clock_gettime(0, t); }\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "banned-clock");
}

TEST(BannedClock, ObsAndBenchAreSanctioned) {
  // src/obs/ is the sanctioned clock layer; benches time themselves freely.
  EXPECT_TRUE(LintSource("src/obs/timer.hpp",
                         "auto t = std::chrono::steady_clock::now();\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("bench/bench_x.cpp",
                         "auto t = std::chrono::steady_clock::now();\n")
                  .findings.empty());
}

TEST(BannedClock, IncludeLineDoesNotTrigger) {
  EXPECT_TRUE(
      LintSource("src/core/ok.cpp", "#include <chrono>\nint x = 0;\n")
          .findings.empty());
}

TEST(BannedClock, LineAboveWaiverSuppresses) {
  const Report r = LintSource("src/core/waived.cpp",
                              "// emis-lint: allow(banned-clock)\n"
                              "auto t = std::chrono::system_clock::now();\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// unordered-iteration

TEST(UnorderedIteration, FlagsAccumulatingRangeFor) {
  const Report r = LintSource(
      "src/core/bad.cpp",
      "std::unordered_map<int, double> m;\n"
      "double total = 0;\n"
      "void f(std::vector<int>* out) {\n"
      "  for (const auto& [k, v] : m) { total += v; out->push_back(k); }\n"
      "}\n");
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings[0].rule, "unordered-iteration");
  EXPECT_EQ(r.findings[0].line, 4);
}

TEST(UnorderedIteration, FlagsThroughTypeAlias) {
  const Report r = LintSource(
      "src/core/bad.cpp",
      "using NodeSet = std::unordered_set<int>;\n"
      "void f(NodeSet s, std::vector<int>* out) {\n"
      "  for (int v : s) out->push_back(v);\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, "unordered-iteration"));
}

TEST(UnorderedIteration, ReadOnlyBodyAndOrderedMapAreClean) {
  // Pure reads over unordered containers are order-insensitive; ordered maps
  // may accumulate freely.
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "std::unordered_set<int> s;\n"
                         "bool f(int x) {\n"
                         "  bool found = false;\n"
                         "  for (int v : s) if (v == x) found = true;\n"
                         "  return found;\n"
                         "}\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "std::map<int, int> m;\n"
                         "void f(std::vector<int>* out) {\n"
                         "  for (const auto& [k, v] : m) out->push_back(k);\n"
                         "}\n")
                  .findings.empty());
}

TEST(UnorderedIteration, FlagsAccumulatingIteratorLoop) {
  // The iterator form walks the same unspecified bucket order as the range
  // form; an explicit .begin() loop must not slip past the rule.
  const Report r = LintSource(
      "src/core/bad.cpp",
      "std::unordered_map<int, double> m;\n"
      "void f(std::vector<int>* out) {\n"
      "  for (auto it = m.begin(); it != m.end(); ++it) {\n"
      "    out->push_back(it->first);\n"
      "  }\n"
      "}\n");
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings[0].rule, "unordered-iteration");
  EXPECT_EQ(r.findings[0].line, 3);
}

TEST(UnorderedIteration, FlagsIteratorLoopThroughAlias) {
  const Report r = LintSource(
      "src/core/bad.cpp",
      "using Pending = std::unordered_set<int>;\n"
      "void f(Pending pending, std::vector<int>* out) {\n"
      "  for (auto it = pending.cbegin(); it != pending.cend(); ++it) {\n"
      "    out->push_back(*it);\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, "unordered-iteration"));
}

TEST(UnorderedIteration, ReadOnlyIteratorLoopAndIndexLoopAreClean) {
  // A read-only iterator walk is order-insensitive, and an index loop over a
  // vector (the SoA lane idiom) has a deterministic order by construction.
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "std::unordered_set<int> s;\n"
                         "bool f(int x) {\n"
                         "  for (auto it = s.begin(); it != s.end(); ++it)\n"
                         "    if (*it == x) return true;\n"
                         "  return false;\n"
                         "}\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "std::vector<int> lanes;\n"
                         "void f(std::vector<int>* out) {\n"
                         "  for (std::size_t v = 0; v < lanes.size(); ++v)\n"
                         "    out->push_back(lanes[v]);\n"
                         "}\n")
                  .findings.empty());
}

TEST(UnorderedIteration, SuppressedByWaiver) {
  const Report r = LintSource(
      "src/core/waived.cpp",
      "std::unordered_set<int> s;\n"
      "void f(std::vector<int>* out) {\n"
      "  // commutative dedup: emitted order is re-sorted by the caller\n"
      "  // emis-lint: allow(unordered-iteration)\n"
      "  for (int v : s) out->push_back(v);\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// raw-assert

TEST(RawAssert, FlagsAssertCall) {
  const Report r =
      LintSource("src/core/bad.cpp", "void f(int x) { assert(x > 0); }\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "raw-assert");
}

TEST(RawAssert, ContractMacrosAndStaticAssertAreClean) {
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "void f(int x) {\n"
                         "  EMIS_EXPECTS(x > 0, \"x positive\");\n"
                         "  static_assert(sizeof(int) >= 4);\n"
                         "}\n")
                  .findings.empty());
}

TEST(RawAssert, SuppressedByWaiver) {
  const Report r = LintSource(
      "tools/waived.cpp",
      "void f(int x) { assert(x); }  // emis-lint: allow(raw-assert)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// io-in-library

TEST(IoInLibrary, FlagsCoutAndPrintf) {
  const Report r = LintSource("src/core/bad.cpp",
                              "void f() {\n"
                              "  std::cout << \"hi\";\n"
                              "  printf(\"%d\", 3);\n"
                              "}\n");
  EXPECT_EQ(r.findings.size(), 2u);
  EXPECT_TRUE(HasRule(r, "io-in-library"));
}

TEST(IoInLibrary, ObsToolsAndBenchAreExempt) {
  EXPECT_TRUE(LintSource("src/obs/sink.cpp", "std::cout << x;\n").findings.empty());
  EXPECT_TRUE(LintSource("tools/cli.cpp", "printf(\"ok\\n\");\n").findings.empty());
  EXPECT_TRUE(LintSource("bench/b.cpp", "std::cout << x;\n").findings.empty());
}

TEST(IoInLibrary, SuppressedByWaiver) {
  const Report r = LintSource(
      "src/core/waived.cpp",
      "std::cerr << \"x\";  // emis-lint: allow(io-in-library)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(IoInLibrary, FlagsFileWritesAnywhereInSrc) {
  // File-writing is banned across ALL of src/ — including src/obs/, where
  // console I/O is otherwise sanctioned.
  const Report r = LintSource("src/radio/bad.cpp",
                              "void Dump(const char* path) {\n"
                              "  std::ofstream out(path);\n"
                              "  out << 42;\n"
                              "}\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "io-in-library");
  EXPECT_EQ(r.findings[0].line, 2);

  const Report in_obs = LintSource("src/obs/unsanctioned.cpp",
                                   "void f() { FILE* fp = fopen(\"x\", \"w\"); }\n");
  ASSERT_EQ(in_obs.findings.size(), 1u);
  EXPECT_EQ(in_obs.findings[0].rule, "io-in-library");
}

TEST(IoInLibrary, StreamSinkOpenerIsTheOnlyWaivedWriter) {
  // The exact path on the waiver list passes; a sibling with identical
  // content does not — the sanction is per-file, not per-directory.
  const std::string body =
      "std::ofstream stream(path, std::ios::out);\n";
  EXPECT_TRUE(LintSource("src/obs/stream_sink.cpp", body).findings.empty());
  EXPECT_FALSE(LintSource("src/obs/other_sink.cpp", body).findings.empty());
  EXPECT_EQ(emis_lint::detail::IoWriteWaivers().count("src/obs/stream_sink.cpp"),
            1u);
}

TEST(IoInLibrary, ReadsAndToolWritersStayClean) {
  // ifstream reads are fine in the library; tools/bench own their output.
  EXPECT_TRUE(LintSource("src/obs/report.cpp",
                         "std::ifstream in(path);\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("tools/cli.cpp", "std::ofstream out(path);\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("bench/b.cpp", "FILE* f = fopen(\"x\", \"w\");\n")
                  .findings.empty());
}

// ---------------------------------------------------------------------------
// float-accumulate-in-reduce

TEST(FloatAccumulateInReduce, FlagsFloatPlusEqualsInMerge) {
  const Report r = LintSource("src/obs/bad.cpp",
                              "struct H {\n"
                              "  double sum_ = 0;\n"
                              "  void MergeFrom(const H& o) { sum_ += o.sum_; }\n"
                              "};\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "float-accumulate-in-reduce");
  EXPECT_EQ(r.findings[0].line, 3);
}

TEST(FloatAccumulateInReduce, SeesSiblingHeaderDeclaration) {
  // The member's type lives in the .hpp; the += lives in the .cpp. The
  // corpus-level symbol pool must connect them through the shared path stem.
  emis_lint::Corpus corpus;
  corpus.files.push_back(emis_lint::Lex("src/obs/thing.hpp",
                                        "struct Thing {\n"
                                        "  double total_ = 0;\n"
                                        "  void Merge(const Thing& o);\n"
                                        "};\n"));
  corpus.files.push_back(emis_lint::Lex(
      "src/obs/thing.cpp",
      "void Thing::Merge(const Thing& o) { total_ += o.total_; }\n"));
  const Report r = emis_lint::Lint(corpus);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "float-accumulate-in-reduce");
  EXPECT_EQ(r.findings[0].file, "src/obs/thing.cpp");
}

TEST(FloatAccumulateInReduce, IntegerAccumulationAndNonReduceAreClean) {
  // Integral += in a merge is exact; float += outside reduce paths is fine.
  EXPECT_TRUE(LintSource("src/obs/ok.cpp",
                         "struct H {\n"
                         "  std::uint64_t n_ = 0;\n"
                         "  void MergeFrom(const H& o) { n_ += o.n_; }\n"
                         "};\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("src/obs/ok.cpp",
                         "struct H {\n"
                         "  double sum_ = 0;\n"
                         "  void Observe(double x) { sum_ += x; }\n"
                         "};\n")
                  .findings.empty());
}

TEST(FloatAccumulateInReduce, SuppressedByWaiver) {
  const Report r = LintSource(
      "src/obs/waived.cpp",
      "struct H {\n"
      "  double sum_ = 0;\n"
      "  void MergeFrom(const H& o) {\n"
      "    sum_ += o.sum_;  // emis-lint: allow(float-accumulate-in-reduce)\n"
      "  }\n"
      "};\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// rng-seed-from-draw

TEST(RngSeedFromDraw, FlagsConstructionFromDraw) {
  const Report r = LintSource("src/core/bad.cpp",
                              "void f(emis::Rng& parent) {\n"
                              "  Rng child(parent.NextU64());\n"
                              "}\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "rng-seed-from-draw");
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST(RngSeedFromDraw, FlagsBraceInitFromDraw) {
  const Report r = LintSource("src/core/bad.cpp",
                              "Rng MakeChild(Rng& p) { return Rng{p.UniformBelow(99)}; }\n");
  EXPECT_TRUE(HasRule(r, "rng-seed-from-draw"));
}

TEST(RngSeedFromDraw, SplitAndNamedSeedsAreClean) {
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "void f(emis::Rng& parent, std::uint64_t seed) {\n"
                         "  Rng direct(seed);\n"
                         "  Rng child = parent.Split(7);\n"
                         "  Rng hashed(CounterHash(seed, 12));\n"
                         "}\n")
                  .findings.empty());
}

TEST(RngSeedFromDraw, ClassDefinitionDoesNotTrigger) {
  // `class Rng { ... NextU64 ... }` is the type defining its own draw
  // methods, not a stream seeded from a draw.
  EXPECT_TRUE(LintSource("src/radio/ok.hpp",
                         "class Rng {\n"
                         " public:\n"
                         "  std::uint64_t NextU64() noexcept { return gen_(); }\n"
                         "};\n")
                  .findings.empty());
}

TEST(RngSeedFromDraw, SuppressedByWaiver) {
  const Report r = LintSource(
      "src/core/waived.cpp",
      "Rng child(parent.NextU64());  // emis-lint: allow(rng-seed-from-draw)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// raw-thread

TEST(RawThread, FlagsThreadJthreadAndAsync) {
  const Report r = LintSource("src/core/bad.cpp",
                              "void f() {\n"
                              "  std::thread t([] {});\n"
                              "  std::jthread j([] {});\n"
                              "  auto fut = std::async([] { return 1; });\n"
                              "}\n");
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].rule, "raw-thread");
  EXPECT_EQ(r.findings[0].line, 2);
  EXPECT_EQ(r.findings[1].line, 3);
  EXPECT_EQ(r.findings[2].line, 4);
}

TEST(RawThread, PoolFileAndConcurrencyReadAreClean) {
  // The pool implementation is the sanctioned spawner; everyone else may
  // still read the machine shape.
  EXPECT_TRUE(LintSource("src/verify/parallel.cpp",
                         "void Pool() { std::thread t([] {}); t.join(); }\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("bench/bench_x.cpp",
                         "unsigned n = std::thread::hardware_concurrency();\n")
                  .findings.empty());
  // Member named `thread` without the std:: qualifier is someone's field,
  // not a spawn.
  EXPECT_TRUE(LintSource("src/core/ok.cpp", "int thread = 3;\n").findings.empty());
}

TEST(RawThread, FlagsInBenchAndTools) {
  EXPECT_TRUE(HasRule(LintSource("bench/bad.cpp",
                                 "void f() { std::thread t([] {}); t.join(); }\n"),
                      "raw-thread"));
  EXPECT_TRUE(HasRule(LintSource("tools/bad.cpp",
                                 "auto r = std::async([] { return 2; });\n"),
                      "raw-thread"));
}

TEST(RawThread, SuppressedByWaiver) {
  const Report r = LintSource(
      "src/core/waived.cpp",
      "std::thread t([] {});  // emis-lint: allow(raw-thread)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// Engine mechanics

TEST(Engine, FileWideWaiverSuppressesAllInstances) {
  const Report r = LintSource("src/core/waived.cpp",
                              "// emis-lint: allow-file(banned-random)\n"
                              "int a = rand();\n"
                              "int b = rand();\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 2u);
}

TEST(Engine, WaiverForOtherRuleDoesNotSuppress) {
  const Report r = LintSource(
      "src/core/bad.cpp",
      "int a = rand();  // emis-lint: allow(banned-clock)\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "banned-random");
}

TEST(Engine, RawStringContentIsOpaque) {
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "const char* doc = R\"(call rand() and\n"
                         "std::chrono::steady_clock freely in prose)\";\n")
                  .findings.empty());
}

TEST(Engine, FindingsAreSortedByFileLineRule) {
  emis_lint::Corpus corpus;
  corpus.files.push_back(emis_lint::Lex("src/z.cpp", "int a = rand();\n"));
  corpus.files.push_back(
      emis_lint::Lex("src/a.cpp", "int b = rand();\nint c = rand();\n"));
  const Report r = emis_lint::Lint(corpus);
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].file, "src/a.cpp");
  EXPECT_EQ(r.findings[0].line, 1);
  EXPECT_EQ(r.findings[1].line, 2);
  EXPECT_EQ(r.findings[2].file, "src/z.cpp");
}

TEST(Engine, JsonReportCarriesSchemaAndFindings) {
  const Report r = LintSource("src/core/bad.cpp", "int a = rand();\n");
  const std::string json = emis_lint::ToJson(r, "/repo");
  EXPECT_NE(json.find("\"schema\": \"emis-lint-report/2\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"banned-random\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"symbols_indexed\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"call_edges\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": "), std::string::npos);
  EXPECT_NE(json.find("\"suppressed_by_rule\": {}"), std::string::npos);
  // Token findings carry no symbol/witness keys.
  EXPECT_EQ(json.find("\"symbol\""), std::string::npos);
  EXPECT_EQ(json.find("\"witness\""), std::string::npos);
}

TEST(Engine, JsonEscapesControlAndQuoteCharacters) {
  EXPECT_EQ(emis_lint::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---------------------------------------------------------------------------
// Pass 1: symbol index

TEST(SymbolIndex, IndexesDefinitionsCallsAndRegions) {
  emis_lint::Corpus corpus;
  corpus.files.push_back(emis_lint::Lex(
      "src/radio/x.cpp",
      "void Scheduler::RunRound() {\n"
      "  Prepare();\n"
      "  par::ParallelFor(jobs_, shards_, [&](std::uint64_t s, unsigned w) {\n"
      "    ShardPass(s);\n"
      "  });\n"
      "}\n"
      "void Scheduler::Prepare() { counter_ = 0; }\n"));
  const emis_lint::SymbolIndex index = emis_lint::BuildIndex(corpus);
  ASSERT_EQ(index.functions.size(), 2u);
  EXPECT_EQ(index.functions[0].qualified, "Scheduler::RunRound");
  EXPECT_EQ(index.functions[0].line, 1);
  ASSERT_EQ(index.regions.size(), 1u);
  EXPECT_EQ(index.regions[0].enclosing, "RunRound");
  EXPECT_EQ(index.regions[0].line, 3);
  EXPECT_TRUE(index.regions[0].captures_by_ref);
  ASSERT_EQ(index.regions[0].params.size(), 2u);
  EXPECT_EQ(index.regions[0].params[0], "s");
  EXPECT_EQ(index.regions[0].params[1], "w");
  ASSERT_EQ(index.regions[0].calls.size(), 1u);
  EXPECT_EQ(index.regions[0].calls[0].name, "ShardPass");
  EXPECT_GT(index.call_edges, 0u);
}

TEST(SymbolIndex, ReceiverRootDisambiguatesQualifiedCalls) {
  emis_lint::Corpus corpus;
  corpus.files.push_back(emis_lint::Lex(
      "src/verify/x.cpp",
      "void F() {\n"
      "  Pool::Instance().Run(jobs, dispatch);\n"
      "  scheduler.Run();\n"
      "}\n"));
  const emis_lint::SymbolIndex index = emis_lint::BuildIndex(corpus);
  ASSERT_EQ(index.functions.size(), 1u);
  const auto& calls = index.functions[0].calls;
  ASSERT_EQ(calls.size(), 3u);  // Instance, Run, Run
  EXPECT_EQ(calls[1].name, "Run");
  EXPECT_EQ(calls[1].receiver, "Pool");
  EXPECT_EQ(calls[2].name, "Run");
  EXPECT_EQ(calls[2].receiver, "scheduler");
}

TEST(SymbolIndex, GuardReadIsDistinguishedFromAssignment) {
  emis_lint::Corpus corpus;
  corpus.files.push_back(emis_lint::Lex(
      "src/verify/parallel.cpp",
      // Run only ASSIGNS the flag (dispatcher marker); ParallelFor READS it.
      "void Run() { tl_in_pool_worker = true; Work(); tl_in_pool_worker = false; }\n"
      "void ParallelFor(unsigned jobs) { if (jobs <= 1 || tl_in_pool_worker) return; }\n"));
  const emis_lint::SymbolIndex index = emis_lint::BuildIndex(corpus);
  ASSERT_EQ(index.functions.size(), 2u);
  EXPECT_FALSE(index.functions[0].reads_pool_guard);
  EXPECT_TRUE(index.functions[1].reads_pool_guard);
}

// ---------------------------------------------------------------------------
// nested-dispatch — the PR 8 deadlock fixture
//
// Three files shaped like the pre-fix PR 8 tree: a pool whose ParallelFor
// does NOT read tl_in_pool_worker, a scheduler whose sharded round body
// transitively reaches ParallelFor, and the sweep that dispatches trials.

namespace fixtures {

// Pre-fix dispatcher: the serial-inline branch tests only jobs/count, so a
// nested call from a worker re-enters Pool::Run and deadlocks.
constexpr const char* kPoolPreFix =
    "namespace emis::par {\n"
    "thread_local bool tl_in_pool_worker = false;\n"
    "void Pool::Run(unsigned jobs, Dispatch& dispatch) {\n"
    "  tl_in_pool_worker = true;\n"
    "  dispatch.RunWorker(0);\n"
    "  tl_in_pool_worker = false;\n"
    "}\n"
    "void ParallelFor(unsigned jobs, std::uint64_t count, const IndexFn& fn) {\n"
    "  if (jobs <= 1 || count <= 1) {\n"
    "    for (std::uint64_t i = 0; i < count; ++i) fn(i, 0);\n"
    "    return;\n"
    "  }\n"
    "  Dispatch dispatch;\n"
    "  Pool::Instance().Run(jobs, dispatch);\n"
    "}\n"
    "}\n";

// The fixed dispatcher: identical but for the tl_in_pool_worker READ in the
// inline guard (the PR 8 fix).
constexpr const char* kPoolFixed =
    "namespace emis::par {\n"
    "thread_local bool tl_in_pool_worker = false;\n"
    "void Pool::Run(unsigned jobs, Dispatch& dispatch) {\n"
    "  tl_in_pool_worker = true;\n"
    "  dispatch.RunWorker(0);\n"
    "  tl_in_pool_worker = false;\n"
    "}\n"
    "void ParallelFor(unsigned jobs, std::uint64_t count, const IndexFn& fn) {\n"
    "  if (jobs <= 1 || count <= 1 || tl_in_pool_worker) {\n"
    "    for (std::uint64_t i = 0; i < count; ++i) fn(i, 0);\n"
    "    return;\n"
    "  }\n"
    "  Dispatch dispatch;\n"
    "  Pool::Instance().Run(jobs, dispatch);\n"
    "}\n"
    "}\n";

// Sharded scheduler round: the shard body reaches ParallelFor two hops down.
constexpr const char* kScheduler =
    "void Scheduler::RunRound() {\n"
    "  par::ParallelFor(jobs_, shards_, [&](std::uint64_t s, unsigned) {\n"
    "    ShardPass(s);\n"
    "  });\n"
    "}\n"
    "void Scheduler::ShardPass(std::uint64_t s) { Relax(s); }\n"
    "void Scheduler::Relax(std::uint64_t s) {\n"
    "  par::ParallelFor(2, 8, [&](std::uint64_t i, unsigned) { Work(i); });\n"
    "}\n";

emis_lint::Corpus DeadlockTree(bool fixed) {
  emis_lint::Corpus corpus;
  corpus.files.push_back(emis_lint::Lex("src/verify/parallel.cpp",
                                        fixed ? kPoolFixed : kPoolPreFix));
  corpus.files.push_back(emis_lint::Lex("src/radio/scheduler.cpp", kScheduler));
  return corpus;
}

}  // namespace fixtures

TEST(NestedDispatch, FiresOnPreFixPoolWithWitnessChain) {
  const Report r = emis_lint::Lint(fixtures::DeadlockTree(/*fixed=*/false));
  ASSERT_TRUE(HasRule(r, "nested-dispatch"));
  const auto it =
      std::find_if(r.findings.begin(), r.findings.end(),
                   [](const Finding& f) { return f.rule == "nested-dispatch"; });
  EXPECT_EQ(it->file, "src/radio/scheduler.cpp");
  EXPECT_EQ(it->line, 2);  // the outer ParallelFor region
  EXPECT_EQ(it->symbol, "RunRound");
  // Witness walks region → ShardPass → Relax → the unguarded ParallelFor.
  ASSERT_EQ(it->witness.size(), 3u);
  EXPECT_NE(it->witness[0].find("ShardPass"), std::string::npos);
  EXPECT_NE(it->witness[1].find("Relax"), std::string::npos);
  EXPECT_NE(it->witness[2].find("ParallelFor"), std::string::npos);
}

TEST(NestedDispatch, SilentOnFixedPool) {
  // The only difference is ParallelFor's tl_in_pool_worker READ: nested
  // calls run inline, so the same chain is safe and must not be flagged.
  const Report r = emis_lint::Lint(fixtures::DeadlockTree(/*fixed=*/true));
  EXPECT_FALSE(HasRule(r, "nested-dispatch"));
}

TEST(NestedDispatch, FlagsDirectPoolRunFromRegionEvenWhenGuarded) {
  // Pool::Run itself carries no guard — reaching it directly from a region
  // deadlocks regardless of ParallelFor's inline branch.
  emis_lint::Corpus corpus = fixtures::DeadlockTree(/*fixed=*/true);
  corpus.files.push_back(emis_lint::Lex(
      "src/verify/experiment.cpp",
      "void RunSweep() {\n"
      "  par::ParallelFor(2, 8, [&](std::uint64_t t, unsigned) {\n"
      "    Dispatch d;\n"
      "    Pool::Instance().Run(2, d);\n"
      "  });\n"
      "}\n"));
  const Report r = emis_lint::Lint(corpus);
  ASSERT_TRUE(HasRule(r, "nested-dispatch"));
  const auto it =
      std::find_if(r.findings.begin(), r.findings.end(),
                   [](const Finding& f) { return f.rule == "nested-dispatch"; });
  EXPECT_EQ(it->file, "src/verify/experiment.cpp");
  EXPECT_NE(it->message.find("Pool::Run"), std::string::npos);
}

TEST(NestedDispatch, SuppressedByWaiver) {
  emis_lint::Corpus corpus;
  corpus.files.push_back(emis_lint::Lex("src/verify/parallel.cpp",
                                        fixtures::kPoolPreFix));
  corpus.files.push_back(emis_lint::Lex(
      "src/radio/scheduler.cpp",
      "void Scheduler::RunRound() {\n"
      "  // emis-lint: allow(nested-dispatch)\n"
      "  par::ParallelFor(jobs_, shards_, [&](std::uint64_t s, unsigned) {\n"
      "    par::ParallelFor(2, 8, [&](std::uint64_t i, unsigned) { W(i); });\n"
      "  });\n"
      "}\n"));
  const Report r = emis_lint::Lint(corpus);
  EXPECT_FALSE(HasRule(r, "nested-dispatch"));
  EXPECT_GE(r.suppressed_by_rule.count("nested-dispatch"), 1u);
}

// ---------------------------------------------------------------------------
// parallel-region-mutation

TEST(ParallelRegionMutation, FlagsSharedWriteSkipsLocalsAndSanctioned) {
  const Report r = LintSource(
      "src/radio/x.cpp",
      "void Scheduler::Pass() {\n"
      "  par::ParallelFor(jobs_, n_, [&](std::uint64_t v, unsigned worker) {\n"
      "    total_ += v;\n"                       // shared accumulator: flagged
      "    ctx_hot_[v].now = v;\n"               // sanctioned shard-local slot
      "    std::uint64_t local = v * 2;\n"       // declaration, not a write
      "    local += 1;\n"                        // write to a local
      "    v = local;\n"                         // write to a lambda param
      "  });\n"
      "}\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "parallel-region-mutation");
  EXPECT_EQ(r.findings[0].line, 3);
  EXPECT_EQ(r.findings[0].symbol, "total_");
}

TEST(ParallelRegionMutation, MemberChainRootsAndMutatingCallsAreCaught) {
  const Report r = LintSource(
      "src/radio/x.cpp",
      "void F() {\n"
      "  par::ParallelFor(2, n_, [&](std::uint64_t v, unsigned) {\n"
      "    stats_.rounds += 1;\n"
      "    results_.push_back(v);\n"
      "  });\n"
      "}\n");
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(r.findings[0].symbol, "stats_");
  EXPECT_EQ(r.findings[1].symbol, "results_");
}

TEST(ParallelRegionMutation, ValueCapturesAndSlotAliasesAreClean) {
  // Explicit value captures are the lambda's own copies; a by-ref local
  // bound to a per-index slot is the sanctioned slot idiom (and a known
  // false-negative edge for true aliasing, documented in DESIGN.md §14).
  EXPECT_TRUE(LintSource("src/radio/x.cpp",
                         "void F() {\n"
                         "  par::ParallelFor(2, n_, [acc](std::uint64_t v,\n"
                         "                                unsigned) mutable {\n"
                         "    acc += v;\n"
                         "  });\n"
                         "}\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("src/verify/x.cpp",
                         "void F() {\n"
                         "  par::ParallelFor(2, n_, [&](std::uint64_t t, unsigned) {\n"
                         "    TrialOutcome& out = outcomes[t];\n"
                         "    out.valid = true;\n"
                         "  });\n"
                         "}\n")
                  .findings.empty());
}

TEST(ParallelRegionMutation, SuppressedByWaiver) {
  const Report r = LintSource(
      "src/radio/x.cpp",
      "void F() {\n"
      "  par::ParallelFor(2, n_, [&](std::uint64_t v, unsigned) {\n"
      "    total_ += v;  // emis-lint: allow(parallel-region-mutation)\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed_by_rule.at("parallel-region-mutation"), 1u);
}

// ---------------------------------------------------------------------------
// banned-random-taint / banned-clock-taint

TEST(BannedRandomTaint, FlagsTransitiveReachAtDefinition) {
  const Report r = LintSource("src/core/util.cpp",
                              "int Noise() { return rand(); }\n"
                              "int Jitter() { return Noise(); }\n"
                              "int Calm() { return 7; }\n");
  // The direct use is the token rule's finding; the caller is the taint
  // rule's, anchored at its definition with the chain down to rand().
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(r.findings[0].rule, "banned-random");
  EXPECT_EQ(r.findings[0].line, 1);
  EXPECT_EQ(r.findings[1].rule, "banned-random-taint");
  EXPECT_EQ(r.findings[1].line, 2);
  EXPECT_EQ(r.findings[1].symbol, "Jitter");
  ASSERT_EQ(r.findings[1].witness.size(), 2u);
  EXPECT_NE(r.findings[1].witness[0].find("Noise"), std::string::npos);
  EXPECT_NE(r.findings[1].witness[1].find("rand"), std::string::npos);
}

TEST(BannedRandomTaint, WaivedDirectUseDoesNotSeedTaint) {
  // A justified waiver at the source is a deliberate boundary: it must not
  // cascade into taint findings at every caller.
  const Report r = LintSource(
      "src/core/util.cpp",
      "int Noise() { return rand(); }  // emis-lint: allow(banned-random)\n"
      "int Jitter() { return Noise(); }\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed_by_rule.at("banned-random"), 1u);
}

TEST(BannedClockTaint, ObsIsABarrierNotASource) {
  emis_lint::Corpus corpus;
  corpus.files.push_back(emis_lint::Lex(
      "src/obs/timing.cpp",
      "double MonotonicSeconds() {\n"
      "  return std::chrono::duration<double>(\n"
      "      std::chrono::steady_clock::now().time_since_epoch()).count();\n"
      "}\n"));
  corpus.files.push_back(emis_lint::Lex(
      "src/core/runner.cpp",
      "double Elapsed() { return MonotonicSeconds(); }\n"));
  // steady_clock inside src/obs is sanctioned, and callers of the obs
  // wrapper are clean — the barrier does not propagate taint outward.
  EXPECT_TRUE(emis_lint::Lint(corpus).findings.empty());
}

TEST(BannedClockTaint, FlagsChainIntoUnsanctionedClockRead) {
  const Report r = LintSource(
      "src/core/bad.cpp",
      "long SteadyNow() { return clock_gettime(0, nullptr); }\n"
      "long Now() { return SteadyNow(); }\n");
  EXPECT_TRUE(HasRule(r, "banned-clock"));
  ASSERT_TRUE(HasRule(r, "banned-clock-taint"));
  const auto it = std::find_if(
      r.findings.begin(), r.findings.end(),
      [](const Finding& f) { return f.rule == "banned-clock-taint"; });
  EXPECT_EQ(it->line, 2);
  EXPECT_EQ(it->symbol, "Now");
}

// ---------------------------------------------------------------------------
// observable-commit-order

TEST(ObservableCommitOrder, FlagsDirectObservableInRegion) {
  const Report r = LintSource(
      "src/verify/x.cpp",
      "void Sweep() {\n"
      "  par::ParallelFor(2, 8, [&](std::uint64_t t, unsigned) {\n"
      "    sink_->EmitRoundTrace(t);\n"
      "  });\n"
      "}\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "observable-commit-order");
  EXPECT_EQ(r.findings[0].line, 3);  // direct calls anchor at their own line
  EXPECT_EQ(r.findings[0].symbol, "EmitRoundTrace");
}

TEST(ObservableCommitOrder, FlagsTransitiveReachWithWitness) {
  const Report r = LintSource(
      "src/verify/x.cpp",
      "void Sweep() {\n"
      "  par::ParallelFor(2, 8, [&](std::uint64_t t, unsigned) { Helper(t); });\n"
      "}\n"
      "void Helper(std::uint64_t t) { ledger_->ChargeListen(t, 1); }\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "observable-commit-order");
  EXPECT_EQ(r.findings[0].line, 2);  // deep chains anchor at the region
  ASSERT_EQ(r.findings[0].witness.size(), 2u);
  EXPECT_NE(r.findings[0].witness[0].find("Helper"), std::string::npos);
  EXPECT_NE(r.findings[0].witness[1].find("ChargeListen"), std::string::npos);
}

TEST(ObservableCommitOrder, RngDrawInRegionIsAnObservable) {
  const Report r = LintSource(
      "src/radio/x.cpp",
      "void F() {\n"
      "  par::ParallelFor(2, 8, [&](std::uint64_t t, unsigned) {\n"
      "    const std::uint64_t x = rng_.NextU64();\n"
      "    Use(x);\n"
      "  });\n"
      "}\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "observable-commit-order");
  EXPECT_EQ(r.findings[0].symbol, "NextU64");
}

TEST(ObservableCommitOrder, SanctionedSerialCommitFunctionsStopTraversal) {
  // The sharded scheduler's pass functions and RunMis are the sanctioned
  // entry points — observables behind them commit serially by design.
  EXPECT_TRUE(LintSource("src/radio/x.cpp",
                         "void Round() {\n"
                         "  par::ParallelFor(2, 8, [&](std::uint64_t s, unsigned) {\n"
                         "    ShardListenPass(s);\n"
                         "  });\n"
                         "}\n"
                         "void ShardListenPass(std::uint64_t s) {\n"
                         "  ledger_->ChargeListen(s, 1);\n"
                         "}\n")
                  .findings.empty());
}

TEST(ObservableCommitOrder, SecondCallSurfacesAfterFirstIsWaived) {
  // Direct observables dedup per line, so a second call to the same sink
  // still surfaces when the first carries a waiver. (The calls are separated
  // by a line because a same-line waiver also covers the line below it.)
  const Report r = LintSource(
      "src/verify/x.cpp",
      "void Sweep() {\n"
      "  par::ParallelFor(2, 8, [&](std::uint64_t t, unsigned) {\n"
      "    sink_->EmitControl(t);  // emis-lint: allow(observable-commit-order)\n"
      "    Prepare(t);\n"
      "    sink_->EmitControl(t);\n"
      "  });\n"
      "}\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 5);
  EXPECT_EQ(r.suppressed_by_rule.at("observable-commit-order"), 1u);
}

// ---------------------------------------------------------------------------
// Per-rule waiver accounting + baseline gate

TEST(WaiverAccounting, SuppressedByRuleSumsToSuppressed) {
  const Report r = LintSource(
      "src/core/waived.cpp",
      "int a = rand();  // emis-lint: allow(banned-random)\n"
      "int b = rand();  // emis-lint: allow(banned-random)\n"
      "assert(a);  // emis-lint: allow(raw-assert)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 3u);
  EXPECT_EQ(r.suppressed_by_rule.at("banned-random"), 2u);
  EXPECT_EQ(r.suppressed_by_rule.at("raw-assert"), 1u);
}

TEST(WaiverBaseline, ParsesRulesSkippingCommentsAndBlanks) {
  std::istringstream in(
      "# comment\n"
      "\n"
      "banned-clock 2\n"
      "io-in-library 1\n");
  const auto baseline = emis_lint::ParseWaiverBaseline(in);
  ASSERT_EQ(baseline.size(), 2u);
  EXPECT_EQ(baseline.at("banned-clock"), 2u);
  EXPECT_EQ(baseline.at("io-in-library"), 1u);
}

TEST(WaiverBaseline, FailsClosedOnNewWaiversPassesAtOrBelow) {
  Report r;
  r.suppressed_by_rule["banned-clock"] = 2;
  std::map<std::string, std::uint64_t> baseline{{"banned-clock", 2}};
  EXPECT_EQ(emis_lint::DiffWaiverBaseline(r, baseline), "");
  baseline["banned-clock"] = 3;  // shrinking below the baseline is fine
  EXPECT_EQ(emis_lint::DiffWaiverBaseline(r, baseline), "");
  baseline["banned-clock"] = 1;  // a new waiver fails closed
  EXPECT_NE(emis_lint::DiffWaiverBaseline(r, baseline), "");
  // A rule absent from the baseline allows zero waivers.
  r.suppressed_by_rule["nested-dispatch"] = 1;
  baseline["banned-clock"] = 2;
  EXPECT_NE(emis_lint::DiffWaiverBaseline(r, baseline), "");
}

TEST(WaiverBaseline, GraphFindingJsonCarriesSymbolAndWitness) {
  const Report r = LintSource("src/core/util.cpp",
                              "int Noise() { return rand(); }\n"
                              "int Jitter() { return Noise(); }\n");
  const std::string json = emis_lint::ToJson(r, "/repo");
  EXPECT_NE(json.find("\"symbol\": \"Jitter\""), std::string::npos);
  EXPECT_NE(json.find("\"witness\": ["), std::string::npos);
  EXPECT_NE(json.find("src/core/util.cpp:1 rand"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Acceptance gate: the real tree lints clean under all rules (token AND
// graph), and the committed waiver baseline matches reality exactly.

#ifdef EMIS_SOURCE_ROOT
TEST(FullTree, RepositoryLintsClean) {
  const emis_lint::Corpus corpus = emis_lint::LoadCorpus(EMIS_SOURCE_ROOT);
  ASSERT_GT(corpus.files.size(), 50u) << "corpus load found too few files; "
                                         "EMIS_SOURCE_ROOT miswired?";
  const Report r = emis_lint::Lint(corpus);
  for (const Finding& f : r.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
  EXPECT_TRUE(r.findings.empty());

  // The graph rules actually ran: the index saw the tree's functions and
  // its ParallelFor regions (sweep trials + sharded scheduler passes).
  const emis_lint::SymbolIndex index = emis_lint::BuildIndex(corpus);
  EXPECT_EQ(r.symbols_indexed, index.functions.size());
  EXPECT_GT(index.functions.size(), 300u);
  EXPECT_GE(index.regions.size(), 5u);
  EXPECT_GT(r.call_edges, 1000u);
}

TEST(FullTree, WaiverBaselineMatchesRealityExactly) {
  // DiffWaiverBaseline only fails on NEW waivers; this test additionally
  // pins equality so the committed baseline can never drift stale.
  const emis_lint::Corpus corpus = emis_lint::LoadCorpus(EMIS_SOURCE_ROOT);
  const Report r = emis_lint::Lint(corpus);
  std::ifstream in(std::string(EMIS_SOURCE_ROOT) +
                   "/tools/lint_waiver_baseline.txt");
  ASSERT_TRUE(in.good()) << "tools/lint_waiver_baseline.txt missing";
  const auto baseline = emis_lint::ParseWaiverBaseline(in);
  EXPECT_EQ(emis_lint::DiffWaiverBaseline(r, baseline), "");
  for (const auto& [rule, count] : baseline) {
    const auto it = r.suppressed_by_rule.find(rule);
    EXPECT_TRUE(it != r.suppressed_by_rule.end() && it->second == count)
        << "baseline entry '" << rule << " " << count
        << "' no longer matches the tree (now "
        << (it == r.suppressed_by_rule.end() ? 0 : it->second)
        << ") — ratchet tools/lint_waiver_baseline.txt down";
  }
}
#endif

}  // namespace
