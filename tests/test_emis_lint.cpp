// Fixture tests for the emis_lint rule engine: every rule has a positive
// fixture (violating source → finding), a negative fixture (idiomatic source
// → clean), and a suppression fixture (violation + waiver → suppressed, not
// reported). The suite ends with the acceptance gate: the real tree must lint
// clean.
#include "tools/emis_lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace {

using emis_lint::Finding;
using emis_lint::LintSource;
using emis_lint::Report;

bool HasRule(const Report& r, std::string_view rule) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// ---------------------------------------------------------------------------
// banned-random

TEST(BannedRandom, FlagsRandCallAndMt19937) {
  const Report r = LintSource("src/core/bad.cpp",
                              "int f() { return rand() % 7; }\n"
                              "std::mt19937 gen(42);\n");
  EXPECT_EQ(r.findings.size(), 2u);
  EXPECT_TRUE(HasRule(r, "banned-random"));
}

TEST(BannedRandom, FlagsRandomDeviceSeed) {
  const Report r = LintSource("bench/bad.cpp",
                              "std::random_device rd;\n"
                              "auto seed = rd();\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "banned-random");
  EXPECT_EQ(r.findings[0].line, 1);
}

TEST(BannedRandom, CleanOnEmisRngAndObsScope) {
  // Idiomatic: seed-addressed Rng. Also: src/obs/ is exempt.
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "emis::Rng rng(seed);\n"
                         "auto child = rng.Split(3);\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("src/obs/ok.cpp", "std::random_device rd;\n")
                  .findings.empty());
}

TEST(BannedRandom, IgnoresCommentsAndStrings) {
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "// rand() is banned here\n"
                         "const char* msg = \"no rand() allowed\";\n"
                         "/* std::mt19937 would be wrong */\n")
                  .findings.empty());
}

TEST(BannedRandom, SuppressedByAllowComment) {
  const Report r = LintSource(
      "src/core/waived.cpp",
      "int f() { return rand(); }  // emis-lint: allow(banned-random)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// banned-clock

TEST(BannedClock, FlagsSteadyClockOutsideObs) {
  const Report r = LintSource(
      "src/verify/bad.cpp",
      "double now() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "banned-clock");
}

TEST(BannedClock, FlagsPosixClockInTools) {
  const Report r = LintSource("tools/bad.cpp",
                              "void f(timespec* t) { clock_gettime(0, t); }\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "banned-clock");
}

TEST(BannedClock, ObsAndBenchAreSanctioned) {
  // src/obs/ is the sanctioned clock layer; benches time themselves freely.
  EXPECT_TRUE(LintSource("src/obs/timer.hpp",
                         "auto t = std::chrono::steady_clock::now();\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("bench/bench_x.cpp",
                         "auto t = std::chrono::steady_clock::now();\n")
                  .findings.empty());
}

TEST(BannedClock, IncludeLineDoesNotTrigger) {
  EXPECT_TRUE(
      LintSource("src/core/ok.cpp", "#include <chrono>\nint x = 0;\n")
          .findings.empty());
}

TEST(BannedClock, LineAboveWaiverSuppresses) {
  const Report r = LintSource("src/core/waived.cpp",
                              "// emis-lint: allow(banned-clock)\n"
                              "auto t = std::chrono::system_clock::now();\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// unordered-iteration

TEST(UnorderedIteration, FlagsAccumulatingRangeFor) {
  const Report r = LintSource(
      "src/core/bad.cpp",
      "std::unordered_map<int, double> m;\n"
      "double total = 0;\n"
      "void f(std::vector<int>* out) {\n"
      "  for (const auto& [k, v] : m) { total += v; out->push_back(k); }\n"
      "}\n");
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings[0].rule, "unordered-iteration");
  EXPECT_EQ(r.findings[0].line, 4);
}

TEST(UnorderedIteration, FlagsThroughTypeAlias) {
  const Report r = LintSource(
      "src/core/bad.cpp",
      "using NodeSet = std::unordered_set<int>;\n"
      "void f(NodeSet s, std::vector<int>* out) {\n"
      "  for (int v : s) out->push_back(v);\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, "unordered-iteration"));
}

TEST(UnorderedIteration, ReadOnlyBodyAndOrderedMapAreClean) {
  // Pure reads over unordered containers are order-insensitive; ordered maps
  // may accumulate freely.
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "std::unordered_set<int> s;\n"
                         "bool f(int x) {\n"
                         "  bool found = false;\n"
                         "  for (int v : s) if (v == x) found = true;\n"
                         "  return found;\n"
                         "}\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "std::map<int, int> m;\n"
                         "void f(std::vector<int>* out) {\n"
                         "  for (const auto& [k, v] : m) out->push_back(k);\n"
                         "}\n")
                  .findings.empty());
}

TEST(UnorderedIteration, FlagsAccumulatingIteratorLoop) {
  // The iterator form walks the same unspecified bucket order as the range
  // form; an explicit .begin() loop must not slip past the rule.
  const Report r = LintSource(
      "src/core/bad.cpp",
      "std::unordered_map<int, double> m;\n"
      "void f(std::vector<int>* out) {\n"
      "  for (auto it = m.begin(); it != m.end(); ++it) {\n"
      "    out->push_back(it->first);\n"
      "  }\n"
      "}\n");
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings[0].rule, "unordered-iteration");
  EXPECT_EQ(r.findings[0].line, 3);
}

TEST(UnorderedIteration, FlagsIteratorLoopThroughAlias) {
  const Report r = LintSource(
      "src/core/bad.cpp",
      "using Pending = std::unordered_set<int>;\n"
      "void f(Pending pending, std::vector<int>* out) {\n"
      "  for (auto it = pending.cbegin(); it != pending.cend(); ++it) {\n"
      "    out->push_back(*it);\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, "unordered-iteration"));
}

TEST(UnorderedIteration, ReadOnlyIteratorLoopAndIndexLoopAreClean) {
  // A read-only iterator walk is order-insensitive, and an index loop over a
  // vector (the SoA lane idiom) has a deterministic order by construction.
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "std::unordered_set<int> s;\n"
                         "bool f(int x) {\n"
                         "  for (auto it = s.begin(); it != s.end(); ++it)\n"
                         "    if (*it == x) return true;\n"
                         "  return false;\n"
                         "}\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "std::vector<int> lanes;\n"
                         "void f(std::vector<int>* out) {\n"
                         "  for (std::size_t v = 0; v < lanes.size(); ++v)\n"
                         "    out->push_back(lanes[v]);\n"
                         "}\n")
                  .findings.empty());
}

TEST(UnorderedIteration, SuppressedByWaiver) {
  const Report r = LintSource(
      "src/core/waived.cpp",
      "std::unordered_set<int> s;\n"
      "void f(std::vector<int>* out) {\n"
      "  // commutative dedup: emitted order is re-sorted by the caller\n"
      "  // emis-lint: allow(unordered-iteration)\n"
      "  for (int v : s) out->push_back(v);\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// raw-assert

TEST(RawAssert, FlagsAssertCall) {
  const Report r =
      LintSource("src/core/bad.cpp", "void f(int x) { assert(x > 0); }\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "raw-assert");
}

TEST(RawAssert, ContractMacrosAndStaticAssertAreClean) {
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "void f(int x) {\n"
                         "  EMIS_EXPECTS(x > 0, \"x positive\");\n"
                         "  static_assert(sizeof(int) >= 4);\n"
                         "}\n")
                  .findings.empty());
}

TEST(RawAssert, SuppressedByWaiver) {
  const Report r = LintSource(
      "tools/waived.cpp",
      "void f(int x) { assert(x); }  // emis-lint: allow(raw-assert)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// io-in-library

TEST(IoInLibrary, FlagsCoutAndPrintf) {
  const Report r = LintSource("src/core/bad.cpp",
                              "void f() {\n"
                              "  std::cout << \"hi\";\n"
                              "  printf(\"%d\", 3);\n"
                              "}\n");
  EXPECT_EQ(r.findings.size(), 2u);
  EXPECT_TRUE(HasRule(r, "io-in-library"));
}

TEST(IoInLibrary, ObsToolsAndBenchAreExempt) {
  EXPECT_TRUE(LintSource("src/obs/sink.cpp", "std::cout << x;\n").findings.empty());
  EXPECT_TRUE(LintSource("tools/cli.cpp", "printf(\"ok\\n\");\n").findings.empty());
  EXPECT_TRUE(LintSource("bench/b.cpp", "std::cout << x;\n").findings.empty());
}

TEST(IoInLibrary, SuppressedByWaiver) {
  const Report r = LintSource(
      "src/core/waived.cpp",
      "std::cerr << \"x\";  // emis-lint: allow(io-in-library)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(IoInLibrary, FlagsFileWritesAnywhereInSrc) {
  // File-writing is banned across ALL of src/ — including src/obs/, where
  // console I/O is otherwise sanctioned.
  const Report r = LintSource("src/radio/bad.cpp",
                              "void Dump(const char* path) {\n"
                              "  std::ofstream out(path);\n"
                              "  out << 42;\n"
                              "}\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "io-in-library");
  EXPECT_EQ(r.findings[0].line, 2);

  const Report in_obs = LintSource("src/obs/unsanctioned.cpp",
                                   "void f() { FILE* fp = fopen(\"x\", \"w\"); }\n");
  ASSERT_EQ(in_obs.findings.size(), 1u);
  EXPECT_EQ(in_obs.findings[0].rule, "io-in-library");
}

TEST(IoInLibrary, StreamSinkOpenerIsTheOnlyWaivedWriter) {
  // The exact path on the waiver list passes; a sibling with identical
  // content does not — the sanction is per-file, not per-directory.
  const std::string body =
      "std::ofstream stream(path, std::ios::out);\n";
  EXPECT_TRUE(LintSource("src/obs/stream_sink.cpp", body).findings.empty());
  EXPECT_FALSE(LintSource("src/obs/other_sink.cpp", body).findings.empty());
  EXPECT_EQ(emis_lint::detail::IoWriteWaivers().count("src/obs/stream_sink.cpp"),
            1u);
}

TEST(IoInLibrary, ReadsAndToolWritersStayClean) {
  // ifstream reads are fine in the library; tools/bench own their output.
  EXPECT_TRUE(LintSource("src/obs/report.cpp",
                         "std::ifstream in(path);\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("tools/cli.cpp", "std::ofstream out(path);\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("bench/b.cpp", "FILE* f = fopen(\"x\", \"w\");\n")
                  .findings.empty());
}

// ---------------------------------------------------------------------------
// float-accumulate-in-reduce

TEST(FloatAccumulateInReduce, FlagsFloatPlusEqualsInMerge) {
  const Report r = LintSource("src/obs/bad.cpp",
                              "struct H {\n"
                              "  double sum_ = 0;\n"
                              "  void MergeFrom(const H& o) { sum_ += o.sum_; }\n"
                              "};\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "float-accumulate-in-reduce");
  EXPECT_EQ(r.findings[0].line, 3);
}

TEST(FloatAccumulateInReduce, SeesSiblingHeaderDeclaration) {
  // The member's type lives in the .hpp; the += lives in the .cpp. The
  // corpus-level symbol pool must connect them through the shared path stem.
  emis_lint::Corpus corpus;
  corpus.files.push_back(emis_lint::Lex("src/obs/thing.hpp",
                                        "struct Thing {\n"
                                        "  double total_ = 0;\n"
                                        "  void Merge(const Thing& o);\n"
                                        "};\n"));
  corpus.files.push_back(emis_lint::Lex(
      "src/obs/thing.cpp",
      "void Thing::Merge(const Thing& o) { total_ += o.total_; }\n"));
  const Report r = emis_lint::Lint(corpus);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "float-accumulate-in-reduce");
  EXPECT_EQ(r.findings[0].file, "src/obs/thing.cpp");
}

TEST(FloatAccumulateInReduce, IntegerAccumulationAndNonReduceAreClean) {
  // Integral += in a merge is exact; float += outside reduce paths is fine.
  EXPECT_TRUE(LintSource("src/obs/ok.cpp",
                         "struct H {\n"
                         "  std::uint64_t n_ = 0;\n"
                         "  void MergeFrom(const H& o) { n_ += o.n_; }\n"
                         "};\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("src/obs/ok.cpp",
                         "struct H {\n"
                         "  double sum_ = 0;\n"
                         "  void Observe(double x) { sum_ += x; }\n"
                         "};\n")
                  .findings.empty());
}

TEST(FloatAccumulateInReduce, SuppressedByWaiver) {
  const Report r = LintSource(
      "src/obs/waived.cpp",
      "struct H {\n"
      "  double sum_ = 0;\n"
      "  void MergeFrom(const H& o) {\n"
      "    sum_ += o.sum_;  // emis-lint: allow(float-accumulate-in-reduce)\n"
      "  }\n"
      "};\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// rng-seed-from-draw

TEST(RngSeedFromDraw, FlagsConstructionFromDraw) {
  const Report r = LintSource("src/core/bad.cpp",
                              "void f(emis::Rng& parent) {\n"
                              "  Rng child(parent.NextU64());\n"
                              "}\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "rng-seed-from-draw");
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST(RngSeedFromDraw, FlagsBraceInitFromDraw) {
  const Report r = LintSource("src/core/bad.cpp",
                              "Rng MakeChild(Rng& p) { return Rng{p.UniformBelow(99)}; }\n");
  EXPECT_TRUE(HasRule(r, "rng-seed-from-draw"));
}

TEST(RngSeedFromDraw, SplitAndNamedSeedsAreClean) {
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "void f(emis::Rng& parent, std::uint64_t seed) {\n"
                         "  Rng direct(seed);\n"
                         "  Rng child = parent.Split(7);\n"
                         "  Rng hashed(CounterHash(seed, 12));\n"
                         "}\n")
                  .findings.empty());
}

TEST(RngSeedFromDraw, ClassDefinitionDoesNotTrigger) {
  // `class Rng { ... NextU64 ... }` is the type defining its own draw
  // methods, not a stream seeded from a draw.
  EXPECT_TRUE(LintSource("src/radio/ok.hpp",
                         "class Rng {\n"
                         " public:\n"
                         "  std::uint64_t NextU64() noexcept { return gen_(); }\n"
                         "};\n")
                  .findings.empty());
}

TEST(RngSeedFromDraw, SuppressedByWaiver) {
  const Report r = LintSource(
      "src/core/waived.cpp",
      "Rng child(parent.NextU64());  // emis-lint: allow(rng-seed-from-draw)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// raw-thread

TEST(RawThread, FlagsThreadJthreadAndAsync) {
  const Report r = LintSource("src/core/bad.cpp",
                              "void f() {\n"
                              "  std::thread t([] {});\n"
                              "  std::jthread j([] {});\n"
                              "  auto fut = std::async([] { return 1; });\n"
                              "}\n");
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].rule, "raw-thread");
  EXPECT_EQ(r.findings[0].line, 2);
  EXPECT_EQ(r.findings[1].line, 3);
  EXPECT_EQ(r.findings[2].line, 4);
}

TEST(RawThread, PoolFileAndConcurrencyReadAreClean) {
  // The pool implementation is the sanctioned spawner; everyone else may
  // still read the machine shape.
  EXPECT_TRUE(LintSource("src/verify/parallel.cpp",
                         "void Pool() { std::thread t([] {}); t.join(); }\n")
                  .findings.empty());
  EXPECT_TRUE(LintSource("bench/bench_x.cpp",
                         "unsigned n = std::thread::hardware_concurrency();\n")
                  .findings.empty());
  // Member named `thread` without the std:: qualifier is someone's field,
  // not a spawn.
  EXPECT_TRUE(LintSource("src/core/ok.cpp", "int thread = 3;\n").findings.empty());
}

TEST(RawThread, FlagsInBenchAndTools) {
  EXPECT_TRUE(HasRule(LintSource("bench/bad.cpp",
                                 "void f() { std::thread t([] {}); t.join(); }\n"),
                      "raw-thread"));
  EXPECT_TRUE(HasRule(LintSource("tools/bad.cpp",
                                 "auto r = std::async([] { return 2; });\n"),
                      "raw-thread"));
}

TEST(RawThread, SuppressedByWaiver) {
  const Report r = LintSource(
      "src/core/waived.cpp",
      "std::thread t([] {});  // emis-lint: allow(raw-thread)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// Engine mechanics

TEST(Engine, FileWideWaiverSuppressesAllInstances) {
  const Report r = LintSource("src/core/waived.cpp",
                              "// emis-lint: allow-file(banned-random)\n"
                              "int a = rand();\n"
                              "int b = rand();\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 2u);
}

TEST(Engine, WaiverForOtherRuleDoesNotSuppress) {
  const Report r = LintSource(
      "src/core/bad.cpp",
      "int a = rand();  // emis-lint: allow(banned-clock)\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "banned-random");
}

TEST(Engine, RawStringContentIsOpaque) {
  EXPECT_TRUE(LintSource("src/core/ok.cpp",
                         "const char* doc = R\"(call rand() and\n"
                         "std::chrono::steady_clock freely in prose)\";\n")
                  .findings.empty());
}

TEST(Engine, FindingsAreSortedByFileLineRule) {
  emis_lint::Corpus corpus;
  corpus.files.push_back(emis_lint::Lex("src/z.cpp", "int a = rand();\n"));
  corpus.files.push_back(
      emis_lint::Lex("src/a.cpp", "int b = rand();\nint c = rand();\n"));
  const Report r = emis_lint::Lint(corpus);
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].file, "src/a.cpp");
  EXPECT_EQ(r.findings[0].line, 1);
  EXPECT_EQ(r.findings[1].line, 2);
  EXPECT_EQ(r.findings[2].file, "src/z.cpp");
}

TEST(Engine, JsonReportCarriesSchemaAndFindings) {
  const Report r = LintSource("src/core/bad.cpp", "int a = rand();\n");
  const std::string json = emis_lint::ToJson(r, "/repo");
  EXPECT_NE(json.find("\"schema\": \"emis-lint-report/1\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"banned-random\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
}

TEST(Engine, JsonEscapesControlAndQuoteCharacters) {
  EXPECT_EQ(emis_lint::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---------------------------------------------------------------------------
// Acceptance gate: the real tree lints clean.

#ifdef EMIS_SOURCE_ROOT
TEST(FullTree, RepositoryLintsClean) {
  const emis_lint::Corpus corpus = emis_lint::LoadCorpus(EMIS_SOURCE_ROOT);
  ASSERT_GT(corpus.files.size(), 50u) << "corpus load found too few files; "
                                         "EMIS_SOURCE_ROOT miswired?";
  const Report r = emis_lint::Lint(corpus);
  for (const Finding& f : r.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
  EXPECT_TRUE(r.findings.empty());
}
#endif

}  // namespace
