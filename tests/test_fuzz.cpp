// Randomized end-to-end fuzzing: drive the whole stack (spec parser →
// generator → scheduler → algorithm → checker) through a few hundred
// pseudo-random configurations. Catches interaction bugs no targeted test
// anticipates; failures print the exact reproducible configuration.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "radio/graph_io.hpp"
#include "verify/mis_checker.hpp"

namespace emis {
namespace {

std::string RandomSpec(Rng& rng) {
  // Sizes stay small: fuzz breadth beats depth.
  const auto n = 2 + rng.UniformBelow(60);
  switch (rng.UniformBelow(12)) {
    case 0: return "path:n=" + std::to_string(n);
    case 1: return "cycle:n=" + std::to_string(3 + rng.UniformBelow(57));
    case 2: return "star:n=" + std::to_string(n);
    case 3: return "complete:n=" + std::to_string(2 + rng.UniformBelow(18));
    case 4: return "er:n=" + std::to_string(n) + ",p=0." +
                   std::to_string(1 + rng.UniformBelow(4));
    case 5: return "udg:n=" + std::to_string(n) + ",r=0.2";
    case 6: return "tree:n=" + std::to_string(n);
    case 7: return "matching:n=" + std::to_string(n);
    case 8: return "cliques:count=" + std::to_string(1 + rng.UniformBelow(5)) +
                   ",size=" + std::to_string(2 + rng.UniformBelow(5));
    case 9: return "grid:rows=" + std::to_string(1 + rng.UniformBelow(7)) +
                   ",cols=" + std::to_string(1 + rng.UniformBelow(7));
    case 10: return "bipartite:left=" + std::to_string(1 + rng.UniformBelow(8)) +
                    ",right=" + std::to_string(1 + rng.UniformBelow(8));
    default: return "empty:n=" + std::to_string(n);
  }
}

constexpr MisAlgorithm kAll[] = {
    MisAlgorithm::kCd,          MisAlgorithm::kCdBeeping,
    MisAlgorithm::kCdNaive,     MisAlgorithm::kNoCd,
    MisAlgorithm::kNoCdDaviesProfile, MisAlgorithm::kNoCdNaive,
    MisAlgorithm::kNoCdUnknownDelta, MisAlgorithm::kNoCdRoundEfficient,
};

TEST(Fuzz, RandomConfigurationsProduceValidMis) {
  Rng fuzz(20250705);
  int runs = 0, invalid = 0;
  std::vector<std::string> failures;
  for (int iter = 0; iter < 250; ++iter) {
    const std::string spec = RandomSpec(fuzz);
    const std::uint64_t graph_seed = fuzz.NextU64();
    Rng graph_rng(graph_seed);
    const Graph g = GraphFromSpec(spec, graph_rng);

    MisRunConfig cfg;
    cfg.algorithm = kAll[fuzz.UniformBelow(std::size(kAll))];
    cfg.seed = fuzz.NextU64();
    if (fuzz.Bernoulli(0.3)) cfg.delta_estimate = g.NumNodes();
    if (fuzz.Bernoulli(0.2)) cfg.n_estimate = g.NumNodes() * 4 + 1;

    const auto r = RunMis(g, cfg);
    ++runs;
    if (!r.Valid()) {
      ++invalid;
      failures.push_back(spec + " alg=" + std::string(ToString(cfg.algorithm)) +
                         " seed=" + std::to_string(cfg.seed) + ": " +
                         r.report.Describe());
    }
    // Structural invariants hold even if the run (rarely) failed:
    EXPECT_EQ(r.status.size(), g.NumNodes());
    EXPECT_LE(r.MisSize(), g.NumNodes());
    if (g.NumEdges() == 0 && g.NumNodes() > 0) {
      EXPECT_EQ(r.MisSize(), g.NumNodes()) << spec;  // isolated nodes join
    }
  }
  // Practical presets carry 1/poly(n) failure probability; a tiny number of
  // failures across 250 random configs is within contract, a cluster is not.
  EXPECT_LE(invalid, 3) << "failures:\n" << ::testing::PrintToString(failures);
}

TEST(Fuzz, RandomConfigurationsAreDeterministic) {
  Rng fuzz(424242);
  for (int iter = 0; iter < 40; ++iter) {
    const std::string spec = RandomSpec(fuzz);
    const std::uint64_t graph_seed = fuzz.NextU64();
    MisRunConfig cfg;
    cfg.algorithm = kAll[fuzz.UniformBelow(std::size(kAll))];
    cfg.seed = fuzz.NextU64();

    Rng rng_a(graph_seed), rng_b(graph_seed);
    const Graph ga = GraphFromSpec(spec, rng_a);
    const Graph gb = GraphFromSpec(spec, rng_b);
    const auto a = RunMis(ga, cfg);
    const auto b = RunMis(gb, cfg);
    EXPECT_EQ(a.status, b.status) << spec;
    EXPECT_EQ(a.stats.rounds_used, b.stats.rounds_used) << spec;
    EXPECT_EQ(a.energy.TotalAwake(), b.energy.TotalAwake()) << spec;
  }
}

TEST(Fuzz, EnginesAgreeOnRandomConfigurations) {
  // Cross-check the flat backend against the coroutine reference on random
  // (topology, algorithm, loss, knob) draws — breadth the targeted matrix
  // in test_flat_engine.cpp doesn't have.
  Rng fuzz(20260807);
  for (int iter = 0; iter < 60; ++iter) {
    const std::string spec = RandomSpec(fuzz);
    const std::uint64_t graph_seed = fuzz.NextU64();
    MisRunConfig cfg;
    cfg.algorithm = kAll[fuzz.UniformBelow(std::size(kAll))];
    cfg.seed = fuzz.NextU64();
    if (fuzz.Bernoulli(0.3)) cfg.link_loss = 0.1;
    if (fuzz.Bernoulli(0.3)) cfg.compaction = false;
    if (fuzz.Bernoulli(0.3)) cfg.resolution = ChannelResolution::kPush;

    Rng rng_a(graph_seed), rng_b(graph_seed);
    const Graph ga = GraphFromSpec(spec, rng_a);
    const Graph gb = GraphFromSpec(spec, rng_b);
    cfg.engine = ExecutionEngine::kCoroutine;
    const auto reference = RunMis(ga, cfg);
    cfg.engine = ExecutionEngine::kFlat;
    const auto flat = RunMis(gb, cfg);
    const std::string what =
        spec + " alg=" + std::string(ToString(cfg.algorithm)) +
        " seed=" + std::to_string(cfg.seed) + " loss=" +
        std::to_string(cfg.link_loss);
    EXPECT_EQ(flat.status, reference.status) << what;
    EXPECT_EQ(flat.stats.rounds_used, reference.stats.rounds_used) << what;
    EXPECT_EQ(flat.energy.TotalAwake(), reference.energy.TotalAwake()) << what;
    EXPECT_EQ(flat.energy.MaxAwake(), reference.energy.MaxAwake()) << what;
  }
}

TEST(Fuzz, EdgeListRoundTripsForRandomGraphs) {
  Rng fuzz(777);
  for (int iter = 0; iter < 60; ++iter) {
    const std::string spec = RandomSpec(fuzz);
    Rng graph_rng(fuzz.NextU64());
    const Graph g = GraphFromSpec(spec, graph_rng);
    std::stringstream ss;
    WriteEdgeList(ss, g);
    const Graph back = ReadEdgeList(ss);
    EXPECT_EQ(back.NumNodes(), g.NumNodes()) << spec;
    EXPECT_EQ(back.EdgeList(), g.EdgeList()) << spec;
  }
}

}  // namespace
}  // namespace emis
