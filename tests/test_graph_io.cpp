#include "radio/graph_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "radio/graph_generators.hpp"

namespace emis {
namespace {

TEST(GraphIo, RoundTrip) {
  Rng rng(1);
  const Graph g = gen::ErdosRenyi(60, 0.1, rng);
  std::stringstream ss;
  WriteEdgeList(ss, g);
  const Graph back = ReadEdgeList(ss);
  EXPECT_EQ(back.NumNodes(), g.NumNodes());
  EXPECT_EQ(back.EdgeList(), g.EdgeList());
}

TEST(GraphIo, RoundTripEmptyAndEdgeless) {
  for (NodeId n : {NodeId{0}, NodeId{5}}) {
    std::stringstream ss;
    WriteEdgeList(ss, gen::Empty(n));
    const Graph back = ReadEdgeList(ss);
    EXPECT_EQ(back.NumNodes(), n);
    EXPECT_EQ(back.NumEdges(), 0u);
  }
}

TEST(GraphIo, ReadsComments) {
  std::istringstream in("# a graph\n3 2\n0 1\n# middle comment\n1 2\n");
  const Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::istringstream in("3");  // truncated
    EXPECT_THROW(ReadEdgeList(in), PreconditionError);
  }
  {
    std::istringstream in("3 1\n0");  // truncated edge
    EXPECT_THROW(ReadEdgeList(in), PreconditionError);
  }
  {
    std::istringstream in("3 1\n0 7\n");  // out of range
    EXPECT_THROW(ReadEdgeList(in), PreconditionError);
  }
  {
    std::istringstream in("3 1\n1 1\n");  // self loop
    EXPECT_THROW(ReadEdgeList(in), PreconditionError);
  }
  {
    std::istringstream in("3 2\n0 1\n1 0\n");  // duplicate
    EXPECT_THROW(ReadEdgeList(in), PreconditionError);
  }
  {
    std::istringstream in("x 1\n");  // not a number
    EXPECT_THROW(ReadEdgeList(in), PreconditionError);
  }
}

TEST(GraphSpec, BuildsEveryFamily) {
  Rng rng(2);
  EXPECT_EQ(GraphFromSpec("path:n=5", rng).NumEdges(), 4u);
  EXPECT_EQ(GraphFromSpec("cycle:n=5", rng).NumEdges(), 5u);
  EXPECT_EQ(GraphFromSpec("star:n=5", rng).MaxDegree(), 4u);
  EXPECT_EQ(GraphFromSpec("complete:n=5", rng).NumEdges(), 10u);
  EXPECT_EQ(GraphFromSpec("grid:rows=3,cols=4", rng).NumNodes(), 12u);
  EXPECT_EQ(GraphFromSpec("bipartite:left=2,right=3", rng).NumEdges(), 6u);
  EXPECT_EQ(GraphFromSpec("tree:n=20", rng).NumEdges(), 19u);
  EXPECT_EQ(GraphFromSpec("gnm:n=10,m=13", rng).NumEdges(), 13u);
  EXPECT_EQ(GraphFromSpec("matching:n=16", rng).NumEdges(), 4u);
  EXPECT_EQ(GraphFromSpec("cliques:count=3,size=4", rng).NumNodes(), 12u);
  EXPECT_EQ(GraphFromSpec("caterpillar:spine=3,legs=2", rng).NumNodes(), 9u);
  EXPECT_EQ(GraphFromSpec("empty:n=7", rng).NumEdges(), 0u);
  EXPECT_EQ(GraphFromSpec("ba:n=30,m=2", rng).NumNodes(), 30u);
  EXPECT_GT(GraphFromSpec("er:n=50,p=0.2", rng).NumEdges(), 0u);
  EXPECT_GT(GraphFromSpec("udg:n=50,r=0.3", rng).NumEdges(), 0u);
  EXPECT_LE(GraphFromSpec("regular:n=20,d=3", rng).MaxDegree(), 3u);
}

TEST(GraphSpec, RejectsBadSpecs) {
  Rng rng(3);
  EXPECT_THROW(GraphFromSpec("nosuch:n=5", rng), PreconditionError);
  EXPECT_THROW(GraphFromSpec("er:n=5", rng), PreconditionError);       // missing p
  EXPECT_THROW(GraphFromSpec("er:p=0.5", rng), PreconditionError);     // missing n
  EXPECT_THROW(GraphFromSpec("er:n=5,p=zebra", rng), PreconditionError);
  EXPECT_THROW(GraphFromSpec("path:n=x", rng), PreconditionError);
  EXPECT_THROW(GraphFromSpec("grid:rows=3", rng), PreconditionError);  // missing cols
  EXPECT_THROW(GraphFromSpec("er:n=5 p=1", rng), PreconditionError);   // not k=v
}

TEST(GraphSpec, DeterministicGivenRng) {
  Rng a(7), b(7);
  EXPECT_EQ(GraphFromSpec("er:n=40,p=0.2", a).EdgeList(),
            GraphFromSpec("er:n=40,p=0.2", b).EdgeList());
}

TEST(GraphSpec, HelpMentionsFamilies) {
  const std::string help = GraphSpecHelp();
  for (const char* fam : {"er:", "udg:", "tree:", "matching:"}) {
    EXPECT_NE(help.find(fam), std::string::npos) << fam;
  }
}

}  // namespace
}  // namespace emis
