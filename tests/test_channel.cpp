#include "radio/channel.hpp"

#include <gtest/gtest.h>

#include "radio/graph_generators.hpp"

namespace emis {
namespace {

// Star on 5 nodes: hub 0 with leaves 1..4.
class ChannelTest : public ::testing::Test {
 protected:
  Graph star_ = gen::Star(5);
};

TEST_F(ChannelTest, CdSilence) {
  Channel ch(star_, ChannelModel::kCd);
  ch.BeginRound();
  EXPECT_EQ(ch.ResolveListener(0).kind, ReceptionKind::kSilence);
}

TEST_F(ChannelTest, CdSingleTransmitterDeliversPayload) {
  Channel ch(star_, ChannelModel::kCd);
  ch.BeginRound();
  ch.AddTransmitter(1, 0xABC);
  const Reception r = ch.ResolveListener(0);
  EXPECT_EQ(r.kind, ReceptionKind::kMessage);
  EXPECT_EQ(r.payload, 0xABCu);
  EXPECT_TRUE(r.Busy());
}

TEST_F(ChannelTest, CdTwoTransmittersCollide) {
  Channel ch(star_, ChannelModel::kCd);
  ch.BeginRound();
  ch.AddTransmitter(1, 1);
  ch.AddTransmitter(2, 2);
  const Reception r = ch.ResolveListener(0);
  EXPECT_EQ(r.kind, ReceptionKind::kCollision);
  EXPECT_TRUE(r.Busy());
}

TEST_F(ChannelTest, NoCdCollisionIsSilence) {
  Channel ch(star_, ChannelModel::kNoCd);
  ch.BeginRound();
  ch.AddTransmitter(1, 1);
  ch.AddTransmitter(2, 2);
  const Reception r = ch.ResolveListener(0);
  EXPECT_EQ(r.kind, ReceptionKind::kSilence);
  EXPECT_FALSE(r.Busy());
}

TEST_F(ChannelTest, NoCdSingleTransmitterStillDelivers) {
  Channel ch(star_, ChannelModel::kNoCd);
  ch.BeginRound();
  ch.AddTransmitter(3, 7);
  const Reception r = ch.ResolveListener(0);
  EXPECT_EQ(r.kind, ReceptionKind::kMessage);
  EXPECT_EQ(r.payload, 7u);
}

TEST_F(ChannelTest, BeepingAnyTransmitterBeeps) {
  Channel ch(star_, ChannelModel::kBeeping);
  ch.BeginRound();
  ch.AddTransmitter(1, 1);
  EXPECT_EQ(ch.ResolveListener(0).kind, ReceptionKind::kBeep);
  ch.BeginRound();
  ch.AddTransmitter(1, 1);
  ch.AddTransmitter(2, 1);
  ch.AddTransmitter(3, 1);
  EXPECT_EQ(ch.ResolveListener(0).kind, ReceptionKind::kBeep);
  ch.BeginRound();
  EXPECT_EQ(ch.ResolveListener(0).kind, ReceptionKind::kSilence);
}

TEST_F(ChannelTest, OnlyNeighborsHear) {
  // Leaf 1 transmits: hub 0 hears; leaves 2..4 are not adjacent to 1.
  Channel ch(star_, ChannelModel::kCd);
  ch.BeginRound();
  ch.AddTransmitter(1, 9);
  EXPECT_EQ(ch.ResolveListener(0).kind, ReceptionKind::kMessage);
  EXPECT_EQ(ch.ResolveListener(2).kind, ReceptionKind::kSilence);
  EXPECT_EQ(ch.ResolveListener(3).kind, ReceptionKind::kSilence);
}

TEST_F(ChannelTest, TransmitterDoesNotHearItself) {
  // Radio: a node cannot send and receive in the same round. The scheduler
  // never resolves a transmitter as listener, but the channel must also not
  // count a node as its own neighbor.
  Channel ch(star_, ChannelModel::kCd);
  ch.BeginRound();
  ch.AddTransmitter(0, 5);
  // Hub transmitting: all leaves hear it; hub's own "reception" (were it to
  // listen, which it cannot) would be silence since it has no transmitting
  // neighbor.
  EXPECT_EQ(ch.ResolveListener(1).kind, ReceptionKind::kMessage);
  EXPECT_EQ(ch.ResolveListener(0).kind, ReceptionKind::kSilence);
}

TEST_F(ChannelTest, EpochResetsBetweenRounds) {
  Channel ch(star_, ChannelModel::kCd);
  ch.BeginRound();
  ch.AddTransmitter(1, 1);
  EXPECT_EQ(ch.ResolveListener(0).kind, ReceptionKind::kMessage);
  ch.BeginRound();
  EXPECT_EQ(ch.ResolveListener(0).kind, ReceptionKind::kSilence);
  EXPECT_EQ(ch.TransmittingNeighbors(0), 0u);
}

TEST_F(ChannelTest, TransmittingNeighborsCount) {
  Channel ch(star_, ChannelModel::kNoCd);
  ch.BeginRound();
  ch.AddTransmitter(1, 1);
  ch.AddTransmitter(2, 1);
  ch.AddTransmitter(4, 1);
  EXPECT_EQ(ch.TransmittingNeighbors(0), 3u);
  EXPECT_EQ(ch.TransmittingNeighbors(3), 0u);
}

TEST(ChannelPath, MessageScopesAreLocal) {
  // Path 0-1-2-3: 0 and 3 transmit; 1 hears only 0, 2 hears only 3.
  Graph path = gen::Path(4);
  Channel ch(path, ChannelModel::kCd);
  ch.BeginRound();
  ch.AddTransmitter(0, 100);
  ch.AddTransmitter(3, 200);
  EXPECT_EQ(ch.ResolveListener(1).payload, 100u);
  EXPECT_EQ(ch.ResolveListener(2).payload, 200u);
}

TEST(ChannelProperty, MatchesBruteForceOnRandomRounds) {
  // The epoch-stamped incremental channel must agree with a from-scratch
  // quadratic recomputation for random graphs and random transmitter sets,
  // across all three models.
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId n = 5 + static_cast<NodeId>(rng.UniformBelow(40));
    const Graph g = gen::ErdosRenyi(n, 0.2, rng);
    for (ChannelModel model :
         {ChannelModel::kCd, ChannelModel::kNoCd, ChannelModel::kBeeping}) {
      Channel ch(g, model);
      for (int round = 0; round < 5; ++round) {
        // Random transmitter set with random payloads.
        std::vector<std::uint64_t> payload(n, 0);
        std::vector<bool> transmits(n, false);
        ch.BeginRound();
        for (NodeId v = 0; v < n; ++v) {
          if (rng.Bernoulli(0.3)) {
            transmits[v] = true;
            payload[v] = 1 + rng.UniformBelow(1000);
            ch.AddTransmitter(v, payload[v]);
          }
        }
        for (NodeId v = 0; v < n; ++v) {
          if (transmits[v]) continue;  // transmitters never listen
          // Brute force: count transmitting neighbors.
          std::uint32_t count = 0;
          std::uint64_t only_payload = 0;
          for (NodeId w : g.Neighbors(v)) {
            if (transmits[w]) {
              ++count;
              only_payload = payload[w];
            }
          }
          Reception expected;
          if (count == 0) {
            expected = {ReceptionKind::kSilence, 0};
          } else if (model == ChannelModel::kBeeping) {
            expected = {ReceptionKind::kBeep, 0};
          } else if (count == 1) {
            expected = {ReceptionKind::kMessage, only_payload};
          } else {
            expected = model == ChannelModel::kCd
                           ? Reception{ReceptionKind::kCollision, 0}
                           : Reception{ReceptionKind::kSilence, 0};
          }
          EXPECT_EQ(ch.ResolveListener(v), expected)
              << "trial " << trial << " model " << ToString(model) << " node " << v;
          EXPECT_EQ(ch.TransmittingNeighbors(v), count);
        }
      }
    }
  }
}

TEST(ChannelPath, MiddleNodeCollision) {
  // Path 0-1-2: both ends transmit; middle hears a CD collision.
  Graph path = gen::Path(3);
  Channel cd(path, ChannelModel::kCd);
  cd.BeginRound();
  cd.AddTransmitter(0, 1);
  cd.AddTransmitter(2, 1);
  EXPECT_EQ(cd.ResolveListener(1).kind, ReceptionKind::kCollision);

  Channel nocd(path, ChannelModel::kNoCd);
  nocd.BeginRound();
  nocd.AddTransmitter(0, 1);
  nocd.AddTransmitter(2, 1);
  EXPECT_EQ(nocd.ResolveListener(1).kind, ReceptionKind::kSilence);
}

}  // namespace
}  // namespace emis
