// Tests for the Ghaffari-style round-efficient MIS (§4.2 reconstruction).
#include "core/ghaffari_mis.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"
#include "verify/mis_checker.hpp"

namespace emis {
namespace {

MisRunResult RunG(const Graph& g, std::uint64_t seed) {
  return RunMis(g, {.algorithm = MisAlgorithm::kNoCdRoundEfficient, .seed = seed});
}

TEST(Ghaffari, IsolatedAndTinyGraphs) {
  auto r1 = RunG(gen::Empty(1), 1);
  ASSERT_TRUE(r1.Valid()) << r1.report.Describe();
  EXPECT_EQ(r1.status[0], MisStatus::kInMis);
  auto r5 = RunG(gen::Empty(5), 2);
  ASSERT_TRUE(r5.Valid());
  EXPECT_EQ(r5.MisSize(), 5u);
  auto r2 = RunG(gen::Path(2), 3);
  ASSERT_TRUE(r2.Valid()) << r2.report.Describe();
  EXPECT_EQ(r2.MisSize(), 1u);
}

TEST(Ghaffari, ValidOnFamilies) {
  Rng rng(1);
  const Graph graphs[] = {
      gen::Path(30),      gen::Cycle(24),
      gen::Star(28),      gen::Complete(16),
      gen::Grid(5, 6),    gen::ErdosRenyi(80, 0.08, rng),
      gen::ErdosRenyi(64, 0.25, rng),  // dense: exercises the p-halving
      gen::DisjointCliques(4, 6),      gen::MatchingPlusIsolated(40),
      gen::RandomTree(40, rng),
  };
  std::uint64_t seed = 10;
  for (const Graph& g : graphs) {
    auto r = RunG(g, seed++);
    EXPECT_TRUE(r.Valid()) << "n=" << g.NumNodes() << " m=" << g.NumEdges()
                           << ": " << r.report.Describe();
  }
}

TEST(Ghaffari, RepeatedSeedsOnModerateGraph) {
  Rng rng(2);
  Graph g = gen::ErdosRenyi(96, 8.0 / 96, rng);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto r = RunG(g, seed);
    EXPECT_TRUE(r.Valid()) << "seed " << seed << ": " << r.report.Describe();
  }
}

TEST(Ghaffari, DeterministicGivenSeed) {
  Rng rng(3);
  Graph g = gen::ErdosRenyi(48, 0.1, rng);
  auto a = RunG(g, 7);
  auto b = RunG(g, 7);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.stats.rounds_used, b.stats.rounds_used);
}

TEST(Ghaffari, RoundsWithinScheduleAndBelowNaiveSimulation) {
  // The whole point of §4.2: fewer rounds than the naive simulation of
  // Algorithm 1 at the same degree bound.
  Rng rng(4);
  Graph g = gen::ErdosRenyi(256, 8.0 / 256, rng);
  MisRunConfig cfg{.algorithm = MisAlgorithm::kNoCdRoundEfficient, .seed = 5,
                   .delta_estimate = 256};
  auto fast = RunMis(g, cfg);
  ASSERT_TRUE(fast.Valid()) << fast.report.Describe();
  EXPECT_LE(fast.stats.rounds_used,
            GhaffariParams::Practical(256, 256).TotalRounds());

  auto naive = RunMis(g, {.algorithm = MisAlgorithm::kNoCdDaviesProfile,
                          .seed = 5, .delta_estimate = 256});
  ASSERT_TRUE(naive.Valid());
  EXPECT_LT(fast.stats.rounds_used, naive.stats.rounds_used);
}

TEST(Ghaffari, AsLowDegreeMisInsideAlgorithm2) {
  // Algorithm 2 with LowDegreeKind::kGhaffari: same correctness, shorter T_G.
  Rng rng(5);
  Graph g = gen::ErdosRenyi(96, 0.15, rng);
  MisRunConfig base{.algorithm = MisAlgorithm::kNoCd, .seed = 3};
  MisRunConfig ghaf = base;
  ghaf.nocd_params = DeriveNoCdParams(g, base);
  ghaf.nocd_params->low_degree_kind = LowDegreeKind::kGhaffari;

  auto r = RunMis(g, ghaf);
  EXPECT_TRUE(r.Valid()) << r.report.Describe();

  const NoCdSchedule sched_naive = NoCdSchedule::Of(DeriveNoCdParams(g, base));
  const NoCdSchedule sched_ghaf = NoCdSchedule::Of(*ghaf.nocd_params);
  EXPECT_LT(sched_ghaf.low_degree, sched_naive.low_degree);
}

TEST(Ghaffari, Algorithm2WithGhaffariAcrossSeeds) {
  Rng rng(6);
  Graph g = gen::ErdosRenyi(80, 8.0 / 80, rng);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    MisRunConfig cfg{.algorithm = MisAlgorithm::kNoCd, .seed = seed};
    cfg.nocd_params = DeriveNoCdParams(g, cfg);
    cfg.nocd_params->low_degree_kind = LowDegreeKind::kGhaffari;
    auto r = RunMis(g, cfg);
    EXPECT_TRUE(r.Valid()) << "seed " << seed << ": " << r.report.Describe();
  }
}

TEST(Ghaffari, ScheduleArithmetic) {
  const GhaffariParams p = GhaffariParams::Practical(256, 32);
  EXPECT_EQ(p.Levels(), CeilLog2(32) + 2);
  EXPECT_EQ(p.IterationRounds(),
            p.MarkExchangeRounds() + p.AnnounceRounds() + p.EstimateRounds());
  EXPECT_EQ(p.TotalRounds(), p.iterations * p.IterationRounds());
}

}  // namespace
}  // namespace emis
