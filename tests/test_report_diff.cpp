// emis_report_diff engine: flattening, tolerance classes, added/removed
// detection, the self-diff-is-clean guarantee the CI gate rests on, and the
// emis-diff-report/1 schema round-trip.
#include <gtest/gtest.h>

#include <string>

#include "core/runner.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/report.hpp"
#include "radio/graph_generators.hpp"
#include "tools/emis_report_diff.hpp"

namespace emis {
namespace {

using obs::JsonValue;

JsonValue RealRunReport() {
  Rng rng(7);
  Graph g = gen::ErdosRenyi(48, 0.1, rng);
  obs::MetricsRegistry metrics;
  obs::PhaseTimeline timeline;
  obs::EnergyLedger ledger(g.NumNodes());
  const MisRunResult r =
      RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = 5, .metrics = &metrics,
                 .timeline = &timeline, .ledger = &ledger});
  EXPECT_TRUE(r.Valid());
  return obs::BuildRunReport({.algorithm = "cd",
                              .graph = "er-test",
                              .preset = "practical",
                              .seed = 5,
                              .nodes = g.NumNodes(),
                              .edges = g.NumEdges(),
                              .max_degree = g.MaxDegree(),
                              .valid_mis = r.Valid(),
                              .mis_size = r.MisSize(),
                              .stats = &r.stats,
                              .energy = &r.energy,
                              .timeline = &timeline,
                              .metrics = &metrics,
                              .ledger = &ledger});
}

/// Deep-copies `doc` with the number at top-level `section`.`key` replaced.
JsonValue WithChanged(const JsonValue& doc, const std::string& section,
                      const std::string& key, double value) {
  JsonValue out = obs::ParseJson(doc.Dump());
  JsonValue patched = JsonValue::MakeObject();
  for (const auto& [k, v] : out.Entries()) {
    if (k != section) {
      patched.Set(k, v);
      continue;
    }
    JsonValue sec = JsonValue::MakeObject();
    for (const auto& [sk, sv] : v.Entries()) {
      sec.Set(sk, sk == key ? JsonValue(value) : sv);
    }
    patched.Set(section, std::move(sec));
  }
  return patched;
}

TEST(ReportDiff, SelfDiffIsClean) {
  const JsonValue doc = RealRunReport();
  std::string error;
  const emis_diff::DiffResult result =
      emis_diff::DiffReports(doc, doc, {}, &error);
  EXPECT_EQ(error, "");
  EXPECT_GT(result.compared, 10u);
  EXPECT_EQ(result.out_of_tolerance, 0u);
  EXPECT_TRUE(result.Ok());
  // energy_attribution keys made it into the comparable surface.
  bool saw_attribution = false;
  for (const emis_diff::MetricDelta& d : result.deltas) {
    saw_attribution |= d.metric.rfind("energy_attribution.", 0) == 0;
    EXPECT_EQ(d.cls, "ok");
  }
  EXPECT_TRUE(saw_attribution);
}

TEST(ReportDiff, PerturbedIntegerMetricFailsExactly) {
  const JsonValue doc = RealRunReport();
  const double rounds = doc.Find("result")->Find("rounds")->AsNumber();
  const JsonValue drifted = WithChanged(doc, "result", "rounds", rounds + 1);
  const emis_diff::DiffResult result = emis_diff::DiffReports(doc, drifted, {});
  EXPECT_EQ(result.out_of_tolerance, 1u);
  bool found = false;
  for (const emis_diff::MetricDelta& d : result.deltas) {
    if (d.metric != "result.rounds") continue;
    found = true;
    EXPECT_EQ(d.cls, "out_of_tolerance");
    EXPECT_DOUBLE_EQ(d.tolerance, 0.0);  // integral: exact compare
  }
  EXPECT_TRUE(found);
}

TEST(ReportDiff, FloatMetricsUseRelativeTolerance) {
  const JsonValue doc = RealRunReport();
  const double avg = doc.Find("energy")->Find("avg_awake")->AsNumber();
  // Inside the default 1e-6 relative band: ok.
  const JsonValue close = WithChanged(doc, "energy", "avg_awake",
                                      avg * (1.0 + 1e-9));
  EXPECT_TRUE(emis_diff::DiffReports(doc, close, {}).Ok());
  // Outside: flagged.
  const JsonValue far = WithChanged(doc, "energy", "avg_awake", avg * 1.01);
  EXPECT_FALSE(emis_diff::DiffReports(doc, far, {}).Ok());
  // Per-metric override loosens just that metric.
  emis_diff::DiffOptions loose;
  loose.overrides["energy.avg_awake"] = 0.05;
  EXPECT_TRUE(emis_diff::DiffReports(doc, far, loose).Ok());
}

TEST(ReportDiff, AddedAndRemovedMetricsAreFlagged) {
  const JsonValue doc = RealRunReport();
  // Strip the (schema-optional) attribution block: its keyed metrics become
  // "removed" relative to a baseline that has them.
  JsonValue stripped = JsonValue::MakeObject();
  for (const auto& [k, v] : doc.Entries()) {
    if (k != "energy_attribution") stripped.Set(k, v);
  }
  const emis_diff::DiffResult removed = emis_diff::DiffReports(doc, stripped, {});
  EXPECT_FALSE(removed.Ok());
  bool saw_removed = false;
  for (const emis_diff::MetricDelta& d : removed.deltas) {
    if (d.cls == "removed") saw_removed = true;
    EXPECT_NE(d.cls, "added");
  }
  EXPECT_TRUE(saw_removed);
  // The mirror image classifies as "added".
  const emis_diff::DiffResult added = emis_diff::DiffReports(stripped, doc, {});
  EXPECT_FALSE(added.Ok());
  bool saw_added = false;
  for (const emis_diff::MetricDelta& d : added.deltas) saw_added |= d.cls == "added";
  EXPECT_TRUE(saw_added);
}

TEST(ReportDiff, IncomparableDocumentsFailClosed) {
  const JsonValue doc = RealRunReport();
  JsonValue bench = JsonValue::MakeObject();
  bench.Set("schema", obs::kBenchReportSchema);
  std::string error;
  const emis_diff::DiffResult result =
      emis_diff::DiffReports(doc, bench, {}, &error);
  EXPECT_NE(error, "");  // bench doc is schema-invalid AND mismatched
  EXPECT_FALSE(result.Ok());
}

TEST(ReportDiff, BenchReportsFlattenSweepPoints) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema", obs::kBenchReportSchema);
  doc.Set("bench", "gate");
  doc.Set("claim", "baseline");
  doc.Set("failures", 0);
  doc.Set("verdicts", JsonValue::MakeArray());
  JsonValue sweeps = JsonValue::MakeArray();
  JsonValue sweep = JsonValue::MakeObject();
  sweep.Set("title", "er / cd");
  JsonValue points = JsonValue::MakeArray();
  JsonValue point = JsonValue::MakeObject();
  point.Set("n", 64);
  point.Set("runs", 4);
  point.Set("failures", 0);
  point.Set("max_energy_mean", 12.5);
  point.Set("avg_energy_mean", 3.25);
  point.Set("rounds_mean", 40.0);
  point.Set("mis_size_mean", 20.0);
  point.Set("wall_seconds", 0.5);  // execution fact: must NOT be compared
  points.Push(std::move(point));
  sweep.Set("points", std::move(points));
  sweeps.Push(std::move(sweep));
  doc.Set("sweeps", std::move(sweeps));
  JsonValue alloc = JsonValue::MakeObject();
  alloc.Set("peak_rss_bytes", 1);
  doc.Set("alloc", std::move(alloc));

  std::map<std::string, double> flat;
  EXPECT_EQ(emis_diff::FlattenReport(doc, &flat), "");
  EXPECT_EQ(flat.count("sweeps.er / cd.n64.max_energy_mean"), 1u);
  EXPECT_EQ(flat.count("sweeps.er / cd.n64.wall_seconds"), 0u);
  EXPECT_EQ(flat.count("failures"), 1u);
  EXPECT_TRUE(emis_diff::DiffReports(doc, doc, {}).Ok());
}

TEST(ReportDiff, DiffReportJsonValidates) {
  const JsonValue doc = RealRunReport();
  const JsonValue drifted = WithChanged(
      doc, "result", "rounds", doc.Find("result")->Find("rounds")->AsNumber() + 2);
  const emis_diff::DiffResult result = emis_diff::DiffReports(doc, drifted, {});
  const JsonValue report =
      emis_diff::BuildDiffReportJson(result, "baseline.json", "current.json");
  EXPECT_EQ(obs::ValidateDiffReport(report), "");
  EXPECT_EQ(obs::ValidateReport(report), "");  // dispatch knows the schema
  EXPECT_DOUBLE_EQ(report.Find("out_of_tolerance")->AsNumber(),
                   static_cast<double>(result.out_of_tolerance));
  // Only non-ok deltas are listed, so a clean diff renders compact.
  const JsonValue clean =
      emis_diff::BuildDiffReportJson(emis_diff::DiffReports(doc, doc, {}),
                                     "a.json", "b.json");
  EXPECT_EQ(obs::ValidateDiffReport(clean), "");
  EXPECT_TRUE(clean.Find("deltas")->Items().empty());
}

}  // namespace
}  // namespace emis
