// Flat-engine equivalence: the batched state-machine backend must be
// observationally identical to the coroutine reference. Properties checked:
//   * RunMis fingerprints (decisions, rounds, energy totals, full trace
//     hash) match the coroutine engine for every MIS core across
//     loss {0, 0.1} x resolution {auto, push, pull} x compaction {on, off};
//   * the algorithms outside the 5-core matrix (beeping, naive no-CD Luby,
//     unknown-Δ doubling) match on a representative config each;
//   * the flat engine reproduces the *pinned* golden trace hashes of
//     tests/test_residual_compaction.cpp — equivalence to the frozen
//     behavior, not merely to today's coroutine build;
//   * emis-run-report/1 documents (metrics, phases, energy attribution)
//     are bit-identical across engines once the wall-clock timers and the
//     alloc section — the only engine-dependent observables — are struck;
//   * sweeps driven through SweepConfig::engine produce identical points;
//   * Spawn/SpawnFlat enforce the configured engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/contracts.hpp"
#include "core/flat_mis.hpp"
#include "core/mis_cd.hpp"
#include "core/runner.hpp"
#include "obs/energy_ledger.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/report.hpp"
#include "radio/graph.hpp"
#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"
#include "radio/trace.hpp"
#include "verify/experiment.hpp"

namespace emis {
namespace {

/// FNV-1a over every traced action and reception (the pattern pinned in
/// test_residual_compaction.cpp) — any divergence in who acted, what was
/// heard, or which payload was decoded changes the hash.
class HashTrace final : public TraceSink {
 public:
  void OnEvent(const TraceEvent& e) override {
    Mix(e.round);
    Mix(e.node);
    Mix(static_cast<std::uint64_t>(e.action));
    Mix(e.payload);
    Mix(static_cast<std::uint64_t>(e.reception.kind));
    Mix(e.reception.payload);
  }
  std::uint64_t Value() const noexcept { return hash_; }

 private:
  void Mix(std::uint64_t x) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (x >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;
    }
  }
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

struct RunFingerprint {
  std::vector<MisStatus> status;
  Round rounds = 0;
  std::uint64_t total_awake = 0;
  std::uint64_t max_awake = 0;
  std::uint64_t trace_hash = 0;

  friend bool operator==(const RunFingerprint&, const RunFingerprint&) = default;
};

RunFingerprint Fingerprint(const Graph& g, ExecutionEngine engine,
                           MisAlgorithm algorithm, double loss,
                           ChannelResolution resolution, bool compaction) {
  HashTrace trace;
  MisRunConfig cfg;
  cfg.algorithm = algorithm;
  cfg.seed = 7;
  cfg.engine = engine;
  cfg.trace = &trace;
  cfg.link_loss = loss;
  cfg.resolution = resolution;
  cfg.compaction = compaction;
  const MisRunResult r = RunMis(g, cfg);
  EXPECT_TRUE(r.Valid() || loss > 0.0);
  return {r.status, r.stats.rounds_used, r.energy.TotalAwake(),
          r.energy.MaxAwake(), trace.Value()};
}

// The five MIS cores of the flat backend: Algorithm 1 (CD), the naive-Luby
// CD baseline, Algorithm 2 (no-CD), the backoff-simulated Algorithm 1, and
// the Ghaffari-style round-efficient MIS.
constexpr MisAlgorithm kCores[] = {
    MisAlgorithm::kCd, MisAlgorithm::kCdNaive, MisAlgorithm::kNoCd,
    MisAlgorithm::kNoCdDaviesProfile, MisAlgorithm::kNoCdRoundEfficient};

TEST(FlatEngine, MatchesCoroutineAcrossCoreMatrix) {
  Rng rng(2026);
  const Graph g = gen::ErdosRenyi(64, 0.1, rng);
  for (MisAlgorithm algorithm : kCores) {
    for (double loss : {0.0, 0.1}) {
      for (ChannelResolution resolution :
           {ChannelResolution::kAuto, ChannelResolution::kPush,
            ChannelResolution::kPull}) {
        for (bool compaction : {true, false}) {
          const RunFingerprint reference =
              Fingerprint(g, ExecutionEngine::kCoroutine, algorithm, loss,
                          resolution, compaction);
          const RunFingerprint flat = Fingerprint(
              g, ExecutionEngine::kFlat, algorithm, loss, resolution, compaction);
          EXPECT_EQ(flat, reference)
              << ToString(algorithm) << " loss " << loss << " resolution "
              << static_cast<int>(resolution) << " compaction " << compaction;
        }
      }
    }
  }
}

TEST(FlatEngine, MatchesCoroutineOnRemainingAlgorithms) {
  Rng rng(515);
  const Graph g = gen::RandomGeometric(48, 0.25, rng);
  for (MisAlgorithm algorithm :
       {MisAlgorithm::kCdBeeping, MisAlgorithm::kNoCdNaive,
        MisAlgorithm::kNoCdUnknownDelta}) {
    for (double loss : {0.0, 0.1}) {
      const RunFingerprint reference =
          Fingerprint(g, ExecutionEngine::kCoroutine, algorithm, loss,
                      ChannelResolution::kAuto, true);
      const RunFingerprint flat =
          Fingerprint(g, ExecutionEngine::kFlat, algorithm, loss,
                      ChannelResolution::kAuto, true);
      EXPECT_EQ(flat, reference) << ToString(algorithm) << " loss " << loss;
    }
  }
}

TEST(FlatEngine, ReproducesPinnedGoldenTraceHashes) {
  // The same constants test_residual_compaction.cpp pins for the coroutine
  // engine: the flat backend must reproduce the frozen behavior exactly.
  Rng rng(424242);
  const Graph g = gen::RandomGeometric(64, 0.22, rng);
  const RunFingerprint cd = Fingerprint(g, ExecutionEngine::kFlat,
                                        MisAlgorithm::kCd, 0.0,
                                        ChannelResolution::kAuto, true);
  const RunFingerprint cd_lossy = Fingerprint(g, ExecutionEngine::kFlat,
                                              MisAlgorithm::kCd, 0.3,
                                              ChannelResolution::kAuto, true);
  const RunFingerprint nocd = Fingerprint(g, ExecutionEngine::kFlat,
                                          MisAlgorithm::kNoCd, 0.0,
                                          ChannelResolution::kAuto, true);
  EXPECT_EQ(cd.trace_hash, 0xB54A7384D88D1E30ULL);
  EXPECT_EQ(cd_lossy.trace_hash, 0x0FA217956D3014ABULL);
  EXPECT_EQ(nocd.trace_hash, 0xE8D014E39E2297D4ULL);
}

/// Builds a full emis-run-report/1 document for one engine, then strikes
/// the only engine-dependent observables: the alloc section (coroutine
/// frames live in the arena; flat lanes do not), the wall-clock timer
/// values inside the metrics block, and the sharding cost observables
/// (run.shards plus the chan.merge_words / parallel.* gauges — the flat
/// engine may run sharded under EMIS_SHARDS while the coroutine reference
/// is always single-sharded). Everything else — counters, gauges,
/// histograms, phases, energy, attribution — must match bit for bit.
std::string NormalizedReport(const Graph& g, ExecutionEngine engine,
                             MisAlgorithm algorithm) {
  obs::MetricsRegistry metrics;
  obs::PhaseTimeline timeline;
  obs::EnergyLedger ledger(g.NumNodes());
  MisRunConfig cfg;
  cfg.algorithm = algorithm;
  cfg.seed = 21;
  cfg.engine = engine;
  cfg.metrics = &metrics;
  cfg.timeline = &timeline;
  cfg.ledger = &ledger;
  const MisRunResult r = RunMis(g, cfg);
  EXPECT_TRUE(r.Valid());
  obs::JsonValue doc = obs::BuildRunReport({.algorithm = std::string(ToString(algorithm)),
                                            .graph = "er-flat-parity",
                                            .preset = "practical",
                                            .seed = 21,
                                            .nodes = g.NumNodes(),
                                            .edges = g.NumEdges(),
                                            .max_degree = g.MaxDegree(),
                                            .valid_mis = r.Valid(),
                                            .mis_size = r.MisSize(),
                                            .stats = &r.stats,
                                            .energy = &r.energy,
                                            .timeline = &timeline,
                                            .metrics = &metrics,
                                            .ledger = &ledger});
  EXPECT_EQ(obs::ValidateRunReport(doc), "");
  // JsonValue::Set appends (duplicate keys allowed), so normalize by
  // rebuilding the objects entry by entry, preserving key order.
  obs::JsonValue normalized = obs::JsonValue::MakeObject();
  for (const auto& [key, value] : doc.Entries()) {
    if (key == "alloc") continue;
    if (key == "run") {
      obs::JsonValue run_doc = obs::JsonValue::MakeObject();
      for (const auto& [rkey, rvalue] : value.Entries()) {
        if (rkey != "shards") run_doc.Set(rkey, rvalue);
      }
      normalized.Set("run", std::move(run_doc));
      continue;
    }
    if (key != "metrics") {
      normalized.Set(key, value);
      continue;
    }
    obs::JsonValue metrics_doc = obs::JsonValue::MakeObject();
    for (const auto& [mkey, mvalue] : value.Entries()) {
      if (mkey == "timers") continue;  // wall-clock; engine-dependent
      if (mkey != "gauges") {
        metrics_doc.Set(mkey, mvalue);
        continue;
      }
      obs::JsonValue gauges = obs::JsonValue::MakeObject();
      for (const auto& [gkey, gvalue] : mvalue.Entries()) {
        // Frame-arena footprint exists only under the coroutine engine;
        // merge-word and barrier-wait tallies only under a sharded one.
        // Context/lane residency gauges report engine-dependent byte
        // counts (mem.lane_bytes is zero without flat lanes).
        if (gkey.starts_with("arena.") || gkey.starts_with("parallel.") ||
            gkey.starts_with("mem.") || gkey == "chan.merge_words") {
          continue;
        }
        gauges.Set(gkey, gvalue);
      }
      metrics_doc.Set("gauges", std::move(gauges));
    }
    normalized.Set("metrics", std::move(metrics_doc));
  }
  return normalized.Dump(2);
}

TEST(FlatEngine, RunReportsIdenticalExcludingWallAndAlloc) {
  Rng rng(77);
  const Graph g = gen::ErdosRenyi(72, 0.08, rng);
  for (MisAlgorithm algorithm :
       {MisAlgorithm::kCd, MisAlgorithm::kNoCd,
        MisAlgorithm::kNoCdRoundEfficient}) {
    EXPECT_EQ(NormalizedReport(g, ExecutionEngine::kFlat, algorithm),
              NormalizedReport(g, ExecutionEngine::kCoroutine, algorithm))
        << ToString(algorithm);
  }
}

TEST(FlatEngine, SweepPointsIdenticalAcrossEngines) {
  SweepConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.factory = families::SparseErdosRenyi(6.0);
  cfg.sizes = {48, 96};
  cfg.seeds_per_size = 4;
  cfg.engine = ExecutionEngine::kCoroutine;
  const std::vector<SweepPoint> reference = RunSweep(cfg);
  cfg.engine = ExecutionEngine::kFlat;
  const std::vector<SweepPoint> flat = RunSweep(cfg, 4, nullptr);
  ASSERT_EQ(flat.size(), reference.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].n, reference[i].n);
    EXPECT_EQ(flat[i].failures, reference[i].failures);
    EXPECT_EQ(flat[i].max_energy.mean, reference[i].max_energy.mean);
    EXPECT_EQ(flat[i].avg_energy.mean, reference[i].avg_energy.mean);
    EXPECT_EQ(flat[i].rounds.mean, reference[i].rounds.mean);
    EXPECT_EQ(flat[i].mis_size.mean, reference[i].mis_size.mean);
  }
}

TEST(FlatEngine, SpawnEnforcesConfiguredEngine) {
  const Graph g = gen::Path(4);
  std::vector<MisStatus> out(g.NumNodes(), MisStatus::kUndecided);

  // A flat-engine scheduler rejects the coroutine entry point and vice versa.
  Scheduler flat_sched(g, {.engine = ExecutionEngine::kFlat}, 1);
  EXPECT_THROW(flat_sched.Spawn(MisCdProtocol(CdParams::Practical(4), &out)),
               PreconditionError);
  Scheduler coro_sched(g, {.engine = ExecutionEngine::kCoroutine}, 1);
  EXPECT_THROW(coro_sched.SpawnFlat(
                   FlatMisCdProtocol(CdParams::Practical(4), &out, g.NumNodes())),
               PreconditionError);
  EXPECT_THROW(Scheduler(g, {.engine = ExecutionEngine::kFlat}, 1).SpawnFlat(nullptr),
               PreconditionError);
}

TEST(FlatEngine, EngineNamesRoundTrip) {
  EXPECT_EQ(ToString(ExecutionEngine::kCoroutine), "coroutine");
  EXPECT_EQ(ToString(ExecutionEngine::kFlat), "flat");
  EXPECT_EQ(ExecutionEngineFromString("coroutine"), ExecutionEngine::kCoroutine);
  EXPECT_EQ(ExecutionEngineFromString("flat"), ExecutionEngine::kFlat);
  EXPECT_EQ(ExecutionEngineFromString("batched"), kInvalidExecutionEngine);
}

}  // namespace
}  // namespace emis
