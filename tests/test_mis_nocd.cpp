// Tests for Algorithm 2 (no-CD MIS, Theorem 10).
#include "core/mis_nocd.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "radio/graph_generators.hpp"
#include "verify/mis_checker.hpp"

namespace emis {
namespace {

MisRunResult RunNoCd(const Graph& g, std::uint64_t seed) {
  return RunMis(g, {.algorithm = MisAlgorithm::kNoCd, .seed = seed});
}

TEST(MisNoCd, SingleNodeJoins) {
  Graph g = gen::Empty(1);
  auto r = RunNoCd(g, 1);
  ASSERT_TRUE(r.Valid()) << r.report.Describe();
  EXPECT_EQ(r.status[0], MisStatus::kInMis);
}

TEST(MisNoCd, IsolatedNodesAllJoin) {
  Graph g = gen::Empty(12);
  auto r = RunNoCd(g, 2);
  ASSERT_TRUE(r.Valid()) << r.report.Describe();
  EXPECT_EQ(r.MisSize(), 12u);
}

TEST(MisNoCd, SingleEdgeBreaksTie) {
  Graph g = gen::Path(2);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto r = RunNoCd(g, seed);
    ASSERT_TRUE(r.Valid()) << "seed " << seed << ": " << r.report.Describe();
    EXPECT_EQ(r.MisSize(), 1u);
  }
}

TEST(MisNoCd, ValidOnAssortedFamilies) {
  Rng rng(1);
  const Graph graphs[] = {
      gen::Path(24),
      gen::Cycle(21),
      gen::Star(26),
      gen::Grid(5, 5),
      gen::Complete(12),
      gen::ErdosRenyi(64, 0.08, rng),
      gen::MatchingPlusIsolated(32),
      gen::DisjointCliques(4, 5),
      gen::RandomTree(40, rng),
      gen::CompleteBipartite(8, 12),
  };
  std::uint64_t seed = 50;
  for (const Graph& g : graphs) {
    auto r = RunNoCd(g, seed++);
    EXPECT_TRUE(r.Valid()) << "n=" << g.NumNodes() << " m=" << g.NumEdges()
                           << ": " << r.report.Describe();
  }
}

TEST(MisNoCd, RepeatedSeedsOnRandomGraph) {
  Rng rng(2);
  Graph g = gen::ErdosRenyi(96, 6.0 / 96, rng);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto r = RunNoCd(g, seed);
    EXPECT_TRUE(r.Valid()) << "seed " << seed << ": " << r.report.Describe();
  }
}

TEST(MisNoCd, DeterministicGivenSeed) {
  Rng rng(3);
  Graph g = gen::ErdosRenyi(48, 0.1, rng);
  auto a = RunNoCd(g, 5);
  auto b = RunNoCd(g, 5);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.stats.rounds_used, b.stats.rounds_used);
  EXPECT_EQ(a.energy.MaxAwake(), b.energy.MaxAwake());
}

TEST(MisNoCd, RoundsWithinScheduleBound) {
  Rng rng(4);
  Graph g = gen::ErdosRenyi(64, 0.1, rng);
  MisRunConfig cfg{.algorithm = MisAlgorithm::kNoCd, .seed = 7};
  auto r = RunMis(g, cfg);
  ASSERT_TRUE(r.Valid());
  const NoCdParams p = DeriveNoCdParams(g, cfg);
  EXPECT_LE(r.stats.rounds_used,
            static_cast<Round>(p.luby_phases) * NoCdSchedule::Of(p).phase);
}

TEST(MisNoCd, EnergyFarBelowRounds) {
  // The whole point of Theorem 10: awake rounds ≪ total rounds. With the
  // practical constants the round count is in the tens of thousands while
  // max energy stays in the hundreds.
  Rng rng(5);
  Graph g = gen::ErdosRenyi(128, 8.0 / 128, rng);
  auto r = RunNoCd(g, 9);
  ASSERT_TRUE(r.Valid()) << r.report.Describe();
  EXPECT_LT(r.energy.MaxAwake() * 10, r.stats.rounds_used);
}

TEST(MisNoCd, BeatsNaiveBaselineOnEnergy) {
  Rng rng(6);
  Graph g = gen::ErdosRenyi(128, 8.0 / 128, rng);
  std::uint64_t ours = 0, naive = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto r1 = RunNoCd(g, seed);
    auto r2 = RunMis(g, {.algorithm = MisAlgorithm::kNoCdNaive, .seed = seed});
    ASSERT_TRUE(r1.Valid() && r2.Valid());
    ours += r1.energy.MaxAwake();
    naive += r2.energy.MaxAwake();
  }
  EXPECT_LT(ours, naive);
}

TEST(MisNoCd, EnergyCapForcesDecisions) {
  Rng rng(7);
  Graph g = gen::ErdosRenyi(48, 0.1, rng);
  MisRunConfig cfg{.algorithm = MisAlgorithm::kNoCd, .seed = 3};
  cfg.nocd_params = DeriveNoCdParams(g, {.algorithm = MisAlgorithm::kNoCd});
  cfg.nocd_params->energy_cap = 40;  // deliberately tight
  auto r = RunMis(g, cfg);
  // The cap is checked at phase boundaries, so single-phase overshoot is
  // possible but bounded; and capped nodes must end decided.
  EXPECT_TRUE(r.report.Decided());
}

TEST(MisNoCd, ZeroPhasesLeavesUndecided) {
  Graph g = gen::Path(3);
  MisRunConfig cfg{.algorithm = MisAlgorithm::kNoCd, .seed = 1};
  cfg.nocd_params = DeriveNoCdParams(g, cfg);
  cfg.nocd_params->luby_phases = 0;
  auto r = RunMis(g, cfg);
  EXPECT_EQ(r.report.undecided.size(), 3u);
}

TEST(MisNoCd, HighDegreeStarResolves) {
  Graph g = gen::Star(100);
  auto r = RunNoCd(g, 11);
  ASSERT_TRUE(r.Valid()) << r.report.Describe();
  const bool hub = r.status[0] == MisStatus::kInMis;
  EXPECT_EQ(r.MisSize(), hub ? 1u : 99u);
}

TEST(MisNoCd, DenseGraphResolves) {
  Rng rng(8);
  Graph g = gen::ErdosRenyi(64, 0.35, rng);
  auto r = RunNoCd(g, 13);
  EXPECT_TRUE(r.Valid()) << r.report.Describe();
}

}  // namespace
}  // namespace emis
