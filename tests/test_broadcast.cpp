#include "apps/broadcast.hpp"

#include <gtest/gtest.h>

#include "apps/coloring.hpp"
#include "radio/graph_generators.hpp"

namespace emis {
namespace {

TEST(GraphSquare, PathSquare) {
  // Path 0-1-2-3: square adds 0-2 and 1-3.
  Graph g = gen::Path(4);
  Graph sq = g.Square();
  EXPECT_EQ(sq.NumEdges(), 5u);
  EXPECT_TRUE(sq.HasEdge(0, 2));
  EXPECT_TRUE(sq.HasEdge(1, 3));
  EXPECT_FALSE(sq.HasEdge(0, 3));
}

TEST(GraphSquare, StarSquareIsComplete) {
  Graph sq = gen::Star(6).Square();
  EXPECT_EQ(sq.NumEdges(), 15u);
}

TEST(GraphSquare, EmptyAndSingle) {
  EXPECT_EQ(gen::Empty(5).Square().NumEdges(), 0u);
  EXPECT_EQ(gen::Empty(0).Square().NumNodes(), 0u);
}

TEST(BfsDistances, PathDistances) {
  Graph g = gen::Path(5);
  const auto d = g.BfsDistances(0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
  const auto d2 = g.BfsDistances(2);
  EXPECT_EQ(d2[0], 2u);
  EXPECT_EQ(d2[4], 2u);
}

TEST(BfsDistances, DisconnectedUnreachable) {
  Graph g = gen::MatchingPlusIsolated(8);
  const auto d = g.BfsDistances(0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[4], Graph::kUnreachable);
}

TEST(D2Coloring, GreedyIsValidAcrossFamilies) {
  Rng rng(1);
  const Graph graphs[] = {gen::Path(20), gen::Cycle(15), gen::Star(12),
                          gen::Grid(5, 5), gen::ErdosRenyi(60, 0.08, rng),
                          gen::RandomGeometric(50, 0.2, rng)};
  for (const Graph& g : graphs) {
    const auto color = GreedyDistanceTwoColoring(g);
    EXPECT_EQ(CheckDistanceTwoColoring(g, color), "") << "n=" << g.NumNodes();
    const auto max_c = *std::max_element(color.begin(), color.end());
    EXPECT_LE(max_c, g.Square().MaxDegree());  // greedy bound on G²
  }
}

TEST(D2Coloring, CheckerCatchesTwoHopConflicts) {
  Graph g = gen::Path(3);  // 0-1-2: all three mutually within 2 hops
  EXPECT_NE(CheckDistanceTwoColoring(g, {0, 1, 0}), "");
  EXPECT_EQ(CheckDistanceTwoColoring(g, {0, 1, 2}), "");
  EXPECT_NE(CheckDistanceTwoColoring(g, {0, 1, ~std::uint32_t{0}}), "");
}

TEST(Broadcast, SingleNode) {
  Graph g = gen::Empty(1);
  const auto r = FloodBroadcast(g, 0, 42, GreedyDistanceTwoColoring(g));
  EXPECT_TRUE(r.AllInformed());
  EXPECT_EQ(r.informed_at[0], 0u);
}

TEST(Broadcast, PathPropagatesInOrder) {
  Graph g = gen::Path(10);
  const auto r = FloodBroadcast(g, 0, 7, GreedyDistanceTwoColoring(g));
  ASSERT_TRUE(r.AllInformed());
  // Nodes farther along the path are informed later. (Node 1 can tie the
  // source's definitional round 0 when the source's slot is round 0.)
  for (NodeId v = 1; v < 10; ++v) {
    EXPECT_GE(r.informed_at[v], r.informed_at[v - 1]) << "node " << v;
  }
  for (NodeId v = 2; v < 10; ++v) {
    EXPECT_GT(r.informed_at[v], r.informed_at[v - 1]) << "node " << v;
  }
}

TEST(Broadcast, InformsEveryConnectedNode) {
  Rng rng(2);
  const Graph graphs[] = {gen::Cycle(30), gen::Grid(6, 6), gen::Star(25),
                          gen::RandomGeometric(80, 0.25, rng),
                          gen::RandomTree(50, rng)};
  for (const Graph& g : graphs) {
    if (!g.IsConnected()) continue;
    const auto r = FloodBroadcast(g, 0, 99, GreedyDistanceTwoColoring(g));
    EXPECT_TRUE(r.AllInformed()) << "n=" << g.NumNodes();
  }
}

TEST(Broadcast, DisconnectedComponentStaysUninformed) {
  Graph g = gen::MatchingPlusIsolated(8);  // pairs {0,1},{2,3} + isolated
  const auto r = FloodBroadcast(g, 0, 5, GreedyDistanceTwoColoring(g));
  EXPECT_TRUE(r.informed[0]);
  EXPECT_TRUE(r.informed[1]);
  EXPECT_FALSE(r.informed[2]);
  EXPECT_FALSE(r.informed[4]);
}

TEST(Broadcast, InformedRoundsTrackBfsDepth) {
  // The frontier advances at least one hop per color cycle, so
  // informed_at <= (dist + 1) * colors.
  Rng rng(3);
  Graph g = gen::RandomGeometric(70, 0.25, rng);
  if (!g.IsConnected()) GTEST_SKIP();
  const auto color = GreedyDistanceTwoColoring(g);
  const auto colors = 1 + *std::max_element(color.begin(), color.end());
  const auto r = FloodBroadcast(g, 0, 1, color);
  ASSERT_TRUE(r.AllInformed());
  const auto dist = g.BfsDistances(0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_LE(r.informed_at[v],
              static_cast<Round>(dist[v] + 1) * colors) << "node " << v;
  }
}

TEST(Broadcast, EveryNodeTransmitsAtMostOnce) {
  Rng rng(4);
  Graph g = gen::RandomGeometric(60, 0.25, rng);
  const auto r = FloodBroadcast(g, 0, 3, GreedyDistanceTwoColoring(g));
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_LE(r.energy.Of(v).transmit_rounds, 1u);
  }
}

TEST(Broadcast, WorksWithDistributedColoringOnSquare) {
  // The iterated-MIS coloring protocol run on G² yields a distance-2
  // coloring of G (with the caveat documented in broadcast.hpp).
  Rng rng(5);
  Graph g = gen::RandomGeometric(40, 0.3, rng);
  if (!g.IsConnected()) GTEST_SKIP();
  const Graph sq = g.Square();
  const ColoringParams params =
      ColoringParams::Practical(sq.NumNodes(), sq.MaxDegree());
  const ColoringResult coloring = ColorGraph(sq, params, 9);
  ASSERT_TRUE(coloring.AllColored());
  ASSERT_EQ(CheckDistanceTwoColoring(g, coloring.color), "");
  const auto r = FloodBroadcast(g, 0, 11, coloring.color);
  EXPECT_TRUE(r.AllInformed());
}

TEST(Broadcast, RejectsBadInput) {
  Graph g = gen::Path(3);
  EXPECT_THROW(FloodBroadcast(g, 5, 1, GreedyDistanceTwoColoring(g)),
               PreconditionError);
  EXPECT_THROW(FloodBroadcast(g, 0, 1, {0, 1, 0}), PreconditionError);
}

TEST(Broadcast, IsFullyDeterministic) {
  Rng rng(6);
  Graph g = gen::RandomGeometric(50, 0.25, rng);
  const auto color = GreedyDistanceTwoColoring(g);
  const auto a = FloodBroadcast(g, 0, 8, color);
  const auto b = FloodBroadcast(g, 0, 8, color);
  EXPECT_EQ(a.informed_at, b.informed_at);
  EXPECT_EQ(a.stats.rounds_used, b.stats.rounds_used);
}

}  // namespace
}  // namespace emis
