// Tests for the RunMis facade: configuration plumbing, parameter derivation,
// overrides, and result invariants.
#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "radio/graph_generators.hpp"

namespace emis {
namespace {

TEST(Runner, ToStringCoversAllAlgorithms) {
  for (MisAlgorithm alg :
       {MisAlgorithm::kCd, MisAlgorithm::kCdBeeping, MisAlgorithm::kCdNaive,
        MisAlgorithm::kNoCd, MisAlgorithm::kNoCdDaviesProfile,
        MisAlgorithm::kNoCdNaive, MisAlgorithm::kNoCdUnknownDelta}) {
    EXPECT_NE(ToString(alg), "?");
  }
}

TEST(Runner, ModelMapping) {
  EXPECT_EQ(ModelFor(MisAlgorithm::kCd), ChannelModel::kCd);
  EXPECT_EQ(ModelFor(MisAlgorithm::kCdNaive), ChannelModel::kCd);
  EXPECT_EQ(ModelFor(MisAlgorithm::kCdBeeping), ChannelModel::kBeeping);
  EXPECT_EQ(ModelFor(MisAlgorithm::kNoCd), ChannelModel::kNoCd);
  EXPECT_EQ(ModelFor(MisAlgorithm::kNoCdDaviesProfile), ChannelModel::kNoCd);
  EXPECT_EQ(ModelFor(MisAlgorithm::kNoCdNaive), ChannelModel::kNoCd);
  EXPECT_EQ(ModelFor(MisAlgorithm::kNoCdUnknownDelta), ChannelModel::kNoCd);
}

TEST(Runner, NEstimateScalesParameters) {
  Graph g = gen::Path(8);
  MisRunConfig small{.algorithm = MisAlgorithm::kCd};
  MisRunConfig big{.algorithm = MisAlgorithm::kCd, .n_estimate = 1 << 20};
  const CdParams ps = DeriveCdParams(g, small);
  const CdParams pb = DeriveCdParams(g, big);
  EXPECT_GT(pb.rank_bits, ps.rank_bits);
  EXPECT_GT(pb.luby_phases, ps.luby_phases);
}

TEST(Runner, OverestimatedNStillCorrect) {
  // Paper §1.1: n only needs to be an upper bound; overestimates cost only
  // polylog factors.
  Rng rng(1);
  Graph g = gen::ErdosRenyi(50, 0.1, rng);
  const auto r = RunMis(
      g, {.algorithm = MisAlgorithm::kCd, .seed = 2, .n_estimate = 1 << 16});
  EXPECT_TRUE(r.Valid()) << r.report.Describe();
}

TEST(Runner, DeltaEstimateDrivesNoCdWindows) {
  Graph g = gen::Path(8);
  MisRunConfig exact{.algorithm = MisAlgorithm::kNoCd};
  MisRunConfig crude{.algorithm = MisAlgorithm::kNoCd, .delta_estimate = 1024};
  const NoCdParams pe = DeriveNoCdParams(g, exact);
  const NoCdParams pc = DeriveNoCdParams(g, crude);
  EXPECT_EQ(pe.delta, 2u);  // true max degree of a path
  EXPECT_EQ(pc.delta, 1024u);
  EXPECT_GT(NoCdSchedule::Of(pc).phase, NoCdSchedule::Of(pe).phase);
}

TEST(Runner, ExplicitParamOverridesWin) {
  Graph g = gen::Path(4);
  MisRunConfig cfg{.algorithm = MisAlgorithm::kCd, .n_estimate = 1 << 20};
  cfg.cd_params = CdParams{.luby_phases = 3, .rank_bits = 5};
  const CdParams p = DeriveCdParams(g, cfg);
  EXPECT_EQ(p.luby_phases, 3u);
  EXPECT_EQ(p.rank_bits, 5u);

  MisRunConfig ncfg{.algorithm = MisAlgorithm::kNoCd};
  ncfg.nocd_params = NoCdParams::Practical(99, 7);
  EXPECT_EQ(DeriveNoCdParams(g, ncfg).delta, 7u);

  MisRunConfig scfg{.algorithm = MisAlgorithm::kNoCdNaive};
  SimCdParams sp;
  sp.luby_phases = 2;
  sp.rank_bits = 3;
  sp.reps = 4;
  sp.delta = 5;
  sp.delta_est = 5;
  scfg.sim_params = sp;
  EXPECT_EQ(DeriveSimParams(g, scfg).luby_phases, 2u);
}

TEST(Runner, NaiveAlgorithmsGetTheirStyles) {
  Graph g = gen::Path(8);
  EXPECT_TRUE(DeriveCdParams(g, {.algorithm = MisAlgorithm::kCdNaive})
                  .losers_keep_listening);
  EXPECT_FALSE(DeriveCdParams(g, {.algorithm = MisAlgorithm::kCd})
                   .losers_keep_listening);
  EXPECT_EQ(DeriveSimParams(g, {.algorithm = MisAlgorithm::kNoCdNaive}).style,
            BackoffStyle::kTraditional);
  EXPECT_EQ(
      DeriveSimParams(g, {.algorithm = MisAlgorithm::kNoCdDaviesProfile}).style,
      BackoffStyle::kEnergyEfficient);
}

TEST(Runner, MaxRoundsReportsLimit) {
  Rng rng(2);
  Graph g = gen::ErdosRenyi(40, 0.2, rng);
  const auto r =
      RunMis(g, {.algorithm = MisAlgorithm::kNoCd, .seed = 1, .max_rounds = 50});
  EXPECT_TRUE(r.stats.hit_round_limit);
  EXPECT_FALSE(r.Valid());
}

TEST(Runner, ResultStatusSizeMatchesGraph) {
  Graph g = gen::Star(17);
  const auto r = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = 1});
  EXPECT_EQ(r.status.size(), 17u);
  EXPECT_EQ(r.energy.NumNodes(), 17u);
}

TEST(Runner, MisSizeCountsInMis) {
  Graph g = gen::Empty(5);
  const auto r = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = 1});
  EXPECT_EQ(r.MisSize(), 5u);
}

TEST(Runner, TinyGraphsAcrossAllAlgorithms) {
  // n = 0, 1, 2 edge cases through the whole facade.
  for (MisAlgorithm alg :
       {MisAlgorithm::kCd, MisAlgorithm::kCdBeeping, MisAlgorithm::kCdNaive,
        MisAlgorithm::kNoCd, MisAlgorithm::kNoCdDaviesProfile,
        MisAlgorithm::kNoCdNaive, MisAlgorithm::kNoCdUnknownDelta}) {
    const auto r0 = RunMis(gen::Empty(0), {.algorithm = alg, .seed = 1});
    EXPECT_TRUE(r0.Valid()) << ToString(alg);
    const auto r1 = RunMis(gen::Empty(1), {.algorithm = alg, .seed = 1});
    EXPECT_TRUE(r1.Valid()) << ToString(alg);
    EXPECT_EQ(r1.status[0], MisStatus::kInMis) << ToString(alg);
    const auto r2 = RunMis(gen::Path(2), {.algorithm = alg, .seed = 1});
    EXPECT_TRUE(r2.Valid()) << ToString(alg);
    EXPECT_EQ(r2.MisSize(), 1u) << ToString(alg);
  }
}

}  // namespace
}  // namespace emis
