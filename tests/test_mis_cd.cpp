// Tests for Algorithm 1 (CD-model MIS, Theorem 2) and its beeping and
// naive-baseline variants.
#include "core/mis_cd.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "radio/graph_generators.hpp"
#include "verify/mis_checker.hpp"

namespace emis {
namespace {

MisRunResult RunAlg(const Graph& g, std::uint64_t seed,
                 MisAlgorithm alg = MisAlgorithm::kCd) {
  return RunMis(g, {.algorithm = alg, .seed = seed});
}

TEST(MisCd, SingleNodeJoins) {
  Graph g = gen::Empty(1);
  auto r = RunAlg(g, 1);
  EXPECT_TRUE(r.Valid()) << r.report.Describe();
  EXPECT_EQ(r.status[0], MisStatus::kInMis);
}

TEST(MisCd, AllIsolatedNodesJoin) {
  Graph g = gen::Empty(20);
  auto r = RunAlg(g, 2);
  EXPECT_TRUE(r.Valid()) << r.report.Describe();
  EXPECT_EQ(r.MisSize(), 20u);
}

TEST(MisCd, SingleEdgeBreaksTie) {
  Graph g = gen::Path(2);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    auto r = RunAlg(g, seed);
    ASSERT_TRUE(r.Valid()) << "seed " << seed << ": " << r.report.Describe();
    EXPECT_EQ(r.MisSize(), 1u);
  }
}

TEST(MisCd, CompleteGraphPicksExactlyOne) {
  Graph g = gen::Complete(32);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto r = RunAlg(g, seed);
    ASSERT_TRUE(r.Valid()) << "seed " << seed << ": " << r.report.Describe();
    EXPECT_EQ(r.MisSize(), 1u);
  }
}

TEST(MisCd, StarPicksHubOrAllLeaves) {
  Graph g = gen::Star(33);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto r = RunAlg(g, seed);
    ASSERT_TRUE(r.Valid()) << r.report.Describe();
    const bool hub = r.status[0] == MisStatus::kInMis;
    EXPECT_EQ(r.MisSize(), hub ? 1u : 32u);
  }
}

TEST(MisCd, LowerBoundFamily) {
  // Theorem 1's graph: every isolated node must join; every matched pair
  // must pick exactly one endpoint.
  Graph g = gen::MatchingPlusIsolated(64);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto r = RunAlg(g, seed);
    ASSERT_TRUE(r.Valid()) << r.report.Describe();
    EXPECT_EQ(r.MisSize(), 16u + 32u);  // one per pair + all isolated
  }
}

TEST(MisCd, ValidOnAssortedFamilies) {
  Rng rng(77);
  const Graph graphs[] = {
      gen::Path(50),
      gen::Cycle(51),
      gen::Grid(8, 8),
      gen::ErdosRenyi(200, 0.05, rng),
      gen::RandomGeometric(150, 0.12, rng),
      gen::RandomTree(120, rng),
      gen::DisjointCliques(8, 8),
      gen::BarabasiAlbert(150, 3, rng),
      gen::CompleteBipartite(20, 30),
      gen::Caterpillar(20, 3),
  };
  std::uint64_t seed = 100;
  for (const Graph& g : graphs) {
    for (int rep = 0; rep < 3; ++rep) {
      auto r = RunAlg(g, seed++);
      EXPECT_TRUE(r.Valid()) << "n=" << g.NumNodes() << " m=" << g.NumEdges()
                             << ": " << r.report.Describe();
    }
  }
}

TEST(MisCd, DisjointCliquesPickOnePerClique) {
  Graph g = gen::DisjointCliques(10, 6);
  auto r = RunAlg(g, 5);
  ASSERT_TRUE(r.Valid()) << r.report.Describe();
  EXPECT_EQ(r.MisSize(), 10u);
}

TEST(MisCd, DeterministicGivenSeed) {
  Rng rng(3);
  Graph g = gen::ErdosRenyi(100, 0.08, rng);
  auto r1 = RunAlg(g, 123);
  auto r2 = RunAlg(g, 123);
  EXPECT_EQ(r1.status, r2.status);
  EXPECT_EQ(r1.stats.rounds_used, r2.stats.rounds_used);
  EXPECT_EQ(r1.energy.MaxAwake(), r2.energy.MaxAwake());
}

TEST(MisCd, DifferentSeedsCanDiffer) {
  Rng rng(4);
  Graph g = gen::ErdosRenyi(100, 0.08, rng);
  auto r1 = RunAlg(g, 1);
  auto r2 = RunAlg(g, 2);
  EXPECT_TRUE(r1.Valid() && r2.Valid());
  EXPECT_NE(r1.status, r2.status);  // overwhelmingly likely on 100 nodes
}

// --- Energy and round complexity (Theorem 2 shape) ---------------------------

TEST(MisCd, RoundsAreWithinScheduleBound) {
  Rng rng(5);
  Graph g = gen::ErdosRenyi(256, 0.05, rng);
  MisRunConfig cfg{.algorithm = MisAlgorithm::kCd, .seed = 9};
  auto r = RunMis(g, cfg);
  ASSERT_TRUE(r.Valid());
  const CdParams p = DeriveCdParams(g, cfg);
  EXPECT_LE(r.stats.rounds_used, p.TotalRounds());
}

TEST(MisCd, EnergyIsLogarithmicNotLinear) {
  // O(log n) energy: Theorem 2's constant is (9C + β) log n ≈ 300 with the
  // practical preset at n = 1024; measured values sit around 30-60. Assert a
  // bound that is generous for O(log n) yet impossibly small for Θ(log² n)
  // behaviour on hard instances or anything polynomial.
  Rng rng(6);
  Graph g = gen::ErdosRenyi(1024, 8.0 / 1024, rng);
  auto r = RunAlg(g, 11);
  ASSERT_TRUE(r.Valid()) << r.report.Describe();
  EXPECT_LT(r.energy.MaxAwake(), 300u);
}

TEST(MisCd, WinnersPayTheCompetitionLosersPayLittle) {
  // On a complete graph there is one winner per run; the many losers drop
  // out after their first few 0-bits, so the median energy is well below the
  // winner's Θ(rank_bits) cost.
  Graph g = gen::Complete(200);
  auto r = RunAlg(g, 13);
  ASSERT_TRUE(r.Valid());
  EXPECT_LT(r.energy.PercentileAwake(50) * 2, r.energy.MaxAwake());
}

// --- Variants ---------------------------------------------------------------

TEST(MisCd, BeepingProducesIdenticalRun) {
  // §3.1: the algorithm only tests "heard something", so on the beeping
  // channel the entire execution (same seed) is identical.
  Rng rng(7);
  Graph g = gen::ErdosRenyi(150, 0.06, rng);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto cd = RunAlg(g, seed, MisAlgorithm::kCd);
    auto beep = RunAlg(g, seed, MisAlgorithm::kCdBeeping);
    EXPECT_EQ(cd.status, beep.status);
    EXPECT_EQ(cd.stats.rounds_used, beep.stats.rounds_used);
    EXPECT_EQ(cd.energy.MaxAwake(), beep.energy.MaxAwake());
    EXPECT_TRUE(beep.Valid());
  }
}

TEST(MisCd, NaiveBaselineIsCorrectButHungrier) {
  Rng rng(8);
  Graph g = gen::ErdosRenyi(512, 8.0 / 512, rng);
  std::uint64_t naive_total = 0, efficient_total = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto naive = RunAlg(g, seed, MisAlgorithm::kCdNaive);
    auto efficient = RunAlg(g, seed, MisAlgorithm::kCd);
    ASSERT_TRUE(naive.Valid()) << naive.report.Describe();
    ASSERT_TRUE(efficient.Valid());
    naive_total += naive.energy.MaxAwake();
    efficient_total += efficient.energy.MaxAwake();
  }
  // Θ(log² n) vs O(log n): the naive baseline costs strictly more.
  EXPECT_GT(naive_total, efficient_total * 2);
}

TEST(MisCd, ZeroPhasesLeavesEveryoneUndecided) {
  Graph g = gen::Path(4);
  MisRunConfig cfg{.algorithm = MisAlgorithm::kCd, .seed = 1};
  cfg.cd_params = CdParams{.luby_phases = 0, .rank_bits = 8};
  auto r = RunMis(g, cfg);
  EXPECT_FALSE(r.Valid());
  EXPECT_EQ(r.report.undecided.size(), 4u);
}

// --- Energy cap (lower-bound experiment harness, Theorem 1) ------------------

TEST(MisCd, EnergyCapRespected) {
  Graph g = gen::MatchingPlusIsolated(400);
  MisRunConfig cfg{.algorithm = MisAlgorithm::kCd, .seed = 3};
  cfg.cd_params = CdParams::Practical(400);
  cfg.cd_params->energy_cap = 4;
  auto r = RunMis(g, cfg);
  EXPECT_LE(r.energy.MaxAwake(), 4u);
  // Every node decided (capped nodes decide arbitrarily).
  EXPECT_TRUE(r.report.Decided());
}

TEST(MisCd, TinyEnergyCapFailsOnMatchingFamily) {
  // Theorem 1's mechanism: with energy ~ 1 round, matched pairs cannot break
  // ties, so across seeds failures must occur (isolated nodes still join).
  Graph g = gen::MatchingPlusIsolated(400);
  int failures = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    MisRunConfig cfg{.algorithm = MisAlgorithm::kCd, .seed = seed};
    cfg.cd_params = CdParams::Practical(400);
    cfg.cd_params->energy_cap = 1;
    auto r = RunMis(g, cfg);
    failures += !r.Valid();
  }
  EXPECT_GT(failures, 5);
}

TEST(MisCd, GenerousEnergyCapStillSucceeds) {
  Graph g = gen::MatchingPlusIsolated(400);
  MisRunConfig cfg{.algorithm = MisAlgorithm::kCd, .seed = 4};
  cfg.cd_params = CdParams::Practical(400);
  cfg.cd_params->energy_cap = 1000;  // far above the O(log n) need
  auto r = RunMis(g, cfg);
  EXPECT_TRUE(r.Valid()) << r.report.Describe();
}

// --- Theory preset ------------------------------------------------------------

TEST(MisCd, TheoryPresetWorksOnSmallGraphs) {
  Rng rng(9);
  Graph g = gen::ErdosRenyi(64, 0.1, rng);
  auto r = RunMis(g, {.algorithm = MisAlgorithm::kCd,
                      .preset = ParamPreset::kTheory,
                      .seed = 21});
  EXPECT_TRUE(r.Valid()) << r.report.Describe();
}

}  // namespace
}  // namespace emis
