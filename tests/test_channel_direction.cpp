// Direction-optimizing channel resolution: push and pull must be two
// implementations of the same radio semantics. Properties checked here:
//   * push/pull reception equivalence on random graphs, transmitter sets,
//     models, and loss rates (the tentpole invariant);
//   * RunMis produces identical MIS outputs and energy under kPush, kPull
//     and kAuto, reliable and lossy;
//   * the counter-based fading stream is pinned against golden values, so
//     an accidental reseeding or hash change fails loudly;
//   * double transmitter registration throws instead of double-delivering;
//   * the scheduler's cost model picks the cheap side and feeds the chan.*
//     counters, and its frame arena reaches a pooled steady state.
#include <gtest/gtest.h>

#include <vector>

#include "core/contracts.hpp"
#include "core/runner.hpp"
#include "obs/metrics.hpp"
#include "radio/channel.hpp"
#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"

namespace emis {
namespace {

/// Runs one identically-seeded round on two channels, one per direction,
/// and expects every listener's view to match.
void ExpectDirectionsAgree(const Graph& g, ChannelModel model, double loss) {
  Channel push(g, model);
  Channel pull(g, model);
  if (loss > 0.0) {
    push.SetLoss(loss, 77);
    pull.SetLoss(loss, 77);
  }
  Rng rng(g.NumNodes() * 131 + static_cast<std::uint64_t>(model));
  for (int round = 0; round < 6; ++round) {
    push.BeginRound(ChannelDirection::kPush);
    pull.BeginRound(ChannelDirection::kPull);
    std::vector<bool> transmits(g.NumNodes(), false);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (rng.Bernoulli(0.3)) {
        transmits[v] = true;
        const std::uint64_t payload = 1 + rng.UniformBelow(1000);
        push.AddTransmitter(v, payload);
        pull.AddTransmitter(v, payload);
      }
    }
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (transmits[v]) continue;
      EXPECT_EQ(push.ResolveListener(v), pull.ResolveListener(v))
          << "model " << ToString(model) << " loss " << loss << " node " << v;
      EXPECT_EQ(push.TransmittingNeighbors(v), pull.TransmittingNeighbors(v));
    }
  }
}

TEST(ChannelDirection, PushAndPullAgreeOnRandomRounds) {
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = 6 + static_cast<NodeId>(rng.UniformBelow(50));
    const Graph g = gen::ErdosRenyi(n, 0.15, rng);
    for (ChannelModel model :
         {ChannelModel::kCd, ChannelModel::kNoCd, ChannelModel::kBeeping}) {
      ExpectDirectionsAgree(g, model, /*loss=*/0.0);
      ExpectDirectionsAgree(g, model, /*loss=*/0.3);
    }
  }
}

TEST(ChannelDirection, PullBasicSemantics) {
  // The pull path alone reproduces the push-path unit behaviours.
  const Graph star = gen::Star(5);
  Channel ch(star, ChannelModel::kCd);
  ch.BeginRound(ChannelDirection::kPull);
  EXPECT_EQ(ch.ResolveListener(0).kind, ReceptionKind::kSilence);

  ch.BeginRound(ChannelDirection::kPull);
  ch.AddTransmitter(1, 0xABC);
  Reception r = ch.ResolveListener(0);
  EXPECT_EQ(r.kind, ReceptionKind::kMessage);
  EXPECT_EQ(r.payload, 0xABCu);
  EXPECT_EQ(ch.ResolveListener(2).kind, ReceptionKind::kSilence);

  ch.BeginRound(ChannelDirection::kPull);
  ch.AddTransmitter(1, 1);
  ch.AddTransmitter(2, 2);
  EXPECT_EQ(ch.ResolveListener(0).kind, ReceptionKind::kCollision);
  EXPECT_EQ(ch.TransmittingNeighbors(0), 2u);

  // Directions may alternate round to round; epochs keep them clean.
  ch.BeginRound(ChannelDirection::kPush);
  ch.AddTransmitter(3, 9);
  EXPECT_EQ(ch.ResolveListener(0).payload, 9u);
  ch.BeginRound(ChannelDirection::kPull);
  EXPECT_EQ(ch.ResolveListener(0).kind, ReceptionKind::kSilence);
}

TEST(ChannelDirection, DoubleRegistrationThrows) {
  // Pin abort mode: the env (e.g. CI's EMIS_CONTRACTS=audit) must not turn
  // the expected throw into a logged continuation.
  contracts::SetMode(ContractMode::kAbort);
  const Graph star = gen::Star(4);
  for (ChannelDirection dir :
       {ChannelDirection::kPush, ChannelDirection::kPull}) {
    Channel ch(star, ChannelModel::kCd);
    ch.BeginRound(dir);
    ch.AddTransmitter(1, 1);
    EXPECT_THROW(ch.AddTransmitter(1, 1), InvariantError);
    // The next round accepts the node again.
    ch.BeginRound(dir);
    EXPECT_NO_THROW(ch.AddTransmitter(1, 1));
  }
}

// --- counter-based fading ---------------------------------------------------

TEST(CounterHashGolden, PinnedValues) {
  // Golden values pin the hash stream: any change to CounterHash/MixU64 or
  // to how the channel keys erasure draws is a determinism break for stored
  // seeds, and must show up here as a deliberate diff.
  EXPECT_EQ(CounterHash(0x5eedULL, 0, 0, 0), 0xb5148eca4cc6b0d0ULL);
  EXPECT_EQ(CounterHash(0x5eedULL, 1, 2, 3), 0x02892dcdfdcd4648ULL);
  EXPECT_EQ(CounterHash(0x5eedULL, 1, 3, 2), 0x4296e44dc0753b27ULL);
  EXPECT_EQ(CounterHash(42, 7, 11, 13), 0x0076d3e3c6234030ULL);
  EXPECT_DOUBLE_EQ(CounterHashUnit(0x5eedULL, 5, 8, 21), 0.73663826418136202);
}

TEST(CounterHashGolden, LinkErasedPattern) {
  // The channel's per-(round, tx, rx) erasure pattern for seed 9, loss 0.3.
  // Erasure is per *directed* link: (2 -> 5) and (5 -> 2) are independent.
  const std::vector<int> fwd = {0, 1, 1, 0, 0, 0, 0, 0};  // 2 -> 5
  const std::vector<int> rev = {0, 1, 1, 1, 1, 0, 0, 1};  // 5 -> 2
  for (std::uint64_t r = 1; r <= 8; ++r) {
    EXPECT_EQ(Channel::LinkErased(r, 2, 5, 9, 0.3), fwd[r - 1] != 0) << r;
    EXPECT_EQ(Channel::LinkErased(r, 5, 2, 9, 0.3), rev[r - 1] != 0) << r;
  }
  // Pure function: re-evaluation cannot perturb any stream.
  EXPECT_EQ(Channel::LinkErased(3, 2, 5, 9, 0.3),
            Channel::LinkErased(3, 2, 5, 9, 0.3));
}

// --- end-to-end equivalence across resolution modes -------------------------

MisRunResult RunWith(const Graph& g, MisAlgorithm alg, ChannelResolution res,
                     double loss) {
  return RunMis(g, {.algorithm = alg, .seed = 31, .link_loss = loss,
                    .resolution = res});
}

TEST(ResolutionEquivalence, IdenticalMisAcrossModes) {
  Rng rng(17);
  const Graph g = gen::ErdosRenyi(96, 0.08, rng);
  for (MisAlgorithm alg :
       {MisAlgorithm::kCd, MisAlgorithm::kCdBeeping, MisAlgorithm::kNoCd}) {
    for (double loss : {0.0, 0.3}) {
      const MisRunResult push = RunWith(g, alg, ChannelResolution::kPush, loss);
      const MisRunResult pull = RunWith(g, alg, ChannelResolution::kPull, loss);
      const MisRunResult aut = RunWith(g, alg, ChannelResolution::kAuto, loss);
      // Identical receptions => identical protocol behaviour: same MIS, same
      // rounds, same per-node energy.
      EXPECT_EQ(push.status, pull.status)
          << ToString(alg) << " loss " << loss;
      EXPECT_EQ(push.status, aut.status) << ToString(alg) << " loss " << loss;
      EXPECT_EQ(push.stats.rounds_used, pull.stats.rounds_used);
      EXPECT_EQ(push.stats.node_rounds, pull.stats.node_rounds);
      EXPECT_EQ(push.energy.TotalAwake(), pull.energy.TotalAwake());
      EXPECT_EQ(push.energy.TotalAwake(), aut.energy.TotalAwake());
      // Unhardened algorithms may emit a broken MIS under heavy fading (see
      // test_lossy_channel for the hardened variants) — but they must break
      // *identically* in every resolution mode, which is what the EQ checks
      // above pin. Validity itself is only guaranteed on the reliable
      // channel.
      if (loss == 0.0) {
        EXPECT_TRUE(push.Valid());
      }
    }
  }
}

// --- scheduler integration --------------------------------------------------

/// Star-shaped round: the hub transmits, every leaf listens. Pull scans only
/// the leaves' degree-1 rows; push scans the hub's (n-1)-row. kAuto must
/// pick push here only when listeners outweigh the hub... i.e. it picks by
/// the sums, which this test pins via the counters.
TEST(SchedulerResolution, CountersTrackForcedDirections) {
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(64, 0.1, rng);
  for (ChannelResolution res :
       {ChannelResolution::kPush, ChannelResolution::kPull}) {
    obs::MetricsRegistry metrics;
    const MisRunResult r = RunMis(
        g, {.algorithm = MisAlgorithm::kCd, .seed = 8, .resolution = res,
            .metrics = &metrics});
    ASSERT_TRUE(r.Valid());
    const std::uint64_t push_rounds =
        metrics.GetCounter("chan.push_rounds").Value();
    const std::uint64_t pull_rounds =
        metrics.GetCounter("chan.pull_rounds").Value();
    const std::uint64_t executed =
        metrics.GetCounter("sched.rounds_executed").Value();
    EXPECT_GT(executed, 0u);
    if (res == ChannelResolution::kPush) {
      EXPECT_EQ(push_rounds, executed);
      EXPECT_EQ(pull_rounds, 0u);
    } else {
      EXPECT_EQ(pull_rounds, executed);
      EXPECT_EQ(push_rounds, 0u);
    }
    EXPECT_GT(metrics.GetCounter("chan.edges_scanned").Value(), 0u);
  }
}

TEST(SchedulerResolution, AutoScansNoMoreEdgesThanEitherForcedMode) {
  // The per-round min over {push cost, pull cost} is <= either forced total.
  Rng rng(23);
  const Graph g = gen::ErdosRenyi(128, 0.1, rng);
  auto scanned = [&](ChannelResolution res) {
    obs::MetricsRegistry metrics;
    const MisRunResult r = RunMis(
        g, {.algorithm = MisAlgorithm::kCd, .seed = 4, .resolution = res,
            .metrics = &metrics});
    EXPECT_TRUE(r.Valid());
    return metrics.GetCounter("chan.edges_scanned").Value();
  };
  const std::uint64_t auto_edges = scanned(ChannelResolution::kAuto);
  EXPECT_LE(auto_edges, scanned(ChannelResolution::kPush));
  EXPECT_LE(auto_edges, scanned(ChannelResolution::kPull));
}

TEST(SchedulerResolution, AutoPullsWhenListenersAreCheap) {
  // Star, hub transmits once, one leaf listens: Σdeg(listen) = 1 beats
  // Σdeg(tx) = n - 1, so the auto round must resolve pull-side. Compaction
  // off pins the static-degree cost model: with it on, the 62 idle leaves
  // retire at spawn and the live-degree sums tie (see
  // test_residual_compaction.cpp's LiveDegreeCostModel).
  const Graph g = gen::Star(64);
  obs::MetricsRegistry metrics;
  Scheduler sched(g, {.compaction = false, .metrics = &metrics}, /*seed=*/1);
  sched.Spawn([](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) co_await api.Transmit(1);
    if (api.Id() == 1) {
      const Reception r = co_await api.Listen();
      EMIS_ASSERT(r.kind == ReceptionKind::kMessage, "leaf must hear the hub");
    }
    co_return;
  });
  sched.Run();
  EXPECT_EQ(metrics.GetCounter("chan.pull_rounds").Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("chan.push_rounds").Value(), 0u);
  EXPECT_EQ(metrics.GetCounter("chan.edges_scanned").Value(), 1u);
}

TEST(FrameArena, PoolsSubProtocolFrames) {
  // A protocol that repeatedly awaits a sub-protocol must reach a pooled
  // steady state: allocations beyond the first wave are served by reuse,
  // and the arena footprint stays bounded.
  const Graph g = gen::Star(8);
  Scheduler sched(g, {}, /*seed=*/2);
  sched.Spawn([](NodeApi api) -> proc::Task<void> {
    auto sub = [](NodeApi inner) -> proc::Task<void> {
      co_await inner.SleepFor(1);
    };
    for (int i = 0; i < 50; ++i) co_await sub(api);
  });
  sched.Run();
  const FrameArena::Stats& stats = sched.ArenaStats();
  // 8 roots + 8 * 50 sub-frames were allocated...
  EXPECT_GE(stats.frame_allocations, 8u + 8u * 50u);
  // ...but all sub-frames after the first wave came from the pool,
  EXPECT_GE(stats.pool_reuses, 8u * 49u);
  // so the bump high-water mark is ~one frame per node, not 50.
  EXPECT_LT(stats.used_bytes, 8u * 4096u);
  EXPECT_GE(stats.reserved_bytes, stats.used_bytes);
  // Only the roots are still live (held by the scheduler's tasks).
  EXPECT_EQ(stats.live_frames, 8u);
}

TEST(FrameArena, HeapFallbackOutsideScheduler) {
  // Tasks driven without a scheduler (no FrameArenaScope) must still work:
  // frames fall back to the heap and are freed there.
  auto coro = [](int x) -> proc::Task<int> { co_return x * 2; };
  auto outer = [&](int x) -> proc::Task<int> {
    const int a = co_await coro(x);
    co_return a + 1;
  };
  proc::Task<int> t = outer(20);
  t.RawHandle().resume();
  ASSERT_TRUE(t.Done());
  EXPECT_EQ(FrameArenaScope::Current(), nullptr);
}

}  // namespace
}  // namespace emis
