#include "radio/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace emis {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64, AdjacentSeedsDecorrelate) {
  // SplitMix64's whole job is to turn correlated seeds into uncorrelated
  // streams; adjacent integer seeds should differ in ~half their output bits.
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    SplitMix64 a(seed), b(seed + 1);
    const std::uint64_t x = a.Next() ^ b.Next();
    const int popcount = __builtin_popcountll(x);
    EXPECT_GT(popcount, 10);
    EXPECT_LT(popcount, 54);
  }
}

TEST(Xoshiro, DiffersBySeed) {
  Xoshiro256StarStar a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += a() != b();
  EXPECT_GT(differing, 60);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  Rng parent(99);
  Rng c1 = parent.Split(0);
  Rng c1_again = parent.Split(0);
  EXPECT_EQ(c1.NextU64(), c1_again.NextU64());
  // Different stream ids give different streams.
  Rng c1b = parent.Split(0);
  Rng c2b = parent.Split(1);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += c1b.NextU64() != c2b.NextU64();
  EXPECT_GT(differing, 60);
}

TEST(Rng, SplitDependsOnParentSeed) {
  Rng p1(1), p2(2);
  Rng c1 = p1.Split(5);
  Rng c2 = p2.Split(5);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += c1.NextU64() != c2.NextU64();
  EXPECT_GT(differing, 60);
}

TEST(Rng, GrandchildDiffersFromChild) {
  Rng p(3);
  Rng child = p.Split(1);
  Rng grandchild = child.Split(1);
  Rng child2 = p.Split(1);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += grandchild.NextU64() != child2.NextU64();
  EXPECT_GT(differing, 60);
}

TEST(Rng, BitIsRoughlyFair) {
  Rng rng(11);
  int heads = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) heads += rng.Bit();
  EXPECT_NEAR(heads, kTrials / 2, 1000);  // ~6 sigma
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformBelow(bound), bound);
  }
}

TEST(Rng, UniformBelowIsRoughlyUniform) {
  Rng rng(6);
  std::vector<int> counts(10, 0);
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.UniformBelow(10)];
  for (int c : counts) EXPECT_NEAR(c, kTrials / 10, 600);
}

TEST(Rng, UniformInRangeInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.UniformInRange(3, 5);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 5u);
    saw_lo |= (x == 3);
    saw_hi |= (x == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformUnitInHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformUnit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(12);
  const int kTrials = 100000;
  int hits = 0;
  for (int i = 0; i < kTrials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits, 30000, 900);
}

TEST(Rng, GeometricHalfDistribution) {
  Rng rng(13);
  const int kTrials = 200000;
  std::vector<int> counts(8, 0);
  double sum = 0;
  for (int i = 0; i < kTrials; ++i) {
    const auto g = rng.GeometricHalf();
    ASSERT_GE(g, 1u);
    sum += g;
    if (g < counts.size()) ++counts[g];
  }
  // Mean of Geometric(1/2) on {1,2,...} is 2.
  EXPECT_NEAR(sum / kTrials, 2.0, 0.03);
  // P(X = k) = 2^-k.
  EXPECT_NEAR(counts[1], kTrials / 2.0, 1500);
  EXPECT_NEAR(counts[2], kTrials / 4.0, 1200);
  EXPECT_NEAR(counts[3], kTrials / 8.0, 900);
}

TEST(Rng, GeometricGeneralMean) {
  Rng rng(14);
  const int kTrials = 50000;
  double sum = 0;
  for (int i = 0; i < kTrials; ++i) sum += static_cast<double>(rng.Geometric(0.25));
  EXPECT_NEAR(sum / kTrials, 4.0, 0.15);
}

TEST(Rng, GeometricSkipCertainSuccessIsZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.GeometricSkip(1.0), 0u);
}

TEST(Rng, GeometricSkipMatchesBernoulliFailureRun) {
  // GeometricSkip(p) must be distributed as the number of failures before
  // the first success: mean (1-p)/p, P(X = k) = (1-p)^k p.
  for (const double p : {0.5, 0.25, 0.05}) {
    Rng rng(18);
    const int kTrials = 100000;
    double sum = 0;
    std::vector<int> counts(4, 0);
    for (int i = 0; i < kTrials; ++i) {
      const auto g = rng.GeometricSkip(p);
      sum += static_cast<double>(g);
      if (g < counts.size()) ++counts[g];
    }
    const double mean = (1.0 - p) / p;
    const double sd = std::sqrt(1.0 - p) / p;  // per-sample std deviation
    EXPECT_NEAR(sum / kTrials, mean, 5.0 * sd / std::sqrt(kTrials))
        << "p = " << p;
    for (std::size_t k = 0; k < counts.size(); ++k) {
      const double expected = kTrials * std::pow(1.0 - p, k) * p;
      EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected) + 5.0)
          << "p = " << p << ", k = " << k;
    }
  }
}

TEST(Rng, GeometricSkipTinyProbabilityDoesNotOverflow) {
  Rng rng(19);
  // With p = 1e-18 skips are astronomically large; the clamp must keep the
  // float->int conversion defined and the result usable as an index bound.
  for (int i = 0; i < 100; ++i) {
    const auto g = rng.GeometricSkip(1e-18);
    EXPECT_LE(g, 1ULL << 53);
  }
}

TEST(Rng, RandomBitsBounded) {
  Rng rng(15);
  for (std::uint32_t bits : {0u, 1u, 5u, 32u, 63u}) {
    for (int i = 0; i < 200; ++i) {
      const auto x = rng.RandomBits(bits);
      if (bits < 64) {
        EXPECT_LT(x, 1ULL << bits);
      }
    }
  }
  // 64-bit requests use the full range.
  bool high_bit = false;
  for (int i = 0; i < 200; ++i) high_bit |= (rng.RandomBits(64) >> 63) != 0;
  EXPECT_TRUE(high_bit);
}

TEST(Rng, RandomBitsZeroIsZero) {
  Rng rng(16);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.RandomBits(0), 0u);
}

}  // namespace
}  // namespace emis
