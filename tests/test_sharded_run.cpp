// Intra-run sharding and the emis-csr/1 binary graph format.
//
// Sharding contract (DESIGN.md §13): a flat-engine run partitioned over any
// shard count is BIT-IDENTICAL to the single-shard run — same decisions,
// same rounds, same energy totals, same full trace hash. Pinned here:
//   * fingerprint equality across shards {1, 2, 3, 8} for every MIS core
//     across loss {0, 0.1} x compaction {on, off};
//   * the frozen golden trace hashes of tests/test_residual_compaction.cpp
//     reproduce at 4 shards (equivalence to the frozen behavior, not merely
//     to today's single-shard build);
//   * a graph big enough to cross the scheduler's inline-below threshold
//     (kParallelMinNodes) so real pool threads execute the round passes;
//   * emis-run-report/1 documents are identical across shard counts outside
//     the declared cost observables (run.shards, chan.merge_words,
//     parallel.* gauges, wall-clock timers, alloc).
// Format contract: pack -> mmap round-trips the exact CSR arrays, and the
// loader rejects truncation, bad magic, bad version and foreign endianness.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/contracts.hpp"
#include "core/runner.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/report.hpp"
#include "radio/graph.hpp"
#include "radio/graph_generators.hpp"
#include "radio/graph_io.hpp"
#include "radio/scheduler.hpp"
#include "radio/trace.hpp"

namespace emis {
namespace {

// ---------------------------------------------------------------------------
// emis-csr/1 round-trip and rejection

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void PackTo(const std::string& path, const Graph& g) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good());
  WriteBinaryCsr(out, g);
  out.flush();
  ASSERT_TRUE(out.good());
}

TEST(BinaryCsr, PackThenMapRoundTripsExactArrays) {
  Rng rng(31337);
  const Graph g = gen::ErdosRenyi(300, 0.05, rng);
  const std::string path = TempPath("roundtrip.csr");
  PackTo(path, g);

  const Graph mapped = MapBinaryCsr(path);
  ASSERT_EQ(mapped.NumNodes(), g.NumNodes());
  EXPECT_EQ(mapped.NumEdges(), g.NumEdges());
  EXPECT_EQ(mapped.MaxDegree(), g.MaxDegree());
  ASSERT_EQ(mapped.RowOffsets().size(), g.RowOffsets().size());
  for (std::size_t i = 0; i < g.RowOffsets().size(); ++i) {
    ASSERT_EQ(mapped.RowOffsets()[i], g.RowOffsets()[i]) << "offset " << i;
  }
  ASSERT_EQ(mapped.Adjacency().size(), g.Adjacency().size());
  for (std::size_t i = 0; i < g.Adjacency().size(); ++i) {
    ASSERT_EQ(mapped.Adjacency()[i], g.Adjacency()[i]) << "entry " << i;
  }
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_EQ(mapped.Degree(v), g.Degree(v)) << "node " << v;
  }
}

TEST(BinaryCsr, MappedGraphSurvivesCopyAndMove) {
  Rng rng(4);
  const Graph g = gen::ErdosRenyi(64, 0.1, rng);
  const std::string path = TempPath("copy.csr");
  PackTo(path, g);

  Graph mapped = MapBinaryCsr(path);
  const Graph copy = mapped;               // shares the mapping
  const Graph moved = std::move(mapped);   // steals it; views stay valid
  EXPECT_EQ(copy.NumEdges(), g.NumEdges());
  EXPECT_EQ(moved.NumEdges(), g.NumEdges());
  EXPECT_EQ(copy.Degree(0), moved.Degree(0));
}

TEST(BinaryCsr, EmptyGraphRoundTrips) {
  const Graph g = GraphBuilder(0).Build();
  const std::string path = TempPath("empty.csr");
  PackTo(path, g);
  const Graph mapped = MapBinaryCsr(path);
  EXPECT_EQ(mapped.NumNodes(), 0u);
  EXPECT_EQ(mapped.NumEdges(), 0u);
}

TEST(BinaryCsr, RejectsTruncatedFile) {
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(128, 0.06, rng);
  const std::string full = TempPath("full.csr");
  PackTo(full, g);
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 64u);

  // Cut inside the adjacency section: header parses, file_size disagrees.
  const std::string cut = TempPath("cut.csr");
  std::ofstream out(cut, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 8));
  out.close();
  EXPECT_THROW(MapBinaryCsr(cut), PreconditionError);

  // Cut inside the header: too small to even decode.
  const std::string stub = TempPath("stub.csr");
  std::ofstream out2(stub, std::ios::binary);
  out2.write(bytes.data(), 20);
  out2.close();
  EXPECT_THROW(MapBinaryCsr(stub), PreconditionError);
}

void CorruptByte(const std::string& src, const std::string& dst,
                 std::size_t at, char value) {
  std::ifstream in(src, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), at);
  bytes[at] = value;
  std::ofstream out(dst, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(BinaryCsr, RejectsBadMagicVersionAndForeignEndianness) {
  Rng rng(6);
  const Graph g = gen::ErdosRenyi(64, 0.1, rng);
  const std::string good = TempPath("good.csr");
  PackTo(good, g);
  EXPECT_NO_THROW(MapBinaryCsr(good));

  const std::string bad_magic = TempPath("bad_magic.csr");
  CorruptByte(good, bad_magic, 0, 'X');  // magic starts at byte 0
  EXPECT_THROW(MapBinaryCsr(bad_magic), PreconditionError);

  // The endian tag (bytes 8..11) stores 0x01020304 in native order; a
  // byte-swapped tag is what this machine would read from a file written on
  // an opposite-endian host. Swapping bytes 8 and 11 produces exactly that.
  const std::string foreign = TempPath("foreign.csr");
  {
    std::ifstream in(good, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::swap(bytes[8], bytes[11]);
    std::swap(bytes[9], bytes[10]);
    std::ofstream out(foreign, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(MapBinaryCsr(foreign), PreconditionError);

  const std::string bad_version = TempPath("bad_version.csr");
  CorruptByte(good, bad_version, 12, 9);  // version field at bytes 12..15
  EXPECT_THROW(MapBinaryCsr(bad_version), PreconditionError);
}

TEST(BinaryCsr, MappedGraphRunsIdenticallyToOwnedGraph) {
  Rng rng(11);
  const Graph owned = gen::ErdosRenyi(200, 0.05, rng);
  const std::string path = TempPath("run.csr");
  PackTo(path, owned);
  const Graph mapped = MapBinaryCsr(path);

  MisRunConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.seed = 3;
  cfg.engine = ExecutionEngine::kFlat;
  const MisRunResult a = RunMis(owned, cfg);
  const MisRunResult b = RunMis(mapped, cfg);
  EXPECT_TRUE(a.Valid());
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.stats.rounds_used, b.stats.rounds_used);
  EXPECT_EQ(a.energy.TotalAwake(), b.energy.TotalAwake());
}

// ---------------------------------------------------------------------------
// Sharded-run bit-identity

/// FNV-1a over every traced action and reception — the pattern pinned in
/// test_residual_compaction.cpp and test_flat_engine.cpp.
class HashTrace final : public TraceSink {
 public:
  void OnEvent(const TraceEvent& e) override {
    Mix(e.round);
    Mix(e.node);
    Mix(static_cast<std::uint64_t>(e.action));
    Mix(e.payload);
    Mix(static_cast<std::uint64_t>(e.reception.kind));
    Mix(e.reception.payload);
  }
  std::uint64_t Value() const noexcept { return hash_; }

 private:
  void Mix(std::uint64_t x) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (x >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;
    }
  }
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

struct RunFingerprint {
  std::vector<MisStatus> status;
  Round rounds = 0;
  std::uint64_t total_awake = 0;
  std::uint64_t max_awake = 0;
  std::uint64_t trace_hash = 0;

  friend bool operator==(const RunFingerprint&, const RunFingerprint&) = default;
};

RunFingerprint ShardedFingerprint(const Graph& g, unsigned shards,
                                  MisAlgorithm algorithm, double loss,
                                  bool compaction) {
  HashTrace trace;
  MisRunConfig cfg;
  cfg.algorithm = algorithm;
  cfg.seed = 7;
  cfg.engine = ExecutionEngine::kFlat;
  cfg.shards = shards;
  cfg.trace = &trace;
  cfg.link_loss = loss;
  cfg.compaction = compaction;
  const MisRunResult r = RunMis(g, cfg);
  EXPECT_TRUE(r.Valid() || loss > 0.0);
  return {r.status, r.stats.rounds_used, r.energy.TotalAwake(),
          r.energy.MaxAwake(), trace.Value()};
}

constexpr MisAlgorithm kCores[] = {
    MisAlgorithm::kCd, MisAlgorithm::kCdNaive, MisAlgorithm::kNoCd,
    MisAlgorithm::kNoCdDaviesProfile, MisAlgorithm::kNoCdRoundEfficient};

TEST(ShardedRun, BitIdenticalAcrossShardCountsForEveryCore) {
  Rng rng(909);
  const Graph g = gen::ErdosRenyi(96, 0.07, rng);
  for (MisAlgorithm algorithm : kCores) {
    for (double loss : {0.0, 0.1}) {
      for (bool compaction : {true, false}) {
        const RunFingerprint reference =
            ShardedFingerprint(g, 1, algorithm, loss, compaction);
        // 8 > the natural cut count for 96 nodes on small shards; also
        // exercises the clamp-to-NumNodes path indirectly.
        for (unsigned shards : {2u, 3u, 8u}) {
          EXPECT_EQ(ShardedFingerprint(g, shards, algorithm, loss, compaction),
                    reference)
              << ToString(algorithm) << " loss " << loss << " compaction "
              << compaction << " shards " << shards;
        }
      }
    }
  }
}

TEST(ShardedRun, ReproducesPinnedGoldenTraceHashesAtFourShards) {
  // The constants test_residual_compaction.cpp froze for the coroutine
  // engine; the sharded flat path must reproduce the frozen behavior.
  Rng rng(424242);
  const Graph g = gen::RandomGeometric(64, 0.22, rng);
  EXPECT_EQ(ShardedFingerprint(g, 4, MisAlgorithm::kCd, 0.0, true).trace_hash,
            0xB54A7384D88D1E30ULL);
  EXPECT_EQ(ShardedFingerprint(g, 4, MisAlgorithm::kCd, 0.3, true).trace_hash,
            0x0FA217956D3014ABULL);
  EXPECT_EQ(ShardedFingerprint(g, 4, MisAlgorithm::kNoCd, 0.0, true).trace_hash,
            0xE8D014E39E2297D4ULL);
}

TEST(ShardedRun, BitIdenticalAboveTheInlineThreshold) {
  // 4096 nodes crosses Scheduler::kParallelMinNodes, so the round passes
  // genuinely dispatch onto pool threads (the small-graph tests above run
  // the shard loops inline). This is the TSan-meaningful configuration.
  Rng rng(616);
  const Graph g = gen::ErdosRenyi(4096, 0.002, rng);
  const RunFingerprint reference =
      ShardedFingerprint(g, 1, MisAlgorithm::kCd, 0.0, true);
  for (unsigned shards : {2u, 4u}) {
    EXPECT_EQ(ShardedFingerprint(g, shards, MisAlgorithm::kCd, 0.0, true),
              reference)
        << "shards " << shards;
  }
}

TEST(ShardedRun, ShardCountExceedingNodesIsClamped) {
  const Graph g = gen::Path(5);
  const RunFingerprint reference =
      ShardedFingerprint(g, 1, MisAlgorithm::kCd, 0.0, true);
  EXPECT_EQ(ShardedFingerprint(g, 64, MisAlgorithm::kCd, 0.0, true), reference);
}

// ---------------------------------------------------------------------------
// Reports across shard counts

/// emis-run-report/1 for a flat run at `shards`, minus the declared cost
/// observables: run.shards, the chan.merge_words / parallel.* gauges, the
/// wall-clock timers and the alloc section. What remains must be identical
/// at any shard count.
std::string NormalizedShardReport(const Graph& g, unsigned shards) {
  obs::MetricsRegistry metrics;
  obs::PhaseTimeline timeline;
  MisRunConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.seed = 21;
  cfg.engine = ExecutionEngine::kFlat;
  cfg.shards = shards;
  cfg.metrics = &metrics;
  // No timeline: a timeline forces the serial step path (phase probes
  // observe mid-round state), which is not what this test exercises.
  const MisRunResult r = RunMis(g, cfg);
  EXPECT_TRUE(r.Valid());
  obs::JsonValue doc = obs::BuildRunReport({.algorithm = "cd",
                                            .graph = "er-shard-parity",
                                            .preset = "practical",
                                            .seed = 21,
                                            .nodes = g.NumNodes(),
                                            .edges = g.NumEdges(),
                                            .max_degree = g.MaxDegree(),
                                            .shards = shards,
                                            .valid_mis = r.Valid(),
                                            .mis_size = r.MisSize(),
                                            .stats = &r.stats,
                                            .energy = &r.energy,
                                            .metrics = &metrics});
  EXPECT_EQ(obs::ValidateRunReport(doc), "");
  // The run block must record what actually executed.
  EXPECT_EQ(doc.Find("run")->Find("shards")->AsNumber(),
            static_cast<double>(shards));
  obs::JsonValue normalized = obs::JsonValue::MakeObject();
  for (const auto& [key, value] : doc.Entries()) {
    if (key == "alloc") continue;
    if (key == "run") {
      obs::JsonValue run_doc = obs::JsonValue::MakeObject();
      for (const auto& [rkey, rvalue] : value.Entries()) {
        if (rkey != "shards") run_doc.Set(rkey, rvalue);
      }
      normalized.Set("run", std::move(run_doc));
      continue;
    }
    if (key != "metrics") {
      normalized.Set(key, value);
      continue;
    }
    obs::JsonValue metrics_doc = obs::JsonValue::MakeObject();
    for (const auto& [mkey, mvalue] : value.Entries()) {
      if (mkey == "timers") continue;
      if (mkey != "gauges") {
        metrics_doc.Set(mkey, mvalue);
        continue;
      }
      obs::JsonValue gauges = obs::JsonValue::MakeObject();
      for (const auto& [gkey, gvalue] : mvalue.Entries()) {
        if (gkey.starts_with("parallel.") || gkey == "chan.merge_words") continue;
        gauges.Set(gkey, gvalue);
      }
      metrics_doc.Set("gauges", std::move(gauges));
    }
    normalized.Set("metrics", std::move(metrics_doc));
  }
  return normalized.Dump(2);
}

TEST(ShardedRun, ReportsIdenticalAcrossShardCountsOutsideCostKeys) {
  Rng rng(77);
  const Graph g = gen::ErdosRenyi(72, 0.08, rng);
  const std::string reference = NormalizedShardReport(g, 1);
  EXPECT_EQ(NormalizedShardReport(g, 2), reference);
  EXPECT_EQ(NormalizedShardReport(g, 4), reference);
}

TEST(ShardedRun, DefaultShardsParsesEnvironmentContract) {
  // DefaultShards() is cached per process, so this only checks the value is
  // in the documented range; the EMIS_SHARDS parsing paths are covered by
  // the CI matrix running this whole suite under EMIS_SHARDS=4.
  const unsigned shards = DefaultShards();
  EXPECT_GE(shards, 1u);
  EXPECT_LE(shards, 256u);
}

}  // namespace
}  // namespace emis
