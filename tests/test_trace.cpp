#include "radio/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/runner.hpp"
#include "radio/graph_generators.hpp"

namespace emis {
namespace {

TraceEvent TransmitEvent(Round r, NodeId v, std::uint64_t payload) {
  return {r, v, ActionKind::kTransmit, payload, {}};
}

TraceEvent ListenEvent(Round r, NodeId v, Reception rec) {
  return {r, v, ActionKind::kListen, 0, rec};
}

TEST(RingTrace, KeepsMostRecent) {
  RingTrace trace(3);
  for (Round r = 0; r < 5; ++r) trace.OnEvent(TransmitEvent(r, 0, 1));
  EXPECT_EQ(trace.TotalSeen(), 5u);
  ASSERT_EQ(trace.Events().size(), 3u);
  EXPECT_EQ(trace.Events().front().round, 2u);
  EXPECT_EQ(trace.Events().back().round, 4u);
}

TEST(RingTrace, ClearResets) {
  RingTrace trace(8);
  trace.OnEvent(TransmitEvent(0, 1, 1));
  trace.Clear();
  EXPECT_TRUE(trace.Events().empty());
  EXPECT_EQ(trace.TotalSeen(), 0u);
  EXPECT_EQ(trace.DroppedCount(), 0u);
}

TEST(RingTrace, CountsDroppedEvents) {
  RingTrace trace(3);
  EXPECT_EQ(trace.DroppedCount(), 0u);
  for (Round r = 0; r < 5; ++r) trace.OnEvent(TransmitEvent(r, 0, 1));
  EXPECT_EQ(trace.DroppedCount(), 2u);
  EXPECT_EQ(trace.DroppedCount(), trace.TotalSeen() - trace.Events().size());
}

TEST(CsvTrace, FlushesOnDestruction) {
  std::ostringstream out;
  {
    CsvTrace trace(out);
    trace.OnEvent(TransmitEvent(1, 2, 3));
    trace.Flush();  // explicit flush mid-stream is also allowed
  }
  // Two complete lines (header + row), each newline-terminated.
  const std::string csv = out.str();
  EXPECT_FALSE(csv.empty());
  EXPECT_EQ(csv.back(), '\n');
  EXPECT_NE(csv.find("1,2,transmit,3"), std::string::npos);
}

TEST(CsvTrace, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvTrace trace(out);
  trace.OnEvent(TransmitEvent(3, 7, 42));
  trace.OnEvent(ListenEvent(4, 8, {ReceptionKind::kMessage, 42}));
  trace.OnEvent(ListenEvent(5, 9, {ReceptionKind::kCollision, 0}));
  const std::string csv = out.str();
  EXPECT_NE(csv.find("round,node,action"), std::string::npos);
  EXPECT_NE(csv.find("3,7,transmit,42"), std::string::npos);
  EXPECT_NE(csv.find("4,8,listen,,message,42"), std::string::npos);
  EXPECT_NE(csv.find("5,9,listen,,collision,"), std::string::npos);
}

TEST(TraceToString, Renders) {
  EXPECT_EQ(ToString(TransmitEvent(12, 3, 1)), "r12 n3 transmit(1)");
  EXPECT_EQ(ToString(ListenEvent(2, 0, {ReceptionKind::kSilence, 0})),
            "r2 n0 listen -> silence");
  EXPECT_EQ(ToString(ListenEvent(2, 0, {ReceptionKind::kMessage, 9})),
            "r2 n0 listen -> message(9)");
}

TEST(Trace, EndToEndThroughRunner) {
  RingTrace trace;
  Rng rng(1);
  Graph g = gen::ErdosRenyi(30, 0.1, rng);
  const auto r = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = 4,
                            .trace = &trace});
  ASSERT_TRUE(r.Valid());
  // Every awake node-round produced exactly one event.
  EXPECT_EQ(trace.TotalSeen(), r.energy.TotalAwake());
  // Events arrive in non-decreasing round order.
  Round prev = 0;
  for (const TraceEvent& e : trace.Events()) {
    EXPECT_GE(e.round, prev);
    prev = e.round;
  }
}

}  // namespace
}  // namespace emis
