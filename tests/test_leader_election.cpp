#include "apps/leader_election.hpp"

#include <gtest/gtest.h>

#include "radio/graph_generators.hpp"

namespace emis {
namespace {

LeaderElectionResult Elect(NodeId n, std::uint64_t seed) {
  return ElectLeader(gen::Complete(n), LeaderElectionParams::Practical(n), seed);
}

TEST(LeaderElection, SingleNodeElectsItself) {
  const auto r = Elect(1, 1);
  EXPECT_EQ(CheckLeaderElection(r), "");
  EXPECT_TRUE(r.is_leader[0]);
  EXPECT_NE(r.leader_id[0], 0u);
}

TEST(LeaderElection, PairElectsExactlyOne) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto r = Elect(2, seed);
    EXPECT_EQ(CheckLeaderElection(r), "") << "seed " << seed;
  }
}

TEST(LeaderElection, ScalesAcrossSizes) {
  for (NodeId n : {3u, 8u, 32u, 100u, 300u}) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const auto r = Elect(n, seed);
      EXPECT_EQ(CheckLeaderElection(r), "") << "n=" << n << " seed " << seed;
    }
  }
}

TEST(LeaderElection, EveryoneAgreesOnTheLeaderId) {
  const auto r = Elect(50, 7);
  ASSERT_EQ(CheckLeaderElection(r), "");
  std::uint64_t leader = 0;
  for (NodeId v = 0; v < 50; ++v) {
    if (r.is_leader[v]) leader = r.leader_id[v];
  }
  for (NodeId v = 0; v < 50; ++v) EXPECT_EQ(r.leader_id[v], leader);
}

TEST(LeaderElection, DeterministicGivenSeed) {
  const auto a = Elect(40, 11);
  const auto b = Elect(40, 11);
  EXPECT_EQ(a.leader_id, b.leader_id);
  EXPECT_EQ(a.is_leader, b.is_leader);
  EXPECT_EQ(a.stats.rounds_used, b.stats.rounds_used);
}

TEST(LeaderElection, TerminatesQuicklyInPractice) {
  // The sweep hits transmit probability ~1/n within one pass, so elections
  // conclude in the first sweep almost always: rounds << the schedule bound.
  const auto r = Elect(128, 3);
  ASSERT_EQ(CheckLeaderElection(r), "");
  const LeaderElectionParams p = LeaderElectionParams::Practical(128);
  EXPECT_LE(r.stats.rounds_used, p.TotalRounds());
  EXPECT_LT(r.stats.rounds_used, p.TotalRounds() / 4);
}

TEST(LeaderElection, EnergyIsModest) {
  const auto r = Elect(256, 5);
  ASSERT_EQ(CheckLeaderElection(r), "");
  // Everyone listens through the election: O(rounds) energy, rounds ~ one
  // sweep of 2 * levels round pairs typically.
  EXPECT_LT(r.energy.MaxAwake(), 200u);
}

TEST(LeaderElection, RejectsNonCliqueTopologies) {
  EXPECT_THROW(
      ElectLeader(gen::Path(4), LeaderElectionParams::Practical(4), 1),
      PreconditionError);
  EXPECT_THROW(
      ElectLeader(gen::Empty(0), LeaderElectionParams::Practical(2), 1),
      PreconditionError);
}

TEST(LeaderElection, CheckerCatchesViolations) {
  LeaderElectionResult bad;
  bad.leader_id = {5, 5};
  bad.is_leader = {true, true};  // two leaders
  EXPECT_NE(CheckLeaderElection(bad), "");
  bad.is_leader = {false, false};  // none
  EXPECT_NE(CheckLeaderElection(bad), "");
  bad.is_leader = {true, false};
  bad.leader_id = {5, 7};  // disagreement
  EXPECT_NE(CheckLeaderElection(bad), "");
  bad.leader_id = {5, 0};  // unlearned
  EXPECT_NE(CheckLeaderElection(bad), "");
  bad.leader_id = {5, 5};
  EXPECT_EQ(CheckLeaderElection(bad), "");
}

}  // namespace
}  // namespace emis
