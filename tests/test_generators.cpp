#include "radio/graph_generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace emis {
namespace {

TEST(Generators, ErdosRenyiEdgeCountMatchesExpectation) {
  Rng rng(1);
  const NodeId n = 400;
  const double p = 0.05;
  Graph g = gen::ErdosRenyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;  // ~3990
  const double sigma = std::sqrt(expected * (1 - p));
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), expected, 6 * sigma);
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(2);
  EXPECT_EQ(gen::ErdosRenyi(50, 0.0, rng).NumEdges(), 0u);
  EXPECT_EQ(gen::ErdosRenyi(50, 1.0, rng).NumEdges(), 50u * 49 / 2);
  EXPECT_EQ(gen::ErdosRenyi(0, 0.5, rng).NumNodes(), 0u);
  EXPECT_EQ(gen::ErdosRenyi(1, 0.5, rng).NumEdges(), 0u);
}

TEST(Generators, ErdosRenyiIsDeterministicGivenRng) {
  Rng a(3), b(3);
  Graph g1 = gen::ErdosRenyi(100, 0.1, a);
  Graph g2 = gen::ErdosRenyi(100, 0.1, b);
  EXPECT_EQ(g1.EdgeList(), g2.EdgeList());
}

TEST(Generators, ErdosRenyiRejectsBadProbability) {
  Rng rng(4);
  EXPECT_THROW(gen::ErdosRenyi(10, -0.1, rng), PreconditionError);
  EXPECT_THROW(gen::ErdosRenyi(10, 1.1, rng), PreconditionError);
}

TEST(Generators, GnMExactCount) {
  Rng rng(5);
  Graph g = gen::GnM(100, 250, rng);
  EXPECT_EQ(g.NumNodes(), 100u);
  EXPECT_EQ(g.NumEdges(), 250u);
}

TEST(Generators, GnMFullAndEmpty) {
  Rng rng(6);
  EXPECT_EQ(gen::GnM(10, 45, rng).NumEdges(), 45u);
  EXPECT_EQ(gen::GnM(10, 0, rng).NumEdges(), 0u);
  EXPECT_THROW(gen::GnM(10, 46, rng), PreconditionError);
}

TEST(Generators, RandomGeometricMatchesBruteForce) {
  // The bucketed implementation must produce exactly the same edge set as a
  // quadratic check over the same sampled points. We verify structure
  // indirectly: every edge respects the radius, and node degrees grow with
  // radius.
  Rng rng(7);
  const double radius = 0.15;
  Graph g = gen::RandomGeometric(300, radius, rng);
  EXPECT_EQ(g.NumNodes(), 300u);
  // Expected edges ~ n^2/2 * pi r^2 (minus boundary effects); sanity window.
  EXPECT_GT(g.NumEdges(), 500u);
  EXPECT_LT(g.NumEdges(), 6000u);
}

TEST(Generators, RandomGeometricZeroRadius) {
  Rng rng(8);
  EXPECT_EQ(gen::RandomGeometric(100, 0.0, rng).NumEdges(), 0u);
}

TEST(Generators, RandomGeometricFullRadius) {
  Rng rng(9);
  // radius sqrt(2) covers the whole unit square: complete graph.
  Graph g = gen::RandomGeometric(40, 1.5, rng);
  EXPECT_EQ(g.NumEdges(), 40u * 39 / 2);
}

TEST(Generators, GridStructure) {
  Graph g = gen::Grid(3, 4);
  EXPECT_EQ(g.NumNodes(), 12u);
  EXPECT_EQ(g.NumEdges(), 3u * 3 + 2 * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(g.Degree(0), 2u);               // corner
  EXPECT_EQ(g.Degree(1), 3u);               // edge
  EXPECT_EQ(g.Degree(5), 4u);               // interior
  EXPECT_TRUE(g.IsConnected());
}

TEST(Generators, PathAndCycle) {
  Graph p = gen::Path(5);
  EXPECT_EQ(p.NumEdges(), 4u);
  EXPECT_EQ(p.Degree(0), 1u);
  EXPECT_EQ(p.Degree(2), 2u);

  Graph c = gen::Cycle(5);
  EXPECT_EQ(c.NumEdges(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(c.Degree(v), 2u);
  EXPECT_THROW(gen::Cycle(2), PreconditionError);
  EXPECT_EQ(gen::Cycle(0).NumNodes(), 0u);
}

TEST(Generators, StarStructure) {
  Graph g = gen::Star(7);
  EXPECT_EQ(g.NumEdges(), 6u);
  EXPECT_EQ(g.Degree(0), 6u);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(g.Degree(v), 1u);
}

TEST(Generators, CompleteAndBipartite) {
  EXPECT_EQ(gen::Complete(6).NumEdges(), 15u);
  Graph kb = gen::CompleteBipartite(3, 4);
  EXPECT_EQ(kb.NumNodes(), 7u);
  EXPECT_EQ(kb.NumEdges(), 12u);
  EXPECT_FALSE(kb.HasEdge(0, 1));  // within left side
  EXPECT_TRUE(kb.HasEdge(0, 3));   // across
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(10);
  for (NodeId n : {NodeId{1}, NodeId{2}, NodeId{3}, NodeId{10}, NodeId{100}}) {
    Graph g = gen::RandomTree(n, rng);
    EXPECT_EQ(g.NumNodes(), n);
    if (n >= 1) {
      EXPECT_EQ(g.NumEdges(), n - 1);
      EXPECT_TRUE(g.IsConnected()) << "n=" << n;
    }
  }
}

TEST(Generators, NearRegularDegreesBounded) {
  Rng rng(11);
  const std::uint32_t d = 6;
  Graph g = gen::NearRegular(200, d, rng);
  std::uint32_t at_degree = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_LE(g.Degree(v), d);
    at_degree += g.Degree(v) == d;
  }
  // Nearly all nodes should reach the target degree.
  EXPECT_GT(at_degree, 180u);
}

TEST(Generators, BarabasiAlbertStructure) {
  Rng rng(12);
  const NodeId n = 300;
  const std::uint32_t m = 3;
  Graph g = gen::BarabasiAlbert(n, m, rng);
  EXPECT_EQ(g.NumNodes(), n);
  // Seed clique (m+1 choose 2) + m per subsequent node.
  EXPECT_EQ(g.NumEdges(), 6u + (n - m - 1) * m);
  EXPECT_TRUE(g.IsConnected());
  // Preferential attachment should produce a hub well above m.
  EXPECT_GT(g.MaxDegree(), 3 * m);
}

TEST(Generators, MatchingPlusIsolatedPaperShape) {
  // Theorem 1's family: n/4 disjoint edges + n/2 isolated nodes.
  Graph g = gen::MatchingPlusIsolated(16);
  EXPECT_EQ(g.NumNodes(), 16u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.MaxDegree(), 1u);
  NodeId isolated = 0;
  for (NodeId v = 0; v < 16; ++v) isolated += g.Degree(v) == 0;
  EXPECT_EQ(isolated, 8u);
}

TEST(Generators, MatchingPlusIsolatedSmall) {
  EXPECT_EQ(gen::MatchingPlusIsolated(3).NumEdges(), 0u);
  EXPECT_EQ(gen::MatchingPlusIsolated(4).NumEdges(), 1u);
}

TEST(Generators, PerfectMatching) {
  Graph g = gen::PerfectMatching(10);
  EXPECT_EQ(g.NumEdges(), 5u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.Degree(v), 1u);
  EXPECT_THROW(gen::PerfectMatching(7), PreconditionError);
}

TEST(Generators, DisjointCliques) {
  Graph g = gen::DisjointCliques(4, 5);
  EXPECT_EQ(g.NumNodes(), 20u);
  EXPECT_EQ(g.NumEdges(), 4u * 10);
  std::vector<std::uint32_t> comp;
  EXPECT_EQ(g.ConnectedComponents(comp), 4u);
}

TEST(Generators, Caterpillar) {
  Graph g = gen::Caterpillar(4, 2);
  EXPECT_EQ(g.NumNodes(), 12u);
  EXPECT_EQ(g.NumEdges(), 3u + 8);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_EQ(g.Degree(0), 3u);  // spine end: 1 spine + 2 legs
  EXPECT_EQ(g.Degree(1), 4u);  // spine middle
}

TEST(Generators, EmptyGenerator) {
  Graph g = gen::Empty(9);
  EXPECT_EQ(g.NumNodes(), 9u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

}  // namespace
}  // namespace emis
