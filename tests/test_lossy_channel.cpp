// Tests for the fading-channel extension (per-link loss) and the repetition
// coding that hardens Algorithm 1 against it.
#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"
#include "core/runner.hpp"
#include "radio/channel.hpp"
#include "radio/graph_generators.hpp"

namespace emis {
namespace {

TEST(LossyChannel, RejectsBadProbability) {
  // Pin abort mode: the env (e.g. CI's EMIS_CONTRACTS=audit) must not turn
  // the expected throw into a logged continuation.
  contracts::SetMode(ContractMode::kAbort);
  Graph g = gen::Path(2);
  Channel ch(g, ChannelModel::kCd);
  EXPECT_THROW(ch.SetLoss(-0.1, 1), PreconditionError);
  EXPECT_THROW(ch.SetLoss(1.0, 1), PreconditionError);
  ch.SetLoss(0.0, 1);
  ch.SetLoss(0.99, 1);
}

TEST(LossyChannel, ZeroLossIsReliable) {
  Graph g = gen::Path(2);
  Channel ch(g, ChannelModel::kCd);
  ch.SetLoss(0.0, 7);
  for (int i = 0; i < 100; ++i) {
    ch.BeginRound();
    ch.AddTransmitter(0, 5);
    EXPECT_EQ(ch.ResolveListener(1).kind, ReceptionKind::kMessage);
  }
}

TEST(LossyChannel, LossRateMatchesProbability) {
  Graph g = gen::Path(2);
  Channel ch(g, ChannelModel::kCd);
  ch.SetLoss(0.3, 11);
  int delivered = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    ch.BeginRound();
    ch.AddTransmitter(0, 5);
    delivered += ch.ResolveListener(1).kind == ReceptionKind::kMessage;
  }
  EXPECT_NEAR(delivered, kTrials * 0.7, 400);
}

TEST(LossyChannel, SkipSamplingDeliveryRateOnHighDegreeHub) {
  // The skip-sampling fast path (one geometric draw per delivered link) must
  // still erase each link independently with probability `loss` — check the
  // aggregate delivery rate across a 2000-leaf star hub transmission.
  const NodeId kLeaves = 2000;
  Graph g = gen::Star(kLeaves + 1);
  Channel ch(g, ChannelModel::kCd);
  ch.SetLoss(0.4, 17);
  std::uint64_t delivered = 0;
  const int kRounds = 50;
  for (int i = 0; i < kRounds; ++i) {
    ch.BeginRound();
    ch.AddTransmitter(0, 9);
    for (NodeId v = 1; v <= kLeaves; ++v) {
      delivered += ch.ResolveListener(v).kind == ReceptionKind::kMessage;
    }
  }
  const double expected = 0.6 * kLeaves * kRounds;  // 60000
  EXPECT_NEAR(static_cast<double>(delivered), expected,
              5.0 * std::sqrt(expected * 0.4));
}

TEST(LossyChannel, LostSignalDoesNotInterfere) {
  // Path 0-1-2 with both ends transmitting: with heavy loss, listener 1
  // sometimes receives exactly one signal — impossible on a reliable CD
  // channel (always a collision).
  Graph g = gen::Path(3);
  Channel ch(g, ChannelModel::kCd);
  ch.SetLoss(0.5, 13);
  int clean_messages = 0, collisions = 0, silences = 0;
  for (int i = 0; i < 2000; ++i) {
    ch.BeginRound();
    ch.AddTransmitter(0, 1);
    ch.AddTransmitter(2, 2);
    switch (ch.ResolveListener(1).kind) {
      case ReceptionKind::kMessage: ++clean_messages; break;
      case ReceptionKind::kCollision: ++collisions; break;
      default: ++silences; break;
    }
  }
  // Expected: message 2*0.5*0.5 = 0.5, collision 0.25, silence 0.25.
  EXPECT_GT(clean_messages, 800);
  EXPECT_GT(collisions, 300);
  EXPECT_GT(silences, 300);
}

TEST(LossyChannel, DeterministicGivenSeed) {
  Rng rng(1);
  Graph g = gen::ErdosRenyi(60, 0.1, rng);
  const MisRunConfig cfg{.algorithm = MisAlgorithm::kCd, .seed = 3, .link_loss = 0.2};
  const auto a = RunMis(g, cfg);
  const auto b = RunMis(g, cfg);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.energy.MaxAwake(), b.energy.MaxAwake());
}

TEST(LossyChannel, LossBreaksPlainAlgorithmSometimes) {
  // With 30% fading, the one-shot winner announcement is often missed:
  // failures must show up across seeds.
  Rng rng(2);
  Graph g = gen::ErdosRenyi(128, 0.08, rng);
  int failures = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto r =
        RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = seed, .link_loss = 0.3});
    failures += r.Valid() ? 0 : 1;
  }
  EXPECT_GT(failures, 0);
}

TEST(LossyChannel, RepetitionCodingSharplyReducesFailures) {
  // Repetition drives the per-logical-round miss to p^R, but cannot reach
  // zero: an Algorithm 1 winner announces once and then terminates
  // *silently*, so a loser that misses that one check round can win a later
  // phase next to it — a permanent violation. (Algorithm 2 avoids this by
  // having MIS nodes re-announce every phase.) Assert a sharp reduction,
  // not elimination.
  Rng rng(3);
  Graph g = gen::ErdosRenyi(128, 0.08, rng);
  auto failures_at = [&](std::uint32_t reps) {
    MisRunConfig cfg{.algorithm = MisAlgorithm::kCd, .link_loss = 0.3};
    cfg.cd_params = CdParams::Practical(128);
    cfg.cd_params->repetitions = reps;
    int failures = 0;
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      cfg.seed = seed;
      failures += RunMis(g, cfg).Valid() ? 0 : 1;
    }
    return failures;
  };
  const int plain = failures_at(1);
  const int hardened = failures_at(8);
  EXPECT_GT(plain, 10);      // nearly every run breaks unhardened
  EXPECT_LE(hardened, 3);    // p^8 ≈ 7e-5 leaves only the silent-winner tail
  EXPECT_LT(hardened, plain);
}

TEST(LossyChannel, RepetitionsScaleRoundsAndEnergy) {
  Rng rng(4);
  Graph g = gen::ErdosRenyi(64, 0.1, rng);
  MisRunConfig cfg{.algorithm = MisAlgorithm::kCd, .seed = 5};
  cfg.cd_params = CdParams::Practical(64);
  const auto r1 = RunMis(g, cfg);
  cfg.cd_params->repetitions = 3;
  const auto r3 = RunMis(g, cfg);
  ASSERT_TRUE(r1.Valid() && r3.Valid());
  // Same seed: identical rank bits, so the run is the same trajectory with
  // every logical round tripled.
  EXPECT_EQ(r3.stats.rounds_used, 3 * r1.stats.rounds_used);
  EXPECT_EQ(r3.energy.MaxAwake(), 3 * r1.energy.MaxAwake());
  EXPECT_EQ(r1.status, r3.status);
}

TEST(LossyChannel, Algorithm2IsNaturallyFadingTolerant) {
  // Algorithm 2 never relies on a single transmission: competitions and deep
  // checks are k-repeated backoffs (k = Θ(log n)), MIS nodes re-announce in
  // every later phase, and shallow-check misses only delay termination. A
  // fading level that destroys Algorithm 1 should barely dent it.
  Rng rng(5);
  Graph g = gen::ErdosRenyi(96, 8.0 / 96, rng);
  int nocd_failures = 0, cd_failures = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    nocd_failures +=
        RunMis(g, {.algorithm = MisAlgorithm::kNoCd, .seed = seed, .link_loss = 0.2})
                .Valid()
            ? 0
            : 1;
    cd_failures +=
        RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = seed, .link_loss = 0.2})
                .Valid()
            ? 0
            : 1;
  }
  EXPECT_LE(nocd_failures, 1);
  EXPECT_GT(cd_failures, nocd_failures);
}

TEST(LossyChannel, PhaseRoundsAccountsForRepetitions) {
  CdParams p{.luby_phases = 4, .rank_bits = 10, .repetitions = 3};
  EXPECT_EQ(p.PhaseRounds(), 33u);
  EXPECT_EQ(p.TotalRounds(), 132u);
}

}  // namespace
}  // namespace emis
