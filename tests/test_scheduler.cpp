#include "radio/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/contracts.hpp"
#include "radio/graph_generators.hpp"

namespace emis {
namespace {

// --- Tiny protocols used as fixtures -------------------------------------

struct Slots {
  std::vector<Reception> heard;
  std::vector<Round> acted_at;
};

proc::Task<void> TransmitOnce(NodeApi api) { co_await api.Transmit(42); }

proc::Task<void> ListenOnce(NodeApi api, Slots* out) {
  const Reception r = co_await api.Listen();
  out->heard.push_back(r);
}

TEST(Scheduler, SingleTransmitterIsHeard) {
  Graph g = gen::Path(2);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  Slots slots;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return TransmitOnce(api);
    return ListenOnce(api, &slots);
  });
  const RunStats stats = sched.Run();
  EXPECT_TRUE(sched.AllFinished());
  EXPECT_EQ(stats.rounds_used, 1u);
  ASSERT_EQ(slots.heard.size(), 1u);
  EXPECT_EQ(slots.heard[0].kind, ReceptionKind::kMessage);
  EXPECT_EQ(slots.heard[0].payload, 42u);
}

TEST(Scheduler, CollisionOnStarHub) {
  Graph g = gen::Star(4);  // hub 0, leaves 1..3
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  Slots slots;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return ListenOnce(api, &slots);
    return TransmitOnce(api);
  });
  sched.Run();
  ASSERT_EQ(slots.heard.size(), 1u);
  EXPECT_EQ(slots.heard[0].kind, ReceptionKind::kCollision);
}

proc::Task<void> SleepThenTransmit(NodeApi api, Round sleep_rounds) {
  co_await api.SleepFor(sleep_rounds);
  co_await api.Transmit(7);
}

proc::Task<void> ListenAtRound(NodeApi api, Round round, Slots* out) {
  co_await api.SleepUntil(round);
  out->acted_at.push_back(api.Now());
  const Reception r = co_await api.Listen();
  out->heard.push_back(r);
}

TEST(Scheduler, SleepAlignsRounds) {
  // Node 0 sleeps 5 rounds then transmits (acts in round 5); node 1 sleeps
  // until round 5 then listens. They must meet.
  Graph g = gen::Path(2);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  Slots slots;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return SleepThenTransmit(api, 5);
    return ListenAtRound(api, 5, &slots);
  });
  const RunStats stats = sched.Run();
  ASSERT_EQ(slots.heard.size(), 1u);
  EXPECT_EQ(slots.heard[0].kind, ReceptionKind::kMessage);
  EXPECT_EQ(slots.acted_at[0], 5u);
  EXPECT_EQ(stats.rounds_used, 6u);  // rounds 0..5, awake only in round 5
  EXPECT_EQ(stats.node_rounds, 2u);  // round-skipping: only 2 node-rounds simulated
}

TEST(Scheduler, RoundSkippingJumpsLongSleeps) {
  Graph g = gen::Path(2);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  Slots slots;
  const Round kFar = 1'000'000;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return SleepThenTransmit(api, kFar);
    return ListenAtRound(api, kFar, &slots);
  });
  const RunStats stats = sched.Run();
  EXPECT_EQ(stats.rounds_used, kFar + 1);
  EXPECT_EQ(stats.node_rounds, 2u);
  ASSERT_EQ(slots.heard.size(), 1u);
  EXPECT_EQ(slots.heard[0].kind, ReceptionKind::kMessage);
}

TEST(Scheduler, SleepOfExactlyWheelSizeDoesNotAliasCurrentSlot) {
  // Horizon-edge regression: a wake at distance exactly kWheelSize maps to
  // the same slot as the current round (round & (W-1) == now & (W-1)). It
  // must go to the overflow list, not the wheel — otherwise the clock
  // re-drains the current bucket without advancing and the node resumes
  // kWheelSize rounds early (firing the wake-round invariant).
  constexpr Round kW = Scheduler::kWheelSize;
  Graph g = gen::Path(2);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  Slots slots;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return SleepThenTransmit(api, kW);
    return ListenAtRound(api, kW, &slots);
  });
  const RunStats stats = sched.Run();
  EXPECT_TRUE(sched.AllFinished());
  EXPECT_EQ(stats.rounds_used, kW + 1);
  EXPECT_EQ(stats.node_rounds, 2u);
  ASSERT_EQ(slots.heard.size(), 1u);
  EXPECT_EQ(slots.heard[0].kind, ReceptionKind::kMessage);
  EXPECT_EQ(slots.acted_at[0], kW);
}

proc::Task<void> SleepWheelSizeTwiceThenTransmit(NodeApi api, Slots* out) {
  co_await api.SleepFor(Scheduler::kWheelSize);
  out->acted_at.push_back(api.Now());
  co_await api.SleepFor(Scheduler::kWheelSize);
  out->acted_at.push_back(api.Now());
  co_await api.Transmit(7);
}

TEST(Scheduler, WheelSizeSleepFromDrainedBucketStaysOnSchedule) {
  // The nastiest alias case: the node wakes from the just-drained bucket and
  // immediately sleeps exactly kWheelSize again, so the push targets the very
  // slot being drained in a round where every woken node goes back to sleep
  // (actors stay empty and the clock relies on NextWakeRound to advance).
  constexpr Round kW = Scheduler::kWheelSize;
  Graph g = gen::Path(2);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  Slots wake_log, slots;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return SleepWheelSizeTwiceThenTransmit(api, &wake_log);
    return ListenAtRound(api, 2 * kW, &slots);
  });
  const RunStats stats = sched.Run();
  EXPECT_TRUE(sched.AllFinished());
  EXPECT_EQ(stats.rounds_used, 2 * kW + 1);
  ASSERT_EQ(wake_log.acted_at.size(), 2u);
  EXPECT_EQ(wake_log.acted_at[0], kW);
  EXPECT_EQ(wake_log.acted_at[1], 2 * kW);
  ASSERT_EQ(slots.heard.size(), 1u);
  EXPECT_EQ(slots.heard[0].kind, ReceptionKind::kMessage);
}

TEST(Scheduler, SleepsAroundTheWheelHorizon) {
  // Distances W-1 (last wheel slot), W (overflow), and W+1 (overflow) all
  // wake exactly on time.
  constexpr Round kW = Scheduler::kWheelSize;
  for (const Round d : {kW - 1, kW, kW + 1}) {
    Graph g = gen::Empty(1);
    Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
    Slots slots;
    sched.Spawn([&](NodeApi api) -> proc::Task<void> {
      return ListenAtRound(api, d, &slots);
    });
    const RunStats stats = sched.Run();
    EXPECT_TRUE(sched.AllFinished());
    EXPECT_EQ(stats.rounds_used, d + 1);
    ASSERT_EQ(slots.acted_at.size(), 1u);
    EXPECT_EQ(slots.acted_at[0], d);
  }
}

proc::Task<void> SleepZeroThenTransmit(NodeApi api) {
  co_await api.SleepFor(0);              // must not suspend
  co_await api.SleepUntil(api.Now());    // must not suspend
  co_await api.Transmit(3);
}

TEST(Scheduler, ZeroSleepIsNoop) {
  Graph g = gen::Path(2);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  Slots slots;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return SleepZeroThenTransmit(api);
    return ListenOnce(api, &slots);
  });
  const RunStats stats = sched.Run();
  EXPECT_EQ(stats.rounds_used, 1u);
  ASSERT_EQ(slots.heard.size(), 1u);
  EXPECT_EQ(slots.heard[0].payload, 3u);
}

// --- Sub-task composition -------------------------------------------------

proc::Task<bool> ListenTwiceSub(NodeApi api) {
  const Reception a = co_await api.Listen();
  const Reception b = co_await api.Listen();
  co_return a.Busy() || b.Busy();
}

proc::Task<void> ComposedListener(NodeApi api, bool* heard) {
  *heard = co_await ListenTwiceSub(api);
}

proc::Task<void> TransmitSecondRound(NodeApi api) {
  co_await api.SleepFor(1);
  co_await api.Transmit(1);
}

TEST(Scheduler, SubTasksComposeAndReturnValues) {
  Graph g = gen::Path(2);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  bool heard = false;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return ComposedListener(api, &heard);
    return TransmitSecondRound(api);
  });
  sched.Run();
  EXPECT_TRUE(heard);
}

proc::Task<int> NestedInner(NodeApi api) {
  co_await api.Listen();
  co_return 21;
}

proc::Task<int> NestedMiddle(NodeApi api) {
  const int x = co_await NestedInner(api);
  co_await api.Listen();
  co_return x * 2;
}

proc::Task<void> NestedOuter(NodeApi api, int* out) {
  *out = co_await NestedMiddle(api);
}

TEST(Scheduler, DeeplyNestedSubTasks) {
  Graph g = gen::Empty(1);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  int out = 0;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> { return NestedOuter(api, &out); });
  const RunStats stats = sched.Run();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(stats.rounds_used, 2u);
}

// --- Energy accounting ----------------------------------------------------

proc::Task<void> MixedActivity(NodeApi api) {
  co_await api.Transmit(1);   // 1 transmit
  co_await api.Listen();      // 1 listen
  co_await api.SleepFor(10);  // free
  co_await api.Listen();      // 1 listen
}

TEST(Scheduler, EnergyCountsOnlyAwakeRounds) {
  Graph g = gen::Empty(1);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  sched.Spawn([](NodeApi api) -> proc::Task<void> { return MixedActivity(api); });
  const RunStats stats = sched.Run();
  EXPECT_EQ(stats.rounds_used, 13u);  // rounds 0..12
  const NodeEnergy e = sched.Energy().Of(0);
  EXPECT_EQ(e.transmit_rounds, 1u);
  EXPECT_EQ(e.listen_rounds, 2u);
  EXPECT_EQ(e.Awake(), 3u);
}

// --- Partial runs and limits ----------------------------------------------

proc::Task<void> TransmitForever(NodeApi api) {
  for (;;) co_await api.Transmit(1);
}

TEST(Scheduler, MaxRoundsStopsRunaways) {
  Graph g = gen::Empty(2);
  Scheduler sched(g, {.model = ChannelModel::kCd, .max_rounds = 100}, 1);
  sched.Spawn([](NodeApi api) -> proc::Task<void> { return TransmitForever(api); });
  const RunStats stats = sched.Run();
  EXPECT_TRUE(stats.hit_round_limit);
  EXPECT_FALSE(sched.AllFinished());
  EXPECT_EQ(stats.rounds_used, 100u);
  EXPECT_EQ(sched.Energy().Of(0).transmit_rounds, 100u);
}

TEST(Scheduler, RunUntilResumesSeamlessly) {
  Graph g = gen::Empty(1);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  sched.Spawn([](NodeApi api) -> proc::Task<void> { return MixedActivity(api); });
  sched.RunUntil(2);
  EXPECT_EQ(sched.Energy().Of(0).Awake(), 2u);  // transmit + listen happened
  const RunStats stats = sched.Run();
  EXPECT_TRUE(sched.AllFinished());
  EXPECT_EQ(stats.rounds_used, 13u);
  EXPECT_EQ(sched.Energy().Of(0).Awake(), 3u);
}

TEST(Scheduler, RunUntilClampsRoundSkipAtLimit) {
  // A wake event beyond `limit` must not drag the virtual clock past the
  // limit, and sched.rounds_skipped must count only the rounds skipped
  // within this RunUntil call (the remainder belongs to the resume).
  Graph g = gen::Empty(1);
  obs::MetricsRegistry metrics;
  Scheduler sched(g, {.model = ChannelModel::kCd, .metrics = &metrics}, 1);
  sched.Spawn([](NodeApi api) -> proc::Task<void> {
    return SleepThenTransmit(api, 1000);
  });

  sched.RunUntil(10);
  EXPECT_EQ(sched.Now(), 10u);
  EXPECT_EQ(metrics.GetCounter("sched.rounds_skipped").Value(), 10u);
  EXPECT_FALSE(sched.AllFinished());

  const RunStats stats = sched.Run();
  EXPECT_TRUE(sched.AllFinished());
  EXPECT_EQ(stats.rounds_used, 1001u);
  EXPECT_EQ(metrics.GetCounter("sched.rounds_skipped").Value(), 1000u);
  EXPECT_EQ(metrics.GetCounter("sched.rounds_executed").Value(), 1u);
}

TEST(Scheduler, RunUntilClampedStopStillHitsMaxRounds) {
  // When limit == max_rounds and the next wake lies beyond it, the clamped
  // jump must still report hit_round_limit (the clock reached max_rounds).
  Graph g = gen::Empty(1);
  Scheduler sched(g, {.model = ChannelModel::kCd, .max_rounds = 50}, 1);
  sched.Spawn([](NodeApi api) -> proc::Task<void> {
    return SleepThenTransmit(api, 1000);
  });
  const RunStats stats = sched.Run();
  EXPECT_FALSE(sched.AllFinished());
  EXPECT_TRUE(stats.hit_round_limit);
  EXPECT_EQ(sched.Now(), 50u);
}

TEST(Scheduler, RunUntilMidSleepThenContinue) {
  Graph g = gen::Path(2);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  Slots slots;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return SleepThenTransmit(api, 50);
    return ListenAtRound(api, 50, &slots);
  });
  sched.RunUntil(10);
  EXPECT_FALSE(sched.AllFinished());
  sched.RunUntil(51);
  EXPECT_TRUE(sched.AllFinished());
  ASSERT_EQ(slots.heard.size(), 1u);
  EXPECT_EQ(slots.heard[0].kind, ReceptionKind::kMessage);
}

// --- Error handling ---------------------------------------------------------

proc::Task<void> ThrowingProtocol(NodeApi api) {
  co_await api.Listen();
  throw std::runtime_error("protocol bug");
}

TEST(Scheduler, ProtocolExceptionsPropagate) {
  Graph g = gen::Empty(1);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  sched.Spawn([](NodeApi api) -> proc::Task<void> { return ThrowingProtocol(api); });
  EXPECT_THROW(sched.Run(), std::runtime_error);
}

proc::Task<void> ThrowingSub(NodeApi api) {
  co_await api.Listen();
  throw std::runtime_error("sub bug");
}

proc::Task<void> CatchingParent(NodeApi api, bool* caught) {
  try {
    co_await ThrowingSub(api);
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(Scheduler, SubTaskExceptionsReachParent) {
  Graph g = gen::Empty(1);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  bool caught = false;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> { return CatchingParent(api, &caught); });
  sched.Run();
  EXPECT_TRUE(caught);
}

TEST(Scheduler, SpawnTwiceIsRejected) {
  // Pin abort mode: the env (e.g. CI's EMIS_CONTRACTS=audit) must not turn
  // the expected throw into a logged continuation.
  contracts::SetMode(ContractMode::kAbort);
  Graph g = gen::Empty(1);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  auto factory = [](NodeApi api) -> proc::Task<void> { return TransmitOnce(api); };
  sched.Spawn(factory);
  EXPECT_THROW(sched.Spawn(factory), PreconditionError);
}

TEST(Scheduler, RunBeforeSpawnIsRejected) {
  contracts::SetMode(ContractMode::kAbort);
  Graph g = gen::Empty(1);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  EXPECT_THROW(sched.Run(), PreconditionError);
}

// --- Determinism ------------------------------------------------------------

proc::Task<void> RandomActivity(NodeApi api, std::vector<int>* log) {
  for (int i = 0; i < 20; ++i) {
    if (api.Rand().Bit()) {
      co_await api.Transmit(api.Id());
      log->push_back(-1);
    } else {
      const Reception r = co_await api.Listen();
      log->push_back(static_cast<int>(r.kind));
    }
  }
}

TEST(Scheduler, RunsAreDeterministicGivenSeed) {
  Graph g = gen::Complete(6);
  std::vector<std::vector<int>> logs1(6), logs2(6);
  for (int rep = 0; rep < 2; ++rep) {
    auto& logs = rep == 0 ? logs1 : logs2;
    Scheduler sched(g, {.model = ChannelModel::kCd}, 777);
    sched.Spawn([&](NodeApi api) -> proc::Task<void> {
      return RandomActivity(api, &logs[api.Id()]);
    });
    sched.Run();
  }
  EXPECT_EQ(logs1, logs2);
}

TEST(Scheduler, DifferentSeedsDiverge) {
  Graph g = gen::Complete(6);
  std::vector<std::vector<int>> logs1(6), logs2(6);
  for (int rep = 0; rep < 2; ++rep) {
    auto& logs = rep == 0 ? logs1 : logs2;
    Scheduler sched(g, {.model = ChannelModel::kCd}, rep == 0 ? 1 : 2);
    sched.Spawn([&](NodeApi api) -> proc::Task<void> {
      return RandomActivity(api, &logs[api.Id()]);
    });
    sched.Run();
  }
  EXPECT_NE(logs1, logs2);
}

// --- Tracing ----------------------------------------------------------------

TEST(Scheduler, TraceRecordsAwakeEvents) {
  Graph g = gen::Path(2);
  RingTrace trace;
  Scheduler sched(g, {.model = ChannelModel::kCd, .max_rounds = 1000, .trace = &trace}, 1);
  Slots slots;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return TransmitOnce(api);
    return ListenOnce(api, &slots);
  });
  sched.Run();
  ASSERT_EQ(trace.Events().size(), 2u);
  // Transmissions are logged before receptions within a round.
  EXPECT_EQ(trace.Events()[0].action, ActionKind::kTransmit);
  EXPECT_EQ(trace.Events()[0].node, 0u);
  EXPECT_EQ(trace.Events()[1].action, ActionKind::kListen);
  EXPECT_EQ(trace.Events()[1].reception.kind, ReceptionKind::kMessage);
}

// --- Edge cases ---------------------------------------------------------------

TEST(Scheduler, ZeroNodeGraph) {
  Graph g = gen::Empty(0);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  sched.Spawn([](NodeApi api) -> proc::Task<void> { return TransmitOnce(api); });
  const RunStats stats = sched.Run();
  EXPECT_TRUE(sched.AllFinished());
  EXPECT_EQ(stats.rounds_used, 0u);
}

proc::Task<void> ImmediateReturn(NodeApi) { co_return; }

TEST(Scheduler, ProtocolThatNeverActs) {
  Graph g = gen::Empty(3);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  sched.Spawn([](NodeApi api) -> proc::Task<void> { return ImmediateReturn(api); });
  const RunStats stats = sched.Run();
  EXPECT_TRUE(sched.AllFinished());
  EXPECT_EQ(stats.rounds_used, 0u);
  EXPECT_EQ(stats.node_rounds, 0u);
}

TEST(Scheduler, BeepingModelEndToEnd) {
  Graph g = gen::Star(4);
  Scheduler sched(g, {.model = ChannelModel::kBeeping}, 1);
  Slots slots;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return ListenOnce(api, &slots);
    return TransmitOnce(api);
  });
  sched.Run();
  ASSERT_EQ(slots.heard.size(), 1u);
  EXPECT_EQ(slots.heard[0].kind, ReceptionKind::kBeep);
}

}  // namespace
}  // namespace emis
