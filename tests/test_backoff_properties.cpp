// Parameterized property sweeps over the backoff procedures: for every
// (style, k, Δ, sender count) combination, the structural invariants of
// Lemma 8 must hold exactly, and detection must track Lemma 9.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/backoff.hpp"
#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"

namespace emis {
namespace {

struct RunOutcome {
  bool heard = false;
  Round rec_duration = 0;
  Round snd_duration = 0;
  std::vector<NodeEnergy> energy;
};

proc::Task<void> HubProto(NodeApi api, BackoffStyle style, std::uint32_t k,
                          std::uint32_t delta, RunOutcome* out) {
  const Round start = api.Now();
  out->heard = co_await RecBackoff(api, style, k, delta, delta);
  out->rec_duration = api.Now() - start;
}

proc::Task<void> LeafProto(NodeApi api, BackoffStyle style, std::uint32_t k,
                           std::uint32_t delta, RunOutcome* out) {
  const Round start = api.Now();
  co_await SndBackoff(api, style, k, delta);
  if (api.Id() == 1) out->snd_duration = api.Now() - start;
}

RunOutcome RunStar(BackoffStyle style, std::uint32_t senders, std::uint32_t k,
                   std::uint32_t delta, std::uint64_t seed) {
  const Graph g = gen::Star(senders + 1);
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, seed);
  RunOutcome out;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return HubProto(api, style, k, delta, &out);
    return LeafProto(api, style, k, delta, &out);
  });
  sched.Run();
  for (NodeId v = 0; v < g.NumNodes(); ++v) out.energy.push_back(sched.Energy().Of(v));
  return out;
}

using Param = std::tuple<int /*style*/, std::uint32_t /*k*/, std::uint32_t /*delta*/,
                         std::uint32_t /*senders*/>;

class BackoffProperty : public ::testing::TestWithParam<Param> {
 protected:
  BackoffStyle Style() const {
    return std::get<0>(GetParam()) == 0 ? BackoffStyle::kEnergyEfficient
                                        : BackoffStyle::kTraditional;
  }
  std::uint32_t K() const { return std::get<1>(GetParam()); }
  std::uint32_t Delta() const { return std::get<2>(GetParam()); }
  std::uint32_t Senders() const { return std::get<3>(GetParam()); }
};

TEST_P(BackoffProperty, DurationIsExactlyKWindows) {
  const RunOutcome out = RunStar(Style(), Senders(), K(), Delta(), 42);
  EXPECT_EQ(out.rec_duration, BackoffRounds(K(), Delta()));
  if (Senders() > 0) {
    EXPECT_EQ(out.snd_duration, BackoffRounds(K(), Delta()));
  }
}

TEST_P(BackoffProperty, EnergyBoundsHold) {
  const RunOutcome out = RunStar(Style(), Senders(), K(), Delta(), 43);
  const std::uint64_t total = BackoffRounds(K(), Delta());
  if (Style() == BackoffStyle::kEnergyEfficient) {
    // Lemma 8: sender exactly k; receiver at most its listen budget.
    for (std::uint32_t s = 1; s <= Senders(); ++s) {
      EXPECT_EQ(out.energy[s].Awake(), K());
      EXPECT_EQ(out.energy[s].listen_rounds, 0u);
    }
    EXPECT_LE(out.energy[0].Awake(),
              static_cast<std::uint64_t>(K()) * BackoffWindow(Delta()));
  } else {
    // Traditional: everyone awake for the entire backoff.
    for (std::uint32_t v = 0; v <= Senders(); ++v) {
      EXPECT_EQ(out.energy[v].Awake(), total);
    }
  }
}

TEST_P(BackoffProperty, NoSenderMeansSilence) {
  if (Senders() != 0) GTEST_SKIP();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_FALSE(RunStar(Style(), 0, K(), Delta(), seed).heard);
  }
}

TEST_P(BackoffProperty, DetectionTracksLemma9) {
  if (Senders() == 0) GTEST_SKIP();
  if (Senders() > Delta()) GTEST_SKIP();  // Lemma 9 presumes d <= Δ_est
  const int kTrials = 120;
  int detected = 0;
  for (int t = 0; t < kTrials; ++t) {
    detected += RunStar(Style(), Senders(), K(), Delta(),
                        7'000 + static_cast<std::uint64_t>(t))
                    .heard;
  }
  const double rate = static_cast<double>(detected) / kTrials;
  const double bound = 1.0 - std::pow(7.0 / 8.0, static_cast<double>(K()));
  // Empirical slack: 120 trials put ~4 sigma at ~0.18 for p near 1/2.
  EXPECT_GE(rate, bound - 0.18) << "k=" << K() << " d=" << Senders();
}

std::string Name(const ::testing::TestParamInfo<Param>& info) {
  return std::string(std::get<0>(info.param) == 0 ? "eff" : "trad") + "_k" +
         std::to_string(std::get<1>(info.param)) + "_delta" +
         std::to_string(std::get<2>(info.param)) + "_d" +
         std::to_string(std::get<3>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BackoffProperty,
    ::testing::Combine(::testing::Values(0, 1),           // style
                       ::testing::Values(1u, 4u, 16u),    // k
                       ::testing::Values(1u, 2u, 16u, 128u),  // delta
                       ::testing::Values(0u, 1u, 2u, 8u)),    // senders
    Name);

}  // namespace
}  // namespace emis
