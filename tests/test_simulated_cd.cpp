// Tests for the backoff-simulated Algorithm 1 (LowDegreeMIS engine and the
// no-CD baselines).
#include "core/simulated_cd_mis.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"
#include "verify/mis_checker.hpp"

namespace emis {
namespace {

MisRunResult RunSim(const Graph& g, std::uint64_t seed, MisAlgorithm alg) {
  return RunMis(g, {.algorithm = alg, .seed = seed});
}

TEST(SimulatedCd, DaviesProfileValidOnFamilies) {
  Rng rng(1);
  const Graph graphs[] = {
      gen::Path(30),
      gen::Cycle(24),
      gen::Star(25),
      gen::Complete(16),
      gen::ErdosRenyi(80, 0.08, rng),
      gen::MatchingPlusIsolated(40),
      gen::DisjointCliques(4, 6),
  };
  std::uint64_t seed = 10;
  for (const Graph& g : graphs) {
    auto r = RunSim(g, seed++, MisAlgorithm::kNoCdDaviesProfile);
    EXPECT_TRUE(r.Valid()) << "n=" << g.NumNodes() << " m=" << g.NumEdges()
                           << ": " << r.report.Describe();
  }
}

TEST(SimulatedCd, NaiveTraditionalValidOnFamilies) {
  Rng rng(2);
  const Graph graphs[] = {
      gen::Path(20),
      gen::Star(20),
      gen::ErdosRenyi(60, 0.1, rng),
      gen::Complete(12),
  };
  std::uint64_t seed = 30;
  for (const Graph& g : graphs) {
    auto r = RunSim(g, seed++, MisAlgorithm::kNoCdNaive);
    EXPECT_TRUE(r.Valid()) << "n=" << g.NumNodes() << ": " << r.report.Describe();
  }
}

TEST(SimulatedCd, TraditionalCostsMoreEnergyThanEfficient) {
  // The max (winner) energy is similar in both styles — an eventual winner
  // hears nothing, so it exhausts its listen budget either way; that is the
  // very weakness Algorithm 2 repairs. The separation is in everyone else:
  // traditional keeps losers and senders awake for whole backoffs, so the
  // *total* (and average) energy must be sharply higher.
  Rng rng(3);
  Graph g = gen::ErdosRenyi(100, 0.08, rng);
  std::uint64_t naive_total = 0, efficient_total = 0, naive_max = 0, efficient_max = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto rn = RunSim(g, seed, MisAlgorithm::kNoCdNaive);
    auto re = RunSim(g, seed, MisAlgorithm::kNoCdDaviesProfile);
    ASSERT_TRUE(rn.Valid() && re.Valid());
    naive_total += rn.energy.TotalAwake();
    efficient_total += re.energy.TotalAwake();
    naive_max += rn.energy.MaxAwake();
    efficient_max += re.energy.MaxAwake();
  }
  EXPECT_GT(naive_total, 2 * efficient_total);
  EXPECT_GE(naive_max, efficient_max);
}

TEST(SimulatedCd, RoundsWithinScheduleBound) {
  Rng rng(4);
  Graph g = gen::ErdosRenyi(64, 0.1, rng);
  MisRunConfig cfg{.algorithm = MisAlgorithm::kNoCdDaviesProfile, .seed = 5};
  auto r = RunMis(g, cfg);
  ASSERT_TRUE(r.Valid());
  EXPECT_LE(r.stats.rounds_used, DeriveSimParams(g, cfg).TotalRounds());
}

// --- Sub-protocol timing contract -------------------------------------------

struct SubProbe {
  MisStatus decision = MisStatus::kUndecided;
  Round returned_at = 0;
};

proc::Task<void> SubRunner(NodeApi api, SimCdParams params, Round start_round,
                           std::vector<SubProbe>* out) {
  co_await api.SleepUntil(start_round);
  (*out)[api.Id()].decision = co_await SimulatedCdMisRun(api, params);
  (*out)[api.Id()].returned_at = api.Now();
  // Emulate Algorithm 2's pattern: sleep to the common end of the window.
  co_await api.SleepUntil(start_round + params.TotalRounds());
}

TEST(SimulatedCd, AsSubProtocolRespectsWindow) {
  // All participants start at an offset round (as inside Algorithm 2's T_G
  // window); decisions must land inside the window and be a valid MIS.
  Rng rng(5);
  Graph g = gen::ErdosRenyi(40, 0.15, rng);
  SimCdParams p;
  p.luby_phases = 16;
  p.rank_bits = 14;
  p.reps = 20;
  p.delta = std::max(1u, g.MaxDegree());
  p.delta_est = p.delta;

  const Round start = 97;  // deliberately unaligned
  std::vector<SubProbe> probes(g.NumNodes());
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, 8);
  sched.Spawn([&](NodeApi api) { return SubRunner(api, p, start, &probes); });
  const RunStats stats = sched.Run();
  EXPECT_TRUE(sched.AllFinished());
  EXPECT_LE(stats.rounds_used, start + p.TotalRounds());

  std::vector<MisStatus> status(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    status[v] = probes[v].decision;
    EXPECT_GE(probes[v].returned_at, start);
    EXPECT_LE(probes[v].returned_at, start + p.TotalRounds());
  }
  EXPECT_TRUE(IsValidMis(g, status)) << CheckMis(g, status).Describe();
}

TEST(SimulatedCd, LowDegreeConfigurationHandlesLogDegreeGraphs) {
  // The exact role inside Algorithm 2: a bounded-degree subgraph with
  // Δ = Δ_est = κ log n.
  Rng rng(6);
  const std::uint32_t kappa_log_n = 12;
  Graph g = gen::NearRegular(80, 6, rng);
  ASSERT_LE(g.MaxDegree(), kappa_log_n);
  SimCdParams p = SimCdParams::LowDegree(256, kappa_log_n, 14, 12, 18);
  std::vector<MisStatus> status(g.NumNodes(), MisStatus::kUndecided);
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, 9);
  sched.Spawn(SimulatedCdMisProtocol(p, &status));
  sched.Run();
  EXPECT_TRUE(IsValidMis(g, status)) << CheckMis(g, status).Describe();
}

TEST(SimulatedCd, DeterministicGivenSeed) {
  Rng rng(7);
  Graph g = gen::ErdosRenyi(50, 0.1, rng);
  auto a = RunSim(g, 77, MisAlgorithm::kNoCdDaviesProfile);
  auto b = RunSim(g, 77, MisAlgorithm::kNoCdDaviesProfile);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.stats.rounds_used, b.stats.rounds_used);
}

TEST(SimulatedCd, FastBittyModeShrinkRoundsKeepsValidity) {
  // §6 exploration: cheap rank-bit backoffs (bitty_reps << reps) cut rounds
  // by ~reps/bitty_reps while the rank-difference argument keeps adjacent
  // double-wins rare. On these sizes runs should stay valid; the ablation
  // bench (E10) charts the reliability/rounds trade-off quantitatively.
  Rng rng(8);
  Graph g = gen::ErdosRenyi(64, 0.1, rng);
  MisRunConfig slow_cfg{.algorithm = MisAlgorithm::kNoCdDaviesProfile, .seed = 1};
  SimCdParams p = DeriveSimParams(g, slow_cfg);
  MisRunConfig fast_cfg = slow_cfg;
  p.bitty_reps = 4;
  fast_cfg.sim_params = p;

  const auto slow = RunMis(g, slow_cfg);
  const auto fast = RunMis(g, fast_cfg);
  ASSERT_TRUE(slow.Valid());
  EXPECT_TRUE(fast.Valid()) << fast.report.Describe();
  EXPECT_LT(2 * fast.stats.rounds_used, slow.stats.rounds_used);
}

TEST(SimulatedCd, BittyRepsDefaultsToReps) {
  SimCdParams p;
  p.reps = 12;
  EXPECT_EQ(p.BittyReps(), 12u);
  p.bitty_reps = 3;
  EXPECT_EQ(p.BittyReps(), 3u);
}

TEST(SimulatedCd, IsolatedNodesAlwaysJoin) {
  Graph g = gen::Empty(10);
  auto r = RunSim(g, 1, MisAlgorithm::kNoCdDaviesProfile);
  ASSERT_TRUE(r.Valid());
  EXPECT_EQ(r.MisSize(), 10u);
}

}  // namespace
}  // namespace emis
