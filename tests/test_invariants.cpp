// Runtime invariants observed at phase boundaries via partial scheduler runs
// (Scheduler::RunUntil) — the lemmas of §3.2/§5.4 as executable checks.
#include <gtest/gtest.h>

#include "core/mis_cd.hpp"
#include "core/mis_nocd.hpp"
#include "core/runner.hpp"
#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"
#include "verify/mis_checker.hpp"

namespace emis {
namespace {

bool InMisSetIsIndependent(const Graph& g, const std::vector<MisStatus>& status) {
  for (const Edge& e : g.EdgeList()) {
    if (status[e.u] == MisStatus::kInMis && status[e.v] == MisStatus::kInMis) {
      return false;
    }
  }
  return true;
}

bool OutMisAreDominated(const Graph& g, const std::vector<MisStatus>& status) {
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (status[v] != MisStatus::kOutMis) continue;
    bool dominated = false;
    for (NodeId w : g.Neighbors(v)) {
      dominated = dominated || status[w] == MisStatus::kInMis;
    }
    if (!dominated) return false;
  }
  return true;
}

TEST(Invariants, CdMisSetMonotoneAndIndependentPerPhase) {
  // At every Luby-phase boundary of Algorithm 1: the in-MIS set is
  // independent (Lemma 3's induction), decided-out nodes are dominated, the
  // residual shrinks monotonically, and decisions are irrevocable.
  Rng rng(1);
  const Graph g = gen::ErdosRenyi(150, 0.06, rng);
  const CdParams params = CdParams::Practical(150);
  std::vector<MisStatus> status(g.NumNodes(), MisStatus::kUndecided);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 3);
  sched.Spawn(MisCdProtocol(params, &status));

  std::vector<MisStatus> previous = status;
  std::uint64_t prev_undecided = g.NumNodes();
  for (std::uint32_t phase = 1; phase <= params.luby_phases; ++phase) {
    sched.RunUntil(static_cast<Round>(phase) * params.PhaseRounds());
    EXPECT_TRUE(InMisSetIsIndependent(g, status)) << "phase " << phase;
    EXPECT_TRUE(OutMisAreDominated(g, status)) << "phase " << phase;
    std::uint64_t undecided = 0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (previous[v] != MisStatus::kUndecided) {
        EXPECT_EQ(status[v], previous[v]) << "decision reversed at " << v;
      }
      undecided += status[v] == MisStatus::kUndecided ? 1 : 0;
    }
    EXPECT_LE(undecided, prev_undecided) << "phase " << phase;
    prev_undecided = undecided;
    previous = status;
    if (sched.AllFinished()) break;
  }
  sched.Run();
  EXPECT_TRUE(IsValidMis(g, status)) << CheckMis(g, status).Describe();
}

TEST(Invariants, NoCdMisSetIndependentAtEveryPhaseBoundary) {
  // Lemma 17: the in-MIS set stays independent throughout Algorithm 2.
  Rng rng(2);
  const Graph g = gen::ErdosRenyi(80, 0.1, rng);
  const NoCdParams params = NoCdParams::Practical(80, std::max(1u, g.MaxDegree()));
  const NoCdSchedule sched_info = NoCdSchedule::Of(params);
  std::vector<MisStatus> status(g.NumNodes(), MisStatus::kUndecided);
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, 5);
  sched.Spawn(MisNoCdProtocol(params, &status));
  for (std::uint32_t phase = 1; phase <= params.luby_phases; ++phase) {
    sched.RunUntil(static_cast<Round>(phase) * sched_info.phase);
    EXPECT_TRUE(InMisSetIsIndependent(g, status)) << "phase " << phase;
    EXPECT_TRUE(OutMisAreDominated(g, status)) << "phase " << phase;
    if (sched.AllFinished()) break;
  }
  sched.Run();
  EXPECT_TRUE(IsValidMis(g, status)) << CheckMis(g, status).Describe();
}

TEST(Invariants, NoCdIntraPhaseSnapshotsAreSane) {
  // Even *inside* a phase (at stage boundaries) the in-MIS set must be
  // independent; out-MIS domination may lag by design (a node decides out
  // upon hearing a winner that formally joins later the same stage), so only
  // independence is asserted mid-phase.
  Rng rng(3);
  const Graph g = gen::ErdosRenyi(60, 0.12, rng);
  const NoCdParams params = NoCdParams::Practical(60, std::max(1u, g.MaxDegree()));
  const NoCdSchedule s = NoCdSchedule::Of(params);
  std::vector<MisStatus> status(g.NumNodes(), MisStatus::kUndecided);
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, 7);
  sched.Spawn(MisNoCdProtocol(params, &status));
  for (std::uint32_t phase = 0; phase < params.luby_phases && !sched.AllFinished();
       ++phase) {
    const Round base = static_cast<Round>(phase) * s.phase;
    for (Round offset : {s.CompetitionEnd(), s.FirstDeepEnd(), s.SecondDeepEnd(),
                         s.LowDegreeEnd(), s.PhaseEnd()}) {
      sched.RunUntil(base + offset);
      EXPECT_TRUE(InMisSetIsIndependent(g, status))
          << "phase " << phase << " offset " << offset;
    }
  }
}

TEST(Invariants, TheoryPresetNoCdOnTinyGraph) {
  // The paper's own constants (C ≈ 176, C' = 26 log n, ...) are feasible at
  // n = 16; the run must be correct and respect its (enormous) schedule.
  Rng rng(4);
  const Graph g = gen::ErdosRenyi(16, 0.3, rng);
  const auto r = RunMis(g, {.algorithm = MisAlgorithm::kNoCd,
                            .preset = ParamPreset::kTheory,
                            .seed = 2});
  EXPECT_TRUE(r.Valid()) << r.report.Describe();
  const NoCdParams p = NoCdParams::Theory(16, std::max(1u, g.MaxDegree()));
  EXPECT_LE(r.stats.rounds_used,
            static_cast<Round>(p.luby_phases) * NoCdSchedule::Of(p).phase);
}

TEST(Invariants, EpochComposition) {
  // Two sequential MisNoCdEpoch calls (the Δ-doubling pattern): statuses
  // from epoch 1 must survive into epoch 2 unharmed when nothing changes.
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(40, 0.15, rng);
  const NoCdParams params = NoCdParams::Practical(40, std::max(1u, g.MaxDegree()));
  const Round epoch_rounds =
      static_cast<Round>(params.luby_phases) * NoCdSchedule::Of(params).phase;

  struct State {
    std::vector<MisStatus> status;
    std::vector<MisStatus> after_first;
  } state;
  state.status.assign(g.NumNodes(), MisStatus::kUndecided);
  state.after_first.assign(g.NumNodes(), MisStatus::kUndecided);

  struct TwoEpochs {
    static proc::Task<void> Run(NodeApi api, NoCdParams params, Round epoch_rounds,
                                State* s) {
      bool in_mis = false;
      MisStatus& status = s->status[api.Id()];
      co_await MisNoCdEpoch(api, params, 0, &in_mis, &status);
      co_await api.SleepUntil(epoch_rounds);
      s->after_first[api.Id()] = status;
      if (!in_mis) status = MisStatus::kUndecided;  // the doubling reset
      co_await MisNoCdEpoch(api, params, epoch_rounds, &in_mis, &status);
    }
  };
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, 9);
  sched.Spawn([&](NodeApi api) {
    return TwoEpochs::Run(api, params, epoch_rounds, &state);
  });
  sched.Run();
  EXPECT_TRUE(IsValidMis(g, state.status))
      << CheckMis(g, state.status).Describe();
  // Epoch-1 MIS members must still be MIS members after epoch 2.
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (state.after_first[v] == MisStatus::kInMis) {
      EXPECT_EQ(state.status[v], MisStatus::kInMis) << "node " << v;
    }
  }
}

}  // namespace
}  // namespace emis
