#include "radio/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace emis {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(Graph, EdgelessGraph) {
  Graph g = GraphBuilder(5).Build();
  EXPECT_EQ(g.NumNodes(), 5u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.Degree(3), 0u);
  EXPECT_TRUE(g.Neighbors(3).empty());
  EXPECT_FALSE(g.IsConnected());
}

TEST(Graph, TriangleBasics) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.MaxDegree(), 2u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.Degree(v), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(Graph, NeighborsAreSorted) {
  Graph g = Graph::FromEdges(6, {{3, 5}, {3, 1}, {3, 4}, {3, 0}});
  const auto nbrs = g.Neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(Graph, EdgeOrientationNormalized) {
  Graph g = Graph::FromEdges(4, {{2, 0}, {3, 1}});
  const auto edges = g.EdgeList();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 2}));
  EXPECT_EQ(edges[1], (Edge{1, 3}));
}

TEST(Graph, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_THROW(b.AddEdge(1, 1), PreconditionError);
}

TEST(Graph, RejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_THROW(b.AddEdge(0, 3), PreconditionError);
  Graph g = Graph::FromEdges(3, {{0, 1}});
  EXPECT_THROW(g.Degree(3), PreconditionError);
  EXPECT_THROW((void)g.Neighbors(7), PreconditionError);
  EXPECT_THROW(g.HasEdge(0, 9), PreconditionError);
}

TEST(Graph, RejectsDuplicateEdge) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // same edge, opposite orientation
  EXPECT_THROW(std::move(b).Build(), PreconditionError);
}

TEST(GraphBuilder, AddEdgeIfAbsent) {
  GraphBuilder b(4);
  EXPECT_TRUE(b.AddEdgeIfAbsent(0, 1));
  EXPECT_FALSE(b.AddEdgeIfAbsent(1, 0));
  EXPECT_FALSE(b.AddEdgeIfAbsent(2, 2));  // self-loop: not added, no throw
  EXPECT_TRUE(b.AddEdgeIfAbsent(2, 3));
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphBuilder, MixedStylesStayConsistent) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  EXPECT_FALSE(b.AddEdgeIfAbsent(1, 0));  // must see the AddEdge edge
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphBuilder, AddEdgeAfterIfAbsentKeepsMembershipCurrent) {
  // The membership set materializes lazily on the first AddEdgeIfAbsent;
  // AddEdge calls after that point must keep feeding it.
  GraphBuilder b(4);
  EXPECT_TRUE(b.AddEdgeIfAbsent(0, 1));
  b.AddEdge(2, 3);
  EXPECT_FALSE(b.AddEdgeIfAbsent(3, 2));
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphBuilder, AddEdgeDedupCollapsesDuplicatesAtBuild) {
  GraphBuilder b(4);
  b.AddEdgeDedup(0, 1);
  b.AddEdgeDedup(1, 0);  // duplicate, opposite orientation
  b.AddEdgeDedup(0, 1);  // duplicate again
  b.AddEdgeDedup(2, 3);
  EXPECT_EQ(b.num_pending_edges(), 4u);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
}

TEST(GraphBuilder, AddEdgeDedupRejectsSelfLoops) {
  GraphBuilder b(3);
  EXPECT_THROW(b.AddEdgeDedup(1, 1), PreconditionError);
}

TEST(GraphBuilder, ReserveDoesNotChangeTheResult) {
  GraphBuilder b(3);
  b.Reserve(100);
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(Graph, InducedSubgraph) {
  // Path 0-1-2-3-4; induce {0, 2, 3}: only edge 2-3 survives.
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const std::vector<NodeId> pick = {3, 0, 2};  // intentionally unsorted
  auto sub = g.Induced(pick);
  EXPECT_EQ(sub.graph.NumNodes(), 3u);
  EXPECT_EQ(sub.graph.NumEdges(), 1u);
  // to_original is sorted: [0, 2, 3]; the edge joins subgraph ids 1 and 2.
  ASSERT_EQ(sub.to_original, (std::vector<NodeId>{0, 2, 3}));
  EXPECT_TRUE(sub.graph.HasEdge(1, 2));
  EXPECT_FALSE(sub.graph.HasEdge(0, 1));
}

TEST(Graph, InducedRejectsDuplicates) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  const std::vector<NodeId> pick = {1, 1};
  EXPECT_THROW((void)g.Induced(pick), PreconditionError);
}

TEST(Graph, InducedEmptySelection) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  auto sub = g.Induced(std::vector<NodeId>{});
  EXPECT_EQ(sub.graph.NumNodes(), 0u);
}

TEST(Graph, ConnectedComponents) {
  // Two triangles and an isolated node.
  Graph g = Graph::FromEdges(7, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  std::vector<std::uint32_t> comp;
  EXPECT_EQ(g.ConnectedComponents(comp), 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[6], comp[0]);
  EXPECT_NE(comp[6], comp[3]);
  EXPECT_FALSE(g.IsConnected());
}

TEST(Graph, SingleNodeIsConnected) {
  Graph g = GraphBuilder(1).Build();
  EXPECT_TRUE(g.IsConnected());
}

TEST(Graph, MaxDegreeOnStar) {
  GraphBuilder b(6);
  for (NodeId v = 1; v < 6; ++v) b.AddEdge(0, v);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.MaxDegree(), 5u);
  EXPECT_EQ(g.Degree(0), 5u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(Graph, EdgeListRoundTrips) {
  const std::vector<Edge> edges = {{0, 3}, {1, 2}, {2, 3}};
  Graph g = Graph::FromEdges(4, edges);
  Graph g2 = Graph::FromEdges(4, g.EdgeList());
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  for (const Edge& e : edges) EXPECT_TRUE(g2.HasEdge(e.u, e.v));
}

}  // namespace
}  // namespace emis
