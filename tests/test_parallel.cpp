// The parallel trial engine's contract: ParallelFor visits every index
// exactly once and propagates failures; RunSweep produces bit-identical
// results at any job count; MetricsRegistry::Merge is associative, so
// shard-merging does not depend on how the work was split.
#include "verify/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "obs/report.hpp"
#include "verify/experiment.hpp"

namespace emis {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const unsigned jobs : {1u, 2u, 4u, 7u}) {
    const std::uint64_t count = 1000;
    std::vector<std::atomic<int>> visits(count);
    par::ParallelFor(jobs, count, [&](std::uint64_t i, unsigned) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::uint64_t i = 0; i < count; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << ", jobs " << jobs;
    }
  }
}

TEST(ParallelFor, WorkerIdsAreInRange) {
  const unsigned jobs = 4;
  std::atomic<bool> ok{true};
  par::ParallelFor(jobs, 500, [&](std::uint64_t, unsigned worker) {
    if (worker >= jobs) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  bool called = false;
  par::ParallelFor(4, 0, [&](std::uint64_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, JobsZeroMeansDefault) {
  std::vector<std::atomic<int>> visits(64);
  par::ParallelFor(0, 64, [&](std::uint64_t i, unsigned) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      par::ParallelFor(4, 100,
                       [](std::uint64_t i, unsigned) {
                         if (i == 37) throw std::runtime_error("trial 37");
                       }),
      std::runtime_error);
}

TEST(DefaultJobs, IsAtLeastOne) { EXPECT_GE(par::DefaultJobs(), 1u); }

TEST(Pool, ThreadsPersistAcrossDispatches) {
  // The pool grows to jobs - 1 threads on first use and keeps them parked —
  // sharded rounds dispatch several times per simulated round, so thread
  // creation must never be on that path.
  par::ParallelFor(3, 100, [](std::uint64_t, unsigned) {});
  const unsigned after_first = par::PoolThreads();
  EXPECT_GE(after_first, 2u);
  for (int i = 0; i < 50; ++i) {
    par::ParallelFor(3, 100, [](std::uint64_t, unsigned) {});
    ASSERT_EQ(par::PoolThreads(), after_first) << "dispatch " << i;
  }
  // A wider dispatch may grow the pool; it never shrinks.
  par::ParallelFor(5, 100, [](std::uint64_t, unsigned) {});
  EXPECT_GE(par::PoolThreads(), after_first);
}

TEST(Pool, NestedCallsRunInlineWithoutDeadlock) {
  // A trial that itself calls ParallelFor (a sweep of sharded runs) must
  // not wait for the pool it is occupying: nested calls run inline and
  // serial on the occupying worker. This must hold on *every* participant,
  // including worker 0 — the calling thread holds the pool's dispatch lock
  // while it works its own slice, so a nested call that re-entered the pool
  // from there would self-deadlock (regression: sweep trials on the calling
  // thread hung under EMIS_SHARDS > 1). The outer count of 64 makes the
  // caller claim at least one slice on any schedule.
  std::vector<std::atomic<int>> inner_visits(8);
  par::ParallelFor(4, 64, [&](std::uint64_t, unsigned outer_worker) {
    par::ParallelFor(4, 8, [&](std::uint64_t i, unsigned inner_worker) {
      EXPECT_EQ(inner_worker, 0u) << "nested dispatch must be inline";
      (void)outer_worker;
      inner_visits[i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(inner_visits[i].load(), 64) << "index " << i;
  }
}

TEST(Pool, BarrierWaitsIsMonotone) {
  const std::uint64_t before = par::BarrierWaits();
  // Uneven work: worker 0 claims almost everything while one straggler
  // sleeps-by-spinning, so the caller usually reaches the barrier first.
  // The counter is execution-dependent; only monotonicity is contractual.
  for (int round = 0; round < 20; ++round) {
    par::ParallelFor(4, 64, [](std::uint64_t i, unsigned) {
      volatile std::uint64_t sink = 0;
      const std::uint64_t spin = i % 16 == 0 ? 20000 : 1;
      for (std::uint64_t k = 0; k < spin; ++k) sink += k;
    });
  }
  EXPECT_GE(par::BarrierWaits(), before);
}

SweepConfig SmallSweep() {
  SweepConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.factory = families::SparseErdosRenyi(6.0);
  cfg.sizes = {64, 96, 128};
  cfg.seeds_per_size = 4;
  cfg.seed_base = 7;
  return cfg;
}

void ExpectBitIdentical(const std::vector<SweepPoint>& a,
                        const std::vector<SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  const auto same = [](const Summary& x, const Summary& y) {
    // memcmp, not ==: the contract is bit-identity of the accumulated
    // floats, which is stronger than numeric equality.
    return std::memcmp(&x, &y, sizeof(Summary)) == 0;
  };
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].runs, b[i].runs);
    EXPECT_EQ(a[i].failures, b[i].failures);
    EXPECT_TRUE(same(a[i].max_energy, b[i].max_energy)) << "point " << i;
    EXPECT_TRUE(same(a[i].avg_energy, b[i].avg_energy)) << "point " << i;
    EXPECT_TRUE(same(a[i].rounds, b[i].rounds)) << "point " << i;
    EXPECT_TRUE(same(a[i].mis_size, b[i].mis_size)) << "point " << i;
    EXPECT_TRUE(same(a[i].max_degree, b[i].max_degree)) << "point " << i;
  }
}

TEST(RunSweep, ParallelIsBitIdenticalToSerial) {
  const SweepConfig cfg = SmallSweep();
  const auto serial = RunSweep(cfg, 1);
  for (const unsigned jobs : {2u, 4u}) {
    const auto parallel = RunSweep(cfg, jobs);
    ExpectBitIdentical(serial, parallel);
  }
}

TEST(RunSweep, ParallelJsonArtifactIsByteIdentical) {
  const SweepConfig cfg = SmallSweep();
  const auto serial = RunSweep(cfg, 1);
  const auto parallel = RunSweep(cfg, 4);
  EXPECT_EQ(BuildSweepJson("t", serial).Dump(2),
            BuildSweepJson("t", parallel).Dump(2));
}

TEST(RunSweep, LegacySerialOverloadAgrees) {
  const SweepConfig cfg = SmallSweep();
  ExpectBitIdentical(RunSweep(cfg), RunSweep(cfg, 4));
}

TEST(RunSweep, ShardedMetricsMatchSerialTotals) {
  SweepConfig cfg = SmallSweep();
  obs::MetricsRegistry serial_metrics;
  cfg.metrics = &serial_metrics;
  (void)RunSweep(cfg, 1);

  obs::MetricsRegistry parallel_metrics;
  cfg.metrics = &parallel_metrics;
  (void)RunSweep(cfg, 4);

  const auto& sc = serial_metrics.Counters();
  const auto& pc = parallel_metrics.Counters();
  ASSERT_FALSE(sc.empty());
  ASSERT_EQ(sc.size(), pc.size());
  for (const auto& [name, counter] : sc) {
    const auto it = pc.find(name);
    ASSERT_NE(it, pc.end()) << name;
    EXPECT_EQ(counter.Value(), it->second.Value()) << name;
  }
  // Timers accumulate wall time (not deterministic), but the event counts
  // must agree: the same work ran, just on more threads.
  for (const auto& [name, timer] : serial_metrics.Timers()) {
    const auto it = parallel_metrics.Timers().find(name);
    ASSERT_NE(it, parallel_metrics.Timers().end()) << name;
    EXPECT_EQ(timer.Count(), it->second.Count()) << name;
  }
}

TEST(RunSweep, ObserverRunsInTrialOrder) {
  SweepConfig cfg = SmallSweep();
  std::vector<std::pair<NodeId, std::uint32_t>> order;
  cfg.observe = [&](NodeId n, std::uint32_t s, const MisRunResult& r) {
    EXPECT_TRUE(r.Valid());
    order.emplace_back(n, s);
  };
  (void)RunSweep(cfg, 4);
  ASSERT_EQ(order.size(), cfg.sizes.size() * cfg.seeds_per_size);
  std::size_t k = 0;
  for (const NodeId n : cfg.sizes) {
    for (std::uint32_t s = 0; s < cfg.seeds_per_size; ++s, ++k) {
      EXPECT_EQ(order[k].first, n);
      EXPECT_EQ(order[k].second, s);
    }
  }
}

TEST(RunSweep, InfoReportsJobsAndWallClock) {
  const SweepConfig cfg = SmallSweep();
  SweepRunInfo info;
  (void)RunSweep(cfg, 2, &info);
  EXPECT_EQ(info.jobs, 2u);
  EXPECT_GT(info.wall_seconds, 0.0);
  ASSERT_EQ(info.point_wall_seconds.size(), cfg.sizes.size());
  for (const double s : info.point_wall_seconds) EXPECT_GT(s, 0.0);
}

obs::MetricsRegistry MakeShard(std::uint64_t salt) {
  obs::MetricsRegistry m;
  m.GetCounter("c").Inc(10 + salt);
  m.GetGauge("g").Set(static_cast<double>(salt));
  m.GetHistogram("h", {1.0, 10.0}).Observe(static_cast<double>(salt));
  m.GetHistogram("h", {1.0, 10.0}).Observe(5.0);
  return m;
}

std::string DumpMetrics(const obs::MetricsRegistry& m) {
  return obs::BuildMetricsJson(m).Dump(2);
}

TEST(MetricsRegistry, MergeIsAssociative) {
  // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): merging shards pairwise in any grouping
  // yields the same registry, which is what lets RunSweep merge per-worker
  // shards in a simple left fold.
  const obs::MetricsRegistry a = MakeShard(1);
  const obs::MetricsRegistry b = MakeShard(2);
  const obs::MetricsRegistry c = MakeShard(3);

  obs::MetricsRegistry left;
  left.Merge(a);
  left.Merge(b);
  left.Merge(c);

  obs::MetricsRegistry bc;
  bc.Merge(b);
  bc.Merge(c);
  obs::MetricsRegistry right;
  right.Merge(a);
  right.Merge(bc);

  EXPECT_EQ(DumpMetrics(left), DumpMetrics(right));
  EXPECT_EQ(left.GetCounter("c").Value(), 36u);
}

TEST(MetricsRegistry, MergeIntoEmptyCopies) {
  const obs::MetricsRegistry a = MakeShard(4);
  obs::MetricsRegistry target;
  target.Merge(a);
  EXPECT_EQ(DumpMetrics(target), DumpMetrics(a));
}

}  // namespace
}  // namespace emis
