// Tests for the coroutine machinery itself: proc::Task semantics, awaitable
// behaviour, frame lifetime, and abandonment (destruction at a suspension
// point, which happens whenever a run hits max_rounds).
#include "radio/process.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"

namespace emis {
namespace {

// --- Task value plumbing (no scheduler involved) ----------------------------

proc::Task<int> ReturnsFortyTwo() { co_return 42; }

proc::Task<int> AddsSubValues() {
  const int a = co_await ReturnsFortyTwo();
  const int b = co_await ReturnsFortyTwo();
  co_return a + b;
}

proc::Task<void> StoreResult(int* out) { *out = co_await AddsSubValues(); }

TEST(Task, ValuePropagationWithoutSuspension) {
  // Tasks that never hit an action awaitable complete synchronously once
  // started; drive the root by resuming it directly.
  int out = 0;
  proc::Task<void> root = StoreResult(&out);
  ASSERT_TRUE(root.Valid());
  EXPECT_FALSE(root.Done());
  root.RawHandle().resume();
  EXPECT_TRUE(root.Done());
  EXPECT_EQ(out, 84);
}

proc::Task<std::unique_ptr<int>> ReturnsMoveOnly() {
  co_return std::make_unique<int>(7);
}

proc::Task<void> ConsumesMoveOnly(int* out) {
  std::unique_ptr<int> p = co_await ReturnsMoveOnly();
  *out = *p;
}

TEST(Task, MoveOnlyReturnValues) {
  int out = 0;
  proc::Task<void> root = ConsumesMoveOnly(&out);
  root.RawHandle().resume();
  EXPECT_TRUE(root.Done());
  EXPECT_EQ(out, 7);
}

TEST(Task, MoveSemantics) {
  proc::Task<int> a = ReturnsFortyTwo();
  ASSERT_TRUE(a.Valid());
  proc::Task<int> b = std::move(a);
  EXPECT_FALSE(a.Valid());  // NOLINT(bugprone-use-after-move): testing the contract
  EXPECT_TRUE(b.Valid());
  proc::Task<int> c;
  c = std::move(b);
  EXPECT_FALSE(b.Valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(c.Valid());
  EXPECT_TRUE(a.Done());  // invalid tasks report done
}

TEST(Task, DefaultConstructedIsInvalid) {
  proc::Task<void> t;
  EXPECT_FALSE(t.Valid());
  EXPECT_TRUE(t.Done());
  t.RethrowIfFailed();  // no-op on invalid
}

// --- Frame lifetime and abandonment ------------------------------------------

struct LifetimeCanary {
  explicit LifetimeCanary(bool* flag) : destroyed(flag) {}
  ~LifetimeCanary() { *destroyed = true; }
  LifetimeCanary(const LifetimeCanary&) = delete;
  LifetimeCanary& operator=(const LifetimeCanary&) = delete;
  bool* destroyed;
};

proc::Task<void> HoldsCanary(NodeApi api, bool* destroyed) {
  const LifetimeCanary canary(destroyed);
  for (;;) co_await api.Listen();  // never finishes
}

TEST(Task, AbandonedFrameRunsDestructors) {
  // When the scheduler stops at max_rounds and is destroyed, suspended
  // coroutine frames must be destroyed, running local destructors (RAII
  // through abandonment).
  bool destroyed = false;
  {
    Graph g = gen::Empty(1);
    Scheduler sched(g, {.model = ChannelModel::kCd, .max_rounds = 5}, 1);
    sched.Spawn([&](NodeApi api) { return HoldsCanary(api, &destroyed); });
    const RunStats stats = sched.Run();
    EXPECT_TRUE(stats.hit_round_limit);
    EXPECT_FALSE(destroyed);  // still suspended, frame alive
  }
  EXPECT_TRUE(destroyed);  // scheduler destruction released the frame
}

proc::Task<void> NestedCanaryInner(NodeApi api, bool* destroyed) {
  const LifetimeCanary canary(destroyed);
  for (;;) co_await api.Listen();
}

proc::Task<void> NestedCanaryOuter(NodeApi api, bool* destroyed) {
  co_await NestedCanaryInner(api, destroyed);
}

TEST(Task, AbandonedNestedFramesAlsoDestroyed) {
  bool destroyed = false;
  {
    Graph g = gen::Empty(1);
    Scheduler sched(g, {.model = ChannelModel::kCd, .max_rounds = 3}, 1);
    sched.Spawn([&](NodeApi api) { return NestedCanaryOuter(api, &destroyed); });
    sched.Run();
  }
  EXPECT_TRUE(destroyed);
}

// --- Awaitable mechanics ------------------------------------------------------

proc::Task<void> NowAdvancesPerAction(NodeApi api, std::vector<Round>* log) {
  log->push_back(api.Now());
  co_await api.Transmit(1);
  log->push_back(api.Now());
  co_await api.Listen();
  log->push_back(api.Now());
  co_await api.SleepFor(3);
  log->push_back(api.Now());
}

TEST(NodeApi, NowTracksUpcomingActionRound) {
  Graph g = gen::Empty(1);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  std::vector<Round> log;
  sched.Spawn([&](NodeApi api) { return NowAdvancesPerAction(api, &log); });
  sched.Run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], 0u);  // first action executes in round 0
  EXPECT_EQ(log[1], 1u);  // after transmit, next action is round 1
  EXPECT_EQ(log[2], 2u);  // after listen
  EXPECT_EQ(log[3], 5u);  // after sleeping rounds 2,3,4
}

proc::Task<void> EnergySpentVisible(NodeApi api, std::vector<std::uint64_t>* log) {
  log->push_back(api.EnergySpent());
  co_await api.Transmit(1);
  log->push_back(api.EnergySpent());
  co_await api.SleepFor(10);
  log->push_back(api.EnergySpent());
  co_await api.Listen();
  log->push_back(api.EnergySpent());
}

TEST(NodeApi, EnergySpentReflectsMeter) {
  Graph g = gen::Empty(1);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  std::vector<std::uint64_t> log;
  sched.Spawn([&](NodeApi api) { return EnergySpentVisible(api, &log); });
  sched.Run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], 0u);
  EXPECT_EQ(log[1], 1u);  // transmit charged
  EXPECT_EQ(log[2], 1u);  // sleep free
  EXPECT_EQ(log[3], 2u);  // listen charged
}

// --- Exceptions through nesting ----------------------------------------------

proc::Task<int> ThrowingLeaf(NodeApi api) {
  co_await api.Listen();
  throw std::runtime_error("leaf failure");
}

proc::Task<int> MiddleLayer(NodeApi api) {
  const int v = co_await ThrowingLeaf(api);
  co_return v + 1;  // unreachable
}

proc::Task<void> CatchesDeepException(NodeApi api, std::string* what) {
  try {
    (void)co_await MiddleLayer(api);
  } catch (const std::runtime_error& e) {
    *what = e.what();
  }
}

TEST(Task, ExceptionsUnwindThroughNestedTasks) {
  Graph g = gen::Empty(1);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  std::string what;
  sched.Spawn([&](NodeApi api) { return CatchesDeepException(api, &what); });
  sched.Run();
  EXPECT_EQ(what, "leaf failure");
  EXPECT_TRUE(sched.AllFinished());
}

proc::Task<void> ContinuesAfterCaughtException(NodeApi api, bool* recovered) {
  try {
    (void)co_await ThrowingLeaf(api);
  } catch (const std::runtime_error&) {
  }
  // The protocol must still be able to act after recovery.
  co_await api.Transmit(1);
  *recovered = true;
}

TEST(Task, ProtocolSurvivesCaughtExceptionAndKeepsActing) {
  Graph g = gen::Empty(1);
  Scheduler sched(g, {.model = ChannelModel::kCd}, 1);
  bool recovered = false;
  sched.Spawn([&](NodeApi api) { return ContinuesAfterCaughtException(api, &recovered); });
  const RunStats stats = sched.Run();
  EXPECT_TRUE(recovered);
  EXPECT_EQ(stats.rounds_used, 2u);  // listen + transmit
}

}  // namespace
}  // namespace emis
