// Observability layer: JSON model, metrics registry, phase timeline, JSONL
// trace sink, and the run-report schema round-trip through real runs.
#include <gtest/gtest.h>

#include <sstream>

#include "core/runner.hpp"
#include "obs/json.hpp"
#include "obs/jsonl_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/report.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/stream_sink.hpp"
#include "radio/graph_generators.hpp"
#include "radio/trace.hpp"

namespace emis {
namespace {

using obs::JsonValue;

// --- JSON ------------------------------------------------------------------

TEST(Json, DumpCompact) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("name", "emis");
  doc.Set("n", std::uint64_t{256});
  doc.Set("ok", true);
  doc.Set("ratio", 0.5);
  doc.Set("none", JsonValue());
  JsonValue arr = JsonValue::MakeArray();
  arr.Push(1);
  arr.Push(2);
  doc.Set("xs", std::move(arr));
  EXPECT_EQ(doc.Dump(),
            R"({"name":"emis","n":256,"ok":true,"ratio":0.5,"none":null,"xs":[1,2]})");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(obs::EscapeJson("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  JsonValue v("quote \" backslash \\");
  const JsonValue parsed = obs::ParseJson(v.Dump());
  EXPECT_EQ(parsed.AsString(), "quote \" backslash \\");
}

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,-3],"b":{"c":null,"d":false},"s":"xéy"})";
  const JsonValue doc = obs::ParseJson(text);
  EXPECT_EQ(doc.Find("a")->Items().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.Find("a")->Items()[1].AsNumber(), 2.5);
  EXPECT_TRUE(doc.Find("b")->Find("c")->IsNull());
  EXPECT_EQ(doc.Find("s")->AsString(), "x\xC3\xA9y");  // é as UTF-8
  // Round-trip is stable from the first dump onwards.
  const std::string once = doc.Dump();
  EXPECT_EQ(obs::ParseJson(once).Dump(), once);
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_THROW(obs::ParseJson("{"), PreconditionError);
  EXPECT_THROW(obs::ParseJson("[1,]"), PreconditionError);
  EXPECT_THROW(obs::ParseJson("{} trailing"), PreconditionError);
  EXPECT_THROW(obs::ParseJson("\"unterminated"), PreconditionError);
  EXPECT_THROW(obs::ParseJson("tru"), PreconditionError);
}

TEST(Json, IntegersRenderWithoutFraction) {
  JsonValue v(std::uint64_t{1234567});
  EXPECT_EQ(v.Dump(), "1234567");
  JsonValue neg(std::int64_t{-42});
  EXPECT_EQ(neg.Dump(), "-42");
}

// --- MetricsRegistry -------------------------------------------------------

TEST(Metrics, CounterGaugeTimer) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(reg.Empty());
  obs::Counter& c = reg.GetCounter("events");
  c.Inc();
  c.Inc(9);
  EXPECT_EQ(reg.GetCounter("events").Value(), 10u);
  EXPECT_EQ(&reg.GetCounter("events"), &c);  // get-or-create, stable reference

  reg.GetGauge("load").Set(0.75);
  EXPECT_DOUBLE_EQ(reg.GetGauge("load").Value(), 0.75);

  obs::Timer& t = reg.GetTimer("section");
  t.Record(100);
  t.Record(300);
  EXPECT_EQ(t.Count(), 2u);
  EXPECT_EQ(t.TotalNs(), 400u);
  EXPECT_EQ(t.MaxNs(), 300u);
  EXPECT_DOUBLE_EQ(t.MeanNs(), 200.0);
  EXPECT_FALSE(reg.Empty());
}

TEST(Metrics, HistogramBuckets) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.GetHistogram("awake", {1.0, 2.0, 4.0});
  ASSERT_EQ(h.NumBuckets(), 4u);  // 3 bounds + overflow
  h.Observe(0.5);   // bucket 0 (<= 1)
  h.Observe(2.0);   // bucket 1 (<= 2)
  h.Observe(3.0);   // bucket 2 (<= 4)
  h.Observe(100.0); // overflow
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 105.5);
  // Re-creating with different bounds returns the existing histogram.
  EXPECT_EQ(&reg.GetHistogram("awake", {9.0}), &h);
  EXPECT_EQ(h.NumBuckets(), 4u);
}

TEST(Metrics, ExponentialBounds) {
  const auto bounds = obs::Histogram::ExponentialBounds(1.0, 2.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[4], 16.0);
}

TEST(Metrics, ScopedTimerRecordsAndToleratesNull) {
  obs::Timer timer;
  {
    const obs::ScopedTimer timing(&timer);
  }
  EXPECT_EQ(timer.Count(), 1u);
  {
    const obs::ScopedTimer noop(nullptr);  // must not crash
  }
}

// --- PhaseTimeline ---------------------------------------------------------

TEST(PhaseTimeline, MergesRepeatsAndClosesPreviousSpan) {
  obs::PhaseTimeline tl;
  tl.Annotate("luby-phase", 0, 0);
  tl.Annotate("luby-phase", 0, 0);  // second annotator of the same boundary
  tl.Annotate("luby-phase", 0, 3);  // late participant, still the same phase
  tl.Annotate("luby-phase", 1, 10);
  tl.Close(25);
  const auto& spans = tl.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].label, "luby-phase 0");
  EXPECT_EQ(spans[0].begin_round, 0u);
  EXPECT_EQ(spans[0].end_round, 10u);
  EXPECT_EQ(spans[1].label, "luby-phase 1");
  EXPECT_EQ(spans[1].end_round, 25u);
  EXPECT_FALSE(tl.HasOpenPhase());
}

TEST(PhaseTimeline, SubPhasesNestInsidePhases) {
  obs::PhaseTimeline tl;
  tl.Annotate("phase", 0, 0);
  tl.AnnotateSub("competition", obs::PhaseTimeline::kNoIndex, 0);
  tl.AnnotateSub("deep-check", obs::PhaseTimeline::kNoIndex, 5);
  tl.Annotate("phase", 1, 12);  // closes sub-phase and phase
  tl.Close(20);
  const auto& spans = tl.Spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].label, "competition");
  EXPECT_EQ(spans[0].level, 1u);
  EXPECT_EQ(spans[0].end_round, 5u);
  EXPECT_EQ(spans[1].label, "deep-check");
  EXPECT_EQ(spans[1].end_round, 12u);
  EXPECT_EQ(spans[2].label, "phase 0");
  EXPECT_EQ(spans[2].level, 0u);
  EXPECT_EQ(spans[3].label, "phase 1");
}

TEST(PhaseTimeline, SnapshotsEnergyDeltas) {
  EnergyMeter meter(2);
  obs::PhaseTimeline tl;
  tl.BindEnergy(&meter);
  tl.Annotate("a", obs::PhaseTimeline::kNoIndex, 0);
  meter.ChargeTransmit(0);
  meter.ChargeListen(1);
  meter.ChargeListen(1);
  tl.Annotate("b", obs::PhaseTimeline::kNoIndex, 4);
  meter.ChargeTransmit(1);
  tl.Close(8);
  const auto& spans = tl.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].transmit_rounds, 1u);
  EXPECT_EQ(spans[0].listen_rounds, 2u);
  EXPECT_EQ(spans[0].AwakeRounds(), 3u);
  EXPECT_EQ(spans[1].transmit_rounds, 1u);
  EXPECT_EQ(spans[1].listen_rounds, 0u);
}

TEST(PhaseTimeline, ResidualProbeRunsOncePerBoundary) {
  obs::PhaseTimeline tl;
  int probes = 0;
  std::uint64_t residual = 100;
  tl.SetResidualProbe([&] {
    ++probes;
    return residual;
  });
  tl.Annotate("p", 0, 0);      // probe #1 (open)
  residual = 40;
  tl.Annotate("p", 1, 10);     // probe #2 (shared by close+open)
  residual = 0;
  tl.Close(20);                // probe #3
  EXPECT_EQ(probes, 3);
  const auto& spans = tl.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans[0].has_residual);
  EXPECT_EQ(spans[0].residual_edges_begin, 100u);
  EXPECT_EQ(spans[0].residual_edges_end, 40u);
  EXPECT_EQ(spans[1].residual_edges_begin, 40u);
  EXPECT_EQ(spans[1].residual_edges_end, 0u);
}

TEST(PhaseTimeline, CloseIsIdempotentAndClearResets) {
  obs::PhaseTimeline tl;
  tl.Annotate("p", obs::PhaseTimeline::kNoIndex, 0);
  tl.Close(5);
  tl.Close(9);
  EXPECT_EQ(tl.Spans().size(), 1u);
  tl.Clear();
  EXPECT_TRUE(tl.Spans().empty());
  EXPECT_FALSE(tl.HasOpenPhase());
}

// --- JsonlTraceSink --------------------------------------------------------

TEST(JsonlTrace, EmitsOneParseableObjectPerEvent) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  sink.OnEvent({3, 7, ActionKind::kTransmit, 42, {}});
  sink.OnEvent({4, 8, ActionKind::kListen, 0, {ReceptionKind::kMessage, 42}});
  sink.OnEvent({5, 9, ActionKind::kListen, 0, {ReceptionKind::kCollision, 0}});
  sink.Flush();
  EXPECT_EQ(sink.EventsWritten(), 3u);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<JsonValue> docs;
  while (std::getline(lines, line)) docs.push_back(obs::ParseJson(line));
  ASSERT_EQ(docs.size(), 3u);
  EXPECT_EQ(docs[0].Find("action")->AsString(), "transmit");
  EXPECT_DOUBLE_EQ(docs[0].Find("payload")->AsNumber(), 42.0);
  EXPECT_EQ(docs[1].Find("reception")->AsString(), "message");
  EXPECT_DOUBLE_EQ(docs[1].Find("recv_payload")->AsNumber(), 42.0);
  EXPECT_EQ(docs[2].Find("reception")->AsString(), "collision");
  EXPECT_EQ(docs[2].Find("recv_payload"), nullptr);
}

TEST(JsonlTrace, EndToEndThroughRunner) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  Rng rng(1);
  Graph g = gen::ErdosRenyi(24, 0.1, rng);
  const auto r = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = 2,
                            .trace = &sink});
  ASSERT_TRUE(r.Valid());
  EXPECT_EQ(sink.EventsWritten(), r.energy.TotalAwake());
  std::istringstream lines(out.str());
  std::string line;
  std::uint64_t parsed = 0;
  while (std::getline(lines, line)) {
    EXPECT_NO_THROW(obs::ParseJson(line));
    ++parsed;
  }
  EXPECT_EQ(parsed, sink.EventsWritten());
}

// --- Run report ------------------------------------------------------------

/// Runs `algorithm` with full observability and returns the built report.
JsonValue ReportFor(MisAlgorithm algorithm, NodeId n, double p) {
  Rng rng(7);
  Graph g = gen::ErdosRenyi(n, p, rng);
  obs::MetricsRegistry metrics;
  obs::PhaseTimeline timeline;
  const MisRunResult r = RunMis(g, {.algorithm = algorithm, .seed = 5,
                                    .metrics = &metrics, .timeline = &timeline});
  EXPECT_TRUE(r.Valid());
  return obs::BuildRunReport({.algorithm = std::string(ToString(algorithm)),
                              .graph = "er-test",
                              .preset = "practical",
                              .seed = 5,
                              .nodes = g.NumNodes(),
                              .edges = g.NumEdges(),
                              .max_degree = g.MaxDegree(),
                              .valid_mis = r.Valid(),
                              .mis_size = r.MisSize(),
                              .stats = &r.stats,
                              .energy = &r.energy,
                              .timeline = &timeline,
                              .metrics = &metrics});
}

void ExpectConformingReport(const JsonValue& doc) {
  EXPECT_EQ(obs::ValidateRunReport(doc), "");
  EXPECT_EQ(obs::ValidateReport(doc), "");
  // Serialization round-trip preserves conformance byte-for-byte.
  const std::string dumped = doc.Dump(2);
  const JsonValue reparsed = obs::ParseJson(dumped);
  EXPECT_EQ(obs::ValidateReport(reparsed), "");
  EXPECT_EQ(reparsed.Dump(2), dumped);
}

TEST(RunReport, CdReportHasPhasesEnergyAndMetrics) {
  const JsonValue doc = ReportFor(MisAlgorithm::kCd, 64, 0.1);
  ExpectConformingReport(doc);

  const JsonValue* phases = doc.Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_FALSE(phases->Items().empty());
  // Level-0 phases carry round/energy deltas and residual-edge counts, and
  // residuals chain: each phase starts where the previous ended.
  double prev_end_residual = -1.0;
  std::uint64_t awake_total = 0;
  for (const JsonValue& p : phases->Items()) {
    if (p.Find("level")->AsNumber() != 0.0) continue;
    EXPECT_GE(p.Find("end_round")->AsNumber(), p.Find("begin_round")->AsNumber());
    awake_total += static_cast<std::uint64_t>(p.Find("awake_rounds")->AsNumber());
    ASSERT_NE(p.Find("residual_edges_begin"), nullptr);
    if (prev_end_residual >= 0.0) {
      EXPECT_DOUBLE_EQ(p.Find("residual_edges_begin")->AsNumber(),
                       prev_end_residual);
    }
    prev_end_residual = p.Find("residual_edges_end")->AsNumber();
  }
  EXPECT_DOUBLE_EQ(prev_end_residual, 0.0);  // run ended with a full MIS
  // Phase-attributed energy covers the whole run.
  EXPECT_EQ(awake_total,
            static_cast<std::uint64_t>(
                doc.Find("energy")->Find("total_awake")->AsNumber()));

  // The scheduler's hot-path instrumentation made it into the document.
  const JsonValue* timers = doc.Find("metrics")->Find("timers");
  ASSERT_NE(timers->Find("sched.execute_round"), nullptr);
  EXPECT_GT(timers->Find("sched.execute_round")->Find("count")->AsNumber(), 0.0);
  const JsonValue* hist = doc.Find("energy")->Find("awake_histogram");
  EXPECT_EQ(hist->Find("counts")->Items().size(),
            hist->Find("bounds")->Items().size() + 1);
}

TEST(RunReport, NoCdReportConformsWithSubPhases) {
  const JsonValue doc = ReportFor(MisAlgorithm::kNoCd, 48, 0.08);
  ExpectConformingReport(doc);
  bool saw_sub_phase = false;
  for (const JsonValue& p : doc.Find("phases")->Items()) {
    if (p.Find("level")->AsNumber() == 1.0) saw_sub_phase = true;
  }
  EXPECT_TRUE(saw_sub_phase);  // competition/deep-check/shallow-check windows
}

TEST(RunReport, ValidatorRejectsBrokenDocuments) {
  const JsonValue doc = ReportFor(MisAlgorithm::kCd, 32, 0.1);
  // Drop a required section.
  JsonValue broken = JsonValue::MakeObject();
  for (const auto& [key, value] : doc.Entries()) {
    if (key != "energy") broken.Set(key, value);
  }
  EXPECT_NE(obs::ValidateRunReport(broken), "");
  // Unknown schema string.
  JsonValue wrong_schema = JsonValue::MakeObject();
  wrong_schema.Set("schema", "emis-run-report/99");
  EXPECT_NE(obs::ValidateReport(wrong_schema), "");
  EXPECT_NE(obs::ValidateReport(JsonValue()), "");
}

TEST(BenchReport, SchemaValidates) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema", obs::kBenchReportSchema);
  doc.Set("bench", "E1  bench_cd_energy");
  doc.Set("claim", "Theorem 2");
  doc.Set("failures", 0);
  JsonValue verdicts = JsonValue::MakeArray();
  JsonValue verdict = JsonValue::MakeObject();
  verdict.Set("what", "valid MIS");
  verdict.Set("ok", true);
  verdicts.Push(std::move(verdict));
  doc.Set("verdicts", std::move(verdicts));
  JsonValue sweeps = JsonValue::MakeArray();
  JsonValue sweep = JsonValue::MakeObject();
  sweep.Set("title", "star / cd");
  JsonValue points = JsonValue::MakeArray();
  JsonValue point = JsonValue::MakeObject();
  point.Set("n", 64);
  point.Set("runs", 10);
  point.Set("failures", 0);
  point.Set("max_energy_mean", 12.5);
  point.Set("avg_energy_mean", 3.5);
  point.Set("rounds_mean", 40.0);
  point.Set("mis_size_mean", 20.0);
  points.Push(std::move(point));
  sweep.Set("points", std::move(points));
  sweeps.Push(std::move(sweep));
  doc.Set("sweeps", std::move(sweeps));
  JsonValue alloc = JsonValue::MakeObject();
  alloc.Set("peak_rss_bytes", obs::PeakRssBytes());
  doc.Set("alloc", std::move(alloc));

  // The metrics sub-document is optional under schema 1: documents from
  // binaries predating it must keep validating, while a present-but-broken
  // block is rejected and a well-formed (possibly empty) one conforms.
  EXPECT_EQ(obs::ValidateBenchReport(doc), "");
  JsonValue broken_metrics = doc;
  broken_metrics.Set("metrics", "not an object");
  EXPECT_NE(obs::ValidateBenchReport(broken_metrics), "");
  doc.Set("metrics", obs::BuildMetricsJson(obs::MetricsRegistry()));

  EXPECT_EQ(obs::ValidateBenchReport(doc), "");
  EXPECT_EQ(obs::ValidateReport(doc), "");

  JsonValue missing = JsonValue::MakeObject();
  missing.Set("schema", obs::kBenchReportSchema);
  EXPECT_NE(obs::ValidateBenchReport(missing), "");
}

TEST(LintReport, V2SchemaValidatesAndRoundTrips) {
  // The exact shape tools/emis_lint ToJson emits: /2 counters, per-rule
  // waiver accounting, and a graph finding with symbol + witness chain.
  const JsonValue doc = obs::ParseJson(
      "{\n"
      "  \"schema\": \"emis-lint-report/2\",\n"
      "  \"root\": \".\",\n"
      "  \"files_scanned\": 110,\n"
      "  \"symbols_indexed\": 866,\n"
      "  \"call_edges\": 5489,\n"
      "  \"wall_seconds\": 0.041,\n"
      "  \"suppressed_count\": 7,\n"
      "  \"suppressed_by_rule\": {\"banned-clock\": 2, \"io-in-library\": 2},\n"
      "  \"rules\": [\"banned-random\", \"nested-dispatch\"],\n"
      "  \"findings\": [\n"
      "    {\"rule\": \"nested-dispatch\", \"file\": \"src/radio/s.cpp\",\n"
      "     \"line\": 12, \"message\": \"region re-enters the pool\",\n"
      "     \"symbol\": \"RunRound\",\n"
      "     \"witness\": [\"src/radio/s.cpp:14 ShardPass\",\n"
      "                   \"src/verify/parallel.cpp:152 ParallelFor\"]},\n"
      "    {\"rule\": \"banned-random\", \"file\": \"src/core/x.cpp\",\n"
      "     \"line\": 3, \"message\": \"rand() is banned\"}\n"
      "  ]\n"
      "}\n");
  EXPECT_EQ(obs::ValidateLintReport(doc), "");
  EXPECT_EQ(obs::ValidateReport(doc), "");  // dispatch on the schema string
  const std::string dumped = doc.Dump(2);
  EXPECT_EQ(obs::ValidateReport(obs::ParseJson(dumped)), "");
}

TEST(LintReport, V1ArtifactsStillValidateThroughDispatch) {
  // Pre-PR 9 artifacts lack the /2 counters; they must keep validating so
  // archived CI artifacts stay checkable.
  const JsonValue v1 = obs::ParseJson(
      "{\"schema\": \"emis-lint-report/1\", \"root\": \".\",\n"
      " \"files_scanned\": 5, \"suppressed_count\": 0,\n"
      " \"rules\": [\"banned-random\"], \"findings\": []}");
  EXPECT_EQ(obs::ValidateLintReport(v1), "");
  EXPECT_EQ(obs::ValidateReport(v1), "");
  // The same document under the /2 id is rejected: the counters became
  // mandatory with the version bump. (Built fresh rather than via copy+Set:
  // JsonValue::Set appends duplicate keys and Find returns the first match,
  // so "overriding" a key on a copy would leave the original value visible.)
  const JsonValue as_v2 = obs::ParseJson(
      "{\"schema\": \"emis-lint-report/2\", \"root\": \".\",\n"
      " \"files_scanned\": 5, \"suppressed_count\": 0,\n"
      " \"rules\": [\"banned-random\"], \"findings\": []}");
  EXPECT_NE(obs::ValidateLintReport(as_v2), "");
}

TEST(LintReport, ValidatorRejectsMalformedFindings) {
  // Each variant is built from scratch: JsonValue::Set appends duplicate keys
  // and Find returns the first match, so mutating a copy cannot override a
  // key that is already present.
  const auto make_doc = [](JsonValue suppressed_by_rule, JsonValue findings) {
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("schema", obs::kLintReportSchema);
    doc.Set("root", ".");
    doc.Set("files_scanned", 1);
    doc.Set("symbols_indexed", 0);
    doc.Set("call_edges", 0);
    doc.Set("wall_seconds", 0.0);
    doc.Set("suppressed_count", 0);
    doc.Set("suppressed_by_rule", std::move(suppressed_by_rule));
    doc.Set("rules", JsonValue::MakeArray());
    doc.Set("findings", std::move(findings));
    return doc;
  };
  EXPECT_EQ(obs::ValidateLintReport(
                make_doc(JsonValue::MakeObject(), JsonValue::MakeArray())),
            "");

  // witness must be an array of strings when present.
  JsonValue bad_witness = JsonValue::MakeObject();
  bad_witness.Set("rule", "nested-dispatch");
  bad_witness.Set("file", "src/x.cpp");
  bad_witness.Set("line", 1);
  bad_witness.Set("message", "m");
  bad_witness.Set("witness", "not an array");
  JsonValue findings = JsonValue::MakeArray();
  findings.Push(std::move(bad_witness));
  const JsonValue broken =
      make_doc(JsonValue::MakeObject(), std::move(findings));
  EXPECT_NE(obs::ValidateLintReport(broken), "");

  // suppressed_by_rule values must be numbers.
  JsonValue bad_counts = JsonValue::MakeObject();
  bad_counts.Set("banned-clock", "two");
  const JsonValue broken2 =
      make_doc(std::move(bad_counts), JsonValue::MakeArray());
  EXPECT_NE(obs::ValidateLintReport(broken2), "");
}

TEST(RunReport, AllocSectionCarriesArenaAndRss) {
  Rng rng(3);
  Graph g = gen::ErdosRenyi(48, 0.1, rng);
  // Arena stats are a coroutine-engine observable (the flat engine allocates
  // no frames), so pin the engine rather than inherit EMIS_ENGINE.
  const MisRunResult r = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = 9,
                                    .engine = ExecutionEngine::kCoroutine});
  ASSERT_TRUE(r.Valid());
  EXPECT_GT(r.arena.reserved_bytes, 0u);   // root frames came from the arena
  EXPECT_GT(r.arena.frame_allocations, 0u);
  // Stats are read while the scheduler (hence every root task) is still
  // alive: the live frames are exactly the n root coroutines. Sub-protocol
  // frames were recycled as their awaits completed.
  EXPECT_EQ(r.arena.live_frames, g.NumNodes());
  EXPECT_GE(r.arena.reserved_bytes, r.arena.used_bytes);

  const JsonValue doc =
      obs::BuildRunReport({.algorithm = "cd",
                           .graph = "er-test",
                           .preset = "practical",
                           .seed = 9,
                           .nodes = g.NumNodes(),
                           .edges = g.NumEdges(),
                           .max_degree = g.MaxDegree(),
                           .valid_mis = r.Valid(),
                           .mis_size = r.MisSize(),
                           .arena_reserved_bytes = r.arena.reserved_bytes,
                           .arena_used_bytes = r.arena.used_bytes,
                           .peak_rss_bytes = obs::PeakRssBytes(),
                           .stats = &r.stats,
                           .energy = &r.energy});
  EXPECT_EQ(obs::ValidateRunReport(doc), "");
  const JsonValue* alloc = doc.Find("alloc");
  ASSERT_NE(alloc, nullptr);
  EXPECT_DOUBLE_EQ(alloc->Find("arena_reserved_bytes")->AsNumber(),
                   static_cast<double>(r.arena.reserved_bytes));
#ifdef __linux__
  EXPECT_GT(alloc->Find("peak_rss_bytes")->AsNumber(), 0.0);
#endif
}

// --- StreamSink ------------------------------------------------------------

TEST(StreamSink, BoundedQueueDropsAndCounts) {
  obs::StreamSink sink({.max_queued_events = 2});
  JsonValue e = JsonValue::MakeObject();
  e.Set("event", "round");
  sink.Emit(e);
  sink.Emit(e);
  sink.Emit(e);  // over the bound: dropped, counted
  EXPECT_EQ(sink.QueuedEvents(), 2u);
  EXPECT_EQ(sink.EmittedEvents(), 2u);
  EXPECT_EQ(sink.DroppedEvents(), 1u);
  // Control envelopes bypass the bound — the run_end that carries the drop
  // accounting must never itself be dropped.
  JsonValue control = JsonValue::MakeObject();
  control.Set("event", "run_end");
  sink.EmitControl(control);
  EXPECT_EQ(sink.QueuedEvents(), 3u);
  EXPECT_EQ(sink.EmittedEvents(), 3u);

  const std::string blob = sink.DrainToString();
  EXPECT_EQ(sink.QueuedEvents(), 0u);
  EXPECT_EQ(sink.DroppedEvents(), 1u);  // counters survive the drain
  std::istringstream lines(blob);
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    EXPECT_NO_THROW(obs::ParseJson(line));
    ++parsed;
  }
  EXPECT_EQ(parsed, 3u);
}

TEST(StreamSink, OpenTelemetryStreamRejectsBadSpecs) {
  EXPECT_THROW(obs::OpenTelemetryStream(""), PreconditionError);
  EXPECT_THROW(obs::OpenTelemetryStream("fd:notanumber"), PreconditionError);
  EXPECT_THROW(obs::OpenTelemetryStream("/nonexistent-dir/x/y.ndjson"),
               PreconditionError);
}

TEST(StreamSink, SchedulerEmitsHeartbeatsAndPhaseEvents) {
  Rng rng(4);
  Graph g = gen::ErdosRenyi(40, 0.1, rng);
  obs::PhaseTimeline timeline;
  obs::StreamSink sink({.heartbeat_every = 2});
  const auto r = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = 6,
                            .timeline = &timeline, .telemetry = &sink});
  ASSERT_TRUE(r.Valid());
  std::istringstream lines(sink.DrainToString());
  std::string line;
  std::uint64_t rounds = 0;
  std::uint64_t phases = 0;
  double last_round = -1.0;
  while (std::getline(lines, line)) {
    const JsonValue event = obs::ParseJson(line);
    const std::string& kind = event.Find("event")->AsString();
    if (kind == "round") {
      ++rounds;
      // Heartbeats arrive in round order with the documented gauges.
      EXPECT_GT(event.Find("round")->AsNumber(), last_round);
      last_round = event.Find("round")->AsNumber();
      ASSERT_NE(event.Find("awake"), nullptr);
      ASSERT_NE(event.Find("decided"), nullptr);
      ASSERT_NE(event.Find("live_edges"), nullptr);
    } else if (kind == "phase") {
      ++phases;
      EXPECT_GE(event.Find("end_round")->AsNumber(),
                event.Find("begin_round")->AsNumber());
      ASSERT_NE(event.Find("transmit_rounds"), nullptr);
      ASSERT_NE(event.Find("listen_rounds"), nullptr);
    }
  }
  EXPECT_GT(rounds, 0u);
  // heartbeat_every = 2 thins the stream to at most every other round.
  EXPECT_LE(rounds, static_cast<std::uint64_t>(r.stats.rounds_used) / 2 + 1);
  EXPECT_GT(phases, 0u);  // one per closed luby-phase span
}

// --- Prometheus text exposition --------------------------------------------

TEST(MetricsText, SnapshotOfEveryMetricKind) {
  obs::MetricsRegistry reg;
  reg.GetCounter("chan.messages").Inc(41);
  reg.GetGauge("obs.trace_dropped").Set(7);
  reg.GetGauge("load").Set(0.5);
  obs::Histogram& h = reg.GetHistogram("awake", {1.0, 4.0});
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(9.0);
  reg.GetTimer("sched.execute_round").Record(250);
  std::ostringstream out;
  obs::WriteMetricsText(out, reg);
  EXPECT_EQ(out.str(),
            "# TYPE emis_chan_messages counter\n"
            "emis_chan_messages 41\n"
            "# TYPE emis_load gauge\n"
            "emis_load 0.5\n"
            "# TYPE emis_obs_trace_dropped gauge\n"
            "emis_obs_trace_dropped 7\n"
            "# TYPE emis_awake histogram\n"
            "emis_awake_bucket{le=\"1\"} 1\n"
            "emis_awake_bucket{le=\"4\"} 2\n"
            "emis_awake_bucket{le=\"+Inf\"} 3\n"
            "emis_awake_sum 12\n"
            "emis_awake_count 3\n"
            "# TYPE emis_sched_execute_round_count counter\n"
            "emis_sched_execute_round_count 1\n"
            "# TYPE emis_sched_execute_round_total_ns counter\n"
            "emis_sched_execute_round_total_ns 250\n");
}

// --- Bounded-sink drop gauges ----------------------------------------------

TEST(TraceSink, RingTraceReportsDropsThroughBaseInterface) {
  RingTrace ring(4);
  for (Round r = 0; r < 10; ++r) {
    ring.OnEvent({r, 0, ActionKind::kTransmit, 0, {}});
  }
  // Through the base pointer — the path drivers use to fill the gauge.
  const TraceSink* sink = &ring;
  EXPECT_EQ(sink->DroppedCount(), 6u);
  std::ostringstream csv_out;
  CsvTrace csv(csv_out);  // unbounded sinks report zero by default
  EXPECT_EQ(static_cast<const TraceSink&>(csv).DroppedCount(), 0u);
}

}  // namespace
}  // namespace emis
