# CTest script: `emis_cli run --report-out` and `emis_cli sweep --report-out`
# must produce documents that `emis_cli validate-report` accepts.
foreach(alg cd nocd)
  set(report "${WORK_DIR}/report_${alg}.json")
  execute_process(
    COMMAND ${EMIS_CLI} run --graph er:n=96,p=0.06 --alg ${alg} --seed 2
            --report-out ${report} --quiet
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "emis_cli run --alg ${alg} failed (rc=${run_rc})")
  endif()
  execute_process(
    COMMAND ${EMIS_CLI} validate-report ${report}
    RESULT_VARIABLE validate_rc)
  if(NOT validate_rc EQUAL 0)
    message(FATAL_ERROR "validate-report rejected ${report} (rc=${validate_rc})")
  endif()
endforeach()

# Pull-resolution round-trip: the --resolution knob must thread through the
# run pipeline and still emit a conforming document (with the alloc section).
set(pull_report "${WORK_DIR}/report_cd_pull.json")
execute_process(
  COMMAND ${EMIS_CLI} run --graph er:n=96,p=0.06 --alg cd --seed 2
          --resolution pull --report-out ${pull_report} --quiet
  RESULT_VARIABLE pull_rc)
if(NOT pull_rc EQUAL 0)
  message(FATAL_ERROR "emis_cli run --resolution pull failed (rc=${pull_rc})")
endif()
execute_process(
  COMMAND ${EMIS_CLI} validate-report ${pull_report}
  RESULT_VARIABLE pull_validate_rc)
if(NOT pull_validate_rc EQUAL 0)
  message(FATAL_ERROR "validate-report rejected ${pull_report} (rc=${pull_validate_rc})")
endif()

# Sweep round-trip on the parallel path: the emitted emis-bench-report/1
# document (with jobs/wall_seconds execution facts) must validate too.
set(sweep_report "${WORK_DIR}/report_sweep.json")
execute_process(
  COMMAND ${EMIS_CLI} sweep --alg cd --family er --sizes 32,64 --seeds 2
          --jobs 2 --report-out ${sweep_report} --quiet
  RESULT_VARIABLE sweep_rc)
if(NOT sweep_rc EQUAL 0)
  message(FATAL_ERROR "emis_cli sweep --jobs 2 failed (rc=${sweep_rc})")
endif()
execute_process(
  COMMAND ${EMIS_CLI} validate-report ${sweep_report}
  RESULT_VARIABLE sweep_validate_rc)
if(NOT sweep_validate_rc EQUAL 0)
  message(FATAL_ERROR "validate-report rejected ${sweep_report} (rc=${sweep_validate_rc})")
endif()
