# CTest script: `emis_cli run --report-out` must produce a document that
# `emis_cli validate-report` accepts, for a CD and a no-CD algorithm.
foreach(alg cd nocd)
  set(report "${WORK_DIR}/report_${alg}.json")
  execute_process(
    COMMAND ${EMIS_CLI} run --graph er:n=96,p=0.06 --alg ${alg} --seed 2
            --report-out ${report} --quiet
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "emis_cli run --alg ${alg} failed (rc=${run_rc})")
  endif()
  execute_process(
    COMMAND ${EMIS_CLI} validate-report ${report}
    RESULT_VARIABLE validate_rc)
  if(NOT validate_rc EQUAL 0)
    message(FATAL_ERROR "validate-report rejected ${report} (rc=${validate_rc})")
  endif()
endforeach()
