// Cross-module property sweeps: every algorithm × topology family × seed
// must produce a valid MIS, and invariants hold across the board.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/greedy_mis.hpp"
#include "core/runner.hpp"
#include "radio/graph_generators.hpp"
#include "verify/mis_checker.hpp"

namespace emis {
namespace {

struct Family {
  const char* name;
  Graph (*build)(std::uint64_t topo_seed);
};

Graph BuildPath(std::uint64_t) { return gen::Path(25); }
Graph BuildCycle(std::uint64_t) { return gen::Cycle(24); }
Graph BuildStar(std::uint64_t) { return gen::Star(30); }
Graph BuildGrid(std::uint64_t) { return gen::Grid(5, 6); }
Graph BuildComplete(std::uint64_t) { return gen::Complete(14); }
Graph BuildSparseEr(std::uint64_t s) {
  Rng rng(s);
  return gen::ErdosRenyi(70, 5.0 / 70, rng);
}
Graph BuildDenseEr(std::uint64_t s) {
  Rng rng(s + 1000);
  return gen::ErdosRenyi(48, 0.3, rng);
}
Graph BuildUdg(std::uint64_t s) {
  Rng rng(s + 2000);
  return gen::RandomGeometric(60, 0.2, rng);
}
Graph BuildTree(std::uint64_t s) {
  Rng rng(s + 3000);
  return gen::RandomTree(50, rng);
}
Graph BuildMatching(std::uint64_t) { return gen::MatchingPlusIsolated(48); }
Graph BuildCliques(std::uint64_t) { return gen::DisjointCliques(5, 5); }
Graph BuildBipartite(std::uint64_t) { return gen::CompleteBipartite(10, 14); }

constexpr Family kFamilies[] = {
    {"path", BuildPath},          {"cycle", BuildCycle},
    {"star", BuildStar},          {"grid", BuildGrid},
    {"complete", BuildComplete},  {"sparse-er", BuildSparseEr},
    {"dense-er", BuildDenseEr},   {"udg", BuildUdg},
    {"tree", BuildTree},          {"matching", BuildMatching},
    {"cliques", BuildCliques},    {"bipartite", BuildBipartite},
};

constexpr MisAlgorithm kAlgorithms[] = {
    MisAlgorithm::kCd,
    MisAlgorithm::kCdBeeping,
    MisAlgorithm::kCdNaive,
    MisAlgorithm::kNoCd,
    MisAlgorithm::kNoCdDaviesProfile,
    MisAlgorithm::kNoCdNaive,
};

class MisPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MisPropertyTest, ProducesValidMis) {
  const Family& family = kFamilies[std::get<0>(GetParam())];
  const MisAlgorithm algorithm = kAlgorithms[std::get<1>(GetParam())];
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = family.build(seed);
    const auto r = RunMis(g, {.algorithm = algorithm, .seed = seed * 31 + 7});
    EXPECT_TRUE(r.Valid()) << family.name << " / " << ToString(algorithm)
                           << " seed " << seed << ": " << r.report.Describe();
    // Any maximal independent set is a dominating set, so its size is at
    // least n / (Δ + 1) — a bound every valid output must meet. (Upper
    // bounds against a greedy reference don't exist: on a star, {hub} and
    // {all leaves} are both correct MIS's.)
    if (r.Valid() && g.NumNodes() > 0) {
      EXPECT_GE(r.MisSize() * (g.MaxDegree() + 1), g.NumNodes())
          << family.name << " / " << ToString(algorithm);
    }
  }
}

TEST_P(MisPropertyTest, DeterministicAcrossReruns) {
  const Family& family = kFamilies[std::get<0>(GetParam())];
  const MisAlgorithm algorithm = kAlgorithms[std::get<1>(GetParam())];
  const Graph g = family.build(99);
  const auto a = RunMis(g, {.algorithm = algorithm, .seed = 1234});
  const auto b = RunMis(g, {.algorithm = algorithm, .seed = 1234});
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.stats.rounds_used, b.stats.rounds_used);
  EXPECT_EQ(a.energy.MaxAwake(), b.energy.MaxAwake());
  EXPECT_EQ(a.energy.TotalAwake(), b.energy.TotalAwake());
}

std::string ParamName(const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  std::string name = kFamilies[std::get<0>(info.param)].name;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  std::string alg(ToString(kAlgorithms[std::get<1>(info.param)]));
  for (char& c : alg) {
    if (c == '-') c = '_';
  }
  return name + "__" + alg;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAllAlgorithms, MisPropertyTest,
    ::testing::Combine(::testing::Range(0, static_cast<int>(std::size(kFamilies))),
                       ::testing::Range(0, static_cast<int>(std::size(kAlgorithms)))),
    ParamName);

// --- Cross-algorithm consistency --------------------------------------------

TEST(Integration, AllAlgorithmsAgreeOnForcedMisSize) {
  // On disjoint cliques every valid MIS has exactly one node per clique, so
  // all six algorithms must agree on the size.
  const Graph g = gen::DisjointCliques(6, 4);
  for (MisAlgorithm alg : kAlgorithms) {
    const auto r = RunMis(g, {.algorithm = alg, .seed = 17});
    ASSERT_TRUE(r.Valid()) << ToString(alg);
    EXPECT_EQ(r.MisSize(), 6u) << ToString(alg);
  }
}

TEST(Integration, EnergyOrderingOnModerateGraph) {
  // The paper's headline ordering, total energy version:
  //   CD efficient < CD naive, and no-CD efficient < no-CD naive.
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(128, 8.0 / 128, rng);
  auto energy = [&](MisAlgorithm alg) {
    std::uint64_t total = 0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const auto r = RunMis(g, {.algorithm = alg, .seed = seed});
      EXPECT_TRUE(r.Valid()) << ToString(alg);
      total += r.energy.TotalAwake();
    }
    return total;
  };
  EXPECT_LT(energy(MisAlgorithm::kCd), energy(MisAlgorithm::kCdNaive));
  EXPECT_LT(energy(MisAlgorithm::kNoCd), energy(MisAlgorithm::kNoCdNaive));
  // And CD is far cheaper than any no-CD variant.
  EXPECT_LT(energy(MisAlgorithm::kCd), energy(MisAlgorithm::kNoCd));
}

TEST(Integration, NoCdUsesManyMoreRoundsThanCd) {
  Rng rng(6);
  const Graph g = gen::ErdosRenyi(96, 6.0 / 96, rng);
  const auto cd = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = 2});
  const auto nocd = RunMis(g, {.algorithm = MisAlgorithm::kNoCd, .seed = 2});
  ASSERT_TRUE(cd.Valid() && nocd.Valid());
  EXPECT_GT(nocd.stats.rounds_used, 10 * cd.stats.rounds_used);
}

}  // namespace
}  // namespace emis
