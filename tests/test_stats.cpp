#include "verify/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace emis {
namespace {

TEST(Summary, TracksMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 6.0, 8.0}) s.Add(x);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_NEAR(s.Variance(), 20.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.Stddev(), std::sqrt(20.0 / 3.0), 1e-9);
}

TEST(Summary, SingleAndEmpty) {
  Summary s;
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.Variance(), 0.0);
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(PowerFit, RecoversExactLaw) {
  // y = 3 x^2.
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v);
  }
  const PowerFit fit = FitPowerLaw(x, y);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(PowerFit, NoisyDataStillClose) {
  std::vector<double> x, y;
  double wiggle = 0.9;
  for (double v : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    x.push_back(v);
    y.push_back(5.0 * std::pow(v, 1.5) * wiggle);
    wiggle = wiggle < 1.0 ? 1.1 : 0.9;
  }
  const PowerFit fit = FitPowerLaw(x, y);
  EXPECT_NEAR(fit.exponent, 1.5, 0.1);
}

TEST(PowerFit, RejectsBadInput) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(FitPowerLaw(one, one), PreconditionError);
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> bad = {1.0, -2.0};
  EXPECT_THROW(FitPowerLaw(x, bad), PreconditionError);
  const std::vector<double> y3 = {1.0, 2.0, 3.0};
  EXPECT_THROW(FitPowerLaw(x, y3), PreconditionError);
}

TEST(PolylogFit, RecoversLogSquare) {
  // y = 2 (log2 n)^2 over n = 2^4 .. 2^12.
  std::vector<double> n, y;
  for (int e = 4; e <= 12; ++e) {
    n.push_back(std::pow(2.0, e));
    y.push_back(2.0 * e * e);
  }
  const PowerFit fit = FitPolylog(n, y);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficient, 2.0, 1e-9);
}

TEST(BestExponent, ClassifiesCurves) {
  std::vector<double> n, log1, log2c, log3;
  for (int e = 5; e <= 13; ++e) {
    n.push_back(std::pow(2.0, e));
    log1.push_back(7.0 * e);
    log2c.push_back(0.5 * e * e);
    log3.push_back(0.1 * e * e * e);
  }
  const std::vector<double> candidates = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(BestPolylogExponent(n, log1, candidates), 1.0);
  EXPECT_DOUBLE_EQ(BestPolylogExponent(n, log2c, candidates), 2.0);
  EXPECT_DOUBLE_EQ(BestPolylogExponent(n, log3, candidates), 3.0);
}

TEST(TableRender, AlignsColumns) {
  Table t({"n", "value"});
  t.AddRow({"64", "1.5"});
  t.AddRow({"65536", "123.0"});
  const std::string out = t.Render("demo");
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("65536"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_THROW(t.AddRow({"only-one"}), PreconditionError);
}

TEST(FmtHelper, Precision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.14159, 0), "3");
  EXPECT_EQ(Fmt(10.0, 1), "10.0");
}

}  // namespace
}  // namespace emis
