#include "verify/mis_checker.hpp"

#include <gtest/gtest.h>

#include "radio/graph_generators.hpp"

namespace emis {
namespace {

using S = MisStatus;

TEST(Checker, AcceptsValidMis) {
  // Path 0-1-2-3: {0, 2} is an MIS... but 3 must be dominated: 2 is in. OK.
  Graph g = gen::Path(4);
  const std::vector<S> status = {S::kInMis, S::kOutMis, S::kInMis, S::kOutMis};
  const MisReport r = CheckMis(g, status);
  EXPECT_TRUE(r.IsValidMis());
  EXPECT_TRUE(r.Describe().empty());
}

TEST(Checker, DetectsUndecided) {
  Graph g = gen::Path(3);
  const std::vector<S> status = {S::kInMis, S::kOutMis, S::kUndecided};
  const MisReport r = CheckMis(g, status);
  EXPECT_FALSE(r.IsValidMis());
  EXPECT_FALSE(r.Decided());
  ASSERT_EQ(r.undecided.size(), 1u);
  EXPECT_EQ(r.undecided[0], 2u);
  EXPECT_TRUE(r.Independent());
  EXPECT_NE(r.Describe().find("undecided"), std::string::npos);
}

TEST(Checker, DetectsDependentEdge) {
  Graph g = gen::Path(3);
  const std::vector<S> status = {S::kInMis, S::kInMis, S::kOutMis};
  const MisReport r = CheckMis(g, status);
  EXPECT_FALSE(r.IsValidMis());
  ASSERT_EQ(r.dependent_edges.size(), 1u);
  EXPECT_EQ(r.dependent_edges[0], (Edge{0, 1}));
  EXPECT_NE(r.Describe().find("intra-set"), std::string::npos);
}

TEST(Checker, DetectsUndominated) {
  // Path of 3, only node 0 in MIS: node 2 is out but has no MIS neighbor.
  Graph g = gen::Path(3);
  const std::vector<S> status = {S::kInMis, S::kOutMis, S::kOutMis};
  const MisReport r = CheckMis(g, status);
  EXPECT_FALSE(r.IsValidMis());
  ASSERT_EQ(r.undominated.size(), 1u);
  EXPECT_EQ(r.undominated[0], 2u);
  EXPECT_NE(r.Describe().find("undominated"), std::string::npos);
}

TEST(Checker, IsolatedOutNodeIsUndominated) {
  Graph g = gen::Empty(2);
  const std::vector<S> status = {S::kInMis, S::kOutMis};
  const MisReport r = CheckMis(g, status);
  ASSERT_EQ(r.undominated.size(), 1u);
  EXPECT_EQ(r.undominated[0], 1u);
}

TEST(Checker, EmptyGraphTrivallyValid) {
  Graph g;
  EXPECT_TRUE(CheckMis(g, {}).IsValidMis());
}

TEST(Checker, AllInMisOnEdgelessGraphValid) {
  Graph g = gen::Empty(5);
  const std::vector<S> status(5, S::kInMis);
  EXPECT_TRUE(CheckMis(g, status).IsValidMis());
}

TEST(Checker, SizeMismatchRejected) {
  Graph g = gen::Path(3);
  const std::vector<S> status = {S::kInMis, S::kOutMis};
  EXPECT_THROW(CheckMis(g, status), PreconditionError);
}

TEST(Checker, MultipleViolationsAllReported) {
  // Triangle with everyone in the MIS: 3 dependent edges.
  Graph g = gen::Cycle(3);
  const std::vector<S> status(3, S::kInMis);
  const MisReport r = CheckMis(g, status);
  EXPECT_EQ(r.dependent_edges.size(), 3u);
}

TEST(Checker, DescribeTruncatesLongLists) {
  Graph g = gen::Empty(50);
  const std::vector<S> status(50, S::kUndecided);
  const MisReport r = CheckMis(g, status);
  EXPECT_EQ(r.undecided.size(), 50u);
  const std::string desc = r.Describe();
  EXPECT_NE(desc.find("..."), std::string::npos);
}

TEST(Checker, IsValidMisHelperAgrees) {
  Graph g = gen::Path(2);
  EXPECT_TRUE(IsValidMis(g, {S::kInMis, S::kOutMis}));
  EXPECT_FALSE(IsValidMis(g, {S::kInMis, S::kInMis}));
  EXPECT_FALSE(IsValidMis(g, {S::kOutMis, S::kOutMis}));
}

}  // namespace
}  // namespace emis
