// E5 — the Ω(log n) energy lower bound (Theorem 1).
//
// Theorem 1's mechanism on the matching+isolated family: a node that has
// heard nothing must join the MIS (it is isolated with conditional
// probability ≥ 1/2), and with an energy budget b, a matched pair fails to
// break its tie with probability ≥ 4^-b per pair — so with n/4 pairs,
// failure is near-certain while b ≤ ~log_4(n/4) and fades above.
//
// We run Algorithm 1 under a hard per-node budget of b awake rounds (capped
// nodes decide by the forced rule: join iff silent so far) and chart the
// empirical failure probability against b, alongside the paper's
// 1 - exp(-n / 4^(b+1)) bound curve.
#include "bench_common.hpp"

#include "core/runner.hpp"

namespace emis {
namespace {

double FailureRate(NodeId n, std::uint64_t cap, std::uint32_t trials) {
  const Graph g = gen::MatchingPlusIsolated(n);
  std::uint32_t failures = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    MisRunConfig cfg{.algorithm = MisAlgorithm::kCd,
                     .seed = 1000 + static_cast<std::uint64_t>(n) * 977 + t};
    cfg.cd_params = CdParams::Practical(n);
    cfg.cd_params->energy_cap = cap;
    const auto r = RunMis(g, cfg);
    failures += r.Valid() ? 0 : 1;
  }
  return static_cast<double>(failures) / trials;
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E5  bench_lower_bound",
                "Theorem 1: any MIS algorithm with energy <= 1/2 log n fails "
                "w.p. >= 1 - e^(-1/4) on the matching+isolated family.");

  const std::uint32_t kTrials = 30;
  for (NodeId n : {256u, 1024u, 4096u}) {
    const double log_n = std::log2(static_cast<double>(n));
    Table table({"energy budget b", "b / log2 n", "empirical failure",
                 "paper bound 1-e^(-n/4^(b+1))"});
    double fail_at_half_log = -1.0;
    double fail_at_generous = -1.0;
    const std::uint64_t half_log = static_cast<std::uint64_t>(log_n / 2.0);
    const std::uint64_t generous = static_cast<std::uint64_t>(3.0 * log_n);
    for (std::uint64_t b :
         {std::uint64_t{1}, std::uint64_t{2}, half_log / 2 + 1, half_log,
          static_cast<std::uint64_t>(log_n), 2 * static_cast<std::uint64_t>(log_n),
          generous}) {
      const double fail = FailureRate(n, b, kTrials);
      const double bound =
          1.0 - std::exp(-static_cast<double>(n) / std::pow(4.0, static_cast<double>(b + 1)));
      if (b == half_log) fail_at_half_log = fail;
      if (b == generous) fail_at_generous = fail;
      table.AddRow({std::to_string(b), Fmt(static_cast<double>(b) / log_n, 2),
                    Fmt(fail, 2), Fmt(bound, 3)});
    }
    std::printf("%s", table.Render("n = " + std::to_string(n)).c_str());
    std::printf("\n");

    bench::Verdict(fail_at_half_log >= 1.0 - std::exp(-0.25) - 0.15,
                   "n=" + std::to_string(n) +
                       ": at b = 1/2 log n failure rate >= ~1-e^(-1/4) (" +
                       Fmt(fail_at_half_log, 2) + ")");
    bench::Verdict(fail_at_generous <= 0.2,
                   "n=" + std::to_string(n) +
                       ": with b = 3 log n the algorithm succeeds (failure " +
                       Fmt(fail_at_generous, 2) + ") — the bound is tight up "
                       "to constants");
  }
  bench::Footer();
  return 0;
}
