// E18 — the parallel trial engine (engineering; no paper claim).
//
// Runs the same 100-trial CD-energy sweep serially and on 4 worker threads
// and checks the two halves of the engine's contract:
//   * determinism — the sweep statistics (every SweepPoint column, compared
//     through the JSON artifact encoding) are BIT-identical at any job count;
//   * speedup — with >= 4 hardware threads, 4 jobs cut wall-clock by >= 3x.
// On smaller machines the speedup line is reported but not asserted (there
// is nothing to parallelize onto); determinism is always asserted.
#include "bench_common.hpp"

namespace emis {
namespace {

void RunComparison() {
  SweepConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.factory = families::SparseErdosRenyi(8.0);
  cfg.sizes = {512, 1024, 2048, 4096};
  cfg.seeds_per_size = 25;  // 4 sizes x 25 seeds = 100 trials
  cfg.seed_base = 1;

  obs::MetricsRegistry serial_metrics;
  cfg.metrics = &serial_metrics;
  SweepRunInfo serial_info;
  const auto serial = RunSweep(cfg, 1, &serial_info);

  obs::MetricsRegistry parallel_metrics;
  cfg.metrics = &parallel_metrics;
  SweepRunInfo parallel_info;
  const auto parallel = RunSweep(cfg, 4, &parallel_info);

  bench::RecordSweep("cd-energy 100 trials / jobs 1", {serial, serial_info});
  bench::RecordSweep("cd-energy 100 trials / jobs 4", {parallel, parallel_info});

  Table table({"jobs", "trials", "wall s", "speedup"});
  const double speedup = parallel_info.wall_seconds > 0.0
                             ? serial_info.wall_seconds / parallel_info.wall_seconds
                             : 0.0;
  table.AddRow({"1", "100", Fmt(serial_info.wall_seconds, 2), "1.00"});
  table.AddRow({"4", "100", Fmt(parallel_info.wall_seconds, 2), Fmt(speedup, 2)});
  std::printf("%s", table.Render("100-trial CD-energy sweep, serial vs 4 jobs").c_str());

  // Byte-level comparison through the artifact encoding: every aggregate the
  // bench pipeline consumes (means from Welford reductions included) must
  // match exactly, not approximately.
  const std::string serial_doc = BuildSweepJson("sweep", serial).Dump(0);
  const std::string parallel_doc = BuildSweepJson("sweep", parallel).Dump(0);
  bench::Verdict(serial_doc == parallel_doc,
                 "jobs=4 sweep statistics are bit-identical to jobs=1");

  // Sharded metrics: the same simulated work reaches the merged registry no
  // matter how many shards it was split across.
  const auto executed = [](const obs::MetricsRegistry& m) {
    const auto& counters = m.Counters();
    const auto it = counters.find("sched.rounds_executed");
    return it == counters.end() ? std::uint64_t{0} : it->second.Value();
  };
  bench::Verdict(executed(serial_metrics) != 0 &&
                     executed(serial_metrics) == executed(parallel_metrics),
                 "merged metric shards match the serial registry (" +
                     std::to_string(executed(parallel_metrics)) + " rounds)");

  const unsigned hw = par::DefaultJobs();
  if (hw >= 4) {
    bench::Verdict(speedup >= 3.0,
                   "jobs=4 achieves >= 3x wall-clock speedup (measured " +
                       Fmt(speedup, 2) + "x on " + std::to_string(hw) +
                       " hardware threads)");
  } else {
    std::printf("speedup check skipped: only %u hardware thread(s); measured "
                "%.2fx\n",
                hw, speedup);
  }
}

void RunLossyDeterminism() {
  // Fading draws are counter-based — a pure function of (round, tx, rx,
  // seed), never of draw order — so the determinism contract extends to
  // lossy configurations: identical points at any job count AND under
  // either channel resolution direction.
  SweepConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.factory = families::SparseErdosRenyi(8.0);
  cfg.sizes = {256, 512};
  cfg.seeds_per_size = 10;
  cfg.seed_base = 7;
  cfg.tweak = [](MisRunConfig& rc, const Graph&) { rc.link_loss = 0.25; };

  const auto serial = RunSweep(cfg, 1);
  const auto parallel = RunSweep(cfg, 4);
  bench::RecordSweep("lossy cd sweep (loss 0.25) / jobs 1", serial);
  const std::string serial_doc = BuildSweepJson("sweep", serial).Dump(0);
  const std::string parallel_doc = BuildSweepJson("sweep", parallel).Dump(0);
  bench::Verdict(serial_doc == parallel_doc,
                 "lossy (0.25) sweep statistics are bit-identical across job "
                 "counts");

  cfg.resolution = ChannelResolution::kPull;
  const auto pulled = RunSweep(cfg, 4);
  bench::Verdict(BuildSweepJson("sweep", pulled).Dump(0) == serial_doc,
                 "lossy sweep statistics are bit-identical under forced pull "
                 "resolution");
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E18 bench_parallel_sweep",
                "Engineering: the parallel trial engine is bit-deterministic "
                "and scales independent (n, seed) trials across cores.");
  RunComparison();
  RunLossyDeterminism();
  bench::Footer();
  return 0;
}
