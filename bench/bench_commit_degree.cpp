// E9 — properties of the committed set (Lemma 11, Lemma 12, Corollary 13).
//
// Runs Algorithm 3 standalone with instrumentation and reports:
//   * the maximum degree of the subgraph induced by non-losing nodes,
//     against the κ log n bound of Corollary 13(2);
//   * for adjacent committed pairs, how often they committed in the same
//     Bitty phase (Lemma 11 says whp always).
#include "bench_common.hpp"

#include "core/competition.hpp"
#include "radio/scheduler.hpp"

namespace emis {
namespace {

struct CompetitionRun {
  std::vector<CompetitionOutcome> outcome;
  std::vector<CompetitionProbe> probe;
};

proc::Task<void> Node(NodeApi api, NoCdParams params, CompetitionRun* run) {
  run->outcome[api.Id()] =
      co_await Competition(api, params, &run->probe[api.Id()]);
}

CompetitionRun RunCompetition(const Graph& g, const NoCdParams& params,
                              std::uint64_t seed) {
  CompetitionRun run;
  run.outcome.assign(g.NumNodes(), CompetitionOutcome::kLose);
  run.probe.assign(g.NumNodes(), {});
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, seed);
  sched.Spawn([&](NodeApi api) { return Node(api, params, &run); });
  sched.Run();
  return run;
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E9  bench_commit_degree",
                "Cor. 13: committed nodes induce an O(log n)-degree subgraph; "
                "Lemma 11: adjacent committed nodes commit in the same Bitty "
                "phase (whp).");

  Table table({"family", "n", "κ log n bound", "max commit degree", "committed(avg)",
               "adjacent commits", "same-bit commits"});
  bool degree_ok = true;
  bool same_bit_mostly = true;
  const std::pair<std::string, GraphFactory> fams[] = {
      {"dense G(n, 0.3)",
       [](NodeId n, Rng& rng) { return gen::ErdosRenyi(n, 0.3, rng); }},
      {"G(n, 8/n)", families::SparseErdosRenyi(8.0)},
      {"complete", families::CompleteFamily()},
  };
  for (const auto& [name, factory] : fams) {
    for (NodeId n : {64u, 128u, 256u}) {
      std::uint32_t max_commit_degree = 0;
      Summary committed_count;
      std::uint64_t adjacent_pairs = 0, same_bit_pairs = 0;
      NoCdParams params{};
      for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Rng rng(seed * 31 + n);
        const Graph g = factory(n, rng);
        params = NoCdParams::Practical(n, std::max(1u, g.MaxDegree()));
        const CompetitionRun run = RunCompetition(g, params, seed);
        // Corollary 13's set: nodes whose status is not lose at commit time;
        // post-competition that is every non-losing node (win ⊇ silent
        // commits).
        std::vector<NodeId> not_lost;
        std::uint64_t committed = 0;
        for (NodeId v = 0; v < g.NumNodes(); ++v) {
          if (run.outcome[v] != CompetitionOutcome::kLose) not_lost.push_back(v);
          committed += run.probe[v].commit_bit >= 0 ? 1 : 0;
        }
        committed_count.Add(static_cast<double>(committed));
        const auto sub = g.Induced(not_lost);
        max_commit_degree = std::max(max_commit_degree, sub.graph.MaxDegree());
        // Lemma 11: adjacent pairs that both committed.
        for (const Edge& e : g.EdgeList()) {
          const auto& pu = run.probe[e.u];
          const auto& pv = run.probe[e.v];
          if (pu.commit_bit >= 0 && pv.commit_bit >= 0) {
            ++adjacent_pairs;
            same_bit_pairs += pu.commit_bit == pv.commit_bit ? 1 : 0;
          }
        }
      }
      table.AddRow({name, std::to_string(n), std::to_string(params.commit_degree),
                    std::to_string(max_commit_degree), Fmt(committed_count.mean, 1),
                    std::to_string(adjacent_pairs), std::to_string(same_bit_pairs)});
      degree_ok = degree_ok && max_commit_degree <= params.commit_degree;
      if (adjacent_pairs > 0) {
        same_bit_mostly =
            same_bit_mostly && same_bit_pairs * 10 >= adjacent_pairs * 9;
      }
    }
  }
  std::printf("%s\n", table.Render("Competition instrumentation, 10 seeds each").c_str());
  bench::Verdict(degree_ok,
                 "commit-time subgraph degree <= κ log n on every run (Cor. 13)");
  bench::Verdict(same_bit_mostly,
                 ">=90% of adjacent committed pairs committed in the same "
                 "Bitty phase (Lemma 11)");
  bench::Footer();
  return 0;
}
