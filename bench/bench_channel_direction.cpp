// E19 — direction-optimizing channel resolution (engineering; no paper claim).
//
// The scheduler resolves each round on the cheaper side of the channel:
// push (transmitters scan their neighbor rows) or pull (listeners scan
// theirs), picked per round by the degree-sum cost model. This bench checks
// the two halves of that design:
//   * equivalence — push and pull produce identical receptions, and whole
//     MIS runs are identical in every resolution mode (reliable and lossy);
//   * throughput — on dense-transmitter/sparse-listener workloads (a star
//     whose hub announces to a few awake leaves; a degree-64 G(n,p) with 16x
//     more transmitting than listening edges) auto resolution sustains
//     >= 2x the round throughput of forced push, best of 3 runs.
// Workloads keep the awake actor count small while Sigma deg(transmitter)
// is huge, so the measured gap is channel work, not coroutine resume cost.
#include <chrono>

#include "bench_common.hpp"
#include "radio/scheduler.hpp"

namespace emis {
namespace {

// --- equivalence ------------------------------------------------------------

void CheckEquivalence() {
  Rng rng(2025);
  int reception_mismatches = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId n = 32 + static_cast<NodeId>(rng.UniformBelow(96));
    const Graph g = gen::ErdosRenyi(n, 0.1, rng);
    for (const double loss : {0.0, 0.3}) {
      Channel push(g, ChannelModel::kCd);
      Channel pull(g, ChannelModel::kCd);
      if (loss > 0.0) {
        push.SetLoss(loss, 11);
        pull.SetLoss(loss, 11);
      }
      for (int round = 0; round < 4; ++round) {
        push.BeginRound(ChannelDirection::kPush);
        pull.BeginRound(ChannelDirection::kPull);
        std::vector<bool> transmits(n, false);
        for (NodeId v = 0; v < n; ++v) {
          if (rng.Bernoulli(0.25)) {
            transmits[v] = true;
            push.AddTransmitter(v, v + 1);
            pull.AddTransmitter(v, v + 1);
          }
        }
        for (NodeId v = 0; v < n; ++v) {
          if (!transmits[v] && push.ResolveListener(v) != pull.ResolveListener(v)) {
            ++reception_mismatches;
          }
        }
      }
    }
  }
  bench::Verdict(reception_mismatches == 0,
                 "push and pull resolution produce identical receptions "
                 "(random graphs, reliable and lossy)");

  Rng topo(3);
  const Graph g = gen::ErdosRenyi(256, 0.05, topo);
  bool identical = true;
  for (const double loss : {0.0, 0.3}) {
    MisRunConfig base{.algorithm = MisAlgorithm::kCd, .seed = 12};
    base.link_loss = loss;
    base.resolution = ChannelResolution::kPush;
    const MisRunResult push = RunMis(g, base);
    base.resolution = ChannelResolution::kPull;
    const MisRunResult pull = RunMis(g, base);
    base.resolution = ChannelResolution::kAuto;
    const MisRunResult aut = RunMis(g, base);
    identical = identical && push.status == pull.status &&
                push.status == aut.status &&
                push.stats.rounds_used == pull.stats.rounds_used &&
                push.energy.TotalAwake() == aut.energy.TotalAwake();
  }
  bench::Verdict(identical,
                 "RunMis output is identical under push, pull and auto "
                 "(loss 0 and 0.3)");
}

// --- throughput -------------------------------------------------------------

/// Broadcast workload: `transmitters` nodes announce every round for
/// `rounds` rounds, `listeners` nodes listen along; everyone else finishes
/// immediately (asleep nodes are free, exactly like decided MIS nodes).
proc::Task<void> BroadcastActor(NodeApi api, bool transmit, bool listen,
                                Round rounds) {
  if (transmit) {
    for (Round r = 0; r < rounds; ++r) co_await api.Transmit(1);
  } else if (listen) {
    for (Round r = 0; r < rounds; ++r) co_await api.Listen();
  }
  co_return;
}

struct Workload {
  std::string name;
  Graph graph;
  std::vector<bool> transmits;
  std::vector<bool> listens;
  Round rounds = 0;
};

/// Star: the hub (degree n-1) announces; 16 leaves stay listening. Pull
/// scans 16 degree-1 rows per round where push scans the full hub row.
Workload StarWorkload() {
  Workload w;
  w.name = "star n=8192, hub announces, 16 listeners";
  w.graph = gen::Star(8192);
  w.transmits.assign(w.graph.NumNodes(), false);
  w.listens.assign(w.graph.NumNodes(), false);
  w.transmits[0] = true;
  for (NodeId v = 1; v <= 16; ++v) w.listens[v] = true;
  w.rounds = 3000;
  return w;
}

/// Dense G(n, 64/n): every 8th node transmits (~512 rows of ~64 edges);
/// 28 low-id nodes listen (~1.8k edges) — a 16x push/pull cost gap.
Workload DenseErWorkload() {
  Rng rng(6);
  Workload w;
  w.name = "G(4096, 64/n), 512 transmitters, 28 listeners";
  w.graph = gen::ErdosRenyi(4096, 64.0 / 4096.0, rng);
  w.transmits.assign(w.graph.NumNodes(), false);
  w.listens.assign(w.graph.NumNodes(), false);
  for (NodeId v = 0; v < w.graph.NumNodes(); ++v) {
    if (v % 8 == 0) w.transmits[v] = true;
    else if (v < 32) w.listens[v] = true;
  }
  w.rounds = 600;
  return w;
}

/// Wall-clock of one full scheduler run of the workload, forced to `res`.
double RunOnce(const Workload& w, ChannelResolution res) {
  Scheduler sched(w.graph, {.resolution = res}, /*seed=*/1);
  const auto start = std::chrono::steady_clock::now();
  sched.Spawn([&w](NodeApi api) {
    return BroadcastActor(api, w.transmits[api.Id()], w.listens[api.Id()],
                          w.rounds);
  });
  const RunStats stats = sched.Run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EMIS_REQUIRE(stats.rounds_used == w.rounds, "workload must run all rounds");
  return elapsed.count();
}

/// Best-of-3 rounds/second (min wall-clock), the standard perf protocol.
double Throughput(const Workload& w, ChannelResolution res) {
  double best = RunOnce(w, res);
  for (int i = 0; i < 2; ++i) best = std::min(best, RunOnce(w, res));
  return static_cast<double>(w.rounds) / best;
}

void CheckThroughput() {
  Table table({"workload", "push rounds/s", "auto rounds/s", "ratio"});
  for (const Workload& w : {StarWorkload(), DenseErWorkload()}) {
    const double push = Throughput(w, ChannelResolution::kPush);
    const double aut = Throughput(w, ChannelResolution::kAuto);
    const double ratio = push > 0.0 ? aut / push : 0.0;
    table.AddRow({w.name, Fmt(push, 0), Fmt(aut, 0), Fmt(ratio, 2)});
    bench::Verdict(ratio >= 2.0,
                   "auto resolution sustains >= 2x forced-push round "
                   "throughput on " + w.name + " (measured " +
                       Fmt(ratio, 2) + "x)");
  }
  std::printf("%s", table.Render("round throughput, forced push vs auto "
                                 "(best of 3)").c_str());
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E19 bench_channel_direction",
                "Engineering: direction-optimizing channel resolution — push "
                "and pull are semantically identical, and the degree-sum "
                "cost model wins >= 2x round throughput on dense-transmitter "
                "workloads.");
  CheckEquivalence();
  CheckThroughput();
  bench::Footer();
  return 0;
}
