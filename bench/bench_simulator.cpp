// E11 — simulator micro-benchmarks (engineering, google-benchmark).
//
// Throughput of the substrate: graph generation, channel resolution,
// round dispatch under both execution engines, backoff execution, and
// end-to-end MIS runs. The custom main additionally writes an
// emis-bench-report/1 artifact (EMIS_BENCH_JSON) whose metrics block
// carries the measured flat-vs-coroutine RunMis speedup.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hpp"
#include "core/backoff.hpp"
#include "core/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timeline.hpp"
#include "radio/channel.hpp"
#include "radio/graph_generators.hpp"
#include "radio/scheduler.hpp"

namespace emis {
namespace {

void BM_GraphErdosRenyi(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    Graph g = gen::ErdosRenyi(n, 8.0 / n, rng);
    benchmark::DoNotOptimize(g.NumEdges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GraphErdosRenyi)->Arg(1024)->Arg(16384);

void BM_ChannelRound(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  const Graph g = gen::ErdosRenyi(n, 16.0 / n, rng);
  Channel ch(g, ChannelModel::kNoCd);
  std::vector<NodeId> transmitters;
  for (NodeId v = 0; v < n; v += 2) transmitters.push_back(v);
  for (auto _ : state) {
    ch.BeginRound();
    for (NodeId v : transmitters) ch.AddTransmitter(v, 1);
    std::uint64_t busy = 0;
    for (NodeId v = 1; v < n; v += 2) busy += ch.ResolveListener(v).Busy();
    benchmark::DoNotOptimize(busy);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChannelRound)->Arg(1024)->Arg(16384);

proc::Task<void> PingPong(NodeApi api, std::uint32_t rounds) {
  for (std::uint32_t i = 0; i < rounds; ++i) {
    if ((api.Id() + i) % 2 == 0) {
      co_await api.Transmit(1);
    } else {
      co_await api.Listen();
    }
  }
}

void BM_SchedulerNodeRounds(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  const Graph g = gen::ErdosRenyi(n, 8.0 / n, rng);
  const std::uint32_t kRounds = 64;
  for (auto _ : state) {
    Scheduler sched(g, {.model = ChannelModel::kCd}, 7);
    sched.Spawn([&](NodeApi api) { return PingPong(api, kRounds); });
    const RunStats stats = sched.Run();
    benchmark::DoNotOptimize(stats.node_rounds);
  }
  state.SetItemsProcessed(state.iterations() * n * kRounds);
}
BENCHMARK(BM_SchedulerNodeRounds)->Arg(256)->Arg(4096);

void BM_SchedulerNodeRoundsInstrumented(benchmark::State& state) {
  // Same workload with a MetricsRegistry attached: the delta against
  // BM_SchedulerNodeRounds is the observability overhead (budget: <= 5%).
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  const Graph g = gen::ErdosRenyi(n, 8.0 / n, rng);
  const std::uint32_t kRounds = 64;
  obs::MetricsRegistry metrics;
  for (auto _ : state) {
    Scheduler sched(g, {.model = ChannelModel::kCd, .metrics = &metrics}, 7);
    sched.Spawn([&](NodeApi api) { return PingPong(api, kRounds); });
    const RunStats stats = sched.Run();
    benchmark::DoNotOptimize(stats.node_rounds);
  }
  state.SetItemsProcessed(state.iterations() * n * kRounds);
}
BENCHMARK(BM_SchedulerNodeRoundsInstrumented)->Arg(256)->Arg(4096);

void BM_RoundSkipping(benchmark::State& state) {
  // A single pair exchanging one message across a huge sleep gap: measures
  // the event-driven jump, which must not scale with the gap.
  const Graph g = gen::Path(2);
  for (auto _ : state) {
    Scheduler sched(g, {.model = ChannelModel::kCd}, 9);
    sched.Spawn([](NodeApi api) -> proc::Task<void> {
      return [](NodeApi a) -> proc::Task<void> {
        co_await a.SleepFor(10'000'000);
        co_await a.Transmit(1);
      }(api);
    });
    const RunStats stats = sched.Run();
    benchmark::DoNotOptimize(stats.rounds_used);
  }
}
BENCHMARK(BM_RoundSkipping);

void BM_EBackoffPair(benchmark::State& state) {
  const Graph g = gen::Path(2);
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Scheduler sched(g, {.model = ChannelModel::kNoCd}, 11);
    sched.Spawn([&](NodeApi api) -> proc::Task<void> {
      if (api.Id() == 0) {
        return [](NodeApi a, std::uint32_t kk) -> proc::Task<void> {
          co_await SndEBackoff(a, kk, 64);
        }(api, k);
      }
      return [](NodeApi a, std::uint32_t kk) -> proc::Task<void> {
        (void)co_await RecEBackoff(a, kk, 64, 64);
      }(api, k);
    });
    sched.Run();
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_EBackoffPair)->Arg(8)->Arg(64);

void BM_MisCdEndToEnd(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(4);
  const Graph g = gen::ErdosRenyi(n, 8.0 / n, rng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto r = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = ++seed});
    benchmark::DoNotOptimize(r.MisSize());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MisCdEndToEnd)->Arg(1024)->Arg(8192);

void BM_MisCdEndToEndInstrumented(benchmark::State& state) {
  // Full observability (registry + timeline + residual probes) on the same
  // end-to-end run as BM_MisCdEndToEnd.
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(4);
  const Graph g = gen::ErdosRenyi(n, 8.0 / n, rng);
  std::uint64_t seed = 0;
  obs::MetricsRegistry metrics;
  for (auto _ : state) {
    obs::PhaseTimeline timeline;
    const auto r = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = ++seed,
                              .metrics = &metrics, .timeline = &timeline});
    benchmark::DoNotOptimize(r.MisSize());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MisCdEndToEndInstrumented)->Arg(1024)->Arg(8192);

void BM_MisCdEndToEndFlat(benchmark::State& state) {
  // BM_MisCdEndToEnd under the flat engine — the per-iteration delta is the
  // engine overhead alone (identical receptions, actions, and results).
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(4);
  const Graph g = gen::ErdosRenyi(n, 8.0 / n, rng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto r = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = ++seed,
                              .engine = ExecutionEngine::kFlat});
    benchmark::DoNotOptimize(r.MisSize());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MisCdEndToEndFlat)->Arg(1024)->Arg(8192);

void BM_MisNoCdEndToEnd(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(n, 8.0 / n, rng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto r = RunMis(g, {.algorithm = MisAlgorithm::kNoCd, .seed = ++seed});
    benchmark::DoNotOptimize(r.MisSize());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MisNoCdEndToEnd)->Arg(256);

void BM_MisNoCdEndToEndFlat(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(n, 8.0 / n, rng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto r = RunMis(g, {.algorithm = MisAlgorithm::kNoCd, .seed = ++seed,
                              .engine = ExecutionEngine::kFlat});
    benchmark::DoNotOptimize(r.MisSize());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MisNoCdEndToEndFlat)->Arg(256);

/// Wall-clock for `reps` end-to-end kCd runs under `engine` (distinct seeds,
/// so no run is trivially warm).
double MeasureRunMisSeconds(const Graph& g, ExecutionEngine engine, int reps) {
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t seed = 100;
  for (int i = 0; i < reps; ++i) {
    const auto r = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = ++seed,
                              .engine = engine});
    benchmark::DoNotOptimize(r.MisSize());
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - start;
  return dt.count();
}

/// Writes the EMIS_BENCH_JSON artifact: the flat-vs-coroutine RunMis
/// speedup as a gauge (sim.flat_speedup_x) plus a sanity verdict, so the CI
/// perf trajectory tracks the engine ratio run over run.
void EmitSpeedupArtifact() {
  bench::Banner("E11-simulator",
                "flat engine >= coroutine engine RunMis throughput");
  Rng rng(4);
  const NodeId n = 8192;
  const Graph g = gen::ErdosRenyi(n, 8.0 / n, rng);
  constexpr int kReps = 5;
  MeasureRunMisSeconds(g, ExecutionEngine::kCoroutine, 1);  // warm-up
  const double coro = MeasureRunMisSeconds(g, ExecutionEngine::kCoroutine, kReps);
  const double flat = MeasureRunMisSeconds(g, ExecutionEngine::kFlat, kReps);
  const double speedup = flat > 0.0 ? coro / flat : 0.0;
  std::printf("RunMis kCd er n=%u: coroutine %.3fs, flat %.3fs, speedup %.2fx\n",
              n, coro, flat, speedup);
  bench::Metrics().GetGauge("sim.flat_speedup_x").Set(speedup);
  bench::Metrics().GetGauge("sim.coroutine_seconds").Set(coro);
  bench::Metrics().GetGauge("sim.flat_seconds").Set(flat);
  bench::Verdict(speedup >= 1.0,
                 "flat engine at least matches coroutine RunMis throughput");
  bench::Footer();
}

}  // namespace
}  // namespace emis

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emis::EmitSpeedupArtifact();
  return 0;
}
