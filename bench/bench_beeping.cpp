// E8 — beeping-model equivalence (paper §3.1).
//
// Algorithm 1 only ever tests "did I hear something", so on a beeping
// channel (where any number of beeping neighbors collapses to one beep) the
// execution with the same seed must be *identical*: same decisions, same
// rounds, same per-node energy. This bench verifies bit-for-bit equality of
// paired runs across sizes and families.
#include "bench_common.hpp"

#include "core/runner.hpp"

namespace emis {
namespace {

struct PairResult {
  std::uint32_t runs = 0;
  std::uint32_t identical = 0;
  std::uint32_t both_valid = 0;
};

PairResult ComparePairs(const GraphFactory& factory, NodeId n, std::uint32_t seeds) {
  PairResult res;
  for (std::uint32_t s = 0; s < seeds; ++s) {
    Rng rng(s * 1000 + n);
    const Graph g = factory(n, rng);
    const auto cd = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = s});
    const auto beep = RunMis(g, {.algorithm = MisAlgorithm::kCdBeeping, .seed = s});
    ++res.runs;
    bool same = cd.status == beep.status &&
                cd.stats.rounds_used == beep.stats.rounds_used;
    for (NodeId v = 0; same && v < g.NumNodes(); ++v) {
      same = cd.energy.Of(v) == beep.energy.Of(v);
    }
    res.identical += same ? 1 : 0;
    res.both_valid += (cd.Valid() && beep.Valid()) ? 1 : 0;
  }
  return res;
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E8  bench_beeping",
                "§3.1: Algorithm 1 runs unmodified in the beeping model with "
                "identical executions, energy and round complexity.");

  Table table({"family", "n", "paired runs", "identical", "both valid"});
  bool all_identical = true, all_valid = true;
  const std::pair<std::string, GraphFactory> fams[] = {
      {"G(n, 8/n)", families::SparseErdosRenyi(8.0)},
      {"unit disk", families::UnitDisk(8.0)},
      {"star", families::StarFamily()},
      {"matching+isolated", families::LowerBoundFamily()},
  };
  for (const auto& [name, factory] : fams) {
    for (NodeId n : {128u, 1024u, 4096u}) {
      const PairResult r = ComparePairs(factory, n, 10);
      table.AddRow({name, std::to_string(n), std::to_string(r.runs),
                    std::to_string(r.identical), std::to_string(r.both_valid)});
      all_identical = all_identical && r.identical == r.runs;
      all_valid = all_valid && r.both_valid == r.runs;
    }
  }
  std::printf("%s\n", table.Render("paired CD vs beeping runs (same seed)").c_str());
  bench::Verdict(all_identical,
                 "every paired run identical (statuses, rounds, per-node energy)");
  bench::Verdict(all_valid, "every paired run produced a valid MIS");
  bench::Footer();
  return 0;
}
