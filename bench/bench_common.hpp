// Shared helpers for the experiment binaries (E1-E11 in DESIGN.md).
//
// Every bench prints:
//   * a header naming the paper claim it reproduces,
//   * one or more tables of measured rows,
//   * SHAPE-CHECK verdict lines ("[pass]"/"[FAIL]") that summarize whether
//     the measurement matches the claim's shape.
// Exit code is 0 even on shape failures (so `for b in bench/*; do $b; done`
// runs everything); verdicts are for the human/EXPERIMENTS.md.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "verify/experiment.hpp"
#include "verify/stats.hpp"

namespace emis::bench {

inline int g_failures = 0;

inline void Banner(const std::string& id, const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void Verdict(bool ok, const std::string& what) {
  std::printf("SHAPE-CHECK [%s] %s\n", ok ? "pass" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
}

inline void Footer() {
  if (g_failures == 0) {
    std::printf("\nAll shape checks passed.\n");
  } else {
    std::printf("\n%d shape check(s) FAILED.\n", g_failures);
  }
}

/// Sum of failures across all sweep points (invalid MIS outputs).
inline std::uint32_t TotalFailures(const std::vector<SweepPoint>& points) {
  std::uint32_t f = 0;
  for (const auto& p : points) f += p.failures;
  return f;
}

}  // namespace emis::bench
