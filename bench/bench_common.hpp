// Shared helpers for the experiment binaries (E1-E11 in DESIGN.md).
//
// Every bench prints:
//   * a header naming the paper claim it reproduces,
//   * one or more tables of measured rows,
//   * SHAPE-CHECK verdict lines ("[pass]"/"[FAIL]") that summarize whether
//     the measurement matches the claim's shape.
// Exit code is 0 even on shape failures (so `for b in bench/*; do $b; done`
// runs everything); verdicts are for the human/EXPERIMENTS.md.
//
// When the environment variable EMIS_BENCH_JSON names a file, Footer()
// additionally writes everything Banner/Verdict/RecordSweep saw as an
// "emis-bench-report/1" JSON document (see obs/report.hpp for the schema),
// which CI validates with `emis_cli validate-report`.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/report.hpp"
#include "verify/experiment.hpp"
#include "verify/parallel.hpp"
#include "verify/stats.hpp"

namespace emis::bench {

inline int g_failures = 0;
inline std::string g_bench_id;
inline std::string g_bench_claim;
inline obs::JsonValue g_verdicts = obs::JsonValue::MakeArray();
inline obs::JsonValue g_sweeps = obs::JsonValue::MakeArray();

/// Bench-wide metrics: RunTimedSweep merges every sweep's worker shards into
/// this registry (unless the config routes them elsewhere), and Footer()
/// serializes it as the bench report's required "metrics" sub-document —
/// chan.live_edges / graph.compactions and the rest of the scheduler's
/// telemetry accumulate across the whole binary.
inline obs::MetricsRegistry& Metrics() {
  static obs::MetricsRegistry registry;
  return registry;
}

inline void Banner(const std::string& id, const std::string& claim) {
  g_bench_id = id;
  g_bench_claim = claim;
  std::printf("==============================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void Verdict(bool ok, const std::string& what) {
  std::printf("SHAPE-CHECK [%s] %s\n", ok ? "pass" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
  obs::JsonValue entry = obs::JsonValue::MakeObject();
  entry.Set("what", what);
  entry.Set("ok", ok);
  g_verdicts.Push(std::move(entry));
}

/// Worker count for the benches' trial fan-out: EMIS_BENCH_JOBS when set
/// (0 or 1 forces the serial path), else every hardware thread. Sweep
/// statistics are bit-identical at any value — only wall-clock changes.
inline unsigned Jobs() {
  const char* env = std::getenv("EMIS_BENCH_JOBS");
  if (env != nullptr && env[0] != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed < 1 ? 1 : static_cast<unsigned>(parsed);
  }
  return par::DefaultJobs();
}

/// Channel resolution override for the benches' sweeps: the value of
/// EMIS_BENCH_RESOLUTION (auto|push|pull) when set, else the config's own.
/// A cost knob only — sweep points are bit-identical in every mode.
inline ChannelResolution Resolution(ChannelResolution fallback) {
  const char* env = std::getenv("EMIS_BENCH_RESOLUTION");
  if (env == nullptr || env[0] == '\0') return fallback;
  const ChannelResolution r = ChannelResolutionFromString(env);
  EMIS_REQUIRE(r != kInvalidChannelResolution,
               std::string("EMIS_BENCH_RESOLUTION must be auto, push or pull"
                           " (got '") + env + "')");
  return r;
}

/// Execution-engine override for the benches' sweeps: the value of
/// EMIS_BENCH_ENGINE (coroutine|flat) when set, else the config's own. A
/// cost knob only — sweep points are bit-identical under either engine
/// (pinned by test_flat_engine.cpp).
inline ExecutionEngine Engine(ExecutionEngine fallback) {
  const char* env = std::getenv("EMIS_BENCH_ENGINE");
  if (env == nullptr || env[0] == '\0') return fallback;
  const ExecutionEngine e = ExecutionEngineFromString(env);
  EMIS_REQUIRE(e != kInvalidExecutionEngine,
               std::string("EMIS_BENCH_ENGINE must be coroutine or flat"
                           " (got '") + env + "')");
  return e;
}

/// Residual-compaction override for the benches' sweeps: the value of
/// EMIS_BENCH_COMPACTION (on|off) when set, else the config's own. A cost
/// knob only — sweep points are bit-identical on or off.
inline bool Compaction(bool fallback) {
  const char* env = std::getenv("EMIS_BENCH_COMPACTION");
  if (env == nullptr || env[0] == '\0') return fallback;
  const std::string text(env);
  EMIS_REQUIRE(text == "on" || text == "off",
               "EMIS_BENCH_COMPACTION must be on or off (got '" + text + "')");
  return text == "on";
}

/// Registry injected into sweeps that did not bring their own: the
/// process-global Metrics() (feeding the BENCH_*.json "metrics" block)
/// unless EMIS_BENCH_METRICS=off, which returns null so perf-sensitive legs
/// run with scheduler instrumentation fully disabled — the pre-PR-5
/// measurement condition. Receptions and sweep points are identical either
/// way; only timer/counter overhead changes (see EXPERIMENTS.md,
/// "Measurement conditions").
inline obs::MetricsRegistry* BenchMetrics() {
  const char* env = std::getenv("EMIS_BENCH_METRICS");
  if (env == nullptr || env[0] == '\0') return &Metrics();
  const std::string text(env);
  EMIS_REQUIRE(text == "on" || text == "off",
               "EMIS_BENCH_METRICS must be on or off (got '" + text + "')");
  return text == "on" ? &Metrics() : nullptr;
}

/// A sweep's points plus how they were computed (jobs, wall-clock).
struct TimedSweep {
  std::vector<SweepPoint> points;
  SweepRunInfo info;
};

/// Runs the sweep's trials across Jobs() threads, honouring the
/// EMIS_BENCH_RESOLUTION override. The returned points are bit-identical to
/// RunSweep(cfg)'s serial output (see experiment.hpp).
inline TimedSweep RunTimedSweep(const SweepConfig& cfg) {
  TimedSweep out;
  SweepConfig directed = cfg;
  directed.resolution = Resolution(cfg.resolution);
  directed.compaction = Compaction(cfg.compaction);
  directed.engine = Engine(cfg.engine);
  if (directed.metrics == nullptr) directed.metrics = BenchMetrics();
  out.points = RunSweep(directed, Jobs(), &out.info);
  return out;
}

/// Saves a sweep's aggregate columns for the JSON artifact. Call once per
/// rendered table; a no-op for the human-readable output.
inline void RecordSweep(const std::string& title,
                        const std::vector<SweepPoint>& points) {
  g_sweeps.Push(BuildSweepJson(title, points));
}

/// TimedSweep variant: the artifact row additionally carries "jobs" and
/// "wall_seconds", so BENCH_*.json tracks the speedup trajectory.
inline void RecordSweep(const std::string& title, const TimedSweep& sweep) {
  g_sweeps.Push(BuildSweepJson(title, sweep.points, &sweep.info));
}

inline void Footer() {
  if (g_failures == 0) {
    std::printf("\nAll shape checks passed.\n");
  } else {
    std::printf("\n%d shape check(s) FAILED.\n", g_failures);
  }
  const char* json_path = std::getenv("EMIS_BENCH_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    obs::JsonValue doc = obs::JsonValue::MakeObject();
    doc.Set("schema", obs::kBenchReportSchema);
    doc.Set("bench", g_bench_id);
    doc.Set("claim", g_bench_claim);
    doc.Set("failures", static_cast<std::int64_t>(g_failures));
    doc.Set("verdicts", std::move(g_verdicts));
    doc.Set("sweeps", std::move(g_sweeps));
    doc.Set("metrics", obs::BuildMetricsJson(Metrics()));
    obs::JsonValue alloc = obs::JsonValue::MakeObject();
    alloc.Set("peak_rss_bytes", obs::PeakRssBytes());
    doc.Set("alloc", std::move(alloc));
    std::ofstream out(json_path);
    if (out.good()) {
      out << doc.Dump(2) << '\n';
      std::printf("wrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "cannot write EMIS_BENCH_JSON=%s\n", json_path);
    }
  }
}

/// Sum of failures across all sweep points (invalid MIS outputs).
inline std::uint32_t TotalFailures(const std::vector<SweepPoint>& points) {
  std::uint32_t f = 0;
  for (const auto& p : points) f += p.failures;
  return f;
}

}  // namespace emis::bench
