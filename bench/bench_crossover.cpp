// E13 — where the crossovers fall.
//
// Two crossovers the theory predicts and a practitioner would ask about:
//   1. Algorithm 2 vs the Davies-profile baseline (worst-case energy, Δ
//      unknown): Alg2 pays fixed overheads (deep checks, LowDegreeMIS) for
//      its log log n listen windows, so it loses at small n and wins once
//      log Δ_est = log n outgrows log(κ log n). We chart the ratio as n
//      grows and report the first size where Alg2 wins.
//   2. CD Algorithm 1 vs wired-CONGEST Luby (energy cost of the radio
//      constraint): never crosses — the radio algorithm pays a constant
//      factor over Luby's 2-awake-rounds-per-phase at every size.
#include "bench_common.hpp"

#include "baselines/luby_congest.hpp"

namespace emis {
namespace {

double MeanMax(MisAlgorithm alg, const Graph& g, std::uint32_t seeds) {
  Summary s;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    MisRunConfig cfg{.algorithm = alg, .seed = seed};
    cfg.delta_estimate = g.NumNodes();
    const auto r = RunMis(g, cfg);
    s.Add(static_cast<double>(r.energy.MaxAwake()));
  }
  return s.mean;
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E13  bench_crossover",
                "Crossover sizes: Algorithm 2 overtakes the Davies-profile "
                "baseline once its loglog-width listens beat log n-width "
                "listens; the CD algorithm tracks wired Luby at a constant "
                "factor.");

  // Crossover 1: Alg2 vs Davies-profile (Δ unknown).
  {
    Table table({"n", "Alg2 max energy", "Davies-profile max energy", "ratio"});
    NodeId crossover = 0;
    const std::uint32_t kSeeds = 4;
    for (NodeId n : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
      Rng rng(n * 3 + 1);
      const Graph g = families::SparseErdosRenyi(8.0)(n, rng);
      const double ours = MeanMax(MisAlgorithm::kNoCd, g, kSeeds);
      const double davies = MeanMax(MisAlgorithm::kNoCdDaviesProfile, g, kSeeds);
      table.AddRow({std::to_string(n), Fmt(ours, 0), Fmt(davies, 0),
                    Fmt(ours / davies, 2)});
      if (crossover == 0 && ours < davies) crossover = n;
    }
    std::printf("%s", table.Render("G(n, 8/n), Δ unknown (= n), 4 seeds").c_str());
    if (crossover != 0) {
      std::printf("first size where Algorithm 2 wins: n = %u\n\n", crossover);
    } else {
      std::printf("Algorithm 2 did not overtake within the sweep\n\n");
    }
    bench::Verdict(crossover != 0 && crossover <= 2048,
                   "Alg2 overtakes the Davies profile within laptop scale "
                   "(crossover at n = " + std::to_string(crossover) + ")");
  }

  // Crossover 2 (non-crossover): CD radio vs wired CONGEST Luby.
  {
    Table table({"n", "Alg1 (radio CD) max energy", "Luby (wired) max energy",
                 "radio / wired"});
    bool bounded = true;
    for (NodeId n : {128u, 512u, 2048u, 8192u}) {
      Rng rng(n * 7 + 5);
      const Graph g = families::SparseErdosRenyi(8.0)(n, rng);
      const double radio = MeanMax(MisAlgorithm::kCd, g, 4);
      Summary wired;
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        wired.Add(static_cast<double>(LubyCongest(g, seed).energy.MaxAwake()));
      }
      const double ratio = radio / wired.mean;
      table.AddRow({std::to_string(n), Fmt(radio, 1), Fmt(wired.mean, 1),
                    Fmt(ratio, 2)});
      bounded = bounded && ratio < 20.0;
    }
    std::printf("%s\n", table.Render("the price of collisions (both O(log n))").c_str());
    bench::Verdict(bounded,
                   "radio CD energy stays within a constant factor of wired "
                   "Luby at every size (both are Θ(log n))");
  }
  bench::Footer();
  return 0;
}
