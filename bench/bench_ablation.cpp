// E10 — ablations of Algorithm 2's design choices (paper §5.1).
//
// Each variant disables one energy-saving mechanism:
//   * no-commit-shrink: committed nodes keep the full Δ listen window
//     (commit_degree = Δ) — undoes §5.1.1's budgeting;
//   * deep-shallow:     the end-of-phase shallow check uses C′ log n
//     repetitions instead of 1 — undoes §5.1.2's "give up on reliable
//     notification";
//   * traditional-low-degree: LowDegreeMIS runs with always-awake Decay
//     backoffs instead of Algorithm 4.
// Expected: every ablation costs energy; correctness is unaffected.
#include "bench_common.hpp"

namespace emis {
namespace {

struct Variant {
  std::string name;
  std::function<void(MisRunConfig&, const Graph&)> apply;
};

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E10  bench_ablation",
                "§5.1: each of Algorithm 2's energy devices (commit window "
                "shrink, shallow checks, energy-efficient backoffs in "
                "LowDegreeMIS) pays for itself.");

  const NodeId n = 1024;
  const std::uint32_t kSeeds = 3;
  auto factory = families::SparseErdosRenyi(8.0);

  const Variant variants[] = {
      {"baseline (Algorithm 2)", [](MisRunConfig&, const Graph&) {}},
      {"no commit shrink",
       [n](MisRunConfig& cfg, const Graph& g) {
         cfg.nocd_params = DeriveNoCdParams(g, cfg);
         cfg.nocd_params->commit_degree = n;  // min(Δ, κ log n) never shrinks
       }},
      {"deep shallow checks",
       [](MisRunConfig& cfg, const Graph& g) {
         cfg.nocd_params = DeriveNoCdParams(g, cfg);
         cfg.nocd_params->shallow_reps = cfg.nocd_params->deep_reps;
       }},
      {"traditional LowDegreeMIS",
       [](MisRunConfig& cfg, const Graph& g) {
         cfg.nocd_params = DeriveNoCdParams(g, cfg);
         cfg.nocd_params->low_degree.style = BackoffStyle::kTraditional;
       }},
  };

  Table table({"variant", "max energy(avg)", "avg energy(avg)", "rounds(avg)", "ok"});
  std::vector<double> max_energy(std::size(variants), 0.0);
  std::vector<double> avg_energy(std::size(variants), 0.0);
  bool all_valid = true;
  for (std::size_t v = 0; v < std::size(variants); ++v) {
    Summary max_e, avg_e, rounds;
    std::uint32_t ok = 0;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 17 + 3);
      const Graph g = factory(n, rng);
      MisRunConfig cfg{.algorithm = MisAlgorithm::kNoCd, .seed = seed};
      cfg.delta_estimate = n;  // unknown-Δ regime, where the devices matter
      variants[v].apply(cfg, g);
      const auto r = RunMis(g, cfg);
      ok += r.Valid() ? 1 : 0;
      max_e.Add(static_cast<double>(r.energy.MaxAwake()));
      avg_e.Add(r.energy.AverageAwake());
      rounds.Add(static_cast<double>(r.stats.rounds_used));
    }
    max_energy[v] = max_e.mean;
    avg_energy[v] = avg_e.mean;
    all_valid = all_valid && ok == kSeeds;
    table.AddRow({variants[v].name, Fmt(max_e.mean, 0), Fmt(avg_e.mean, 1),
                  Fmt(rounds.mean, 0),
                  std::to_string(ok) + "/" + std::to_string(kSeeds)});
  }
  std::printf("%s\n",
              table.Render("n = 1024, G(n, 8/n), Δ unknown, 3 seeds").c_str());

  bench::Verdict(all_valid, "every variant still computes a valid MIS");
  bench::Verdict(max_energy[1] > max_energy[0],
                 "removing the commit window shrink raises worst-case energy (" +
                     Fmt(max_energy[0], 0) + " -> " + Fmt(max_energy[1], 0) + ")");
  bench::Verdict(avg_energy[2] > avg_energy[0],
                 "reliable (deep) shallow checks raise average energy (" +
                     Fmt(avg_energy[0], 1) + " -> " + Fmt(avg_energy[2], 1) + ")");
  bench::Verdict(avg_energy[3] > avg_energy[0],
                 "traditional backoffs in LowDegreeMIS raise average energy (" +
                     Fmt(avg_energy[0], 1) + " -> " + Fmt(avg_energy[3], 1) + ")");

  // ---- §6 open-question probe: cheap Bitty backoffs ------------------------
  // The paper asks whether no-CD rounds can improve while preserving energy.
  // In the backoff-simulated engine, per-bit reliability is the round
  // driver; a both-win failure needs every differing rank bit missed, i.e.
  // ~miss^Θ(log n) even for small per-bit k. Chart reliability vs rounds.
  {
    const NodeId kN = 256;
    std::printf("\n");
    Table t2({"bitty_reps k_b", "rounds(avg)", "max energy(avg)", "valid"});
    const std::uint32_t kSweepSeeds = 10;
    double full_rounds = 0;
    std::uint32_t valid_at_4 = 0;
    for (std::uint32_t kb : {0u /*=reps*/, 8u, 4u, 2u, 1u}) {
      Summary rounds, energy;
      std::uint32_t valid = 0;
      for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
        Rng rng(seed * 7 + 2);
        const Graph g = families::SparseErdosRenyi(8.0)(kN, rng);
        MisRunConfig cfg{.algorithm = MisAlgorithm::kNoCdDaviesProfile,
                         .seed = seed};
        SimCdParams p = DeriveSimParams(g, cfg);
        p.bitty_reps = kb;
        cfg.sim_params = p;
        const auto r = RunMis(g, cfg);
        valid += r.Valid() ? 1 : 0;
        rounds.Add(static_cast<double>(r.stats.rounds_used));
        energy.Add(static_cast<double>(r.energy.MaxAwake()));
      }
      if (kb == 0) full_rounds = rounds.mean;
      if (kb == 4) valid_at_4 = valid;
      t2.AddRow({kb == 0 ? "C' log n (faithful)" : std::to_string(kb),
                 Fmt(rounds.mean, 0), Fmt(energy.mean, 0),
                 std::to_string(valid) + "/" + std::to_string(kSweepSeeds)});
      if (kb == 4) {
        bench::Verdict(rounds.mean * 3 < full_rounds,
                       "k_b = 4 cuts rounds >3x vs the faithful protocol");
      }
    }
    std::printf("%s", t2.Render("§6 probe: Bitty-phase backoff iterations "
                                "(simulated-Alg1 engine, n = 256)").c_str());
    bench::Verdict(valid_at_4 >= 9,
                   "k_b = 4 keeps >=90% of runs valid (rank-difference "
                   "redundancy at work)");
  }
  bench::Footer();
  return 0;
}
