// E7 — residual-graph decay per Luby phase (Lemma 5 and Lemma 20).
//
// CD (Lemma 5):  E[|E_i|] <= |E_{i-1}| / 2, residual = undecided nodes.
// no-CD (Lemma 20): E[|E_i|] <= (63/64) |E_{i-1}|, residual = nodes with
// status != out-MIS (MIS nodes stay in the residual graph by Definition 18).
//
// We run the schedulers phase by phase (RunUntil at phase boundaries),
// snapshot statuses, and report the measured per-phase shrink factors.
#include "bench_common.hpp"

#include "core/mis_cd.hpp"
#include "core/mis_nocd.hpp"
#include "core/runner.hpp"
#include "radio/scheduler.hpp"

namespace emis {
namespace {

std::uint64_t ResidualEdges(const Graph& g, const std::vector<MisStatus>& status,
                            bool exclude_in_mis) {
  std::uint64_t edges = 0;
  for (const Edge& e : g.EdgeList()) {
    const bool u_in = exclude_in_mis ? status[e.u] == MisStatus::kUndecided
                                     : status[e.u] != MisStatus::kOutMis;
    const bool v_in = exclude_in_mis ? status[e.v] == MisStatus::kUndecided
                                     : status[e.v] != MisStatus::kOutMis;
    edges += (u_in && v_in) ? 1 : 0;
  }
  return edges;
}

/// Runs one CD run phase-by-phase; returns the per-phase edge ratios.
std::vector<double> CdDecay(const Graph& g, std::uint64_t seed) {
  const CdParams params = CdParams::Practical(g.NumNodes());
  std::vector<MisStatus> status(g.NumNodes(), MisStatus::kUndecided);
  Scheduler sched(g, {.model = ChannelModel::kCd}, seed);
  sched.Spawn(MisCdProtocol(params, &status));
  std::vector<double> ratios;
  std::uint64_t prev = g.NumEdges();
  for (std::uint32_t phase = 1; phase <= params.luby_phases && prev > 0; ++phase) {
    sched.RunUntil(static_cast<Round>(phase) * params.PhaseRounds());
    const std::uint64_t cur = ResidualEdges(g, status, /*exclude_in_mis=*/true);
    ratios.push_back(static_cast<double>(cur) / static_cast<double>(prev));
    prev = cur;
  }
  return ratios;
}

std::vector<double> NoCdDecay(const Graph& g, std::uint64_t seed) {
  const NoCdParams params =
      NoCdParams::Practical(g.NumNodes(), std::max(1u, g.MaxDegree()));
  const NoCdSchedule sched_info = NoCdSchedule::Of(params);
  std::vector<MisStatus> status(g.NumNodes(), MisStatus::kUndecided);
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, seed);
  sched.Spawn(MisNoCdProtocol(params, &status));
  std::vector<double> ratios;
  std::uint64_t prev = g.NumEdges();
  for (std::uint32_t phase = 1; phase <= params.luby_phases && prev > 0; ++phase) {
    sched.RunUntil(static_cast<Round>(phase) * sched_info.phase);
    const std::uint64_t cur = ResidualEdges(g, status, /*exclude_in_mis=*/false);
    ratios.push_back(static_cast<double>(cur) / static_cast<double>(prev));
    prev = cur;
  }
  return ratios;
}

void Report(const std::string& title, const std::vector<Summary>& by_phase,
            double bound, const std::string& bound_name) {
  Table table({"phase", "mean |E_i|/|E_{i-1}|", "max", "samples"});
  for (std::size_t i = 0; i < by_phase.size(); ++i) {
    if (by_phase[i].count == 0) continue;
    table.AddRow({std::to_string(i + 1), Fmt(by_phase[i].mean, 3),
                  Fmt(by_phase[i].max, 3), std::to_string(by_phase[i].count)});
  }
  std::printf("%s", table.Render(title).c_str());
  // The lemma bounds the expectation; verify the aggregate mean of phase-1
  // (all samples present, no survivor bias) against the bound with slack.
  bench::Verdict(!by_phase.empty() && by_phase[0].count > 0 &&
                     by_phase[0].mean <= bound,
                 title + ": mean first-phase shrink <= " + bound_name + " (" +
                     Fmt(by_phase.empty() ? 1.0 : by_phase[0].mean, 3) + ")");
  std::printf("\n");
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E7  bench_residual_decay",
                "Lemma 5: CD residual edges halve per phase in expectation. "
                "Lemma 20: no-CD residual edges shrink by >= 1/64 per phase.");

  const std::uint32_t kSeeds = 10;
  for (const auto& [name, factory] :
       {std::pair<std::string, GraphFactory>{"G(n=512, 8/n)",
                                             families::SparseErdosRenyi(8.0)},
        {"cycle n=512", [](NodeId n, Rng&) { return gen::Cycle(n); }}}) {
    std::vector<Summary> cd_phases(64), nocd_phases(64);
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 131 + 7);
      const Graph g = factory(512, rng);
      const auto cd = CdDecay(g, seed);
      for (std::size_t i = 0; i < cd.size() && i < cd_phases.size(); ++i) {
        cd_phases[i].Add(cd[i]);
      }
      const auto nocd = NoCdDecay(g, seed);
      for (std::size_t i = 0; i < nocd.size() && i < nocd_phases.size(); ++i) {
        nocd_phases[i].Add(nocd[i]);
      }
    }
    Report("CD / " + name, cd_phases, 0.5 + 0.08, "1/2 (+slack)");
    Report("no-CD / " + name, nocd_phases, 63.0 / 64.0, "63/64");
  }
  bench::Footer();
  return 0;
}
