// E17 — worst-case vs node-averaged awake complexity (paper §1.4).
//
// The related-work line started by Chatterjee-Gmyr-Pandurangan [13]
// optimizes the *node-averaged* awake complexity (O(1) for MIS in SLEEPING-
// CONGEST), while this paper (and [20, 25]) targets the *worst-case*. The
// two can diverge sharply: in Algorithm 1 the handful of eventual winners
// pay Θ(log n) while typical losers pay O(1) per phase — so the average
// sits far below the max. This bench profiles max / mean / median awake
// rounds for every algorithm in the library (plus single-hop leader
// election) and checks the max-vs-average separations the theory predicts.
#include "bench_common.hpp"

#include "apps/leader_election.hpp"
#include "baselines/luby_congest.hpp"

namespace emis {
namespace {

struct Profile {
  Summary max, avg, p50;
  std::uint32_t valid = 0, runs = 0;
};

Profile ProfileAlgorithm(MisAlgorithm alg, NodeId n, std::uint32_t seeds) {
  Profile prof;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    Rng rng(seed * 17 + n);
    const Graph g = families::SparseErdosRenyi(8.0)(n, rng);
    MisRunConfig cfg{.algorithm = alg, .seed = seed};
    if (ModelFor(alg) == ChannelModel::kNoCd) cfg.delta_estimate = n;
    const auto r = RunMis(g, cfg);
    ++prof.runs;
    prof.valid += r.Valid() ? 1 : 0;
    prof.max.Add(static_cast<double>(r.energy.MaxAwake()));
    prof.avg.Add(r.energy.AverageAwake());
    prof.p50.Add(static_cast<double>(r.energy.PercentileAwake(50)));
  }
  return prof;
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E17  bench_awake_profiles",
                "§1.4 context: worst-case vs node-averaged awake complexity "
                "across every algorithm (the [13] line optimizes the "
                "average; this paper the worst case).");

  const NodeId n = 1024;
  const std::uint32_t kSeeds = 5;
  Table table({"algorithm", "awake max", "awake mean", "awake p50", "max/mean",
               "valid"});
  double cd_ratio = 0;
  bool all_valid = true;
  for (MisAlgorithm alg :
       {MisAlgorithm::kCd, MisAlgorithm::kCdNaive, MisAlgorithm::kNoCd,
        MisAlgorithm::kNoCdDaviesProfile, MisAlgorithm::kNoCdNaive,
        MisAlgorithm::kNoCdRoundEfficient}) {
    const Profile p = ProfileAlgorithm(alg, n, kSeeds);
    const double ratio = p.max.mean / p.avg.mean;
    if (alg == MisAlgorithm::kCd) cd_ratio = ratio;
    all_valid = all_valid && p.valid == p.runs;
    table.AddRow({std::string(ToString(alg)), Fmt(p.max.mean, 1),
                  Fmt(p.avg.mean, 1), Fmt(p.p50.mean, 1), Fmt(ratio, 1),
                  std::to_string(p.valid) + "/" + std::to_string(p.runs)});
  }
  // Wired Luby reference.
  {
    Summary mx, av;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 17 + n);
      const Graph g = families::SparseErdosRenyi(8.0)(n, rng);
      const auto r = LubyCongest(g, seed);
      mx.Add(static_cast<double>(r.energy.MaxAwake()));
      av.Add(r.energy.AverageAwake());
    }
    table.AddRow({"luby (wired CONGEST)", Fmt(mx.mean, 1), Fmt(av.mean, 1), "-",
                  Fmt(mx.mean / av.mean, 1), "-"});
  }
  std::printf("%s\n", table.Render("G(1024, 8/n), Δ unknown for no-CD, " +
                                   std::to_string(kSeeds) + " seeds").c_str());

  bench::Verdict(all_valid, "every profiled run produced a valid MIS");
  bench::Verdict(cd_ratio >= 3.0,
                 "Algorithm 1: winners' Θ(log n) vs losers' O(1)/phase gives "
                 "max/mean >= 3 (" + Fmt(cd_ratio, 1) + ") — the worst-case/"
                 "node-averaged gap §1.4 discusses");

  // Single-hop leader election profile (the §1.4 problem family).
  {
    Table t2({"n", "rounds", "leader energy", "max energy", "mean energy", "valid"});
    bool le_valid = true;
    for (NodeId size : {16u, 64u, 256u}) {
      const auto r = ElectLeader(gen::Complete(size),
                                 LeaderElectionParams::Practical(size), 3);
      le_valid = le_valid && CheckLeaderElection(r).empty();
      std::uint64_t leader_energy = 0;
      for (NodeId v = 0; v < size; ++v) {
        if (r.is_leader[v]) leader_energy = r.energy.Of(v).Awake();
      }
      t2.AddRow({std::to_string(size), std::to_string(r.stats.rounds_used),
                 std::to_string(leader_energy),
                 std::to_string(r.energy.MaxAwake()),
                 Fmt(r.energy.AverageAwake(), 1),
                 CheckLeaderElection(r).empty() ? "yes" : "NO"});
    }
    std::printf("%s\n", t2.Render("single-hop leader election (CD)").c_str());
    bench::Verdict(le_valid, "leader election valid at every size");
  }
  bench::Footer();
  return 0;
}
