// E20 — residual-graph compaction: channel cost tracks live edges.
//
// The scheduler's residual overlay drops retired nodes from channel scan
// rows and compacts a CSR row in place once half its entries are dead, so
// per-round channel cost follows the *live* edge count — which the paper
// says collapses geometrically:
//   CD (Lemma 5):    E[|E_i|] <= |E_{i-1}| / 2 (residual = undecided nodes,
//                    who retire the round they decide);
//   no-CD (Lemma 20): E[|E_i|] <= (63/64)|E_{i-1}| (residual = everyone not
//                    out of the MIS: Definition 18 keeps MIS nodes, and so
//                    does the overlay — they announce until phases end).
// Legs:
//   * decay — run phase-by-phase (RunUntil at boundaries) and check that
//     the overlay's LiveEdges() equals the status-derived residual edge
//     count exactly, and that the measured shrink sits inside the lemma
//     envelopes;
//   * throughput — full RunMis at n = 2^18 (override with EMIS_BENCH_N) on
//     a degree-256 G(n,p), push-resolved (the transmitter-row scan path the
//     residual overlay shortens): compaction on must sustain >= 2x the
//     throughput of compaction off, with chan.edges_scanned showing why;
//   * trajectory — a small timed sweep recorded into the JSON artifact so
//     CI's BENCH_*.json series tracks the speedup over time.
#include <chrono>

#include "bench_common.hpp"
#include "core/mis_cd.hpp"
#include "core/mis_nocd.hpp"
#include "core/runner.hpp"
#include "radio/scheduler.hpp"

namespace emis {
namespace {

// --- decay ------------------------------------------------------------------

std::uint64_t StatusResidualEdges(const Graph& g,
                                  const std::vector<MisStatus>& status,
                                  bool exclude_in_mis) {
  std::uint64_t edges = 0;
  for (const Edge& e : g.EdgeList()) {
    const bool u_in = exclude_in_mis ? status[e.u] == MisStatus::kUndecided
                                     : status[e.u] != MisStatus::kOutMis;
    const bool v_in = exclude_in_mis ? status[e.v] == MisStatus::kUndecided
                                     : status[e.v] != MisStatus::kOutMis;
    edges += (u_in && v_in) ? 1 : 0;
  }
  return edges;
}

struct DecayRun {
  std::vector<double> ratios;     ///< per-phase |E_i| / |E_{i-1}| (live edges)
  std::uint32_t mismatches = 0;   ///< boundaries where overlay != status count
};

/// One CD run phase-by-phase, reading live edges from the scheduler's
/// residual overlay at every boundary.
DecayRun CdDecay(const Graph& g, std::uint64_t seed) {
  const CdParams params = CdParams::Practical(g.NumNodes());
  std::vector<MisStatus> status(g.NumNodes(), MisStatus::kUndecided);
  Scheduler sched(g, {.model = ChannelModel::kCd}, seed);
  sched.Spawn(MisCdProtocol(params, &status));
  DecayRun run;
  std::uint64_t prev = g.NumEdges();
  for (std::uint32_t phase = 1; phase <= params.luby_phases && prev > 0; ++phase) {
    sched.RunUntil(static_cast<Round>(phase) * params.PhaseRounds());
    const std::uint64_t live = sched.Residual()->LiveEdges();
    if (live != StatusResidualEdges(g, status, /*exclude_in_mis=*/true)) {
      ++run.mismatches;
    }
    run.ratios.push_back(static_cast<double>(live) / static_cast<double>(prev));
    prev = live;
  }
  return run;
}

DecayRun NoCdDecay(const Graph& g, std::uint64_t seed) {
  const NoCdParams params =
      NoCdParams::Practical(g.NumNodes(), std::max(1u, g.MaxDegree()));
  const NoCdSchedule sched_info = NoCdSchedule::Of(params);
  std::vector<MisStatus> status(g.NumNodes(), MisStatus::kUndecided);
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, seed);
  sched.Spawn(MisNoCdProtocol(params, &status));
  DecayRun run;
  std::uint64_t prev = g.NumEdges();
  for (std::uint32_t phase = 1; phase <= params.luby_phases && prev > 0; ++phase) {
    sched.RunUntil(static_cast<Round>(phase) * sched_info.phase);
    const std::uint64_t live = sched.Residual()->LiveEdges();
    if (live != StatusResidualEdges(g, status, /*exclude_in_mis=*/false)) {
      ++run.mismatches;
    }
    run.ratios.push_back(static_cast<double>(live) / static_cast<double>(prev));
    prev = live;
  }
  return run;
}

void CheckDecay() {
  const std::uint32_t kSeeds = 10;
  std::vector<Summary> cd_phases(64), nocd_phases(64);
  std::uint32_t mismatches = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed * 977 + 5);
    const Graph g = families::SparseErdosRenyi(8.0)(512, rng);
    const DecayRun cd = CdDecay(g, seed);
    mismatches += cd.mismatches;
    for (std::size_t i = 0; i < cd.ratios.size() && i < cd_phases.size(); ++i) {
      cd_phases[i].Add(cd.ratios[i]);
    }
    const DecayRun nocd = NoCdDecay(g, seed);
    mismatches += nocd.mismatches;
    for (std::size_t i = 0; i < nocd.ratios.size() && i < nocd_phases.size(); ++i) {
      nocd_phases[i].Add(nocd.ratios[i]);
    }
  }

  Table table({"phase", "CD mean live shrink", "no-CD mean live shrink"});
  for (std::size_t i = 0; i < 6; ++i) {
    if (cd_phases[i].count == 0 && nocd_phases[i].count == 0) break;
    table.AddRow({std::to_string(i + 1),
                  cd_phases[i].count > 0 ? Fmt(cd_phases[i].mean, 3) : "-",
                  nocd_phases[i].count > 0 ? Fmt(nocd_phases[i].mean, 3) : "-"});
  }
  std::printf("%s", table.Render("live-edge decay per phase, G(512, 8/n), " +
                                 std::to_string(kSeeds) + " seeds").c_str());

  bench::Verdict(mismatches == 0,
                 "overlay LiveEdges() equals the status-derived residual "
                 "edge count at every phase boundary");
  bench::Verdict(cd_phases[0].count > 0 && cd_phases[0].mean <= 0.5 + 0.08,
                 "CD: mean first-phase live-edge shrink <= 1/2 (+slack), "
                 "Lemma 5 (" + Fmt(cd_phases[0].mean, 3) + ")");
  bench::Verdict(nocd_phases[0].count > 0 && nocd_phases[0].mean <= 63.0 / 64.0,
                 "no-CD: mean first-phase live-edge shrink <= 63/64, "
                 "Lemma 20 (" + Fmt(nocd_phases[0].mean, 3) + ")");
  std::printf("\n");
}

// --- throughput -------------------------------------------------------------

struct TimedRun {
  double seconds = 0.0;
  Round rounds = 0;
  std::uint64_t edges_scanned = 0;
};

TimedRun RunOnce(const Graph& g, MisAlgorithm algorithm, bool compaction) {
  obs::MetricsRegistry metrics;
  MisRunConfig cfg;
  cfg.algorithm = algorithm;
  cfg.seed = 1;
  cfg.compaction = compaction;
  // Forced push isolates the transmitter-row scan (AddTransmitter walks the
  // sender's CSR row every transmission) — the path where dead seed entries
  // cost the most. Auto resolution is the product default, but its per-round
  // direction choice dodges part of the dead-row cost on its own, which
  // would make this a benchmark of two optimizations at once.
  cfg.resolution = ChannelResolution::kPush;
  cfg.metrics = &metrics;
  const auto start = std::chrono::steady_clock::now();
  const MisRunResult r = RunMis(g, cfg);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EMIS_REQUIRE(r.Valid(), "throughput run must produce a valid MIS");
  return {elapsed.count(), r.stats.rounds_used,
          metrics.GetCounter("chan.edges_scanned").Value()};
}

void CheckThroughput() {
  // EMIS_BENCH_N overrides the node count (smoke runs); the 2x claim is
  // calibrated at the default n = 2^18 with average degree 256, where a
  // full off-side run takes minutes — single timed runs there (minutes of
  // wall clock dwarf timer noise), best-of-3 at smoke sizes.
  NodeId n = 1u << 18;
  if (const char* env = std::getenv("EMIS_BENCH_N");
      env != nullptr && env[0] != '\0') {
    n = static_cast<NodeId>(std::strtoul(env, nullptr, 10));
  }
  MisAlgorithm algorithm = MisAlgorithm::kNoCd;
  if (const char* env = std::getenv("EMIS_BENCH_ALG");
      env != nullptr && env[0] != '\0') {
    algorithm = std::string_view(env) == "cd" ? MisAlgorithm::kCd
                                              : MisAlgorithm::kNoCd;
  }
  Rng rng(42);
  const Graph g = gen::ErdosRenyi(n, 256.0 / static_cast<double>(n), rng);

  const int repeats = n >= (1u << 17) ? 1 : 3;
  TimedRun on = RunOnce(g, algorithm, true);
  TimedRun off = RunOnce(g, algorithm, false);
  for (int i = 1; i < repeats; ++i) {
    const TimedRun on2 = RunOnce(g, algorithm, true);
    if (on2.seconds < on.seconds) on = on2;
    const TimedRun off2 = RunOnce(g, algorithm, false);
    if (off2.seconds < off.seconds) off = off2;
  }
  EMIS_REQUIRE(on.rounds == off.rounds && on.rounds > 0,
               "compaction must not change the round count");

  const double on_rps = static_cast<double>(on.rounds) / on.seconds;
  const double off_rps = static_cast<double>(off.rounds) / off.seconds;
  const double ratio = off.seconds / on.seconds;
  Table table({"compaction", "wall s (best of " + std::to_string(repeats) + ")",
               "rounds/s", "edges scanned"});
  table.AddRow({"on", Fmt(on.seconds, 3), Fmt(on_rps, 0),
                std::to_string(on.edges_scanned)});
  table.AddRow({"off", Fmt(off.seconds, 3), Fmt(off_rps, 0),
                std::to_string(off.edges_scanned)});
  std::printf("%s",
              table.Render("RunMis(" + std::string(ToString(algorithm)) +
                           ", push) on G(n=" + std::to_string(n) +
                           ", 256/n), compaction on vs off").c_str());
  if (n >= (1u << 18)) {
    bench::Verdict(ratio >= 2.0,
                   "compaction sustains >= 2x RunMis throughput at n=" +
                       std::to_string(n) + " (measured " + Fmt(ratio, 2) + "x)");
  } else {
    // The 2x claim is about asymptotic scan dominance; at smoke sizes the
    // per-wake scheduler overhead (degree-independent) dilutes it.
    std::printf("  [info] 2x verdict applies at n >= 2^18 (smoke n=%u "
                "measured %sx)\n",
                n, Fmt(ratio, 2).c_str());
  }
  bench::Verdict(on.edges_scanned < off.edges_scanned,
                 "compaction scans fewer channel edges (" +
                     std::to_string(on.edges_scanned) + " vs " +
                     std::to_string(off.edges_scanned) + ")");
  std::printf("\n");
}

// --- trajectory sweep -------------------------------------------------------

void RecordTrajectory() {
  SweepConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.factory = families::SparseErdosRenyi(32.0);
  cfg.sizes = {1024, 4096};
  cfg.seeds_per_size = 3;
  const bench::TimedSweep sweep = bench::RunTimedSweep(cfg);
  bench::RecordSweep("cd / G(n, 32/n) timed sweep (compaction knob via "
                     "EMIS_BENCH_COMPACTION)",
                     sweep);
  bench::Verdict(bench::TotalFailures(sweep.points) == 0,
                 "trajectory sweep produced valid MIS outputs at every point");
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E20 bench_residual_compaction",
                "Engineering on Lemma 5 / Lemma 20: per-round channel cost "
                "tracks live edges — the residual overlay's edge count decays "
                "inside the lemma envelopes and buys >= 2x RunMis throughput "
                "on dense graphs.");
  CheckDecay();
  CheckThroughput();
  RecordTrajectory();
  bench::Footer();
  return 0;
}
