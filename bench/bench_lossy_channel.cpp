// E15 — beyond the model: per-link fading and repetition coding.
//
// The paper's channel is reliable; real radios fade. We sweep a per-link
// per-round erasure probability p and measure the failure rate of
// Algorithm 1, then harden it with R-fold repetition coding (a library
// extension: every logical round is repeated R times, degrading effective
// loss to p^R at Rx energy cost). The experiment charts the
// reliability-energy trade-off a deployment would tune.
#include "bench_common.hpp"

#include "core/runner.hpp"

namespace emis {
namespace {

struct Cell {
  double failure_rate = 0.0;
  double max_energy = 0.0;
};

Cell Measure(const Graph& g, double loss, std::uint32_t repetitions,
             std::uint32_t trials) {
  Cell cell;
  Summary energy;
  std::uint32_t failures = 0;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    MisRunConfig cfg{.algorithm = MisAlgorithm::kCd, .seed = seed,
                     .link_loss = loss};
    cfg.cd_params = CdParams::Practical(g.NumNodes());
    cfg.cd_params->repetitions = repetitions;
    const auto r = RunMis(g, cfg);
    failures += r.Valid() ? 0 : 1;
    energy.Add(static_cast<double>(r.energy.MaxAwake()));
  }
  cell.failure_rate = static_cast<double>(failures) / trials;
  cell.max_energy = energy.mean;
  return cell;
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E15  bench_lossy_channel",
                "Extension: Algorithm 1 under per-link fading, with and "
                "without R-fold repetition coding (loss p -> p^R at Rx "
                "energy).");

  Rng rng(5);
  const Graph g = gen::ErdosRenyi(256, 8.0 / 256, rng);
  const std::uint32_t kTrials = 20;

  Table table({"link loss p", "R=1 fail", "R=2 fail", "R=4 fail", "R=8 fail",
               "R=8 energy"});
  double r1_fail_at_03 = 0, r8_fail_at_03 = 0;
  double reliable_fail = 0;
  for (double loss : {0.0, 0.1, 0.2, 0.3, 0.5}) {
    const Cell c1 = Measure(g, loss, 1, kTrials);
    const Cell c2 = Measure(g, loss, 2, kTrials);
    const Cell c4 = Measure(g, loss, 4, kTrials);
    const Cell c8 = Measure(g, loss, 8, kTrials);
    if (loss == 0.0) reliable_fail = c1.failure_rate;
    if (loss == 0.3) {
      r1_fail_at_03 = c1.failure_rate;
      r8_fail_at_03 = c8.failure_rate;
    }
    table.AddRow({Fmt(loss, 1), Fmt(c1.failure_rate, 2), Fmt(c2.failure_rate, 2),
                  Fmt(c4.failure_rate, 2), Fmt(c8.failure_rate, 2),
                  Fmt(c8.max_energy, 0)});
  }
  std::printf("%s\n", table.Render("G(256, 8/n), " + std::to_string(kTrials) +
                                   " trials per cell").c_str());
  std::printf(
      "note: repetition cannot reach zero failures — an Algorithm 1 winner\n"
      "announces once and terminates silently, so one missed check round is\n"
      "permanent. Algorithm 2's per-phase re-announcements are the\n"
      "structural fix; here we chart the repetition-only trade-off.\n\n");

  bench::Verdict(reliable_fail == 0.0, "reliable channel (p=0): no failures");
  bench::Verdict(r1_fail_at_03 > 0.5,
                 "p=0.3 breaks the unhardened protocol (failure rate " +
                     Fmt(r1_fail_at_03, 2) + ")");
  bench::Verdict(r8_fail_at_03 <= 0.25 && r8_fail_at_03 < r1_fail_at_03,
                 "R=8 repetition coding sharply reduces failures at p=0.3 (" +
                     Fmt(r1_fail_at_03, 2) + " -> " + Fmt(r8_fail_at_03, 2) + ")");
  bench::Footer();
  return 0;
}
