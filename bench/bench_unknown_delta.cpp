// E12 — the unknown-Δ doubling scheme (paper §1.1 footnote).
//
// The paper: guessing Δ = 2^(2^i) costs an O(log log n) factor in energy
// and O(1) factor in rounds over the known-Δ run. (The O(1) round factor
// relies on T_L being dominated by log Δ_guess terms, which sum
// geometrically; our LowDegreeMIS substitution makes T_G guess-independent
// and repeated per epoch, so the measured round factor here is Θ(#epochs) —
// see DESIGN.md §5.) We measure both factors and the correctness of the
// scheme on graphs where early guesses are badly wrong.
#include "bench_common.hpp"

#include "core/delta_doubling.hpp"

namespace emis {
namespace {

struct Point {
  Summary energy, rounds;
  std::uint32_t failures = 0;
};

Point Measure(MisAlgorithm alg, const Graph& g, std::uint32_t seeds,
              bool delta_known) {
  Point p;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    MisRunConfig cfg{.algorithm = alg, .seed = seed};
    if (!delta_known) cfg.delta_estimate = g.NumNodes();
    const auto r = RunMis(g, cfg);
    p.failures += r.Valid() ? 0 : 1;
    p.energy.Add(static_cast<double>(r.energy.MaxAwake()));
    p.rounds.Add(static_cast<double>(r.stats.rounds_used));
  }
  return p;
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E12  bench_unknown_delta",
                "§1.1: with Δ unknown, guessing 2^(2^i) + verification costs "
                "an O(log log n) energy factor over the known-Δ run.");

  const std::uint32_t kSeeds = 3;
  Table table({"n", "Δ", "epochs", "known-Δ energy", "Δ=n energy", "doubling energy",
               "energy factor", "rounds factor", "ok"});
  bool all_valid = true;
  bool factor_ok = true;
  for (NodeId n : {128u, 256u, 512u}) {
    Rng rng(n);
    const Graph g = families::SparseErdosRenyi(8.0)(n, rng);
    const Point known = Measure(MisAlgorithm::kNoCd, g, kSeeds, true);
    const Point flat = Measure(MisAlgorithm::kNoCd, g, kSeeds, false);
    const Point doubling = Measure(MisAlgorithm::kNoCdUnknownDelta, g, kSeeds, true);
    const auto epochs = DeltaDoublingParams::Practical(n).Guesses().size();
    const double e_factor = doubling.energy.mean / known.energy.mean;
    const double r_factor = doubling.rounds.mean / known.rounds.mean;
    table.AddRow({std::to_string(n), std::to_string(g.MaxDegree()),
                  std::to_string(epochs), Fmt(known.energy.mean, 0),
                  Fmt(flat.energy.mean, 0), Fmt(doubling.energy.mean, 0),
                  Fmt(e_factor, 2), Fmt(r_factor, 2),
                  std::to_string(3 * kSeeds - known.failures - flat.failures -
                                 doubling.failures) +
                      "/" + std::to_string(3 * kSeeds)});
    all_valid = all_valid && known.failures + flat.failures + doubling.failures == 0;
    // O(log log n)-factor energy: epochs ~ log log n; allow 2x headroom.
    factor_ok = factor_ok && e_factor <= 2.0 * static_cast<double>(epochs);
  }
  std::printf("%s\n", table.Render("G(n, 8/n), 3 seeds per cell").c_str());
  bench::Verdict(all_valid, "all runs valid (including badly-wrong early guesses)");
  bench::Verdict(factor_ok, "doubling energy factor <= 2 * #epochs ~ O(log log n)");

  // Dense graphs: early guesses are maximally wrong (Δ near n) — the
  // verification machinery must do real work.
  {
    Table t2({"graph", "Δ", "valid runs", "doubling energy", "known-Δ energy"});
    bool dense_ok = true;
    for (const auto& [name, g] :
         {std::pair<std::string, Graph>{"complete n=48", gen::Complete(48)},
          {"star n=128", gen::Star(128)}}) {
      const Point known = Measure(MisAlgorithm::kNoCd, g, kSeeds, true);
      const Point doubling =
          Measure(MisAlgorithm::kNoCdUnknownDelta, g, kSeeds, true);
      t2.AddRow({name, std::to_string(g.MaxDegree()),
                 std::to_string(2 * kSeeds - known.failures - doubling.failures) +
                     "/" + std::to_string(2 * kSeeds),
                 Fmt(doubling.energy.mean, 0), Fmt(known.energy.mean, 0)});
      dense_ok = dense_ok && known.failures + doubling.failures == 0;
    }
    std::printf("%s\n", t2.Render("adversarially dense topologies").c_str());
    bench::Verdict(dense_ok, "verification repairs all wrong-guess damage on "
                             "dense graphs");
  }
  bench::Footer();
  return 0;
}
