// E16 — the application layer built on the paper's MIS (its §1 motivation):
// backbone clustering and iterated-MIS (Δ+1)-coloring, measured for
// correctness, color count, and energy scaling.
#include "bench_common.hpp"

#include <algorithm>

#include "apps/backbone.hpp"
#include "apps/broadcast.hpp"
#include "apps/coloring.hpp"

namespace emis {
namespace {

void BackboneSweep() {
  Table table({"n", "Δ(avg)", "heads(avg)", "affiliated", "max energy(avg)",
               "valid"});
  bool all_valid = true;
  std::vector<double> ns, energies;
  for (NodeId n : {128u, 512u, 2048u, 8192u}) {
    Summary heads, energy, delta;
    std::uint32_t valid = 0, affiliated_all = 0;
    const std::uint32_t kSeeds = 5;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 97 + n);
      const Graph g = families::UnitDisk(8.0)(n, rng);
      const BackboneParams p = BackboneParams::Practical(n, g.MaxDegree());
      const BackboneResult r = BuildBackbone(g, p, seed);
      valid += CheckBackbone(g, r).empty() ? 1 : 0;
      affiliated_all += r.NumAffiliated() == g.NumNodes() ? 1 : 0;
      heads.Add(static_cast<double>(r.NumHeads()));
      energy.Add(static_cast<double>(r.energy.MaxAwake()));
      delta.Add(static_cast<double>(g.MaxDegree()));
    }
    table.AddRow({std::to_string(n), Fmt(delta.mean, 1), Fmt(heads.mean, 1),
                  std::to_string(affiliated_all) + "/" + std::to_string(kSeeds),
                  Fmt(energy.mean, 1),
                  std::to_string(valid) + "/" + std::to_string(kSeeds)});
    all_valid = all_valid && valid == kSeeds && affiliated_all == kSeeds;
    ns.push_back(static_cast<double>(n));
    energies.push_back(energy.mean);
  }
  std::printf("%s", table.Render("backbone on unit-disk fields (avg deg 8)").c_str());
  const double k = BestPolylogExponent(ns, energies,
                                       std::vector<double>{1.0, 2.0, 3.0});
  std::printf("backbone energy best-fit exponent: (log n)^%.0f\n\n", k);
  bench::Verdict(all_valid, "backbone: every run valid, every node affiliated");
  bench::Verdict(k <= 2.0, "backbone energy polylogarithmic (MIS + announce)");
}

void ColoringSweep() {
  Table table({"graph", "Δ", "colors used", "Δ+1", "max energy(avg)", "proper"});
  bool all_proper = true, all_within = true;
  for (const auto& [name, factory] :
       {std::pair<std::string, GraphFactory>{
            "regular d=6", [](NodeId n, Rng& rng) { return gen::NearRegular(n, 6, rng); }},
        {"G(n, 8/n)", families::SparseErdosRenyi(8.0)},
        {"unit disk", families::UnitDisk(8.0)}}) {
    for (NodeId n : {128u, 512u}) {
      Summary colors, energy;
      std::uint32_t proper = 0, within = 0, delta_max = 0;
      const std::uint32_t kSeeds = 5;
      for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        Rng rng(seed * 131 + n);
        const Graph g = factory(n, rng);
        const ColoringParams p = ColoringParams::Practical(n, g.MaxDegree());
        const ColoringResult r = ColorGraph(g, p, seed);
        proper += CheckColoring(g, r, p.max_colors).empty() ? 1 : 0;
        within += r.colors_used <= g.MaxDegree() + 1 ? 1 : 0;
        colors.Add(static_cast<double>(r.colors_used));
        energy.Add(static_cast<double>(r.energy.MaxAwake()));
        delta_max = std::max(delta_max, g.MaxDegree());
      }
      table.AddRow({name + " n=" + std::to_string(n), std::to_string(delta_max),
                    Fmt(colors.mean, 1), std::to_string(delta_max + 1),
                    Fmt(energy.mean, 0),
                    std::to_string(proper) + "/" + std::to_string(kSeeds)});
      all_proper = all_proper && proper == kSeeds;
      all_within = all_within && within == kSeeds;
    }
  }
  std::printf("%s\n", table.Render("iterated-MIS coloring").c_str());
  bench::Verdict(all_proper, "coloring: every run proper and fully colored");
  bench::Verdict(all_within, "coloring: colors_used <= Δ+1 on every run");
}

void BroadcastSweep() {
  Table table({"n", "D2 colors", "informed", "latency (rounds)", "max energy",
               "transmits/node"});
  bool all_informed = true, single_tx = true;
  for (NodeId n : {64u, 256u, 1024u}) {
    Rng rng(n + 5);
    Graph g = families::UnitDisk(10.0)(n, rng);
    // Keep only the giant component reachable from node 0 for a clean
    // "everyone informed" statement.
    std::vector<std::uint32_t> comp;
    g.ConnectedComponents(comp);
    std::vector<NodeId> keep;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (comp[v] == comp[0]) keep.push_back(v);
    }
    const Graph giant = g.Induced(keep).graph;
    const auto d2 = GreedyDistanceTwoColoring(giant);
    const auto colors = 1 + *std::max_element(d2.begin(), d2.end());
    const auto r = FloodBroadcast(giant, 0, 1, d2);
    all_informed = all_informed && r.AllInformed();
    Round latest = 0;
    std::uint64_t max_tx = 0;
    for (NodeId v = 0; v < giant.NumNodes(); ++v) {
      if (r.informed_at[v] != kForever) latest = std::max(latest, r.informed_at[v]);
      max_tx = std::max(max_tx, r.energy.Of(v).transmit_rounds);
    }
    single_tx = single_tx && max_tx <= 1;
    table.AddRow({std::to_string(giant.NumNodes()), std::to_string(colors),
                  r.AllInformed() ? "all" : "NOT ALL", std::to_string(latest),
                  std::to_string(r.energy.MaxAwake()), std::to_string(max_tx)});
  }
  std::printf("%s\n", table.Render("deterministic TDMA flooding (giant "
                                   "component of unit-disk fields)").c_str());
  bench::Verdict(all_informed, "broadcast: every reachable node informed, "
                               "deterministically, zero collisions");
  bench::Verdict(single_tx, "broadcast: every node transmits at most once");
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E16  bench_apps",
                "§1 motivation: the MIS as a building block — backbone "
                "clustering and (Δ+1)-coloring over the CD radio channel, "
                "energy-aware end to end.");
  BackboneSweep();
  ColoringSweep();
  BroadcastSweep();
  bench::Footer();
  return 0;
}
