// E1 — CD-model energy complexity (Theorem 2 vs the §1.3 naive baseline).
//
// Sweeps n over three topology families and reports the worst-case energy
// (max awake rounds over nodes) of Algorithm 1 against the naive Luby radio
// implementation. Expected shape: Algorithm 1 grows like log n, the naive
// baseline like log² n, so the efficient/naive ratio widens with n.
#include "bench_common.hpp"

namespace emis {
namespace {

void RunFamily(const std::string& name, GraphFactory factory) {
  const std::vector<NodeId> sizes = {64, 128, 256, 512, 1024, 2048, 4096, 8192};
  SweepConfig cfg;
  cfg.factory = std::move(factory);
  cfg.sizes = sizes;
  cfg.seeds_per_size = 10;

  cfg.algorithm = MisAlgorithm::kCd;
  const bench::TimedSweep efficient_sweep = bench::RunTimedSweep(cfg);
  cfg.algorithm = MisAlgorithm::kCdNaive;
  const bench::TimedSweep naive_sweep = bench::RunTimedSweep(cfg);
  const auto& efficient = efficient_sweep.points;
  const auto& naive = naive_sweep.points;
  bench::RecordSweep(name + " / cd", efficient_sweep);
  bench::RecordSweep(name + " / cd-naive-luby", naive_sweep);

  Table table({"n", "log2 n", "Alg1 energy", "naive energy", "ratio",
               "Alg1 energy/log n", "naive energy/log^2 n", "ok"});
  for (std::size_t i = 0; i < efficient.size(); ++i) {
    const double log_n = std::log2(static_cast<double>(sizes[i]));
    table.AddRow({std::to_string(sizes[i]), Fmt(log_n, 0),
                  Fmt(efficient[i].max_energy.mean, 1),
                  Fmt(naive[i].max_energy.mean, 1),
                  Fmt(naive[i].max_energy.mean / efficient[i].max_energy.mean, 2),
                  Fmt(efficient[i].max_energy.mean / log_n, 2),
                  Fmt(naive[i].max_energy.mean / (log_n * log_n), 2),
                  std::to_string(efficient[i].runs - efficient[i].failures) + "+" +
                      std::to_string(naive[i].runs - naive[i].failures) + "/" +
                      std::to_string(efficient[i].runs + naive[i].runs)});
  }
  std::printf("%s", table.Render("family: " + name).c_str());

  const auto n_axis = Sizes(efficient);
  const std::vector<double> candidates = {1.0, 2.0, 3.0};
  const double k_eff = BestPolylogExponent(n_axis, MeanMaxEnergy(efficient), candidates);
  const double k_naive = BestPolylogExponent(n_axis, MeanMaxEnergy(naive), candidates);
  std::printf("best-fit exponents: Alg1 (log n)^%.0f, naive (log n)^%.0f\n", k_eff,
              k_naive);
  std::printf("note: the naive baseline's log^2 n term has a small constant "
              "(max phases survived grows as ~log n / log(1/c) with c << 1/2), "
              "so at these n the separation shows as a widening ratio rather "
              "than a clean exponent-2 fit; see EXPERIMENTS.md.\n\n");

  bench::Verdict(bench::TotalFailures(efficient) == 0,
                 name + ": Algorithm 1 always produced a valid MIS");
  bench::Verdict(bench::TotalFailures(naive) == 0,
                 name + ": naive baseline always produced a valid MIS");
  bench::Verdict(k_eff <= 1.0, name + ": Algorithm 1 energy fits (log n)^1");
  const double first_ratio = naive.front().max_energy.mean /
                             efficient.front().max_energy.mean;
  const double last_ratio = naive.back().max_energy.mean /
                            efficient.back().max_energy.mean;
  bench::Verdict(last_ratio >= 1.3,
                 name + ": naive baseline clearly hungrier at largest n (ratio " +
                     Fmt(last_ratio, 2) + ")");
  bench::Verdict(last_ratio > first_ratio - 0.1,
                 name + ": naive/Alg1 ratio widens with n (" +
                     Fmt(first_ratio, 2) + " -> " + Fmt(last_ratio, 2) + ")");
  std::printf("\n");
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E1  bench_cd_energy",
                "Theorem 2: MIS in the CD model with O(log n) energy; the "
                "straightforward Luby implementation needs Theta(log^2 n).");
  RunFamily("sparse G(n, 8/n)", families::SparseErdosRenyi(8.0));
  RunFamily("unit disk (avg deg 8)", families::UnitDisk(8.0));
  RunFamily("star", families::StarFamily());
  // Cycles maximize per-node phase survival (no high-degree winner clears a
  // neighborhood), stressing the naive baseline's log^2 n term.
  RunFamily("cycle", [](NodeId n, Rng&) { return gen::Cycle(n); });
  bench::Footer();
  return 0;
}
