// E6 — the energy-efficient backoff procedures (Algorithm 4, Lemmas 8-9).
//
// On a star with d sender leaves and one receiver hub:
//   * Lemma 8: Snd-EBackoff(k, Δ) is awake exactly k rounds; Rec-EBackoff
//     awake O(k log Δ_est); both take k * (⌈log Δ⌉ + 1) rounds.
//   * Lemma 9: the receiver detects w.p. >= 1 - (7/8)^k.
// The sender/receiver asymmetry (column snd/rec energy) is the lever behind
// Algorithm 2's budgeting.
#include "bench_common.hpp"

#include "core/backoff.hpp"
#include "radio/scheduler.hpp"

namespace emis {
namespace {

struct Outcome {
  bool heard = false;
  std::uint64_t rec_energy = 0;
  std::uint64_t snd_energy = 0;
  Round duration = 0;
};

proc::Task<void> Hub(NodeApi api, std::uint32_t k, std::uint32_t delta, Outcome* out) {
  const Round start = api.Now();
  out->heard = co_await RecEBackoff(api, k, delta, delta);
  out->duration = api.Now() - start;
}

proc::Task<void> Leaf(NodeApi api, std::uint32_t k, std::uint32_t delta) {
  co_await SndEBackoff(api, k, delta);
}

Outcome RunOnce(std::uint32_t senders, std::uint32_t k, std::uint32_t delta,
                std::uint64_t seed) {
  const Graph g = gen::Star(senders + 1);
  Scheduler sched(g, {.model = ChannelModel::kNoCd}, seed);
  Outcome out;
  sched.Spawn([&](NodeApi api) -> proc::Task<void> {
    if (api.Id() == 0) return Hub(api, k, delta, &out);
    return Leaf(api, k, delta);
  });
  sched.Run();
  out.rec_energy = sched.Energy().Of(0).Awake();
  out.snd_energy = senders > 0 ? sched.Energy().Of(1).Awake() : 0;
  return out;
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E6  bench_backoff",
                "Lemmas 8-9: k-repeated energy-efficient backoff — sender "
                "awake k rounds, receiver O(k log Δ_est), detection "
                ">= 1 - (7/8)^k.");

  const std::uint32_t kDelta = 64;
  const std::uint32_t kTrials = 400;

  Table table({"k", "senders d", "detect rate", "1-(7/8)^k", "snd energy",
               "rec energy(avg)", "rounds"});
  bool detection_ok = true;
  bool sender_energy_ok = true;
  bool duration_ok = true;
  for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    for (std::uint32_t d : {1u, 4u, 16u, 64u}) {
      std::uint32_t detected = 0;
      double rec_energy = 0;
      std::uint64_t snd_energy = 0;
      Round duration = 0;
      for (std::uint32_t t = 0; t < kTrials; ++t) {
        const Outcome out =
            RunOnce(d, k, kDelta, 10'000 + k * 1000 + d * 37 + t);
        detected += out.heard;
        rec_energy += static_cast<double>(out.rec_energy);
        snd_energy = out.snd_energy;
        duration = out.duration;
      }
      const double rate = static_cast<double>(detected) / kTrials;
      const double lemma = 1.0 - std::pow(7.0 / 8.0, static_cast<double>(k));
      table.AddRow({std::to_string(k), std::to_string(d), Fmt(rate, 3),
                    Fmt(lemma, 3), std::to_string(snd_energy),
                    Fmt(rec_energy / kTrials, 1), std::to_string(duration)});
      // Allow a small empirical slack below the Lemma 9 bound.
      detection_ok = detection_ok && rate >= lemma - 0.06;
      sender_energy_ok = sender_energy_ok && snd_energy == k;
      duration_ok = duration_ok && duration == BackoffRounds(k, kDelta);
    }
  }
  std::printf("%s\n", table.Render("star, Δ = Δ_est = 64").c_str());

  bench::Verdict(detection_ok, "detection rate >= 1-(7/8)^k (Lemma 9) for all k, d");
  bench::Verdict(sender_energy_ok, "sender awake exactly k rounds (Lemma 8)");
  bench::Verdict(duration_ok, "backoff takes exactly k(⌈log Δ⌉+1) rounds (Lemma 8)");

  // Receiver early-sleep: with a sender present, receiver average energy must
  // be far below its no-sender budget k * window.
  {
    const std::uint32_t k = 32;
    double with_sender = 0, without = 0;
    for (std::uint32_t t = 0; t < 100; ++t) {
      with_sender += static_cast<double>(RunOnce(1, k, kDelta, 500 + t).rec_energy);
      without += static_cast<double>(RunOnce(0, k, kDelta, 900 + t).rec_energy);
    }
    with_sender /= 100;
    without /= 100;
    std::printf("receiver energy, k=32: no sender %.1f (budget %llu), one sender %.1f\n",
                without,
                static_cast<unsigned long long>(BackoffRounds(k, kDelta)),
                with_sender);
    bench::Verdict(without == static_cast<double>(k * BackoffWindow(kDelta)),
                   "silent receiver exhausts exactly its k log Δ_est budget");
    bench::Verdict(with_sender * 3 < without,
                   "receiver sleeps after hearing: >3x cheaper with a sender");
  }

  // Δ_est shrink: the commit mechanism's lever — receiver listens only
  // ⌈log Δ_est⌉+1 rounds per iteration.
  {
    Table t2({"Δ_est", "rec energy (no sender)", "window"});
    for (std::uint32_t est : {2u, 8u, 64u}) {
      const Graph g = gen::Star(1);
      Scheduler sched(g, {.model = ChannelModel::kNoCd}, 7);
      std::uint64_t energy = 0;
      sched.Spawn([&](NodeApi api) -> proc::Task<void> {
        return [](NodeApi a, std::uint32_t e) -> proc::Task<void> {
          (void)co_await RecEBackoff(a, 16, 64, e);
        }(api, est);
      });
      sched.Run();
      energy = sched.Energy().Of(0).Awake();
      t2.AddRow({std::to_string(est), std::to_string(energy),
                 std::to_string(BackoffWindow(est))});
    }
    std::printf("%s", t2.Render("Δ_est shrink (k=16, Δ=64)").c_str());
  }
  bench::Footer();
  return 0;
}
