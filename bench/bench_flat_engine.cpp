// E21 — flat execution engine: batched state machines vs coroutine resumes.
//
// Both engines run the same protocols against the same Channel and RNG
// streams, so every observable (trace, energy, metrics, MIS) is
// bit-identical (pinned by test_flat_engine.cpp); the only thing that may
// change is wall clock. Legs:
//   * equivalence — re-assert the contract in-bench at smoke size, including
//     the chan.edges_scanned cross-check: identical scan work proves the
//     speedup is pure dispatch, not a different (cheaper) round schedule;
//   * throughput — full RunMis at n = 2^20 (override with EMIS_BENCH_N) on
//     a degree-256 G(n,p), push accounting, compaction on: the flat engine
//     must sustain >= 1.8x coroutine throughput at the calibrated size
//     (measured ~2x: adaptive physical resolution + the AVX2 word-scan
//     kernel cut channel time ~3x, and the SoA lanes cut resume time; what
//     remains is random-access memory latency both engines share, which is
//     why the original 5x target proved unreachable — see DESIGN.md 12.2);
//     >= 1.15x at CI smoke sizes (n >= 2^14, where the working set still
//     fits in cache, both engines are dispatch-bound, and the flat
//     engine's advantage is smallest — measured ~1.3x);
//   * crossover — an n sweep (degree 64) timing both engines per size, the
//     EXPERIMENTS.md E21 table: flat's advantage must grow with n (the
//     coroutine engine pays per-frame cache misses that the SoA sweep
//     amortizes); EMIS_BENCH_SWEEP_MAX_N raises the largest size (2^24 is
//     feasible: ~8 GB of CSR at degree 64);
//   * working set (E23) — flat-engine RunMis at n in {2^18, 2^20, 2^22}
//     (cap via EMIS_BENCH_E23_MAX_N) on the degree-256 family, recording
//     the mem.* residency gauges per size: the hot context the resume loop
//     streams must stay >= 30% below the pre-split 128 B/node monolith
//     (DESIGN.md 12.2, EXPERIMENTS.md E23);
//   * trajectory — a timed sweep recorded into the JSON artifact (engine
//     via EMIS_BENCH_ENGINE) so CI's BENCH_*.json series tracks the engine
//     ratio over time.
#include <chrono>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"

namespace emis {
namespace {

struct TimedRun {
  double seconds = 0.0;
  Round rounds = 0;
  std::uint64_t edges_scanned = 0;
  std::uint64_t total_awake = 0;
  std::size_t mis_size = 0;
  // mem.* residency gauges sampled at RunUntil exit (bytes, whole run).
  double hot_bytes = 0.0;
  double cold_bytes = 0.0;
  double lane_bytes = 0.0;
};

TimedRun RunOnce(const Graph& g, MisAlgorithm algorithm, ExecutionEngine engine,
                 std::uint64_t seed) {
  obs::MetricsRegistry metrics;
  MisRunConfig cfg;
  cfg.algorithm = algorithm;
  cfg.seed = seed;
  cfg.engine = engine;
  // Forced push pins the *accounted* schedule (chan.* metrics) for both
  // engines; the flat engine may still physically resolve via the cheaper
  // batched scan (Scheduler::PhysicalDirection), which is exactly the
  // engineering the bench is measuring. Matches the committed-artifact
  // condition.
  cfg.resolution = ChannelResolution::kPush;
  cfg.metrics = &metrics;
  const auto start = std::chrono::steady_clock::now();
  const MisRunResult r = RunMis(g, cfg);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EMIS_REQUIRE(r.Valid(), "bench run must produce a valid MIS");
  return {elapsed.count(), r.stats.rounds_used,
          metrics.GetCounter("chan.edges_scanned").Value(),
          r.energy.TotalAwake(), r.MisSize(),
          metrics.GetGauge("mem.context_hot_bytes").Value(),
          metrics.GetGauge("mem.context_cold_bytes").Value(),
          metrics.GetGauge("mem.lane_bytes").Value()};
}

// --- equivalence ------------------------------------------------------------

void CheckEquivalence() {
  Rng rng(7);
  const Graph g = gen::ErdosRenyi(4096, 64.0 / 4096.0, rng);
  std::uint32_t mismatches = 0;
  for (const MisAlgorithm alg : {MisAlgorithm::kCd, MisAlgorithm::kNoCd,
                                 MisAlgorithm::kNoCdRoundEfficient}) {
    const TimedRun coro = RunOnce(g, alg, ExecutionEngine::kCoroutine, 11);
    const TimedRun flat = RunOnce(g, alg, ExecutionEngine::kFlat, 11);
    if (coro.rounds != flat.rounds || coro.mis_size != flat.mis_size ||
        coro.total_awake != flat.total_awake ||
        coro.edges_scanned != flat.edges_scanned) {
      ++mismatches;
      std::printf("  [mismatch] %s: rounds %llu/%llu awake %llu/%llu "
                  "edges %llu/%llu\n",
                  std::string(ToString(alg)).c_str(),
                  static_cast<unsigned long long>(coro.rounds),
                  static_cast<unsigned long long>(flat.rounds),
                  static_cast<unsigned long long>(coro.total_awake),
                  static_cast<unsigned long long>(flat.total_awake),
                  static_cast<unsigned long long>(coro.edges_scanned),
                  static_cast<unsigned long long>(flat.edges_scanned));
    }
  }
  bench::Verdict(mismatches == 0,
                 "engines agree on rounds, MIS size, awake rounds, and "
                 "chan.edges_scanned (cd, nocd, round-efficient)");
  std::printf("\n");
}

// --- throughput -------------------------------------------------------------

void CheckThroughput() {
  // EMIS_BENCH_N overrides the node count for smoke runs. The 1.8x floor
  // is calibrated at the default n = 2^20 with average degree 256 (the
  // committed-artifact condition; measured ~2x); at CI smoke sizes
  // (n >= 2^14) the floor is 1.15x (measured ~1.3x there), below that the
  // verdict is informational.
  NodeId n = 1u << 20;
  if (const char* env = std::getenv("EMIS_BENCH_N");
      env != nullptr && env[0] != '\0') {
    n = static_cast<NodeId>(std::strtoul(env, nullptr, 10));
  }
  MisAlgorithm algorithm = MisAlgorithm::kCd;
  if (const char* env = std::getenv("EMIS_BENCH_ALG");
      env != nullptr && env[0] != '\0') {
    algorithm = std::string_view(env) == "nocd" ? MisAlgorithm::kNoCd
                                                : MisAlgorithm::kCd;
  }
  Rng rng(42);
  const Graph g = gen::ErdosRenyi(n, 256.0 / static_cast<double>(n), rng);

  const int repeats = n >= (1u << 18) ? 1 : 3;
  TimedRun coro = RunOnce(g, algorithm, ExecutionEngine::kCoroutine, 1);
  TimedRun flat = RunOnce(g, algorithm, ExecutionEngine::kFlat, 1);
  for (int i = 1; i < repeats; ++i) {
    const TimedRun c2 = RunOnce(g, algorithm, ExecutionEngine::kCoroutine, 1);
    if (c2.seconds < coro.seconds) coro = c2;
    const TimedRun f2 = RunOnce(g, algorithm, ExecutionEngine::kFlat, 1);
    if (f2.seconds < flat.seconds) flat = f2;
  }
  EMIS_REQUIRE(coro.rounds == flat.rounds && coro.rounds > 0,
               "engines must agree on the round count");

  const double coro_rps = static_cast<double>(coro.rounds) / coro.seconds;
  const double flat_rps = static_cast<double>(flat.rounds) / flat.seconds;
  const double speedup = coro.seconds / flat.seconds;
  Table table({"engine", "wall s (best of " + std::to_string(repeats) + ")",
               "rounds/s", "edges scanned"});
  table.AddRow({"coroutine", Fmt(coro.seconds, 3), Fmt(coro_rps, 0),
                std::to_string(coro.edges_scanned)});
  table.AddRow({"flat", Fmt(flat.seconds, 3), Fmt(flat_rps, 0),
                std::to_string(flat.edges_scanned)});
  std::printf("%s",
              table.Render("RunMis(" + std::string(ToString(algorithm)) +
                           ", push) on G(n=" + std::to_string(n) +
                           ", 256/n), coroutine vs flat").c_str());
  bench::Metrics().GetGauge("flat.speedup_x").Set(speedup);
  bench::Metrics().GetGauge("flat.coroutine_seconds").Set(coro.seconds);
  bench::Metrics().GetGauge("flat.flat_seconds").Set(flat.seconds);
  bench::Metrics().GetGauge("flat.bench_n").Set(static_cast<double>(n));
  bench::Verdict(coro.edges_scanned == flat.edges_scanned,
                 "edges-scanned cross-check: both engines scanned " +
                     std::to_string(flat.edges_scanned) + " channel edges");
  if (n >= (1u << 20)) {
    bench::Verdict(speedup >= 1.8,
                   "flat engine sustains >= 1.8x RunMis throughput at n=" +
                       std::to_string(n) + " (measured " + Fmt(speedup, 2) +
                       "x)");
  } else if (n >= (1u << 14)) {
    bench::Verdict(speedup >= 1.15,
                   "flat engine sustains >= 1.15x RunMis throughput at smoke "
                   "n=" + std::to_string(n) + " (measured " + Fmt(speedup, 2) +
                       "x)");
  } else {
    // Below 2^14 the fixed costs (graph build, params) dilute the ratio.
    std::printf("  [info] throughput floor applies at n >= 2^14 (smoke n=%u "
                "measured %sx)\n",
                n, Fmt(speedup, 2).c_str());
  }
  std::printf("\n");
}

// --- crossover sweep --------------------------------------------------------

void CheckCrossover() {
  NodeId max_n = 1u << 16;
  if (const char* env = std::getenv("EMIS_BENCH_SWEEP_MAX_N");
      env != nullptr && env[0] != '\0') {
    max_n = static_cast<NodeId>(std::strtoul(env, nullptr, 10));
  }
  std::vector<NodeId> sizes;
  for (NodeId n = 1u << 12; n <= max_n; n <<= 2) sizes.push_back(n);
  if (sizes.empty()) sizes.push_back(max_n);

  Table table({"n", "coroutine s", "flat s", "speedup"});
  std::vector<double> speedups;
  for (const NodeId n : sizes) {
    Rng rng(9);
    const Graph g = gen::ErdosRenyi(n, 64.0 / static_cast<double>(n), rng);
    const TimedRun coro = RunOnce(g, MisAlgorithm::kCd,
                                  ExecutionEngine::kCoroutine, 3);
    const TimedRun flat = RunOnce(g, MisAlgorithm::kCd,
                                  ExecutionEngine::kFlat, 3);
    const double speedup = coro.seconds / flat.seconds;
    speedups.push_back(speedup);
    table.AddRow({std::to_string(n), Fmt(coro.seconds, 3),
                  Fmt(flat.seconds, 3), Fmt(speedup, 2) + "x"});
  }
  std::printf("%s", table.Render("E21 engine crossover: RunMis(cd, push) on "
                                 "G(n, 64/n) per engine").c_str());
  bench::Verdict(speedups.back() >= 1.0,
                 "flat engine is at least as fast as coroutine at the "
                 "largest swept n (" + Fmt(speedups.back(), 2) + "x)");
  bench::Verdict(speedups.back() >= speedups.front(),
                 "flat advantage does not shrink as n grows (" +
                     Fmt(speedups.front(), 2) + "x -> " +
                     Fmt(speedups.back(), 2) + "x)");
  std::printf("\n");
}

// --- E23 working-set trajectory ---------------------------------------------

void CheckWorkingSet() {
  // Flat-engine RunMis throughput as the per-node state scales past the
  // LLC: n in {2^18, 2^20, 2^22} on the degree-256 family (the same
  // condition as the throughput leg). The residency half of the leg is the
  // point: the resume loop streams sizeof(HotNodeContext) = 16 bytes plus
  // the protocol lane per node and round; before the hot/cold split it
  // dragged the full 128-byte NodeContext monolith through cache on every
  // resume. EMIS_BENCH_E23_MAX_N caps the largest size — the default 2^18
  // keeps smoke runs quick; the committed BENCH_flat_engine_n22.json
  // artifact is produced with the full 2^22 (about 12 GB peak RSS for the
  // degree-256 CSR).
  NodeId max_n = 1u << 18;
  if (const char* env = std::getenv("EMIS_BENCH_E23_MAX_N");
      env != nullptr && env[0] != '\0') {
    max_n = static_cast<NodeId>(std::strtoul(env, nullptr, 10));
  }
  // Pre-split per-node context footprint (the former NodeContext monolith).
  // The floor is calibrated to the measured layout: the 16-byte hot half is
  // an 87.5% cut, so requiring >= 75% (hot <= 0.25x monolith) leaves 2x
  // headroom while still failing loudly if half the cold fields creep back
  // into the hot array. (EXPERIMENTS.md E23's original acceptance bar was
  // a 30% cut; the verdict pins the recalibrated, tighter floor.)
  constexpr double kMonolithBytesPerNode = 128.0;
  Table table({"n", "flat s", "rounds/s", "hot B/node", "cold B/node",
               "lane B/node"});
  bool residency_ok = true;
  for (NodeId n = 1u << 18; n <= max_n; n <<= 2) {
    Rng rng(42);
    const Graph g = gen::ErdosRenyi(n, 256.0 / static_cast<double>(n), rng);
    const TimedRun flat = RunOnce(g, MisAlgorithm::kCd,
                                  ExecutionEngine::kFlat, 1);
    const double nodes = static_cast<double>(n);
    const double hot = flat.hot_bytes / nodes;
    const double cold = flat.cold_bytes / nodes;
    const double lane = flat.lane_bytes / nodes;
    residency_ok = residency_ok && hot <= 0.25 * kMonolithBytesPerNode;
    const double rps = static_cast<double>(flat.rounds) / flat.seconds;
    table.AddRow({std::to_string(n), Fmt(flat.seconds, 3), Fmt(rps, 0),
                  Fmt(hot, 0), Fmt(cold, 0), Fmt(lane, 0)});
    // log2(n) keys the gauge series so artifacts at different caps align.
    std::uint32_t log2n = 0;
    for (NodeId m = n; m > 1; m >>= 1) ++log2n;
    const std::string suffix = "_n" + std::to_string(log2n);
    bench::Metrics().GetGauge("e23.flat_seconds" + suffix).Set(flat.seconds);
    bench::Metrics().GetGauge("e23.hot_bytes" + suffix).Set(flat.hot_bytes);
    bench::Metrics().GetGauge("e23.cold_bytes" + suffix).Set(flat.cold_bytes);
    bench::Metrics().GetGauge("e23.lane_bytes" + suffix).Set(flat.lane_bytes);
  }
  std::printf("%s", table.Render("E23 working-set trajectory: RunMis(cd, "
                                 "push, flat) on G(n, 256/n) with mem.* "
                                 "residency gauges").c_str());
  bench::Verdict(residency_ok,
                 "hot context stays >= 75% below the pre-split 128 B/node "
                 "monolith at every swept size (mem.context_hot_bytes)");
  std::printf("\n");
}

// --- trajectory sweep -------------------------------------------------------

void RecordTrajectory() {
  SweepConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.factory = families::SparseErdosRenyi(32.0);
  cfg.sizes = {1024, 4096};
  cfg.seeds_per_size = 3;
  cfg.engine = ExecutionEngine::kFlat;
  const bench::TimedSweep sweep = bench::RunTimedSweep(cfg);
  bench::RecordSweep("cd / G(n, 32/n) timed sweep, flat engine (override via "
                     "EMIS_BENCH_ENGINE)",
                     sweep);
  bench::Verdict(bench::TotalFailures(sweep.points) == 0,
                 "flat-engine trajectory sweep produced valid MIS outputs at "
                 "every point");
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E21 bench_flat_engine",
                "Engineering: the flat SoA state-machine engine produces "
                "bit-identical runs to the coroutine engine and sustains "
                ">= 1.8x RunMis throughput at n = 2^20 (degree 256, push "
                "accounting).");
  CheckEquivalence();
  CheckThroughput();
  CheckCrossover();
  CheckWorkingSet();
  RecordTrajectory();
  bench::Footer();
  return 0;
}
