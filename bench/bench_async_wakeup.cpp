// E14 — what synchronous wake-up buys (paper §1.1).
//
// Algorithm 1's correctness argument leans on all nodes sharing phase
// boundaries. We stagger wake times uniformly in [0, W] and measure the
// failure probability of the output as W grows from 0 (the paper's model)
// to multiple phase lengths: the failure rate must be zero at W = 0 and
// grow with W — quantifying why the paper (like Davies'23) assumes
// synchronous starts, and what an asynchronous-wakeup MIS (Moscibroda-
// Wattenhofer line) has to defend against.
#include "bench_common.hpp"

#include "core/async_wakeup.hpp"
#include "core/mis_cd.hpp"
#include "radio/scheduler.hpp"
#include "verify/mis_checker.hpp"

namespace emis {
namespace {

double FailureRate(const Graph& g, Round window, std::uint32_t trials) {
  const CdParams params = CdParams::Practical(std::max<NodeId>(g.NumNodes(), 2));
  std::uint32_t failures = 0;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    Rng wake_rng(seed * 3 + 1);
    const std::vector<Round> wake =
        UniformWakeRounds(g.NumNodes(), window, wake_rng);
    std::vector<MisStatus> status(g.NumNodes(), MisStatus::kUndecided);
    Scheduler sched(g, {.model = ChannelModel::kCd}, seed);
    sched.Spawn(StaggeredProtocol(MisCdProtocol(params, &status), &wake));
    sched.Run();
    failures += IsValidMis(g, status) ? 0 : 1;
  }
  return static_cast<double>(failures) / trials;
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E14  bench_async_wakeup",
                "§1.1 model boundary: Algorithm 1 is exact under synchronous "
                "wake-up and degrades once wake times spread across phases.");

  const std::uint32_t kTrials = 30;
  for (const auto& [name, g] : {std::pair<std::string, Graph>{
                                    "G(256, 8/n)",
                                    [] {
                                      Rng rng(9);
                                      return gen::ErdosRenyi(256, 8.0 / 256, rng);
                                    }()},
                                {"cycle n=256", gen::Cycle(256)}}) {
    const CdParams params = CdParams::Practical(256);
    const Round phase = params.PhaseRounds();
    Table table({"wake window W", "W / phase length", "failure rate"});
    double at_zero = -1, at_phase = -1;
    for (Round window : {Round{0}, phase / 4, phase / 2, phase, 2 * phase, 8 * phase}) {
      const double rate = FailureRate(g, window, kTrials);
      if (window == 0) at_zero = rate;
      if (window == phase) at_phase = rate;
      table.AddRow({std::to_string(window),
                    Fmt(static_cast<double>(window) / static_cast<double>(phase), 2),
                    Fmt(rate, 2)});
    }
    std::printf("%s\n", table.Render(name + ", " + std::to_string(kTrials) +
                                     " trials per row").c_str());
    bench::Verdict(at_zero == 0.0, name + ": zero failures under synchronous "
                                   "wake-up (the paper's model)");
    bench::Verdict(at_phase > 0.0,
                   name + ": failures appear once wake spread reaches one "
                   "phase (" + Fmt(at_phase, 2) + ")");
  }
  bench::Footer();
  return 0;
}
