// E4 — no-CD round complexity.
//
// Theorem 10 states O(log³ n log Δ) rounds for Algorithm 2 *when its
// LowDegreeMIS subroutine is Davies' §4.2 algorithm*. This reproduction uses
// the paper's other named option — the naive simulation of Algorithm 1 —
// whose T_G window is a log-factor longer (see DESIGN.md §5), so the round
// bound we verify is the schedule C log n * T_L with the substituted T_G.
// The energy claims (E3) are unaffected by the substitution.
#include "bench_common.hpp"

#include "core/runner.hpp"

namespace emis {
namespace {

void RunFamily(const std::string& name, GraphFactory factory, bool delta_unknown,
               LowDegreeKind low_degree = LowDegreeKind::kSimulatedAlg1) {
  const std::vector<NodeId> sizes = {128, 256, 512, 1024};
  SweepConfig cfg;
  cfg.factory = std::move(factory);
  cfg.sizes = sizes;
  cfg.seeds_per_size = 3;
  cfg.delta_unknown = delta_unknown;
  cfg.algorithm = MisAlgorithm::kNoCd;
  if (low_degree == LowDegreeKind::kGhaffari) {
    cfg.tweak = [](MisRunConfig& rc, const Graph& g) {
      rc.nocd_params = DeriveNoCdParams(g, rc);
      rc.nocd_params->low_degree_kind = LowDegreeKind::kGhaffari;
    };
  }
  const bench::TimedSweep sweep = bench::RunTimedSweep(cfg);
  const auto& points = sweep.points;
  bench::RecordSweep(name + " / nocd", sweep);

  Table table({"n", "rounds(avg)", "rounds(max)", "schedule bound", "phases used(avg)",
               "ok"});
  bool within = true;
  for (const auto& p : points) {
    Graph probe;
    MisRunConfig rc{.algorithm = MisAlgorithm::kNoCd, .n_estimate = p.n};
    rc.delta_estimate = delta_unknown
                            ? p.n
                            : std::max<std::uint32_t>(
                                  1, static_cast<std::uint32_t>(p.max_degree.mean));
    NoCdParams params = DeriveNoCdParams(probe, rc);
    params.low_degree_kind = low_degree;
    const NoCdSchedule sched = NoCdSchedule::Of(params);
    const double bound =
        static_cast<double>(params.luby_phases) * static_cast<double>(sched.phase);
    within = within && p.rounds.max <= bound * 1.05;  // Δ(avg) rounding slack
    table.AddRow({std::to_string(p.n), Fmt(p.rounds.mean, 0), Fmt(p.rounds.max, 0),
                  Fmt(bound, 0),
                  Fmt(p.rounds.mean / static_cast<double>(sched.phase), 2),
                  std::to_string(p.runs - p.failures) + "/" + std::to_string(p.runs)});
  }
  std::printf("%s", table.Render("family: " + name).c_str());

  const std::vector<double> candidates = {2.0, 3.0, 4.0, 5.0};
  const double k = BestPolylogExponent(Sizes(points), MeanRounds(points), candidates);
  std::printf("best-fit exponent: rounds ~ (log n)^%.0f "
              "(paper: log^3 n log Δ with Davies' LowDegreeMIS; our T_G "
              "substitution adds ~log n — see DESIGN.md §5)\n\n", k);

  bench::Verdict(bench::TotalFailures(points) == 0,
                 name + ": all runs produced a valid MIS");
  bench::Verdict(within, name + ": rounds within the schedule bound");
  bench::Verdict(k <= 5.0, name + ": rounds polylogarithmic (no polynomial blow-up)");
  std::printf("\n");
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E4  bench_nocd_rounds",
                "Theorem 10 (round side): Algorithm 2 runs in polylog rounds; "
                "every phase follows the fixed T_L schedule.");
  RunFamily("sparse G(n, 8/n), Δ known", families::SparseErdosRenyi(8.0), false);
  RunFamily("sparse G(n, 8/n), Δ unknown (=n)", families::SparseErdosRenyi(8.0), true);
  // With the §4.2-style Ghaffari LowDegreeMIS the T_G term loses its extra
  // log factor — the schedule approaches the paper's O(log³ n log Δ).
  RunFamily("sparse G(n, 8/n), Δ known, Ghaffari LowDegreeMIS",
            families::SparseErdosRenyi(8.0), false, LowDegreeKind::kGhaffari);
  bench::Footer();
  return 0;
}
