// E22 — intra-run sharding: one giant MIS run across all cores.
//
// The flat engine's sharded round path (DESIGN.md §13) partitions every
// round's transmit/listen passes over edge-balanced node ranges on the
// persistent pool; a serial fixed-order merge keeps every observable
// bit-identical at any shard count (pinned by tests/test_sharded_run.cpp).
// Legs:
//   * equivalence — re-assert the contract in-bench at smoke size: rounds,
//     MIS size, awake totals and chan.edges_scanned all match across shard
//     counts, so any speedup is pure parallelism, not a different schedule;
//   * mmap format — pack the bench topology into emis-csr/1, map it back,
//     and measure resident-set growth: the zero-copy loader must fault in
//     a sliver of the adjacency bytes (O(1)-page validation + lazy paging),
//     and a run on the mapped graph must match the owned-graph run;
//   * scaling curve — full RunMis(cd) at n = 2^22, average degree 256
//     (override with EMIS_BENCH_N) for shards in {1, 2, 4, 8}: the
//     EXPERIMENTS.md E22 table. With >= 8 hardware threads at the
//     calibrated size, 8 shards must sustain >= 3x the single-shard RunMis
//     throughput; on narrower machines or smoke sizes the curve is
//     informational (a 1-core host cannot speed up, only stay identical).
//     Per-shard wall times land in the JSON artifact as shard.wall_s_<k>
//     gauges so CI's BENCH_*.json series tracks the curve over time.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "radio/graph_io.hpp"
#include "verify/parallel.hpp"

namespace emis {
namespace {

struct TimedRun {
  double seconds = 0.0;
  Round rounds = 0;
  std::uint64_t edges_scanned = 0;
  std::uint64_t total_awake = 0;
  std::size_t mis_size = 0;
};

TimedRun RunOnce(const Graph& g, unsigned shards, std::uint64_t seed) {
  obs::MetricsRegistry metrics;
  MisRunConfig cfg;
  cfg.algorithm = MisAlgorithm::kCd;
  cfg.seed = seed;
  cfg.engine = ExecutionEngine::kFlat;
  cfg.shards = shards;
  cfg.metrics = &metrics;
  const auto start = std::chrono::steady_clock::now();
  const MisRunResult r = RunMis(g, cfg);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EMIS_REQUIRE(r.Valid(), "bench run must produce a valid MIS");
  return {elapsed.count(), r.stats.rounds_used,
          metrics.GetCounter("chan.edges_scanned").Value(),
          r.energy.TotalAwake(), r.MisSize()};
}

NodeId BenchN() {
  NodeId n = 1u << 22;
  if (const char* env = std::getenv("EMIS_BENCH_N");
      env != nullptr && env[0] != '\0') {
    n = static_cast<NodeId>(std::strtoul(env, nullptr, 10));
  }
  return n;
}

/// Current (not peak) resident set in bytes, from /proc/self/statm. The mmap
/// leg needs a before/after delta; obs::PeakRssBytes is monotone and already
/// saturated by whatever ran earlier in the process.
std::uint64_t CurrentRssBytes() {
  std::ifstream statm("/proc/self/statm");
  std::uint64_t total_pages = 0;
  std::uint64_t resident_pages = 0;
  if (!(statm >> total_pages >> resident_pages)) return 0;
  return resident_pages * static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
}

// --- equivalence ------------------------------------------------------------

void CheckEquivalence() {
  Rng rng(7);
  const Graph g = gen::ErdosRenyi(4096, 64.0 / 4096.0, rng);
  const TimedRun reference = RunOnce(g, 1, 11);
  std::uint32_t mismatches = 0;
  for (const unsigned shards : {2u, 4u, 8u}) {
    const TimedRun sharded = RunOnce(g, shards, 11);
    if (sharded.rounds != reference.rounds ||
        sharded.mis_size != reference.mis_size ||
        sharded.total_awake != reference.total_awake ||
        sharded.edges_scanned != reference.edges_scanned) {
      ++mismatches;
      std::printf("  [mismatch] shards %u: rounds %llu/%llu awake %llu/%llu\n",
                  shards, static_cast<unsigned long long>(sharded.rounds),
                  static_cast<unsigned long long>(reference.rounds),
                  static_cast<unsigned long long>(sharded.total_awake),
                  static_cast<unsigned long long>(reference.total_awake));
    }
  }
  bench::Verdict(mismatches == 0,
                 "sharded rounds agree with single-shard on rounds, MIS size, "
                 "awake rounds and chan.edges_scanned (shards 2, 4, 8)");
  std::printf("\n");
}

// --- mmap binary format -----------------------------------------------------

void CheckMappedFormat() {
  // Big enough that lazily-paged adjacency is clearly distinguishable from
  // an eager read (tens of MB), small enough for any CI tmpdir.
  Rng rng(17);
  const NodeId n = std::min<NodeId>(BenchN(), 1u << 18);
  const Graph owned = gen::ErdosRenyi(n, 64.0 / static_cast<double>(n), rng);
  const std::uint64_t adjacency_bytes = owned.Adjacency().size() * sizeof(NodeId);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "emis_bench_sharded.csr";
  {
    std::ofstream out(path, std::ios::binary);
    EMIS_REQUIRE(out.good(), "cannot write bench .csr");
    WriteBinaryCsr(out, owned);
  }

  const std::uint64_t rss_before = CurrentRssBytes();
  const Graph mapped = MapBinaryCsr(path.string());
  // Touch only O(1) of the graph: the loader's validation plus one row.
  EMIS_REQUIRE(mapped.NumNodes() == owned.NumNodes() &&
                   mapped.NumEdges() == owned.NumEdges() &&
                   mapped.Degree(0) == owned.Degree(0),
               "mapped header must round-trip");
  const std::uint64_t rss_after = CurrentRssBytes();
  const std::uint64_t delta = rss_after > rss_before ? rss_after - rss_before : 0;

  Table table({"quantity", "bytes"});
  table.AddRow({"adjacency section", std::to_string(adjacency_bytes)});
  table.AddRow({"RSS delta at load", std::to_string(delta)});
  std::printf("%s", table.Render("emis-csr/1 mmap load, G(n=" +
                                 std::to_string(n) + ", 64/n)").c_str());
  bench::Metrics().GetGauge("csr.adjacency_bytes")
      .Set(static_cast<double>(adjacency_bytes));
  bench::Metrics().GetGauge("csr.load_rss_delta_bytes")
      .Set(static_cast<double>(delta));
  // Validation touches the header page and the two ends of the offsets
  // section; with transparent huge pages each touch can fault up to 2 MB.
  // 8 MB of slack stays an order of magnitude under the ~67 MB adjacency.
  bench::Verdict(delta < adjacency_bytes / 4 + (8u << 20),
                 "mmap load faulted " + std::to_string(delta) +
                     " bytes, far below the " +
                     std::to_string(adjacency_bytes) + "-byte adjacency");

  const TimedRun on_owned = RunOnce(owned, 4, 5);
  const TimedRun on_mapped = RunOnce(mapped, 4, 5);
  bench::Verdict(on_owned.rounds == on_mapped.rounds &&
                     on_owned.mis_size == on_mapped.mis_size &&
                     on_owned.total_awake == on_mapped.total_awake,
                 "sharded run on the mapped graph is identical to the "
                 "owned-graph run");
  std::filesystem::remove(path);
  std::printf("\n");
}

// --- scaling curve ----------------------------------------------------------

void CheckScaling() {
  const NodeId n = BenchN();
  Rng rng(42);
  const Graph g = gen::ErdosRenyi(n, 256.0 / static_cast<double>(n), rng);

  const std::vector<unsigned> shard_counts = {1, 2, 4, 8};
  std::vector<TimedRun> runs;
  Table table({"shards", "wall s", "rounds/s", "speedup"});
  for (const unsigned shards : shard_counts) {
    const TimedRun run = RunOnce(g, shards, 1);
    runs.push_back(run);
    EMIS_REQUIRE(run.rounds == runs.front().rounds &&
                     run.total_awake == runs.front().total_awake,
                 "sharded runs must be bit-identical");
    const double speedup = runs.front().seconds / run.seconds;
    table.AddRow({std::to_string(shards), Fmt(run.seconds, 3),
                  Fmt(static_cast<double>(run.rounds) / run.seconds, 0),
                  Fmt(speedup, 2) + "x"});
    bench::Metrics().GetGauge("shard.wall_s_" + std::to_string(shards))
        .Set(run.seconds);
  }
  std::printf("%s", table.Render("E22 intra-run sharding: RunMis(cd, flat) on "
                                 "G(n=" + std::to_string(n) +
                                 ", 256/n) per shard count").c_str());
  const double speedup8 = runs.front().seconds / runs.back().seconds;
  bench::Metrics().GetGauge("shard.speedup_8x").Set(speedup8);
  bench::Metrics().GetGauge("shard.bench_n").Set(static_cast<double>(n));

  const unsigned hw = par::DefaultJobs();
  if (n >= (1u << 22) && hw >= 8) {
    bench::Verdict(speedup8 >= 3.0,
                   "8 shards sustain >= 3x single-shard RunMis throughput at "
                   "n=" + std::to_string(n) + " (measured " + Fmt(speedup8, 2) +
                       "x on " + std::to_string(hw) + " hardware threads)");
  } else {
    std::printf("  [info] 3x floor applies at n >= 2^22 with >= 8 hardware "
                "threads (n=%u, %u thread(s): measured %sx)\n",
                n, hw, Fmt(speedup8, 2).c_str());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E22 bench_sharded_run",
                "Engineering: one flat-engine MIS run partitioned across all "
                "cores stays bit-identical at any shard count and sustains "
                ">= 3x RunMis throughput with 8 shards at n = 2^22 (degree "
                "256); the emis-csr/1 mmap loader faults in O(1) pages.");
  CheckEquivalence();
  CheckMappedFormat();
  CheckScaling();
  bench::Footer();
  return 0;
}
