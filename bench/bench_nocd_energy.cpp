// E3 — no-CD energy complexity (Theorem 10 vs the §1.3/§1.4 baselines).
//
// Runs in the paper's motivating regime where Δ is unknown and nodes fall
// back to Δ = n (§1.1): backoff windows are log n wide, which is exactly
// where Algorithm 2's commit mechanism (listen windows shrunk to
// log(κ log n) ≈ log log n) separates from the baselines' full log Δ = log n
// listens. Expected ordering of worst-case energy:
//     Algorithm 2  <  Davies-profile simulation  <  naive traditional.
#include "bench_common.hpp"

namespace emis {
namespace {

struct Row {
  std::vector<SweepPoint> ours, davies, naive;
};

Row RunAll(const GraphFactory& factory, const std::vector<NodeId>& sizes,
           std::uint32_t seeds) {
  SweepConfig cfg;
  cfg.factory = factory;
  cfg.sizes = sizes;
  cfg.seeds_per_size = seeds;
  cfg.delta_unknown = true;

  Row row;
  cfg.algorithm = MisAlgorithm::kNoCd;
  row.ours = bench::RunTimedSweep(cfg).points;
  cfg.algorithm = MisAlgorithm::kNoCdDaviesProfile;
  row.davies = bench::RunTimedSweep(cfg).points;
  cfg.algorithm = MisAlgorithm::kNoCdNaive;
  row.naive = bench::RunTimedSweep(cfg).points;
  return row;
}

void Report(const std::string& name, const std::vector<NodeId>& sizes, const Row& row) {
  Table table({"n", "Alg2 max", "Davies-prof max", "naive max", "Alg2 avg",
               "Davies-prof avg", "naive avg", "ok"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    table.AddRow(
        {std::to_string(sizes[i]), Fmt(row.ours[i].max_energy.mean, 0),
         Fmt(row.davies[i].max_energy.mean, 0), Fmt(row.naive[i].max_energy.mean, 0),
         Fmt(row.ours[i].avg_energy.mean, 1), Fmt(row.davies[i].avg_energy.mean, 1),
         Fmt(row.naive[i].avg_energy.mean, 1),
         std::to_string(row.ours[i].runs - row.ours[i].failures) + "+" +
             std::to_string(row.davies[i].runs - row.davies[i].failures) + "+" +
             std::to_string(row.naive[i].runs - row.naive[i].failures) + "/" +
             std::to_string(3 * row.ours[i].runs)});
  }
  std::printf("%s", table.Render("family: " + name + "  (Δ unknown → window log n)").c_str());

  const auto& last_ours = row.ours.back();
  const auto& last_davies = row.davies.back();
  const auto& last_naive = row.naive.back();
  std::printf("largest n: Alg2/Davies-profile max-energy ratio %.2f, "
              "Davies-profile/naive %.2f\n\n",
              last_ours.max_energy.mean / last_davies.max_energy.mean,
              last_davies.max_energy.mean / last_naive.max_energy.mean);

  bench::Verdict(bench::TotalFailures(row.ours) == 0,
                 name + ": Algorithm 2 always produced a valid MIS");
  bench::Verdict(bench::TotalFailures(row.davies) == 0,
                 name + ": Davies-profile baseline always valid");
  bench::Verdict(bench::TotalFailures(row.naive) == 0,
                 name + ": naive baseline always valid");
  bench::Verdict(last_ours.max_energy.mean < last_davies.max_energy.mean,
                 name + ": Alg2 max energy < Davies-profile (log log n vs log Δ "
                        "listen windows)");
  bench::Verdict(last_davies.max_energy.mean < last_naive.max_energy.mean,
                 name + ": Davies-profile < naive traditional");
  bench::Verdict(last_ours.avg_energy.mean * 1.7 < last_naive.avg_energy.mean,
                 name + ": Alg2 average energy beats naive by >1.7x");
  std::printf("\n");
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner(
      "E3  bench_nocd_energy",
      "Theorem 10: no-CD MIS with O(log^2 n loglog n) energy; the naive "
      "simulation needs O(log^4 n) and the round-efficient algorithm of "
      "Davies'23 has energy ~ its O(log^2 n log Δ / log^3 n) round bound.");

  const std::vector<NodeId> sizes = {128, 256, 512, 1024, 2048};
  {
    const auto row = RunAll(families::SparseErdosRenyi(8.0), sizes, 3);
    Report("sparse G(n, 8/n)", sizes, row);
  }
  {
    const auto row = RunAll(families::PolynomialDegreeErdosRenyi(), sizes, 3);
    Report("G(n, n^-1/2) (Δ ~ sqrt n)", sizes, row);
  }
  bench::Footer();
  return 0;
}
