// E2 — CD-model round complexity (Theorem 2: O(log² n) rounds).
//
// Reports rounds-to-completion of Algorithm 1 over a size sweep, against the
// schedule upper bound C log n * (beta log n + 1). Also reports the number
// of Luby phases actually consumed (rounds / phase length), which is the
// residual-shrinkage rate of Lemma 5 made visible.
#include "bench_common.hpp"

#include "core/runner.hpp"

namespace emis {
namespace {

void RunFamily(const std::string& name, GraphFactory factory) {
  const std::vector<NodeId> sizes = {64, 128, 256, 512, 1024, 2048, 4096, 8192};
  SweepConfig cfg;
  cfg.factory = std::move(factory);
  cfg.sizes = sizes;
  cfg.seeds_per_size = 10;
  cfg.algorithm = MisAlgorithm::kCd;
  const bench::TimedSweep sweep = bench::RunTimedSweep(cfg);
  const auto& points = sweep.points;
  bench::RecordSweep(name + " / cd", sweep);

  Table table({"n", "rounds(avg)", "rounds(max)", "schedule bound", "phases used(avg)",
               "rounds/log^2 n", "ok"});
  bool within_bound = true;
  for (const auto& p : points) {
    Graph probe;  // derive the parameter schedule for this n
    const MisRunConfig rc{.algorithm = MisAlgorithm::kCd, .n_estimate = p.n};
    const CdParams params = DeriveCdParams(probe, rc);
    const double bound = static_cast<double>(params.TotalRounds());
    const double phase_len = static_cast<double>(params.PhaseRounds());
    const double log_n = std::log2(static_cast<double>(p.n));
    within_bound = within_bound && p.rounds.max <= bound;
    table.AddRow({std::to_string(p.n), Fmt(p.rounds.mean, 0), Fmt(p.rounds.max, 0),
                  Fmt(bound, 0), Fmt(p.rounds.mean / phase_len, 2),
                  Fmt(p.rounds.mean / (log_n * log_n), 2),
                  std::to_string(p.runs - p.failures) + "/" + std::to_string(p.runs)});
  }
  std::printf("%s", table.Render("family: " + name).c_str());

  const std::vector<double> candidates = {1.0, 2.0, 3.0};
  const double k = BestPolylogExponent(Sizes(points), MeanRounds(points), candidates);
  std::printf("best-fit exponent: rounds ~ (log n)^%.0f\n\n", k);

  bench::Verdict(bench::TotalFailures(points) == 0,
                 name + ": all runs produced a valid MIS");
  bench::Verdict(within_bound, name + ": rounds never exceed the C log n * "
                               "(beta log n + 1) schedule");
  bench::Verdict(k <= 2.0, name + ": rounds fit within (log n)^2");
  std::printf("\n");
}

}  // namespace
}  // namespace emis

int main() {
  using namespace emis;
  bench::Banner("E2  bench_cd_rounds",
                "Theorem 2: Algorithm 1 finishes in O(log^2 n) rounds.");
  RunFamily("sparse G(n, 8/n)", families::SparseErdosRenyi(8.0));
  RunFamily("cycle", [](NodeId n, Rng&) { return gen::Cycle(n); });
  RunFamily("complete-bipartite n/2 x n/2",
            [](NodeId n, Rng&) { return gen::CompleteBipartite(n / 2, n - n / 2); });
  bench::Footer();
  return 0;
}
