# Empty dependencies file for test_async_wakeup.
# This may be replaced when dependencies are built.
