file(REMOVE_RECURSE
  "CMakeFiles/test_async_wakeup.dir/test_async_wakeup.cpp.o"
  "CMakeFiles/test_async_wakeup.dir/test_async_wakeup.cpp.o.d"
  "test_async_wakeup"
  "test_async_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
