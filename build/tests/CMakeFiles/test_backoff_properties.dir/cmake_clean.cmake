file(REMOVE_RECURSE
  "CMakeFiles/test_backoff_properties.dir/test_backoff_properties.cpp.o"
  "CMakeFiles/test_backoff_properties.dir/test_backoff_properties.cpp.o.d"
  "test_backoff_properties"
  "test_backoff_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backoff_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
