# Empty dependencies file for test_backoff_properties.
# This may be replaced when dependencies are built.
