# Empty dependencies file for test_mis_nocd.
# This may be replaced when dependencies are built.
