file(REMOVE_RECURSE
  "CMakeFiles/test_mis_nocd.dir/test_mis_nocd.cpp.o"
  "CMakeFiles/test_mis_nocd.dir/test_mis_nocd.cpp.o.d"
  "test_mis_nocd"
  "test_mis_nocd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mis_nocd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
