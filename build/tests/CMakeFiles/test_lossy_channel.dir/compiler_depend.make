# Empty compiler generated dependencies file for test_lossy_channel.
# This may be replaced when dependencies are built.
