file(REMOVE_RECURSE
  "CMakeFiles/test_lossy_channel.dir/test_lossy_channel.cpp.o"
  "CMakeFiles/test_lossy_channel.dir/test_lossy_channel.cpp.o.d"
  "test_lossy_channel"
  "test_lossy_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lossy_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
