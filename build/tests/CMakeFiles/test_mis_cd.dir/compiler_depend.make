# Empty compiler generated dependencies file for test_mis_cd.
# This may be replaced when dependencies are built.
