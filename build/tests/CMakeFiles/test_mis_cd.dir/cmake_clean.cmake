file(REMOVE_RECURSE
  "CMakeFiles/test_mis_cd.dir/test_mis_cd.cpp.o"
  "CMakeFiles/test_mis_cd.dir/test_mis_cd.cpp.o.d"
  "test_mis_cd"
  "test_mis_cd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mis_cd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
