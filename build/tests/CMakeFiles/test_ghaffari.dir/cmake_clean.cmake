file(REMOVE_RECURSE
  "CMakeFiles/test_ghaffari.dir/test_ghaffari.cpp.o"
  "CMakeFiles/test_ghaffari.dir/test_ghaffari.cpp.o.d"
  "test_ghaffari"
  "test_ghaffari.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ghaffari.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
