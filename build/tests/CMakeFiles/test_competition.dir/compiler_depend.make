# Empty compiler generated dependencies file for test_competition.
# This may be replaced when dependencies are built.
