file(REMOVE_RECURSE
  "CMakeFiles/test_competition.dir/test_competition.cpp.o"
  "CMakeFiles/test_competition.dir/test_competition.cpp.o.d"
  "test_competition"
  "test_competition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_competition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
