file(REMOVE_RECURSE
  "CMakeFiles/test_simulated_cd.dir/test_simulated_cd.cpp.o"
  "CMakeFiles/test_simulated_cd.dir/test_simulated_cd.cpp.o.d"
  "test_simulated_cd"
  "test_simulated_cd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulated_cd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
