# Empty dependencies file for test_simulated_cd.
# This may be replaced when dependencies are built.
