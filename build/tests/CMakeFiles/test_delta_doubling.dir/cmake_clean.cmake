file(REMOVE_RECURSE
  "CMakeFiles/test_delta_doubling.dir/test_delta_doubling.cpp.o"
  "CMakeFiles/test_delta_doubling.dir/test_delta_doubling.cpp.o.d"
  "test_delta_doubling"
  "test_delta_doubling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delta_doubling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
