file(REMOVE_RECURSE
  "CMakeFiles/test_backbone.dir/test_backbone.cpp.o"
  "CMakeFiles/test_backbone.dir/test_backbone.cpp.o.d"
  "test_backbone"
  "test_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
