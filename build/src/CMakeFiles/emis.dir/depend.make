# Empty dependencies file for emis.
# This may be replaced when dependencies are built.
