file(REMOVE_RECURSE
  "libemis.a"
)
