
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/backbone.cpp" "src/CMakeFiles/emis.dir/apps/backbone.cpp.o" "gcc" "src/CMakeFiles/emis.dir/apps/backbone.cpp.o.d"
  "/root/repo/src/apps/broadcast.cpp" "src/CMakeFiles/emis.dir/apps/broadcast.cpp.o" "gcc" "src/CMakeFiles/emis.dir/apps/broadcast.cpp.o.d"
  "/root/repo/src/apps/coloring.cpp" "src/CMakeFiles/emis.dir/apps/coloring.cpp.o" "gcc" "src/CMakeFiles/emis.dir/apps/coloring.cpp.o.d"
  "/root/repo/src/apps/leader_election.cpp" "src/CMakeFiles/emis.dir/apps/leader_election.cpp.o" "gcc" "src/CMakeFiles/emis.dir/apps/leader_election.cpp.o.d"
  "/root/repo/src/baselines/greedy_mis.cpp" "src/CMakeFiles/emis.dir/baselines/greedy_mis.cpp.o" "gcc" "src/CMakeFiles/emis.dir/baselines/greedy_mis.cpp.o.d"
  "/root/repo/src/baselines/luby_congest.cpp" "src/CMakeFiles/emis.dir/baselines/luby_congest.cpp.o" "gcc" "src/CMakeFiles/emis.dir/baselines/luby_congest.cpp.o.d"
  "/root/repo/src/core/async_wakeup.cpp" "src/CMakeFiles/emis.dir/core/async_wakeup.cpp.o" "gcc" "src/CMakeFiles/emis.dir/core/async_wakeup.cpp.o.d"
  "/root/repo/src/core/backoff.cpp" "src/CMakeFiles/emis.dir/core/backoff.cpp.o" "gcc" "src/CMakeFiles/emis.dir/core/backoff.cpp.o.d"
  "/root/repo/src/core/competition.cpp" "src/CMakeFiles/emis.dir/core/competition.cpp.o" "gcc" "src/CMakeFiles/emis.dir/core/competition.cpp.o.d"
  "/root/repo/src/core/delta_doubling.cpp" "src/CMakeFiles/emis.dir/core/delta_doubling.cpp.o" "gcc" "src/CMakeFiles/emis.dir/core/delta_doubling.cpp.o.d"
  "/root/repo/src/core/ghaffari_mis.cpp" "src/CMakeFiles/emis.dir/core/ghaffari_mis.cpp.o" "gcc" "src/CMakeFiles/emis.dir/core/ghaffari_mis.cpp.o.d"
  "/root/repo/src/core/mis_cd.cpp" "src/CMakeFiles/emis.dir/core/mis_cd.cpp.o" "gcc" "src/CMakeFiles/emis.dir/core/mis_cd.cpp.o.d"
  "/root/repo/src/core/mis_nocd.cpp" "src/CMakeFiles/emis.dir/core/mis_nocd.cpp.o" "gcc" "src/CMakeFiles/emis.dir/core/mis_nocd.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/emis.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/emis.dir/core/runner.cpp.o.d"
  "/root/repo/src/core/simulated_cd_mis.cpp" "src/CMakeFiles/emis.dir/core/simulated_cd_mis.cpp.o" "gcc" "src/CMakeFiles/emis.dir/core/simulated_cd_mis.cpp.o.d"
  "/root/repo/src/radio/graph.cpp" "src/CMakeFiles/emis.dir/radio/graph.cpp.o" "gcc" "src/CMakeFiles/emis.dir/radio/graph.cpp.o.d"
  "/root/repo/src/radio/graph_generators.cpp" "src/CMakeFiles/emis.dir/radio/graph_generators.cpp.o" "gcc" "src/CMakeFiles/emis.dir/radio/graph_generators.cpp.o.d"
  "/root/repo/src/radio/graph_io.cpp" "src/CMakeFiles/emis.dir/radio/graph_io.cpp.o" "gcc" "src/CMakeFiles/emis.dir/radio/graph_io.cpp.o.d"
  "/root/repo/src/radio/scheduler.cpp" "src/CMakeFiles/emis.dir/radio/scheduler.cpp.o" "gcc" "src/CMakeFiles/emis.dir/radio/scheduler.cpp.o.d"
  "/root/repo/src/radio/trace.cpp" "src/CMakeFiles/emis.dir/radio/trace.cpp.o" "gcc" "src/CMakeFiles/emis.dir/radio/trace.cpp.o.d"
  "/root/repo/src/verify/experiment.cpp" "src/CMakeFiles/emis.dir/verify/experiment.cpp.o" "gcc" "src/CMakeFiles/emis.dir/verify/experiment.cpp.o.d"
  "/root/repo/src/verify/mis_checker.cpp" "src/CMakeFiles/emis.dir/verify/mis_checker.cpp.o" "gcc" "src/CMakeFiles/emis.dir/verify/mis_checker.cpp.o.d"
  "/root/repo/src/verify/stats.cpp" "src/CMakeFiles/emis.dir/verify/stats.cpp.o" "gcc" "src/CMakeFiles/emis.dir/verify/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
