# Empty compiler generated dependencies file for bench_beeping.
# This may be replaced when dependencies are built.
