file(REMOVE_RECURSE
  "CMakeFiles/bench_beeping.dir/bench_beeping.cpp.o"
  "CMakeFiles/bench_beeping.dir/bench_beeping.cpp.o.d"
  "bench_beeping"
  "bench_beeping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_beeping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
