# Empty dependencies file for bench_residual_decay.
# This may be replaced when dependencies are built.
