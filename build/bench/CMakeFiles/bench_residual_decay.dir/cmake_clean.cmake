file(REMOVE_RECURSE
  "CMakeFiles/bench_residual_decay.dir/bench_residual_decay.cpp.o"
  "CMakeFiles/bench_residual_decay.dir/bench_residual_decay.cpp.o.d"
  "bench_residual_decay"
  "bench_residual_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_residual_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
