# Empty compiler generated dependencies file for bench_cd_energy.
# This may be replaced when dependencies are built.
