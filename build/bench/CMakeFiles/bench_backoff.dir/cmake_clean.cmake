file(REMOVE_RECURSE
  "CMakeFiles/bench_backoff.dir/bench_backoff.cpp.o"
  "CMakeFiles/bench_backoff.dir/bench_backoff.cpp.o.d"
  "bench_backoff"
  "bench_backoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
