file(REMOVE_RECURSE
  "CMakeFiles/bench_awake_profiles.dir/bench_awake_profiles.cpp.o"
  "CMakeFiles/bench_awake_profiles.dir/bench_awake_profiles.cpp.o.d"
  "bench_awake_profiles"
  "bench_awake_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_awake_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
