# Empty compiler generated dependencies file for bench_awake_profiles.
# This may be replaced when dependencies are built.
