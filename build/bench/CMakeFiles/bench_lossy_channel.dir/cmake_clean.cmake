file(REMOVE_RECURSE
  "CMakeFiles/bench_lossy_channel.dir/bench_lossy_channel.cpp.o"
  "CMakeFiles/bench_lossy_channel.dir/bench_lossy_channel.cpp.o.d"
  "bench_lossy_channel"
  "bench_lossy_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lossy_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
