# Empty dependencies file for bench_lossy_channel.
# This may be replaced when dependencies are built.
