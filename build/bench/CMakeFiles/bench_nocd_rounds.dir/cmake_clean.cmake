file(REMOVE_RECURSE
  "CMakeFiles/bench_nocd_rounds.dir/bench_nocd_rounds.cpp.o"
  "CMakeFiles/bench_nocd_rounds.dir/bench_nocd_rounds.cpp.o.d"
  "bench_nocd_rounds"
  "bench_nocd_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nocd_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
