# Empty compiler generated dependencies file for bench_nocd_rounds.
# This may be replaced when dependencies are built.
