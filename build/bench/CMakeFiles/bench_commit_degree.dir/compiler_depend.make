# Empty compiler generated dependencies file for bench_commit_degree.
# This may be replaced when dependencies are built.
