file(REMOVE_RECURSE
  "CMakeFiles/bench_commit_degree.dir/bench_commit_degree.cpp.o"
  "CMakeFiles/bench_commit_degree.dir/bench_commit_degree.cpp.o.d"
  "bench_commit_degree"
  "bench_commit_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commit_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
