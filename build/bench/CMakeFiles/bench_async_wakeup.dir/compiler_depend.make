# Empty compiler generated dependencies file for bench_async_wakeup.
# This may be replaced when dependencies are built.
