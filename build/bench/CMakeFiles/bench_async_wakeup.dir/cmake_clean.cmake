file(REMOVE_RECURSE
  "CMakeFiles/bench_async_wakeup.dir/bench_async_wakeup.cpp.o"
  "CMakeFiles/bench_async_wakeup.dir/bench_async_wakeup.cpp.o.d"
  "bench_async_wakeup"
  "bench_async_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
