file(REMOVE_RECURSE
  "CMakeFiles/bench_unknown_delta.dir/bench_unknown_delta.cpp.o"
  "CMakeFiles/bench_unknown_delta.dir/bench_unknown_delta.cpp.o.d"
  "bench_unknown_delta"
  "bench_unknown_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unknown_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
