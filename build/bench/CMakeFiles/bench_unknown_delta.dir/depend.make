# Empty dependencies file for bench_unknown_delta.
# This may be replaced when dependencies are built.
