file(REMOVE_RECURSE
  "CMakeFiles/bench_cd_rounds.dir/bench_cd_rounds.cpp.o"
  "CMakeFiles/bench_cd_rounds.dir/bench_cd_rounds.cpp.o.d"
  "bench_cd_rounds"
  "bench_cd_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cd_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
