# Empty compiler generated dependencies file for bench_cd_rounds.
# This may be replaced when dependencies are built.
