# Empty compiler generated dependencies file for bench_nocd_energy.
# This may be replaced when dependencies are built.
