file(REMOVE_RECURSE
  "CMakeFiles/bench_nocd_energy.dir/bench_nocd_energy.cpp.o"
  "CMakeFiles/bench_nocd_energy.dir/bench_nocd_energy.cpp.o.d"
  "bench_nocd_energy"
  "bench_nocd_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nocd_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
