# Empty dependencies file for emis_cli.
# This may be replaced when dependencies are built.
