file(REMOVE_RECURSE
  "CMakeFiles/emis_cli.dir/emis_cli.cpp.o"
  "CMakeFiles/emis_cli.dir/emis_cli.cpp.o.d"
  "emis_cli"
  "emis_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
