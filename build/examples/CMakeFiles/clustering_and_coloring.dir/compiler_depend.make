# Empty compiler generated dependencies file for clustering_and_coloring.
# This may be replaced when dependencies are built.
