file(REMOVE_RECURSE
  "CMakeFiles/clustering_and_coloring.dir/clustering_and_coloring.cpp.o"
  "CMakeFiles/clustering_and_coloring.dir/clustering_and_coloring.cpp.o.d"
  "clustering_and_coloring"
  "clustering_and_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_and_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
