# Empty dependencies file for sensor_backbone.
# This may be replaced when dependencies are built.
