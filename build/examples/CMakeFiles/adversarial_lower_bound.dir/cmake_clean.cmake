file(REMOVE_RECURSE
  "CMakeFiles/adversarial_lower_bound.dir/adversarial_lower_bound.cpp.o"
  "CMakeFiles/adversarial_lower_bound.dir/adversarial_lower_bound.cpp.o.d"
  "adversarial_lower_bound"
  "adversarial_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
