# Empty compiler generated dependencies file for adversarial_lower_bound.
# This may be replaced when dependencies are built.
