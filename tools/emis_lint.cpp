// emis_lint CLI — runs the determinism & invariant rules over a repo tree.
//
// Usage:
//   emis_lint [--root <dir>] [--report-out <file>] [--list-rules] [--quiet]
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage/IO error.
//
// This is a developer tool, not library code: console I/O and filesystem
// access are its job.
#include "tools/emis_lint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

namespace {

void PrintRules() {
  std::printf("emis_lint rules:\n");
  for (const emis_lint::RuleInfo& r : emis_lint::Rules()) {
    std::printf("  %-28.*s [%.*s]\n      %.*s\n",
                static_cast<int>(r.id.size()), r.id.data(),
                static_cast<int>(r.scope.size()), r.scope.data(),
                static_cast<int>(r.summary.size()), r.summary.data());
  }
  std::printf(
      "\nsuppress one line:  // emis-lint: allow(<rule>)   (same line or line above)\n"
      "suppress a file:    // emis-lint: allow-file(<rule>)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string report_out;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list-rules") == 0) {
      PrintRules();
      return 0;
    }
    if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(arg, "--report-out") == 0 && i + 1 < argc) {
      report_out = argv[++i];
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf(
          "usage: emis_lint [--root <dir>] [--report-out <file>] "
          "[--list-rules] [--quiet]\n");
      return 0;
    } else {
      std::fprintf(stderr, "emis_lint: unknown argument '%s'\n", arg);
      return 2;
    }
  }

  if (!std::filesystem::exists(root)) {
    std::fprintf(stderr, "emis_lint: root '%s' does not exist\n", root.c_str());
    return 2;
  }

  const emis_lint::Corpus corpus = emis_lint::LoadCorpus(root);
  const emis_lint::Report report = emis_lint::Lint(corpus);

  if (!report_out.empty()) {
    std::ofstream out(report_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "emis_lint: cannot write report to '%s'\n",
                   report_out.c_str());
      return 2;
    }
    out << emis_lint::ToJson(report, root);
  }

  if (!quiet) {
    for (const emis_lint::Finding& f : report.findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    std::printf("emis_lint: %zu file(s) scanned, %zu finding(s), %llu waiver(s)\n",
                report.files_scanned, report.findings.size(),
                static_cast<unsigned long long>(report.suppressed));
  }
  return report.findings.empty() ? 0 : 1;
}
