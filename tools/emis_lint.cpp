// emis_lint CLI — runs the determinism & invariant rules over a repo tree.
//
// Usage:
//   emis_lint [--root <dir>] [--report-out <file>] [--explain]
//             [--waiver-baseline <file>] [--list-rules] [--quiet]
//
// Exit codes: 0 = clean, 1 = findings (or waiver-baseline regression),
// 2 = usage/IO error.
//
// This is a developer tool, not library code: console I/O and filesystem
// access are its job.
#include "tools/emis_lint.hpp"

// The linter times its own run for the report's wall_seconds counter; the
// measurement never feeds simulation state (counted in the waiver baseline).
// emis-lint: allow-file(banned-clock)
#include <chrono>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

namespace {

void PrintRules() {
  std::printf("emis_lint rules:\n");
  for (const emis_lint::RuleInfo& r : emis_lint::Rules()) {
    std::printf("  %-28.*s [%.*s]\n      %.*s\n",
                static_cast<int>(r.id.size()), r.id.data(),
                static_cast<int>(r.scope.size()), r.scope.data(),
                static_cast<int>(r.summary.size()), r.summary.data());
  }
  std::printf(
      "\nsuppress one line:  // emis-lint: allow(<rule>)   (same line or line above)\n"
      "suppress a file:    // emis-lint: allow-file(<rule>)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string report_out;
  std::string waiver_baseline;
  bool quiet = false;
  bool explain = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list-rules") == 0) {
      PrintRules();
      return 0;
    }
    if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(arg, "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(arg, "--report-out") == 0 && i + 1 < argc) {
      report_out = argv[++i];
    } else if (std::strcmp(arg, "--waiver-baseline") == 0 && i + 1 < argc) {
      waiver_baseline = argv[++i];
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf(
          "usage: emis_lint [--root <dir>] [--report-out <file>] [--explain] "
          "[--waiver-baseline <file>] [--list-rules] [--quiet]\n");
      return 0;
    } else {
      std::fprintf(stderr, "emis_lint: unknown argument '%s'\n", arg);
      return 2;
    }
  }

  if (!std::filesystem::exists(root)) {
    std::fprintf(stderr, "emis_lint: root '%s' does not exist\n", root.c_str());
    return 2;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const emis_lint::Corpus corpus = emis_lint::LoadCorpus(root);
  emis_lint::Report report = emis_lint::Lint(corpus);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::string baseline_error;
  if (!waiver_baseline.empty()) {
    std::ifstream in(waiver_baseline);
    if (!in) {
      std::fprintf(stderr, "emis_lint: cannot read waiver baseline '%s'\n",
                   waiver_baseline.c_str());
      return 2;
    }
    baseline_error =
        emis_lint::DiffWaiverBaseline(report, emis_lint::ParseWaiverBaseline(in));
  }

  if (!report_out.empty()) {
    std::ofstream out(report_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "emis_lint: cannot write report to '%s'\n",
                   report_out.c_str());
      return 2;
    }
    out << emis_lint::ToJson(report, root);
  }

  if (!quiet) {
    for (const emis_lint::Finding& f : report.findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
      if (explain && !f.witness.empty()) {
        std::printf("    call chain (%s):\n",
                    f.symbol.empty() ? "?" : f.symbol.c_str());
        for (const std::string& hop : f.witness) {
          std::printf("      -> %s\n", hop.c_str());
        }
      }
    }
    std::printf(
        "emis_lint: %zu file(s), %zu symbol(s), %zu call edge(s), "
        "%zu finding(s), %llu waiver(s) in %.3fs\n",
        report.files_scanned, report.symbols_indexed, report.call_edges,
        report.findings.size(),
        static_cast<unsigned long long>(report.suppressed),
        report.wall_seconds);
    if (explain && !report.suppressed_by_rule.empty()) {
      std::printf("waivers by rule:\n");
      for (const auto& [rule, count] : report.suppressed_by_rule) {
        std::printf("  %-28s %llu\n", rule.c_str(),
                    static_cast<unsigned long long>(count));
      }
    }
  }
  if (!baseline_error.empty()) {
    std::fprintf(stderr, "emis_lint: waiver baseline regression: %s\n",
                 baseline_error.c_str());
    return 1;
  }
  return report.findings.empty() ? 0 : 1;
}
