// emis_report_diff — the bench regression gate's comparison engine.
//
// Diffs two report artifacts (emis-run-report/1 or emis-bench-report/1)
// against per-metric tolerances and classifies every comparable metric as
// ok / out_of_tolerance / added / removed. The CI gate runs it between a
// committed baseline (bench/baselines/) and a freshly regenerated artifact:
// exit 0 means every metric is within tolerance, so a self-diff is always
// clean and any drift in the deterministic columns fails the build.
//
// What is compared (the deterministic surface of each schema):
//   run report    result.*, energy.* (totals + percentiles),
//                 metrics.counters.*, energy_attribution totals and
//                 per-(phase, sub) splits
//   bench report  failures, sweeps keyed by (title, n): runs/failures and
//                 the *_mean columns, metrics.counters.*
// What is NOT compared: wall_seconds, jobs, alloc, timers, gauges and
// histograms — the execution-dependent facts that the determinism contract
// explicitly keeps out of the points.
//
// Tolerances: metrics whose flattened name contains "mean" or "avg" are
// float-valued (trial averages) and compare under a relative tolerance
// (default 1e-6 — bit-identical reductions pass, real drift does not);
// everything else is integral and compares exactly. Per-metric overrides
// (--tolerance NAME=REL) take precedence over both.
//
// Output: an "emis-diff-report/1" document —
//   {schema, baseline, current, compared, out_of_tolerance,
//    deltas[{metric, class, baseline?, current?, rel_delta?, tolerance?}]}
// deltas lists only the non-ok metrics, so an in-tolerance diff is compact.
//
// Header-only so tests drive the engine directly (the emis_lint pattern);
// the binary in emis_report_diff.cpp owns all file and console I/O.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace emis_diff {

struct DiffOptions {
  /// Relative tolerance for float-valued metrics (name contains mean/avg).
  double default_rel_tolerance = 1e-6;
  /// Per-metric relative tolerances, keyed by flattened metric name;
  /// override both the float default and the integral exact-match rule.
  std::map<std::string, double> overrides;
};

struct MetricDelta {
  std::string metric;
  std::string cls;  ///< "ok" | "out_of_tolerance" | "added" | "removed"
  double baseline = 0.0;
  double current = 0.0;
  double rel_delta = 0.0;
  double tolerance = 0.0;
  bool has_baseline = false;
  bool has_current = false;
};

struct DiffResult {
  std::vector<MetricDelta> deltas;  ///< every compared metric, name-ordered
  std::size_t compared = 0;
  std::size_t out_of_tolerance = 0;  ///< non-ok: drifted, added or removed
  bool Ok() const noexcept { return out_of_tolerance == 0; }
};

namespace detail {

/// Number at `key` folded to double; bools fold to 0/1 so validity flags
/// diff like any other metric.
inline bool FoldScalar(const emis::obs::JsonValue& obj, std::string_view key,
                       double* out) {
  const emis::obs::JsonValue* v = obj.Find(key);
  if (v == nullptr) return false;
  if (v->IsBool()) {
    *out = v->AsBool() ? 1.0 : 0.0;
    return true;
  }
  if (v->IsNumber()) {
    *out = v->AsNumber();
    return true;
  }
  return false;
}

inline void FlattenKeys(const emis::obs::JsonValue& doc, std::string_view block,
                        std::string_view prefix,
                        const std::vector<std::string_view>& fields,
                        std::map<std::string, double>* out) {
  const emis::obs::JsonValue* obj = doc.Find(block);
  if (obj == nullptr || !obj->IsObject()) return;
  for (const std::string_view field : fields) {
    double value = 0.0;
    if (FoldScalar(*obj, field, &value)) {
      (*out)[std::string(prefix) + "." + std::string(field)] = value;
    }
  }
}

/// metrics.counters are deterministic event counts (chan.*, graph.*,
/// sched.*); gauges/timers/histograms stay out of the comparison.
inline void FlattenCounters(const emis::obs::JsonValue& doc,
                            std::map<std::string, double>* out) {
  const emis::obs::JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->IsObject()) return;
  const emis::obs::JsonValue* counters = metrics->Find("counters");
  if (counters == nullptr || !counters->IsObject()) return;
  for (const auto& [name, value] : counters->Entries()) {
    if (value.IsNumber()) (*out)["metrics.counters." + name] = value.AsNumber();
  }
}

inline void FlattenRunReport(const emis::obs::JsonValue& doc,
                             std::map<std::string, double>* out) {
  FlattenKeys(doc, "result", "result",
              {"valid_mis", "mis_size", "rounds", "node_rounds",
               "nodes_finished", "hit_round_limit"},
              out);
  FlattenKeys(doc, "energy", "energy",
              {"max_awake", "avg_awake", "total_awake", "total_transmit",
               "total_listen"},
              out);
  const emis::obs::JsonValue* energy = doc.Find("energy");
  if (energy != nullptr && energy->IsObject()) {
    FlattenKeys(*energy, "percentiles", "energy.percentiles",
                {"p10", "p50", "p90", "p99"}, out);
  }
  const emis::obs::JsonValue* attribution = doc.Find("energy_attribution");
  if (attribution != nullptr && attribution->IsObject()) {
    FlattenKeys(doc, "energy_attribution", "energy_attribution",
                {"total_transmit", "total_listen"}, out);
    const emis::obs::JsonValue* keys = attribution->Find("keys");
    if (keys != nullptr && keys->IsArray()) {
      for (const emis::obs::JsonValue& k : keys->Items()) {
        if (!k.IsObject()) continue;
        const emis::obs::JsonValue* phase = k.Find("phase");
        const emis::obs::JsonValue* sub = k.Find("sub");
        if (phase == nullptr || !phase->IsString()) continue;
        std::string name = "energy_attribution." +
                           (phase->AsString().empty() ? std::string("(unattributed)")
                                                      : phase->AsString());
        if (sub != nullptr && sub->IsString() && !sub->AsString().empty()) {
          name += "/" + sub->AsString();
        }
        for (const std::string_view field :
             {std::string_view("transmit_rounds"),
              std::string_view("listen_rounds"),
              std::string_view("awake_rounds")}) {
          double value = 0.0;
          if (FoldScalar(k, field, &value)) {
            (*out)[name + "." + std::string(field)] = value;
          }
        }
      }
    }
  }
  FlattenCounters(doc, out);
}

inline void FlattenBenchReport(const emis::obs::JsonValue& doc,
                               std::map<std::string, double>* out) {
  double failures = 0.0;
  if (FoldScalar(doc, "failures", &failures)) (*out)["failures"] = failures;
  const emis::obs::JsonValue* sweeps = doc.Find("sweeps");
  if (sweeps != nullptr && sweeps->IsArray()) {
    for (const emis::obs::JsonValue& sweep : sweeps->Items()) {
      if (!sweep.IsObject()) continue;
      const emis::obs::JsonValue* title = sweep.Find("title");
      const emis::obs::JsonValue* points = sweep.Find("points");
      if (title == nullptr || !title->IsString() || points == nullptr ||
          !points->IsArray()) {
        continue;
      }
      for (const emis::obs::JsonValue& point : points->Items()) {
        if (!point.IsObject()) continue;
        double n = 0.0;
        if (!FoldScalar(point, "n", &n)) continue;
        const std::string prefix = "sweeps." + title->AsString() + ".n" +
                                   std::to_string(static_cast<std::uint64_t>(n));
        for (const std::string_view field :
             {std::string_view("runs"), std::string_view("failures"),
              std::string_view("max_energy_mean"),
              std::string_view("avg_energy_mean"),
              std::string_view("rounds_mean"),
              std::string_view("mis_size_mean")}) {
          double value = 0.0;
          if (FoldScalar(point, field, &value)) {
            (*out)[prefix + "." + std::string(field)] = value;
          }
        }
      }
    }
  }
  FlattenCounters(doc, out);
}

}  // namespace detail

/// Flattens a report's deterministic metrics to name → value. Returns an
/// empty string on success, else a description of why the document is not
/// diffable (unknown schema, schema check failure).
inline std::string FlattenReport(const emis::obs::JsonValue& doc,
                                 std::map<std::string, double>* out) {
  const std::string err = emis::obs::ValidateReport(doc);
  if (!err.empty()) return err;
  const std::string& schema = doc.Find("schema")->AsString();
  if (schema == emis::obs::kRunReportSchema) {
    detail::FlattenRunReport(doc, out);
    return {};
  }
  if (schema == emis::obs::kBenchReportSchema) {
    detail::FlattenBenchReport(doc, out);
    return {};
  }
  return "not a diffable schema: \"" + schema + "\"";
}

/// The tolerance applied to `metric`: an explicit override wins; otherwise
/// trial-average columns ("mean"/"avg" in the name) get the float default
/// and everything else compares exactly (0).
inline double ToleranceFor(const std::string& metric, const DiffOptions& options) {
  const auto it = options.overrides.find(metric);
  if (it != options.overrides.end()) return it->second;
  if (metric.find("mean") != std::string::npos ||
      metric.find("avg") != std::string::npos) {
    return options.default_rel_tolerance;
  }
  return 0.0;
}

/// Diffs two validated reports. `error` (optional) receives the reason when
/// the documents are not comparable — mismatched or invalid schemas — in
/// which case the result counts one out_of_tolerance so callers fail closed.
inline DiffResult DiffReports(const emis::obs::JsonValue& baseline,
                              const emis::obs::JsonValue& current,
                              const DiffOptions& options,
                              std::string* error = nullptr) {
  DiffResult result;
  std::map<std::string, double> base_metrics;
  std::map<std::string, double> cur_metrics;
  std::string err = FlattenReport(baseline, &base_metrics);
  if (err.empty()) {
    err = FlattenReport(current, &cur_metrics);
    if (!err.empty()) err = "current: " + err;
  } else {
    err = "baseline: " + err;
  }
  if (err.empty() &&
      baseline.Find("schema")->AsString() != current.Find("schema")->AsString()) {
    err = "schema mismatch: baseline is " + baseline.Find("schema")->AsString() +
          ", current is " + current.Find("schema")->AsString();
  }
  if (!err.empty()) {
    if (error != nullptr) *error = err;
    result.out_of_tolerance = 1;
    return result;
  }

  // Walk the union of names in order; std::map keeps the output stable.
  auto b = base_metrics.begin();
  auto c = cur_metrics.begin();
  while (b != base_metrics.end() || c != cur_metrics.end()) {
    MetricDelta delta;
    if (c == cur_metrics.end() ||
        (b != base_metrics.end() && b->first < c->first)) {
      delta.metric = b->first;
      delta.baseline = b->second;
      delta.has_baseline = true;
      delta.cls = "removed";
      ++b;
    } else if (b == base_metrics.end() || c->first < b->first) {
      delta.metric = c->first;
      delta.current = c->second;
      delta.has_current = true;
      delta.cls = "added";
      ++c;
    } else {
      delta.metric = b->first;
      delta.baseline = b->second;
      delta.current = c->second;
      delta.has_baseline = delta.has_current = true;
      delta.tolerance = ToleranceFor(delta.metric, options);
      const double scale = std::max(std::abs(delta.baseline), 1e-12);
      delta.rel_delta = std::abs(delta.current - delta.baseline) / scale;
      const bool ok = delta.tolerance == 0.0
                          ? delta.current == delta.baseline
                          : delta.rel_delta <= delta.tolerance;
      delta.cls = ok ? "ok" : "out_of_tolerance";
      ++b;
      ++c;
    }
    ++result.compared;
    if (delta.cls != "ok") ++result.out_of_tolerance;
    result.deltas.push_back(std::move(delta));
  }
  return result;
}

/// Renders the result as an "emis-diff-report/1" document. Only non-ok
/// deltas are listed; a clean diff is {.., out_of_tolerance: 0, deltas: []}.
inline emis::obs::JsonValue BuildDiffReportJson(const DiffResult& result,
                                                const std::string& baseline_name,
                                                const std::string& current_name) {
  emis::obs::JsonValue doc = emis::obs::JsonValue::MakeObject();
  doc.Set("schema", emis::obs::kDiffReportSchema);
  doc.Set("baseline", baseline_name);
  doc.Set("current", current_name);
  doc.Set("compared", static_cast<std::uint64_t>(result.compared));
  doc.Set("out_of_tolerance", static_cast<std::uint64_t>(result.out_of_tolerance));
  emis::obs::JsonValue deltas = emis::obs::JsonValue::MakeArray();
  for (const MetricDelta& delta : result.deltas) {
    if (delta.cls == "ok") continue;
    emis::obs::JsonValue row = emis::obs::JsonValue::MakeObject();
    row.Set("metric", delta.metric);
    row.Set("class", delta.cls);
    if (delta.has_baseline) row.Set("baseline", delta.baseline);
    if (delta.has_current) row.Set("current", delta.current);
    if (delta.has_baseline && delta.has_current) {
      row.Set("rel_delta", delta.rel_delta);
      row.Set("tolerance", delta.tolerance);
    }
    deltas.Push(std::move(row));
  }
  doc.Set("deltas", std::move(deltas));
  return doc;
}

}  // namespace emis_diff
