// emis_report_diff CLI — the bench regression gate.
//
// Usage:
//   emis_report_diff --baseline FILE --current FILE [--out FILE]
//                    [--tolerance METRIC=REL]... [--default-tolerance REL]
//                    [--quiet]
//
// Exit codes: 0 = every metric within tolerance, 1 = drift / incomparable
// documents, 2 = usage or IO error.
//
// This is a developer tool, not library code: console I/O and filesystem
// access are its job.
#include "tools/emis_report_diff.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/contracts.hpp"

namespace {

void PrintUsage() {
  std::printf(
      "usage: emis_report_diff --baseline FILE --current FILE [--out FILE]\n"
      "                        [--tolerance METRIC=REL]...\n"
      "                        [--default-tolerance REL] [--quiet]\n"
      "\n"
      "Diffs two emis report artifacts (run or bench reports) and exits\n"
      "nonzero when any deterministic metric drifts past its tolerance.\n"
      "Float-valued columns (mean/avg) default to relative 1e-6; everything\n"
      "else compares exactly. --out writes an emis-diff-report/1 document.\n");
}

bool ReadFileJson(const std::string& path, emis::obs::JsonValue* out,
                  std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    *out = emis::obs::ParseJson(buffer.str());
  } catch (const emis::PreconditionError& e) {
    *error = "'" + path + "': " + e.what();
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string out_path;
  emis_diff::DiffOptions options;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(arg, "--current") == 0 && i + 1 < argc) {
      current_path = argv[++i];
    } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(arg, "--default-tolerance") == 0 && i + 1 < argc) {
      options.default_rel_tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--tolerance") == 0 && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr,
                     "emis_report_diff: --tolerance wants METRIC=REL, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      options.overrides[spec.substr(0, eq)] =
          std::strtod(spec.c_str() + eq + 1, nullptr);
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "emis_report_diff: unknown argument '%s'\n", arg);
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    PrintUsage();
    return 2;
  }

  emis::obs::JsonValue baseline;
  emis::obs::JsonValue current;
  std::string error;
  if (!ReadFileJson(baseline_path, &baseline, &error) ||
      !ReadFileJson(current_path, &current, &error)) {
    std::fprintf(stderr, "emis_report_diff: %s\n", error.c_str());
    return 2;
  }

  const emis_diff::DiffResult result =
      emis_diff::DiffReports(baseline, current, options, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "emis_report_diff: incomparable: %s\n", error.c_str());
    return 1;
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "emis_report_diff: cannot write '%s'\n",
                   out_path.c_str());
      return 2;
    }
    out << emis_diff::BuildDiffReportJson(result, baseline_path, current_path)
               .Dump(2)
        << '\n';
  }

  if (!quiet) {
    for (const emis_diff::MetricDelta& d : result.deltas) {
      if (d.cls == "ok") continue;
      if (d.has_baseline && d.has_current) {
        std::printf("%s: [%s] baseline=%.17g current=%.17g rel=%.3g tol=%.3g\n",
                    d.metric.c_str(), d.cls.c_str(), d.baseline, d.current,
                    d.rel_delta, d.tolerance);
      } else {
        std::printf("%s: [%s] %s=%.17g\n", d.metric.c_str(), d.cls.c_str(),
                    d.has_baseline ? "baseline" : "current",
                    d.has_baseline ? d.baseline : d.current);
      }
    }
    std::printf("emis_report_diff: %zu metric(s) compared, %zu out of tolerance\n",
                result.compared, result.out_of_tolerance);
  }
  return result.Ok() ? 0 : 1;
}
