// emis_lint — the repo's determinism & invariant linter.
//
// A dependency-free two-pass static analyzer (tokenizer + token-stream rule
// engine, deliberately not regex-over-lines) that walks src/, bench/ and
// tools/ and enforces the repo-specific rules the determinism contract
// depends on.
//
// Pass 1 tokenizes every file exactly once (the token streams are shared by
// every rule) and builds a project-wide symbol index: function definitions,
// their call sites (with the receiver root of qualified calls), and every
// lambda passed to par::ParallelFor — a "parallel region" — together with
// its capture list and parameters. Name-merged call edges over that index
// approximate the cross-translation-unit call graph (see DESIGN.md §14 for
// the approximation and its known false-negative edges).
//
// Pass 2 runs two rule families over the shared tokens:
//   * per-file token rules — no draw-order RNG or wall-clock reads in
//     library code, no unordered-container iteration feeding results, no
//     raw assert(), no console I/O in library code, no floating-point
//     accumulation in merge/reduce paths, no RNG streams seeded from
//     another stream's draws, no raw OS-thread spawns outside the pool;
//   * graph rules on the symbol index — nested-dispatch (a parallel region
//     that can re-enter the worker pool, the PR 8 deadlock shape),
//     parallel-region-mutation (writes to captured shared state inside
//     ParallelFor lambdas), banned-random-taint / banned-clock-taint
//     (library functions that transitively reach a banned source through
//     any call chain), and observable-commit-order (observables reachable
//     from inside a parallel region outside the sanctioned serial-commit
//     functions). Graph findings carry the offending symbol and a witness
//     call chain.
//
// Rules operate on a lexed token stream: comments, string literals (plain
// and raw), char literals and #include lines never produce identifier
// tokens, so a rule table mentioning banned names in strings (like the ones
// below) or prose mentioning rand() in a comment cannot self-trigger.
//
// Suppression: any finding can be waived with a comment on the same line or
// the line above —
//     // emis-lint: allow(rule-id)          one line
//     // emis-lint: allow-file(rule-id)     whole file
// Waivers are counted and reported per rule, never silent; the committed
// per-rule baseline (tools/lint_waiver_baseline.txt) makes new waivers fail
// closed in CI (see ParseWaiverBaseline / DiffWaiverBaseline).
//
// Report schema: emis-lint-report/2 (see ToJson).
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <istream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace emis_lint {

// ---------------------------------------------------------------------------
// Tokens and lexing

struct Token {
  enum class Kind : std::uint8_t { kIdent, kPunct, kNumber, kString, kChar };
  Kind kind;
  std::string text;
  int line;
};

struct SourceFile {
  std::string path;  ///< repo-relative, '/'-separated
  std::vector<Token> tokens;
  /// (line, rule-id) pairs from `emis-lint: allow(...)` comments. A waiver
  /// on line L covers findings on lines L and L+1 (trailing or line-above).
  std::set<std::pair<int, std::string>> allows;
  /// rule-ids from `emis-lint: allow-file(...)` comments.
  std::set<std::string> file_allows;
};

namespace detail {

inline bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Extracts `emis-lint:` directives from one comment's text.
inline void ParseLintComment(std::string_view text, int line, SourceFile* out) {
  const std::string_view marker = "emis-lint:";
  const std::size_t at = text.find(marker);
  if (at == std::string_view::npos) return;
  std::size_t i = at + marker.size();
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
  bool whole_file = false;
  const std::string_view allow_file = "allow-file";
  const std::string_view allow = "allow";
  if (text.compare(i, allow_file.size(), allow_file) == 0) {
    whole_file = true;
    i += allow_file.size();
  } else if (text.compare(i, allow.size(), allow) == 0) {
    i += allow.size();
  } else {
    return;
  }
  while (i < text.size() && text[i] != '(') ++i;
  if (i >= text.size()) return;
  ++i;
  std::string rule;
  for (; i < text.size() && text[i] != ')'; ++i) {
    const char c = text[i];
    if (c == ',' ) {
      if (!rule.empty()) {
        if (whole_file) out->file_allows.insert(rule);
        else out->allows.insert({line, rule});
      }
      rule.clear();
    } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      rule += c;
    }
  }
  if (!rule.empty()) {
    if (whole_file) out->file_allows.insert(rule);
    else out->allows.insert({line, rule});
  }
}

/// Multi-character punctuators the rules care about, longest first.
inline const std::vector<std::string>& Punctuators() {
  static const std::vector<std::string> kPuncts = {
      "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
      "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
      "%=", "&=", "|=", "^=",
  };
  return kPuncts;
}

}  // namespace detail

/// Lexes one translation unit into tokens + suppression directives.
inline SourceFile Lex(std::string path, std::string_view src) {
  SourceFile out;
  out.path = std::move(path);
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool line_start = true;  // only whitespace seen since the last newline

  auto advance_newline = [&](char c) {
    if (c == '\n') {
      ++line;
      line_start = true;
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      advance_newline(c);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      detail::ParseLintComment(src.substr(start, i - start), line, &out);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      const std::size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        advance_newline(src[i]);
        ++i;
      }
      detail::ParseLintComment(src.substr(start, i - start), start_line, &out);
      i = std::min(n, i + 2);
      continue;
    }
    // Preprocessor: #include's header-name would otherwise lex as idents
    // (<chrono> → 'chrono'), so the rest of the directive line is skipped.
    if (c == '#' && line_start) {
      std::size_t j = i + 1;
      while (j < n && std::isspace(static_cast<unsigned char>(src[j])) != 0 &&
             src[j] != '\n') {
        ++j;
      }
      std::size_t word_end = j;
      while (word_end < n && detail::IsIdentChar(src[word_end])) ++word_end;
      const std::string_view directive = src.substr(j, word_end - j);
      if (directive == "include" || directive == "pragma" || directive == "error") {
        while (i < n && src[i] != '\n') ++i;
        continue;
      }
      line_start = false;
      ++i;  // '#' itself carries no rule meaning; tokenize the rest normally
      continue;
    }
    line_start = false;
    // Identifier (possibly a string-literal prefix).
    if (detail::IsIdentStart(c)) {
      std::size_t j = i;
      while (j < n && detail::IsIdentChar(src[j])) ++j;
      const std::string_view word = src.substr(i, j - i);
      // String prefixes: u8R"(...)", R"(...)", L"...", u"...", etc.
      if (j < n && src[j] == '"' &&
          (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
           word == "LR" || word == "u8" || word == "u" || word == "U" ||
           word == "L")) {
        if (word.back() == 'R') {
          // Raw string: R"delim( ... )delim"
          std::size_t k = j + 1;
          std::string delim;
          while (k < n && src[k] != '(') delim += src[k++];
          const std::string closer = ")" + delim + "\"";
          const std::size_t end = src.find(closer, k);
          const std::size_t stop = end == std::string_view::npos ? n : end + closer.size();
          for (std::size_t p = j; p < stop; ++p) advance_newline(src[p]);
          out.tokens.push_back({Token::Kind::kString, "<raw-string>", line});
          i = stop;
          continue;
        }
        // Prefixed ordinary string: fall through to the string scanner below.
        i = j;
        continue;
      }
      out.tokens.push_back({Token::Kind::kIdent, std::string(word), line});
      i = j;
      continue;
    }
    // String and char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        advance_newline(src[j]);
        ++j;
      }
      out.tokens.push_back({quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
                            "<literal>", line});
      i = std::min(n, j + 1);
      continue;
    }
    // Numbers (incl. hex/float; pp-number is close enough for linting).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      std::size_t j = i;
      while (j < n && (detail::IsIdentChar(src[j]) || src[j] == '.' || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > 0 &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                         src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({Token::Kind::kNumber, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Punctuation, longest match first.
    bool matched = false;
    for (const std::string& p : detail::Punctuators()) {
      if (src.compare(i, p.size(), p) == 0) {
        out.tokens.push_back({Token::Kind::kPunct, p, line});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Findings, rules, reports

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
  /// Graph-rule findings name the symbol they anchor to (a function, a
  /// parallel region's enclosing function, a mutated variable); token rules
  /// leave it empty.
  std::string symbol;
  /// Call-chain witness for graph-rule findings: one "<file>:<line> <name>"
  /// hop per element, from the flagged context to the offending call/token.
  std::vector<std::string> witness;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

struct Report {
  std::vector<Finding> findings;
  std::uint64_t suppressed = 0;
  /// Per-rule waiver accounting (rules with zero waivers are omitted);
  /// values sum to `suppressed`. CI diffs this against the committed
  /// baseline so new waivers fail closed.
  std::map<std::string, std::uint64_t> suppressed_by_rule;
  std::size_t files_scanned = 0;
  /// Pass-1 index counters: function definitions indexed and call edges
  /// (call sites inside indexed bodies and parallel regions) recorded.
  std::size_t symbols_indexed = 0;
  std::size_t call_edges = 0;
  /// Wall time of the lint run (corpus load + both passes), stamped by the
  /// CLI; 0 for in-memory fixture lints.
  double wall_seconds = 0.0;
};

struct RuleInfo {
  std::string_view id;
  std::string_view scope;
  std::string_view summary;
};

/// The rule table (documented in DESIGN.md §10).
inline const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"banned-random", "src (excl. src/obs), bench, tools",
       "no rand()/srand()/std::random_device/std::mt19937-family generators; "
       "randomness flows from emis::Rng / CounterHash (seed, counter) streams"},
      {"banned-clock", "src (excl. src/obs), tools",
       "no std::chrono clock reads or OS time calls; wall-clock access goes "
       "through src/obs (obs::MonotonicSeconds, ScopedTimer)"},
      {"unordered-iteration", "src, bench, tools",
       "no iteration over unordered containers whose body writes into "
       "results/metrics/accumulators — iteration order is unspecified and "
       "breaks bit-identical reduction"},
      {"raw-assert", "src, bench, tools",
       "no raw assert(); use EMIS_EXPECTS/EMIS_ENSURES/EMIS_INVARIANT/"
       "EMIS_UNREACHABLE from core/contracts.hpp"},
      {"io-in-library", "src (console: excl. src/obs; file writes: all src)",
       "no std::cout/std::cerr/printf-family console I/O in library code "
       "(emit through obs/ sinks or return data), and no ofstream/fopen/"
       "freopen file-writing outside the sanctioned waiver list "
       "(stream_sink.cpp's telemetry opener)"},
      {"float-accumulate-in-reduce", "src",
       "no floating-point += accumulation inside Merge/Reduce-named reduce "
       "paths (MetricsRegistry::Merge-reachable); sums there must be "
       "integral, compensated, or explicitly waived with a fixed-order proof"},
      {"rng-seed-from-draw", "src, bench, tools",
       "no Rng constructed from another stream's draw (NextU64() etc.); "
       "derive children with Rng::Split(stream_id) or counter hashes"},
      {"raw-thread", "src, bench, tools",
       "no std::thread/std::jthread/std::async outside the pooled execution "
       "layer (src/verify/parallel.cpp); fan work out through "
       "par::ParallelFor so thread count, pinning and nesting stay "
       "centralized (std::thread::hardware_concurrency reads are fine)"},
      {"nested-dispatch", "graph rule: src, bench, tools",
       "no call-graph path from a ParallelFor/pooled-shard lambda body back "
       "into Pool::Run/ParallelFor/RunSweep — re-entering the pool "
       "self-deadlocks on its non-recursive dispatch mutex (the PR 8 "
       "deadlock). A dispatcher whose definition READS tl_in_pool_worker "
       "runs nested calls inline and is safe; findings carry the witness "
       "call chain"},
      {"parallel-region-mutation", "graph rule: src, bench, tools",
       "no writes to captured shared state inside a ParallelFor lambda body "
       "unless the symbol is on the sanctioned shard-local/serial-commit "
       "list (ParallelWriteSanctioned: per-node/per-shard slots merged "
       "serially); trials/shards must write only their own slot"},
      {"banned-random-taint", "graph rule: src (excl. src/obs), bench, tools",
       "no library function that transitively reaches a banned RNG source "
       "(rand(), std::mt19937, ...) through any call chain — flagged at the "
       "function's definition with the witness chain; src/obs definitions "
       "are the sanctioned boundary and do not propagate taint"},
      {"banned-clock-taint", "graph rule: src (excl. src/obs), tools",
       "no library function that transitively reaches a wall-clock source "
       "(std::chrono clocks, clock_gettime, ...) through any call chain — "
       "flagged at the definition with the witness chain; src/obs (and "
       "bench, which times itself freely) do not propagate taint"},
      {"observable-commit-order", "graph rule: src, bench, tools",
       "no FileAction/trace/energy/RNG-draw observable reachable from "
       "inside a ParallelFor lambda outside the sanctioned serial-commit/"
       "shard-local functions (SerialCommitSanctioned) — observables must "
       "commit serially in global actor order to stay bit-identical across "
       "jobs/shard counts"},
  };
  return kRules;
}

namespace detail {

inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}
inline bool InSrc(std::string_view p) { return StartsWith(p, "src/"); }
inline bool InObs(std::string_view p) { return StartsWith(p, "src/obs/"); }
inline bool InBench(std::string_view p) { return StartsWith(p, "bench/"); }
inline bool InTools(std::string_view p) { return StartsWith(p, "tools/"); }

inline bool IsIdentTok(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
inline bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

/// Index of the matching closer for the opener at `open`, or tokens.size().
inline std::size_t MatchForward(const std::vector<Token>& toks, std::size_t open,
                                std::string_view opener, std::string_view closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], opener)) ++depth;
    else if (IsPunct(toks[i], closer)) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

/// Skips a balanced template-argument list starting at `open` (a '<').
/// Returns the index just past the closing '>'. Understands '>>' closing two
/// levels. Returns open if the construct does not look balanced.
inline std::size_t SkipTemplateArgs(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "<")) ++depth;
    else if (IsPunct(t, ">")) {
      if (--depth == 0) return i + 1;
    } else if (IsPunct(t, ">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (IsPunct(t, ";") || IsPunct(t, "{")) {
      return open;  // gave up: this '<' was a comparison
    }
  }
  return open;
}

/// The identifier owning the assignment target that ends at token `i`
/// (exclusive): handles `x +=`, `x[i] +=`, `p->x +=`, `a.b +=`.
inline const Token* LhsIdent(const std::vector<Token>& toks, std::size_t op) {
  if (op == 0) return nullptr;
  std::size_t j = op - 1;
  if (IsPunct(toks[j], "]")) {
    int depth = 0;
    while (true) {
      if (IsPunct(toks[j], "]")) ++depth;
      else if (IsPunct(toks[j], "[")) {
        if (--depth == 0) break;
      }
      if (j == 0) return nullptr;
      --j;
    }
    if (j == 0) return nullptr;
    --j;
  }
  return toks[j].kind == Token::Kind::kIdent ? &toks[j] : nullptr;
}

inline const std::set<std::string, std::less<>>& UnorderedTypeNames() {
  static const std::set<std::string, std::less<>> kNames = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  return kNames;
}

/// Names of containers/aliases/variables of unordered type declared in this
/// file, collected with a two-pass heuristic (aliases, then declarations).
inline std::set<std::string, std::less<>> CollectUnorderedNames(const SourceFile& f) {
  std::set<std::string, std::less<>> names(UnorderedTypeNames());
  const auto& toks = f.tokens;
  // Pass 1: using Alias = ... unordered_xxx<...> ...;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsIdentTok(toks[i], "using") || toks[i + 1].kind != Token::Kind::kIdent ||
        !IsPunct(toks[i + 2], "=")) {
      continue;
    }
    for (std::size_t j = i + 3; j < toks.size() && !IsPunct(toks[j], ";"); ++j) {
      if (toks[j].kind == Token::Kind::kIdent &&
          UnorderedTypeNames().count(toks[j].text) > 0) {
        names.insert(toks[i + 1].text);
        break;
      }
    }
  }
  // Pass 2: <unordered-type> <template-args>? <ident> → a declared variable.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || names.count(toks[i].text) == 0) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && IsPunct(toks[j], "<")) {
      const std::size_t past = SkipTemplateArgs(toks, j);
      if (past == j) continue;
      j = past;
    }
    while (j < toks.size() && (IsPunct(toks[j], "&") || IsPunct(toks[j], "*"))) ++j;
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent &&
        toks[j].text != "const" && names.count(toks[j].text) == 0) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

/// Identifiers declared with a floating-point type in this file (members,
/// locals, parameters): `double x`, `float a = 0, b = 0;`, `double* p`.
inline void CollectFloatIdents(const SourceFile& f,
                               std::set<std::string, std::less<>>* out) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdentTok(toks[i], "double") && !IsIdentTok(toks[i], "float")) continue;
    std::size_t j = i + 1;
    while (true) {
      while (j < toks.size() &&
             (IsPunct(toks[j], "*") || IsPunct(toks[j], "&") ||
              IsIdentTok(toks[j], "const"))) {
        ++j;
      }
      if (j >= toks.size() || toks[j].kind != Token::Kind::kIdent) break;
      out->insert(toks[j].text);
      ++j;
      // `= <expr>` up to the next top-level ',' or ';' continues the list.
      int depth = 0;
      while (j < toks.size()) {
        const Token& t = toks[j];
        if (IsPunct(t, "(") || IsPunct(t, "[") || IsPunct(t, "{")) ++depth;
        else if (IsPunct(t, ")") || IsPunct(t, "]") || IsPunct(t, "}")) --depth;
        if (depth < 0) { j = toks.size(); break; }
        if (depth == 0 && (IsPunct(t, ",") || IsPunct(t, ";"))) break;
        ++j;
      }
      if (j >= toks.size() || !IsPunct(toks[j], ",")) break;
      ++j;
    }
  }
}

struct RawFinding {
  std::string_view rule;
  int line;
  std::string message;
  std::string symbol;                 ///< graph rules only
  std::vector<std::string> witness;   ///< graph rules only
};

// --- rule: banned-random ---------------------------------------------------

/// Banned RNG type names; shared by the token rule and the taint rule.
inline const std::set<std::string, std::less<>>& BannedRandomTypes() {
  static const std::set<std::string, std::less<>> kTypes = {
      "random_device", "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
      "default_random_engine", "ranlux24", "ranlux48", "ranlux24_base",
      "ranlux48_base", "knuth_b", "random_shuffle"};
  return kTypes;
}

/// Banned RNG call names (flag only when followed by '(').
inline const std::set<std::string, std::less<>>& BannedRandomCalls() {
  static const std::set<std::string, std::less<>> kCalls = {"rand", "srand",
                                                            "drand48", "lrand48"};
  return kCalls;
}

/// True when the banned-random token rule applies to a path.
inline bool RandomScope(std::string_view p) { return !InObs(p); }

inline void RuleBannedRandom(const SourceFile& f, std::vector<RawFinding>* out) {
  if (!RandomScope(f.path)) return;
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const bool is_type = BannedRandomTypes().count(toks[i].text) > 0;
    const bool is_call = BannedRandomCalls().count(toks[i].text) > 0 &&
                         i + 1 < toks.size() && IsPunct(toks[i + 1], "(");
    if (is_type || is_call) {
      out->push_back({"banned-random", toks[i].line,
                      "draw-order RNG source '" + toks[i].text +
                          "' — use emis::Rng streams or CounterHash (seed, "
                          "counter) addressing"});
    }
  }
}

// --- rule: banned-clock ----------------------------------------------------

/// Banned wall-clock names; shared by the token rule and the taint rule.
inline const std::set<std::string, std::less<>>& BannedClockNames() {
  static const std::set<std::string, std::less<>> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock", "clock_gettime",
      "gettimeofday", "timespec_get", "ftime"};
  return kClocks;
}

/// True when the banned-clock token rule applies to a path (benches time
/// themselves freely; src/obs is the sanctioned clock layer).
inline bool ClockScope(std::string_view p) {
  return (InSrc(p) && !InObs(p)) || InTools(p);
}

inline void RuleBannedClock(const SourceFile& f, std::vector<RawFinding>* out) {
  if (!ClockScope(f.path)) return;
  for (const Token& t : f.tokens) {
    if (t.kind == Token::Kind::kIdent && BannedClockNames().count(t.text) > 0) {
      out->push_back({"banned-clock", t.line,
                      "wall-clock source '" + t.text +
                          "' outside src/obs — route timing through "
                          "obs::MonotonicSeconds or obs::ScopedTimer"});
    }
  }
}

// --- rule: unordered-iteration ---------------------------------------------

inline void RuleUnorderedIteration(const SourceFile& f, std::vector<RawFinding>* out) {
  const auto& toks = f.tokens;
  const auto unordered = CollectUnorderedNames(f);
  static const std::set<std::string, std::less<>> kMutators = {
      "push_back", "emplace_back", "emplace", "insert", "Add", "Observe",
      "Inc", "Set", "Merge", "MergeFrom", "Push", "Record", "Append", "append"};
  static const std::set<std::string, std::less<>> kMutatorPuncts = {
      "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdentTok(toks[i], "for") || !IsPunct(toks[i + 1], "(")) continue;
    const std::size_t close = MatchForward(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    // Range-based for: a ':' at paren depth 1 (tokenizer keeps '::' whole).
    std::size_t colon = toks.size();
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (IsPunct(toks[j], "(")) ++depth;
      else if (IsPunct(toks[j], ")")) --depth;
      else if (depth == 1 && IsPunct(toks[j], ":")) { colon = j; break; }
    }
    bool over_unordered = false;
    std::string range_name;
    if (colon < toks.size()) {
      // Range-based: any unordered name in the range expression.
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == Token::Kind::kIdent &&
            unordered.count(toks[j].text) > 0) {
          over_unordered = true;
          range_name = toks[j].text;
          break;
        }
      }
    } else {
      // Iterator-based: `it = name.begin()` (or cbegin) in the loop header
      // walks the same unspecified bucket order as the range form — the SoA
      // batch passes iterate ids, so any .begin() walk here is suspect.
      for (std::size_t j = i + 2; j + 2 < close; ++j) {
        if (toks[j].kind == Token::Kind::kIdent &&
            unordered.count(toks[j].text) > 0 && IsPunct(toks[j + 1], ".") &&
            (IsIdentTok(toks[j + 2], "begin") ||
             IsIdentTok(toks[j + 2], "cbegin"))) {
          over_unordered = true;
          range_name = toks[j].text;
          break;
        }
      }
    }
    if (!over_unordered) continue;
    // Body: a braced block or a single statement.
    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (body_begin < toks.size() && IsPunct(toks[body_begin], "{")) {
      body_end = MatchForward(toks, body_begin, "{", "}");
    } else {
      body_end = body_begin;
      while (body_end < toks.size() && !IsPunct(toks[body_end], ";")) ++body_end;
    }
    for (std::size_t j = body_begin; j < body_end && j < toks.size(); ++j) {
      const Token& t = toks[j];
      const bool mutator_call = t.kind == Token::Kind::kIdent &&
                                kMutators.count(t.text) > 0 &&
                                j + 1 < toks.size() && IsPunct(toks[j + 1], "(");
      const bool mutator_op =
          t.kind == Token::Kind::kPunct && kMutatorPuncts.count(t.text) > 0;
      if (mutator_call || mutator_op) {
        out->push_back(
            {"unordered-iteration", toks[i].line,
             "iteration over unordered container '" + range_name +
                 "' accumulates into results ('" + t.text +
                 "' in the loop body) — unordered iteration order is "
                 "unspecified; iterate a sorted copy or keyed order"});
        break;
      }
    }
  }
}

// --- rule: raw-assert ------------------------------------------------------

inline void RuleRawAssert(const SourceFile& f, std::vector<RawFinding>* out) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (IsIdentTok(toks[i], "assert") && IsPunct(toks[i + 1], "(")) {
      out->push_back({"raw-assert", toks[i].line,
                      "raw assert() — use the leveled contracts layer "
                      "(EMIS_EXPECTS/EMIS_ENSURES/EMIS_INVARIANT/"
                      "EMIS_UNREACHABLE from core/contracts.hpp)"});
    }
  }
}

// --- rule: io-in-library ---------------------------------------------------

/// Library files sanctioned to open files for writing: the telemetry
/// stream's OpenTelemetryStream is the library's one write path (everything
/// else writes through caller-provided std::ostream&). Growing this list is
/// an API-review decision, not a lint tweak.
inline const std::set<std::string, std::less<>>& IoWriteWaivers() {
  static const std::set<std::string, std::less<>> kWaived = {
      "src/obs/stream_sink.cpp",
  };
  return kWaived;
}

inline void RuleIoInLibrary(const SourceFile& f, std::vector<RawFinding>* out) {
  if (!InSrc(f.path)) return;
  const auto& toks = f.tokens;
  // Console I/O: banned in all library code except src/obs (whose sinks own
  // rendering); reads (ifstream) stay legal everywhere.
  if (!InObs(f.path)) {
    static const std::set<std::string, std::less<>> kStreams = {"cout", "cerr", "clog"};
    static const std::set<std::string, std::less<>> kCalls = {
        "printf", "fprintf", "puts", "fputs", "putchar", "vprintf", "vfprintf"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      const bool stream = kStreams.count(toks[i].text) > 0;
      const bool call = kCalls.count(toks[i].text) > 0 && i + 1 < toks.size() &&
                        IsPunct(toks[i + 1], "(");
      if (stream || call) {
        out->push_back({"io-in-library", toks[i].line,
                        "console I/O '" + toks[i].text +
                            "' in library code — emit through obs/ sinks "
                            "(trace, report) or return data to the caller"});
      }
    }
  }
  // File-opening-for-write: banned in ALL of src/ — including src/obs —
  // except the waiver list. Library code takes std::ostream& from the
  // caller; only the sanctioned telemetry opener names destinations itself.
  if (IoWriteWaivers().count(f.path) == 0) {
    static const std::set<std::string, std::less<>> kWriters = {
        "ofstream", "fopen", "freopen"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent ||
          kWriters.count(toks[i].text) == 0) {
        continue;
      }
      out->push_back({"io-in-library", toks[i].line,
                      "file-writing I/O '" + toks[i].text +
                          "' in library code — take a std::ostream& from the "
                          "caller, or add the file to the sanctioned waiver "
                          "list (emis_lint IoWriteWaivers)"});
    }
  }
}

// --- rule: float-accumulate-in-reduce --------------------------------------

inline void RuleFloatAccumulateInReduce(
    const SourceFile& f, const std::set<std::string, std::less<>>& float_idents,
    std::vector<RawFinding>* out) {
  if (!InSrc(f.path)) return;
  static const std::set<std::string, std::less<>> kReduceNames = {
      "Merge", "MergeFrom", "Reduce", "Combine", "Accumulate"};
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || kReduceNames.count(toks[i].text) == 0 ||
        !IsPunct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t params_end = MatchForward(toks, i + 1, "(", ")");
    if (params_end >= toks.size()) continue;
    // Definition? Skip const/noexcept/override/trailing-return up to '{';
    // a ';' (declaration) or anything else (a call) ends the attempt.
    std::size_t j = params_end + 1;
    bool is_definition = false;
    while (j < toks.size()) {
      const Token& t = toks[j];
      if (IsPunct(t, "{")) { is_definition = true; break; }
      if (IsIdentTok(t, "const") || IsIdentTok(t, "noexcept") ||
          IsIdentTok(t, "override") || IsIdentTok(t, "final") ||
          IsPunct(t, "->") || IsPunct(t, "::") || t.kind == Token::Kind::kIdent) {
        ++j;
        continue;
      }
      break;
    }
    if (!is_definition) continue;
    const std::size_t body_end = MatchForward(toks, j, "{", "}");
    for (std::size_t k = j; k < body_end && k < toks.size(); ++k) {
      if (!IsPunct(toks[k], "+=") && !IsPunct(toks[k], "-=")) continue;
      const Token* lhs = LhsIdent(toks, k);
      if (lhs != nullptr && float_idents.count(lhs->text) > 0) {
        out->push_back(
            {"float-accumulate-in-reduce", toks[k].line,
             "floating-point accumulation '" + lhs->text + " " + toks[k].text +
                 "' inside reduce path '" + toks[i].text +
                 "' — float reduction is order-sensitive; use integral "
                 "units, or waive with a fixed-merge-order justification"});
      }
    }
  }
}

// --- rule: rng-seed-from-draw ----------------------------------------------

/// Rng draw-method names; shared with observable-commit-order (a draw inside
/// a parallel region perturbs the stream's draw order).
inline const std::set<std::string, std::less<>>& RngDrawNames() {
  static const std::set<std::string, std::less<>> kDraws = {
      "NextU64", "UniformBelow", "UniformInRange", "UniformUnit", "Bernoulli",
      "Bit", "GeometricHalf", "GeometricSkip", "Geometric", "RandomBits"};
  return kDraws;
}

inline void RuleRngSeedFromDraw(const SourceFile& f, std::vector<RawFinding>* out) {
  const auto& kDraws = RngDrawNames();
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdentTok(toks[i], "Rng")) continue;
    // `class Rng {` / `struct Rng {` is the type's own definition, not a
    // construction — scanning its body would flag the draw methods themselves.
    if (i > 0 && (IsIdentTok(toks[i - 1], "class") || IsIdentTok(toks[i - 1], "struct") ||
                  IsIdentTok(toks[i - 1], "enum"))) {
      continue;
    }
    std::size_t open = i + 1;
    if (open < toks.size() && toks[open].kind == Token::Kind::kIdent) ++open;
    if (open >= toks.size()) continue;
    const bool paren = IsPunct(toks[open], "(");
    const bool brace = IsPunct(toks[open], "{");
    if (!paren && !brace) continue;
    const std::size_t close = paren ? MatchForward(toks, open, "(", ")")
                                    : MatchForward(toks, open, "{", "}");
    for (std::size_t j = open + 1; j < close && j < toks.size(); ++j) {
      if (toks[j].kind == Token::Kind::kIdent && kDraws.count(toks[j].text) > 0) {
        out->push_back(
            {"rng-seed-from-draw", toks[i].line,
             "Rng stream seeded from another stream's draw ('" + toks[j].text +
                 "') — seeds become draw-order-dependent; derive children "
                 "with Rng::Split(stream_id) or CounterHash named streams"});
        break;
      }
    }
  }
}

// --- rule: raw-thread ------------------------------------------------------

/// Files sanctioned to spawn OS threads: the persistent worker pool is the
/// repo's single execution layer — everything else (sweeps, sharded rounds)
/// dispatches through par::ParallelFor. Growing this list is an API-review
/// decision, not a lint tweak.
inline const std::set<std::string, std::less<>>& RawThreadWaivers() {
  static const std::set<std::string, std::less<>> kWaived = {
      "src/verify/parallel.cpp",
  };
  return kWaived;
}

inline void RuleRawThread(const SourceFile& f, std::vector<RawFinding>* out) {
  const bool scoped = InSrc(f.path) || InBench(f.path) || InTools(f.path);
  if (!scoped || RawThreadWaivers().count(f.path) > 0) return;
  static const std::set<std::string, std::less<>> kSpawners = {"thread",
                                                               "jthread", "async"};
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsIdentTok(toks[i], "std") || !IsPunct(toks[i + 1], "::") ||
        toks[i + 2].kind != Token::Kind::kIdent ||
        kSpawners.count(toks[i + 2].text) == 0) {
      continue;
    }
    // std::thread::hardware_concurrency() is a read of machine shape, not a
    // spawn — the pool sizes itself with it, and callers may too.
    if (i + 4 < toks.size() && IsPunct(toks[i + 3], "::") &&
        IsIdentTok(toks[i + 4], "hardware_concurrency")) {
      continue;
    }
    out->push_back({"raw-thread", toks[i + 2].line,
                    "raw thread spawn 'std::" + toks[i + 2].text +
                        "' outside src/verify/parallel.cpp — dispatch through "
                        "par::ParallelFor so the persistent pool owns every "
                        "OS thread (or extend emis_lint RawThreadWaivers)"});
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Corpus + engine

struct Corpus {
  std::vector<SourceFile> files;
};

/// Path stem for sibling pairing: "src/obs/metrics.cpp" → "src/obs/metrics".
/// Declarations in metrics.hpp inform rules run over metrics.cpp and back.
inline std::string Stem(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  return std::string(dot == std::string_view::npos ? path : path.substr(0, dot));
}

// ---------------------------------------------------------------------------
// Pass 1: project-wide symbol index and approximate call graph
//
// Function definitions are found syntactically (`name ( params ) [quals] {`,
// including constructor init lists), call sites are `name (` tokens inside a
// body, and calls merge by unqualified name across translation units — the
// same name-merge approximation a human uses reading grep output. Lambdas
// passed to par::ParallelFor are indexed separately as "parallel regions"
// with their capture lists; the graph rules treat them as roots.

/// One call site inside a function body or parallel region.
struct CallSite {
  std::string name;      ///< callee identifier
  /// Root of the receiver chain for qualified/member calls:
  /// `Pool::Instance().Run(...)` → "Pool", `scheduler.Run()` → "scheduler",
  /// empty for unqualified calls. Disambiguates the Pool::Run dispatch sink
  /// from unrelated methods that happen to be named Run.
  std::string receiver;
  int line = 0;
};

/// One syntactic function definition.
struct FunctionDef {
  std::string name;       ///< unqualified name ("Run")
  std::string qualified;  ///< "Scheduler::Run" when defined out-of-class
  std::size_t file = 0;   ///< index into Corpus::files
  int line = 0;
  std::size_t body_begin = 0;  ///< token index of '{'
  std::size_t body_end = 0;    ///< token index of matching '}'
  std::vector<CallSite> calls;
  /// The definition READS par's tl_in_pool_worker guard (not just assigns
  /// it): nested calls run inline, so reaching this dispatcher from inside
  /// a parallel region cannot re-enter the pool. This is the machine-checked
  /// signature of the PR 8 fix (src/verify/parallel.cpp ParallelFor).
  bool reads_pool_guard = false;
};

/// A lambda passed to par::ParallelFor — the root of a parallel region.
struct ParallelRegion {
  std::size_t file = 0;
  int line = 0;                 ///< line of the ParallelFor call
  std::string enclosing;        ///< name of the enclosing function, if any
  bool captures_by_ref = false; ///< capture list contains '&' or 'this'
  std::vector<std::string> captures;  ///< identifiers named in the capture list
  std::vector<std::string> params;    ///< lambda parameter names
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::vector<CallSite> calls;
};

struct SymbolIndex {
  std::vector<FunctionDef> functions;
  std::vector<ParallelRegion> regions;
  /// Unqualified name → indices into `functions` (overloads and same-named
  /// methods merge — the deliberate approximation).
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_name;
  std::size_t call_edges = 0;  ///< total call sites recorded
};

namespace detail {

/// Keywords that look like `ident (` but are never calls or definitions.
inline const std::set<std::string, std::less<>>& Keywords() {
  static const std::set<std::string, std::less<>> kKeywords = {
      "if", "for", "while", "switch", "return", "sizeof", "alignof",
      "catch", "new", "delete", "throw", "else", "do", "case", "default",
      "break", "continue", "goto", "using", "namespace", "template",
      "typename", "class", "struct", "enum", "union", "public", "private",
      "protected", "static_assert", "static_cast", "const_cast",
      "reinterpret_cast", "dynamic_cast", "co_await", "co_return",
      "co_yield", "operator", "decltype", "noexcept", "alignas", "const",
      "constexpr", "consteval", "constinit", "static", "inline", "virtual",
      "explicit", "friend", "mutable", "auto", "void", "int", "bool",
      "char", "float", "double", "unsigned", "signed", "long", "short",
      "true", "false", "nullptr", "this", "try", "requires", "concept",
      "typedef", "extern", "thread_local", "volatile"};
  return kKeywords;
}

/// Root identifier of the receiver chain ending just before token `i` (the
/// callee name): walks left over `.`/`->`/`::` components and balanced
/// `(...)`/`[...]` groups. `Pool::Instance().Run` → "Pool"; returns "" when
/// the chain does not start at a plain identifier.
inline std::string ReceiverRoot(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return "";
  std::size_t j = i - 1;
  if (!IsPunct(toks[j], ".") && !IsPunct(toks[j], "->") && !IsPunct(toks[j], "::")) {
    return "";
  }
  std::string root;
  while (true) {
    if (j == 0) return root;
    --j;  // step onto the component left of the separator
    // Skip one balanced () or [] group (a call or index in the chain).
    while (IsPunct(toks[j], ")") || IsPunct(toks[j], "]")) {
      const std::string_view closer = toks[j].text;
      const std::string_view opener = closer == ")" ? "(" : "[";
      int depth = 0;
      while (true) {
        if (IsPunct(toks[j], closer)) ++depth;
        else if (IsPunct(toks[j], opener) && --depth == 0) break;
        if (j == 0) return root;
        --j;
      }
      if (j == 0) return root;
      --j;
    }
    if (toks[j].kind != Token::Kind::kIdent) return root;
    root = toks[j].text;
    if (j == 0 || (!IsPunct(toks[j - 1], ".") && !IsPunct(toks[j - 1], "->") &&
                   !IsPunct(toks[j - 1], "::"))) {
      return root;
    }
    --j;  // onto the separator; loop steps past it
  }
}

/// Collects `name (` call sites in token range [begin, end).
inline void CollectCalls(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t end, std::vector<CallSite>* out) {
  for (std::size_t i = begin; i < end && i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || !IsPunct(toks[i + 1], "(") ||
        Keywords().count(toks[i].text) > 0) {
      continue;
    }
    out->push_back({toks[i].text, ReceiverRoot(toks, i), toks[i].line});
  }
}

/// True when [begin, end) contains a READ of `tl_in_pool_worker` (an
/// occurrence not immediately followed by '='). Assignments alone mark the
/// dispatcher itself, not a re-entrancy guard.
inline bool ReadsPoolGuard(const std::vector<Token>& toks, std::size_t begin,
                           std::size_t end) {
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (IsIdentTok(toks[i], "tl_in_pool_worker") &&
        (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "="))) {
      return true;
    }
  }
  return false;
}

/// Matches a function definition whose name is at `i` (name already checked
/// to be a non-keyword ident followed by '('). On success fills body range
/// and returns true. Handles `const/noexcept/override/final`, trailing
/// return types, and constructor init lists between the ')' and the '{'.
inline bool MatchFunctionDef(const std::vector<Token>& toks, std::size_t i,
                             std::size_t* body_begin, std::size_t* body_end) {
  const std::size_t params_end = MatchForward(toks, i + 1, "(", ")");
  if (params_end >= toks.size()) return false;
  std::size_t j = params_end + 1;
  bool in_init_list = false;
  while (j < toks.size()) {
    const Token& t = toks[j];
    if (IsPunct(t, "{")) {
      if (in_init_list) {
        // Could be a member's brace-init `x_{0}` rather than the body: it is
        // the body iff the token after the matching '}' is not ',' or '{'.
        const std::size_t close = MatchForward(toks, j, "{", "}");
        if (close + 1 < toks.size() && (IsPunct(toks[close + 1], ",") ||
                                        IsPunct(toks[close + 1], "{"))) {
          j = close + 1;
          continue;
        }
      }
      *body_begin = j;
      *body_end = MatchForward(toks, j, "{", "}");
      return *body_end < toks.size();
    }
    if (IsPunct(t, ":")) { in_init_list = true; ++j; continue; }
    if (IsPunct(t, "(")) { j = MatchForward(toks, j, "(", ")") + 1; continue; }
    if (IsPunct(t, "<")) {
      const std::size_t past = SkipTemplateArgs(toks, j);
      if (past == j) return false;
      j = past;
      continue;
    }
    if (t.kind == Token::Kind::kIdent || IsPunct(t, "->") || IsPunct(t, "::") ||
        IsPunct(t, "&") || IsPunct(t, "&&") || IsPunct(t, "*") ||
        (in_init_list && IsPunct(t, ","))) {
      ++j;
      continue;
    }
    return false;
  }
  return false;
}

/// Extracts the lambda argument of a ParallelFor call whose name token is at
/// `i`. Fills the region's capture/param/body fields; returns false when the
/// argument list holds no lambda (e.g. the ParallelFor definition itself).
inline bool MatchParallelRegion(const std::vector<Token>& toks, std::size_t i,
                                ParallelRegion* region) {
  const std::size_t args_end = MatchForward(toks, i + 1, "(", ")");
  if (args_end >= toks.size()) return false;
  for (std::size_t j = i + 2; j < args_end; ++j) {
    if (!IsPunct(toks[j], "[")) continue;
    const std::size_t cap_end = MatchForward(toks, j, "[", "]");
    if (cap_end >= args_end) return false;
    for (std::size_t c = j; c <= cap_end; ++c) {
      if (IsPunct(toks[c], "&") || IsIdentTok(toks[c], "this")) {
        region->captures_by_ref = true;
      }
      if (toks[c].kind == Token::Kind::kIdent && !IsIdentTok(toks[c], "this")) {
        region->captures.push_back(toks[c].text);
      }
    }
    std::size_t k = cap_end + 1;
    if (k < args_end && IsPunct(toks[k], "(")) {
      const std::size_t params_end = MatchForward(toks, k, "(", ")");
      // Last identifier of each comma-separated parameter is its name (an
      // unnamed param contributes its type's last ident — harmless).
      std::size_t last_ident = toks.size();
      for (std::size_t p = k + 1; p <= params_end && p < toks.size(); ++p) {
        if (IsPunct(toks[p], ",") || p == params_end) {
          if (last_ident < toks.size()) region->params.push_back(toks[last_ident].text);
          last_ident = toks.size();
        } else if (toks[p].kind == Token::Kind::kIdent) {
          last_ident = p;
        }
      }
      k = params_end + 1;
    }
    while (k < args_end && (IsIdentTok(toks[k], "mutable") ||
                            IsIdentTok(toks[k], "noexcept") ||
                            IsPunct(toks[k], "->") ||
                            toks[k].kind == Token::Kind::kIdent ||
                            IsPunct(toks[k], "::"))) {
      ++k;
    }
    if (k >= args_end || !IsPunct(toks[k], "{")) return false;
    region->body_begin = k;
    region->body_end = MatchForward(toks, k, "{", "}");
    region->line = toks[i].line;
    return region->body_end < toks.size();
  }
  return false;
}

}  // namespace detail

/// Builds the project-wide symbol index over an already-lexed corpus (the
/// single-tokenize discipline: Lex ran once per file; everything here and in
/// every rule reuses those tokens).
inline SymbolIndex BuildIndex(const Corpus& corpus) {
  SymbolIndex index;
  for (std::size_t fi = 0; fi < corpus.files.size(); ++fi) {
    const SourceFile& f = corpus.files[fi];
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent ||
          !detail::IsPunct(toks[i + 1], "(") ||
          detail::Keywords().count(toks[i].text) > 0) {
        continue;
      }
      FunctionDef def;
      if (!detail::MatchFunctionDef(toks, i, &def.body_begin, &def.body_end)) {
        // Not a definition; if it sits inside some body it is recorded as a
        // call site by the enclosing definition's CollectCalls.
        continue;
      }
      def.name = toks[i].text;
      def.qualified = def.name;
      if (i >= 2 && detail::IsPunct(toks[i - 1], "::") &&
          toks[i - 2].kind == Token::Kind::kIdent) {
        def.qualified = toks[i - 2].text + "::" + def.name;
      }
      def.file = fi;
      def.line = toks[i].line;
      detail::CollectCalls(toks, def.body_begin + 1, def.body_end, &def.calls);
      def.reads_pool_guard =
          detail::ReadsPoolGuard(toks, def.body_begin + 1, def.body_end);
      index.call_edges += def.calls.size();
      index.by_name[def.name].push_back(index.functions.size());
      index.functions.push_back(std::move(def));
    }
    // Parallel regions: every ParallelFor call site carrying a lambda.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!detail::IsIdentTok(toks[i], "ParallelFor") ||
          !detail::IsPunct(toks[i + 1], "(")) {
        continue;
      }
      ParallelRegion region;
      if (!detail::MatchParallelRegion(toks, i, &region)) continue;
      region.file = fi;
      for (const FunctionDef& def : index.functions) {
        if (def.file == fi && def.body_begin < i && i < def.body_end) {
          region.enclosing = def.name;
        }
      }
      detail::CollectCalls(toks, region.body_begin + 1, region.body_end,
                           &region.calls);
      index.call_edges += region.calls.size();
      index.regions.push_back(std::move(region));
    }
  }
  return index;
}

// ---------------------------------------------------------------------------
// Pass 2: graph-aware rules
//
// All four rules consume the SymbolIndex; none re-tokenizes. Traversals
// merge callees by unqualified name (see BuildIndex), so a chain through an
// overload set explores every definition — false positives are disambiguated
// by receiver roots and guard reads, false negatives are documented in
// DESIGN.md §14.

namespace detail {

/// True when `line` (or the line above it, or the whole file) carries an
/// `// emis-lint: allow(rule)` waiver. Shared by Lint's suppression pass and
/// the taint rules (a waived direct use must not seed transitive taint).
inline bool LineWaived(const SourceFile& f, int line, const std::string& rule) {
  return f.file_allows.count(rule) > 0 || f.file_allows.count("*") > 0 ||
         f.allows.count({line, rule}) > 0 || f.allows.count({line, "*"}) > 0 ||
         f.allows.count({line - 1, rule}) > 0 ||
         f.allows.count({line - 1, "*"}) > 0;
}

/// One witness-chain hop: "<file>:<line> <name>".
inline std::string Hop(const Corpus& corpus, std::size_t file, int line,
                       const std::string& name) {
  return corpus.files[file].path + ":" + std::to_string(line) + " " + name;
}

// --- rule: nested-dispatch -------------------------------------------------

/// True when the call site is a dispatch-layer entry: ParallelFor and
/// RunSweep by name, Run only when the receiver chain roots at Pool
/// (`Pool::Instance().Run(...)`) — an unrelated `scheduler.Run()` is not a
/// sink, it is an edge to descend through.
inline bool IsDispatchSink(const CallSite& c) {
  if (c.name == "ParallelFor" || c.name == "RunSweep") return true;
  return c.name == "Run" && c.receiver == "Pool";
}

/// A ParallelFor sink is safe when every indexed definition of ParallelFor
/// READS tl_in_pool_worker: nested calls run inline instead of re-entering
/// the pool (the PR 8 fix, machine-checked). RunSweep and Pool::Run carry no
/// such guard, so they are never safe from inside a region.
inline bool SinkIsGuarded(const SymbolIndex& index, const CallSite& c) {
  if (c.name != "ParallelFor") return false;
  const auto it = index.by_name.find(c.name);
  if (it == index.by_name.end() || it->second.empty()) return false;
  for (const std::size_t d : it->second) {
    if (!index.functions[d].reads_pool_guard) return false;
  }
  return true;
}

/// Flags any call-graph path from a parallel-region body back into the
/// dispatch layer. The pool serializes dispatches on a non-recursive mutex,
/// so re-entry from a worker self-deadlocks (the PR 8 bug shape).
inline void RuleNestedDispatch(const Corpus& corpus, const SymbolIndex& index,
                               std::vector<std::vector<RawFinding>>* raw_by_file) {
  for (const ParallelRegion& region : index.regions) {
    std::set<std::string> visited;  // function names already explored
    std::set<std::string> flagged;  // sink labels already reported
    std::vector<std::string> path;  // witness hops down to the current calls
    const auto visit = [&](const auto& self, const std::vector<CallSite>& calls,
                           std::size_t call_file) -> void {
      for (const CallSite& c : calls) {
        if (IsDispatchSink(c)) {
          if (SinkIsGuarded(index, c)) continue;
          const std::string sink = c.name == "Run" ? "Pool::Run" : c.name;
          if (!flagged.insert(sink).second) continue;
          RawFinding finding{"nested-dispatch", region.line,
                             "parallel region" +
                                 (region.enclosing.empty()
                                      ? std::string()
                                      : " in '" + region.enclosing + "'") +
                                 " re-enters the dispatch layer through '" +
                                 sink +
                                 "' — nested dispatch self-deadlocks on the "
                                 "pool's non-recursive dispatch mutex; guard "
                                 "the dispatcher with a tl_in_pool_worker "
                                 "read so nested calls run inline"};
          finding.symbol = region.enclosing.empty() ? sink : region.enclosing;
          finding.witness = path;
          finding.witness.push_back(Hop(corpus, call_file, c.line, sink));
          (*raw_by_file)[region.file].push_back(std::move(finding));
          continue;
        }
        const auto it = index.by_name.find(c.name);
        if (it == index.by_name.end()) continue;
        if (!visited.insert(c.name).second) continue;
        for (const std::size_t d : it->second) {
          const FunctionDef& def = index.functions[d];
          path.push_back(Hop(corpus, call_file, c.line, c.name));
          self(self, def.calls, def.file);
          path.pop_back();
        }
      }
    };
    visit(visit, region.calls, region.file);
  }
}

// --- rule: parallel-region-mutation ----------------------------------------

/// Shared state the scheduler's sharded passes write in parallel by design.
/// Each entry must be provably race-free; justifications live here so a
/// reviewer touching the list confronts them (details in DESIGN.md §14):
///   ctx_hot_ /           per-node hot/cold context halves (parallel arrays,
///   ctx_cold_            radio/process.hpp) — the shard cut makes writes
///                        row-disjoint; cross-node effects commit in a
///                        serial filing pass (pinned by test_sharded_run).
///   tx_buffers_          per-shard Channel::TxShardBuffer stamping buffers,
///                        merged serially in fixed shard order (MergeTxShard).
///   shard_tx_count_ /    per-shard counters, one writer each, committed
///   shard_listen_count_  once per round by CommitShardTotals.
inline const std::set<std::string, std::less<>>& ParallelWriteSanctioned() {
  static const std::set<std::string, std::less<>> kSanctioned = {
      "ctx_hot_", "ctx_cold_", "tx_buffers_", "shard_tx_count_",
      "shard_listen_count_"};
  return kSanctioned;
}

/// Root identifier of the assignment target ending just before the write
/// operator at `op`: walks back over `.`/`->` member chains and balanced
/// `[...]` index groups, stopping at `lo`. `ctx.now = t` → "ctx",
/// `counts_[s] += 1` → "counts_", `*p = x` → "p". Returns "" for targets the
/// walk cannot root (parenthesized or call-result LHS — a documented
/// false-negative edge).
inline std::string LhsRootIdent(const std::vector<Token>& toks, std::size_t op,
                                std::size_t lo) {
  if (op == 0 || op <= lo + 1) return "";
  std::size_t j = op - 1;
  while (true) {
    if (IsPunct(toks[j], "]")) {
      int depth = 0;
      while (true) {
        if (IsPunct(toks[j], "]")) ++depth;
        else if (IsPunct(toks[j], "[") && --depth == 0) break;
        if (j <= lo) return "";
        --j;
      }
      if (j <= lo) return "";
      --j;
      continue;
    }
    if (toks[j].kind == Token::Kind::kIdent) {
      if (j > lo + 1 && (IsPunct(toks[j - 1], ".") || IsPunct(toks[j - 1], "->"))) {
        j -= 2;
        continue;
      }
      return toks[j].text;
    }
    return "";
  }
}

/// Container-mutating member calls treated as writes to their receiver.
inline const std::set<std::string, std::less<>>& MutatingMemberCalls() {
  static const std::set<std::string, std::less<>> kMutators = {
      "push_back", "emplace_back", "emplace", "insert", "erase", "clear",
      "resize", "assign", "Add", "Set", "Push", "Record", "Append",
      "Observe", "Accumulate", "Merge"};
  return kMutators;
}

/// Scans one parallel-region body for writes whose target roots outside the
/// lambda's own locals/params/value-captures and is not sanctioned.
inline void ScanRegionMutations(const Corpus& corpus,
                                const ParallelRegion& region,
                                std::vector<RawFinding>* out) {
  const auto& toks = corpus.files[region.file].tokens;
  const std::size_t lo = region.body_begin;
  const std::size_t hi = region.body_end;

  // Names owned by the lambda: its parameters, plus (when the capture list
  // is explicit by-value) the copied captures.
  std::set<std::string, std::less<>> locals(region.params.begin(),
                                            region.params.end());
  if (!region.captures_by_ref) {
    locals.insert(region.captures.begin(), region.captures.end());
  }

  // Declaration pre-pass: `[const] qualified-type [<args>] [*&]* name` adds
  // `name` to the locals and records its initializing '=' so the write scan
  // skips it. Handles comma declarator lists and range-for heads.
  static const std::set<std::string, std::less<>> kTypeKeywords = {
      "auto", "unsigned", "signed", "int", "long", "short", "char", "bool",
      "float", "double"};
  std::set<std::size_t> decl_inits;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    std::size_t j = i;
    if (IsIdentTok(toks[j], "const") || IsIdentTok(toks[j], "constexpr")) ++j;
    if (j >= hi || toks[j].kind != Token::Kind::kIdent) continue;
    if (Keywords().count(toks[j].text) > 0 && kTypeKeywords.count(toks[j].text) == 0) {
      continue;
    }
    // Qualified type components: A::B::C.
    while (j + 2 < hi && IsPunct(toks[j + 1], "::") &&
           toks[j + 2].kind == Token::Kind::kIdent) {
      j += 2;
    }
    std::size_t k = j + 1;
    if (k < hi && IsPunct(toks[k], "<")) {
      const std::size_t past = SkipTemplateArgs(toks, k);
      if (past == k) continue;  // '<' was a comparison, not template args
      k = past;
    }
    // Further type keywords (`unsigned long long`) and cv/ref/ptr sigils.
    while (k < hi && (IsIdentTok(toks[k], "const") ||
                      (toks[k].kind == Token::Kind::kIdent &&
                       kTypeKeywords.count(toks[k].text) > 0) ||
                      IsPunct(toks[k], "&") || IsPunct(toks[k], "&&") ||
                      IsPunct(toks[k], "*"))) {
      ++k;
    }
    if (k >= hi || toks[k].kind != Token::Kind::kIdent ||
        Keywords().count(toks[k].text) > 0) {
      continue;
    }
    // Declarator list: name then '=', '{', '(', ';', ',' or ':' (range-for).
    while (true) {
      if (k + 1 >= hi || !(IsPunct(toks[k + 1], "=") || IsPunct(toks[k + 1], "{") ||
                           IsPunct(toks[k + 1], "(") || IsPunct(toks[k + 1], ";") ||
                           IsPunct(toks[k + 1], ",") || IsPunct(toks[k + 1], ":"))) {
        break;
      }
      locals.insert(toks[k].text);
      std::size_t t = k + 1;
      if (IsPunct(toks[t], "=")) decl_inits.insert(t);
      // Advance past the initializer to the declarator separator.
      int depth = 0;
      while (t < hi) {
        if (IsPunct(toks[t], "(") || IsPunct(toks[t], "[") || IsPunct(toks[t], "{")) {
          ++depth;
        } else if (IsPunct(toks[t], ")") || IsPunct(toks[t], "]") ||
                   IsPunct(toks[t], "}")) {
          if (--depth < 0) { t = hi; break; }
        } else if (depth == 0 && (IsPunct(toks[t], ",") || IsPunct(toks[t], ";") ||
                                  IsPunct(toks[t], ":"))) {
          break;
        }
        ++t;
      }
      if (t >= hi || !IsPunct(toks[t], ",")) break;
      k = t + 1;
      if (k >= hi || toks[k].kind != Token::Kind::kIdent ||
          Keywords().count(toks[k].text) > 0) {
        break;
      }
    }
  }

  // Write scan: assignment/compound-assignment operators, ++/--, and
  // mutating member calls whose receiver roots outside the locals.
  static const std::set<std::string, std::less<>> kWriteOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const Token& t = toks[i];
    std::string root;
    if (t.kind == Token::Kind::kPunct && kWriteOps.count(t.text) > 0) {
      if (decl_inits.count(i) > 0) continue;
      root = LhsRootIdent(toks, i, lo);
    } else if (t.kind == Token::Kind::kPunct &&
               (t.text == "++" || t.text == "--")) {
      if (i + 1 < hi && toks[i + 1].kind == Token::Kind::kIdent) {
        root = toks[i + 1].text;  // prefix
      } else {
        root = LhsRootIdent(toks, i, lo);  // postfix
      }
    } else if (t.kind == Token::Kind::kIdent &&
               MutatingMemberCalls().count(t.text) > 0 && i + 1 < hi &&
               IsPunct(toks[i + 1], "(") && i > lo + 1 &&
               (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
      root = ReceiverRoot(toks, i);
    } else {
      continue;
    }
    if (root.empty() || locals.count(root) > 0 ||
        ParallelWriteSanctioned().count(root) > 0) {
      continue;
    }
    RawFinding finding{"parallel-region-mutation", t.line,
                       "write to captured shared state '" + root +
                           "' inside a ParallelFor lambda" +
                           (region.enclosing.empty()
                                ? std::string()
                                : " (in '" + region.enclosing + "')") +
                           " — parallel mutation of shared state breaks the "
                           "bit-identical contract; write a per-index slot "
                           "and commit serially, or sanction the symbol with "
                           "a shard-disjointness justification"};
    finding.symbol = root;
    out->push_back(std::move(finding));
  }
}

inline void RuleParallelRegionMutation(
    const Corpus& corpus, const SymbolIndex& index,
    std::vector<std::vector<RawFinding>>* raw_by_file) {
  for (const ParallelRegion& region : index.regions) {
    ScanRegionMutations(corpus, region, &(*raw_by_file)[region.file]);
  }
}

// --- rules: banned-random-taint / banned-clock-taint ------------------------

/// First un-waived direct banned-source use inside [begin, end); fills line
/// and the offending name. A use waived for the base token rule (or the
/// taint rule) is deliberate and must not seed transitive taint — otherwise
/// one justified waiver would cascade into findings at every caller.
inline bool DirectBannedUse(const SourceFile& f, std::size_t begin,
                            std::size_t end, bool clock, int* line,
                            std::string* what) {
  const std::string base(clock ? "banned-clock" : "banned-random");
  const std::string taint = base + "-taint";
  const auto& toks = f.tokens;
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    bool hit = false;
    if (clock) {
      hit = BannedClockNames().count(toks[i].text) > 0;
    } else {
      hit = BannedRandomTypes().count(toks[i].text) > 0 ||
            (BannedRandomCalls().count(toks[i].text) > 0 &&
             i + 1 < toks.size() && IsPunct(toks[i + 1], "("));
    }
    if (!hit) continue;
    if (LineWaived(f, toks[i].line, base) || LineWaived(f, toks[i].line, taint)) {
      continue;
    }
    *line = toks[i].line;
    *what = toks[i].text;
    return true;
  }
  return false;
}

/// Flags every in-scope function whose body transitively reaches a banned
/// RNG/clock source through the call graph, at its definition line, with the
/// witness chain down to the direct use. Functions with a direct use are
/// left to the token rule (one finding per fact).
inline void RuleTransitiveTaint(const Corpus& corpus, const SymbolIndex& index,
                                bool clock,
                                std::vector<std::vector<RawFinding>>* raw_by_file) {
  // RawFinding::rule is a string_view: it must reference static storage.
  const std::string_view rule =
      clock ? std::string_view("banned-clock-taint")
            : std::string_view("banned-random-taint");
  const std::size_t n = index.functions.size();
  enum class State : std::uint8_t { kClean, kDirect, kTainted };
  std::vector<State> state(n, State::kClean);
  std::vector<int> direct_line(n, 0);
  std::vector<std::string> direct_what(n);
  struct TaintHop { int line = 0; std::string name; std::size_t next = 0; };
  std::vector<TaintHop> hops(n);

  // Seed: direct un-waived uses inside in-scope bodies.
  std::vector<bool> in_scope(n, false);
  for (std::size_t d = 0; d < n; ++d) {
    const FunctionDef& def = index.functions[d];
    const SourceFile& f = corpus.files[def.file];
    in_scope[d] = clock ? ClockScope(f.path) : RandomScope(f.path);
    if (!in_scope[d]) continue;  // obs (and bench, for clocks) is a barrier
    if (DirectBannedUse(f, def.body_begin + 1, def.body_end, clock,
                        &direct_line[d], &direct_what[d])) {
      state[d] = State::kDirect;
    }
  }

  // Propagate to a fixed point (handles cycles; ≤ depth-of-graph passes).
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t d = 0; d < n; ++d) {
      if (state[d] != State::kClean || !in_scope[d]) continue;
      for (const CallSite& c : index.functions[d].calls) {
        const auto it = index.by_name.find(c.name);
        if (it == index.by_name.end()) continue;
        for (const std::size_t t : it->second) {
          if (t == d || state[t] == State::kClean) continue;
          state[d] = State::kTainted;
          hops[d] = {c.line, c.name, t};
          changed = true;
          break;
        }
        if (state[d] != State::kClean) break;
      }
    }
  }

  for (std::size_t d = 0; d < n; ++d) {
    if (state[d] != State::kTainted) continue;
    const FunctionDef& def = index.functions[d];
    RawFinding finding{rule, def.line,
                       "function '" + def.qualified +
                           "' transitively reaches banned " +
                           (clock ? std::string("clock") : std::string("RNG")) +
                           " source '%s' — " +
                           (clock ? std::string(
                                        "route timing through obs::"
                                        "MonotonicSeconds so library code "
                                        "stays wall-clock-free")
                                  : std::string(
                                        "route randomness through emis::Rng "
                                        "streams so draw order stays "
                                        "deterministic"))};
    // Witness chain: this def's call site, each intermediate def's call
    // site, ending at the direct use.
    std::size_t cur = d;
    std::set<std::size_t> seen;
    while (state[cur] == State::kTainted && seen.insert(cur).second) {
      finding.witness.push_back(Hop(corpus, index.functions[cur].file,
                                    hops[cur].line, hops[cur].name));
      cur = hops[cur].next;
    }
    finding.witness.push_back(corpus.files[index.functions[cur].file].path +
                              ":" + std::to_string(direct_line[cur]) + " " +
                              direct_what[cur]);
    const std::size_t pct = finding.message.find("%s");
    finding.message.replace(pct, 2, direct_what[cur]);
    finding.symbol = def.qualified;
    (*raw_by_file)[def.file].push_back(std::move(finding));
  }
}

// --- rule: observable-commit-order ------------------------------------------

/// Calls whose global order IS the observable contract: file actions, trace
/// and telemetry emission, energy-ledger charges, shard merges, and Rng
/// draws (RngDrawNames). Reaching one from inside a parallel region outside
/// a sanctioned serial-commit function reorders artifacts under --jobs.
inline const std::set<std::string, std::less<>>& ObservableSinkNames() {
  static const std::set<std::string, std::less<>> kSinks = {
      "FileAction", "OnEvent", "Emit", "EmitControl", "EmitHeartbeat",
      "EmitRoundTrace", "CommitShardTotals", "ChargeTransmit", "ChargeListen",
      "ChargeAwake", "MergeTxShard"};
  return kSinks;
}

/// Functions sanctioned to touch observables from inside a parallel region.
/// The traversal stops at these names instead of descending. Justifications
/// (details in DESIGN.md §14):
///   ShardTransmitPass /  shard-local stamping and per-node energy cells;
///   ShardListenPass      the serial MergeTxShard/CommitShardTotals pass
///                        after the join commits the observables.
///   Step                 flat-protocol per-node steps draw only from the
///                        node's OWN Rng stream and write its own lane.
///   RunMis               a whole run is trial-isolated inside a sweep —
///                        every sink it reaches is owned by the trial and
///                        merged serially in (size, seed) order afterwards.
inline const std::set<std::string, std::less<>>& SerialCommitSanctioned() {
  static const std::set<std::string, std::less<>> kSanctioned = {
      "ShardTransmitPass", "ShardListenPass", "Step", "RunMis"};
  return kSanctioned;
}

inline void RuleObservableCommitOrder(
    const Corpus& corpus, const SymbolIndex& index,
    std::vector<std::vector<RawFinding>>* raw_by_file) {
  for (const ParallelRegion& region : index.regions) {
    std::set<std::string> visited;
    std::set<std::string> flagged;
    std::vector<std::string> path;
    const auto visit = [&](const auto& self, const std::vector<CallSite>& calls,
                           std::size_t call_file) -> void {
      for (const CallSite& c : calls) {
        const bool is_sink = ObservableSinkNames().count(c.name) > 0 ||
                             RngDrawNames().count(c.name) > 0;
        if (is_sink) {
          // Direct calls anchor (and dedup) at their own line, so a second
          // call to an already-waived sink still surfaces; deeper chains
          // anchor at the region and dedup per sink name.
          const bool direct = path.empty();
          const std::string key =
              direct ? c.name + ":" + std::to_string(c.line) : c.name;
          if (!flagged.insert(key).second) continue;
          RawFinding finding{
              "observable-commit-order",
              direct ? c.line : region.line,
              "observable '" + c.name +
                  "' is reachable from inside a ParallelFor lambda" +
                  (region.enclosing.empty()
                       ? std::string()
                       : " (region in '" + region.enclosing + "')") +
                  " outside the sanctioned serial-commit functions — "
                  "observables must commit serially in a fixed order; stage "
                  "into a per-shard buffer and merge after the join, or "
                  "waive with a trial-/shard-locality justification"};
          finding.symbol = c.name;
          finding.witness = path;
          finding.witness.push_back(Hop(corpus, call_file, c.line, c.name));
          (*raw_by_file)[region.file].push_back(std::move(finding));
          continue;
        }
        if (SerialCommitSanctioned().count(c.name) > 0) continue;
        const auto it = index.by_name.find(c.name);
        if (it == index.by_name.end()) continue;
        if (!visited.insert(c.name).second) continue;
        for (const std::size_t d : it->second) {
          const FunctionDef& def = index.functions[d];
          path.push_back(Hop(corpus, call_file, c.line, c.name));
          self(self, def.calls, def.file);
          path.pop_back();
        }
      }
    };
    visit(visit, region.calls, region.file);
  }
}

}  // namespace detail

/// Runs every rule over the corpus, applies suppressions, sorts findings.
inline Report Lint(const Corpus& corpus) {
  // Floating-point declarations are pooled per stem so a .cpp sees the
  // members its header declares (the two-file symbol table).
  std::map<std::string, std::set<std::string, std::less<>>> floats_by_stem;
  for (const SourceFile& f : corpus.files) {
    detail::CollectFloatIdents(f, &floats_by_stem[Stem(f.path)]);
  }

  // Pass 1: the symbol index (tokens were lexed once in LoadCorpus and are
  // shared by the token rules, the index, and every graph rule).
  const SymbolIndex index = BuildIndex(corpus);

  Report report;
  report.files_scanned = corpus.files.size();
  report.symbols_indexed = index.functions.size();
  report.call_edges = index.call_edges;

  std::vector<std::vector<detail::RawFinding>> raw_by_file(corpus.files.size());
  for (std::size_t i = 0; i < corpus.files.size(); ++i) {
    const SourceFile& f = corpus.files[i];
    std::vector<detail::RawFinding>* raw = &raw_by_file[i];
    detail::RuleBannedRandom(f, raw);
    detail::RuleBannedClock(f, raw);
    detail::RuleUnorderedIteration(f, raw);
    detail::RuleRawAssert(f, raw);
    detail::RuleIoInLibrary(f, raw);
    detail::RuleFloatAccumulateInReduce(f, floats_by_stem[Stem(f.path)], raw);
    detail::RuleRngSeedFromDraw(f, raw);
    detail::RuleRawThread(f, raw);
  }

  // Pass 2: graph rules, attributed to the file holding the flagged line.
  detail::RuleNestedDispatch(corpus, index, &raw_by_file);
  detail::RuleParallelRegionMutation(corpus, index, &raw_by_file);
  detail::RuleTransitiveTaint(corpus, index, /*clock=*/false, &raw_by_file);
  detail::RuleTransitiveTaint(corpus, index, /*clock=*/true, &raw_by_file);
  detail::RuleObservableCommitOrder(corpus, index, &raw_by_file);

  for (std::size_t i = 0; i < corpus.files.size(); ++i) {
    const SourceFile& f = corpus.files[i];
    for (detail::RawFinding& r : raw_by_file[i]) {
      const std::string rule(r.rule);
      if (detail::LineWaived(f, r.line, rule)) {
        ++report.suppressed;
        ++report.suppressed_by_rule[rule];
      } else {
        report.findings.push_back({rule, f.path, r.line, std::move(r.message),
                                   std::move(r.symbol), std::move(r.witness)});
      }
    }
  }
  std::sort(report.findings.begin(), report.findings.end());
  return report;
}

/// Lints a single in-memory source (fixture tests); `path` picks the scopes.
inline Report LintSource(std::string path, std::string_view content) {
  Corpus corpus;
  corpus.files.push_back(Lex(std::move(path), content));
  return Lint(corpus);
}

/// Loads .cpp/.hpp/.h/.cc files under root/{dirs} into a corpus, sorted by
/// repo-relative path so runs are reproducible byte-for-byte.
inline Corpus LoadCorpus(const std::filesystem::path& root,
                         const std::vector<std::string>& dirs = {"src", "bench",
                                                                 "tools"}) {
  Corpus corpus;
  std::vector<std::filesystem::path> paths;
  for (const std::string& dir : dirs) {
    const std::filesystem::path base = root / dir;
    if (!std::filesystem::exists(base)) continue;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
        paths.push_back(entry.path());
      }
    }
  }
  std::vector<std::pair<std::string, std::filesystem::path>> rel;
  rel.reserve(paths.size());
  for (const auto& p : paths) {
    rel.emplace_back(std::filesystem::relative(p, root).generic_string(), p);
  }
  std::sort(rel.begin(), rel.end());
  for (const auto& [relpath, abspath] : rel) {
    std::ifstream in(abspath, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    corpus.files.push_back(Lex(relpath, buf.str()));
  }
  return corpus;
}

// ---------------------------------------------------------------------------
// emis-lint-report/2 JSON

inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string ToJson(const Report& report, std::string_view root) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"emis-lint-report/2\",\n";
  out << "  \"root\": \"" << JsonEscape(root) << "\",\n";
  out << "  \"files_scanned\": " << report.files_scanned << ",\n";
  out << "  \"symbols_indexed\": " << report.symbols_indexed << ",\n";
  out << "  \"call_edges\": " << report.call_edges << ",\n";
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", report.wall_seconds);
    out << "  \"wall_seconds\": " << buf << ",\n";
  }
  out << "  \"suppressed_count\": " << report.suppressed << ",\n";
  out << "  \"suppressed_by_rule\": {";
  {
    std::size_t i = 0;
    for (const auto& [rule, count] : report.suppressed_by_rule) {
      out << (i++ == 0 ? "" : ", ") << '"' << JsonEscape(rule)
          << "\": " << count;
    }
  }
  out << "},\n  \"rules\": [";
  for (std::size_t i = 0; i < Rules().size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << Rules()[i].id << '"';
  }
  out << "],\n  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"rule\": \"" << JsonEscape(f.rule) << "\", \"file\": \""
        << JsonEscape(f.file) << "\", \"line\": " << f.line
        << ", \"message\": \"" << JsonEscape(f.message) << "\"";
    if (!f.symbol.empty()) {
      out << ", \"symbol\": \"" << JsonEscape(f.symbol) << "\"";
    }
    if (!f.witness.empty()) {
      out << ", \"witness\": [";
      for (std::size_t w = 0; w < f.witness.size(); ++w) {
        out << (w == 0 ? "" : ", ") << '"' << JsonEscape(f.witness[w]) << '"';
      }
      out << "]";
    }
    out << "}";
  }
  out << (report.findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Waiver baseline (CI fail-closed gate)

/// Parses the committed per-rule waiver baseline: one "rule count" pair per
/// line; blank lines and '#' comments are skipped.
inline std::map<std::string, std::uint64_t> ParseWaiverBaseline(std::istream& in) {
  std::map<std::string, std::uint64_t> baseline;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string rule;
    if (!(fields >> rule) || rule.empty() || rule[0] == '#') continue;
    std::uint64_t count = 0;
    fields >> count;
    baseline[rule] = count;
  }
  return baseline;
}

/// Fail-closed waiver gate: returns "" when no rule's waiver count exceeds
/// its baseline, else a description of the first regression. Counts BELOW
/// the baseline pass (ratchet down by committing the smaller counts).
inline std::string DiffWaiverBaseline(
    const Report& report, const std::map<std::string, std::uint64_t>& baseline) {
  for (const auto& [rule, count] : report.suppressed_by_rule) {
    const auto it = baseline.find(rule);
    const std::uint64_t allowed = it == baseline.end() ? 0 : it->second;
    if (count > allowed) {
      return "rule '" + rule + "': " + std::to_string(count) +
             " waiver(s) vs baseline " + std::to_string(allowed) +
             " — new waivers fail closed; justify the waiver in-line and "
             "update tools/lint_waiver_baseline.txt";
    }
  }
  return "";
}

}  // namespace emis_lint
