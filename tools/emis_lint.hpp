// emis_lint — the repo's determinism & invariant linter.
//
// A dependency-free static-analysis pass (tokenizer + token-stream rule
// engine, deliberately not regex-over-lines) that walks src/, bench/ and
// tools/ and enforces the repo-specific rules the determinism contract
// depends on: no draw-order RNG or wall-clock reads in library code, no
// unordered-container iteration feeding results, no raw assert() outside
// tests, no console I/O in library code, no floating-point accumulation in
// merge/reduce paths, no RNG streams seeded from another stream's draws, and
// no raw OS-thread spawns outside the pooled execution layer.
//
// Rules operate on a lexed token stream: comments, string literals (plain
// and raw), char literals and #include lines never produce identifier
// tokens, so a rule table mentioning banned names in strings (like the ones
// below) or prose mentioning rand() in a comment cannot self-trigger.
//
// Suppression: any finding can be waived with a comment on the same line or
// the line above —
//     // emis-lint: allow(rule-id)          one line
//     // emis-lint: allow-file(rule-id)     whole file
// Waivers are counted and reported, never silent.
//
// Report schema: emis-lint-report/1 (see ToJson).
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace emis_lint {

// ---------------------------------------------------------------------------
// Tokens and lexing

struct Token {
  enum class Kind : std::uint8_t { kIdent, kPunct, kNumber, kString, kChar };
  Kind kind;
  std::string text;
  int line;
};

struct SourceFile {
  std::string path;  ///< repo-relative, '/'-separated
  std::vector<Token> tokens;
  /// (line, rule-id) pairs from `emis-lint: allow(...)` comments. A waiver
  /// on line L covers findings on lines L and L+1 (trailing or line-above).
  std::set<std::pair<int, std::string>> allows;
  /// rule-ids from `emis-lint: allow-file(...)` comments.
  std::set<std::string> file_allows;
};

namespace detail {

inline bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Extracts `emis-lint:` directives from one comment's text.
inline void ParseLintComment(std::string_view text, int line, SourceFile* out) {
  const std::string_view marker = "emis-lint:";
  const std::size_t at = text.find(marker);
  if (at == std::string_view::npos) return;
  std::size_t i = at + marker.size();
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
  bool whole_file = false;
  const std::string_view allow_file = "allow-file";
  const std::string_view allow = "allow";
  if (text.compare(i, allow_file.size(), allow_file) == 0) {
    whole_file = true;
    i += allow_file.size();
  } else if (text.compare(i, allow.size(), allow) == 0) {
    i += allow.size();
  } else {
    return;
  }
  while (i < text.size() && text[i] != '(') ++i;
  if (i >= text.size()) return;
  ++i;
  std::string rule;
  for (; i < text.size() && text[i] != ')'; ++i) {
    const char c = text[i];
    if (c == ',' ) {
      if (!rule.empty()) {
        if (whole_file) out->file_allows.insert(rule);
        else out->allows.insert({line, rule});
      }
      rule.clear();
    } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      rule += c;
    }
  }
  if (!rule.empty()) {
    if (whole_file) out->file_allows.insert(rule);
    else out->allows.insert({line, rule});
  }
}

/// Multi-character punctuators the rules care about, longest first.
inline const std::vector<std::string>& Punctuators() {
  static const std::vector<std::string> kPuncts = {
      "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
      "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
      "%=", "&=", "|=", "^=",
  };
  return kPuncts;
}

}  // namespace detail

/// Lexes one translation unit into tokens + suppression directives.
inline SourceFile Lex(std::string path, std::string_view src) {
  SourceFile out;
  out.path = std::move(path);
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool line_start = true;  // only whitespace seen since the last newline

  auto advance_newline = [&](char c) {
    if (c == '\n') {
      ++line;
      line_start = true;
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      advance_newline(c);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      detail::ParseLintComment(src.substr(start, i - start), line, &out);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      const std::size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        advance_newline(src[i]);
        ++i;
      }
      detail::ParseLintComment(src.substr(start, i - start), start_line, &out);
      i = std::min(n, i + 2);
      continue;
    }
    // Preprocessor: #include's header-name would otherwise lex as idents
    // (<chrono> → 'chrono'), so the rest of the directive line is skipped.
    if (c == '#' && line_start) {
      std::size_t j = i + 1;
      while (j < n && std::isspace(static_cast<unsigned char>(src[j])) != 0 &&
             src[j] != '\n') {
        ++j;
      }
      std::size_t word_end = j;
      while (word_end < n && detail::IsIdentChar(src[word_end])) ++word_end;
      const std::string_view directive = src.substr(j, word_end - j);
      if (directive == "include" || directive == "pragma" || directive == "error") {
        while (i < n && src[i] != '\n') ++i;
        continue;
      }
      line_start = false;
      ++i;  // '#' itself carries no rule meaning; tokenize the rest normally
      continue;
    }
    line_start = false;
    // Identifier (possibly a string-literal prefix).
    if (detail::IsIdentStart(c)) {
      std::size_t j = i;
      while (j < n && detail::IsIdentChar(src[j])) ++j;
      const std::string_view word = src.substr(i, j - i);
      // String prefixes: u8R"(...)", R"(...)", L"...", u"...", etc.
      if (j < n && src[j] == '"' &&
          (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
           word == "LR" || word == "u8" || word == "u" || word == "U" ||
           word == "L")) {
        if (word.back() == 'R') {
          // Raw string: R"delim( ... )delim"
          std::size_t k = j + 1;
          std::string delim;
          while (k < n && src[k] != '(') delim += src[k++];
          const std::string closer = ")" + delim + "\"";
          const std::size_t end = src.find(closer, k);
          const std::size_t stop = end == std::string_view::npos ? n : end + closer.size();
          for (std::size_t p = j; p < stop; ++p) advance_newline(src[p]);
          out.tokens.push_back({Token::Kind::kString, "<raw-string>", line});
          i = stop;
          continue;
        }
        // Prefixed ordinary string: fall through to the string scanner below.
        i = j;
        continue;
      }
      out.tokens.push_back({Token::Kind::kIdent, std::string(word), line});
      i = j;
      continue;
    }
    // String and char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        advance_newline(src[j]);
        ++j;
      }
      out.tokens.push_back({quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
                            "<literal>", line});
      i = std::min(n, j + 1);
      continue;
    }
    // Numbers (incl. hex/float; pp-number is close enough for linting).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      std::size_t j = i;
      while (j < n && (detail::IsIdentChar(src[j]) || src[j] == '.' || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > 0 &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                         src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({Token::Kind::kNumber, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Punctuation, longest match first.
    bool matched = false;
    for (const std::string& p : detail::Punctuators()) {
      if (src.compare(i, p.size(), p) == 0) {
        out.tokens.push_back({Token::Kind::kPunct, p, line});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Findings, rules, reports

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

struct Report {
  std::vector<Finding> findings;
  std::uint64_t suppressed = 0;
  std::size_t files_scanned = 0;
};

struct RuleInfo {
  std::string_view id;
  std::string_view scope;
  std::string_view summary;
};

/// The rule table (documented in DESIGN.md §10).
inline const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"banned-random", "src (excl. src/obs), bench, tools",
       "no rand()/srand()/std::random_device/std::mt19937-family generators; "
       "randomness flows from emis::Rng / CounterHash (seed, counter) streams"},
      {"banned-clock", "src (excl. src/obs), tools",
       "no std::chrono clock reads or OS time calls; wall-clock access goes "
       "through src/obs (obs::MonotonicSeconds, ScopedTimer)"},
      {"unordered-iteration", "src, bench, tools",
       "no iteration over unordered containers whose body writes into "
       "results/metrics/accumulators — iteration order is unspecified and "
       "breaks bit-identical reduction"},
      {"raw-assert", "src, bench, tools",
       "no raw assert(); use EMIS_EXPECTS/EMIS_ENSURES/EMIS_INVARIANT/"
       "EMIS_UNREACHABLE from core/contracts.hpp"},
      {"io-in-library", "src (console: excl. src/obs; file writes: all src)",
       "no std::cout/std::cerr/printf-family console I/O in library code "
       "(emit through obs/ sinks or return data), and no ofstream/fopen/"
       "freopen file-writing outside the sanctioned waiver list "
       "(stream_sink.cpp's telemetry opener)"},
      {"float-accumulate-in-reduce", "src",
       "no floating-point += accumulation inside Merge/Reduce-named reduce "
       "paths (MetricsRegistry::Merge-reachable); sums there must be "
       "integral, compensated, or explicitly waived with a fixed-order proof"},
      {"rng-seed-from-draw", "src, bench, tools",
       "no Rng constructed from another stream's draw (NextU64() etc.); "
       "derive children with Rng::Split(stream_id) or counter hashes"},
      {"raw-thread", "src, bench, tools",
       "no std::thread/std::jthread/std::async outside the pooled execution "
       "layer (src/verify/parallel.cpp); fan work out through "
       "par::ParallelFor so thread count, pinning and nesting stay "
       "centralized (std::thread::hardware_concurrency reads are fine)"},
  };
  return kRules;
}

namespace detail {

inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}
inline bool InSrc(std::string_view p) { return StartsWith(p, "src/"); }
inline bool InObs(std::string_view p) { return StartsWith(p, "src/obs/"); }
inline bool InBench(std::string_view p) { return StartsWith(p, "bench/"); }
inline bool InTools(std::string_view p) { return StartsWith(p, "tools/"); }

inline bool IsIdentTok(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
inline bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

/// Index of the matching closer for the opener at `open`, or tokens.size().
inline std::size_t MatchForward(const std::vector<Token>& toks, std::size_t open,
                                std::string_view opener, std::string_view closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], opener)) ++depth;
    else if (IsPunct(toks[i], closer)) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

/// Skips a balanced template-argument list starting at `open` (a '<').
/// Returns the index just past the closing '>'. Understands '>>' closing two
/// levels. Returns open if the construct does not look balanced.
inline std::size_t SkipTemplateArgs(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "<")) ++depth;
    else if (IsPunct(t, ">")) {
      if (--depth == 0) return i + 1;
    } else if (IsPunct(t, ">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (IsPunct(t, ";") || IsPunct(t, "{")) {
      return open;  // gave up: this '<' was a comparison
    }
  }
  return open;
}

/// The identifier owning the assignment target that ends at token `i`
/// (exclusive): handles `x +=`, `x[i] +=`, `p->x +=`, `a.b +=`.
inline const Token* LhsIdent(const std::vector<Token>& toks, std::size_t op) {
  if (op == 0) return nullptr;
  std::size_t j = op - 1;
  if (IsPunct(toks[j], "]")) {
    int depth = 0;
    while (true) {
      if (IsPunct(toks[j], "]")) ++depth;
      else if (IsPunct(toks[j], "[")) {
        if (--depth == 0) break;
      }
      if (j == 0) return nullptr;
      --j;
    }
    if (j == 0) return nullptr;
    --j;
  }
  return toks[j].kind == Token::Kind::kIdent ? &toks[j] : nullptr;
}

inline const std::set<std::string, std::less<>>& UnorderedTypeNames() {
  static const std::set<std::string, std::less<>> kNames = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  return kNames;
}

/// Names of containers/aliases/variables of unordered type declared in this
/// file, collected with a two-pass heuristic (aliases, then declarations).
inline std::set<std::string, std::less<>> CollectUnorderedNames(const SourceFile& f) {
  std::set<std::string, std::less<>> names(UnorderedTypeNames());
  const auto& toks = f.tokens;
  // Pass 1: using Alias = ... unordered_xxx<...> ...;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsIdentTok(toks[i], "using") || toks[i + 1].kind != Token::Kind::kIdent ||
        !IsPunct(toks[i + 2], "=")) {
      continue;
    }
    for (std::size_t j = i + 3; j < toks.size() && !IsPunct(toks[j], ";"); ++j) {
      if (toks[j].kind == Token::Kind::kIdent &&
          UnorderedTypeNames().count(toks[j].text) > 0) {
        names.insert(toks[i + 1].text);
        break;
      }
    }
  }
  // Pass 2: <unordered-type> <template-args>? <ident> → a declared variable.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || names.count(toks[i].text) == 0) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && IsPunct(toks[j], "<")) {
      const std::size_t past = SkipTemplateArgs(toks, j);
      if (past == j) continue;
      j = past;
    }
    while (j < toks.size() && (IsPunct(toks[j], "&") || IsPunct(toks[j], "*"))) ++j;
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent &&
        toks[j].text != "const" && names.count(toks[j].text) == 0) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

/// Identifiers declared with a floating-point type in this file (members,
/// locals, parameters): `double x`, `float a = 0, b = 0;`, `double* p`.
inline void CollectFloatIdents(const SourceFile& f,
                               std::set<std::string, std::less<>>* out) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdentTok(toks[i], "double") && !IsIdentTok(toks[i], "float")) continue;
    std::size_t j = i + 1;
    while (true) {
      while (j < toks.size() &&
             (IsPunct(toks[j], "*") || IsPunct(toks[j], "&") ||
              IsIdentTok(toks[j], "const"))) {
        ++j;
      }
      if (j >= toks.size() || toks[j].kind != Token::Kind::kIdent) break;
      out->insert(toks[j].text);
      ++j;
      // `= <expr>` up to the next top-level ',' or ';' continues the list.
      int depth = 0;
      while (j < toks.size()) {
        const Token& t = toks[j];
        if (IsPunct(t, "(") || IsPunct(t, "[") || IsPunct(t, "{")) ++depth;
        else if (IsPunct(t, ")") || IsPunct(t, "]") || IsPunct(t, "}")) --depth;
        if (depth < 0) { j = toks.size(); break; }
        if (depth == 0 && (IsPunct(t, ",") || IsPunct(t, ";"))) break;
        ++j;
      }
      if (j >= toks.size() || !IsPunct(toks[j], ",")) break;
      ++j;
    }
  }
}

struct RawFinding {
  std::string_view rule;
  int line;
  std::string message;
};

// --- rule: banned-random ---------------------------------------------------

inline void RuleBannedRandom(const SourceFile& f, std::vector<RawFinding>* out) {
  if (InObs(f.path)) return;
  static const std::set<std::string, std::less<>> kTypes = {
      "random_device", "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
      "default_random_engine", "ranlux24", "ranlux48", "ranlux24_base",
      "ranlux48_base", "knuth_b", "random_shuffle"};
  static const std::set<std::string, std::less<>> kCalls = {"rand", "srand",
                                                            "drand48", "lrand48"};
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const bool is_type = kTypes.count(toks[i].text) > 0;
    const bool is_call = kCalls.count(toks[i].text) > 0 && i + 1 < toks.size() &&
                         IsPunct(toks[i + 1], "(");
    if (is_type || is_call) {
      out->push_back({"banned-random", toks[i].line,
                      "draw-order RNG source '" + toks[i].text +
                          "' — use emis::Rng streams or CounterHash (seed, "
                          "counter) addressing"});
    }
  }
}

// --- rule: banned-clock ----------------------------------------------------

inline void RuleBannedClock(const SourceFile& f, std::vector<RawFinding>* out) {
  const bool scoped = (InSrc(f.path) && !InObs(f.path)) || InTools(f.path);
  if (!scoped) return;
  static const std::set<std::string, std::less<>> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock", "clock_gettime",
      "gettimeofday", "timespec_get", "ftime"};
  for (const Token& t : f.tokens) {
    if (t.kind == Token::Kind::kIdent && kClocks.count(t.text) > 0) {
      out->push_back({"banned-clock", t.line,
                      "wall-clock source '" + t.text +
                          "' outside src/obs — route timing through "
                          "obs::MonotonicSeconds or obs::ScopedTimer"});
    }
  }
}

// --- rule: unordered-iteration ---------------------------------------------

inline void RuleUnorderedIteration(const SourceFile& f, std::vector<RawFinding>* out) {
  const auto& toks = f.tokens;
  const auto unordered = CollectUnorderedNames(f);
  static const std::set<std::string, std::less<>> kMutators = {
      "push_back", "emplace_back", "emplace", "insert", "Add", "Observe",
      "Inc", "Set", "Merge", "MergeFrom", "Push", "Record", "Append", "append"};
  static const std::set<std::string, std::less<>> kMutatorPuncts = {
      "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdentTok(toks[i], "for") || !IsPunct(toks[i + 1], "(")) continue;
    const std::size_t close = MatchForward(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    // Range-based for: a ':' at paren depth 1 (tokenizer keeps '::' whole).
    std::size_t colon = toks.size();
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (IsPunct(toks[j], "(")) ++depth;
      else if (IsPunct(toks[j], ")")) --depth;
      else if (depth == 1 && IsPunct(toks[j], ":")) { colon = j; break; }
    }
    bool over_unordered = false;
    std::string range_name;
    if (colon < toks.size()) {
      // Range-based: any unordered name in the range expression.
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == Token::Kind::kIdent &&
            unordered.count(toks[j].text) > 0) {
          over_unordered = true;
          range_name = toks[j].text;
          break;
        }
      }
    } else {
      // Iterator-based: `it = name.begin()` (or cbegin) in the loop header
      // walks the same unspecified bucket order as the range form — the SoA
      // batch passes iterate ids, so any .begin() walk here is suspect.
      for (std::size_t j = i + 2; j + 2 < close; ++j) {
        if (toks[j].kind == Token::Kind::kIdent &&
            unordered.count(toks[j].text) > 0 && IsPunct(toks[j + 1], ".") &&
            (IsIdentTok(toks[j + 2], "begin") ||
             IsIdentTok(toks[j + 2], "cbegin"))) {
          over_unordered = true;
          range_name = toks[j].text;
          break;
        }
      }
    }
    if (!over_unordered) continue;
    // Body: a braced block or a single statement.
    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (body_begin < toks.size() && IsPunct(toks[body_begin], "{")) {
      body_end = MatchForward(toks, body_begin, "{", "}");
    } else {
      body_end = body_begin;
      while (body_end < toks.size() && !IsPunct(toks[body_end], ";")) ++body_end;
    }
    for (std::size_t j = body_begin; j < body_end && j < toks.size(); ++j) {
      const Token& t = toks[j];
      const bool mutator_call = t.kind == Token::Kind::kIdent &&
                                kMutators.count(t.text) > 0 &&
                                j + 1 < toks.size() && IsPunct(toks[j + 1], "(");
      const bool mutator_op =
          t.kind == Token::Kind::kPunct && kMutatorPuncts.count(t.text) > 0;
      if (mutator_call || mutator_op) {
        out->push_back(
            {"unordered-iteration", toks[i].line,
             "iteration over unordered container '" + range_name +
                 "' accumulates into results ('" + t.text +
                 "' in the loop body) — unordered iteration order is "
                 "unspecified; iterate a sorted copy or keyed order"});
        break;
      }
    }
  }
}

// --- rule: raw-assert ------------------------------------------------------

inline void RuleRawAssert(const SourceFile& f, std::vector<RawFinding>* out) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (IsIdentTok(toks[i], "assert") && IsPunct(toks[i + 1], "(")) {
      out->push_back({"raw-assert", toks[i].line,
                      "raw assert() — use the leveled contracts layer "
                      "(EMIS_EXPECTS/EMIS_ENSURES/EMIS_INVARIANT/"
                      "EMIS_UNREACHABLE from core/contracts.hpp)"});
    }
  }
}

// --- rule: io-in-library ---------------------------------------------------

/// Library files sanctioned to open files for writing: the telemetry
/// stream's OpenTelemetryStream is the library's one write path (everything
/// else writes through caller-provided std::ostream&). Growing this list is
/// an API-review decision, not a lint tweak.
inline const std::set<std::string, std::less<>>& IoWriteWaivers() {
  static const std::set<std::string, std::less<>> kWaived = {
      "src/obs/stream_sink.cpp",
  };
  return kWaived;
}

inline void RuleIoInLibrary(const SourceFile& f, std::vector<RawFinding>* out) {
  if (!InSrc(f.path)) return;
  const auto& toks = f.tokens;
  // Console I/O: banned in all library code except src/obs (whose sinks own
  // rendering); reads (ifstream) stay legal everywhere.
  if (!InObs(f.path)) {
    static const std::set<std::string, std::less<>> kStreams = {"cout", "cerr", "clog"};
    static const std::set<std::string, std::less<>> kCalls = {
        "printf", "fprintf", "puts", "fputs", "putchar", "vprintf", "vfprintf"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      const bool stream = kStreams.count(toks[i].text) > 0;
      const bool call = kCalls.count(toks[i].text) > 0 && i + 1 < toks.size() &&
                        IsPunct(toks[i + 1], "(");
      if (stream || call) {
        out->push_back({"io-in-library", toks[i].line,
                        "console I/O '" + toks[i].text +
                            "' in library code — emit through obs/ sinks "
                            "(trace, report) or return data to the caller"});
      }
    }
  }
  // File-opening-for-write: banned in ALL of src/ — including src/obs —
  // except the waiver list. Library code takes std::ostream& from the
  // caller; only the sanctioned telemetry opener names destinations itself.
  if (IoWriteWaivers().count(f.path) == 0) {
    static const std::set<std::string, std::less<>> kWriters = {
        "ofstream", "fopen", "freopen"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent ||
          kWriters.count(toks[i].text) == 0) {
        continue;
      }
      out->push_back({"io-in-library", toks[i].line,
                      "file-writing I/O '" + toks[i].text +
                          "' in library code — take a std::ostream& from the "
                          "caller, or add the file to the sanctioned waiver "
                          "list (emis_lint IoWriteWaivers)"});
    }
  }
}

// --- rule: float-accumulate-in-reduce --------------------------------------

inline void RuleFloatAccumulateInReduce(
    const SourceFile& f, const std::set<std::string, std::less<>>& float_idents,
    std::vector<RawFinding>* out) {
  if (!InSrc(f.path)) return;
  static const std::set<std::string, std::less<>> kReduceNames = {
      "Merge", "MergeFrom", "Reduce", "Combine", "Accumulate"};
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || kReduceNames.count(toks[i].text) == 0 ||
        !IsPunct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t params_end = MatchForward(toks, i + 1, "(", ")");
    if (params_end >= toks.size()) continue;
    // Definition? Skip const/noexcept/override/trailing-return up to '{';
    // a ';' (declaration) or anything else (a call) ends the attempt.
    std::size_t j = params_end + 1;
    bool is_definition = false;
    while (j < toks.size()) {
      const Token& t = toks[j];
      if (IsPunct(t, "{")) { is_definition = true; break; }
      if (IsIdentTok(t, "const") || IsIdentTok(t, "noexcept") ||
          IsIdentTok(t, "override") || IsIdentTok(t, "final") ||
          IsPunct(t, "->") || IsPunct(t, "::") || t.kind == Token::Kind::kIdent) {
        ++j;
        continue;
      }
      break;
    }
    if (!is_definition) continue;
    const std::size_t body_end = MatchForward(toks, j, "{", "}");
    for (std::size_t k = j; k < body_end && k < toks.size(); ++k) {
      if (!IsPunct(toks[k], "+=") && !IsPunct(toks[k], "-=")) continue;
      const Token* lhs = LhsIdent(toks, k);
      if (lhs != nullptr && float_idents.count(lhs->text) > 0) {
        out->push_back(
            {"float-accumulate-in-reduce", toks[k].line,
             "floating-point accumulation '" + lhs->text + " " + toks[k].text +
                 "' inside reduce path '" + toks[i].text +
                 "' — float reduction is order-sensitive; use integral "
                 "units, or waive with a fixed-merge-order justification"});
      }
    }
  }
}

// --- rule: rng-seed-from-draw ----------------------------------------------

inline void RuleRngSeedFromDraw(const SourceFile& f, std::vector<RawFinding>* out) {
  static const std::set<std::string, std::less<>> kDraws = {
      "NextU64", "UniformBelow", "UniformInRange", "UniformUnit", "Bernoulli",
      "Bit", "GeometricHalf", "GeometricSkip", "Geometric", "RandomBits"};
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdentTok(toks[i], "Rng")) continue;
    // `class Rng {` / `struct Rng {` is the type's own definition, not a
    // construction — scanning its body would flag the draw methods themselves.
    if (i > 0 && (IsIdentTok(toks[i - 1], "class") || IsIdentTok(toks[i - 1], "struct") ||
                  IsIdentTok(toks[i - 1], "enum"))) {
      continue;
    }
    std::size_t open = i + 1;
    if (open < toks.size() && toks[open].kind == Token::Kind::kIdent) ++open;
    if (open >= toks.size()) continue;
    const bool paren = IsPunct(toks[open], "(");
    const bool brace = IsPunct(toks[open], "{");
    if (!paren && !brace) continue;
    const std::size_t close = paren ? MatchForward(toks, open, "(", ")")
                                    : MatchForward(toks, open, "{", "}");
    for (std::size_t j = open + 1; j < close && j < toks.size(); ++j) {
      if (toks[j].kind == Token::Kind::kIdent && kDraws.count(toks[j].text) > 0) {
        out->push_back(
            {"rng-seed-from-draw", toks[i].line,
             "Rng stream seeded from another stream's draw ('" + toks[j].text +
                 "') — seeds become draw-order-dependent; derive children "
                 "with Rng::Split(stream_id) or CounterHash named streams"});
        break;
      }
    }
  }
}

// --- rule: raw-thread ------------------------------------------------------

/// Files sanctioned to spawn OS threads: the persistent worker pool is the
/// repo's single execution layer — everything else (sweeps, sharded rounds)
/// dispatches through par::ParallelFor. Growing this list is an API-review
/// decision, not a lint tweak.
inline const std::set<std::string, std::less<>>& RawThreadWaivers() {
  static const std::set<std::string, std::less<>> kWaived = {
      "src/verify/parallel.cpp",
  };
  return kWaived;
}

inline void RuleRawThread(const SourceFile& f, std::vector<RawFinding>* out) {
  const bool scoped = InSrc(f.path) || InBench(f.path) || InTools(f.path);
  if (!scoped || RawThreadWaivers().count(f.path) > 0) return;
  static const std::set<std::string, std::less<>> kSpawners = {"thread",
                                                               "jthread", "async"};
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsIdentTok(toks[i], "std") || !IsPunct(toks[i + 1], "::") ||
        toks[i + 2].kind != Token::Kind::kIdent ||
        kSpawners.count(toks[i + 2].text) == 0) {
      continue;
    }
    // std::thread::hardware_concurrency() is a read of machine shape, not a
    // spawn — the pool sizes itself with it, and callers may too.
    if (i + 4 < toks.size() && IsPunct(toks[i + 3], "::") &&
        IsIdentTok(toks[i + 4], "hardware_concurrency")) {
      continue;
    }
    out->push_back({"raw-thread", toks[i + 2].line,
                    "raw thread spawn 'std::" + toks[i + 2].text +
                        "' outside src/verify/parallel.cpp — dispatch through "
                        "par::ParallelFor so the persistent pool owns every "
                        "OS thread (or extend emis_lint RawThreadWaivers)"});
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Corpus + engine

struct Corpus {
  std::vector<SourceFile> files;
};

/// Path stem for sibling pairing: "src/obs/metrics.cpp" → "src/obs/metrics".
/// Declarations in metrics.hpp inform rules run over metrics.cpp and back.
inline std::string Stem(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  return std::string(dot == std::string_view::npos ? path : path.substr(0, dot));
}

/// Runs every rule over the corpus, applies suppressions, sorts findings.
inline Report Lint(const Corpus& corpus) {
  // Floating-point declarations are pooled per stem so a .cpp sees the
  // members its header declares (the two-file symbol table).
  std::map<std::string, std::set<std::string, std::less<>>> floats_by_stem;
  for (const SourceFile& f : corpus.files) {
    detail::CollectFloatIdents(f, &floats_by_stem[Stem(f.path)]);
  }

  Report report;
  report.files_scanned = corpus.files.size();
  for (const SourceFile& f : corpus.files) {
    std::vector<detail::RawFinding> raw;
    detail::RuleBannedRandom(f, &raw);
    detail::RuleBannedClock(f, &raw);
    detail::RuleUnorderedIteration(f, &raw);
    detail::RuleRawAssert(f, &raw);
    detail::RuleIoInLibrary(f, &raw);
    detail::RuleFloatAccumulateInReduce(f, floats_by_stem[Stem(f.path)], &raw);
    detail::RuleRngSeedFromDraw(f, &raw);
    detail::RuleRawThread(f, &raw);

    for (const detail::RawFinding& r : raw) {
      const std::string rule(r.rule);
      const bool waived =
          f.file_allows.count(rule) > 0 || f.file_allows.count("*") > 0 ||
          f.allows.count({r.line, rule}) > 0 || f.allows.count({r.line, "*"}) > 0 ||
          f.allows.count({r.line - 1, rule}) > 0 ||
          f.allows.count({r.line - 1, "*"}) > 0;
      if (waived) {
        ++report.suppressed;
      } else {
        report.findings.push_back({rule, f.path, r.line, r.message});
      }
    }
  }
  std::sort(report.findings.begin(), report.findings.end());
  return report;
}

/// Lints a single in-memory source (fixture tests); `path` picks the scopes.
inline Report LintSource(std::string path, std::string_view content) {
  Corpus corpus;
  corpus.files.push_back(Lex(std::move(path), content));
  return Lint(corpus);
}

/// Loads .cpp/.hpp/.h/.cc files under root/{dirs} into a corpus, sorted by
/// repo-relative path so runs are reproducible byte-for-byte.
inline Corpus LoadCorpus(const std::filesystem::path& root,
                         const std::vector<std::string>& dirs = {"src", "bench",
                                                                 "tools"}) {
  Corpus corpus;
  std::vector<std::filesystem::path> paths;
  for (const std::string& dir : dirs) {
    const std::filesystem::path base = root / dir;
    if (!std::filesystem::exists(base)) continue;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
        paths.push_back(entry.path());
      }
    }
  }
  std::vector<std::pair<std::string, std::filesystem::path>> rel;
  rel.reserve(paths.size());
  for (const auto& p : paths) {
    rel.emplace_back(std::filesystem::relative(p, root).generic_string(), p);
  }
  std::sort(rel.begin(), rel.end());
  for (const auto& [relpath, abspath] : rel) {
    std::ifstream in(abspath, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    corpus.files.push_back(Lex(relpath, buf.str()));
  }
  return corpus;
}

// ---------------------------------------------------------------------------
// emis-lint-report/1 JSON

inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string ToJson(const Report& report, std::string_view root) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"emis-lint-report/1\",\n";
  out << "  \"root\": \"" << JsonEscape(root) << "\",\n";
  out << "  \"files_scanned\": " << report.files_scanned << ",\n";
  out << "  \"suppressed_count\": " << report.suppressed << ",\n";
  out << "  \"rules\": [";
  for (std::size_t i = 0; i < Rules().size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << Rules()[i].id << '"';
  }
  out << "],\n  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"rule\": \"" << JsonEscape(f.rule) << "\", \"file\": \""
        << JsonEscape(f.file) << "\", \"line\": " << f.line
        << ", \"message\": \"" << JsonEscape(f.message) << "\"}";
  }
  out << (report.findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return out.str();
}

}  // namespace emis_lint
