// emis_cli — run the library from the command line.
//
//   emis_cli help | --help | -h
//   emis_cli algorithms
//   emis_cli gen   <graph-spec> [--seed S] [--out FILE]
//   emis_cli graph pack --graph <spec | file:PATH> [--seed S] --out FILE.csr
//   emis_cli run   --graph <spec | file:PATH | csr:PATH> --alg <name>
//                  [--seed S] [--preset practical|theory] [--delta-unknown]
//                  [--resolution auto|push|pull] [--compaction on|off]
//                  [--shards N]
//                  [--trace FILE.csv] [--trace-jsonl FILE.jsonl]
//                  [--report-out FILE.json] [--flamegraph-out FILE.txt]
//                  [--telemetry-out PATH|fd:N] [--heartbeat-every R]
//                  [--metrics-text FILE.prom] [--quiet]
//   emis_cli sweep --alg <name> --family <er|udg|star|tree|matching|complete>
//                  --sizes 64,128,... [--seeds K] [--delta-unknown]
//                  [--resolution auto|push|pull] [--compaction on|off]
//                  [--shards N] [--jobs N] [--report-out FILE.json]
//                  [--telemetry-out PATH|fd:N] [--heartbeat-every R]
//                  [--metrics-text FILE.prom] [--quiet]
//   emis_cli validate-report FILE.json
//
// Exit status: 0 on success (and valid MIS for `run`, conforming document
// for `validate-report`, requested help), 1 on invalid MIS / non-conforming
// document, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "obs/energy_ledger.hpp"
#include "obs/jsonl_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/report.hpp"
#include "obs/stream_sink.hpp"
#include "radio/graph_io.hpp"
#include "verify/experiment.hpp"
#include "verify/parallel.hpp"

namespace emis::cli {
namespace {

const std::map<std::string, MisAlgorithm>& AlgorithmsByName() {
  static const std::map<std::string, MisAlgorithm> kMap = {
      {"cd", MisAlgorithm::kCd},
      {"cd-beeping", MisAlgorithm::kCdBeeping},
      {"cd-naive-luby", MisAlgorithm::kCdNaive},
      {"nocd", MisAlgorithm::kNoCd},
      {"nocd-davies-profile", MisAlgorithm::kNoCdDaviesProfile},
      {"nocd-naive-luby", MisAlgorithm::kNoCdNaive},
      {"nocd-unknown-delta", MisAlgorithm::kNoCdUnknownDelta},
      {"nocd-round-efficient", MisAlgorithm::kNoCdRoundEfficient},
  };
  return kMap;
}

struct Flags {
  std::vector<std::string> positional;
  std::map<std::string, std::string> named;
  bool Has(const std::string& key) const { return named.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    const auto it = named.find(key);
    return it == named.end() ? fallback : it->second;
  }
};

Flags Parse(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      // Boolean flags take no value; everything else consumes the next arg.
      if (key == "delta-unknown" || key == "quiet") {
        flags.named[key] = "1";
      } else if (i + 1 < argc) {
        flags.named[key] = argv[++i];
      } else {
        throw PreconditionError("flag --" + key + " needs a value");
      }
    } else {
      flags.positional.push_back(std::move(arg));
    }
  }
  return flags;
}

ChannelResolution ResolutionFlag(const Flags& flags) {
  const std::string text = flags.Get("resolution", "auto");
  const ChannelResolution r = ChannelResolutionFromString(text);
  EMIS_REQUIRE(r != kInvalidChannelResolution,
               "--resolution must be auto, push or pull (got '" + text + "')");
  return r;
}

bool CompactionFlag(const Flags& flags) {
  const std::string text = flags.Get("compaction", "on");
  EMIS_REQUIRE(text == "on" || text == "off",
               "--compaction must be on or off (got '" + text + "')");
  return text == "on";
}

ExecutionEngine EngineFlag(const Flags& flags) {
  const std::string text =
      flags.Get("engine", std::string(ToString(DefaultExecutionEngine())));
  const ExecutionEngine e = ExecutionEngineFromString(text);
  EMIS_REQUIRE(e != kInvalidExecutionEngine,
               "--engine must be coroutine or flat (got '" + text + "')");
  return e;
}

unsigned ShardsFlag(const Flags& flags) {
  const std::string text =
      flags.Get("shards", std::to_string(DefaultShards()));
  unsigned long value = 0;
  try {
    value = std::stoul(text);
  } catch (const std::exception&) {
    value = 0;
  }
  EMIS_REQUIRE(value >= 1 && value <= 256,
               "--shards must be in [1, 256] (got '" + text + "')");
  return static_cast<unsigned>(value);
}

Graph LoadGraph(const std::string& source, std::uint64_t seed) {
  if (source.rfind("csr:", 0) == 0) {
    // Memory-mapped emis-csr/1: adjacency pages fault in lazily as the run
    // touches them, so start-up cost is O(1) pages regardless of graph size.
    return MapBinaryCsr(source.substr(4));
  }
  if (source.rfind("file:", 0) == 0) {
    const std::string path = source.substr(5);
    std::ifstream in(path);
    EMIS_REQUIRE(in.good(), "cannot open graph file '" + path + "'");
    return ReadEdgeList(in);
  }
  Rng rng(seed ^ 0xC0FFEEULL);
  return GraphFromSpec(source, rng);
}

int CmdAlgorithms() {
  std::printf("algorithm            channel   paper artifact\n");
  std::printf("cd                   CD        Algorithm 1 (Thm 2: O(log n) energy)\n");
  std::printf("cd-beeping           beeping   Algorithm 1, beeping variant (§3.1)\n");
  std::printf("cd-naive-luby        CD        §1.3 naive baseline (Θ(log² n) energy)\n");
  std::printf("nocd                 no-CD     Algorithm 2 (Thm 10: O(log² n loglog n))\n");
  std::printf("nocd-davies-profile  no-CD     Davies'23 energy profile (Θ(log² n logΔ))\n");
  std::printf("nocd-naive-luby      no-CD     §1.3 naive baseline (O(log⁴ n))\n");
  std::printf("nocd-unknown-delta   no-CD     §1.1 Δ-doubling wrapper around Alg 2\n");
  std::printf("nocd-round-efficient no-CD     §4.2-style Ghaffari simulation (Davies'23 stand-in)\n");
  return 0;
}

int CmdGen(const Flags& flags) {
  EMIS_REQUIRE(flags.positional.size() == 1, "gen needs exactly one graph spec");
  const std::uint64_t seed = std::stoull(flags.Get("seed", "1"));
  Rng rng(seed);
  const Graph g = GraphFromSpec(flags.positional[0], rng);
  const std::string out_path = flags.Get("out");
  if (out_path.empty()) {
    WriteEdgeList(std::cout, g);
  } else {
    std::ofstream out(out_path);
    EMIS_REQUIRE(out.good(), "cannot write '" + out_path + "'");
    WriteEdgeList(out, g);
    std::printf("wrote %u nodes, %llu edges to %s\n", g.NumNodes(),
                static_cast<unsigned long long>(g.NumEdges()), out_path.c_str());
  }
  return 0;
}

int CmdGraphPack(const Flags& flags) {
  const std::string graph_spec = flags.Get("graph");
  EMIS_REQUIRE(!graph_spec.empty(), "graph pack needs --graph <spec|file:PATH>");
  const std::string out_path = flags.Get("out");
  EMIS_REQUIRE(!out_path.empty(), "graph pack needs --out FILE.csr");
  const std::uint64_t seed = std::stoull(flags.Get("seed", "1"));
  const Graph g = LoadGraph(graph_spec, seed);
  std::ofstream out(out_path, std::ios::binary);
  EMIS_REQUIRE(out.good(), "cannot write '" + out_path + "'");
  WriteBinaryCsr(out, g);
  out.flush();
  EMIS_REQUIRE(out.good(), "write to '" + out_path + "' failed");
  if (!flags.Has("quiet")) {
    std::printf("packed %u nodes, %llu edges (max degree %u) into %s\n",
                g.NumNodes(), static_cast<unsigned long long>(g.NumEdges()),
                g.MaxDegree(), out_path.c_str());
    std::printf("load with: emis_cli run --graph csr:%s ...\n", out_path.c_str());
  }
  return 0;
}

int CmdRun(const Flags& flags) {
  const std::string alg_name = flags.Get("alg", "cd");
  const auto alg_it = AlgorithmsByName().find(alg_name);
  EMIS_REQUIRE(alg_it != AlgorithmsByName().end(),
               "unknown algorithm '" + alg_name + "' (see `emis_cli algorithms`)");
  const std::string graph_spec = flags.Get("graph");
  EMIS_REQUIRE(!graph_spec.empty(), "run needs --graph <spec|file:PATH>");
  const std::uint64_t seed = std::stoull(flags.Get("seed", "1"));

  const Graph g = LoadGraph(graph_spec, seed);

  MisRunConfig cfg{.algorithm = alg_it->second, .seed = seed};
  const std::string preset = flags.Get("preset", "practical");
  EMIS_REQUIRE(preset == "practical" || preset == "theory",
               "--preset must be practical or theory");
  cfg.preset = preset == "theory" ? ParamPreset::kTheory : ParamPreset::kPractical;
  cfg.resolution = ResolutionFlag(flags);
  cfg.compaction = CompactionFlag(flags);
  cfg.engine = EngineFlag(flags);
  cfg.shards = ShardsFlag(flags);
  if (flags.Has("delta-unknown")) cfg.delta_estimate = g.NumNodes();

  std::ofstream trace_file;
  std::optional<CsvTrace> trace;
  if (flags.Has("trace")) {
    trace_file.open(flags.Get("trace"));
    EMIS_REQUIRE(trace_file.good(), "cannot write trace file");
    trace.emplace(trace_file);
    cfg.trace = &*trace;
  }
  std::ofstream jsonl_file;
  std::optional<obs::JsonlTraceSink> jsonl_trace;
  if (flags.Has("trace-jsonl")) {
    EMIS_REQUIRE(!cfg.trace, "--trace and --trace-jsonl are mutually exclusive");
    jsonl_file.open(flags.Get("trace-jsonl"));
    EMIS_REQUIRE(jsonl_file.good(), "cannot write jsonl trace file");
    jsonl_trace.emplace(jsonl_file);
    cfg.trace = &*jsonl_trace;
  }

  // Collectors attach on demand: the report and Prometheus text want
  // metrics; the report, flamegraph and telemetry want the timeline; the
  // report's attribution block and the flamegraph want the ledger.
  obs::MetricsRegistry metrics;
  obs::PhaseTimeline timeline;
  const bool want_report = flags.Has("report-out");
  const bool want_flame = flags.Has("flamegraph-out");
  const bool want_telemetry = flags.Has("telemetry-out");
  const bool want_metrics_text = flags.Has("metrics-text");
  if (want_report || want_metrics_text) cfg.metrics = &metrics;
  if (want_report || want_flame || want_telemetry) cfg.timeline = &timeline;
  std::optional<obs::EnergyLedger> ledger;
  if (want_report || want_flame) {
    ledger.emplace(g.NumNodes());
    cfg.ledger = &*ledger;
  }
  std::unique_ptr<std::ostream> telemetry_stream;
  std::optional<obs::StreamSink> telemetry;
  if (want_telemetry) {
    telemetry_stream = obs::OpenTelemetryStream(flags.Get("telemetry-out"));
    obs::StreamSinkConfig sink_config;
    sink_config.heartbeat_every =
        static_cast<Round>(std::stoull(flags.Get("heartbeat-every", "1")));
    EMIS_REQUIRE(sink_config.heartbeat_every > 0,
                 "--heartbeat-every must be >= 1");
    telemetry.emplace(sink_config);
    cfg.telemetry = &*telemetry;
    obs::JsonValue begin = obs::JsonValue::MakeObject();
    begin.Set("schema", obs::kTelemetrySchema);
    begin.Set("event", "run_begin");
    begin.Set("algorithm", alg_name);
    begin.Set("graph", graph_spec);
    begin.Set("seed", seed);
    begin.Set("nodes", static_cast<std::uint64_t>(g.NumNodes()));
    begin.Set("edges", g.NumEdges());
    telemetry->EmitControl(begin);
  }

  const MisRunResult r = RunMis(g, cfg);

  if (want_telemetry) {
    obs::JsonValue end = obs::JsonValue::MakeObject();
    end.Set("event", "run_end");
    end.Set("rounds", r.stats.rounds_used);
    end.Set("mis_size", r.MisSize());
    end.Set("valid", r.Valid());
    end.Set("emitted_events", telemetry->EmittedEvents());
    end.Set("dropped_events", telemetry->DroppedEvents());
    telemetry->EmitControl(end);
    telemetry->DrainTo(*telemetry_stream);
    telemetry_stream->flush();
  }
  if (cfg.metrics != nullptr) {
    // Bounded-sink losses become gauges so a report where the trace ring or
    // the telemetry queue overflowed says so (satellite of DESIGN.md §11).
    metrics.GetGauge("obs.trace_dropped")
        .Set(cfg.trace != nullptr
                 ? static_cast<double>(cfg.trace->DroppedCount())
                 : 0.0);
    metrics.GetGauge("obs.telemetry_dropped")
        .Set(telemetry ? static_cast<double>(telemetry->DroppedEvents()) : 0.0);
  }

  if (want_report) {
    const std::string report_path = flags.Get("report-out");
    std::ofstream report_file(report_path);
    EMIS_REQUIRE(report_file.good(), "cannot write '" + report_path + "'");
    obs::WriteRunReport(report_file,
                        {.algorithm = alg_name,
                         .graph = graph_spec,
                         .preset = preset,
                         .seed = seed,
                         .nodes = g.NumNodes(),
                         .edges = g.NumEdges(),
                         .max_degree = g.MaxDegree(),
                         .shards = cfg.shards,
                         .valid_mis = r.Valid(),
                         .mis_size = r.MisSize(),
                         .arena_reserved_bytes = r.arena.reserved_bytes,
                         .arena_used_bytes = r.arena.used_bytes,
                         .peak_rss_bytes = obs::PeakRssBytes(),
                         .stats = &r.stats,
                         .energy = &r.energy,
                         .timeline = &timeline,
                         .metrics = &metrics,
                         .ledger = &*ledger});
    if (!flags.Has("quiet")) {
      std::printf("report:      %s\n", report_path.c_str());
    }
  }
  if (want_flame) {
    const std::string flame_path = flags.Get("flamegraph-out");
    std::ofstream flame_file(flame_path);
    EMIS_REQUIRE(flame_file.good(), "cannot write '" + flame_path + "'");
    // Collapsed-stack lines (`root;phase;sub weight`) — feed directly into
    // flamegraph.pl / speedscope to see where the awake rounds went.
    ledger->WriteCollapsed(flame_file, alg_name);
    if (!flags.Has("quiet")) {
      std::printf("flamegraph:  %s\n", flame_path.c_str());
    }
  }
  if (want_metrics_text) {
    const std::string metrics_path = flags.Get("metrics-text");
    std::ofstream metrics_file(metrics_path);
    EMIS_REQUIRE(metrics_file.good(), "cannot write '" + metrics_path + "'");
    obs::WriteMetricsText(metrics_file, metrics);
    if (!flags.Has("quiet")) {
      std::printf("metrics:     %s\n", metrics_path.c_str());
    }
  }
  if (!flags.Has("quiet")) {
    std::printf("graph:       %u nodes, %llu edges, max degree %u\n", g.NumNodes(),
                static_cast<unsigned long long>(g.NumEdges()), g.MaxDegree());
    std::printf("algorithm:   %s (%s channel, %s preset)\n", alg_name.c_str(),
                std::string(ToString(ModelFor(cfg.algorithm))).c_str(),
                preset.c_str());
    std::printf("valid MIS:   %s\n", r.Valid() ? "yes" : "NO");
    if (!r.Valid()) std::printf("violations:  %s\n", r.report.Describe().c_str());
    std::printf("|MIS|:       %llu\n", static_cast<unsigned long long>(r.MisSize()));
    std::printf("rounds:      %llu\n",
                static_cast<unsigned long long>(r.stats.rounds_used));
    std::printf("energy max:  %llu awake rounds\n",
                static_cast<unsigned long long>(r.energy.MaxAwake()));
    std::printf("energy avg:  %.2f awake rounds\n", r.energy.AverageAwake());
    std::printf("energy p50:  %llu / p90: %llu\n",
                static_cast<unsigned long long>(r.energy.PercentileAwake(50)),
                static_cast<unsigned long long>(r.energy.PercentileAwake(90)));
  }
  return r.Valid() ? 0 : 1;
}

int CmdSweep(const Flags& flags) {
  const std::string alg_name = flags.Get("alg", "cd");
  const auto alg_it = AlgorithmsByName().find(alg_name);
  EMIS_REQUIRE(alg_it != AlgorithmsByName().end(),
               "unknown algorithm '" + alg_name + "'");
  const std::string family = flags.Get("family", "er");
  const std::string sizes_csv = flags.Get("sizes", "64,128,256,512");

  SweepConfig cfg;
  cfg.algorithm = alg_it->second;
  cfg.seeds_per_size = static_cast<std::uint32_t>(std::stoul(flags.Get("seeds", "5")));
  cfg.delta_unknown = flags.Has("delta-unknown");
  cfg.resolution = ResolutionFlag(flags);
  cfg.compaction = CompactionFlag(flags);
  cfg.engine = EngineFlag(flags);
  cfg.shards = ShardsFlag(flags);
  // Sweep-wide metrics (merged across worker shards) feed the report's
  // required "metrics" sub-document, so chan.live_edges / graph.compactions
  // accumulate in the BENCH_*.json trajectory.
  obs::MetricsRegistry metrics;
  cfg.metrics = &metrics;
  std::istringstream ss(sizes_csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    cfg.sizes.push_back(static_cast<NodeId>(std::stoul(item)));
  }
  if (family == "er") {
    cfg.factory = families::SparseErdosRenyi(std::stod(flags.Get("avg-degree", "8")));
  } else if (family == "udg") {
    cfg.factory = families::UnitDisk(std::stod(flags.Get("avg-degree", "8")));
  } else if (family == "star") {
    cfg.factory = families::StarFamily();
  } else if (family == "tree") {
    cfg.factory = families::TreeFamily();
  } else if (family == "matching") {
    cfg.factory = families::LowerBoundFamily();
  } else if (family == "complete") {
    cfg.factory = families::CompleteFamily();
  } else {
    throw PreconditionError("unknown sweep family '" + family +
                            "' (er, udg, star, tree, matching, complete)");
  }
  const unsigned jobs = flags.Has("jobs")
                            ? static_cast<unsigned>(std::stoul(flags.Get("jobs")))
                            : par::DefaultJobs();
  // Streaming telemetry: the sweep gives each trial a private sink and
  // concatenates the drained blobs in (size, seed) order, so this stream is
  // byte-identical at any --jobs. The sweep-level envelopes frame it.
  std::unique_ptr<std::ostream> telemetry_stream;
  if (flags.Has("telemetry-out")) {
    telemetry_stream = obs::OpenTelemetryStream(flags.Get("telemetry-out"));
    cfg.telemetry_config.heartbeat_every =
        static_cast<Round>(std::stoull(flags.Get("heartbeat-every", "1")));
    EMIS_REQUIRE(cfg.telemetry_config.heartbeat_every > 0,
                 "--heartbeat-every must be >= 1");
    cfg.telemetry_out = telemetry_stream.get();
    obs::JsonValue begin = obs::JsonValue::MakeObject();
    begin.Set("schema", obs::kTelemetrySchema);
    begin.Set("event", "sweep_begin");
    begin.Set("algorithm", alg_name);
    begin.Set("family", family);
    begin.Set("seeds_per_size", static_cast<std::uint64_t>(cfg.seeds_per_size));
    obs::JsonValue sizes = obs::JsonValue::MakeArray();
    for (const NodeId n : cfg.sizes) sizes.Push(static_cast<std::uint64_t>(n));
    begin.Set("sizes", std::move(sizes));
    *telemetry_stream << begin.Dump(-1) << '\n';
  }
  SweepRunInfo info;
  const auto points = RunSweep(cfg, jobs, &info);
  if (telemetry_stream != nullptr) {
    std::uint32_t sweep_failures = 0;
    for (const auto& p : points) sweep_failures += p.failures;
    obs::JsonValue end = obs::JsonValue::MakeObject();
    end.Set("event", "sweep_end");
    end.Set("trials", static_cast<std::uint64_t>(cfg.sizes.size() *
                                                 cfg.seeds_per_size));
    end.Set("failures", static_cast<std::uint64_t>(sweep_failures));
    *telemetry_stream << end.Dump(-1) << '\n';
    telemetry_stream->flush();
  }
  std::printf("%s", RenderSweep("algorithm " + alg_name + ", family " + family,
                                points)
                        .c_str());
  if (!flags.Has("quiet")) {
    std::printf("jobs: %u, wall: %.3fs\n", info.jobs, info.wall_seconds);
  }

  if (flags.Has("report-out")) {
    // Same emis-bench-report/1 schema the experiment binaries emit, so
    // `emis_cli validate-report` and the CI round-trip accept it.
    std::uint32_t failures = 0;
    for (const auto& p : points) failures += p.failures;
    obs::JsonValue doc = obs::JsonValue::MakeObject();
    doc.Set("schema", obs::kBenchReportSchema);
    doc.Set("bench", std::string("emis_cli sweep"));
    doc.Set("claim", "algorithm " + alg_name + ", family " + family);
    doc.Set("failures", static_cast<std::int64_t>(failures));
    doc.Set("verdicts", obs::JsonValue::MakeArray());
    obs::JsonValue sweeps = obs::JsonValue::MakeArray();
    sweeps.Push(BuildSweepJson("algorithm " + alg_name + ", family " + family,
                               points, &info));
    doc.Set("sweeps", std::move(sweeps));
    doc.Set("metrics", obs::BuildMetricsJson(metrics));
    obs::JsonValue alloc = obs::JsonValue::MakeObject();
    alloc.Set("peak_rss_bytes", obs::PeakRssBytes());
    doc.Set("alloc", std::move(alloc));
    const std::string report_path = flags.Get("report-out");
    std::ofstream report_file(report_path);
    EMIS_REQUIRE(report_file.good(), "cannot write '" + report_path + "'");
    report_file << doc.Dump(2) << '\n';
    if (!flags.Has("quiet")) std::printf("report: %s\n", report_path.c_str());
  }
  if (flags.Has("metrics-text")) {
    const std::string metrics_path = flags.Get("metrics-text");
    std::ofstream metrics_file(metrics_path);
    EMIS_REQUIRE(metrics_file.good(), "cannot write '" + metrics_path + "'");
    obs::WriteMetricsText(metrics_file, metrics);
    if (!flags.Has("quiet")) std::printf("metrics: %s\n", metrics_path.c_str());
  }
  return 0;
}

int CmdValidateReport(const Flags& flags) {
  EMIS_REQUIRE(flags.positional.size() == 1,
               "validate-report needs exactly one FILE.json");
  const std::string& path = flags.positional[0];
  std::ifstream in(path);
  EMIS_REQUIRE(in.good(), "cannot open report file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const obs::JsonValue doc = obs::ParseJson(buffer.str());
  const std::string error = obs::ValidateReport(doc);
  if (error.empty()) {
    std::printf("%s: conforms to %s\n", path.c_str(),
                std::string(doc.Find("schema")->AsString()).c_str());
    return 0;
  }
  std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
  return 1;
}

/// The usage text, shared by `help` (exit 0) and usage errors (exit 2).
/// Every run/sweep cost knob (--resolution, --compaction, --engine) is
/// listed for both commands; tests/golden/emis_cli_help.txt snapshots this
/// output.
void PrintUsage() {
  std::printf(
      "usage:\n"
      "  emis_cli help | --help | -h\n"
      "  emis_cli algorithms\n"
      "  emis_cli gen <graph-spec> [--seed S] [--out FILE]\n"
      "  emis_cli graph pack --graph <spec|file:PATH> [--seed S] --out FILE.csr\n"
      "  emis_cli run --graph <spec|file:PATH|csr:PATH> --alg <name> [--seed S]\n"
      "               [--preset practical|theory] [--delta-unknown]\n"
      "               [--resolution auto|push|pull] [--compaction on|off]\n"
      "               [--engine coroutine|flat] [--shards N]\n"
      "               [--trace FILE.csv] [--trace-jsonl FILE.jsonl]\n"
      "               [--report-out FILE.json] [--flamegraph-out FILE.txt]\n"
      "               [--telemetry-out PATH|fd:N] [--heartbeat-every R]\n"
      "               [--metrics-text FILE.prom] [--quiet]\n"
      "  emis_cli sweep --alg <name> --family <er|udg|star|tree|matching|complete>\n"
      "               --sizes 64,128,... [--seeds K] [--avg-degree D]\n"
      "               [--delta-unknown] [--resolution auto|push|pull]\n"
      "               [--compaction on|off] [--engine coroutine|flat]\n"
      "               [--shards N] [--jobs N] [--report-out FILE.json]\n"
      "               [--telemetry-out PATH|fd:N] [--heartbeat-every R]\n"
      "               [--metrics-text FILE.prom] [--quiet]\n"
      "  emis_cli validate-report FILE.json\n"
      "                (run, bench, diff, and emis-lint-report/1|/2 schemas)\n"
      "cost knobs (identical results, different cost):\n"
      "  --resolution  channel direction: auto picks per round by live-degree\n"
      "                sums; push/pull force one side\n"
      "  --compaction  residual-graph compaction: on (default) drops retired\n"
      "                nodes from channel scan rows; off scans seed CSR rows\n"
      "  --engine      execution backend: coroutine (default; override via\n"
      "                EMIS_ENGINE) resumes one coroutine per awake node;\n"
      "                flat advances packed per-node state machines\n"
      "  --shards      intra-run shard count for the flat engine (default 1;\n"
      "                override via EMIS_SHARDS): rounds are partitioned over\n"
      "                edge-balanced node ranges on a worker pool, results\n"
      "                stay bit-identical at any count\n"
      "observability sinks (identical results, extra artifacts):\n"
      "  --flamegraph-out  collapsed-stack energy attribution (phase;sub w)\n"
      "  --telemetry-out   emis-telemetry/1 NDJSON stream (file or fd:N);\n"
      "                    --heartbeat-every R thins round events to every R\n"
      "  --metrics-text    Prometheus text exposition of the metrics registry\n"
      "graph specs: %s\n",
      GraphSpecHelp().c_str());
}

int Usage() {
  PrintUsage();
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
      PrintUsage();
      return 0;
    }
    if (cmd == "algorithms") return CmdAlgorithms();
    if (cmd == "graph") {
      // Subcommand group: `graph pack` converts any loadable topology into
      // the mmap-ready emis-csr/1 binary format.
      if (argc < 3 || std::strcmp(argv[2], "pack") != 0) {
        std::fprintf(stderr, "unknown graph subcommand (expected `graph pack`)\n");
        return Usage();
      }
      return CmdGraphPack(Parse(argc, argv, 3));
    }
    const Flags flags = Parse(argc, argv, 2);
    if (cmd == "gen") return CmdGen(flags);
    if (cmd == "run") return CmdRun(flags);
    if (cmd == "sweep") return CmdSweep(flags);
    if (cmd == "validate-report") return CmdValidateReport(flags);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return Usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

}  // namespace
}  // namespace emis::cli

int main(int argc, char** argv) { return emis::cli::Main(argc, argv); }
