// Side-by-side comparison of every MIS algorithm in the library on one
// topology: the paper's results table, live.
//
//   $ ./examples/energy_comparison [n] [seed]
#include <cstdio>
#include <cstdlib>

#include "baselines/greedy_mis.hpp"
#include "baselines/luby_congest.hpp"
#include "core/runner.hpp"
#include "radio/graph_generators.hpp"
#include "verify/stats.hpp"

int main(int argc, char** argv) {
  using namespace emis;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 512;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  Rng rng(seed);
  const Graph g = gen::ErdosRenyi(n, 8.0 / n, rng);
  std::printf("topology: G(n=%u, 8/n) — %llu edges, max degree %u, "
              "Δ treated as unknown (= n) for the no-CD algorithms\n\n",
              n, static_cast<unsigned long long>(g.NumEdges()), g.MaxDegree());

  Table table({"algorithm", "model", "valid", "|MIS|", "rounds", "energy max",
               "energy avg", "energy p50"});

  const MisAlgorithm algorithms[] = {
      MisAlgorithm::kCd,          MisAlgorithm::kCdBeeping,
      MisAlgorithm::kCdNaive,     MisAlgorithm::kNoCd,
      MisAlgorithm::kNoCdDaviesProfile, MisAlgorithm::kNoCdNaive,
      MisAlgorithm::kNoCdRoundEfficient, MisAlgorithm::kNoCdUnknownDelta,
  };
  for (MisAlgorithm alg : algorithms) {
    MisRunConfig cfg{.algorithm = alg, .seed = seed};
    if (ModelFor(alg) == ChannelModel::kNoCd) cfg.delta_estimate = n;
    const auto r = RunMis(g, cfg);
    table.AddRow({std::string(ToString(alg)), std::string(ToString(ModelFor(alg))),
                  r.Valid() ? "yes" : "NO", std::to_string(r.MisSize()),
                  std::to_string(r.stats.rounds_used),
                  std::to_string(r.energy.MaxAwake()),
                  Fmt(r.energy.AverageAwake(), 1),
                  std::to_string(r.energy.PercentileAwake(50))});
  }

  // Non-radio references.
  {
    const auto luby = LubyCongest(g, seed);
    table.AddRow({"luby", "wired CONGEST", luby.all_decided ? "yes" : "NO",
                  std::to_string(MisSize(luby.status)),
                  std::to_string(2 * luby.phases_used),
                  std::to_string(luby.energy.MaxAwake()),
                  Fmt(luby.energy.AverageAwake(), 1),
                  std::to_string(luby.energy.PercentileAwake(50))});
    const auto greedy = GreedyMis(g);
    table.AddRow({"greedy", "centralized", "yes", std::to_string(MisSize(greedy)),
                  "-", "-", "-", "-"});
  }

  std::printf("%s", table.Render("seed " + std::to_string(seed)).c_str());
  std::printf(
      "\nReading guide: cd (Thm 2) pays O(log n); cd-naive-luby pays "
      "Θ(log² n); nocd (Thm 10) pays O(log² n·loglog n) — below "
      "nocd-davies-profile's Θ(log² n·log Δ) and far below "
      "nocd-naive-luby's Θ(log³ n·log Δ) average.\n");
  return 0;
}
