// Quickstart: build a topology, run the energy-optimal CD-model MIS
// (Algorithm 1), verify the result and inspect the energy profile.
//
//   $ ./examples/quickstart [n] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/runner.hpp"
#include "radio/graph_generators.hpp"

int main(int argc, char** argv) {
  using namespace emis;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 1000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // An ad-hoc sensor deployment: n radios dropped uniformly in a unit
  // square, hearing each other within a fixed range.
  Rng rng(seed);
  const Graph graph = gen::RandomGeometric(n, 0.06, rng);
  std::printf("topology: %u nodes, %llu links, max degree %u\n", graph.NumNodes(),
              static_cast<unsigned long long>(graph.NumEdges()), graph.MaxDegree());

  // One call runs the distributed algorithm on the simulated radio channel.
  const MisRunResult result =
      RunMis(graph, {.algorithm = MisAlgorithm::kCd, .seed = seed});

  if (!result.Valid()) {
    std::printf("MIS invalid (probability 1/poly(n)): %s\n",
                result.report.Describe().c_str());
    return 1;
  }
  std::printf("MIS computed: %llu nodes selected\n",
              static_cast<unsigned long long>(result.MisSize()));
  std::printf("rounds used:  %llu\n",
              static_cast<unsigned long long>(result.stats.rounds_used));
  std::printf("energy:       max %llu awake rounds, mean %.1f, median %llu\n",
              static_cast<unsigned long long>(result.energy.MaxAwake()),
              result.energy.AverageAwake(),
              static_cast<unsigned long long>(result.energy.PercentileAwake(50)));
  std::printf("              (Theorem 2: O(log n) = O(%u) here)\n",
              CdParams::LogN(n));

  // Per-node status is in result.status:
  NodeId first_in = kInvalidNode;
  for (NodeId v = 0; v < graph.NumNodes() && first_in == kInvalidNode; ++v) {
    if (result.status[v] == MisStatus::kInMis) first_in = v;
  }
  if (first_in != kInvalidNode) {
    std::printf("example: node %u is in the MIS and spent %llu awake rounds\n",
                first_in,
                static_cast<unsigned long long>(result.energy.Of(first_in).Awake()));
  }
  return 0;
}
