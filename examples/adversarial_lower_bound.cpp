// The Theorem 1 lower bound, hands-on: run MIS under shrinking energy
// budgets on the adversarial matching+isolated topology and watch the
// failure probability jump below the Ω(log n) threshold.
//
//   $ ./examples/adversarial_lower_bound [n]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/runner.hpp"
#include "radio/graph_generators.hpp"
#include "verify/stats.hpp"

int main(int argc, char** argv) {
  using namespace emis;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 1024;
  const double log_n = std::log2(static_cast<double>(n));

  const Graph g = gen::MatchingPlusIsolated(n);
  std::printf("Theorem 1's graph on n=%u: %llu disjoint pairs + %u isolated "
              "nodes.\n",
              n, static_cast<unsigned long long>(g.NumEdges()), n - 2 * (n / 4));
  std::printf("Every isolated node must join; every pair must break its tie "
              "— which takes Ω(log n) awake rounds.\n\n");

  const std::uint32_t kTrials = 25;
  Table table({"energy budget", "failure rate", "typical broken pairs"});
  for (std::uint64_t budget :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{4},
        static_cast<std::uint64_t>(log_n / 2),
        static_cast<std::uint64_t>(log_n), static_cast<std::uint64_t>(3 * log_n)}) {
    std::uint32_t failures = 0;
    std::uint64_t broken = 0;
    for (std::uint32_t t = 0; t < kTrials; ++t) {
      MisRunConfig cfg{.algorithm = MisAlgorithm::kCd, .seed = 100 + t};
      cfg.cd_params = CdParams::Practical(n);
      cfg.cd_params->energy_cap = budget;
      const auto r = RunMis(g, cfg);
      failures += r.Valid() ? 0 : 1;
      broken += r.report.dependent_edges.size();
    }
    table.AddRow({std::to_string(budget) + " awake rounds",
                  Fmt(static_cast<double>(failures) / kTrials, 2),
                  Fmt(static_cast<double>(broken) / kTrials, 1)});
  }
  std::printf("%s", table.Render("energy-capped Algorithm 1, " +
                                 std::to_string(kTrials) + " trials per row")
                        .c_str());
  std::printf("\n(1/2)·log2 n = %.0f is the paper's unavoidable threshold; "
              "with ~3 log n rounds the tie-breaks all succeed.\n", log_n / 2);
  return 0;
}
