// Sensor-network backbone construction — the application that motivates the
// paper's introduction.
//
// A battery-powered sensor field wakes up with no infrastructure and no
// neighborhood knowledge. The MIS becomes the backbone: MIS nodes act as
// cluster heads; every other sensor is adjacent to (covered by) a head.
// Because the sensors cannot detect collisions, we run Algorithm 2 (no-CD),
// and since nobody knows the maximum degree, the nodes fall back to Δ = n
// (paper §1.1) — the regime the commit mechanism was designed for.
//
//   $ ./examples/sensor_backbone [n] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/runner.hpp"
#include "radio/graph_generators.hpp"

int main(int argc, char** argv) {
  using namespace emis;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 600;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  Rng rng(seed);
  const Graph field = gen::RandomGeometric(n, 0.08, rng);
  std::printf("sensor field: %u sensors, %llu radio links, max degree %u\n",
              field.NumNodes(), static_cast<unsigned long long>(field.NumEdges()),
              field.MaxDegree());

  const MisRunResult result = RunMis(field, {.algorithm = MisAlgorithm::kNoCd,
                                             .seed = seed,
                                             .delta_estimate = n});
  if (!result.Valid()) {
    std::printf("backbone election failed this run: %s\n",
                result.report.Describe().c_str());
    return 1;
  }

  // Backbone statistics.
  const std::uint64_t heads = result.MisSize();
  std::uint64_t covered = 0;
  std::uint32_t max_cluster = 0;
  for (NodeId v = 0; v < field.NumNodes(); ++v) {
    if (result.status[v] != MisStatus::kInMis) continue;
    std::uint32_t cluster = 0;
    for (NodeId w : field.Neighbors(v)) {
      cluster += result.status[w] == MisStatus::kOutMis ? 1 : 0;
    }
    covered += cluster;
    max_cluster = std::max(max_cluster, cluster);
  }
  std::printf("backbone: %llu cluster heads, largest cluster %u sensors\n",
              static_cast<unsigned long long>(heads), max_cluster);

  // Energy report: the reason to use Algorithm 2. Battery cost is awake
  // rounds; rounds asleep are nearly free.
  std::printf("energy:   max %llu awake rounds over %llu total rounds "
              "(duty cycle %.4f%%)\n",
              static_cast<unsigned long long>(result.energy.MaxAwake()),
              static_cast<unsigned long long>(result.stats.rounds_used),
              100.0 * static_cast<double>(result.energy.MaxAwake()) /
                  static_cast<double>(result.stats.rounds_used));
  std::printf("          p50 %llu, p90 %llu, p100 %llu awake rounds\n",
              static_cast<unsigned long long>(result.energy.PercentileAwake(50)),
              static_cast<unsigned long long>(result.energy.PercentileAwake(90)),
              static_cast<unsigned long long>(result.energy.PercentileAwake(100)));

  // Compare with what the naive implementation would have drained.
  const MisRunResult naive = RunMis(field, {.algorithm = MisAlgorithm::kNoCdNaive,
                                            .seed = seed,
                                            .delta_estimate = n});
  std::printf("naive Luby-with-Decay would spend: max %llu awake rounds "
              "(%.1fx), mean %.1f (%.1fx)\n",
              static_cast<unsigned long long>(naive.energy.MaxAwake()),
              static_cast<double>(naive.energy.MaxAwake()) /
                  static_cast<double>(result.energy.MaxAwake()),
              naive.energy.AverageAwake(),
              naive.energy.AverageAwake() / result.energy.AverageAwake());
  return 0;
}
