// Round-by-round trace of Algorithm 1 on a 5-node graph — watch the bit
// competition, the losers falling asleep, and the winner's confirmation.
//
//   $ ./examples/trace_demo [seed]
#include <cstdio>
#include <cstdlib>

#include "core/runner.hpp"
#include "radio/graph_generators.hpp"
#include "radio/trace.hpp"

int main(int argc, char** argv) {
  using namespace emis;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  // A "bowtie": two triangles sharing node 2.
  const Graph g = Graph::FromEdges(
      5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
  std::printf("graph: bowtie on 5 nodes (triangles 0-1-2 and 2-3-4)\n");

  RingTrace trace;
  MisRunConfig cfg{.algorithm = MisAlgorithm::kCd, .seed = seed, .trace = &trace};
  // Short ranks keep the trace readable; correctness is unaffected at n=5.
  cfg.cd_params = CdParams{.luby_phases = 8, .rank_bits = 6};
  const auto result = RunMis(g, cfg);

  std::printf("decisions:");
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    std::printf(" n%u=%s", v, std::string(ToString(result.status[v])).c_str());
  }
  std::printf("  (%s)\n\n", result.Valid() ? "valid MIS" : "INVALID");

  const Round phase_len = cfg.cd_params->PhaseRounds();
  const auto& events = trace.Events();
  Round last_round = kForever;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.round != last_round) {
      last_round = e.round;
      const Round phase = e.round / phase_len;
      const Round offset = e.round % phase_len;
      if (offset == 0) {
        std::printf("--- Luby phase %llu ---\n",
                    static_cast<unsigned long long>(phase + 1));
      }
      std::printf("round %3llu (%s %llu): ",
                  static_cast<unsigned long long>(e.round),
                  offset + 1 == phase_len ? "check" : "bit",
                  static_cast<unsigned long long>(
                      offset + 1 == phase_len ? phase + 1 : offset + 1));
    } else {
      std::printf("; ");
    }
    if (e.action == ActionKind::kTransmit) {
      std::printf("n%u beeps", e.node);
    } else {
      std::printf("n%u hears %s", e.node,
                  std::string(ToString(e.reception.kind)).c_str());
    }
    if (i + 1 == events.size() || events[i + 1].round != e.round) {
      std::printf("\n");
    }
  }

  std::printf("\nper-node energy:");
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    std::printf(" n%u=%llu", v,
                static_cast<unsigned long long>(result.energy.Of(v).Awake()));
  }
  std::printf("  (rounds used: %llu)\n",
              static_cast<unsigned long long>(result.stats.rounds_used));
  return 0;
}
