// The MIS-as-building-block story end to end: elect cluster heads, affiliate
// every sensor with an adjacent head (backbone), then compute a (Δ+1)-
// coloring by iterated MIS — e.g. for TDMA slot assignment inside clusters.
//
//   $ ./examples/clustering_and_coloring [n] [seed]
#include <cstdio>
#include <cstdlib>
#include <map>

#include <algorithm>

#include "apps/backbone.hpp"
#include "apps/broadcast.hpp"
#include "apps/coloring.hpp"
#include "radio/graph_generators.hpp"

int main(int argc, char** argv) {
  using namespace emis;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 400;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  Rng rng(seed);
  const Graph field = gen::RandomGeometric(n, 0.09, rng);
  std::printf("sensor field: %u nodes, %llu links, max degree %u\n\n",
              field.NumNodes(), static_cast<unsigned long long>(field.NumEdges()),
              field.MaxDegree());

  // --- Stage A: backbone ----------------------------------------------------
  const BackboneParams bp = BackboneParams::Practical(n, field.MaxDegree());
  const BackboneResult backbone = BuildBackbone(field, bp, seed);
  const std::string backbone_problems = CheckBackbone(field, backbone);
  std::printf("backbone: %llu cluster heads, %llu/%u nodes affiliated (%s)\n",
              static_cast<unsigned long long>(backbone.NumHeads()),
              static_cast<unsigned long long>(backbone.NumAffiliated()),
              field.NumNodes(),
              backbone_problems.empty() ? "valid" : backbone_problems.c_str());

  // Cluster size distribution.
  std::map<std::uint64_t, int> cluster_sizes;
  for (const auto& node : backbone.nodes) {
    if (node.affiliated) ++cluster_sizes[node.head_id];
  }
  int largest = 0;
  for (const auto& [id, size] : cluster_sizes) largest = std::max(largest, size);
  std::printf("          %zu clusters, largest has %d members "
              "(energy: max %llu awake rounds)\n\n",
              cluster_sizes.size(), largest,
              static_cast<unsigned long long>(backbone.energy.MaxAwake()));

  // --- Stage B: coloring ------------------------------------------------------
  const ColoringParams cp = ColoringParams::Practical(n, field.MaxDegree());
  const ColoringResult coloring = ColorGraph(field, cp, seed + 1);
  const std::string coloring_problems = CheckColoring(field, coloring, cp.max_colors);
  std::printf("coloring: %u colors for Δ+1 = %u (%s)\n", coloring.colors_used,
              field.MaxDegree() + 1,
              coloring_problems.empty() ? "proper" : coloring_problems.c_str());
  std::printf("          energy: max %llu awake rounds over %llu total rounds\n",
              static_cast<unsigned long long>(coloring.energy.MaxAwake()),
              static_cast<unsigned long long>(coloring.stats.rounds_used));

  // A TDMA reading: nodes sharing a color can safely transmit simultaneously
  // (no two are neighbors), so colors_used is the schedule length.
  std::printf("          => interference-free TDMA schedule of %u slots\n\n",
              coloring.colors_used);

  // --- Stage C: deterministic broadcast over a distance-2 TDMA schedule ------
  const auto d2 = GreedyDistanceTwoColoring(field);
  const auto d2_colors = 1 + *std::max_element(d2.begin(), d2.end());
  const BroadcastResult flood = FloodBroadcast(field, /*source=*/0,
                                               /*payload=*/0xBEEF, d2);
  Round latest = 0;
  for (Round t : flood.informed_at) {
    if (t != kForever) latest = std::max(latest, t);
  }
  std::printf("broadcast: distance-2 schedule of %u slots; %s; last node "
              "informed in round %llu\n",
              d2_colors,
              flood.AllInformed() ? "every node informed"
                                  : "some components unreachable",
              static_cast<unsigned long long>(latest));
  std::printf("           zero collisions by construction; each node "
              "transmitted at most once (max energy %llu)\n",
              static_cast<unsigned long long>(flood.energy.MaxAwake()));
  return backbone_problems.empty() && coloring_problems.empty() ? 0 : 1;
}
