// Classic Luby's algorithm in the wired CONGEST model.
//
// In CONGEST there is no radio contention: every node broadcasts to all its
// neighbors in one round with no collisions. This is the paper's reference
// point for what MIS costs when communication is free of collisions, and our
// distributed ground truth: tests compare the radio algorithms' outputs
// against its correctness properties, and benches use it for set-size
// comparisons.
//
// Implementation is a direct synchronous simulation (the radio scheduler is
// deliberately not involved; collisions cannot occur). Per phase, every
// undecided node draws a random 62-bit priority, the strict local maxima
// join the MIS, and their neighbors drop out. Energy accounting follows the
// SLEEPING-CONGEST convention: an undecided node pays 2 awake rounds per
// phase (one broadcast, one notification exchange); decided nodes sleep.
#pragma once

#include <cstdint>
#include <vector>

#include "core/status.hpp"
#include "radio/energy.hpp"
#include "radio/graph.hpp"
#include "radio/rng.hpp"

namespace emis {

struct LubyCongestResult {
  std::vector<MisStatus> status;
  std::uint32_t phases_used = 0;
  EnergyMeter energy;  ///< awake rounds under the SLEEPING-CONGEST convention
  bool all_decided = false;
};

/// Runs Luby's algorithm until every node is decided or `max_phases` is hit.
LubyCongestResult LubyCongest(const Graph& graph, std::uint64_t seed,
                              std::uint32_t max_phases = 10'000);

}  // namespace emis
