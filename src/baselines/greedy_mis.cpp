#include "baselines/greedy_mis.hpp"

#include <algorithm>
#include <numeric>

namespace emis {
namespace {

std::vector<MisStatus> GreedyInOrder(const Graph& graph,
                                     const std::vector<NodeId>& order) {
  std::vector<MisStatus> status(graph.NumNodes(), MisStatus::kUndecided);
  for (NodeId v : order) {
    if (status[v] != MisStatus::kUndecided) continue;
    status[v] = MisStatus::kInMis;
    for (NodeId w : graph.Neighbors(v)) status[w] = MisStatus::kOutMis;
  }
  return status;
}

}  // namespace

std::vector<MisStatus> GreedyMis(const Graph& graph) {
  std::vector<NodeId> order(graph.NumNodes());
  std::iota(order.begin(), order.end(), 0);
  return GreedyInOrder(graph, order);
}

std::vector<MisStatus> RandomOrderGreedyMis(const Graph& graph, Rng& rng) {
  std::vector<NodeId> order(graph.NumNodes());
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates with the library Rng (std::shuffle needs a URBG; ours
  // qualifies, but an explicit loop keeps the sampling path obvious).
  for (NodeId i = graph.NumNodes(); i > 1; --i) {
    const auto j = static_cast<NodeId>(rng.UniformBelow(i));
    std::swap(order[i - 1], order[j]);
  }
  return GreedyInOrder(graph, order);
}

std::uint64_t MisSize(const std::vector<MisStatus>& status) {
  return static_cast<std::uint64_t>(
      std::count(status.begin(), status.end(), MisStatus::kInMis));
}

}  // namespace emis
