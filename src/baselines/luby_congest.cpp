#include "baselines/luby_congest.hpp"

namespace emis {

LubyCongestResult LubyCongest(const Graph& graph, std::uint64_t seed,
                              std::uint32_t max_phases) {
  const NodeId n = graph.NumNodes();
  LubyCongestResult result;
  result.status.assign(n, MisStatus::kUndecided);
  result.energy = EnergyMeter(n);

  const Rng root(seed);
  std::vector<Rng> rng;
  rng.reserve(n);
  for (NodeId v = 0; v < n; ++v) rng.push_back(root.Split(v));

  std::vector<std::uint64_t> priority(n, 0);
  std::vector<NodeId> undecided;
  undecided.reserve(n);
  for (NodeId v = 0; v < n; ++v) undecided.push_back(v);

  std::uint32_t phase = 0;
  for (; phase < max_phases && !undecided.empty(); ++phase) {
    // Broadcast round: draw and exchange priorities. 62 bits keep ties
    // vanishingly rare; ties are broken toward the smaller id so the phase
    // stays well-defined regardless.
    for (NodeId v : undecided) {
      priority[v] = rng[v].NextU64() >> 2;
      result.energy.ChargeTransmit(v);
    }
    // Decision: strict local maxima among undecided nodes join.
    std::vector<NodeId> joined;
    for (NodeId v : undecided) {
      bool is_max = true;
      for (NodeId w : graph.Neighbors(v)) {
        if (result.status[w] != MisStatus::kUndecided) continue;
        if (priority[w] > priority[v] || (priority[w] == priority[v] && w < v)) {
          is_max = false;
          break;
        }
      }
      if (is_max) joined.push_back(v);
    }
    // Notification round: winners announce; every undecided node listens.
    for (NodeId v : undecided) result.energy.ChargeListen(v);
    for (NodeId v : joined) result.status[v] = MisStatus::kInMis;
    for (NodeId v : joined) {
      for (NodeId w : graph.Neighbors(v)) {
        if (result.status[w] == MisStatus::kUndecided) {
          result.status[w] = MisStatus::kOutMis;
        }
      }
    }
    std::erase_if(undecided, [&](NodeId v) {
      return result.status[v] != MisStatus::kUndecided;
    });
  }
  result.phases_used = phase;
  result.all_decided = undecided.empty();
  return result;
}

}  // namespace emis
