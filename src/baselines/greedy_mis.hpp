// Centralized MIS constructions — references for tests and set-size
// comparisons. Not distributed algorithms; they see the whole graph.
#pragma once

#include <cstdint>
#include <vector>

#include "core/status.hpp"
#include "radio/graph.hpp"
#include "radio/rng.hpp"

namespace emis {

/// Greedy MIS in node-id order: deterministic, minimal machinery.
std::vector<MisStatus> GreedyMis(const Graph& graph);

/// Greedy MIS in a uniformly random node order (the sequential equivalent of
/// Luby's algorithm). Useful for sampling the distribution of MIS sizes.
std::vector<MisStatus> RandomOrderGreedyMis(const Graph& graph, Rng& rng);

/// Number of kInMis entries.
std::uint64_t MisSize(const std::vector<MisStatus>& status);

}  // namespace emis
