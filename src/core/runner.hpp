// Public facade: one call to run any MIS algorithm on a graph and get back
// the decisions, validity report, round count and energy profile.
//
//   Graph g = gen::RandomGeometric(1024, 0.05, rng);
//   MisRunResult r = RunMis(g, {.algorithm = MisAlgorithm::kCd, .seed = 1});
//   if (r.Valid()) { use r.status, r.energy.MaxAwake(), ... }
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/params.hpp"
#include "core/status.hpp"
#include "radio/energy.hpp"
#include "radio/graph.hpp"
#include "radio/scheduler.hpp"
#include "radio/trace.hpp"
#include "verify/mis_checker.hpp"

namespace emis {

enum class MisAlgorithm : std::uint8_t {
  /// Algorithm 1 on the CD channel — Theorem 2: O(log n) energy.
  kCd,
  /// Algorithm 1 on the beeping channel (paper §3.1: identical code).
  kCdBeeping,
  /// §1.3's "somewhat straightforward" Luby in the CD radio model: losers
  /// keep listening through the competition — Θ(log² n) energy baseline.
  kCdNaive,
  /// Algorithm 2 on the no-CD channel — Theorem 10: O(log² n log log n)
  /// energy.
  kNoCd,
  /// Backoff-simulated Algorithm 1 with energy-efficient backoffs on the
  /// full graph: the energy profile of the round-efficient algorithm of
  /// Davies [18] — Θ(log² n log Δ) energy (DESIGN.md §5).
  kNoCdDaviesProfile,
  /// The same simulation with traditional always-awake Decay backoffs:
  /// §1.3's naive no-CD Luby — Θ(log³ n log Δ) ⊆ O(log⁴ n) energy.
  kNoCdNaive,
  /// Algorithm 2 wrapped in the §1.1 unknown-Δ scheme: guesses Δ = 2^(2^i)
  /// with per-epoch verification and retry. Ignores delta_estimate — the
  /// whole point is that no degree bound is known.
  kNoCdUnknownDelta,
  /// The §4.2-style round-efficient MIS (Ghaffari simulation,
  /// ghaffari_mis.hpp) run standalone on the full graph — the true
  /// Davies'23 stand-in: O(log² n log Δ) rounds AND energy.
  kNoCdRoundEfficient,
};

constexpr std::string_view ToString(MisAlgorithm a) noexcept {
  switch (a) {
    case MisAlgorithm::kCd: return "cd";
    case MisAlgorithm::kCdBeeping: return "cd-beeping";
    case MisAlgorithm::kCdNaive: return "cd-naive-luby";
    case MisAlgorithm::kNoCd: return "nocd";
    case MisAlgorithm::kNoCdDaviesProfile: return "nocd-davies-profile";
    case MisAlgorithm::kNoCdNaive: return "nocd-naive-luby";
    case MisAlgorithm::kNoCdUnknownDelta: return "nocd-unknown-delta";
    case MisAlgorithm::kNoCdRoundEfficient: return "nocd-round-efficient";
  }
  return "?";
}

/// Which constant preset to derive parameters from (see params.hpp).
enum class ParamPreset : std::uint8_t { kPractical, kTheory };

/// Process-wide default execution backend: ExecutionEngine::kCoroutine, or
/// the value of the EMIS_ENGINE environment variable ("coroutine" / "flat")
/// when set to a valid engine name. Read once and cached; lets a CI matrix
/// run the whole test suite under either engine without touching call sites.
ExecutionEngine DefaultExecutionEngine() noexcept;

struct MisRunConfig {
  MisAlgorithm algorithm = MisAlgorithm::kCd;
  ParamPreset preset = ParamPreset::kPractical;
  std::uint64_t seed = 0;

  /// Execution backend (cost knob only — both engines produce identical
  /// traces, energy profiles, and MIS decisions; see DESIGN.md §12).
  ExecutionEngine engine = DefaultExecutionEngine();
  /// Intra-run shard count for the flat engine (cost knob only — observables
  /// are bit-identical at any shard count; see SchedulerConfig::shards and
  /// DESIGN.md §13). The coroutine engine always runs single-sharded.
  unsigned shards = DefaultShards();

  /// Known upper bound on n given to the nodes (paper §1.1). 0 = use the
  /// actual node count. Overestimates only scale the polylog factors.
  std::uint64_t n_estimate = 0;
  /// Known upper bound on Δ. 0 = use the graph's true max degree. Only the
  /// no-CD algorithms consume Δ.
  std::uint32_t delta_estimate = 0;

  /// Explicit parameter overrides; when set, preset/n/Δ derivation is
  /// skipped for the corresponding algorithm family.
  std::optional<CdParams> cd_params;
  std::optional<NoCdParams> nocd_params;
  std::optional<SimCdParams> sim_params;

  Round max_rounds = 4'000'000'000ULL;
  TraceSink* trace = nullptr;
  /// Per-link per-round fading probability (library extension; the paper
  /// assumes a reliable channel). Combine with CdParams::repetitions to
  /// harden Algorithm 1 against it.
  double link_loss = 0.0;
  /// Channel resolution direction (cost knob only — receptions and the MIS
  /// are identical in every mode). See SchedulerConfig::resolution.
  ChannelResolution resolution = ChannelResolution::kAuto;
  /// Residual-graph compaction (cost/memory knob only — receptions and the
  /// MIS are identical either way). See SchedulerConfig::compaction.
  bool compaction = true;

  /// Optional observability (src/obs/): a metrics registry fed by the
  /// scheduler's hot-path timers/counters, and a phase timeline fed by the
  /// protocols' NodeApi::Phase annotations. RunMis additionally installs a
  /// residual-edge probe on the timeline (edges between still-undecided
  /// nodes), making Lemma 5 / Lemma 20 decay visible per phase. Both are
  /// caller-owned and may be serialized afterwards with obs/report.hpp.
  obs::MetricsRegistry* metrics = nullptr;
  obs::PhaseTimeline* timeline = nullptr;
  /// Optional energy-attribution ledger (sized to the graph): per-(node,
  /// phase, level) awake-round charges, conserved against the EnergyMeter.
  /// Pair with `timeline` — without it all charges stay unattributed.
  obs::EnergyLedger* ledger = nullptr;
  /// Optional streaming telemetry sink: round heartbeats and (with
  /// `timeline`) phase-boundary events, drained by the caller. RunMis emits
  /// no run_begin/run_end envelopes — drivers own the stream's framing.
  obs::StreamSink* telemetry = nullptr;
};

struct MisRunResult {
  std::vector<MisStatus> status;
  RunStats stats;
  EnergyMeter energy;
  MisReport report;
  /// Coroutine-frame arena footprint of the run's scheduler.
  FrameArena::Stats arena;

  bool Valid() const noexcept { return report.IsValidMis(); }
  std::uint64_t MisSize() const noexcept;
};

/// Runs one algorithm once. Deterministic in (graph, config).
MisRunResult RunMis(const Graph& graph, const MisRunConfig& config);

/// The channel model an algorithm runs on.
ChannelModel ModelFor(MisAlgorithm algorithm) noexcept;

/// The derived parameters RunMis would use (exposed for tests and benches
/// that want to report e.g. the phase schedule).
CdParams DeriveCdParams(const Graph& graph, const MisRunConfig& config);
NoCdParams DeriveNoCdParams(const Graph& graph, const MisRunConfig& config);
SimCdParams DeriveSimParams(const Graph& graph, const MisRunConfig& config);

}  // namespace emis
