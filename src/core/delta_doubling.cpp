#include "core/delta_doubling.hpp"

#include "core/backoff.hpp"
#include "core/mis_nocd.hpp"

namespace emis {
namespace {

NoCdParams EpochParams(const DeltaDoublingParams& p, std::uint32_t guess) {
  return p.theory_constants ? NoCdParams::Theory(p.n, guess)
                            : NoCdParams::Practical(p.n, guess);
}

Round VerifyRounds(const DeltaDoublingParams& p, std::uint32_t guess) {
  // verify_reps one-shot backoffs, each one window wide.
  return static_cast<Round>(p.verify_reps) * BackoffRounds(1, guess);
}

}  // namespace

std::vector<std::uint32_t> DeltaDoublingParams::Guesses() const {
  EMIS_REQUIRE(n >= 1, "need a size bound");
  std::vector<std::uint32_t> guesses;
  // 2^(2^i): 2, 4, 16, 256, 65536, ... capped at n.
  for (std::uint64_t exponent = 1;; exponent *= 2) {
    const std::uint64_t guess =
        exponent >= 63 ? n : std::min<std::uint64_t>(n, 1ULL << exponent);
    guesses.push_back(static_cast<std::uint32_t>(guess));
    if (guess >= n) break;
  }
  return guesses;
}

Round DeltaDoublingTotalRounds(const DeltaDoublingParams& params) {
  Round total = 0;
  for (std::uint32_t guess : params.Guesses()) {
    const NoCdParams epoch = EpochParams(params, guess);
    total += VerifyRounds(params, guess);
    total += static_cast<Round>(epoch.luby_phases) * NoCdSchedule::Of(epoch).phase;
  }
  return total;
}

proc::Task<void> DeltaDoublingMisNode(NodeApi api, DeltaDoublingParams params,
                                      std::vector<MisStatus>* out) {
  MisStatus& status = (*out)[api.Id()];
  status = MisStatus::kUndecided;
  bool in_mis = false;

  Round epoch_start = 0;
  const std::vector<std::uint32_t> guesses = params.Guesses();
  for (std::uint32_t guess : guesses) {
    // Spans the verification window; the nested epoch's "luby-phase"
    // annotations take over from there.
    api.Phase("delta-epoch", guess);
    // --- 1. Verification window -----------------------------------------
    // Only in-MIS nodes are awake; each iteration they either announce or
    // listen (fair coin). Hearing anything here means an MIS neighbor:
    // demote. A demoted node stops verifying (it no longer transmits, so it
    // cannot cause further demotions this window) and sleeps to the end.
    const Round verify_end = epoch_start + VerifyRounds(params, guess);
    if (in_mis) {
      for (std::uint32_t it = 0; it < params.verify_reps && in_mis; ++it) {
        if (api.Rand().Bit()) {
          co_await SndEBackoff(api, 1, guess);
        } else {
          const bool heard = co_await RecEBackoff(api, 1, guess, guess);
          if (heard) {
            in_mis = false;  // independence violation: retry from scratch
            status = MisStatus::kUndecided;
          }
        }
      }
    }
    co_await api.SleepUntil(verify_end);

    // --- 2. Algorithm 2 epoch with Δ = guess -----------------------------
    // Every non-MIS node re-enters as undecided: its dominator may just
    // have been demoted, and re-learning domination from a standing MIS
    // neighbor is cheap (a shallow/deep check away).
    if (!in_mis) status = MisStatus::kUndecided;
    const NoCdParams epoch = EpochParams(params, guess);
    const Round epoch_rounds =
        static_cast<Round>(epoch.luby_phases) * NoCdSchedule::Of(epoch).phase;
    co_await MisNoCdEpoch(api, epoch, verify_end, &in_mis, &status);
    epoch_start = verify_end + epoch_rounds;
    co_await api.SleepUntil(epoch_start);
  }
  // Only now is the decision terminal: earlier epochs may demote an MIS node
  // during verification and send everyone back to undecided, so no node may
  // leave the residual graph before the last guess completes.
  api.Retire();
}

ProtocolFactory DeltaDoublingMisProtocol(DeltaDoublingParams params,
                                         std::vector<MisStatus>* out) {
  EMIS_REQUIRE(out != nullptr, "output vector required");
  return [params, out](NodeApi api) { return DeltaDoublingMisNode(api, params, out); };
}

}  // namespace emis
