// Algorithm 3 — the energy-budgeted competition of the no-CD MIS (paper §5).
//
// Like Algorithm 1's competition, but each Bitty phase is one k-repeated
// energy-efficient backoff (k = C′ log n), and with the paper's two
// energy-saving twists (§5.1.1):
//
//   * commit: a node that listens through a whole Bitty phase without
//     hearing anything has spent a large slice of its budget. It concludes
//     (justified whp, Lemma 12) that at most κ log n of its neighbors are
//     still in the running, drops its receiver degree estimate to κ log n —
//     shortening all its later listens — and *commits* to deciding in this
//     Luby phase.
//   * a committed node that later hears a neighbor does not lose outright;
//     it stays committed and resolves via LowDegreeMIS at the phase end.
//
// Outcomes: kWin (never heard anything — joins W_i, deep-checks, then joins
// the MIS), kCommit (committed and heard — joins C_i, deep-checks, then runs
// LowDegreeMIS), kLose (heard before ever committing).
#pragma once

#include <cstdint>

#include "core/params.hpp"
#include "radio/process.hpp"

namespace emis {

enum class CompetitionOutcome : std::uint8_t { kWin, kCommit, kLose };

/// Optional instrumentation filled in during a competition run (used by the
/// Lemma 11 / Corollary 13 experiments; protocols pass nullptr).
struct CompetitionProbe {
  std::int32_t commit_bit = -1;  ///< Bitty phase (0-based) of the commit, or -1
  std::int32_t lose_bit = -1;    ///< Bitty phase in which the node lost, or -1
};

/// Runs the competition from the caller's current round; takes exactly
/// rank_bits * T_B(deep_reps) rounds for every outcome, so concurrent
/// callers stay synchronized. `probe`, when non-null, must outlive the run.
proc::Task<CompetitionOutcome> Competition(NodeApi api, NoCdParams params,
                                           CompetitionProbe* probe = nullptr);

}  // namespace emis
