// Unknown-Δ MIS via doubly-exponential degree guessing (paper §1.1).
//
// When no bound on the maximum degree is known, §1.1 sketches: guess
// Δ_i = 2^(2^i), run the MIS algorithm per guess; when a guess is too small
// parts of the output may fail to be independent — affected vertices must
// detect this and retry with the next guess. The sketch promises an
// O(log log n) energy-factor overhead and O(1) round-factor overhead, and
// the paper omits the details ("sufficiently complicated"). This module
// fills them in as follows (a reconstruction, flagged as such in DESIGN.md):
//
// Epoch i (absolute-round scheduled, i = 0 .. ⌈log log n⌉):
//   1. Verification window: every node currently holding in-MIS status
//      alternates, by fair coin per iteration, one-shot sender/receiver
//      backoffs with window ⌈log Δ_i⌉+1 for verify_reps iterations. Only MIS
//      nodes transmit here, so hearing anything certifies an independence
//      violation: the hearer demotes itself to undecided. Because the
//      verification of epoch I (the first with Δ_I >= Δ true) uses a wide-
//      enough window, surviving violations are caught before the final run.
//   2. All non-in-MIS nodes reset to undecided (their dominator may just
//      have demoted) and run one full Algorithm 2 epoch with Δ = Δ_i.
//      Standing MIS nodes keep announcing, so previously dominated nodes
//      drop out again cheaply.
//
// The last epoch's verification runs with a full-width (⌈log n⌉+1) window,
// so even densely packed violations from earlier guesses are detected whp,
// and its Algorithm 2 run is correctly parametrized (Δ_last = n >= Δ) — the
// final output is therefore a valid MIS whp regardless of the true Δ.
#pragma once

#include <vector>

#include "core/params.hpp"
#include "core/status.hpp"
#include "radio/process.hpp"

namespace emis {

struct DeltaDoublingParams {
  /// Known upper bound on the network size (drives everything else).
  std::uint64_t n = 0;
  /// Iterations of each epoch's verification window (Θ(log n) for whp).
  std::uint32_t verify_reps = 0;
  /// Parameter preset for the per-epoch Algorithm 2 runs.
  bool theory_constants = false;

  /// The guess sequence Δ_i = min(n, 2^(2^i)), strictly increasing, last
  /// entry = n.
  std::vector<std::uint32_t> Guesses() const;

  static DeltaDoublingParams Practical(std::uint64_t n) {
    return {.n = n,
            .verify_reps = 2 * CdParams::LogN(n) + 12,
            .theory_constants = false};
  }
};

/// One node's run; writes the decision to (*out)[api.Id()].
proc::Task<void> DeltaDoublingMisNode(NodeApi api, DeltaDoublingParams params,
                                      std::vector<MisStatus>* out);

ProtocolFactory DeltaDoublingMisProtocol(DeltaDoublingParams params,
                                         std::vector<MisStatus>* out);

/// Total scheduled rounds (all epochs + verifications); useful for tests.
Round DeltaDoublingTotalRounds(const DeltaDoublingParams& params);

}  // namespace emis
