#include "core/runner.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/delta_doubling.hpp"
#include "core/flat_mis.hpp"
#include "core/ghaffari_mis.hpp"
#include "core/mis_cd.hpp"
#include "core/mis_nocd.hpp"
#include "core/simulated_cd_mis.hpp"

namespace emis {
namespace {

std::uint64_t EffectiveN(const Graph& graph, const MisRunConfig& config) {
  return config.n_estimate != 0 ? config.n_estimate
                                : std::max<std::uint64_t>(graph.NumNodes(), 2);
}

std::uint32_t EffectiveDelta(const Graph& graph, const MisRunConfig& config) {
  if (config.delta_estimate != 0) return config.delta_estimate;
  return std::max<std::uint32_t>(graph.MaxDegree(), 1);
}

}  // namespace

ExecutionEngine DefaultExecutionEngine() noexcept {
  static const ExecutionEngine engine = [] {
    // Read once under the static's init guard; the process never setenv()s,
    // so the getenv cannot race a writer.
    const char* env = std::getenv("EMIS_ENGINE");  // NOLINT(concurrency-mt-unsafe)
    if (env != nullptr) {
      const ExecutionEngine parsed = ExecutionEngineFromString(env);
      if (parsed != kInvalidExecutionEngine) return parsed;
    }
    return ExecutionEngine::kCoroutine;
  }();
  return engine;
}

ChannelModel ModelFor(MisAlgorithm algorithm) noexcept {
  switch (algorithm) {
    case MisAlgorithm::kCd:
    case MisAlgorithm::kCdNaive:
      return ChannelModel::kCd;
    case MisAlgorithm::kCdBeeping:
      return ChannelModel::kBeeping;
    case MisAlgorithm::kNoCd:
    case MisAlgorithm::kNoCdDaviesProfile:
    case MisAlgorithm::kNoCdNaive:
    case MisAlgorithm::kNoCdUnknownDelta:
    case MisAlgorithm::kNoCdRoundEfficient:
      return ChannelModel::kNoCd;
  }
  return ChannelModel::kCd;
}

CdParams DeriveCdParams(const Graph& graph, const MisRunConfig& config) {
  if (config.cd_params) return *config.cd_params;
  const std::uint64_t n = EffectiveN(graph, config);
  CdParams p = config.preset == ParamPreset::kTheory ? CdParams::Theory(n)
                                                     : CdParams::Practical(n);
  p.losers_keep_listening = config.algorithm == MisAlgorithm::kCdNaive;
  return p;
}

NoCdParams DeriveNoCdParams(const Graph& graph, const MisRunConfig& config) {
  if (config.nocd_params) return *config.nocd_params;
  const std::uint64_t n = EffectiveN(graph, config);
  const std::uint32_t delta = EffectiveDelta(graph, config);
  return config.preset == ParamPreset::kTheory ? NoCdParams::Theory(n, delta)
                                               : NoCdParams::Practical(n, delta);
}

SimCdParams DeriveSimParams(const Graph& graph, const MisRunConfig& config) {
  if (config.sim_params) return *config.sim_params;
  const std::uint64_t n = EffectiveN(graph, config);
  const std::uint32_t delta = EffectiveDelta(graph, config);
  const std::uint32_t log_n = CdParams::LogN(n);
  SimCdParams p;
  if (config.preset == ParamPreset::kTheory) {
    p.luby_phases = 4 * log_n;
    p.rank_bits = 4 * log_n;
    p.reps = 26 * log_n;  // (7/8)^k <= n^-5
  } else {
    p.luby_phases = 2 * log_n + 10;
    p.rank_bits = 2 * log_n + 4;
    p.reps = 2 * log_n + 12;
  }
  p.delta = delta;
  p.delta_est = delta;
  p.style = config.algorithm == MisAlgorithm::kNoCdNaive
                ? BackoffStyle::kTraditional
                : BackoffStyle::kEnergyEfficient;
  return p;
}

MisRunResult RunMis(const Graph& graph, const MisRunConfig& config) {
  MisRunResult result;
  result.status.assign(graph.NumNodes(), MisStatus::kUndecided);

  Scheduler scheduler(
      graph,
      {.model = ModelFor(config.algorithm), .max_rounds = config.max_rounds,
       .trace = config.trace, .link_loss = config.link_loss,
       .resolution = config.resolution, .compaction = config.compaction,
       .metrics = config.metrics, .timeline = config.timeline,
       .ledger = config.ledger, .engine = config.engine,
       .telemetry = config.telemetry, .shards = config.shards},
      config.seed);

  if (config.timeline != nullptr) {
    // Residual graph at each phase boundary: edges whose endpoints are both
    // still undecided — the quantity Lemma 5 / Lemma 20 argue halves/decays
    // per Luby phase. O(m) per probe, and probes happen once per phase.
    config.timeline->SetResidualProbe([&graph, &status = result.status] {
      std::uint64_t residual = 0;
      for (NodeId u = 0; u < graph.NumNodes(); ++u) {
        if (status[u] != MisStatus::kUndecided) continue;
        for (const NodeId v : graph.Neighbors(u)) {
          residual += u < v && status[v] == MisStatus::kUndecided;
        }
      }
      return residual;
    });
  }

  const bool flat = config.engine == ExecutionEngine::kFlat;
  const NodeId n = graph.NumNodes();
  switch (config.algorithm) {
    case MisAlgorithm::kCd:
    case MisAlgorithm::kCdBeeping:
    case MisAlgorithm::kCdNaive: {
      const CdParams p = DeriveCdParams(graph, config);
      if (flat) {
        scheduler.SpawnFlat(FlatMisCdProtocol(p, &result.status, n));
      } else {
        scheduler.Spawn(MisCdProtocol(p, &result.status));
      }
      break;
    }
    case MisAlgorithm::kNoCd: {
      const NoCdParams p = DeriveNoCdParams(graph, config);
      if (flat) {
        scheduler.SpawnFlat(FlatMisNoCdProtocol(p, &result.status, n));
      } else {
        scheduler.Spawn(MisNoCdProtocol(p, &result.status));
      }
      break;
    }
    case MisAlgorithm::kNoCdDaviesProfile:
    case MisAlgorithm::kNoCdNaive: {
      const SimCdParams p = DeriveSimParams(graph, config);
      if (flat) {
        scheduler.SpawnFlat(FlatSimulatedCdMisProtocol(p, &result.status, n));
      } else {
        scheduler.Spawn(SimulatedCdMisProtocol(p, &result.status));
      }
      break;
    }
    case MisAlgorithm::kNoCdUnknownDelta: {
      DeltaDoublingParams p = DeltaDoublingParams::Practical(EffectiveN(graph, config));
      p.theory_constants = config.preset == ParamPreset::kTheory;
      if (flat) {
        scheduler.SpawnFlat(FlatDeltaDoublingMisProtocol(p, &result.status, n));
      } else {
        scheduler.Spawn(DeltaDoublingMisProtocol(p, &result.status));
      }
      break;
    }
    case MisAlgorithm::kNoCdRoundEfficient: {
      const GhaffariParams p = GhaffariParams::Practical(
          EffectiveN(graph, config), EffectiveDelta(graph, config));
      if (flat) {
        scheduler.SpawnFlat(FlatGhaffariMisProtocol(p, &result.status, n));
      } else {
        scheduler.Spawn(GhaffariMisProtocol(p, &result.status));
      }
      break;
    }
  }

  result.stats = scheduler.Run();
  if (config.timeline != nullptr) {
    // Close any span left open by a protocol that went quiet without
    // finishing (the scheduler closes only on completion / round limit), and
    // drop the run-scoped bindings: the probe references result.status
    // (owned by this frame), and the ledger/telemetry hooks reference
    // caller-owned collectors that may die before the timeline does.
    config.timeline->Close(result.stats.rounds_used);
    config.timeline->SetResidualProbe(nullptr);
    config.timeline->BindLedger(nullptr);
    config.timeline->SetSpanHook(nullptr);
  }
  result.energy = scheduler.Energy();
  result.arena = scheduler.ArenaStats();
  result.report = CheckMis(graph, result.status);
  return result;
}

std::uint64_t MisRunResult::MisSize() const noexcept {
  return static_cast<std::uint64_t>(
      std::count(status.begin(), status.end(), MisStatus::kInMis));
}

}  // namespace emis
