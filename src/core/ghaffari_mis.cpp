#include "core/ghaffari_mis.hpp"

#include <algorithm>
#include <cmath>

#include "core/backoff.hpp"
#include "core/contracts.hpp"

namespace emis {
namespace {

/// Mark-exchange sub-protocol for a marked node: k iterations, each one
/// backoff window wide; per iteration the node is a sender (one geometric
/// slot, asleep otherwise) or a listener (awake until it hears, then asleep)
/// with probability 1/2 each — the radio workaround for the absence of
/// sender-side collision detection. Returns whether a marked neighbor was
/// heard. Takes exactly k * window rounds.
proc::Task<bool> MarkExchange(NodeApi api, std::uint32_t k, std::uint32_t delta) {
  const std::uint32_t window = BackoffWindow(delta);
  const Round end_round = api.Now() + BackoffRounds(k, delta);
  bool heard = false;
  for (std::uint32_t i = 0; i < k && !heard; ++i) {
    const Round iter_end = end_round - static_cast<Round>(k - 1 - i) * window;
    if (api.Rand().Bit()) {
      const std::uint32_t x = std::min(api.Rand().GeometricHalf(), window);
      co_await api.SleepFor(x - 1);
      co_await api.Transmit(1);
    } else {
      for (std::uint32_t j = 0; j < window; ++j) {
        const Reception r = co_await api.Listen();
        if (r.Busy()) {
          heard = true;
          break;
        }
      }
    }
    co_await api.SleepUntil(iter_end);
  }
  co_await api.SleepUntil(end_round);
  co_return heard;
}

}  // namespace

proc::Task<MisStatus> GhaffariMisRun(NodeApi api, GhaffariParams params) {
  const Round start = api.Now();
  const Round iter_rounds = params.IterationRounds();
  const std::uint32_t levels = params.Levels();
  // p_v = 2^-exponent; Ghaffari starts at p = 1/2 and keeps p >= 2^-(levels).
  std::uint32_t exponent = 1;

  for (std::uint32_t t = 0; t < params.iterations; ++t) {
    const Round iter_start = start + static_cast<Round>(t) * iter_rounds;
    if (params.annotate_phases) api.Phase("ghaffari-iter", t);
    const Round announce_start = iter_start + params.MarkExchangeRounds();
    const Round estimate_start = announce_start + params.AnnounceRounds();
    const Round iter_end = iter_start + iter_rounds;

    // --- 1. Mark + exchange ------------------------------------------------
    const bool marked = api.Rand().Bernoulli(std::ldexp(1.0, -static_cast<int>(exponent)));
    bool heard_mark = false;
    if (marked) {
      heard_mark = co_await MarkExchange(api, params.mark_reps, params.delta);
    } else {
      co_await api.SleepUntil(announce_start);
    }

    // --- 2. Join + announce --------------------------------------------------
    if (marked && !heard_mark) {
      co_await SndEBackoff(api, params.announce_reps, params.delta);
      co_return MisStatus::kInMis;
    }
    const bool mis_neighbor =
        co_await RecEBackoff(api, params.announce_reps, params.delta, params.delta);
    if (mis_neighbor) co_return MisStatus::kOutMis;

    // --- 3. Effective-degree probe -------------------------------------------
    // Level j: transmit w.p. p_v 2^-j, listen otherwise; a level whose clean-
    // reception count reaches θ·m indicates Σp ≈ 2^j among the neighbors.
    (void)estimate_start;
    bool crowded = false;
    for (std::uint32_t j = 0; j < levels; ++j) {
      const double q = std::ldexp(1.0, -static_cast<int>(exponent + j));
      std::uint32_t heard_slots = 0;
      for (std::uint32_t s = 0; s < params.est_slots; ++s) {
        if (api.Rand().Bernoulli(q)) {
          co_await api.Transmit(1);
        } else {
          const Reception r = co_await api.Listen();
          heard_slots += r.Busy() ? 1 : 0;
        }
      }
      if (j >= 1 && static_cast<double>(heard_slots) >=
                        params.crowded_threshold * params.est_slots) {
        crowded = true;
      }
    }
    if (crowded) {
      exponent = std::min(exponent + 1, levels);
    } else if (exponent > 1) {
      --exponent;
    }
    co_await api.SleepUntil(iter_end);
  }
  co_return MisStatus::kUndecided;
}

namespace {

proc::Task<void> Standalone(NodeApi api, GhaffariParams params,
                            std::vector<MisStatus>* out) {
  params.annotate_phases = true;
  (*out)[api.Id()] = MisStatus::kUndecided;
  (*out)[api.Id()] = co_await GhaffariMisRun(api, params);
  // Standalone terminal decision; the composable run above is also used as
  // the LowDegreeMIS subroutine, where the caller keeps acting afterwards.
  api.Retire();
}

}  // namespace

ProtocolFactory GhaffariMisProtocol(GhaffariParams params, std::vector<MisStatus>* out) {
  EMIS_EXPECTS(out != nullptr, "output vector required");
  return [params, out](NodeApi api) { return Standalone(api, params, out); };
}

}  // namespace emis
