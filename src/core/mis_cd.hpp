// Algorithm 1 — energy-optimal MIS in the CD model (paper §3).
//
// C log n Luby phases, each β log n + 1 rounds. The competition compares
// fresh random β log n-bit ranks bit by bit: a node transmits on its 1-bits
// and listens on its 0-bits; hearing anything (a message or a collision —
// or a beep, which is why the same code runs unmodified in the beeping
// model, §3.1) means a neighbor has a larger rank, so the node loses and
// sleeps out the phase. Survivors transmit once more in the checking round
// and terminate in the MIS; losers listen in that round and terminate out of
// the MIS iff they heard a winner.
//
// Energy: winners pay O(log n) in their final phase; losers pay O(1)
// expected per phase (each 0-bit with an active neighbor knocks them out
// with probability ≥ 1/4) — Theorem 2's O(log n) total.
#pragma once

#include <vector>

#include "core/params.hpp"
#include "core/status.hpp"
#include "radio/process.hpp"

namespace emis {

/// One node's run of Algorithm 1. Writes its decision to (*out)[api.Id()];
/// `out` must outlive the scheduler run and have one slot per node.
proc::Task<void> MisCdNode(NodeApi api, CdParams params, std::vector<MisStatus>* out);

/// Composable form: runs Algorithm 1 from the caller's current round and
/// writes the decision to *status. May return before params.TotalRounds()
/// elapse (decided nodes have nothing left to do); callers that continue —
/// e.g. the application layer in apps/ — must SleepUntil their own sync
/// point. All participants must enter in the same round.
proc::Task<void> MisCdEpoch(NodeApi api, CdParams params, MisStatus* status);

/// Factory binding for Scheduler::Spawn.
ProtocolFactory MisCdProtocol(CdParams params, std::vector<MisStatus>* out);

}  // namespace emis
