// Flat state-machine backends for the MIS cores (radio/flat_engine.hpp).
//
// Each factory mirrors one coroutine protocol — same params struct, same
// output contract — but packs every node's suspended state into a small
// contiguous lane instead of a coroutine frame. The machines are exact
// transcriptions: identical RNG draw order, identical actions per round,
// identical Phase/SubPhase annotations and status-vector writes, so runs
// are golden-trace-hash- and report-identical to the coroutine engine
// (pinned by tests/test_flat_engine.cpp).
#pragma once

#include <memory>
#include <vector>

#include "core/delta_doubling.hpp"
#include "core/params.hpp"
#include "core/status.hpp"
#include "radio/flat_engine.hpp"
#include "radio/types.hpp"

namespace emis {

/// Flat mirror of MisCdProtocol (core/mis_cd.cpp): Algorithm 1 on CD or
/// beeping channels, including the naive-Luby (losers_keep_listening),
/// energy-cap, and repetition-coding variants.
std::unique_ptr<FlatProtocol> FlatMisCdProtocol(CdParams params,
                                                std::vector<MisStatus>* out,
                                                NodeId num_nodes);

/// Flat mirror of MisNoCdProtocol (core/mis_nocd.cpp): Algorithm 2 with
/// either LowDegreeMIS kind.
std::unique_ptr<FlatProtocol> FlatMisNoCdProtocol(NoCdParams params,
                                                  std::vector<MisStatus>* out,
                                                  NodeId num_nodes);

/// Flat mirror of SimulatedCdMisProtocol (core/simulated_cd_mis.cpp):
/// backoff-simulated Algorithm 1, both backoff styles.
std::unique_ptr<FlatProtocol> FlatSimulatedCdMisProtocol(
    SimCdParams params, std::vector<MisStatus>* out, NodeId num_nodes);

/// Flat mirror of GhaffariMisProtocol (core/ghaffari_mis.cpp).
std::unique_ptr<FlatProtocol> FlatGhaffariMisProtocol(
    GhaffariParams params, std::vector<MisStatus>* out, NodeId num_nodes);

/// Flat mirror of DeltaDoublingMisProtocol (core/delta_doubling.cpp).
std::unique_ptr<FlatProtocol> FlatDeltaDoublingMisProtocol(
    DeltaDoublingParams params, std::vector<MisStatus>* out, NodeId num_nodes);

}  // namespace emis
