// Algorithm constants and the no-CD phase schedule.
//
// The paper states its algorithms with constants chosen for clean 1 - 1/n
// failure bounds (β ≥ 4, κ ≥ 5, C ≥ 4/log(64/63) ≈ 176, C′ with n^-5 backoff
// failure). Those make even n = 2^10 runs enormous, so every parameter struct
// offers two presets:
//
//   * Theory(n):    the paper's constants — what the proofs assume.
//   * Practical(n): small constants that already succeed with overwhelming
//                   probability at laptop scales. All benches state which
//                   preset they use; EXPERIMENTS.md discusses the deviation.
//
// Throughout, "log" is log2 and log n means ceil(log2 n) with n the known
// upper bound on the network size (paper §1.1: an estimate within a
// polynomial factor suffices; only constants change).
#pragma once

#include <algorithm>
#include <cstdint>

#include "radio/types.hpp"

namespace emis {

/// Rounds of one k-repeated backoff iteration window: ⌈log Δ⌉ + 1.
///
/// The +1 slot matters: the paper caps the geometric slot at ⌈log Δ⌉, and its
/// Lemma 9 computation needs a slot whose transmit probability is ≈ 1/d for
/// every sender count d ≤ Δ. With exactly ⌈log Δ⌉ slots the cap folds all
/// tail mass onto the last slot, and for Δ = 2 that means *every* sender
/// transmits in the single slot with probability 1 — two senders collide in
/// every iteration and are never detected (on a path, whole chains would
/// join the MIS). ⌈log Δ⌉ + 1 slots restore slot probabilities
/// 1/2, 1/4, ..., 1/2^⌈log Δ⌉ ≤ 1/Δ, which is the classic Decay window.
constexpr std::uint32_t BackoffWindow(std::uint32_t delta) noexcept {
  return CeilLog2(delta) + 1;
}

/// Rounds of Snd-/Rec-EBackoff(k, Δ): T_B(k) = k * ⌈log Δ⌉ (paper §5.2).
constexpr Round BackoffRounds(std::uint32_t k, std::uint32_t delta) noexcept {
  return static_cast<Round>(k) * BackoffWindow(delta);
}

// ---------------------------------------------------------------------------
// Algorithm 1 (CD model)
// ---------------------------------------------------------------------------

struct CdParams {
  /// Number of Luby phases (paper: C log n).
  std::uint32_t luby_phases = 0;
  /// Rank length in bits (paper: β log n). Bits are drawn lazily, one per
  /// Bitty phase — distributionally identical to drawing the string upfront.
  std::uint32_t rank_bits = 0;
  /// If nonzero, a node that has spent this many awake rounds gives up,
  /// decides (joins iff it never heard anything — the decision rule the
  /// Theorem 1 lower-bound argument forces) and sleeps forever. Used by the
  /// lower-bound experiment E5; 0 disables.
  std::uint64_t energy_cap = 0;
  /// Baseline switch (naive Luby-in-radio, §1.3): losers keep listening to
  /// the end of the competition instead of sleeping, costing Θ(log n) energy
  /// per phase and Θ(log² n) total.
  bool losers_keep_listening = false;
  /// Repetition coding for lossy channels (library extension, not in the
  /// paper): every logical round is repeated this many times — transmitters
  /// transmit in all copies, listeners OR their receptions — so a per-link
  /// loss probability p degrades to p^repetitions. 1 = the paper's protocol.
  std::uint32_t repetitions = 1;

  /// Rounds of one Luby phase: (β log n competition + 1 checking round)
  /// times the repetition factor.
  Round PhaseRounds() const noexcept {
    return static_cast<Round>(rank_bits + 1) * std::max(1u, repetitions);
  }
  Round TotalRounds() const noexcept {
    return static_cast<Round>(luby_phases) * PhaseRounds();
  }

  /// Paper constants: β = 4 makes rank ties n^-4-rare; C = 4 makes the
  /// residual graph (halving per phase, Lemma 5) empty w.p. 1 - n^-2.
  static CdParams Theory(std::uint64_t n) {
    const std::uint32_t log_n = LogN(n);
    return {.luby_phases = 4 * log_n, .rank_bits = 4 * log_n};
  }

  /// Small constants: residual halving needs ~log2(m) phases; a few extra
  /// phases push the failure probability far below 1% at n <= 2^16.
  static CdParams Practical(std::uint64_t n) {
    const std::uint32_t log_n = LogN(n);
    return {.luby_phases = 2 * log_n + 10, .rank_bits = 2 * log_n + 6};
  }

  static std::uint32_t LogN(std::uint64_t n) noexcept {
    const std::uint32_t l = CeilLog2(n);
    return l == 0 ? 1 : l;
  }
};

// ---------------------------------------------------------------------------
// Simulated CD-MIS over backoffs (LowDegreeMIS of §4.2 / §5.1.1, and the
// naive & Davies-profile no-CD baselines of §1.3/§1.4)
// ---------------------------------------------------------------------------

enum class BackoffStyle : std::uint8_t {
  /// Algorithm 4: sender awake 1 round/iteration, receiver sleeps after
  /// hearing and listens only ⌈log Δ_est⌉ rounds/iteration.
  kEnergyEfficient,
  /// Traditional Decay: everyone awake for the whole backoff; senders
  /// transmit a geometric prefix of each iteration. The energy-naive
  /// baseline behaviour.
  kTraditional,
};

struct SimCdParams {
  std::uint32_t luby_phases = 0;  ///< outer Luby phases
  std::uint32_t rank_bits = 0;    ///< bits per competition
  std::uint32_t reps = 0;         ///< backoff iterations k of the check backoffs
  /// Backoff iterations of the *Bitty* (rank-bit) backoffs. 0 = same as
  /// `reps` (the faithful whp-reliable protocol). Setting it lower probes
  /// the paper's §6 open question — can rounds shrink without losing
  /// energy/correctness? — since a both-win failure needs *every* differing
  /// rank bit to go undetected, i.e. ~(miss)^Θ(log n) even at small k.
  std::uint32_t bitty_reps = 0;
  std::uint32_t delta = 0;        ///< degree bound Δ defining the window
  std::uint32_t delta_est = 0;    ///< receiver listen bound Δ_est (≤ Δ)
  BackoffStyle style = BackoffStyle::kEnergyEfficient;
  /// Emit NodeApi::Phase("luby-phase", k) annotations. On by default only in
  /// the standalone protocol: when embedded as Algorithm 2's LowDegreeMIS the
  /// enclosing phase structure belongs to the caller, which marks the window
  /// with a single "low-degree-mis" sub-phase instead.
  bool annotate_phases = false;

  std::uint32_t BittyReps() const noexcept { return bitty_reps == 0 ? reps : bitty_reps; }
  /// Rounds of one Bitty phase (= one BittyReps()-repeated backoff).
  Round BittyRounds() const noexcept { return BackoffRounds(BittyReps(), delta); }
  /// Rounds of the per-phase check backoff (always `reps`-repeated).
  Round CheckRounds() const noexcept { return BackoffRounds(reps, delta); }
  /// Rounds of one Luby phase: rank_bits Bitty phases + 1 check backoff.
  Round PhaseRounds() const noexcept {
    return static_cast<Round>(rank_bits) * BittyRounds() + CheckRounds();
  }
  Round TotalRounds() const noexcept {
    return static_cast<Round>(luby_phases) * PhaseRounds();
  }

  /// LowDegreeMIS configuration for the committed subgraph of Algorithm 2:
  /// degree bound κ log n, whp-reliable Bitty phases (k = c′ log n).
  static SimCdParams LowDegree(std::uint64_t n, std::uint32_t kappa_log_n,
                               std::uint32_t luby_phases, std::uint32_t rank_bits,
                               std::uint32_t reps) {
    (void)n;
    return {.luby_phases = luby_phases,
            .rank_bits = rank_bits,
            .reps = reps,
            .delta = kappa_log_n,
            .delta_est = kappa_log_n,
            .style = BackoffStyle::kEnergyEfficient};
  }
};

// ---------------------------------------------------------------------------
// Ghaffari-style round-efficient MIS (§4.2 reconstruction, ghaffari_mis.hpp)
// ---------------------------------------------------------------------------

struct GhaffariParams {
  std::uint32_t iterations = 0;     ///< Ghaffari rounds G = Θ(log n)
  std::uint32_t mark_reps = 0;      ///< k₁ of the mark-exchange backoffs
  std::uint32_t announce_reps = 0;  ///< k₂ of the join announcements
  std::uint32_t est_slots = 0;      ///< m slots per subsampling level
  std::uint32_t delta = 0;          ///< degree bound (windows + level count)
  /// Crowdedness threshold θ: a subsampling level hearing ≥ θ·m clean slots
  /// marks the neighborhood as crowded (effective degree ≥ ~2).
  double crowded_threshold = 0.33;
  /// Emit NodeApi::Phase("ghaffari-iter", t) annotations; same contract as
  /// SimCdParams::annotate_phases (standalone only).
  bool annotate_phases = false;

  std::uint32_t Levels() const noexcept { return CeilLog2(delta) + 2; }
  Round MarkExchangeRounds() const noexcept {
    return BackoffRounds(mark_reps, delta);
  }
  Round AnnounceRounds() const noexcept {
    return BackoffRounds(announce_reps, delta);
  }
  Round EstimateRounds() const noexcept {
    return static_cast<Round>(Levels()) * est_slots;
  }
  Round IterationRounds() const noexcept {
    return MarkExchangeRounds() + AnnounceRounds() + EstimateRounds();
  }
  Round TotalRounds() const noexcept {
    return static_cast<Round>(iterations) * IterationRounds();
  }

  static GhaffariParams Practical(std::uint64_t n, std::uint32_t delta) {
    const std::uint32_t log_n = CdParams::LogN(n);
    return {.iterations = 4 * log_n + 12,
            .mark_reps = 2 * log_n + 8,
            .announce_reps = 2 * log_n + 8,
            .est_slots = 4 * log_n + 8,
            .delta = delta == 0 ? 1 : delta};
  }

  /// Leaner constants for the embedded LowDegreeMIS role: leftovers are
  /// absorbed by Algorithm 2's outer Luby phases, so the iteration budget
  /// can sit at the empirical convergence point instead of the standalone
  /// whp margin.
  static GhaffariParams LowDegree(std::uint64_t n, std::uint32_t delta) {
    GhaffariParams p = Practical(n, delta);
    const std::uint32_t log_n = CdParams::LogN(n);
    p.iterations = 2 * log_n + 8;
    p.est_slots = 2 * log_n + 8;
    return p;
  }
};

// ---------------------------------------------------------------------------
// Algorithm 2 (no-CD model)
// ---------------------------------------------------------------------------

/// Which algorithm resolves the committed subgraph inside Algorithm 2.
enum class LowDegreeKind : std::uint8_t {
  /// The paper's simple option (§5.1.1): backoff-simulated Algorithm 1.
  /// Energy-exact, rounds inflated by ~log n / log log n.
  kSimulatedAlg1,
  /// The §4.2 route: Ghaffari-style round-efficient MIS (ghaffari_mis.hpp),
  /// restoring the O(log² n log Δ_sub) T_G round shape.
  kGhaffari,
};

struct NoCdParams {
  std::uint32_t luby_phases = 0;      ///< C log n outer phases
  std::uint32_t rank_bits = 0;        ///< β log n bits per competition
  std::uint32_t deep_reps = 0;        ///< C′ log n: k of deep backoffs
  /// k of the end-of-phase shallow check. The paper uses 1 (constant-
  /// probability notification, §5.1.2); the ablation bench raises it to show
  /// why reliable notification is too expensive.
  std::uint32_t shallow_reps = 1;
  std::uint32_t commit_degree = 0;    ///< κ log n: degree estimate after commit
  std::uint32_t delta = 0;            ///< Δ, upper bound on max degree
  /// Which LowDegreeMIS resolves the committed subgraph.
  LowDegreeKind low_degree_kind = LowDegreeKind::kSimulatedAlg1;
  SimCdParams low_degree;             ///< used when kind == kSimulatedAlg1
  GhaffariParams low_degree_ghaffari; ///< used when kind == kGhaffari
  /// Optional deterministic energy threshold (paper Thm 10's final step): a
  /// node exceeding it decides arbitrarily (out-MIS) and sleeps forever.
  /// 0 disables.
  std::uint64_t energy_cap = 0;

  static NoCdParams Theory(std::uint64_t n, std::uint32_t delta);
  static NoCdParams Practical(std::uint64_t n, std::uint32_t delta);
};

/// Absolute-round schedule of one Algorithm 2 Luby phase (paper §5.2). All
/// nodes compute the same schedule, which is what keeps them synchronized
/// while sleeping through stages they do not participate in.
struct NoCdSchedule {
  Round competition = 0;   ///< T_C = rank_bits * T_B(deep_reps)
  Round deep_check = 0;    ///< T_B(C′ log n)
  Round low_degree = 0;    ///< T_G
  Round shallow_check = 0; ///< T_B(1)
  Round phase = 0;         ///< T_L = T_C + 2 T_B + T_G + T_B(1)

  static NoCdSchedule Of(const NoCdParams& p) {
    NoCdSchedule s;
    const Round tb_deep = BackoffRounds(p.deep_reps, p.delta);
    s.competition = static_cast<Round>(p.rank_bits) * tb_deep;
    s.deep_check = tb_deep;
    s.low_degree = p.low_degree_kind == LowDegreeKind::kGhaffari
                       ? p.low_degree_ghaffari.TotalRounds()
                       : p.low_degree.TotalRounds();
    s.shallow_check = BackoffRounds(p.shallow_reps, p.delta);
    s.phase = s.competition + 2 * s.deep_check + s.low_degree + s.shallow_check;
    return s;
  }

  // Offsets within a phase (phase start + offset = absolute round).
  Round CompetitionEnd() const noexcept { return competition; }
  Round FirstDeepEnd() const noexcept { return competition + deep_check; }
  Round SecondDeepEnd() const noexcept { return competition + 2 * deep_check; }
  Round LowDegreeEnd() const noexcept {
    return competition + 2 * deep_check + low_degree;
  }
  Round PhaseEnd() const noexcept { return phase; }
};

inline NoCdParams NoCdParams::Theory(std::uint64_t n, std::uint32_t delta) {
  const std::uint32_t log_n = CdParams::LogN(n);
  NoCdParams p;
  p.luby_phases = 176 * log_n;  // C = 4/log2(64/63) ≈ 175.9 (Lemma 20)
  p.rank_bits = 4 * log_n;      // β = 4
  p.deep_reps = 26 * log_n;     // (7/8)^k ≤ n^-5 needs k ≈ 25.97 log n
  p.commit_degree = 5 * log_n;  // κ = 5
  p.delta = delta;
  p.low_degree = SimCdParams::LowDegree(n, p.commit_degree, 4 * log_n,
                                        4 * log_n, 26 * log_n);
  p.low_degree_ghaffari = GhaffariParams::LowDegree(n, p.commit_degree);
  return p;
}

inline NoCdParams NoCdParams::Practical(std::uint64_t n, std::uint32_t delta) {
  const std::uint32_t log_n = CdParams::LogN(n);
  NoCdParams p;
  p.luby_phases = 2 * log_n + 10;
  p.rank_bits = 2 * log_n + 4;
  // (7/8)^k per missed backoff; k = 2 log n + 12 keeps per-bit failures
  // below ~2^-(0.38k), rare enough across all (node, phase, bit) triples at
  // laptop scales.
  p.deep_reps = 2 * log_n + 12;
  p.commit_degree = 3 * log_n + 4;
  p.delta = delta;
  p.low_degree = SimCdParams::LowDegree(n, p.commit_degree, log_n + 6,
                                        log_n + 4, log_n + 8);
  p.low_degree_ghaffari = GhaffariParams::LowDegree(n, p.commit_degree);
  return p;
}

}  // namespace emis
