// Leveled contracts: the repo's internal pre/post/invariant checks.
//
// The determinism guarantee (bit-identical trials at any --jobs count,
// golden-pinned LinkErased streams) and the protocol invariants (MIS
// independence/maximality, energy-budget accounting, channel epoch
// consistency) are enforced at runtime through these macros instead of raw
// assert():
//
//   EMIS_EXPECTS(cond, msg)    — precondition at a function entry
//   EMIS_ENSURES(cond, msg)    — postcondition before a function returns
//   EMIS_INVARIANT(cond, msg)  — internal consistency mid-computation
//   EMIS_UNREACHABLE(msg)      — control flow that must never be reached
//
// The enforcement level is picked at process start from the EMIS_CONTRACTS
// environment variable (and can be overridden programmatically):
//
//   EMIS_CONTRACTS=off    checks are skipped (conditions are not evaluated);
//                         violations become undefined behaviour, like NDEBUG.
//   EMIS_CONTRACTS=audit  a failed check logs one line to stderr and bumps
//                         the audit-firing counter, then execution continues.
//                         CI runs the sanitizer matrix in this mode so a
//                         violated contract surfaces every downstream effect
//                         instead of stopping at the first throw.
//   EMIS_CONTRACTS=abort  (default) a failed EMIS_EXPECTS throws
//                         PreconditionError; the other three throw
//                         InvariantError — fail-fast, and what the unit
//                         tests pin with EXPECT_THROW.
//
// EMIS_UNREACHABLE is the exception to the leveling: there is no valid
// continuation after reaching it, so it throws in audit mode too (after
// logging and counting) and stays a hard stop even when checks are off.
//
// Scope note: EMIS_REQUIRE (radio/types.hpp) remains the *always-on* guard
// for user input on public entry points (JSON parsing, graph construction,
// CLI surfaces) — malformed input must fail loudly at every level. The
// contracts here cover conditions that are supposed to be unviolable given
// correct library code, which is why they may be compiled down or audited.
#pragma once

#include <atomic>
#include <cstdint>

#include "radio/types.hpp"

namespace emis {

enum class ContractMode : std::uint8_t { kOff, kAudit, kAbort };

namespace contracts {

/// Parses an EMIS_CONTRACTS value: "off" | "audit" | "abort". Anything else
/// (including empty) maps to kAbort — the fail-safe default.
ContractMode ParseMode(const char* text) noexcept;

namespace detail {
inline constexpr std::uint8_t kModeUninitialized = 0xff;
/// Process-wide enforcement level; 0xff until the first CurrentMode() call
/// resolves EMIS_CONTRACTS. Lives in the header so the fast path below
/// inlines into every check site — contracts sit on per-resume scheduler
/// paths, where an out-of-line call per check is measurable.
inline std::atomic<std::uint8_t> g_mode{kModeUninitialized};
/// Slow path: reads EMIS_CONTRACTS, caches and returns the result.
ContractMode InitMode() noexcept;
}  // namespace detail

/// The process-wide enforcement level. First use reads EMIS_CONTRACTS from
/// the environment; SetMode overrides it afterwards (used by tests and by
/// embedders that configure levels programmatically). Hot-path friendly:
/// one relaxed byte load once initialised.
inline ContractMode CurrentMode() noexcept {
  const std::uint8_t mode = detail::g_mode.load(std::memory_order_relaxed);
  if (mode != detail::kModeUninitialized) [[likely]] {
    return static_cast<ContractMode>(mode);
  }
  return detail::InitMode();
}
void SetMode(ContractMode mode) noexcept;

/// Number of contract checks that fired in audit mode since process start or
/// the last reset. Atomic — parallel sweep workers may fire concurrently.
std::uint64_t AuditFiringCount() noexcept;
void ResetAuditFiringCount() noexcept;

enum class Kind : std::uint8_t { kExpects, kEnsures, kInvariant };

/// Reacts to a failed check according to CurrentMode(): audit logs and
/// counts; abort throws PreconditionError (kExpects) or InvariantError.
void Fail(Kind kind, const char* expr, const char* file, int line,
          const char* msg);

/// EMIS_UNREACHABLE's handler: logs/counts in audit mode, then always throws
/// InvariantError — reached code that must not execute has no continuation.
[[noreturn]] void Unreachable(const char* file, int line, const char* msg);

}  // namespace contracts

#define EMIS_CONTRACTS_CHECK_(kind, expr, msg)                               \
  do {                                                                       \
    if (::emis::contracts::CurrentMode() != ::emis::ContractMode::kOff &&    \
        !(expr)) {                                                           \
      ::emis::contracts::Fail(kind, #expr, __FILE__, __LINE__, msg);         \
    }                                                                        \
  } while (false)

/// Precondition: what the caller owes this function.
#define EMIS_EXPECTS(expr, msg) \
  EMIS_CONTRACTS_CHECK_(::emis::contracts::Kind::kExpects, expr, msg)

/// Postcondition: what this function owes its caller.
#define EMIS_ENSURES(expr, msg) \
  EMIS_CONTRACTS_CHECK_(::emis::contracts::Kind::kEnsures, expr, msg)

/// Internal consistency that must hold mid-computation.
#define EMIS_INVARIANT(expr, msg) \
  EMIS_CONTRACTS_CHECK_(::emis::contracts::Kind::kInvariant, expr, msg)

/// Marks control flow that must never execute (e.g. after a covered switch).
#define EMIS_UNREACHABLE(msg) \
  ::emis::contracts::Unreachable(__FILE__, __LINE__, msg)

}  // namespace emis
