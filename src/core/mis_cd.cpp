#include "core/mis_cd.hpp"

#include "core/contracts.hpp"

namespace emis {
namespace {

/// Tracks the energy cap of the lower-bound experiments (CdParams::energy_cap).
/// When capped, the node decides with the rule the Theorem 1 argument forces
/// on any low-energy algorithm: join iff it never heard anything.
struct Budget {
  std::uint64_t cap;       // 0 = unlimited
  std::uint64_t spent = 0;
  bool Exhausted() const noexcept { return cap != 0 && spent >= cap; }
  void Charge() noexcept { ++spent; }
};

/// Transmits one logical round (= `reps` physical rounds). Returns false if
/// the budget ran out before completing.
proc::Task<bool> TransmitLogical(NodeApi api, std::uint32_t reps, Budget* budget) {
  for (std::uint32_t r = 0; r < reps; ++r) {
    if (budget->Exhausted()) co_return false;
    budget->Charge();
    co_await api.Transmit(1);
  }
  co_return true;
}

/// Listens through one logical round, ORing receptions into *busy. Returns
/// false if the budget ran out before completing.
proc::Task<bool> ListenLogical(NodeApi api, std::uint32_t reps, Budget* budget,
                               bool* busy) {
  *busy = false;
  for (std::uint32_t r = 0; r < reps; ++r) {
    if (budget->Exhausted()) co_return false;
    budget->Charge();
    const Reception rec = co_await api.Listen();
    *busy = *busy || rec.Busy();
  }
  co_return true;
}

}  // namespace

proc::Task<void> MisCdNode(NodeApi api, CdParams params, std::vector<MisStatus>* out) {
  (*out)[api.Id()] = MisStatus::kUndecided;
  co_await MisCdEpoch(api, params, &(*out)[api.Id()]);
  // Terminal decision (or phases exhausted): report it so the scheduler
  // drops this node from the residual graph. The composable epoch above must
  // NOT retire — callers like the coloring/backbone apps keep acting after.
  api.Retire();
}

proc::Task<void> MisCdEpoch(NodeApi api, CdParams params, MisStatus* out_status) {
  MisStatus& status = *out_status;
  status = MisStatus::kUndecided;
  Budget budget{params.energy_cap};
  bool heard_anything = false;

  auto capped_decision = [&] {
    status = heard_anything ? MisStatus::kOutMis : MisStatus::kInMis;
  };

  // Repetition coding (lossy-channel extension): each logical round spans
  // `reps` physical rounds; transmitters send every copy, listeners OR what
  // they hear across copies.
  const std::uint32_t reps = std::max(1u, params.repetitions);

  for (std::uint32_t phase = 0; phase < params.luby_phases; ++phase) {
    api.Phase("luby-phase", phase);
    bool lost = false;
    // Competition: β log n Bitty phases, rank bits drawn lazily.
    for (std::uint32_t j = 0; j < params.rank_bits; ++j) {
      if (budget.Exhausted()) {
        capped_decision();
        co_return;
      }
      if (api.Rand().Bit()) {
        if (!co_await TransmitLogical(api, reps, &budget)) {
          capped_decision();
          co_return;
        }
      } else {
        bool busy = false;
        if (!co_await ListenLogical(api, reps, &budget, &busy)) {
          capped_decision();
          co_return;
        }
        if (busy) {
          heard_anything = true;
          lost = true;
          const std::uint32_t remaining = params.rank_bits - j - 1;
          if (params.losers_keep_listening) {
            // Naive-Luby baseline: stay awake to the end of the competition.
            for (std::uint32_t j2 = 0; j2 < remaining; ++j2) {
              bool ignored = false;
              if (!co_await ListenLogical(api, reps, &budget, &ignored)) {
                capped_decision();
                co_return;
              }
            }
          } else {
            co_await api.SleepFor(static_cast<Round>(remaining) * reps);
          }
          break;
        }
      }
    }

    if (budget.Exhausted()) {
      capped_decision();
      co_return;
    }
    if (!lost) {
      // Winner: confirm inclusion so neighbors terminate out of the MIS.
      if (!co_await TransmitLogical(api, reps, &budget)) {
        capped_decision();
        co_return;
      }
      status = MisStatus::kInMis;
      co_return;
    }
    // Loser: final check — did a neighbor win this phase?
    bool winner_nearby = false;
    if (!co_await ListenLogical(api, reps, &budget, &winner_nearby)) {
      capped_decision();
      co_return;
    }
    if (winner_nearby) {
      heard_anything = true;
      status = MisStatus::kOutMis;
      co_return;
    }
  }
  // Phases exhausted while still undecided (probability 1/poly(n)).
}

ProtocolFactory MisCdProtocol(CdParams params, std::vector<MisStatus>* out) {
  EMIS_EXPECTS(out != nullptr, "output vector required");
  return [params, out](NodeApi api) { return MisCdNode(api, params, out); };
}

}  // namespace emis
