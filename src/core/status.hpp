// Node decision states shared by all MIS protocols.
#pragma once

#include <cstdint>
#include <string_view>

namespace emis {

/// A node's final (or in-flight) MIS decision. The protocols' internal
/// transient states (win/lose/commit in Algorithms 2-3) live inside the
/// coroutines; externally visible state is only this tri-state.
enum class MisStatus : std::uint8_t {
  kUndecided,
  kInMis,
  kOutMis,
};

constexpr std::string_view ToString(MisStatus s) noexcept {
  switch (s) {
    case MisStatus::kUndecided: return "undecided";
    case MisStatus::kInMis: return "in-MIS";
    case MisStatus::kOutMis: return "out-MIS";
  }
  return "?";
}

}  // namespace emis
