#include "core/async_wakeup.hpp"

namespace emis {
namespace {

proc::Task<void> StaggeredNode(NodeApi api, Round wake, proc::Task<void> inner) {
  co_await api.SleepUntil(wake);
  co_await std::move(inner);
}

}  // namespace

ProtocolFactory StaggeredProtocol(ProtocolFactory inner,
                                  const std::vector<Round>* wake_rounds) {
  EMIS_REQUIRE(inner != nullptr, "inner protocol required");
  EMIS_REQUIRE(wake_rounds != nullptr, "wake rounds required");
  return [inner = std::move(inner), wake_rounds](NodeApi api) {
    EMIS_REQUIRE(api.Id() < wake_rounds->size(),
                 "wake_rounds must cover every node");
    return StaggeredNode(api, (*wake_rounds)[api.Id()], inner(api));
  };
}

std::vector<Round> UniformWakeRounds(NodeId num_nodes, Round window, Rng& rng) {
  std::vector<Round> wake(num_nodes, 0);
  if (window > 0) {
    for (Round& w : wake) w = rng.UniformBelow(window + 1);
  }
  return wake;
}

}  // namespace emis
