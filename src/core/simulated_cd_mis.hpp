// Backoff-simulated Algorithm 1 for the no-CD model.
//
// Every round of the CD competition is replaced by one k-repeated backoff:
// nodes whose current rank bit is 1 run the sender side, nodes with a 0 bit
// run the receiver side, and "heard 1 or collision" becomes "the receiver
// backoff reported a sender" (reliable w.p. ≥ 1 - (7/8)^k, Lemma 9). The
// per-phase checking round becomes one more backoff in which winners
// announce and losers listen.
//
// One engine, three paper roles (see DESIGN.md §5 for the substitution
// rationale):
//   * LowDegreeMIS (§5.1.1): run on the committed subgraph of Algorithm 2
//     with Δ = Δ_est = κ log n and energy-efficient backoffs — the "naive
//     simulation of Algorithm 1" option the paper itself names. Per
//     participant this costs O(log² n · log log n) energy.
//   * Davies-profile baseline (§1.4): full graph, energy-efficient backoffs,
//     Δ_est = Δ — energy Θ(log² n · log Δ), the energy the paper attributes
//     to the round-efficient algorithm of [18].
//   * Naive no-CD Luby (§1.3): full graph, *traditional* always-awake
//     backoffs — energy Θ(log³ n · log Δ) ⊆ O(log⁴ n).
#pragma once

#include <vector>

#include "core/backoff.hpp"
#include "core/params.hpp"
#include "core/status.hpp"
#include "radio/process.hpp"

namespace emis {

/// Runs the simulated competition from the caller's current round. Returns
/// the node's decision. Timing contract: every participant must call this in
/// the same round; a node that returns kInMis returns right after its
/// winning announcement, kOutMis right after the check backoff that revealed
/// an MIS neighbor, and kUndecided after the full params.TotalRounds() span.
/// Callers that continue afterwards must SleepUntil their own sync point.
proc::Task<MisStatus> SimulatedCdMisRun(NodeApi api, SimCdParams params);

/// Standalone protocol wrapper: runs SimulatedCdMisRun once and terminates,
/// recording the decision in (*out)[api.Id()].
ProtocolFactory SimulatedCdMisProtocol(SimCdParams params, std::vector<MisStatus>* out);

}  // namespace emis
