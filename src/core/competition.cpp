#include "core/competition.hpp"

#include <algorithm>

#include "core/backoff.hpp"

namespace emis {

proc::Task<CompetitionOutcome> Competition(NodeApi api, NoCdParams params,
                                           CompetitionProbe* probe) {
  const Round start = api.Now();
  const Round bitty = BackoffRounds(params.deep_reps, params.delta);
  const Round end = start + static_cast<Round>(params.rank_bits) * bitty;

  std::uint32_t delta_est = params.delta;
  bool heard = false;
  bool committed = false;

  for (std::uint32_t j = 0; j < params.rank_bits; ++j) {
    if (api.Rand().Bit()) {
      co_await SndEBackoff(api, params.deep_reps, params.delta);
      continue;
    }
    const bool h = co_await RecEBackoff(api, params.deep_reps, params.delta, delta_est);
    heard = heard || h;
    if (heard && !committed) {
      // Lost: sleep out the remaining Bitty phases.
      if (probe != nullptr) probe->lose_bit = static_cast<std::int32_t>(j);
      co_await api.SleepUntil(end);
      co_return CompetitionOutcome::kLose;
    }
    if (!heard) {
      // A fully silent listen: at most κ log n neighbors are still active
      // (whp, Lemma 12) — shrink the listen window and commit to deciding
      // in this Luby phase.
      if (probe != nullptr && !committed) {
        probe->commit_bit = static_cast<std::int32_t>(j);
      }
      delta_est = std::min(params.delta, params.commit_degree);
      committed = true;
    }
  }
  // Nodes that heard nothing win, including committed ones (Alg. 3 line 14).
  co_return heard ? CompetitionOutcome::kCommit : CompetitionOutcome::kWin;
}

}  // namespace emis
