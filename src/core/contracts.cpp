#include "core/contracts.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace emis::contracts {
namespace {

std::atomic<std::uint64_t> g_audit_firings{0};

// Audit logging is capped so a contract violated on a per-round hot path
// reports its first occurrences instead of flooding stderr; the firing
// counter keeps the exact total either way.
constexpr std::uint64_t kMaxAuditLogLines = 20;

const char* KindName(Kind kind) noexcept {
  switch (kind) {
    case Kind::kExpects: return "precondition";
    case Kind::kEnsures: return "postcondition";
    case Kind::kInvariant: return "invariant";
  }
  return "contract";
}

std::string Describe(const char* what, const char* expr, const char* file,
                     int line, const char* msg) {
  std::string out(what);
  out += " failed: ";
  out += expr;
  out += " at ";
  out += file;
  out += ":";
  out += std::to_string(line);
  if (msg != nullptr && msg[0] != '\0') {
    out += " — ";
    out += msg;
  }
  return out;
}

/// Counts the firing and emits the capped audit log line.
void RecordAuditFiring(const std::string& text) {
  const std::uint64_t prior =
      g_audit_firings.fetch_add(1, std::memory_order_relaxed);
  if (prior < kMaxAuditLogLines) {
    std::fprintf(stderr, "emis-contracts[audit] %s\n", text.c_str());  // emis-lint: allow(io-in-library)
  } else if (prior == kMaxAuditLogLines) {
    std::fprintf(stderr, "emis-contracts[audit] further firings suppressed (see AuditFiringCount)\n");  // emis-lint: allow(io-in-library)
  }
}

}  // namespace

ContractMode ParseMode(const char* text) noexcept {
  if (text == nullptr) return ContractMode::kAbort;
  if (std::strcmp(text, "off") == 0) return ContractMode::kOff;
  if (std::strcmp(text, "audit") == 0) return ContractMode::kAudit;
  return ContractMode::kAbort;
}

ContractMode detail::InitMode() noexcept {
  // Racy first read is fine: ParseMode is pure, every thread computes the
  // same value from the same environment.
  // getenv without concurrent setenv is safe; this process never writes the
  // environment.
  const auto mode = static_cast<std::uint8_t>(
      ParseMode(std::getenv("EMIS_CONTRACTS")));  // NOLINT(concurrency-mt-unsafe)
  detail::g_mode.store(mode, std::memory_order_relaxed);
  return static_cast<ContractMode>(mode);
}

void SetMode(ContractMode mode) noexcept {
  detail::g_mode.store(static_cast<std::uint8_t>(mode),
                       std::memory_order_relaxed);
}

std::uint64_t AuditFiringCount() noexcept {
  return g_audit_firings.load(std::memory_order_relaxed);
}

void ResetAuditFiringCount() noexcept {
  g_audit_firings.store(0, std::memory_order_relaxed);
}

void Fail(Kind kind, const char* expr, const char* file, int line,
          const char* msg) {
  const std::string text = Describe(KindName(kind), expr, file, line, msg);
  if (CurrentMode() == ContractMode::kAudit) {
    RecordAuditFiring(text);
    return;
  }
  if (kind == Kind::kExpects) throw PreconditionError(text);
  throw InvariantError(text);
}

void Unreachable(const char* file, int line, const char* msg) {
  const std::string text =
      Describe("unreachable code", "reached", file, line, msg);
  if (CurrentMode() == ContractMode::kAudit) RecordAuditFiring(text);
  throw InvariantError(text);
}

}  // namespace emis::contracts
