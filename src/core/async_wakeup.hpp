// Asynchronous wake-up — probing the paper's synchronous-start assumption.
//
// The paper (like Davies'23 and Schneider-Wattenhofer) assumes synchronous
// wake-up: all nodes start the protocol in round 0 (§1.1). Other MIS lines
// of work (Moscibroda-Wattenhofer) handle adversarial wake-up times. This
// module staggers protocol starts so experiments can measure exactly how the
// synchronous algorithms degrade when that assumption breaks: a node that
// wakes mid-phase compares rank bits against neighbors in different phase
// positions and both safety (independence) and liveness (domination) can
// fail. See bench_async_wakeup (E14).
#pragma once

#include <vector>

#include "radio/process.hpp"
#include "radio/rng.hpp"

namespace emis {

/// Wraps `inner` so node v's protocol begins at wake_rounds[v] (it sleeps —
/// at zero energy — beforehand). wake_rounds must have one entry per node.
/// The vector is shared by all per-node tasks, so the caller keeps it alive
/// for the scheduler run.
ProtocolFactory StaggeredProtocol(ProtocolFactory inner,
                                  const std::vector<Round>* wake_rounds);

/// Independent uniform wake rounds in [0, window]; window = 0 reproduces the
/// synchronous model exactly.
std::vector<Round> UniformWakeRounds(NodeId num_nodes, Round window, Rng& rng);

}  // namespace emis
