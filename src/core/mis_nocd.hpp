// Algorithm 2 — energy-efficient MIS in the no-CD model (paper §5).
//
// C log n Luby phases, each with the fixed absolute-round schedule T_L =
// T_C + 2·T_B(C′ log n) + T_G + T_B(1) (see NoCdSchedule). Per phase:
//
//   1. Competition (Algorithm 3) splits the undecided nodes into win /
//      commit / lose; MIS nodes sleep through it.
//   2. Deep check A: MIS nodes announce (Snd-EBackoff(C′ log n, Δ)); winners
//      listen — a winner that hears an MIS neighbor terminates out-MIS,
//      otherwise it joins the MIS.
//   3. Deep check B: MIS nodes (including fresh winners) announce again;
//      committed nodes listen — hearing means out-MIS and early termination,
//      silence means entering LowDegreeMIS.
//   4. LowDegreeMIS window (T_G): the surviving committed nodes — which
//      induce an O(log n)-degree subgraph whp (Corollary 13) — resolve via
//      the backoff-simulated Algorithm 1 with Δ = κ log n.
//   5. Shallow check: MIS nodes announce once (Snd-EBackoff(1, Δ)); everyone
//      else listens once — a constant-probability, O(log Δ)-cost chance for
//      dominated nodes to drop out (paper §5.1.2 gives up on reliable
//      notification to save energy).
//
// MIS nodes never terminate: they re-announce in every later phase, paying
// O(log n) per phase. Theorem 10: O(log² n · log log n) energy,
// O(log³ n · log Δ) rounds, success ≥ 1 - 1/n.
#pragma once

#include <vector>

#include "core/params.hpp"
#include "core/status.hpp"
#include "radio/process.hpp"

namespace emis {

/// One node's run of Algorithm 2. Writes its decision to (*out)[api.Id()];
/// `out` must outlive the scheduler run and have one slot per node.
proc::Task<void> MisNoCdNode(NodeApi api, NoCdParams params, std::vector<MisStatus>* out);

/// One full C log n-phase run of Algorithm 2 as a composable epoch starting
/// at absolute round `start` (the caller must arrive at or before `start`;
/// all participants must use the same `start` and params).
///
/// In/out state: *in_mis marks a node that already holds MIS status from a
/// previous epoch — it plays the announcer role throughout. *status receives
/// the decision. The task may return before the epoch's schedule ends (a
/// decided node has nothing left to do); callers that continue afterwards
/// must SleepUntil their own next sync point. Used directly by MisNoCdNode
/// and by the Δ-doubling wrapper (delta_doubling.hpp).
proc::Task<void> MisNoCdEpoch(NodeApi api, NoCdParams params, Round start,
                              bool* in_mis, MisStatus* status);

/// Factory binding for Scheduler::Spawn.
ProtocolFactory MisNoCdProtocol(NoCdParams params, std::vector<MisStatus>* out);

}  // namespace emis
