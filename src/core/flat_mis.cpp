// Exact flat transcriptions of the coroutine MIS cores.
//
// Every machine here is a protothread: a Step function whose resume point
// is a small integer (`pc`) switched on at entry, with all state that must
// survive a yield stored in a per-node lane struct. The yield macros below
// file one action through FlatCtx and return false; re-entry jumps straight
// back to the yield site (Duff's-device case labels keyed by __LINE__).
//
// Transcription rules (what makes runs bit-identical to the coroutines):
//   * Awaiting a child Task starts the child immediately (symmetric
//     transfer, process.hpp), so a nested coroutine call is equivalent to
//     inlining its body. Sub-machines (backoffs, the competition, the
//     LowDegreeMIS runs) are therefore stepped inline at the call site,
//     with their own pc in the lane.
//   * SleepFor/SleepUntil that are already due do not suspend
//     (SleepAwait::await_ready). FLAT_SLEEP_* mirrors this: it only yields
//     when FlatCtx files a real sleep.
//   * RNG draws happen at the same program points, so each node consumes
//     its Split(v) stream identically.
//   * Loop counters live in the lane, never in locals across yields;
//     quantities recomputed from immutable params (windows, schedules) are
//     locals, recomputed on every re-entry to the same value.
#include "core/flat_mis.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/competition.hpp"
#include "core/contracts.hpp"
#include "core/mis_nocd.hpp"
#include "radio/hugepages.hpp"
#include "radio/size_budget.hpp"

namespace emis {
namespace {

// ---------------------------------------------------------------------------
// Lane width contracts
// ---------------------------------------------------------------------------
//
// The lanes below store loop counters as u16 (and the CD energy budget as
// u32): every persistent field is sized to the largest value the protocol
// can put in it, and these factory-checked bounds are what make the
// narrowing sound — a parameter that could overflow a lane counter is
// rejected at construction instead of silently truncating mid-run. All
// shipped presets (Theory/Practical, core/params.hpp) are O(log n) or
// O(log² n) in these fields, orders of magnitude below the limits.
// Quantities that never persist across a yield (backoff windows, schedules)
// are recomputed locals and need no bound. Lane *sizes* are budgeted
// separately via radio/size_budget.hpp static_asserts at each struct.
constexpr std::uint32_t kCounterMax = 0xffff;     // u16 lane counters
constexpr std::uint64_t kBudgetMax = 0xffffffff;  // u32 CD energy budget

void RequireLaneBounds(const CdParams& p) {
  EMIS_REQUIRE(p.luby_phases <= kCounterMax, "luby_phases exceeds lane counter width");
  EMIS_REQUIRE(p.rank_bits <= kCounterMax, "rank_bits exceeds lane counter width");
  EMIS_REQUIRE(p.repetitions <= kCounterMax, "repetitions exceeds lane counter width");
  EMIS_REQUIRE(p.energy_cap <= kBudgetMax, "energy_cap exceeds lane budget width");
}

void RequireLaneBounds(const SimCdParams& p) {
  EMIS_REQUIRE(p.luby_phases <= kCounterMax, "luby_phases exceeds lane counter width");
  EMIS_REQUIRE(p.rank_bits <= kCounterMax, "rank_bits exceeds lane counter width");
  EMIS_REQUIRE(p.reps <= kCounterMax, "reps exceeds lane counter width");
  EMIS_REQUIRE(p.BittyReps() <= kCounterMax, "bitty_reps exceeds lane counter width");
}

void RequireLaneBounds(const GhaffariParams& p) {
  EMIS_REQUIRE(p.iterations <= kCounterMax, "iterations exceeds lane counter width");
  EMIS_REQUIRE(p.mark_reps <= kCounterMax, "mark_reps exceeds lane counter width");
  EMIS_REQUIRE(p.announce_reps <= kCounterMax,
               "announce_reps exceeds lane counter width");
  EMIS_REQUIRE(p.est_slots <= kCounterMax, "est_slots exceeds lane counter width");
}

void RequireLaneBounds(const NoCdParams& p) {
  EMIS_REQUIRE(p.luby_phases <= kCounterMax, "luby_phases exceeds lane counter width");
  EMIS_REQUIRE(p.rank_bits <= kCounterMax, "rank_bits exceeds lane counter width");
  EMIS_REQUIRE(p.deep_reps <= kCounterMax, "deep_reps exceeds lane counter width");
  EMIS_REQUIRE(p.shallow_reps <= kCounterMax,
               "shallow_reps exceeds lane counter width");
  if (p.low_degree_kind == LowDegreeKind::kGhaffari) {
    RequireLaneBounds(p.low_degree_ghaffari);
  } else {
    RequireLaneBounds(p.low_degree);
  }
}

// Protothread yield macros. Each use must sit on its own source line (the
// line number is the case label). `pc_` is the reference bound by
// FLAT_BEGIN; Step functions return false while suspended, true when the
// (sub-)program has completed.
#define FLAT_BEGIN(pc_field) \
  std::uint16_t& pc_ = (pc_field); \
  switch (pc_) { \
    case 0:

#define FLAT_END() \
  } \
  return true

#define FLAT_TRANSMIT(c, payload) \
  do { \
    (c).Transmit(payload); \
    pc_ = __LINE__; \
    return false; \
    case __LINE__:; \
  } while (0)

#define FLAT_LISTEN(c) \
  do { \
    (c).Listen(); \
    pc_ = __LINE__; \
    return false; \
    case __LINE__:; \
  } while (0)

#define FLAT_SLEEP_FOR(c, rounds) \
  do { \
    if ((c).SleepFor(rounds)) { \
      pc_ = __LINE__; \
      return false; \
    } \
    [[fallthrough]]; \
    case __LINE__:; \
  } while (0)

#define FLAT_SLEEP_UNTIL(c, round) \
  do { \
    if ((c).SleepUntil(round)) { \
      pc_ = __LINE__; \
      return false; \
    } \
    [[fallthrough]]; \
    case __LINE__:; \
  } while (0)

// Runs a sub-machine to completion: yields out of the enclosing Step while
// the child is suspended. The child's lane pc must be reset to 0 *before*
// this statement (re-entries jump past anything written earlier).
#define FLAT_AWAIT(call) \
  do { \
    pc_ = __LINE__; \
    [[fallthrough]]; \
    case __LINE__: \
      if (!(call)) return false; \
  } while (0)

// ---------------------------------------------------------------------------
// Backoff primitives (flat mirrors of core/backoff.cpp / MarkExchange)
// ---------------------------------------------------------------------------

/// Shared lane for one in-flight backoff call. Callers reset with Start()
/// immediately before each logical call; `heard` is the Rec* return value.
/// Field order packs the per-yield fields (pc, i, x, heard) into the lane's
/// first word: i counts backoff iterations (≤ kCounterMax by the factory
/// contracts), x is a window slot (≤ BackoffWindow ≤ 33, so u8), and only
/// RecDecay's flat listen counter j needs u32 (k · window can reach ~2M).
struct BackoffLane {
  std::uint16_t pc = 0;
  std::uint16_t i = 0;
  std::uint8_t x = 0;
  bool heard = false;
  std::uint32_t j = 0;
  Round end_round = 0;

  void Start() noexcept { pc = 0; }
};
static_assert(sizeof(BackoffLane) <= kBackoffLaneBytes,
              "BackoffLane outgrew its size budget (radio/size_budget.hpp)");

/// SndEBackoff(k, delta).
bool StepSndE(BackoffLane& t, const FlatCtx& c, std::uint32_t k,
              std::uint32_t delta) {
  const std::uint32_t window = BackoffWindow(delta);
  FLAT_BEGIN(t.pc);
  for (t.i = 0; t.i < k; ++t.i) {
    t.x = static_cast<std::uint8_t>(std::min(c.Rand().GeometricHalf(), window));
    FLAT_SLEEP_FOR(c, t.x - 1);
    FLAT_TRANSMIT(c, 1);
    FLAT_SLEEP_FOR(c, window - t.x);
  }
  FLAT_END();
}

/// RecEBackoff(k, delta, delta_est) -> t.heard.
bool StepRecE(BackoffLane& t, const FlatCtx& c, std::uint32_t k,
              std::uint32_t delta, std::uint32_t delta_est) {
  const std::uint32_t window = BackoffWindow(delta);
  const std::uint32_t listen_window = std::min(BackoffWindow(delta_est), window);
  FLAT_BEGIN(t.pc);
  t.end_round = c.Now() + BackoffRounds(k, delta);
  t.heard = false;
  for (t.i = 0; t.i < k && !t.heard; ++t.i) {
    for (t.j = 0; t.j < listen_window; ++t.j) {
      FLAT_LISTEN(c);
      if (c.Heard().Busy()) {
        t.heard = true;
        break;
      }
    }
    FLAT_SLEEP_UNTIL(c, t.end_round - static_cast<Round>(k - 1 - t.i) * window);
  }
  FLAT_SLEEP_UNTIL(c, t.end_round);
  FLAT_END();
}

/// SndDecay(k, delta).
bool StepSndDecay(BackoffLane& t, const FlatCtx& c, std::uint32_t k,
                  std::uint32_t delta) {
  const std::uint32_t window = BackoffWindow(delta);
  FLAT_BEGIN(t.pc);
  c.SubPhase("decay");
  for (t.i = 0; t.i < k; ++t.i) {
    t.x = static_cast<std::uint8_t>(std::min(c.Rand().GeometricHalf(), window));
    for (t.j = 0; t.j < window; ++t.j) {
      if (t.j < t.x) {
        FLAT_TRANSMIT(c, 1);
      } else {
        FLAT_LISTEN(c);
      }
    }
  }
  FLAT_END();
}

/// RecDecay(k, delta) -> t.heard.
bool StepRecDecay(BackoffLane& t, const FlatCtx& c, std::uint32_t k,
                  std::uint32_t delta) {
  const std::uint32_t total =
      static_cast<std::uint32_t>(BackoffRounds(k, delta));
  FLAT_BEGIN(t.pc);
  c.SubPhase("decay");
  t.heard = false;
  for (t.j = 0; t.j < total; ++t.j) {
    FLAT_LISTEN(c);
    t.heard = t.heard || c.Heard().Busy();
  }
  FLAT_END();
}

/// SndBackoff / RecBackoff style dispatch. The two bodies have disjoint
/// case-label sets, but a given lane only ever runs one of them per call.
bool StepSnd(BackoffLane& t, const FlatCtx& c, BackoffStyle style,
             std::uint32_t k, std::uint32_t delta) {
  return style == BackoffStyle::kEnergyEfficient ? StepSndE(t, c, k, delta)
                                                 : StepSndDecay(t, c, k, delta);
}
bool StepRec(BackoffLane& t, const FlatCtx& c, BackoffStyle style,
             std::uint32_t k, std::uint32_t delta, std::uint32_t delta_est) {
  return style == BackoffStyle::kEnergyEfficient
             ? StepRecE(t, c, k, delta, delta_est)
             : StepRecDecay(t, c, k, delta);
}

/// MarkExchange(k, delta) from core/ghaffari_mis.cpp -> t.heard.
bool StepMarkExchange(BackoffLane& t, const FlatCtx& c, std::uint32_t k,
                      std::uint32_t delta) {
  const std::uint32_t window = BackoffWindow(delta);
  FLAT_BEGIN(t.pc);
  t.end_round = c.Now() + BackoffRounds(k, delta);
  t.heard = false;
  for (t.i = 0; t.i < k && !t.heard; ++t.i) {
    if (c.Rand().Bit()) {
      t.x = static_cast<std::uint8_t>(std::min(c.Rand().GeometricHalf(), window));
      FLAT_SLEEP_FOR(c, t.x - 1);
      FLAT_TRANSMIT(c, 1);
    } else {
      for (t.j = 0; t.j < window; ++t.j) {
        FLAT_LISTEN(c);
        if (c.Heard().Busy()) {
          t.heard = true;
          break;
        }
      }
    }
    FLAT_SLEEP_UNTIL(c, t.end_round - static_cast<Round>(k - 1 - t.i) * window);
  }
  FLAT_SLEEP_UNTIL(c, t.end_round);
  FLAT_END();
}

// ---------------------------------------------------------------------------
// Algorithm 1 (CD / beeping): flat mirror of core/mis_cd.cpp
// ---------------------------------------------------------------------------

// Counters are u16 (phase/j/j2 bound by luby_phases/rank_bits, r by the
// repetition factor — all ≤ kCounterMax by the factory contract); the
// epoch-wide budget is u32 (never read past energy_cap ≤ kBudgetMax: the
// Exhausted pre-check stops incrementing first, and with cap == 0 the
// field is never read at all, so u32 wraparound is unobservable).
struct CdLane {
  std::uint32_t spent = 0;  // Budget::spent, epoch-wide
  std::uint16_t pc = 0;
  std::uint16_t sub_pc = 0;  // Transmit/ListenLogical resume point
  std::uint16_t phase = 0;
  std::uint16_t j = 0;   // rank-bit index
  std::uint16_t j2 = 0;  // losers_keep_listening remainder index
  std::uint16_t r = 0;   // repetition index of the in-flight logical round
  bool heard_anything = false;
  bool lost = false;
  bool busy = false;  // ListenLogical accumulator
  bool ok = false;    // logical round completed within budget
};
static_assert(sizeof(CdLane) <= kCdLaneBytes,
              "CdLane outgrew its size budget (radio/size_budget.hpp)");

class FlatMisCd final : public FlatProtocol {
 public:
  FlatMisCd(CdParams params, std::vector<MisStatus>* out, NodeId num_nodes)
      : params_(params),
        out_(out),
        reps_(std::max(1u, params.repetitions)) {
    RequireLaneBounds(params_);
    ReserveHuge(lanes_, num_nodes);
  }

  void Step(NodeId v, NodeContext ctx) override {
    const FlatCtx c(ctx);
    if (StepNode(lanes_[v], c, &(*out_)[v])) {
      // MisCdNode: api.Retire() then the root coroutine finishes.
      ctx.MarkDone();
    }
  }

  LaneLayout Lanes() const noexcept override {
    return {lanes_.data(), sizeof(CdLane)};
  }

 private:
  bool Exhausted(const CdLane& t) const noexcept {
    return params_.energy_cap != 0 && t.spent >= params_.energy_cap;
  }

  /// TransmitLogical: `reps` physical transmits, charging the budget.
  /// Completes with t.ok = false when the budget ran out first.
  bool StepTransmitLogical(CdLane& t, const FlatCtx& c) {
    FLAT_BEGIN(t.sub_pc);
    t.ok = true;
    for (t.r = 0; t.r < reps_; ++t.r) {
      if (Exhausted(t)) {
        t.ok = false;
        return true;
      }
      ++t.spent;
      FLAT_TRANSMIT(c, 1);
    }
    FLAT_END();
  }

  /// ListenLogical: `reps` physical listens ORed into t.busy.
  bool StepListenLogical(CdLane& t, const FlatCtx& c) {
    FLAT_BEGIN(t.sub_pc);
    t.ok = true;
    t.busy = false;
    for (t.r = 0; t.r < reps_; ++t.r) {
      if (Exhausted(t)) {
        t.ok = false;
        return true;
      }
      ++t.spent;
      FLAT_LISTEN(c);
      t.busy = t.busy || c.Heard().Busy();
    }
    FLAT_END();
  }

  void CappedDecision(const CdLane& t, MisStatus* status) const noexcept {
    *status = t.heard_anything ? MisStatus::kOutMis : MisStatus::kInMis;
  }

  // MisCdNode + MisCdEpoch, inlined (the node wrapper only writes the
  // initial kUndecided and retires at the end).
  bool StepNode(CdLane& t, const FlatCtx& c, MisStatus* status) {
    FLAT_BEGIN(t.pc);
    *status = MisStatus::kUndecided;
    for (t.phase = 0; t.phase < params_.luby_phases; ++t.phase) {
      c.Phase("luby-phase", t.phase);
      t.lost = false;
      for (t.j = 0; t.j < params_.rank_bits; ++t.j) {
        if (Exhausted(t)) {
          CappedDecision(t, status);
          return true;
        }
        if (c.Rand().Bit()) {
          t.sub_pc = 0;
          FLAT_AWAIT(StepTransmitLogical(t, c));
          if (!t.ok) {
            CappedDecision(t, status);
            return true;
          }
        } else {
          t.sub_pc = 0;
          FLAT_AWAIT(StepListenLogical(t, c));
          if (!t.ok) {
            CappedDecision(t, status);
            return true;
          }
          if (t.busy) {
            t.heard_anything = true;
            t.lost = true;
            if (params_.losers_keep_listening) {
              // Naive-Luby baseline: stay awake to the competition's end.
              for (t.j2 = 0; t.j2 < params_.rank_bits - t.j - 1; ++t.j2) {
                t.sub_pc = 0;
                FLAT_AWAIT(StepListenLogical(t, c));
                if (!t.ok) {
                  CappedDecision(t, status);
                  return true;
                }
              }
            } else {
              FLAT_SLEEP_FOR(
                  c, static_cast<Round>(params_.rank_bits - t.j - 1) * reps_);
            }
            break;
          }
        }
      }
      if (Exhausted(t)) {
        CappedDecision(t, status);
        return true;
      }
      if (!t.lost) {
        // Winner: confirm inclusion so neighbors terminate out of the MIS.
        t.sub_pc = 0;
        FLAT_AWAIT(StepTransmitLogical(t, c));
        if (!t.ok) {
          CappedDecision(t, status);
          return true;
        }
        *status = MisStatus::kInMis;
        return true;
      }
      // Loser: final check — did a neighbor win this phase?
      t.sub_pc = 0;
      FLAT_AWAIT(StepListenLogical(t, c));
      if (!t.ok) {
        CappedDecision(t, status);
        return true;
      }
      if (t.busy) {
        t.heard_anything = true;
        *status = MisStatus::kOutMis;
        return true;
      }
    }
    // Phases exhausted while still undecided (probability 1/poly(n)).
    FLAT_END();
  }

  CdParams params_;
  std::vector<MisStatus>* out_;
  std::uint32_t reps_;
  std::vector<CdLane> lanes_;
};

// ---------------------------------------------------------------------------
// Simulated CD-MIS (LowDegreeMIS / Davies-profile / naive no-CD Luby):
// flat mirror of core/simulated_cd_mis.cpp
// ---------------------------------------------------------------------------

// phase/j are bound by luby_phases/rank_bits ≤ kCounterMax (factory
// contract). The sub-machine lane leads so its per-yield word and this
// lane's own counters land on the same cache line.
struct SimCdLane {
  BackoffLane bk;
  Round start = 0;
  std::uint16_t pc = 0;
  std::uint16_t phase = 0;
  std::uint16_t j = 0;
  MisStatus result = MisStatus::kUndecided;
  bool lost = false;

  void Start() noexcept { pc = 0; }
};
static_assert(sizeof(SimCdLane) <= kSimCdLaneBytes,
              "SimCdLane outgrew its size budget (radio/size_budget.hpp)");

/// SimulatedCdMisRun -> t.result.
bool StepSimCd(SimCdLane& t, const FlatCtx& c, const SimCdParams& p) {
  FLAT_BEGIN(t.pc);
  t.start = c.Now();
  for (t.phase = 0; t.phase < p.luby_phases; ++t.phase) {
    if (p.annotate_phases) c.Phase("luby-phase", t.phase);
    t.lost = false;
    for (t.j = 0; t.j < p.rank_bits && !t.lost; ++t.j) {
      if (c.Rand().Bit()) {
        t.bk.Start();
        FLAT_AWAIT(StepSnd(t.bk, c, p.style, p.BittyReps(), p.delta));
      } else {
        t.bk.Start();
        FLAT_AWAIT(StepRec(t.bk, c, p.style, p.BittyReps(), p.delta, p.delta_est));
        if (t.bk.heard) {
          t.lost = true;
          // Sleep out the remaining Bitty phases of this competition.
          FLAT_SLEEP_UNTIL(c, t.start + static_cast<Round>(t.phase) * p.PhaseRounds() +
                                  static_cast<Round>(p.rank_bits) * p.BittyRounds());
        }
      }
    }
    if (!t.lost) {
      // Winner: announce inclusion during the check backoff, then decide.
      t.bk.Start();
      FLAT_AWAIT(StepSnd(t.bk, c, p.style, p.reps, p.delta));
      t.result = MisStatus::kInMis;
      return true;
    }
    t.bk.Start();
    FLAT_AWAIT(StepRec(t.bk, c, p.style, p.reps, p.delta, p.delta_est));
    if (t.bk.heard) {
      t.result = MisStatus::kOutMis;
      return true;
    }
  }
  t.result = MisStatus::kUndecided;
  FLAT_END();
}

class FlatSimulatedCdMis final : public FlatProtocol {
 public:
  FlatSimulatedCdMis(SimCdParams params, std::vector<MisStatus>* out,
                     NodeId num_nodes)
      : params_(params), out_(out) {
    params_.annotate_phases = true;  // standalone contract (Standalone())
    RequireLaneBounds(params_);
    ReserveHuge(lanes_, num_nodes);
  }

  void Step(NodeId v, NodeContext ctx) override {
    const FlatCtx c(ctx);
    SimCdLane& t = lanes_[v];
    if (t.pc == 0) (*out_)[v] = MisStatus::kUndecided;
    if (StepSimCd(t, c, params_)) {
      (*out_)[v] = t.result;
      ctx.MarkDone();
    }
  }

  LaneLayout Lanes() const noexcept override {
    return {lanes_.data(), sizeof(SimCdLane)};
  }

 private:
  SimCdParams params_;
  std::vector<MisStatus>* out_;
  std::vector<SimCdLane> lanes_;
};

// ---------------------------------------------------------------------------
// Ghaffari-style round-efficient MIS: flat mirror of core/ghaffari_mis.cpp
// ---------------------------------------------------------------------------

// iter/slot/heard_slots are bound by iterations/est_slots ≤ kCounterMax
// (factory contract); exponent and level never exceed Levels() =
// CeilLog2(Δ) + 2 ≤ 34 for any u32 Δ, so u8 is sound unconditionally.
struct GhaffariLane {
  BackoffLane bk;
  Round start = 0;
  std::uint16_t pc = 0;
  std::uint16_t iter = 0;
  std::uint16_t slot = 0;
  std::uint16_t heard_slots = 0;
  std::uint8_t exponent = 1;
  std::uint8_t level = 0;
  MisStatus result = MisStatus::kUndecided;
  bool marked = false;
  bool heard_mark = false;
  bool crowded = false;

  void Start() noexcept { pc = 0; }
};
static_assert(sizeof(GhaffariLane) <= kGhaffariLaneBytes,
              "GhaffariLane outgrew its size budget (radio/size_budget.hpp)");

/// GhaffariMisRun -> t.result.
bool StepGhaffari(GhaffariLane& t, const FlatCtx& c, const GhaffariParams& p) {
  const Round iter_rounds = p.IterationRounds();
  const std::uint32_t levels = p.Levels();
  FLAT_BEGIN(t.pc);
  t.start = c.Now();
  t.exponent = 1;  // p_v = 2^-exponent, starting at 1/2
  for (t.iter = 0; t.iter < p.iterations; ++t.iter) {
    if (p.annotate_phases) c.Phase("ghaffari-iter", t.iter);

    // --- 1. Mark + exchange ----------------------------------------------
    t.marked = c.Rand().Bernoulli(std::ldexp(1.0, -static_cast<int>(t.exponent)));
    t.heard_mark = false;
    if (t.marked) {
      t.bk.Start();
      FLAT_AWAIT(StepMarkExchange(t.bk, c, p.mark_reps, p.delta));
      t.heard_mark = t.bk.heard;
    } else {
      FLAT_SLEEP_UNTIL(c, t.start + static_cast<Round>(t.iter) * iter_rounds +
                              p.MarkExchangeRounds());
    }

    // --- 2. Join + announce ----------------------------------------------
    if (t.marked && !t.heard_mark) {
      t.bk.Start();
      FLAT_AWAIT(StepSndE(t.bk, c, p.announce_reps, p.delta));
      t.result = MisStatus::kInMis;
      return true;
    }
    t.bk.Start();
    FLAT_AWAIT(StepRecE(t.bk, c, p.announce_reps, p.delta, p.delta));
    if (t.bk.heard) {
      t.result = MisStatus::kOutMis;
      return true;
    }

    // --- 3. Effective-degree probe ---------------------------------------
    t.crowded = false;
    for (t.level = 0; t.level < levels; ++t.level) {
      t.heard_slots = 0;
      for (t.slot = 0; t.slot < p.est_slots; ++t.slot) {
        if (c.Rand().Bernoulli(
                std::ldexp(1.0, -static_cast<int>(t.exponent + t.level)))) {
          FLAT_TRANSMIT(c, 1);
        } else {
          FLAT_LISTEN(c);
          if (c.Heard().Busy()) ++t.heard_slots;
        }
      }
      if (t.level >= 1 && static_cast<double>(t.heard_slots) >=
                              p.crowded_threshold * p.est_slots) {
        t.crowded = true;
      }
    }
    if (t.crowded) {
      t.exponent =
          static_cast<std::uint8_t>(std::min<std::uint32_t>(t.exponent + 1u, levels));
    } else if (t.exponent > 1) {
      --t.exponent;
    }
    FLAT_SLEEP_UNTIL(c, t.start + static_cast<Round>(t.iter + 1) * iter_rounds);
  }
  t.result = MisStatus::kUndecided;
  FLAT_END();
}

class FlatGhaffariMis final : public FlatProtocol {
 public:
  FlatGhaffariMis(GhaffariParams params, std::vector<MisStatus>* out,
                  NodeId num_nodes)
      : params_(params), out_(out) {
    params_.annotate_phases = true;  // standalone contract (Standalone())
    RequireLaneBounds(params_);
    ReserveHuge(lanes_, num_nodes);
  }

  void Step(NodeId v, NodeContext ctx) override {
    const FlatCtx c(ctx);
    GhaffariLane& t = lanes_[v];
    if (t.pc == 0) (*out_)[v] = MisStatus::kUndecided;
    if (StepGhaffari(t, c, params_)) {
      (*out_)[v] = t.result;
      ctx.MarkDone();
    }
  }

  LaneLayout Lanes() const noexcept override {
    return {lanes_.data(), sizeof(GhaffariLane)};
  }

 private:
  GhaffariParams params_;
  std::vector<MisStatus>* out_;
  std::vector<GhaffariLane> lanes_;
};

// ---------------------------------------------------------------------------
// Algorithm 3 competition + Algorithm 2 epoch: flat mirrors of
// core/competition.cpp and core/mis_nocd.cpp
// ---------------------------------------------------------------------------

// j is bound by rank_bits ≤ kCounterMax (factory contract). The receiver
// listen bound delta_est is NOT stored: it is a pure function of the
// committed flag (Δ before commit, min(Δ, κ log n) after), recomputed as a
// local on every Step re-entry — per-round-derivable state stays out of
// persistent lanes.
struct CompetitionLane {
  BackoffLane bk;
  Round end = 0;
  std::uint16_t pc = 0;
  std::uint16_t j = 0;
  CompetitionOutcome outcome = CompetitionOutcome::kWin;
  bool heard = false;
  bool committed = false;

  void Start() noexcept { pc = 0; }
};
static_assert(sizeof(CompetitionLane) <= kCompetitionLaneBytes,
              "CompetitionLane outgrew its size budget (radio/size_budget.hpp)");

/// Competition(params) -> t.outcome (probe-free path; protocols pass null).
bool StepCompetition(CompetitionLane& t, const FlatCtx& c, const NoCdParams& p) {
  // The commit flag only flips between a Bitty phase's last listen yield
  // and the next FLAT_AWAIT re-entry, and StepRecE reads its listen bound
  // only after its first listen files — so a re-entry always recomputes the
  // value the stored field used to hold before any read can observe it.
  const std::uint32_t delta_est =
      t.committed ? std::min(p.delta, p.commit_degree) : p.delta;
  FLAT_BEGIN(t.pc);
  t.end = c.Now() +
          static_cast<Round>(p.rank_bits) * BackoffRounds(p.deep_reps, p.delta);
  t.heard = false;
  t.committed = false;
  for (t.j = 0; t.j < p.rank_bits; ++t.j) {
    if (c.Rand().Bit()) {
      t.bk.Start();
      FLAT_AWAIT(StepSndE(t.bk, c, p.deep_reps, p.delta));
      continue;
    }
    t.bk.Start();
    FLAT_AWAIT(StepRecE(t.bk, c, p.deep_reps, p.delta, delta_est));
    t.heard = t.heard || t.bk.heard;
    if (t.heard && !t.committed) {
      // Lost: sleep out the remaining Bitty phases.
      FLAT_SLEEP_UNTIL(c, t.end);
      t.outcome = CompetitionOutcome::kLose;
      return true;
    }
    if (!t.heard) {
      t.committed = true;
    }
  }
  // Nodes that heard nothing win, including committed ones (Alg. 3 line 14).
  t.outcome = t.heard ? CompetitionOutcome::kCommit : CompetitionOutcome::kWin;
  FLAT_END();
}

// i is bound by luby_phases ≤ kCounterMax (factory contract). Own control
// word first, then the sub-machine lanes ordered by how often a phase
// touches them (every phase runs the competition; only committed survivors
// reach the LowDegreeMIS lanes at the tail).
struct NoCdEpochLane {
  std::uint16_t pc = 0;
  std::uint16_t i = 0;  // Luby phase index
  CompetitionLane comp;
  BackoffLane bk;
  SimCdLane sim;    // LowDegreeKind::kSimulatedAlg1
  GhaffariLane gh;  // LowDegreeKind::kGhaffari

  void Start() noexcept { pc = 0; }
};
static_assert(sizeof(NoCdEpochLane) <= kNoCdEpochLaneBytes,
              "NoCdEpochLane outgrew its size budget (radio/size_budget.hpp)");

/// MisNoCdEpoch(params, start, in_mis, status). `sched` must equal
/// NoCdSchedule::Of(params) (precomputed once per machine, not per node).
bool StepNoCdEpoch(NoCdEpochLane& t, const FlatCtx& c, const NoCdParams& p,
                   const NoCdSchedule& sched, Round start, bool* in_mis,
                   MisStatus* status) {
  FLAT_BEGIN(t.pc);
  for (t.i = 0; t.i < p.luby_phases; ++t.i) {
    // Theorem 10's deterministic threshold: over budget -> decide and sleep.
    if (p.energy_cap != 0 && !*in_mis && c.EnergySpent() >= p.energy_cap) {
      *status = MisStatus::kOutMis;
      return true;
    }

    if (*in_mis) {
      // MIS nodes sleep through the competition and announce in both deep
      // checks and the shallow check (Alg. 2 lines 4, 7, 15, 26).
      FLAT_SLEEP_UNTIL(c, start + static_cast<Round>(t.i) * sched.phase +
                              sched.CompetitionEnd());
      c.SubPhase("deep-check");
      t.bk.Start();
      FLAT_AWAIT(StepSndE(t.bk, c, p.deep_reps, p.delta));
      t.bk.Start();
      FLAT_AWAIT(StepSndE(t.bk, c, p.deep_reps, p.delta));
      FLAT_SLEEP_UNTIL(c, start + static_cast<Round>(t.i) * sched.phase +
                              sched.LowDegreeEnd());
      c.SubPhase("shallow-check");
      t.bk.Start();
      FLAT_AWAIT(StepSndE(t.bk, c, p.shallow_reps, p.delta));
      continue;
    }
    if (*status != MisStatus::kUndecided) return true;  // decided earlier

    FLAT_SLEEP_UNTIL(c, start + static_cast<Round>(t.i) * sched.phase);
    c.Phase("luby-phase", t.i);
    c.SubPhase("competition");
    t.comp.Start();
    FLAT_AWAIT(StepCompetition(t.comp, c, p));

    if (t.comp.outcome == CompetitionOutcome::kWin) {
      // Deep check A: listen for MIS neighbors before joining (lines 8-11).
      c.SubPhase("deep-check");
      t.bk.Start();
      FLAT_AWAIT(StepRecE(t.bk, c, p.deep_reps, p.delta, p.delta));
      if (t.bk.heard) {
        *status = MisStatus::kOutMis;
        return true;
      }
      *in_mis = true;
      *status = MisStatus::kInMis;
      // Deep check B: announce as a fresh MIS node (lines 14-15).
      t.bk.Start();
      FLAT_AWAIT(StepSndE(t.bk, c, p.deep_reps, p.delta));
      FLAT_SLEEP_UNTIL(c, start + static_cast<Round>(t.i) * sched.phase +
                              sched.LowDegreeEnd());
      c.SubPhase("shallow-check");
      t.bk.Start();
      FLAT_AWAIT(StepSndE(t.bk, c, p.shallow_reps, p.delta));
    } else if (t.comp.outcome == CompetitionOutcome::kCommit) {
      // Committed nodes sleep through deep check A (line 12)...
      FLAT_SLEEP_UNTIL(c, start + static_cast<Round>(t.i) * sched.phase +
                              sched.FirstDeepEnd());
      // ...then deep-check for MIS neighbors, old and fresh (lines 17-20).
      c.SubPhase("deep-check");
      t.bk.Start();
      FLAT_AWAIT(StepRecE(t.bk, c, p.deep_reps, p.delta, p.delta));
      if (t.bk.heard) {
        *status = MisStatus::kOutMis;
        return true;
      }
      // Survivors resolve with LowDegreeMIS inside the T_G window.
      c.SubPhase("low-degree-mis");
      if (p.low_degree_kind == LowDegreeKind::kGhaffari) {
        t.gh.Start();
        FLAT_AWAIT(StepGhaffari(t.gh, c, p.low_degree_ghaffari));
      } else {
        t.sim.Start();
        FLAT_AWAIT(StepSimCd(t.sim, c, p.low_degree));
      }
      {
        const MisStatus sub = p.low_degree_kind == LowDegreeKind::kGhaffari
                                  ? t.gh.result
                                  : t.sim.result;
        if (sub == MisStatus::kInMis) {
          *in_mis = true;
          *status = MisStatus::kInMis;
        } else if (sub == MisStatus::kOutMis) {
          *status = MisStatus::kOutMis;
          return true;  // dominated within the committed subgraph
        }
      }
      FLAT_SLEEP_UNTIL(c, start + static_cast<Round>(t.i) * sched.phase +
                              sched.LowDegreeEnd());
      // Shallow check (lines 26-30).
      c.SubPhase("shallow-check");
      if (*in_mis) {
        t.bk.Start();
        FLAT_AWAIT(StepSndE(t.bk, c, p.shallow_reps, p.delta));
      } else {
        t.bk.Start();
        FLAT_AWAIT(StepRecE(t.bk, c, p.shallow_reps, p.delta, p.delta));
        if (t.bk.heard) {
          *status = MisStatus::kOutMis;
          return true;
        }
      }
    } else {  // CompetitionOutcome::kLose
      // Losers sleep until the shallow check (lines 12, 24), then listen
      // once for an MIS neighbor (lines 28-30).
      FLAT_SLEEP_UNTIL(c, start + static_cast<Round>(t.i) * sched.phase +
                              sched.LowDegreeEnd());
      c.SubPhase("shallow-check");
      t.bk.Start();
      FLAT_AWAIT(StepRecE(t.bk, c, p.shallow_reps, p.delta, p.delta));
      if (t.bk.heard) {
        *status = MisStatus::kOutMis;
        return true;
      }
    }
  }
  // Phases exhausted while undecided (probability 1/poly(n)).
  FLAT_END();
}

class FlatMisNoCd final : public FlatProtocol {
 public:
  FlatMisNoCd(NoCdParams params, std::vector<MisStatus>* out, NodeId num_nodes)
      : params_(params),
        sched_(NoCdSchedule::Of(params)),
        out_(out) {
    RequireLaneBounds(params_);
    ReserveHuge(lanes_, num_nodes);
  }

  void Step(NodeId v, NodeContext ctx) override {
    const FlatCtx c(ctx);
    Lane& t = lanes_[v];
    if (t.epoch.pc == 0 && !t.entered) {
      (*out_)[v] = MisStatus::kUndecided;
      t.in_mis = false;
      t.entered = true;
    }
    if (StepNoCdEpoch(t.epoch, c, params_, sched_, 0, &t.in_mis, &(*out_)[v])) {
      // MisNoCdNode: api.Retire() then the root coroutine finishes.
      ctx.MarkDone();
    }
  }

  LaneLayout Lanes() const noexcept override {
    return {lanes_.data(), sizeof(Lane)};
  }

 private:
  struct Lane {
    bool in_mis = false;
    bool entered = false;
    NoCdEpochLane epoch;
  };
  static_assert(sizeof(Lane) <= kNoCdLaneBytes,
                "FlatMisNoCd::Lane outgrew its size budget (radio/size_budget.hpp)");

  NoCdParams params_;
  NoCdSchedule sched_;
  std::vector<MisStatus>* out_;
  std::vector<Lane> lanes_;
};

// ---------------------------------------------------------------------------
// Unknown-Δ doubling wrapper: flat mirror of core/delta_doubling.cpp
// ---------------------------------------------------------------------------

// g is bound by the guess count and it by verify_reps, both ≤ kCounterMax
// (constructor contract). The verification-loop state (bk and the round
// markers) leads; the epoch sub-lane sits at the tail.
struct DeltaLane {
  BackoffLane bk;
  Round epoch_start = 0;
  Round verify_end = 0;
  std::uint16_t pc = 0;
  std::uint16_t g = 0;   // guess index
  std::uint16_t it = 0;  // verification iteration
  bool in_mis = false;
  NoCdEpochLane epoch;
};
static_assert(sizeof(DeltaLane) <= kDeltaLaneBytes,
              "DeltaLane outgrew its size budget (radio/size_budget.hpp)");

class FlatDeltaDoublingMis final : public FlatProtocol {
 public:
  FlatDeltaDoublingMis(DeltaDoublingParams params, std::vector<MisStatus>* out,
                       NodeId num_nodes)
      : params_(params), out_(out) {
    EMIS_REQUIRE(params_.verify_reps <= kCounterMax,
                 "verify_reps exceeds lane counter width");
    ReserveHuge(lanes_, num_nodes);
    // Per-guess configuration is identical across nodes: derive it once
    // here instead of per node (the coroutine recomputes it per node, but
    // the values are pure functions of params).
    for (const std::uint32_t guess : params_.Guesses()) {
      const NoCdParams epoch = params_.theory_constants
                                   ? NoCdParams::Theory(params_.n, guess)
                                   : NoCdParams::Practical(params_.n, guess);
      RequireLaneBounds(epoch);
      guesses_.push_back(guess);
      epochs_.push_back(epoch);
      scheds_.push_back(NoCdSchedule::Of(epoch));
      verify_rounds_.push_back(static_cast<Round>(params_.verify_reps) *
                               BackoffRounds(1, guess));
      epoch_rounds_.push_back(static_cast<Round>(epoch.luby_phases) *
                              scheds_.back().phase);
    }
    EMIS_REQUIRE(guesses_.size() <= kCounterMax,
                 "guess count exceeds lane counter width");
  }

  void Step(NodeId v, NodeContext ctx) override {
    const FlatCtx c(ctx);
    if (StepNode(lanes_[v], c, &(*out_)[v])) {
      // DeltaDoublingMisNode: api.Retire() then the root finishes.
      ctx.MarkDone();
    }
  }

  LaneLayout Lanes() const noexcept override {
    return {lanes_.data(), sizeof(DeltaLane)};
  }

 private:
  bool StepNode(DeltaLane& t, const FlatCtx& c, MisStatus* status) {
    FLAT_BEGIN(t.pc);
    *status = MisStatus::kUndecided;
    t.in_mis = false;
    t.epoch_start = 0;
    for (t.g = 0; t.g < guesses_.size(); ++t.g) {
      // Spans the verification window; the nested epoch's "luby-phase"
      // annotations take over from there.
      c.Phase("delta-epoch", guesses_[t.g]);
      t.verify_end = t.epoch_start + verify_rounds_[t.g];
      // --- 1. Verification window ---------------------------------------
      if (t.in_mis) {
        for (t.it = 0; t.it < params_.verify_reps && t.in_mis; ++t.it) {
          if (c.Rand().Bit()) {
            t.bk.Start();
            FLAT_AWAIT(StepSndE(t.bk, c, 1, guesses_[t.g]));
          } else {
            t.bk.Start();
            FLAT_AWAIT(StepRecE(t.bk, c, 1, guesses_[t.g], guesses_[t.g]));
            if (t.bk.heard) {
              t.in_mis = false;  // independence violation: retry from scratch
              *status = MisStatus::kUndecided;
            }
          }
        }
      }
      FLAT_SLEEP_UNTIL(c, t.verify_end);

      // --- 2. Algorithm 2 epoch with Δ = guess --------------------------
      if (!t.in_mis) *status = MisStatus::kUndecided;
      t.epoch.Start();
      FLAT_AWAIT(StepNoCdEpoch(t.epoch, c, epochs_[t.g], scheds_[t.g],
                               t.verify_end, &t.in_mis, status));
      t.epoch_start = t.verify_end + epoch_rounds_[t.g];
      FLAT_SLEEP_UNTIL(c, t.epoch_start);
    }
    FLAT_END();
  }

  DeltaDoublingParams params_;
  std::vector<MisStatus>* out_;
  std::vector<std::uint32_t> guesses_;
  std::vector<NoCdParams> epochs_;
  std::vector<NoCdSchedule> scheds_;
  std::vector<Round> verify_rounds_;
  std::vector<Round> epoch_rounds_;
  std::vector<DeltaLane> lanes_;
};

#undef FLAT_BEGIN
#undef FLAT_END
#undef FLAT_TRANSMIT
#undef FLAT_LISTEN
#undef FLAT_SLEEP_FOR
#undef FLAT_SLEEP_UNTIL
#undef FLAT_AWAIT

}  // namespace

std::unique_ptr<FlatProtocol> FlatMisCdProtocol(CdParams params,
                                                std::vector<MisStatus>* out,
                                                NodeId num_nodes) {
  EMIS_EXPECTS(out != nullptr, "output vector required");
  return std::make_unique<FlatMisCd>(params, out, num_nodes);
}

std::unique_ptr<FlatProtocol> FlatMisNoCdProtocol(NoCdParams params,
                                                  std::vector<MisStatus>* out,
                                                  NodeId num_nodes) {
  EMIS_EXPECTS(out != nullptr, "output vector required");
  return std::make_unique<FlatMisNoCd>(params, out, num_nodes);
}

std::unique_ptr<FlatProtocol> FlatSimulatedCdMisProtocol(
    SimCdParams params, std::vector<MisStatus>* out, NodeId num_nodes) {
  EMIS_EXPECTS(out != nullptr, "output vector required");
  return std::make_unique<FlatSimulatedCdMis>(params, out, num_nodes);
}

std::unique_ptr<FlatProtocol> FlatGhaffariMisProtocol(
    GhaffariParams params, std::vector<MisStatus>* out, NodeId num_nodes) {
  EMIS_EXPECTS(out != nullptr, "output vector required");
  return std::make_unique<FlatGhaffariMis>(params, out, num_nodes);
}

std::unique_ptr<FlatProtocol> FlatDeltaDoublingMisProtocol(
    DeltaDoublingParams params, std::vector<MisStatus>* out, NodeId num_nodes) {
  EMIS_REQUIRE(out != nullptr, "output vector required");
  return std::make_unique<FlatDeltaDoublingMis>(params, out, num_nodes);
}

}  // namespace emis
