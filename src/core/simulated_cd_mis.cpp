#include "core/simulated_cd_mis.hpp"

#include "core/contracts.hpp"

namespace emis {

proc::Task<MisStatus> SimulatedCdMisRun(NodeApi api, SimCdParams params) {
  const Round start = api.Now();
  const Round bitty = params.BittyRounds();
  const Round phase_rounds = params.PhaseRounds();

  for (std::uint32_t phase = 0; phase < params.luby_phases; ++phase) {
    const Round phase_start = start + static_cast<Round>(phase) * phase_rounds;
    const Round check_start = phase_start + static_cast<Round>(params.rank_bits) * bitty;
    if (params.annotate_phases) api.Phase("luby-phase", phase);

    bool lost = false;
    for (std::uint32_t j = 0; j < params.rank_bits && !lost; ++j) {
      if (api.Rand().Bit()) {
        co_await SndBackoff(api, params.style, params.BittyReps(), params.delta);
      } else {
        const bool heard = co_await RecBackoff(api, params.style, params.BittyReps(),
                                               params.delta, params.delta_est);
        if (heard) {
          lost = true;
          // Sleep out the remaining Bitty phases of this competition.
          co_await api.SleepUntil(check_start);
        }
      }
    }

    if (!lost) {
      // Winner: announce inclusion during the check backoff, then decide.
      co_await SndBackoff(api, params.style, params.reps, params.delta);
      co_return MisStatus::kInMis;
    }
    const bool winner_nearby = co_await RecBackoff(api, params.style, params.reps,
                                                   params.delta, params.delta_est);
    if (winner_nearby) co_return MisStatus::kOutMis;
  }
  co_return MisStatus::kUndecided;
}

namespace {

proc::Task<void> Standalone(NodeApi api, SimCdParams params,
                            std::vector<MisStatus>* out) {
  params.annotate_phases = true;
  (*out)[api.Id()] = MisStatus::kUndecided;
  (*out)[api.Id()] = co_await SimulatedCdMisRun(api, params);
  // Standalone terminal decision; the composable run above is also used as
  // the LowDegreeMIS subroutine, where the caller keeps acting afterwards.
  api.Retire();
}

}  // namespace

ProtocolFactory SimulatedCdMisProtocol(SimCdParams params, std::vector<MisStatus>* out) {
  EMIS_EXPECTS(out != nullptr, "output vector required");
  return [params, out](NodeApi api) { return Standalone(api, params, out); };
}

}  // namespace emis
