// Backoff procedures for the no-CD model.
//
// Energy-efficient k-repeated backoff (paper Algorithm 4, Appendix C):
//   * Snd-EBackoff(k, Δ): the sender transmits in exactly one round of each
//     ⌈log Δ⌉-round iteration — the slot is geometric(1/2) capped at the
//     window — and sleeps otherwise. Awake exactly k rounds (Lemma 8).
//   * Rec-EBackoff(k, Δ, Δ_est): the receiver listens through the first
//     ⌈log Δ_est⌉ rounds of each iteration until it hears a message, then
//     sleeps for the remainder of the whole backoff. Awake O(k log Δ_est)
//     rounds (Lemma 8); if ≤ Δ_est neighbors run Snd-EBackoff concurrently it
//     detects them with probability ≥ 1 - (7/8)^k (Lemma 9).
//
// Traditional Decay (Bar-Yehuda–Goldreich–Itai), used by the energy-naive
// baselines: every participant is awake for all k·⌈log Δ⌉ rounds; senders
// transmit a geometric prefix of each iteration.
//
// All four procedures take exactly k·⌈log Δ⌉ rounds of wall-clock time
// regardless of outcomes, so concurrent callers stay synchronized.
#pragma once

#include <optional>

#include "core/params.hpp"
#include "radio/process.hpp"

namespace emis {

/// Sender side of the energy-efficient k-repeated backoff.
proc::Task<void> SndEBackoff(NodeApi api, std::uint32_t k, std::uint32_t delta);

/// Receiver side; returns true iff a message was heard. `delta_est` bounds
/// how long the receiver listens per iteration (defaults to Δ at call sites
/// that have no better estimate).
proc::Task<bool> RecEBackoff(NodeApi api, std::uint32_t k, std::uint32_t delta,
                             std::uint32_t delta_est);

/// Sender side of traditional Decay: awake the entire backoff.
proc::Task<void> SndDecay(NodeApi api, std::uint32_t k, std::uint32_t delta);

/// Receiver side of traditional Decay: listens every round, no early sleep.
proc::Task<bool> RecDecay(NodeApi api, std::uint32_t k, std::uint32_t delta);

/// RADIO-CONGEST variants for the application layer (apps/): the paper's
/// algorithms are unary, but a backoff can just as well carry an O(log n)-
/// bit payload — e.g. a cluster head announcing its identifier.
/// Sender side: like SndEBackoff but transmits `payload`.
proc::Task<void> SndEBackoffPayload(NodeApi api, std::uint32_t k, std::uint32_t delta,
                                    std::uint64_t payload);

/// Receiver side: like RecEBackoff but captures the first cleanly received
/// payload. Returns the payload, or nullopt if nothing was received in k
/// iterations. (In the CD model a collision wakes nobody here: only a clean
/// single-transmitter message carries data.)
proc::Task<std::optional<std::uint64_t>> RecEBackoffCapture(NodeApi api,
                                                            std::uint32_t k,
                                                            std::uint32_t delta,
                                                            std::uint32_t delta_est);

/// Style-dispatched wrappers so protocol code can be parameterized by
/// BackoffStyle without duplicating control flow.
proc::Task<void> SndBackoff(NodeApi api, BackoffStyle style, std::uint32_t k,
                            std::uint32_t delta);
proc::Task<bool> RecBackoff(NodeApi api, BackoffStyle style, std::uint32_t k,
                            std::uint32_t delta, std::uint32_t delta_est);

}  // namespace emis
