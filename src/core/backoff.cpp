#include "core/backoff.hpp"

#include <algorithm>

namespace emis {

proc::Task<void> SndEBackoff(NodeApi api, std::uint32_t k, std::uint32_t delta) {
  const std::uint32_t window = BackoffWindow(delta);
  for (std::uint32_t i = 0; i < k; ++i) {
    // Slot x ∈ {1..window}: geometric(1/2) capped at the window, so the last
    // slot absorbs the tail (transmit prob. 2^-(window-1), paper App. C).
    const std::uint32_t x = std::min(api.Rand().GeometricHalf(), window);
    co_await api.SleepFor(x - 1);
    co_await api.Transmit(1);
    co_await api.SleepFor(window - x);
  }
}

proc::Task<bool> RecEBackoff(NodeApi api, std::uint32_t k, std::uint32_t delta,
                             std::uint32_t delta_est) {
  const std::uint32_t window = BackoffWindow(delta);
  const std::uint32_t listen_window = std::min(BackoffWindow(delta_est), window);
  const Round end_round = api.Now() + BackoffRounds(k, delta);
  bool heard = false;
  for (std::uint32_t i = 0; i < k && !heard; ++i) {
    const Round iter_end = end_round - static_cast<Round>(k - 1 - i) * window;
    for (std::uint32_t j = 0; j < listen_window; ++j) {
      const Reception r = co_await api.Listen();
      if (r.Busy()) {
        heard = true;
        break;
      }
    }
    co_await api.SleepUntil(iter_end);
  }
  // Heard early: sleep out the rest of the backoff to stay synchronized.
  co_await api.SleepUntil(end_round);
  co_return heard;
}

proc::Task<void> SndEBackoffPayload(NodeApi api, std::uint32_t k, std::uint32_t delta,
                                    std::uint64_t payload) {
  const std::uint32_t window = BackoffWindow(delta);
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::uint32_t x = std::min(api.Rand().GeometricHalf(), window);
    co_await api.SleepFor(x - 1);
    co_await api.Transmit(payload);
    co_await api.SleepFor(window - x);
  }
}

proc::Task<std::optional<std::uint64_t>> RecEBackoffCapture(NodeApi api,
                                                            std::uint32_t k,
                                                            std::uint32_t delta,
                                                            std::uint32_t delta_est) {
  const std::uint32_t window = BackoffWindow(delta);
  const std::uint32_t listen_window = std::min(BackoffWindow(delta_est), window);
  const Round end_round = api.Now() + BackoffRounds(k, delta);
  std::optional<std::uint64_t> captured;
  for (std::uint32_t i = 0; i < k && !captured; ++i) {
    const Round iter_end = end_round - static_cast<Round>(k - 1 - i) * window;
    for (std::uint32_t j = 0; j < listen_window; ++j) {
      const Reception r = co_await api.Listen();
      if (r.kind == ReceptionKind::kMessage) {
        captured = r.payload;
        break;
      }
    }
    co_await api.SleepUntil(iter_end);
  }
  co_await api.SleepUntil(end_round);
  co_return captured;
}

proc::Task<void> SndDecay(NodeApi api, std::uint32_t k, std::uint32_t delta) {
  api.SubPhase("decay");
  const std::uint32_t window = BackoffWindow(delta);
  for (std::uint32_t i = 0; i < k; ++i) {
    // Transmit a geometric prefix: all senders start together and each keeps
    // transmitting with probability 1/2 per round — the classic Decay.
    const std::uint32_t x = std::min(api.Rand().GeometricHalf(), window);
    for (std::uint32_t j = 0; j < window; ++j) {
      if (j < x) {
        co_await api.Transmit(1);
      } else {
        // Stay awake (the traditional protocol keeps everyone up); what a
        // dropped-out sender hears carries no information for it.
        co_await api.Listen();
      }
    }
  }
}

proc::Task<bool> RecDecay(NodeApi api, std::uint32_t k, std::uint32_t delta) {
  api.SubPhase("decay");
  const Round total = BackoffRounds(k, delta);
  bool heard = false;
  for (Round j = 0; j < total; ++j) {
    const Reception r = co_await api.Listen();
    heard = heard || r.Busy();
  }
  co_return heard;
}

proc::Task<void> SndBackoff(NodeApi api, BackoffStyle style, std::uint32_t k,
                            std::uint32_t delta) {
  if (style == BackoffStyle::kEnergyEfficient) {
    co_await SndEBackoff(api, k, delta);
  } else {
    co_await SndDecay(api, k, delta);
  }
}

proc::Task<bool> RecBackoff(NodeApi api, BackoffStyle style, std::uint32_t k,
                            std::uint32_t delta, std::uint32_t delta_est) {
  if (style == BackoffStyle::kEnergyEfficient) {
    co_return co_await RecEBackoff(api, k, delta, delta_est);
  }
  co_return co_await RecDecay(api, k, delta);
}

}  // namespace emis
