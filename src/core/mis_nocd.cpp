#include "core/mis_nocd.hpp"

#include "core/backoff.hpp"
#include "core/competition.hpp"
#include "core/contracts.hpp"
#include "core/ghaffari_mis.hpp"
#include "core/simulated_cd_mis.hpp"

namespace emis {

proc::Task<void> MisNoCdEpoch(NodeApi api, NoCdParams params, Round start,
                              bool* in_mis, MisStatus* status) {
  const NoCdSchedule sched = NoCdSchedule::Of(params);

  for (std::uint32_t i = 0; i < params.luby_phases; ++i) {
    const Round phase_start = start + static_cast<Round>(i) * sched.phase;

    // Theorem 10's deterministic threshold: a node over its energy budget
    // decides arbitrarily and sleeps forever.
    if (params.energy_cap != 0 && !*in_mis &&
        api.EnergySpent() >= params.energy_cap) {
      *status = MisStatus::kOutMis;
      co_return;
    }

    if (*in_mis) {
      // MIS nodes sleep through the competition and announce in both deep
      // checks and the shallow check (Alg. 2 lines 4, 7, 15, 26).
      co_await api.SleepUntil(phase_start + sched.CompetitionEnd());
      api.SubPhase("deep-check");
      co_await SndEBackoff(api, params.deep_reps, params.delta);
      co_await SndEBackoff(api, params.deep_reps, params.delta);
      co_await api.SleepUntil(phase_start + sched.LowDegreeEnd());
      api.SubPhase("shallow-check");
      co_await SndEBackoff(api, params.shallow_reps, params.delta);
      continue;
    }
    if (*status != MisStatus::kUndecided) co_return;  // decided earlier

    co_await api.SleepUntil(phase_start);
    api.Phase("luby-phase", i);
    api.SubPhase("competition");
    const CompetitionOutcome outcome = co_await Competition(api, params);

    switch (outcome) {
      case CompetitionOutcome::kWin: {
        // Deep check A: listen for MIS neighbors before joining (lines 8-11).
        api.SubPhase("deep-check");
        const bool heard =
            co_await RecEBackoff(api, params.deep_reps, params.delta, params.delta);
        if (heard) {
          *status = MisStatus::kOutMis;
          co_return;  // decided; caller may terminate or resync
        }
        *in_mis = true;
        *status = MisStatus::kInMis;
        // Deep check B: announce as a fresh MIS node so committed neighbors
        // hear us (lines 14-15), then sleep through the LowDegreeMIS window.
        co_await SndEBackoff(api, params.deep_reps, params.delta);
        co_await api.SleepUntil(phase_start + sched.LowDegreeEnd());
        api.SubPhase("shallow-check");
        co_await SndEBackoff(api, params.shallow_reps, params.delta);
        break;
      }
      case CompetitionOutcome::kCommit: {
        // Committed nodes sleep through deep check A (line 12)...
        co_await api.SleepUntil(phase_start + sched.FirstDeepEnd());
        // ...then deep-check for MIS neighbors, old and fresh (lines 17-20).
        api.SubPhase("deep-check");
        const bool heard =
            co_await RecEBackoff(api, params.deep_reps, params.delta, params.delta);
        if (heard) {
          *status = MisStatus::kOutMis;
          co_return;
        }
        // Survivors induce an O(log n)-degree subgraph (Cor. 13): resolve
        // with LowDegreeMIS inside the T_G window (lines 21-23).
        api.SubPhase("low-degree-mis");
        const MisStatus sub =
            params.low_degree_kind == LowDegreeKind::kGhaffari
                ? co_await GhaffariMisRun(api, params.low_degree_ghaffari)
                : co_await SimulatedCdMisRun(api, params.low_degree);
        if (sub == MisStatus::kInMis) {
          *in_mis = true;
          *status = MisStatus::kInMis;
        } else if (sub == MisStatus::kOutMis) {
          *status = MisStatus::kOutMis;
          co_return;  // dominated within the committed subgraph
        }
        co_await api.SleepUntil(phase_start + sched.LowDegreeEnd());
        // Shallow check (lines 26-30).
        api.SubPhase("shallow-check");
        if (*in_mis) {
          co_await SndEBackoff(api, params.shallow_reps, params.delta);
        } else {
          const bool shallow = co_await RecEBackoff(api, params.shallow_reps,
                                                    params.delta, params.delta);
          if (shallow) {
            *status = MisStatus::kOutMis;
            co_return;
          }
        }
        break;
      }
      case CompetitionOutcome::kLose: {
        // Losers sleep until the shallow check (lines 12, 24), then listen
        // once for an MIS neighbor (lines 28-30).
        co_await api.SleepUntil(phase_start + sched.LowDegreeEnd());
        api.SubPhase("shallow-check");
        const bool shallow = co_await RecEBackoff(api, params.shallow_reps,
                                                  params.delta, params.delta);
        if (shallow) {
          *status = MisStatus::kOutMis;
          co_return;
        }
        break;
      }
    }
  }
  // Phases exhausted while undecided (probability 1/poly(n)).
}

proc::Task<void> MisNoCdNode(NodeApi api, NoCdParams params, std::vector<MisStatus>* out) {
  MisStatus& status = (*out)[api.Id()];
  status = MisStatus::kUndecided;
  bool in_mis = false;
  co_await MisNoCdEpoch(api, params, 0, &in_mis, &status);
  // Terminal: in-MIS nodes have announced through their last phase, killed
  // nodes returned early — either way this node never acts again. The epoch
  // itself must not retire (Δ-doubling re-enters it every guess).
  api.Retire();
}

ProtocolFactory MisNoCdProtocol(NoCdParams params, std::vector<MisStatus>* out) {
  EMIS_EXPECTS(out != nullptr, "output vector required");
  return [params, out](NodeApi api) { return MisNoCdNode(api, params, out); };
}

}  // namespace emis
