// Round-efficient MIS for the no-CD model — a reconstruction of §4.2's
// LowDegreeMIS (Davies'23: simulate Ghaffari's SODA'16 MIS over the radio
// channel with Decay-based primitives).
//
// Ghaffari's algorithm, per iteration: node v marks itself with probability
// p_v; a marked node with no marked neighbor joins the MIS; p_v halves when
// the neighborhood is "crowded" (effective degree Σ_{u∈N(v)} p_u ≥ 2) and
// doubles (capped at 1/2) otherwise. O(log n) iterations suffice whp, and
// the analysis is robust to constant-factor errors in the crowdedness test.
//
// Radio simulation of one iteration (fixed schedule, all parts Θ(log n) or
// Θ(log n log Δ) timesteps — total O(log² n log Δ) rounds, the §4.2 bound):
//   1. Mark exchange: each *marked* node plays k₁ backoff iterations, each
//      round flipping sender/listener (no sender-side CD, so detection needs
//      the listener role); hearing anything implies a marked neighbor.
//      Unmarked nodes sleep — this is what keeps the simulation energy-
//      compatible with Theorem 10's budget on the committed subgraph.
//   2. Join + announce: marked nodes that heard nothing join and run
//      Snd-EBackoff(k₂); everyone else listens (Rec-EBackoff) and leaves as
//      out-MIS upon hearing.
//   3. Effective-degree probe: L = ⌈log Δ⌉+2 subsampling levels of m slots;
//      at level j every active node transmits w.p. p_v·2⁻ʲ, else listens.
//      If Σp ≈ 2ʲ, level j's clean-reception rate is Θ(1); the crowdedness
//      test is "some level j ≥ 1 heard in ≥ θ·m slots". This replaces
//      Davies' EstimateEffectiveDegree, which the brief announcement does
//      not specify; constants below are validated empirically (see
//      tests/test_ghaffari.cpp and bench_nocd_rounds).
#pragma once

#include <vector>

#include "core/params.hpp"
#include "core/status.hpp"
#include "radio/process.hpp"

namespace emis {

// GhaffariParams lives in core/params.hpp (alongside the other parameter
// structs) so NoCdParams can embed it as a LowDegreeMIS alternative.

/// Runs the simulation from the caller's current round (same timing contract
/// as SimulatedCdMisRun: all participants enter together; decided nodes
/// return early; kUndecided after the full TotalRounds() span).
proc::Task<MisStatus> GhaffariMisRun(NodeApi api, GhaffariParams params);

/// Standalone protocol wrapper (the round-efficient no-CD MIS baseline).
ProtocolFactory GhaffariMisProtocol(GhaffariParams params, std::vector<MisStatus>* out);

}  // namespace emis
