#include "verify/mis_checker.hpp"

#include <sstream>

namespace emis {

MisReport CheckMis(const Graph& graph, const std::vector<MisStatus>& status) {
  EMIS_REQUIRE(status.size() == graph.NumNodes(),
               "status vector size must match the graph");
  MisReport report;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    switch (status[v]) {
      case MisStatus::kUndecided:
        report.undecided.push_back(v);
        break;
      case MisStatus::kInMis:
        for (NodeId w : graph.Neighbors(v)) {
          if (v < w && status[w] == MisStatus::kInMis) {
            report.dependent_edges.push_back({v, w});
          }
        }
        break;
      case MisStatus::kOutMis: {
        bool dominated = false;
        for (NodeId w : graph.Neighbors(v)) {
          if (status[w] == MisStatus::kInMis) {
            dominated = true;
            break;
          }
        }
        if (!dominated) report.undominated.push_back(v);
        break;
      }
    }
  }
  return report;
}

bool IsValidMis(const Graph& graph, const std::vector<MisStatus>& status) {
  return CheckMis(graph, status).IsValidMis();
}

std::string MisReport::Describe() const {
  if (IsValidMis()) return "";
  std::ostringstream os;
  auto list_nodes = [&os](const std::vector<NodeId>& nodes) {
    const std::size_t shown = std::min<std::size_t>(nodes.size(), 10);
    for (std::size_t i = 0; i < shown; ++i) os << (i ? "," : "") << nodes[i];
    if (nodes.size() > shown) os << ",...";
  };
  if (!undecided.empty()) {
    os << undecided.size() << " undecided node(s) [";
    list_nodes(undecided);
    os << "] ";
  }
  if (!dependent_edges.empty()) {
    os << dependent_edges.size() << " intra-set edge(s) [";
    const std::size_t shown = std::min<std::size_t>(dependent_edges.size(), 10);
    for (std::size_t i = 0; i < shown; ++i) {
      os << (i ? "," : "") << "{" << dependent_edges[i].u << "-"
         << dependent_edges[i].v << "}";
    }
    if (dependent_edges.size() > shown) os << ",...";
    os << "] ";
  }
  if (!undominated.empty()) {
    os << undominated.size() << " undominated out-node(s) [";
    list_nodes(undominated);
    os << "]";
  }
  return os.str();
}

}  // namespace emis
