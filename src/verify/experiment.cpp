#include "verify/experiment.hpp"

#include <cmath>

namespace emis {

namespace families {

GraphFactory SparseErdosRenyi(double avg_degree) {
  return [avg_degree](NodeId n, Rng& rng) {
    const double p = n > 1 ? std::min(1.0, avg_degree / (n - 1)) : 0.0;
    return gen::ErdosRenyi(n, p, rng);
  };
}

GraphFactory PolynomialDegreeErdosRenyi() {
  return [](NodeId n, Rng& rng) {
    const double p = n > 1 ? std::min(1.0, 1.0 / std::sqrt(static_cast<double>(n))) : 0.0;
    return gen::ErdosRenyi(n, p, rng);
  };
}

GraphFactory UnitDisk(double avg_degree) {
  return [avg_degree](NodeId n, Rng& rng) {
    // Expected degree ≈ n * pi * r^2 (interior nodes): solve r.
    const double r =
        n > 1 ? std::sqrt(avg_degree / (M_PI * static_cast<double>(n))) : 0.0;
    return gen::RandomGeometric(n, r, rng);
  };
}

GraphFactory LowerBoundFamily() {
  return [](NodeId n, Rng&) { return gen::MatchingPlusIsolated(n); };
}

GraphFactory StarFamily() {
  return [](NodeId n, Rng&) { return gen::Star(n); };
}

GraphFactory CompleteFamily() {
  return [](NodeId n, Rng&) { return gen::Complete(n); };
}

GraphFactory TreeFamily() {
  return [](NodeId n, Rng& rng) { return gen::RandomTree(n, rng); };
}

}  // namespace families

std::vector<SweepPoint> RunSweep(const SweepConfig& config) {
  EMIS_REQUIRE(config.factory != nullptr, "sweep needs a graph factory");
  std::vector<SweepPoint> points;
  points.reserve(config.sizes.size());
  for (NodeId n : config.sizes) {
    SweepPoint point;
    point.n = n;
    for (std::uint32_t s = 0; s < config.seeds_per_size; ++s) {
      const std::uint64_t seed =
          config.seed_base + static_cast<std::uint64_t>(n) * 1'000'003 + s;
      Rng topo_rng(seed ^ 0x9e3779b97f4a7c15ULL);
      const Graph graph = config.factory(n, topo_rng);
      MisRunConfig run_config{
          .algorithm = config.algorithm, .preset = config.preset, .seed = seed};
      if (config.delta_unknown) run_config.delta_estimate = n;
      if (config.tweak) config.tweak(run_config, graph);
      const MisRunResult run = RunMis(graph, run_config);
      ++point.runs;
      point.failures += run.Valid() ? 0 : 1;
      point.max_energy.Add(static_cast<double>(run.energy.MaxAwake()));
      point.avg_energy.Add(run.energy.AverageAwake());
      point.rounds.Add(static_cast<double>(run.stats.rounds_used));
      point.mis_size.Add(static_cast<double>(run.MisSize()));
      point.max_degree.Add(static_cast<double>(graph.MaxDegree()));
    }
    points.push_back(point);
  }
  return points;
}

std::vector<double> Sizes(const std::vector<SweepPoint>& points) {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(static_cast<double>(p.n));
  return out;
}

std::vector<double> MeanMaxEnergy(const std::vector<SweepPoint>& points) {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.max_energy.mean);
  return out;
}

std::vector<double> MeanRounds(const std::vector<SweepPoint>& points) {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.rounds.mean);
  return out;
}

std::string RenderSweep(const std::string& title,
                        const std::vector<SweepPoint>& points) {
  Table table({"n", "Δ(avg)", "energy max(avg)", "energy max(max)", "energy avg",
               "rounds(avg)", "|MIS|(avg)", "ok"});
  for (const auto& p : points) {
    table.AddRow({std::to_string(p.n), Fmt(p.max_degree.mean, 1),
                  Fmt(p.max_energy.mean, 1), Fmt(p.max_energy.max, 0),
                  Fmt(p.avg_energy.mean, 1), Fmt(p.rounds.mean, 0),
                  Fmt(p.mis_size.mean, 1),
                  std::to_string(p.runs - p.failures) + "/" + std::to_string(p.runs)});
  }
  return table.Render(title);
}

}  // namespace emis
