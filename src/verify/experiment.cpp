#include "verify/experiment.hpp"

#include <cmath>
#include <memory>
#include <optional>
#include <ostream>

#include "obs/scoped_timer.hpp"
#include "verify/parallel.hpp"

namespace emis {

namespace families {

GraphFactory SparseErdosRenyi(double avg_degree) {
  return [avg_degree](NodeId n, Rng& rng) {
    const double p = n > 1 ? std::min(1.0, avg_degree / (n - 1)) : 0.0;
    return gen::ErdosRenyi(n, p, rng);
  };
}

GraphFactory PolynomialDegreeErdosRenyi() {
  return [](NodeId n, Rng& rng) {
    const double p = n > 1 ? std::min(1.0, 1.0 / std::sqrt(static_cast<double>(n))) : 0.0;
    return gen::ErdosRenyi(n, p, rng);
  };
}

GraphFactory UnitDisk(double avg_degree) {
  return [avg_degree](NodeId n, Rng& rng) {
    // Expected degree ≈ n * pi * r^2 (interior nodes): solve r.
    const double r =
        n > 1 ? std::sqrt(avg_degree / (M_PI * static_cast<double>(n))) : 0.0;
    return gen::RandomGeometric(n, r, rng);
  };
}

GraphFactory LowerBoundFamily() {
  return [](NodeId n, Rng&) { return gen::MatchingPlusIsolated(n); };
}

GraphFactory StarFamily() {
  return [](NodeId n, Rng&) { return gen::Star(n); };
}

GraphFactory CompleteFamily() {
  return [](NodeId n, Rng&) { return gen::Complete(n); };
}

GraphFactory TreeFamily() {
  return [](NodeId n, Rng& rng) { return gen::RandomTree(n, rng); };
}

}  // namespace families

namespace {

/// Everything the ordered reduction needs from one (n, seed) trial. Trials
/// write only their own slot, so the parallel fan-out shares no state.
struct TrialOutcome {
  bool valid = false;
  double max_energy = 0.0;
  double avg_energy = 0.0;
  double rounds = 0.0;
  double mis_size = 0.0;
  double max_degree = 0.0;
  double seconds = 0.0;
  std::unique_ptr<MisRunResult> full;  ///< retained only for config.observe
  /// Per-trial observability shards, merged on the reducing thread in
  /// (size, seed) order — the shard-and-merge discipline that keeps every
  /// aggregate bit-identical across jobs counts.
  std::unique_ptr<obs::PhaseAggregate> phases;
  std::unique_ptr<obs::AttributionTable> attribution;
  std::unique_ptr<std::string> telemetry;  ///< drained NDJSON blob
};

}  // namespace

std::vector<SweepPoint> RunSweep(const SweepConfig& config) {
  return RunSweep(config, 1, nullptr);
}

std::vector<SweepPoint> RunSweep(const SweepConfig& config, unsigned jobs,
                                 SweepRunInfo* info) {
  EMIS_REQUIRE(config.factory != nullptr, "sweep needs a graph factory");
  if (jobs == 0) jobs = par::DefaultJobs();
  const double sweep_begin = obs::MonotonicSeconds();

  const std::uint64_t per_size = config.seeds_per_size;
  const std::uint64_t total = config.sizes.size() * per_size;
  std::vector<TrialOutcome> outcomes(total);
  // One metrics shard per worker: the scheduler's cached metric handles stay
  // plain (non-atomic) because no two threads share a registry.
  std::vector<obs::MetricsRegistry> shards(config.metrics != nullptr ? jobs : 0);

  if (total > 0) {
    par::ParallelFor(jobs, total, [&](std::uint64_t t, unsigned worker) {
      const double trial_begin = obs::MonotonicSeconds();
      const NodeId n = config.sizes[t / per_size];
      const auto s = static_cast<std::uint32_t>(t % per_size);
      const std::uint64_t seed =
          config.seed_base + static_cast<std::uint64_t>(n) * 1'000'003 + s;
      Rng topo_rng(seed ^ 0x9e3779b97f4a7c15ULL);
      const Graph graph = config.factory(n, topo_rng);
      MisRunConfig run_config{
          .algorithm = config.algorithm, .preset = config.preset, .seed = seed};
      run_config.resolution = config.resolution;
      run_config.compaction = config.compaction;
      run_config.engine = config.engine;
      run_config.shards = config.shards;
      if (config.delta_unknown) run_config.delta_estimate = n;
      if (config.tweak) config.tweak(run_config, graph);
      if (!shards.empty()) run_config.metrics = &shards[worker];

      // Per-trial observability collectors. The timeline is private to the
      // trial (it drives the ledger's phase context and the sink's phase
      // events); everything aggregates through the outcome slot, never
      // through shared state.
      const bool want_timeline = config.phases != nullptr ||
                                 config.attribution != nullptr ||
                                 config.telemetry_out != nullptr;
      obs::PhaseTimeline timeline;
      std::optional<obs::EnergyLedger> ledger;
      std::optional<obs::StreamSink> sink;
      if (want_timeline) run_config.timeline = &timeline;
      if (config.attribution != nullptr) {
        ledger.emplace(graph.NumNodes());
        run_config.ledger = &*ledger;
      }
      if (config.telemetry_out != nullptr) {
        sink.emplace(config.telemetry_config);
        run_config.telemetry = &*sink;
        obs::JsonValue begin = obs::JsonValue::MakeObject();
        begin.Set("event", "run_begin");
        begin.Set("n", static_cast<std::uint64_t>(n));
        begin.Set("seed_index", static_cast<std::uint64_t>(s));
        begin.Set("seed", seed);
        begin.Set("nodes", static_cast<std::uint64_t>(graph.NumNodes()));
        begin.Set("edges", graph.NumEdges());
        // Trial-private sink: the control event lands in this trial's own
        // bounded queue, drained into the outcome slot and merged serially
        // in (size, seed) order after the join — never a shared stream.
        // emis-lint: allow(observable-commit-order)
        sink->EmitControl(begin);
      }

      MisRunResult run = RunMis(graph, run_config);

      TrialOutcome& out = outcomes[t];
      out.valid = run.Valid();
      out.max_energy = static_cast<double>(run.energy.MaxAwake());
      out.avg_energy = run.energy.AverageAwake();
      out.rounds = static_cast<double>(run.stats.rounds_used);
      out.mis_size = static_cast<double>(run.MisSize());
      out.max_degree = static_cast<double>(graph.MaxDegree());
      out.seconds = obs::MonotonicSeconds() - trial_begin;
      if (config.phases != nullptr) {
        out.phases = std::make_unique<obs::PhaseAggregate>();
        out.phases->Accumulate(timeline);  // RunMis closed the spans
      }
      if (config.attribution != nullptr) {
        out.attribution = std::make_unique<obs::AttributionTable>();
        out.attribution->Accumulate(*ledger);
      }
      if (sink) {
        obs::JsonValue end = obs::JsonValue::MakeObject();
        end.Set("event", "run_end");
        end.Set("n", static_cast<std::uint64_t>(n));
        end.Set("seed_index", static_cast<std::uint64_t>(s));
        end.Set("rounds", run.stats.rounds_used);
        end.Set("mis_size", run.MisSize());
        end.Set("valid", run.Valid());
        end.Set("emitted_events", sink->EmittedEvents());
        end.Set("dropped_events", sink->DroppedEvents());
        // Same trial-private sink as run_begin above (serial merge after
        // the join keeps the global telemetry order jobs-invariant).
        // emis-lint: allow(observable-commit-order)
        sink->EmitControl(end);
        out.telemetry = std::make_unique<std::string>(sink->DrainToString());
      }
      if (config.observe) out.full = std::make_unique<MisRunResult>(std::move(run));
    });
  }

  // Merge shards in worker order, then reduce trials in (size, seed) order —
  // the exact accumulation sequence of the serial loop, so points (and any
  // floating-point summary derived from them) are bit-identical at any jobs.
  if (config.metrics != nullptr) {
    for (const obs::MetricsRegistry& shard : shards) config.metrics->Merge(shard);
  }
  std::vector<SweepPoint> points;
  points.reserve(config.sizes.size());
  if (info != nullptr) {
    info->jobs = jobs;
    info->point_wall_seconds.assign(config.sizes.size(), 0.0);
  }
  for (std::size_t i = 0; i < config.sizes.size(); ++i) {
    SweepPoint point;
    point.n = config.sizes[i];
    for (std::uint64_t s = 0; s < per_size; ++s) {
      const TrialOutcome& out = outcomes[i * per_size + s];
      ++point.runs;
      point.failures += out.valid ? 0 : 1;
      point.max_energy.Add(out.max_energy);
      point.avg_energy.Add(out.avg_energy);
      point.rounds.Add(out.rounds);
      point.mis_size.Add(out.mis_size);
      point.max_degree.Add(out.max_degree);
      if (info != nullptr) info->point_wall_seconds[i] += out.seconds;
      if (config.phases != nullptr && out.phases != nullptr) {
        config.phases->MergeFrom(*out.phases);
      }
      if (config.attribution != nullptr && out.attribution != nullptr) {
        config.attribution->MergeFrom(*out.attribution);
      }
      if (config.telemetry_out != nullptr && out.telemetry != nullptr) {
        *config.telemetry_out << *out.telemetry;
      }
      if (config.observe) {
        config.observe(point.n, static_cast<std::uint32_t>(s), *out.full);
      }
    }
    points.push_back(point);
  }
  if (info != nullptr) {
    info->wall_seconds = obs::MonotonicSeconds() - sweep_begin;
  }
  return points;
}

std::vector<double> Sizes(const std::vector<SweepPoint>& points) {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(static_cast<double>(p.n));
  return out;
}

std::vector<double> MeanMaxEnergy(const std::vector<SweepPoint>& points) {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.max_energy.mean);
  return out;
}

std::vector<double> MeanRounds(const std::vector<SweepPoint>& points) {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.rounds.mean);
  return out;
}

obs::JsonValue BuildSweepJson(const std::string& title,
                              const std::vector<SweepPoint>& points,
                              const SweepRunInfo* info) {
  obs::JsonValue sweep = obs::JsonValue::MakeObject();
  sweep.Set("title", title);
  if (info != nullptr) {
    sweep.Set("jobs", static_cast<std::uint64_t>(info->jobs));
    sweep.Set("wall_seconds", info->wall_seconds);
  }
  obs::JsonValue rows = obs::JsonValue::MakeArray();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    obs::JsonValue row = obs::JsonValue::MakeObject();
    row.Set("n", static_cast<std::uint64_t>(p.n));
    row.Set("runs", static_cast<std::uint64_t>(p.runs));
    row.Set("failures", static_cast<std::uint64_t>(p.failures));
    row.Set("max_energy_mean", p.max_energy.mean);
    row.Set("avg_energy_mean", p.avg_energy.mean);
    row.Set("rounds_mean", p.rounds.mean);
    row.Set("mis_size_mean", p.mis_size.mean);
    if (info != nullptr && i < info->point_wall_seconds.size()) {
      row.Set("wall_seconds", info->point_wall_seconds[i]);
    }
    rows.Push(std::move(row));
  }
  sweep.Set("points", std::move(rows));
  return sweep;
}

std::string RenderSweep(const std::string& title,
                        const std::vector<SweepPoint>& points) {
  Table table({"n", "Δ(avg)", "energy max(avg)", "energy max(max)", "energy avg",
               "rounds(avg)", "|MIS|(avg)", "ok"});
  for (const auto& p : points) {
    table.AddRow({std::to_string(p.n), Fmt(p.max_degree.mean, 1),
                  Fmt(p.max_energy.mean, 1), Fmt(p.max_energy.max, 0),
                  Fmt(p.avg_energy.mean, 1), Fmt(p.rounds.mean, 0),
                  Fmt(p.mis_size.mean, 1),
                  std::to_string(p.runs - p.failures) + "/" + std::to_string(p.runs)});
  }
  return table.Render(title);
}

}  // namespace emis
