#include "verify/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/contracts.hpp"

namespace emis::par {
namespace {

/// Set for the lifetime of a pool thread: nested ParallelFor calls made
/// from inside a worker run inline instead of dispatching (a trial that
/// runs a sharded scheduler must not wait on the pool it is occupying).
thread_local bool tl_in_pool_worker = false;

std::atomic<std::uint64_t> g_barrier_waits{0};

/// One dispatch's shared state, stack-allocated by the caller. Workers
/// claim indices from `cursor`; the first exception wins and stops further
/// claiming.
struct Dispatch {
  const IndexFn* fn = nullptr;
  std::uint64_t count = 0;
  std::atomic<std::uint64_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  void RunWorker(unsigned worker) noexcept {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::uint64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        (*fn)(i, worker);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
};

/// The process-wide persistent pool. Thread `slot` (1-based) always runs as
/// worker index `slot`, so the worker→thread mapping is stable across
/// dispatches (pinned by test_parallel.cpp). Destroyed at process exit with
/// a clean shutdown handshake, so sanitizer runs see joined threads.
class Pool {
 public:
  static Pool& Instance() {
    static Pool pool;
    return pool;
  }

  /// Runs `dispatch` on the caller (worker 0) plus `jobs - 1` pool workers.
  /// Serializes dispatches: the pool runs one generation at a time, and the
  /// caller owns the generation until every participant drained.
  void Run(unsigned jobs, Dispatch& dispatch) {
    const std::lock_guard<std::mutex> dispatch_lock(dispatch_mutex_);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      EnsureThreads(jobs - 1);
      current_ = &dispatch;
      participants_ = jobs - 1;
      remaining_ = jobs - 1;
      ++generation_;
      work_cv_.notify_all();
    }
    // The caller is worker 0 for this generation: mark it in-pool so a
    // nested ParallelFor made from its slice runs inline instead of
    // re-entering Run() and self-deadlocking on dispatch_mutex_. Run() is
    // only reachable with the flag clear, so restoring to false is exact.
    tl_in_pool_worker = true;
    dispatch.RunWorker(0);
    tl_in_pool_worker = false;
    std::unique_lock<std::mutex> lock(mutex_);
    if (remaining_ != 0) {
      g_barrier_waits.fetch_add(1, std::memory_order_relaxed);
      done_cv_.wait(lock, [this] { return remaining_ == 0; });
    }
    current_ = nullptr;
  }

  unsigned Threads() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<unsigned>(threads_.size());
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
      work_cv_.notify_all();
    }
    for (std::thread& t : threads_) t.join();
  }

  /// Grows the pool to at least `want` parked threads. Caller holds mutex_.
  void EnsureThreads(unsigned want) {
    while (threads_.size() < want) {
      const unsigned slot = static_cast<unsigned>(threads_.size()) + 1;
      threads_.emplace_back([this, slot] { ThreadMain(slot); });
    }
  }

  void ThreadMain(unsigned slot) {
    tl_in_pool_worker = true;
    std::unique_lock<std::mutex> lock(mutex_);
    std::uint64_t seen = 0;
    for (;;) {
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      if (slot > participants_) continue;  // parked for this dispatch
      Dispatch* dispatch = current_;
      lock.unlock();
      dispatch->RunWorker(slot);
      lock.lock();
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }

  std::mutex dispatch_mutex_;  ///< one generation in flight at a time

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  Dispatch* current_ = nullptr;
  unsigned participants_ = 0;
  unsigned remaining_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace

unsigned DefaultJobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(unsigned jobs, std::uint64_t count, const IndexFn& fn) {
  EMIS_EXPECTS(fn != nullptr, "ParallelFor needs a work function");
  if (jobs == 0) jobs = DefaultJobs();
  if (count == 0) return;

  if (jobs <= 1 || count <= 1 || tl_in_pool_worker) {
    for (std::uint64_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  if (jobs > count) jobs = static_cast<unsigned>(count);

  Dispatch dispatch;
  dispatch.fn = &fn;
  dispatch.count = count;
  Pool::Instance().Run(jobs, dispatch);

  EMIS_ENSURES(dispatch.failed.load(std::memory_order_relaxed) ||
                   dispatch.cursor.load(std::memory_order_relaxed) >= count,
               "workers exited before the index range drained");
  if (dispatch.first_error != nullptr) {
    std::rethrow_exception(dispatch.first_error);
  }
}

std::uint64_t BarrierWaits() noexcept {
  return g_barrier_waits.load(std::memory_order_relaxed);
}

unsigned PoolThreads() noexcept { return Pool::Instance().Threads(); }

}  // namespace emis::par
