#include "verify/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/contracts.hpp"

namespace emis::par {

unsigned DefaultJobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(unsigned jobs, std::uint64_t count, const IndexFn& fn) {
  EMIS_EXPECTS(fn != nullptr, "ParallelFor needs a work function");
  if (jobs == 0) jobs = DefaultJobs();
  if (count == 0) return;

  if (jobs <= 1 || count <= 1) {
    for (std::uint64_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  if (jobs > count) jobs = static_cast<unsigned>(count);

  std::atomic<std::uint64_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker_loop = [&](unsigned worker) {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::uint64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i, worker);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // The caller is worker 0; jobs-1 extra threads join it. Spawning per call
  // keeps the pool stateless between sweeps — thread creation is microseconds
  // against trials that each run a full simulation.
  std::vector<std::thread> threads;
  threads.reserve(jobs - 1);
  for (unsigned w = 1; w < jobs; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (std::thread& t : threads) t.join();

  EMIS_ENSURES(failed.load(std::memory_order_relaxed) ||
                   cursor.load(std::memory_order_relaxed) >= count,
               "workers exited before the index range drained");
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace emis::par
