// The parallel trial engine: a small fixed thread pool for embarrassingly
// parallel work — independent (n, seed) trials of a sweep or bench.
//
// Design constraints, in order:
//   1. Determinism. The pool never touches the work itself: callers give a
//      pure function of the trial index, each index writes its own result
//      slot, and reduction happens on the calling thread in index order.
//      Output is therefore bit-identical for any job count, including 1.
//   2. No work stealing, no queues. Indices are claimed from a single atomic
//      cursor; trials are coarse enough (one full simulation run) that the
//      cursor is never contended.
//   3. Zero threads when jobs <= 1: the loop runs inline on the caller, so
//      the serial path stays exactly the serial path.
//
// Shared observability state must be sharded per worker (one MetricsRegistry
// per thread) and merged after the join — see obs::MetricsRegistry::Merge.
#pragma once

#include <cstdint>
#include <functional>

namespace emis::par {

/// Worker count used when the caller does not specify one:
/// std::thread::hardware_concurrency(), clamped to >= 1 (the standard allows
/// hardware_concurrency() == 0 when unknown).
unsigned DefaultJobs() noexcept;

/// The index-claiming work function: fn(index, worker) with
/// index in [0, count) and worker in [0, jobs). A given index runs exactly
/// once; a given worker runs its indices sequentially, so per-worker state
/// (an RNG, a metrics shard) needs no locking.
using IndexFn = std::function<void(std::uint64_t index, unsigned worker)>;

/// Runs fn over [0, count) on `jobs` threads and blocks until every index
/// completed. jobs == 0 means DefaultJobs(). With jobs <= 1 (or count <= 1)
/// the loop runs inline — no threads are created. The first exception thrown
/// by fn is rethrown on the caller after all workers stopped claiming
/// (remaining indices may be skipped once an exception is pending).
void ParallelFor(unsigned jobs, std::uint64_t count, const IndexFn& fn);

}  // namespace emis::par
