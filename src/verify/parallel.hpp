// The parallel work engine: a persistent fixed thread pool shared by
// embarrassingly parallel trial loops (sweeps, benches) and by the
// scheduler's intra-run shard passes (radio/scheduler.cpp, DESIGN.md §13).
//
// Design constraints, in order:
//   1. Determinism. The pool never touches the work itself: callers give a
//      pure function of the index, each index writes its own result slot,
//      and reduction happens on the calling thread in index order. Output
//      is therefore bit-identical for any job count, including 1.
//   2. No work stealing, no queues. Indices are claimed from a single atomic
//      cursor; work items are coarse enough (a full simulation run, or one
//      shard of a round) that the cursor is never contended.
//   3. Zero threads when jobs <= 1: the loop runs inline on the caller, so
//      the serial path stays exactly the serial path.
//   4. Workers persist across calls. Sharded rounds dispatch several times
//      per simulated round, so thread creation cannot be on that path; the
//      pool lazily grows to the largest job count ever requested and keeps
//      those threads parked on a condition variable between dispatches.
//
// Nesting: a call made from inside a pool worker runs inline and serial on
// that worker (a sweep trial that itself runs a sharded scheduler must not
// deadlock waiting for the workers it is occupying). Inline execution is
// observationally identical by constraint 1. This guard is machine-checked:
// emis_lint's nested-dispatch rule accepts a dispatcher only because
// ParallelFor's definition READS tl_in_pool_worker (parallel.cpp) — remove
// that read and every region that can re-enter the pool is flagged with its
// witness call chain (the PR 8 deadlock shape, pinned in test_emis_lint).
//
// Shared observability state must be sharded per worker (one MetricsRegistry
// per thread) and merged after the join — see obs::MetricsRegistry::Merge.
#pragma once

#include <cstdint>
#include <functional>

namespace emis::par {

/// Worker count used when the caller does not specify one:
/// std::thread::hardware_concurrency(), clamped to >= 1 (the standard allows
/// hardware_concurrency() == 0 when unknown).
unsigned DefaultJobs() noexcept;

/// The index-claiming work function: fn(index, worker) with
/// index in [0, count) and worker in [0, jobs). A given index runs exactly
/// once; a given worker runs its indices sequentially, so per-worker state
/// (an RNG, a metrics shard) needs no locking.
using IndexFn = std::function<void(std::uint64_t index, unsigned worker)>;

/// Runs fn over [0, count) on `jobs` workers (the caller is worker 0; the
/// persistent pool supplies the rest) and blocks until every index
/// completed. jobs == 0 means DefaultJobs(). With jobs <= 1 (or count <= 1,
/// or when called from inside a pool worker) the loop runs inline — no
/// dispatch happens. The first exception thrown by fn is rethrown on the
/// caller after all workers stopped claiming (remaining indices may be
/// skipped once an exception is pending).
void ParallelFor(unsigned jobs, std::uint64_t count, const IndexFn& fn);

/// Process-wide count of dispatches in which the caller exhausted its own
/// share of the index range and had to block on the completion barrier for
/// pool workers still running — the shard-imbalance observable exported as
/// the `parallel.barrier_waits` gauge. Monotonic; snapshot deltas to scope
/// it to one run. Execution-dependent (scheduling decides who drains last),
/// so it is a gauge, never part of the deterministic report surface.
std::uint64_t BarrierWaits() noexcept;

/// Number of persistent pool threads currently alive (grows lazily to the
/// largest `jobs - 1` ever dispatched; 0 until the first parallel call).
unsigned PoolThreads() noexcept;

}  // namespace emis::par
