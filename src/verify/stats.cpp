#include "verify/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace emis {

void Summary::Add(double x) noexcept {
  if (count == 0) {
    min = max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  ++count;
  const double delta = x - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (x - mean);
}

double Summary::Stddev() const noexcept { return std::sqrt(Variance()); }

PowerFit FitPowerLaw(std::span<const double> x, std::span<const double> y) {
  EMIS_REQUIRE(x.size() == y.size(), "x and y must have equal length");
  EMIS_REQUIRE(x.size() >= 2, "need at least two points to fit");
  // Regress log y on log x.
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  const auto n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EMIS_REQUIRE(x[i] > 0 && y[i] > 0, "power-law fit needs positive data");
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double denom = n * sxx - sx * sx;
  PowerFit fit;
  if (std::abs(denom) < 1e-12) {
    // All x equal: exponent is undetermined; report a flat fit.
    fit.exponent = 0.0;
    fit.coefficient = std::exp(sy / n);
    fit.r_squared = 0.0;
    return fit;
  }
  const double slope = (n * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / n;
  fit.exponent = slope;
  fit.coefficient = std::exp(intercept);
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = intercept + slope * std::log(x[i]);
    const double resid = std::log(y[i]) - pred;
    ss_res += resid * resid;
  }
  fit.r_squared = ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

PowerFit FitPolylog(std::span<const double> n, std::span<const double> y) {
  std::vector<double> logs(n.size());
  for (std::size_t i = 0; i < n.size(); ++i) {
    EMIS_REQUIRE(n[i] > 1, "polylog fit needs n > 1");
    logs[i] = std::log2(n[i]);
  }
  return FitPowerLaw(logs, y);
}

double BestPolylogExponent(std::span<const double> n, std::span<const double> y,
                           std::span<const double> candidates) {
  EMIS_REQUIRE(!candidates.empty(), "need candidate exponents");
  EMIS_REQUIRE(n.size() == y.size() && n.size() >= 2, "need matching sweep data");
  double best_k = candidates.front();
  double best_err = std::numeric_limits<double>::infinity();
  for (double k : candidates) {
    // For fixed k, the optimal a minimizes sum (log y - log a - k log log n)^2:
    // log a = mean(log y - k log log n).
    double acc = 0;
    std::vector<double> basis(n.size());
    for (std::size_t i = 0; i < n.size(); ++i) {
      basis[i] = k * std::log(std::log2(n[i]));
      acc += std::log(y[i]) - basis[i];
    }
    const double log_a = acc / static_cast<double>(n.size());
    double err = 0;
    for (std::size_t i = 0; i < n.size(); ++i) {
      const double resid = std::log(y[i]) - log_a - basis[i];
      err += resid * resid;
    }
    if (err < best_err) {
      best_err = err;
      best_k = k;
    }
  }
  return best_k;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  EMIS_REQUIRE(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string Table::Render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Fmt(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

}  // namespace emis
