// Verification of MIS outputs.
//
// A correct MIS run must produce a status vector that is:
//   * decided:     no node is kUndecided,
//   * independent: no edge joins two kInMis nodes,
//   * dominated:   every kOutMis node has a kInMis neighbor (with the two
//                  properties above, this is exactly maximality).
// The checker reports every violation so tests can print actionable output.
#pragma once

#include <string>
#include <vector>

#include "core/status.hpp"
#include "radio/graph.hpp"

namespace emis {

struct MisReport {
  std::vector<NodeId> undecided;            ///< nodes still kUndecided
  std::vector<Edge> dependent_edges;        ///< edges inside the chosen set
  std::vector<NodeId> undominated;          ///< kOutMis nodes with no kInMis neighbor

  bool Decided() const noexcept { return undecided.empty(); }
  bool Independent() const noexcept { return dependent_edges.empty(); }
  bool Dominated() const noexcept { return undominated.empty(); }
  /// The full MIS contract.
  bool IsValidMis() const noexcept {
    return Decided() && Independent() && Dominated();
  }

  /// Human-readable summary of all violations ("" when valid).
  std::string Describe() const;
};

/// Checks `status` (one entry per node) against `graph`.
MisReport CheckMis(const Graph& graph, const std::vector<MisStatus>& status);

/// Convenience: true iff status is a valid MIS of graph.
bool IsValidMis(const Graph& graph, const std::vector<MisStatus>& status);

}  // namespace emis
