// Aggregation and shape-fitting utilities for the experiment harness.
//
// The paper's claims are asymptotic (O(log n), O(log² n log log n), ...); the
// benches verify *shape*: we fit y ≈ a · (log2 n)^k over a sweep of n and
// report which exponent k explains the measurements best, alongside growth
// ratios between successive n. Tests assert on these fits.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "radio/types.hpp"

namespace emis {

/// Running summary of a sample set.
struct Summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  // sum of squared deviations (Welford)
  double min = 0.0;
  double max = 0.0;

  void Add(double x) noexcept;
  double Variance() const noexcept {
    return count > 1 ? m2 / static_cast<double>(count - 1) : 0.0;
  }
  double Stddev() const noexcept;
};

/// Least-squares fit of y = a * x^k through log-log regression (x, y > 0).
/// Returns the exponent k and the coefficient a.
struct PowerFit {
  double exponent = 0.0;
  double coefficient = 0.0;
  double r_squared = 0.0;
};
PowerFit FitPowerLaw(std::span<const double> x, std::span<const double> y);

/// Fits y = a * (log2 n)^k for a sweep over n: the natural model for this
/// paper's complexities. Delegates to FitPowerLaw with x = log2(n).
PowerFit FitPolylog(std::span<const double> n, std::span<const double> y);

/// Among candidate exponents, the k whose fit y = a (log2 n)^k has the
/// smallest relative residual. Used to classify a measured curve as
/// "log-like" vs "log²-like" etc.
double BestPolylogExponent(std::span<const double> n, std::span<const double> y,
                           std::span<const double> candidates);

// ---------------------------------------------------------------------------
// Table rendering shared by all bench binaries
// ---------------------------------------------------------------------------

/// A minimal fixed-width table printer: benches print paper-style rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; entries are preformatted strings.
  void AddRow(std::vector<std::string> row);

  /// Renders with aligned columns, a header rule, and a title.
  std::string Render(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals.
std::string Fmt(double value, int digits = 2);

}  // namespace emis
