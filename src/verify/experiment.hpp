// The sweep driver shared by the bench binaries.
//
// An experiment is (algorithm, graph family, sizes, seeds). For each size we
// generate a fresh topology per seed, run the algorithm, verify the output
// and aggregate energy/round/size distributions. Benches render the rows
// with verify/stats.hpp's Table and assert shapes with the polylog fits.
//
// Trials are independent by construction — every trial's seed is derived
// from (seed_base, n, s) alone — so RunSweep can fan them across a thread
// pool (verify/parallel.hpp). Determinism contract: per-trial results are
// written into index-addressed slots and reduced on the calling thread in
// (size, seed) order, so the returned SweepPoints are BIT-IDENTICAL for any
// jobs count. Wall-clock and job count are reported out of band via
// SweepRunInfo and never enter the points.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "obs/energy_ledger.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/stream_sink.hpp"
#include "radio/graph.hpp"
#include "radio/graph_generators.hpp"
#include "verify/stats.hpp"

namespace emis {

/// Builds the topology for one run. Must be deterministic in (n, rng).
using GraphFactory = std::function<Graph(NodeId n, Rng& rng)>;

/// Named graph families used across benches (workload definitions of
/// DESIGN.md's experiment index).
namespace families {

/// Sparse G(n, p) with expected average degree `avg_degree`.
GraphFactory SparseErdosRenyi(double avg_degree);

/// G(n, p) with p = n^-1/2: max degree grows polynomially (≈ √n), separating
/// log Δ from log log n terms.
GraphFactory PolynomialDegreeErdosRenyi();

/// Random geometric graph scaled so the expected degree stays ~`avg_degree`.
GraphFactory UnitDisk(double avg_degree);

/// Theorem 1's matching + isolated nodes family.
GraphFactory LowerBoundFamily();

GraphFactory StarFamily();
GraphFactory CompleteFamily();
GraphFactory TreeFamily();

}  // namespace families

struct SweepConfig {
  MisAlgorithm algorithm = MisAlgorithm::kCd;
  ParamPreset preset = ParamPreset::kPractical;
  GraphFactory factory;
  std::vector<NodeId> sizes;
  std::uint32_t seeds_per_size = 10;
  std::uint64_t seed_base = 1;
  /// Run in the paper's unknown-Δ regime (§1.1): nodes only know n, so the
  /// backoff window is derived from Δ = n. This is where the commit
  /// mechanism's log log n listen windows beat the baselines' log Δ = log n.
  bool delta_unknown = false;
  /// Channel resolution direction for every trial (cost knob only; points
  /// are bit-identical across modes). `tweak` runs later and may override.
  ChannelResolution resolution = ChannelResolution::kAuto;
  /// Residual-graph compaction for every trial (cost knob only; points are
  /// bit-identical on or off). `tweak` runs later and may override.
  bool compaction = true;
  /// Execution backend for every trial (cost knob only; points are
  /// bit-identical across engines). `tweak` runs later and may override.
  ExecutionEngine engine = DefaultExecutionEngine();
  /// Intra-run shard count for every trial (flat engine; cost knob only,
  /// points are bit-identical at any count). Trials dispatched by a sweep
  /// worker run their shard loops inline — the pool does not nest — so
  /// sharding composes with jobs > 1 without oversubscription.
  unsigned shards = DefaultShards();
  /// Optional final tweak of the per-run config (ablations); receives the
  /// generated topology so graph-dependent parameters can be derived.
  /// Like `factory`, must be safe to invoke concurrently when jobs > 1
  /// (stateless or const-capturing callables are; all families:: are).
  std::function<void(MisRunConfig&, const Graph&)> tweak;
  /// Optional metrics sink. Each worker thread feeds a private shard (the
  /// scheduler hot-path timers/counters stay lock-free); the shards are
  /// merged into this registry in worker order after the sweep.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional per-trial observer, called on the reducing thread in strict
  /// (size, seed) order after all trials of the sweep finished — per-trial
  /// artifacts (reports, timelines rendered from results) never interleave
  /// even when the trials themselves ran concurrently.
  std::function<void(NodeId n, std::uint32_t seed_index, const MisRunResult&)>
      observe;
  /// Optional phase-span aggregate. Each trial runs with a private
  /// PhaseTimeline; the per-trial aggregates merge into this one on the
  /// reducing thread in (size, seed) order, so the result is bit-identical
  /// at any jobs count.
  obs::PhaseAggregate* phases = nullptr;
  /// Optional energy-attribution aggregate. Each trial runs with a private
  /// EnergyLedger (plus a private timeline to drive its context); the
  /// per-trial tables merge on the reducing thread in (size, seed) order —
  /// integral sums only, so the merged table is bit-identical at any jobs.
  obs::AttributionTable* attribution = nullptr;
  /// Optional streaming telemetry. Each trial buffers its events in a
  /// private StreamSink; on the reducing thread the blobs are framed with
  /// trial envelopes and concatenated in (size, seed) order, so the stream
  /// is byte-identical at any jobs count.
  std::ostream* telemetry_out = nullptr;
  obs::StreamSinkConfig telemetry_config;
};

struct SweepPoint {
  NodeId n = 0;
  std::uint32_t runs = 0;
  std::uint32_t failures = 0;   ///< runs whose output was not a valid MIS
  Summary max_energy;           ///< per-run max awake rounds (paper's energy)
  Summary avg_energy;           ///< per-run node-averaged awake rounds
  Summary rounds;               ///< per-run rounds used
  Summary mis_size;
  Summary max_degree;           ///< topology Δ per run
};

/// Out-of-band facts about how a sweep executed (never part of the points,
/// which stay bit-identical across job counts).
struct SweepRunInfo {
  unsigned jobs = 1;
  double wall_seconds = 0.0;             ///< whole sweep, including reduction
  std::vector<double> point_wall_seconds;///< per size: sum of its trial times
};

/// Runs the sweep; one point per size. Serial (jobs = 1).
std::vector<SweepPoint> RunSweep(const SweepConfig& config);

/// Runs the sweep's trials on `jobs` threads (0 = par::DefaultJobs(); 1 =
/// inline serial). Results are reduced in trial order: the returned points
/// are bit-identical to the serial path. `info`, when non-null, receives the
/// job count and wall-clock of this execution.
std::vector<SweepPoint> RunSweep(const SweepConfig& config, unsigned jobs,
                                 SweepRunInfo* info = nullptr);

/// The sweep's aggregate columns as a JSON object {title, points[...]} —
/// the `sweeps[]` entry of the emis-bench-report/1 schema. Deterministic in
/// (title, points). When `info` is non-null, adds the execution facts
/// ("jobs", "wall_seconds", per-point "wall_seconds") so BENCH_*.json
/// artifacts track the speedup trajectory.
obs::JsonValue BuildSweepJson(const std::string& title,
                              const std::vector<SweepPoint>& points,
                              const SweepRunInfo* info = nullptr);

/// Convenience: extracts (n, mean max energy) columns for fitting.
std::vector<double> Sizes(const std::vector<SweepPoint>& points);
std::vector<double> MeanMaxEnergy(const std::vector<SweepPoint>& points);
std::vector<double> MeanRounds(const std::vector<SweepPoint>& points);

/// Renders a standard result table for a sweep.
std::string RenderSweep(const std::string& title,
                        const std::vector<SweepPoint>& points);

}  // namespace emis
