// The sweep driver shared by the bench binaries.
//
// An experiment is (algorithm, graph family, sizes, seeds). For each size we
// generate a fresh topology per seed, run the algorithm, verify the output
// and aggregate energy/round/size distributions. Benches render the rows
// with verify/stats.hpp's Table and assert shapes with the polylog fits.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "radio/graph.hpp"
#include "radio/graph_generators.hpp"
#include "verify/stats.hpp"

namespace emis {

/// Builds the topology for one run. Must be deterministic in (n, rng).
using GraphFactory = std::function<Graph(NodeId n, Rng& rng)>;

/// Named graph families used across benches (workload definitions of
/// DESIGN.md's experiment index).
namespace families {

/// Sparse G(n, p) with expected average degree `avg_degree`.
GraphFactory SparseErdosRenyi(double avg_degree);

/// G(n, p) with p = n^-1/2: max degree grows polynomially (≈ √n), separating
/// log Δ from log log n terms.
GraphFactory PolynomialDegreeErdosRenyi();

/// Random geometric graph scaled so the expected degree stays ~`avg_degree`.
GraphFactory UnitDisk(double avg_degree);

/// Theorem 1's matching + isolated nodes family.
GraphFactory LowerBoundFamily();

GraphFactory StarFamily();
GraphFactory CompleteFamily();
GraphFactory TreeFamily();

}  // namespace families

struct SweepConfig {
  MisAlgorithm algorithm = MisAlgorithm::kCd;
  ParamPreset preset = ParamPreset::kPractical;
  GraphFactory factory;
  std::vector<NodeId> sizes;
  std::uint32_t seeds_per_size = 10;
  std::uint64_t seed_base = 1;
  /// Run in the paper's unknown-Δ regime (§1.1): nodes only know n, so the
  /// backoff window is derived from Δ = n. This is where the commit
  /// mechanism's log log n listen windows beat the baselines' log Δ = log n.
  bool delta_unknown = false;
  /// Optional final tweak of the per-run config (ablations); receives the
  /// generated topology so graph-dependent parameters can be derived.
  std::function<void(MisRunConfig&, const Graph&)> tweak;
};

struct SweepPoint {
  NodeId n = 0;
  std::uint32_t runs = 0;
  std::uint32_t failures = 0;   ///< runs whose output was not a valid MIS
  Summary max_energy;           ///< per-run max awake rounds (paper's energy)
  Summary avg_energy;           ///< per-run node-averaged awake rounds
  Summary rounds;               ///< per-run rounds used
  Summary mis_size;
  Summary max_degree;           ///< topology Δ per run
};

/// Runs the sweep; one point per size.
std::vector<SweepPoint> RunSweep(const SweepConfig& config);

/// Convenience: extracts (n, mean max energy) columns for fitting.
std::vector<double> Sizes(const std::vector<SweepPoint>& points);
std::vector<double> MeanMaxEnergy(const std::vector<SweepPoint>& points);
std::vector<double> MeanRounds(const std::vector<SweepPoint>& points);

/// Renders a standard result table for a sweep.
std::string RenderSweep(const std::string& title,
                        const std::vector<SweepPoint>& points);

}  // namespace emis
