// Deterministic collision-free network flooding over a TDMA schedule — the
// final stage of the backbone pipeline the paper's introduction motivates.
//
// Given a *distance-2* coloring of the network (no two nodes within two hops
// share a color), cycle the rounds through the colors: slot c belongs to the
// nodes of color c. Any two same-slot nodes are ≥ 3 hops apart, so no
// listener is adjacent to both — every transmission is received cleanly,
// with zero collisions, deterministically. Flooding a message from a source
// then informs each node exactly once: a node transmits the payload in its
// first own slot after learning it and sleeps forever after.
//
// Distance-2 colorings can come from anywhere; this module provides a
// centralized greedy (≤ Δ² + 1 colors, the usual engineering route) and
// accepts any coloring that CheckDistanceTwoColoring approves — e.g. the
// distributed iterated-MIS coloring run on G² (see tests). Designing an
// *energy-optimal distributed* D2-coloring over the radio channel is its own
// research problem (cf. the broadcast line [8] in §1.4) and out of scope.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "radio/energy.hpp"
#include "radio/graph.hpp"
#include "radio/scheduler.hpp"

namespace emis {

/// Greedy distance-2 coloring (centralized): proper on G², ≤ Δ(G²)+1 colors.
std::vector<std::uint32_t> GreedyDistanceTwoColoring(const Graph& graph);

/// Validity of a distance-2 coloring: every node colored and no two nodes at
/// distance ≤ 2 share a color. Returns "" when valid.
std::string CheckDistanceTwoColoring(const Graph& graph,
                                     const std::vector<std::uint32_t>& color);

struct BroadcastResult {
  std::vector<bool> informed;
  /// Round in which each node first received the payload (source: 0;
  /// uninformed: kForever).
  std::vector<Round> informed_at;
  std::uint64_t payload = 0;
  RunStats stats;
  EnergyMeter energy;

  bool AllInformed() const noexcept;
};

/// Floods `payload` from `source` under the slot schedule induced by
/// `d2_color` (validated). Runs for `slot_cycles` full color cycles —
/// eccentricity(source)+1 cycles suffice; the default of one cycle per node
/// is always enough. Deterministic: no randomness is consumed.
BroadcastResult FloodBroadcast(const Graph& graph, NodeId source,
                               std::uint64_t payload,
                               const std::vector<std::uint32_t>& d2_color,
                               std::uint32_t slot_cycles = 0);

}  // namespace emis
