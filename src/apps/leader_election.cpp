#include "apps/leader_election.hpp"

#include <cmath>
#include <sstream>

namespace emis {
namespace {

proc::Task<void> LeaderNode(NodeApi api, LeaderElectionParams params, bool alone,
                            LeaderElectionResult* out) {
  std::uint64_t& leader_id = out->leader_id[api.Id()];
  const std::uint64_t my_id = api.Rand().RandomBits(params.id_bits) | 1;

  if (alone) {
    // Degree-0 "clique": the node is trivially the leader.
    leader_id = my_id;
    out->is_leader[api.Id()] = true;
    co_return;
  }

  for (std::uint32_t sweep = 0; sweep < params.sweeps; ++sweep) {
    for (std::uint32_t j = 0; j < params.levels; ++j) {
      const double p = std::ldexp(1.0, -static_cast<int>(j));
      const bool transmit_now = api.Rand().Bernoulli(p);
      if (transmit_now) {
        // Round (a): bid with our id; round (b): listen for acks — in a
        // single-hop network, *any* audible (b) means our bid was clean.
        co_await api.Transmit(my_id);
        const Reception ack = co_await api.Listen();
        if (ack.Busy()) {
          leader_id = my_id;
          out->is_leader[api.Id()] = true;
          co_return;
        }
      } else {
        const Reception bid = co_await api.Listen();
        if (bid.kind == ReceptionKind::kMessage) {
          // Clean bid: adopt and ack so the bidder learns it won.
          leader_id = bid.payload;
          co_await api.Transmit(1);
          co_return;
        }
        // Silence or collision: nothing to ack; sleep through round (b).
        co_await api.SleepFor(1);
      }
    }
  }
  // Sweeps exhausted without an election (vanishing probability).
}

}  // namespace

std::string CheckLeaderElection(const LeaderElectionResult& result) {
  std::ostringstream problems;
  std::uint64_t leader = 0;
  std::uint32_t leaders = 0;
  for (std::size_t v = 0; v < result.is_leader.size(); ++v) {
    if (result.is_leader[v]) {
      ++leaders;
      leader = result.leader_id[v];
    }
  }
  if (leaders != 1) {
    problems << leaders << " self-declared leaders; ";
    return problems.str();
  }
  for (std::size_t v = 0; v < result.leader_id.size(); ++v) {
    if (result.leader_id[v] == 0) {
      problems << "node " << v << " learned no leader; ";
    } else if (result.leader_id[v] != leader) {
      problems << "node " << v << " disagrees on the leader id; ";
    }
  }
  return problems.str();
}

LeaderElectionResult ElectLeader(const Graph& clique, const LeaderElectionParams& params,
                                 std::uint64_t seed) {
  const NodeId n = clique.NumNodes();
  EMIS_REQUIRE(n >= 1, "election needs at least one node");
  EMIS_REQUIRE(clique.NumEdges() == static_cast<std::uint64_t>(n) * (n - 1) / 2,
               "leader election requires a single-hop (complete) topology");

  LeaderElectionResult result;
  result.leader_id.assign(n, 0);
  result.is_leader.assign(n, false);
  Scheduler scheduler(clique, {.model = ChannelModel::kCd}, seed);
  scheduler.Spawn([&params, alone = n == 1, out = &result](NodeApi api) {
    return LeaderNode(api, params, alone, out);
  });
  result.stats = scheduler.Run();
  result.energy = scheduler.Energy();
  return result;
}

}  // namespace emis
