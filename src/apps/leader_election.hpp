// Single-hop leader election in the energy model — the problem family where
// sleeping-model radio research started (paper §1.4: Nakano-Olariu, JKZ'02,
// Chang et al.; leader election lower bounds motivated the energy model).
//
// Setting: a single-hop network (every pair in range — a clique), CD model,
// anonymous nodes with private randomness. Elect exactly one leader and let
// every node learn the leader's identifier.
//
// Protocol (round pairs, Decay-swept participation):
//   (a) every remaining candidate transmits its random id w.p. 2^-j,
//   (b) every node that cleanly received an id in (a) transmits an ack.
// In a single-hop network the (a)-transmitter infers its win from hearing
// *anything* in (b): a clean (a) means every other node acks — busy (b);
// a collided or silent (a) means nobody acks — silent (b). Non-transmitters
// that heard the id in (a) adopt it and leave candidacy. Sweeping
// j = 0..⌈log n⌉ guarantees a round with transmit probability ≈ 1/#candidates,
// which elects w.p. ≥ 1/4; O(log n) sweeps succeed whp. Candidate energy is
// O(#sweeps · log n) in the worst case but O(1) expected transmissions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "radio/energy.hpp"
#include "radio/graph.hpp"
#include "radio/scheduler.hpp"

namespace emis {

struct LeaderElectionParams {
  std::uint32_t sweeps = 0;     ///< Decay sweeps; O(log n) whp
  std::uint32_t levels = 0;     ///< probabilities 2^0 .. 2^-(levels-1)
  std::uint32_t id_bits = 60;   ///< candidate identifier length

  static LeaderElectionParams Practical(std::uint64_t n) {
    const std::uint32_t log_n = CdParams::LogN(n);
    return {.sweeps = 2 * log_n + 10, .levels = log_n + 2, .id_bits = 60};
  }

  /// Two rounds per (sweep, level) cell.
  Round TotalRounds() const noexcept {
    return 2 * static_cast<Round>(sweeps) * levels;
  }
};

struct LeaderElectionResult {
  /// Per node: the leader id it learned (0 = none learned).
  std::vector<std::uint64_t> leader_id;
  /// Per node: whether it believes it is the leader.
  std::vector<bool> is_leader;
  RunStats stats;
  EnergyMeter energy;
};

/// Validity on a single-hop topology: exactly one self-declared leader and
/// every node agrees on its id. Returns "" when valid.
std::string CheckLeaderElection(const LeaderElectionResult& result);

/// Runs the election. The graph must be single-hop (complete); this is
/// checked. Deterministic in (n, params, seed).
LeaderElectionResult ElectLeader(const Graph& clique, const LeaderElectionParams& params,
                                 std::uint64_t seed);

}  // namespace emis
