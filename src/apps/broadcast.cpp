#include "apps/broadcast.hpp"

#include <algorithm>
#include <sstream>

#include "radio/process.hpp"

namespace emis {
namespace {

proc::Task<void> FloodNode(NodeApi api, std::uint32_t my_color, std::uint32_t colors,
                           bool is_source, std::uint64_t payload, Round deadline,
                           BroadcastResult* out) {
  const NodeId me = api.Id();
  bool informed = is_source;
  if (is_source) {
    out->informed[me] = true;
    out->informed_at[me] = 0;
  }

  while (api.Now() < deadline) {
    const std::uint32_t slot =
        static_cast<std::uint32_t>(api.Now() % static_cast<Round>(colors));
    if (informed) {
      if (slot == my_color) {
        // Our reserved slot: relay once, then our radio's job is done.
        co_await api.Transmit(payload);
        co_return;
      }
      // Wait (asleep) for our slot.
      co_await api.SleepFor(my_color > slot ? my_color - slot
                                            : colors - slot + my_color);
    } else {
      const Reception r = co_await api.Listen();
      if (r.kind == ReceptionKind::kMessage) {
        informed = true;
        out->informed[me] = true;
        out->informed_at[me] = api.Now() - 1;  // the round just listened in
      }
    }
  }
}

}  // namespace

std::vector<std::uint32_t> GreedyDistanceTwoColoring(const Graph& graph) {
  const Graph square = graph.Square();
  std::vector<std::uint32_t> color(graph.NumNodes(), ~std::uint32_t{0});
  std::vector<bool> used;
  for (NodeId v = 0; v < square.NumNodes(); ++v) {
    used.assign(square.Degree(v) + 1, false);
    for (NodeId w : square.Neighbors(v)) {
      if (color[w] < used.size()) used[color[w]] = true;
    }
    std::uint32_t c = 0;
    while (used[c]) ++c;
    color[v] = c;
  }
  return color;
}

std::string CheckDistanceTwoColoring(const Graph& graph,
                                     const std::vector<std::uint32_t>& color) {
  EMIS_REQUIRE(color.size() == graph.NumNodes(), "coloring size mismatch");
  std::ostringstream problems;
  const Graph square = graph.Square();
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (color[v] == ~std::uint32_t{0}) {
      problems << "node " << v << " uncolored; ";
      continue;
    }
    for (NodeId w : square.Neighbors(v)) {
      if (v < w && color[v] == color[w]) {
        problems << "nodes " << v << "," << w << " within 2 hops share color "
                 << color[v] << "; ";
      }
    }
  }
  return problems.str();
}

bool BroadcastResult::AllInformed() const noexcept {
  return std::find(informed.begin(), informed.end(), false) == informed.end();
}

BroadcastResult FloodBroadcast(const Graph& graph, NodeId source,
                               std::uint64_t payload,
                               const std::vector<std::uint32_t>& d2_color,
                               std::uint32_t slot_cycles) {
  EMIS_REQUIRE(source < graph.NumNodes(), "source out of range");
  EMIS_REQUIRE(CheckDistanceTwoColoring(graph, d2_color).empty(),
               "FloodBroadcast needs a valid distance-2 coloring");
  const std::uint32_t colors =
      1 + *std::max_element(d2_color.begin(), d2_color.end());
  if (slot_cycles == 0) slot_cycles = graph.NumNodes();

  BroadcastResult result;
  result.informed.assign(graph.NumNodes(), false);
  result.informed_at.assign(graph.NumNodes(), kForever);
  result.payload = payload;

  const Round deadline = static_cast<Round>(slot_cycles) * colors;
  // Deterministic protocol; the seed is irrelevant but fixed for tidiness.
  Scheduler scheduler(graph, {.model = ChannelModel::kNoCd}, 0);
  scheduler.Spawn([&, out = &result](NodeApi api) {
    return FloodNode(api, d2_color[api.Id()], colors, api.Id() == source, payload,
                     deadline, out);
  });
  result.stats = scheduler.Run();
  result.energy = scheduler.Energy();
  return result;
}

}  // namespace emis
