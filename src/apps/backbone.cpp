#include "apps/backbone.hpp"

#include <sstream>

#include "core/backoff.hpp"
#include "core/mis_cd.hpp"
#include "core/mis_nocd.hpp"

namespace emis {
namespace {

proc::Task<void> BackboneNodeProtocol(NodeApi api, BackboneParams params,
                                      std::vector<BackboneNode>* out) {
  BackboneNode& me = (*out)[api.Id()];

  // Stage 1: head election — Algorithm 1 (CD) or Algorithm 2 (no-CD).
  // Everyone rejoins at the stage boundary regardless of when they decided.
  const Round affiliation_start = api.Now() + params.MisRounds();
  if (params.nocd) {
    bool in_mis = false;
    me.role = MisStatus::kUndecided;
    co_await MisNoCdEpoch(api, *params.nocd, api.Now(), &in_mis, &me.role);
  } else {
    co_await MisCdEpoch(api, params.mis, &me.role);
  }
  co_await api.SleepUntil(affiliation_start);

  // Stage 2: affiliation. Heads announce a random identifier; members
  // capture any adjacent head's identifier. A head's neighbors are, by
  // independence, all members — so heads never need to listen here.
  if (me.role == MisStatus::kInMis) {
    me.head_id = api.Rand().RandomBits(params.id_bits) | 1;  // nonzero
    me.affiliated = true;  // heads belong to their own cluster
    co_await SndEBackoffPayload(api, params.announce_reps, params.delta, me.head_id);
  } else if (me.role == MisStatus::kOutMis) {
    const std::optional<std::uint64_t> captured = co_await RecEBackoffCapture(
        api, params.announce_reps, params.delta, params.delta);
    if (captured) {
      me.head_id = *captured;
      me.affiliated = true;
    }
  }
  // Undecided nodes (probability 1/poly(n)) stay unaffiliated; the checker
  // reports them.
}

}  // namespace

std::uint64_t BackboneResult::NumHeads() const noexcept {
  std::uint64_t heads = 0;
  for (const auto& n : nodes) heads += n.role == MisStatus::kInMis ? 1 : 0;
  return heads;
}

std::uint64_t BackboneResult::NumAffiliated() const noexcept {
  std::uint64_t count = 0;
  for (const auto& n : nodes) count += n.affiliated ? 1 : 0;
  return count;
}

std::string CheckBackbone(const Graph& graph, const BackboneResult& result) {
  EMIS_REQUIRE(result.nodes.size() == graph.NumNodes(),
               "result size must match the graph");
  std::ostringstream problems;

  // Heads must form an MIS.
  std::vector<MisStatus> roles(graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) roles[v] = result.nodes[v].role;
  {
    // Reuse the MIS checker's logic via a local re-derivation to avoid a
    // dependency cycle: independence + domination + decidedness.
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      if (roles[v] == MisStatus::kUndecided) {
        problems << "node " << v << " undecided; ";
        continue;
      }
      if (roles[v] == MisStatus::kInMis) {
        for (NodeId w : graph.Neighbors(v)) {
          if (v < w && roles[w] == MisStatus::kInMis) {
            problems << "adjacent heads " << v << "," << w << "; ";
          }
        }
      }
    }
  }

  // Affiliation: every member points at the id of an adjacent head.
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    const BackboneNode& n = result.nodes[v];
    if (n.role != MisStatus::kOutMis) continue;
    if (!n.affiliated) {
      problems << "member " << v << " unaffiliated; ";
      continue;
    }
    bool found = false;
    for (NodeId w : graph.Neighbors(v)) {
      if (result.nodes[w].role == MisStatus::kInMis &&
          result.nodes[w].head_id == n.head_id) {
        found = true;
        break;
      }
    }
    if (!found) {
      problems << "member " << v << " affiliated with a non-adjacent id; ";
    }
  }
  return problems.str();
}

BackboneResult BuildBackbone(const Graph& graph, const BackboneParams& params,
                             std::uint64_t seed) {
  BackboneResult result;
  result.nodes.assign(graph.NumNodes(), {});
  Scheduler scheduler(graph, {.model = params.Model()}, seed);
  scheduler.Spawn([&params, nodes = &result.nodes](NodeApi api) {
    return BackboneNodeProtocol(api, params, nodes);
  });
  result.stats = scheduler.Run();
  result.energy = scheduler.Energy();
  return result;
}

}  // namespace emis
