// Distributed (Δ+1)-coloring by iterated MIS — the classic reduction, run
// entirely over the CD radio channel.
//
// Epoch c (all epochs have the fixed length of one Algorithm 1 schedule):
// every still-uncolored node runs Algorithm 1 on the residual graph of
// uncolored nodes (colored nodes sleep, so the residual is induced
// automatically by the radio semantics); the epoch's MIS members take color
// c. Because each epoch's set is maximal among uncolored nodes, every
// uncolored node loses at least one uncolored neighbor per epoch (its
// dominator), so after at most deg(v)+1 ≤ Δ+1 epochs node v is colored —
// the textbook argument, made energy-aware: per epoch a non-winning node
// pays O(1) expected awake rounds plus its final O(log n) winning epoch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "radio/energy.hpp"
#include "radio/graph.hpp"
#include "radio/scheduler.hpp"

namespace emis {

inline constexpr std::uint32_t kUncolored = ~std::uint32_t{0};

struct ColoringParams {
  CdParams epoch;            ///< Algorithm 1 parameters for every epoch
  std::uint32_t max_colors = 0;  ///< epoch budget; Δ+1 plus slack

  static ColoringParams Practical(std::uint64_t n, std::uint32_t delta) {
    return {.epoch = CdParams::Practical(n),
            // Δ+1 colors suffice when every epoch yields a maximal set; a
            // small slack absorbs the 1/poly(n) undecided tail.
            .max_colors = delta + 2 + 2 * CdParams::LogN(n)};
  }

  Round TotalRounds() const noexcept {
    return static_cast<Round>(max_colors) * epoch.TotalRounds();
  }
};

struct ColoringResult {
  std::vector<std::uint32_t> color;  ///< kUncolored = failed to color
  std::uint32_t colors_used = 0;     ///< 1 + max assigned color
  RunStats stats;
  EnergyMeter energy;

  bool AllColored() const noexcept;
};

/// Validity: every node colored, no edge monochromatic, colors within the
/// budget. Returns "" when valid, else a description.
std::string CheckColoring(const Graph& graph, const ColoringResult& result,
                          std::uint32_t max_colors);

/// Runs the iterated-MIS coloring on a CD channel. Deterministic in
/// (graph, params, seed).
ColoringResult ColorGraph(const Graph& graph, const ColoringParams& params,
                          std::uint64_t seed);

}  // namespace emis
