#include "apps/coloring.hpp"

#include <algorithm>
#include <sstream>

#include "core/mis_cd.hpp"
#include "core/status.hpp"

namespace emis {
namespace {

proc::Task<void> ColoringNodeProtocol(NodeApi api, ColoringParams params,
                                      std::vector<std::uint32_t>* out) {
  std::uint32_t& my_color = (*out)[api.Id()];
  my_color = kUncolored;
  const Round epoch_rounds = params.epoch.TotalRounds();

  for (std::uint32_t c = 0; c < params.max_colors; ++c) {
    const Round epoch_end = api.Now() + epoch_rounds;
    MisStatus status = MisStatus::kUndecided;
    co_await MisCdEpoch(api, params.epoch, &status);
    if (status == MisStatus::kInMis) {
      my_color = c;
      co_return;  // colored: sleep forever (free)
    }
    // kOutMis: a neighbor took color c — compete again next epoch for the
    // next color. kUndecided (1/poly(n)): also retry.
    co_await api.SleepUntil(epoch_end);
  }
  // Budget exhausted while uncolored (vanishing probability); the checker
  // reports it.
}

}  // namespace

bool ColoringResult::AllColored() const noexcept {
  return std::find(color.begin(), color.end(), kUncolored) == color.end();
}

std::string CheckColoring(const Graph& graph, const ColoringResult& result,
                          std::uint32_t max_colors) {
  EMIS_REQUIRE(result.color.size() == graph.NumNodes(),
               "result size must match the graph");
  std::ostringstream problems;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (result.color[v] == kUncolored) {
      problems << "node " << v << " uncolored; ";
      continue;
    }
    if (result.color[v] >= max_colors) {
      problems << "node " << v << " uses out-of-budget color "
               << result.color[v] << "; ";
    }
    for (NodeId w : graph.Neighbors(v)) {
      if (v < w && result.color[v] == result.color[w] &&
          result.color[w] != kUncolored) {
        problems << "monochromatic edge " << v << "-" << w << " (color "
                 << result.color[v] << "); ";
      }
    }
  }
  return problems.str();
}

ColoringResult ColorGraph(const Graph& graph, const ColoringParams& params,
                          std::uint64_t seed) {
  ColoringResult result;
  result.color.assign(graph.NumNodes(), kUncolored);
  Scheduler scheduler(graph, {.model = ChannelModel::kCd}, seed);
  scheduler.Spawn([&params, colors = &result.color](NodeApi api) {
    return ColoringNodeProtocol(api, params, colors);
  });
  result.stats = scheduler.Run();
  result.energy = scheduler.Energy();
  result.colors_used = 0;
  for (std::uint32_t c : result.color) {
    if (c != kUncolored) result.colors_used = std::max(result.colors_used, c + 1);
  }
  return result;
}

}  // namespace emis
