// Communication-backbone construction — the application the paper's
// introduction motivates ("one can first construct an MIS, then use it as a
// building block for setting up a communication backbone").
//
// Two stages, both energy-aware:
//   1. Elect cluster heads: Algorithm 1 (CD model) computes an MIS.
//   2. Affiliation: each head draws a random O(log n)-bit identifier (unique
//      whp — the paper's anonymous-node assumption, §1.1) and announces it
//      via payload-carrying energy-efficient backoffs; every dominated node
//      captures *some* adjacent head's identifier and joins that cluster.
//
// The result is a clustering where every node is a head or one hop from its
// head — the standard first step toward a routing backbone in ad hoc
// networks. Unlike the MIS algorithms, stage 2 genuinely uses
// RADIO-CONGEST's O(log n)-bit messages.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "core/status.hpp"
#include "radio/energy.hpp"
#include "radio/graph.hpp"
#include "radio/process.hpp"
#include "radio/scheduler.hpp"

namespace emis {

struct BackboneParams {
  CdParams mis;                  ///< stage-1 MIS parameters (CD channel)
  /// When set, stage 1 runs Algorithm 2 on the no-CD channel instead (the
  /// affiliation backoffs work on either channel).
  std::optional<NoCdParams> nocd;
  std::uint32_t announce_reps = 0;  ///< k of the affiliation backoffs
  std::uint32_t delta = 0;       ///< degree bound for the affiliation windows
  std::uint32_t id_bits = 60;    ///< head identifier length (unique whp)

  static BackboneParams Practical(std::uint64_t n, std::uint32_t delta) {
    return {.mis = CdParams::Practical(n),
            .nocd = std::nullopt,
            .announce_reps = 2 * CdParams::LogN(n) + 12,
            .delta = delta == 0 ? 1 : delta,
            .id_bits = 60};
  }

  static BackboneParams PracticalNoCd(std::uint64_t n, std::uint32_t delta) {
    BackboneParams p = Practical(n, delta);
    p.nocd = NoCdParams::Practical(n, delta == 0 ? 1 : delta);
    return p;
  }

  ChannelModel Model() const noexcept {
    return nocd ? ChannelModel::kNoCd : ChannelModel::kCd;
  }

  Round MisRounds() const noexcept {
    if (nocd) {
      return static_cast<Round>(nocd->luby_phases) * NoCdSchedule::Of(*nocd).phase;
    }
    return mis.TotalRounds();
  }
  Round TotalRounds() const noexcept {
    return MisRounds() + BackoffRounds(announce_reps, delta);
  }
};

/// Per-node outcome of the backbone protocol.
struct BackboneNode {
  MisStatus role = MisStatus::kUndecided;  ///< kInMis = cluster head
  std::uint64_t head_id = 0;   ///< own id for heads; captured head id for members
  bool affiliated = false;     ///< member that captured a head id
};

struct BackboneResult {
  std::vector<BackboneNode> nodes;
  RunStats stats;
  EnergyMeter energy;

  std::uint64_t NumHeads() const noexcept;
  std::uint64_t NumAffiliated() const noexcept;
};

/// Validity: heads form an MIS; every member is affiliated with the id of an
/// *adjacent* head. Returns an empty string when valid, else a description.
std::string CheckBackbone(const Graph& graph, const BackboneResult& result);

/// Runs the two-stage protocol on a CD channel. Deterministic in
/// (graph, params, seed).
BackboneResult BuildBackbone(const Graph& graph, const BackboneParams& params,
                             std::uint64_t seed);

}  // namespace emis
