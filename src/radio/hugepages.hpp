// Transparent-huge-page advice for large, randomly-indexed per-node arrays.
//
// The engines' hot arrays (scheduler contexts, flat-engine lanes) are ~100 B
// per node and indexed in wake order, not address order — at bench sizes
// (n = 2^20 and up) nearly every access misses the dTLB under 4 KiB pages.
// Backing the array with 2 MiB pages cuts the page count ~500x, so the walk
// all but disappears. Purely a cost knob: behaviour is identical whether the
// advice is honored, ignored (THP disabled), or unavailable (non-Linux).
//
// Order matters: madvise(MADV_HUGEPAGE) only changes how *future* faults are
// served; already-touched pages wait for khugepaged's slow background
// collapse. Callers must advise between reserve() (allocates, untouched) and
// resize() (first touch) — ReserveHuge does exactly that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace emis {

/// Advises the kernel to serve faults in [base, base + bytes) with huge
/// pages. Only the 2 MiB-aligned interior is advised; small arrays are left
/// alone. Advisory — never fails observably.
inline void AdviseHugePages(void* base, std::size_t bytes) noexcept {
#if defined(__linux__)
  constexpr std::uintptr_t kHuge = std::uintptr_t{1} << 21;
  if (bytes < 2 * kHuge) return;  // no aligned interior worth the call
  const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(base);
  const std::uintptr_t first = (addr + kHuge - 1) & ~(kHuge - 1);
  const std::uintptr_t last = (addr + bytes) & ~(kHuge - 1);
  if (last > first) {
    (void)madvise(reinterpret_cast<void*>(first), last - first, MADV_HUGEPAGE);
  }
#else
  (void)base;
  (void)bytes;
#endif
}

/// reserve() + advise + resize(), in that order, so the value-initializing
/// first touch faults huge pages directly instead of queueing for collapse.
template <typename T>
void ReserveHuge(std::vector<T>& vec, std::size_t count) {
  vec.reserve(count);
  AdviseHugePages(vec.data(), count * sizeof(T));
  vec.resize(count);
}

}  // namespace emis
