// Optional per-round execution tracing.
//
// Tracing exists for debugging and for the trace_demo example; the scheduler
// takes a TraceSink* that is null in performance runs. Events record what a
// node did in a round and, for listeners, what it heard.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>

#include "radio/model.hpp"
#include "radio/types.hpp"

namespace emis {

struct TraceEvent {
  Round round = 0;
  NodeId node = kInvalidNode;
  ActionKind action = ActionKind::kSleep;
  std::uint64_t payload = 0;             ///< transmissions: what was sent
  Reception reception;                   ///< listens: what was heard
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Receives one event per awake node-round. Implementations must tolerate
/// events arriving in (round, arbitrary node order).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
  /// Events this sink discarded (capacity-bounded sinks evict). Drivers
  /// surface it as the `obs.trace_dropped` gauge in run reports so silent
  /// trace loss is visible in artifacts.
  virtual std::uint64_t DroppedCount() const noexcept { return 0; }
};

/// Keeps the most recent `capacity` events in memory.
class RingTrace final : public TraceSink {
 public:
  explicit RingTrace(std::size_t capacity = 65536) : capacity_(capacity) {}

  void OnEvent(const TraceEvent& event) override {
    if (events_.size() == capacity_) events_.pop_front();
    events_.push_back(event);
    ++total_seen_;
  }

  const std::deque<TraceEvent>& Events() const noexcept { return events_; }
  std::uint64_t TotalSeen() const noexcept { return total_seen_; }
  /// Events evicted because the ring was full. TotalSeen() - Events().size().
  std::uint64_t DroppedCount() const noexcept override {
    return total_seen_ - events_.size();
  }
  void Clear() noexcept {
    events_.clear();
    total_seen_ = 0;
  }

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t total_seen_ = 0;
};

/// Streams events as CSV rows (round,node,action,payload,reception). All
/// fields are numeric or fixed enum words, so no quoting is ever needed; the
/// sink flushes on destruction (and on demand), making the file complete the
/// moment the sink goes out of scope even when the process aborts later.
class CsvTrace final : public TraceSink {
 public:
  /// The stream must outlive this sink. Writes a header immediately.
  explicit CsvTrace(std::ostream& out);
  ~CsvTrace() override;
  void OnEvent(const TraceEvent& event) override;
  void Flush();

 private:
  std::ostream& out_;
};

/// One-line human-readable rendering, e.g. "r12 n3 listen -> collision".
std::string ToString(const TraceEvent& event);

}  // namespace emis
