// Energy accounting — the quantity the paper optimizes.
//
// A node pays one unit of energy per round in which it is awake (transmitting
// or listening); sleeping rounds and local computation are free (paper §1.1).
// The meter tracks transmit and listen rounds separately because the paper's
// backoff procedures have deliberately asymmetric sender/receiver costs
// (Lemma 8).
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "radio/types.hpp"

namespace emis {

struct NodeEnergy {
  std::uint64_t transmit_rounds = 0;
  std::uint64_t listen_rounds = 0;

  std::uint64_t Awake() const noexcept { return transmit_rounds + listen_rounds; }

  friend bool operator==(const NodeEnergy&, const NodeEnergy&) = default;
};

class EnergyMeter {
 public:
  EnergyMeter() = default;
  explicit EnergyMeter(NodeId num_nodes) : per_node_(num_nodes) {}

  void ChargeTransmit(NodeId v) {
    ++per_node_[v].transmit_rounds;
    ++total_transmit_;
  }
  void ChargeListen(NodeId v) {
    ++per_node_[v].listen_rounds;
    ++total_listen_;
  }

  // Sharded charging (radio/scheduler.cpp's parallel round passes): the
  // per-node entries are disjoint across shards so the Local variants are
  // safe to call concurrently, while the shared totals — which are plain
  // sums, hence order-independent — are reconciled once per round on the
  // scheduler thread via CommitShardTotals. Conservation is preserved
  // exactly: Σ per-node entries == totals at every round boundary.
  void ChargeTransmitLocal(NodeId v) { ++per_node_[v].transmit_rounds; }
  void ChargeListenLocal(NodeId v) { ++per_node_[v].listen_rounds; }
  void CommitShardTotals(std::uint64_t transmit_rounds,
                         std::uint64_t listen_rounds) noexcept {
    total_transmit_ += transmit_rounds;
    total_listen_ += listen_rounds;
  }

  NodeId NumNodes() const noexcept { return static_cast<NodeId>(per_node_.size()); }

  const NodeEnergy& Of(NodeId v) const {
    EMIS_REQUIRE(v < per_node_.size(), "node out of range");
    return per_node_[v];
  }

  /// The paper's (worst-case) energy complexity of the run: max over nodes of
  /// awake rounds.
  std::uint64_t MaxAwake() const noexcept {
    std::uint64_t best = 0;
    for (const auto& e : per_node_) best = std::max(best, e.Awake());
    return best;
  }

  /// Node-averaged awake complexity (cf. Chatterjee–Gmyr–Pandurangan).
  double AverageAwake() const noexcept {
    if (per_node_.empty()) return 0.0;
    std::uint64_t total = 0;
    for (const auto& e : per_node_) total += e.Awake();
    return static_cast<double>(total) / static_cast<double>(per_node_.size());
  }

  // Totals are maintained incrementally so phase-boundary snapshots (the
  // observability layer's PhaseTimeline) are O(1), not O(n).
  std::uint64_t TotalAwake() const noexcept { return total_transmit_ + total_listen_; }
  std::uint64_t TotalTransmit() const noexcept { return total_transmit_; }
  std::uint64_t TotalListen() const noexcept { return total_listen_; }

  /// q-th percentile (q in [0,100]) of per-node awake rounds.
  std::uint64_t PercentileAwake(double q) const {
    EMIS_REQUIRE(q >= 0.0 && q <= 100.0, "percentile out of range");
    if (per_node_.empty()) return 0;
    std::vector<std::uint64_t> awake(per_node_.size());
    std::transform(per_node_.begin(), per_node_.end(), awake.begin(),
                   [](const NodeEnergy& e) { return e.Awake(); });
    std::sort(awake.begin(), awake.end());
    const auto idx = static_cast<std::size_t>(
        q / 100.0 * static_cast<double>(awake.size() - 1) + 0.5);
    return awake[std::min(idx, awake.size() - 1)];
  }

 private:
  std::vector<NodeEnergy> per_node_;
  std::uint64_t total_transmit_ = 0;
  std::uint64_t total_listen_ = 0;
};

}  // namespace emis
