// The synchronous round engine.
//
// Each node runs a coroutine protocol (see process.hpp). A round proceeds in
// two phases: every awake node's action is known before any reception is
// resolved, matching the synchronous radio model exactly. The engine is
// event-driven: rounds in which *every* node sleeps are skipped in O(1), so
// simulation cost is proportional to the total awake node-rounds — i.e. to
// the energy the paper studies — plus O(log n) heap work per sleep.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/phase_timeline.hpp"
#include "radio/channel.hpp"
#include "radio/energy.hpp"
#include "radio/frame_arena.hpp"
#include "radio/graph.hpp"
#include "radio/model.hpp"
#include "radio/process.hpp"
#include "radio/trace.hpp"

namespace emis {

struct SchedulerConfig {
  ChannelModel model = ChannelModel::kCd;
  /// Hard stop: no round >= max_rounds is executed. Guards against
  /// non-terminating protocols in tests and benches.
  Round max_rounds = 100'000'000;
  /// Optional event sink; null disables tracing.
  TraceSink* trace = nullptr;
  /// Per-link per-round signal erasure probability (fading). 0 = the
  /// paper's reliable channel. See Channel::SetLoss.
  double link_loss = 0.0;
  /// How the channel resolves receptions each round. kAuto picks per round
  /// by the degree-sum cost model (Σ deg(transmitter) vs Σ deg(listener),
  /// ties to push); kPush/kPull force one direction. Receptions are
  /// identical in all three modes — this is purely a cost knob.
  ChannelResolution resolution = ChannelResolution::kAuto;
  /// Optional metrics registry (owned by the caller). When set, the
  /// scheduler feeds hot-path timers ("sched.execute_round", "sched.resume",
  /// "sched.wake_heap"), counters ("sched.rounds_executed",
  /// "sched.rounds_skipped", "sched.wake_events", "chan.push_rounds",
  /// "chan.pull_rounds", "chan.edges_scanned"), and arena gauges
  /// ("arena.bytes_reserved", "arena.bytes_used") — cheap enough to keep on
  /// in perf runs (see bench_simulator's *Instrumented variants).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional phase timeline (owned by the caller). The scheduler binds it
  /// to its energy meter, protocols annotate via NodeApi::Phase, and the
  /// timeline closes when the run finishes.
  obs::PhaseTimeline* timeline = nullptr;
};

struct RunStats {
  /// One past the last round in which any node was awake (== the paper's
  /// round complexity of the run when all nodes terminated).
  Round rounds_used = 0;
  /// Total awake node-rounds actually simulated.
  std::uint64_t node_rounds = 0;
  /// Nodes whose protocol coroutine ran to completion.
  NodeId nodes_finished = 0;
  /// True if the run stopped at max_rounds with live protocols remaining.
  bool hit_round_limit = false;
};

class Scheduler {
 public:
  /// The graph must outlive the scheduler. `seed` determines every node's
  /// private random stream.
  Scheduler(const Graph& graph, SchedulerConfig config, std::uint64_t seed);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Creates and starts one protocol instance per node. Must be called
  /// exactly once, before Run/RunUntil.
  void Spawn(const ProtocolFactory& factory);

  /// Runs until all protocols finish or max_rounds is reached.
  RunStats Run() { return RunUntil(config_.max_rounds); }

  /// Runs rounds < `limit` (and not >= max_rounds); returns a snapshot of the
  /// stats so far. Idempotent once everything finished. Used by experiments
  /// that inspect state at phase boundaries.
  RunStats RunUntil(Round limit);

  bool AllFinished() const noexcept { return finished_ == graph_->NumNodes(); }
  Round Now() const noexcept { return now_; }
  const EnergyMeter& Energy() const noexcept { return energy_; }
  const Graph& Topology() const noexcept { return *graph_; }

  /// Allocation footprint of this scheduler's coroutine-frame arena.
  const FrameArena::Stats& ArenaStats() const noexcept { return arena_.GetStats(); }

 private:
  /// Resumes node v's coroutine (which runs until its next await) and files
  /// the submitted action: into `actors` if it acts in the round ctx.now,
  /// into the wake heap if it sleeps. Detects completion.
  void ResumeAndFile(NodeId v, std::vector<NodeId>& actors);

  /// Executes the current round for `actors_` (channel + energy + trace),
  /// then resumes the actors to collect their next actions.
  void ExecuteRound();

  /// Degree-sum cost model: the direction this round resolves in, given the
  /// pending actions of `actors_`. Also validates actor rounds and feeds the
  /// chan.* counters.
  ChannelDirection ChooseDirection();

  const Graph* graph_;
  SchedulerConfig config_;
  Channel channel_;
  EnergyMeter energy_;

  // Declared before tasks_: destroying a task recycles its coroutine frames
  // into the arena, so the arena must be destroyed after (i.e. declared
  // before) the tasks that feed it.
  FrameArena arena_;

  std::vector<NodeContext> contexts_;
  std::vector<proc::Task<void>> tasks_;

  // Nodes acting (transmit/listen) in round now_.
  std::vector<NodeId> actors_;
  std::vector<NodeId> next_actors_;  // scratch, swapped each round

  struct WakeEntry {
    Round round;
    NodeId node;
    bool operator>(const WakeEntry& other) const noexcept {
      return round != other.round ? round > other.round : node > other.node;
    }
  };
  std::priority_queue<WakeEntry, std::vector<WakeEntry>, std::greater<>> wake_heap_;

  Round now_ = 0;
  Round last_awake_round_ = 0;
  bool any_awake_round_ = false;
  std::uint64_t node_rounds_ = 0;
  NodeId finished_ = 0;
  bool spawned_ = false;

  // Metric handles resolved once in the constructor; null when metrics are
  // off, so the hot path pays a branch, not a map lookup.
  obs::Timer* execute_timer_ = nullptr;
  obs::Timer* resume_timer_ = nullptr;
  obs::Timer* wake_timer_ = nullptr;
  obs::Counter* rounds_executed_ = nullptr;
  obs::Counter* rounds_skipped_ = nullptr;
  obs::Counter* wake_events_ = nullptr;
  obs::Counter* push_rounds_ = nullptr;
  obs::Counter* pull_rounds_ = nullptr;
  obs::Counter* edges_scanned_ = nullptr;
  obs::Gauge* arena_reserved_ = nullptr;
  obs::Gauge* arena_used_ = nullptr;
};

}  // namespace emis
