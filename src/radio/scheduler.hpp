// The synchronous round engine.
//
// Each node runs a coroutine protocol (see process.hpp). A round proceeds in
// two phases: every awake node's action is known before any reception is
// resolved, matching the synchronous radio model exactly. The engine is
// event-driven: rounds in which *every* node sleeps are skipped in O(1), so
// simulation cost is proportional to the total awake node-rounds — i.e. to
// the energy the paper studies — plus O(1) amortized calendar-wheel work
// per sleep (a 4096-slot ring over the near future with a compacting
// overflow list; drained buckets are sorted so the pop order matches the
// binary heap it replaced). Channel work per round additionally tracks the
// *residual* graph, not the seed graph: protocols Retire() when decided,
// and the ResidualGraph overlay compacts their rows away (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "obs/energy_ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/stream_sink.hpp"
#include "radio/channel.hpp"
#include "radio/energy.hpp"
#include "radio/flat_engine.hpp"
#include "radio/frame_arena.hpp"
#include "radio/graph.hpp"
#include "radio/model.hpp"
#include "radio/process.hpp"
#include "radio/trace.hpp"

namespace emis {

/// Process-wide default intra-run shard count: 1, or the value of the
/// EMIS_SHARDS environment variable when set to a valid positive integer.
/// Read once and cached; lets a CI matrix run the whole test suite sharded
/// without touching call sites (the EMIS_ENGINE pattern).
unsigned DefaultShards() noexcept;

struct SchedulerConfig {
  ChannelModel model = ChannelModel::kCd;
  /// Hard stop: no round >= max_rounds is executed. Guards against
  /// non-terminating protocols in tests and benches.
  Round max_rounds = 100'000'000;
  /// Optional event sink; null disables tracing.
  TraceSink* trace = nullptr;
  /// Per-link per-round signal erasure probability (fading). 0 = the
  /// paper's reliable channel. See Channel::SetLoss.
  double link_loss = 0.0;
  /// How the channel resolves receptions each round. kAuto picks per round
  /// by the degree-sum cost model (Σ deg(transmitter) vs Σ deg(listener),
  /// ties to push); kPush/kPull force one direction. Receptions are
  /// identical in all three modes — this is purely a cost knob.
  ChannelResolution resolution = ChannelResolution::kAuto;
  /// Residual-graph compaction: nodes that reach a terminal decision (via
  /// NodeApi::Retire / Scheduler::Retire, or simply by finishing their
  /// protocol) are dropped from channel scan rows, and a CSR row is
  /// compacted in place once half its entries are dead — per-round channel
  /// cost then tracks *live* edges instead of seed edges, and the
  /// ChooseDirection cost model sums live degrees. Receptions are
  /// bit-identical with compaction on or off (retired nodes never act
  /// again), so this is purely a cost/memory knob; off skips the adjacency
  /// copy.
  bool compaction = true;
  /// Optional metrics registry (owned by the caller). When set, the
  /// scheduler feeds hot-path timers ("sched.execute_round", "sched.resume",
  /// "sched.wake_heap"), counters ("sched.rounds_executed",
  /// "sched.rounds_skipped", "sched.wake_events", "chan.push_rounds",
  /// "chan.pull_rounds", "chan.edges_scanned", "graph.compactions",
  /// "graph.edges_reclaimed"), the residual gauge ("chan.live_edges"),
  /// arena gauges ("arena.bytes_reserved", "arena.bytes_used"), and
  /// working-set gauges ("mem.context_hot_bytes", "mem.context_cold_bytes",
  /// "mem.lane_bytes" — the resume loop's per-array footprints, see
  /// DESIGN.md §12.2) — cheap enough to keep on in perf runs (see
  /// bench_simulator's *Instrumented variants).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional phase timeline (owned by the caller). The scheduler binds it
  /// to its energy meter, protocols annotate via NodeApi::Phase, and the
  /// timeline closes when the run finishes.
  obs::PhaseTimeline* timeline = nullptr;
  /// Optional energy-attribution ledger (owned by the caller; must be sized
  /// to the graph). Every transmit/listen charge is mirrored into it, keyed
  /// by the timeline's current (phase, sub-phase) context — the scheduler
  /// binds the ledger to `timeline` when both are set; without a timeline
  /// all charges land under the unattributed key. Conservation is exact by
  /// construction: Σ over keys of a node's attributed rounds equals its
  /// EnergyMeter entry.
  obs::EnergyLedger* ledger = nullptr;
  /// Which backend drives the protocols. kCoroutine runs the reference
  /// coroutine implementation via Spawn; kFlat runs a packed state-machine
  /// backend via SpawnFlat. Observationally identical (traces, energy,
  /// metrics, reports); purely a cost knob.
  ExecutionEngine engine = ExecutionEngine::kCoroutine;
  /// Optional streaming telemetry sink (owned by the caller). The scheduler
  /// emits a `round` heartbeat per executed round (cadence
  /// StreamSinkConfig::heartbeat_every) with awake/decided/finished/
  /// live-edge gauges, and — when `timeline` is also set — a `phase` event
  /// per closed span carrying the span's attribution delta.
  obs::StreamSink* telemetry = nullptr;
  /// Intra-run shard count for the flat engine: the node range is cut into
  /// `shards` contiguous, edge-balanced row ranges and each round's per-node
  /// work (protocol steps, channel stamping/scanning, energy charges) runs
  /// one shard per pool worker, with every cross-node mutation serialized in
  /// global actor order between the parallel passes (DESIGN.md §13). Purely
  /// a cost knob: traces, energy, metrics, receptions, and reports are
  /// bit-identical at any shard count. The coroutine engine ignores it and
  /// always runs single-sharded (it is the reference implementation).
  unsigned shards = DefaultShards();
};

/// The per-round direction decision, factored out of the scheduler so the
/// cost model is unit-testable in isolation: forced resolutions win
/// unconditionally; kAuto resolves on the cheaper side with ties to push,
/// whose per-edge work (stamped delivery) is slightly lighter than the
/// pull-side scan. The edge sums are live degrees when compaction is on,
/// static degrees otherwise.
constexpr ChannelDirection ResolveDirection(ChannelResolution resolution,
                                            std::uint64_t tx_edges,
                                            std::uint64_t listen_edges) noexcept {
  switch (resolution) {
    case ChannelResolution::kPush:
      return ChannelDirection::kPush;
    case ChannelResolution::kPull:
      return ChannelDirection::kPull;
    case ChannelResolution::kAuto:
      break;
  }
  return listen_edges < tx_edges ? ChannelDirection::kPull
                                 : ChannelDirection::kPush;
}

struct RunStats {
  /// One past the last round in which any node was awake (== the paper's
  /// round complexity of the run when all nodes terminated).
  Round rounds_used = 0;
  /// Total awake node-rounds actually simulated.
  std::uint64_t node_rounds = 0;
  /// Nodes whose protocol coroutine ran to completion.
  NodeId nodes_finished = 0;
  /// True if the run stopped at max_rounds with live protocols remaining.
  bool hit_round_limit = false;
};

class Scheduler {
 public:
  /// The graph must outlive the scheduler. `seed` determines every node's
  /// private random stream.
  Scheduler(const Graph& graph, SchedulerConfig config, std::uint64_t seed);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Creates and starts one protocol instance per node. Must be called
  /// exactly once, before Run/RunUntil. Requires engine == kCoroutine.
  void Spawn(const ProtocolFactory& factory);

  /// Installs the flat state-machine backend and steps every node to its
  /// first action. The flat counterpart of Spawn; must be called exactly
  /// once, before Run/RunUntil. Requires engine == kFlat.
  void SpawnFlat(std::unique_ptr<FlatProtocol> protocol);

  /// Runs until all protocols finish or max_rounds is reached.
  RunStats Run() { return RunUntil(config_.max_rounds); }

  /// Runs rounds < `limit` (and not >= max_rounds); returns a snapshot of the
  /// stats so far. Idempotent once everything finished. Used by experiments
  /// that inspect state at phase boundaries.
  RunStats RunUntil(Round limit);

  /// Permanently removes node v from the radio: its residual-graph entry is
  /// reclaimed (neighbors' live scan rows shrink) and it must never transmit
  /// or listen again — enforced by an invariant on action filing. Idempotent.
  /// Called automatically when a protocol coroutine finishes and on
  /// NodeApi::Retire requests; also callable directly by drivers that know a
  /// node is done. A no-op cost-wise when compaction is off (the flag is
  /// still set, keeping the acting-after-retirement invariant armed).
  void Retire(NodeId v);

  bool AllFinished() const noexcept { return finished_ == graph_->NumNodes(); }
  Round Now() const noexcept { return now_; }
  const EnergyMeter& Energy() const noexcept { return energy_; }
  const Graph& Topology() const noexcept { return *graph_; }

  /// The residual overlay; null when compaction is off.
  const ResidualGraph* Residual() const noexcept {
    return residual_.has_value() ? &*residual_ : nullptr;
  }

  /// Allocation footprint of this scheduler's coroutine-frame arena.
  const FrameArena::Stats& ArenaStats() const noexcept { return arena_.GetStats(); }

  /// Calendar-wheel slot count (power of two). Public so tests can pin the
  /// horizon edge: a sleep of exactly kWheelSize rounds must route through
  /// the overflow list, not alias the current slot.
  static constexpr std::size_t kWheelSize = 4096;

 private:
  /// Advances node v's program to its next suspension — resuming its
  /// coroutine or stepping its flat lane, per config.engine — and files
  /// the submitted action via FileAction. `by_shard` mirrors radio actions
  /// into per-shard actor lists when the run is sharded.
  void ResumeAndFile(NodeId v, std::vector<NodeId>& actors,
                     std::vector<std::vector<NodeId>>* by_shard = nullptr);

  /// Files node v's already-computed action: into `actors` (and the shard
  /// mirror) if it acts in round ctx.now, into the wake wheel if it sleeps;
  /// detects completion and retires. Split from ResumeAndFile so sharded
  /// rounds can step nodes in parallel and then file serially in global
  /// actor order — filing mutates cross-node state (finished_, the residual
  /// overlay's compaction counters, the wheel), whose mutation order the
  /// trace/report goldens pin.
  void FileAction(NodeId v, std::vector<NodeId>& actors,
                  std::vector<std::vector<NodeId>>* by_shard);

  /// Issues prefetches for upcoming resumes in a batch: position i + 16
  /// pulls the node's hot context line (ctx_hot_ is 16 B/node — four nodes
  /// share a cache line, but resume order is wake order, so the hardware
  /// stride detector cannot cover it) plus, per engine, the flat lane or the
  /// cold context half the resume will touch; position i + 4 chases
  /// resume_point to the coroutine-frame header the resume call loads
  /// first. Hides the dependent LLC misses that otherwise dominate per-wake
  /// cost on large graphs.
  void PrefetchResume(const std::vector<NodeId>& nodes, std::size_t i) noexcept;

  /// Executes the current round for `actors_` (channel + energy + trace),
  /// then resumes the actors to collect their next actions.
  void ExecuteRound();

  /// The sharded counterpart of ExecuteRound (flat engine, shards_ > 1).
  /// Three deterministic steps per round: (1) a parallel per-shard action
  /// pass stamps transmitters into shard-local bitsets and charges energy
  /// locally, (2) the shard buffers are OR-merged word-wise into the
  /// channel's epoch-stamped global bitset in fixed shard order, (3) a
  /// parallel per-shard listener pass resolves receptions via the read-only
  /// word-scan kernels. Trace events, energy totals, and actor filing are
  /// then replayed serially in global actor order, so every observable is
  /// bit-identical to the unsharded round (DESIGN.md §13).
  void ExecuteRoundSharded();

  /// Step (1): shard s's transmitter stamping + local energy charges.
  void ShardTransmitPass(unsigned s);
  /// Step (3): shard s's reception resolution + local energy charges.
  void ShardListenPass(unsigned s);
  /// Deferred serial trace pass reproducing the unsharded two-phase event
  /// order: all transmits in actor order, then all listens.
  void EmitRoundTrace();
  /// Edge-balanced contiguous node cut from the CSR offset array; also
  /// sizes the per-shard actor lists and transmit buffers.
  void BuildShardCut();
  /// The shard owning node v under the current cut.
  unsigned ShardOf(NodeId v) const noexcept;
  bool Sharded() const noexcept { return shards_ > 1; }
  /// Whether per-node protocol steps may run in parallel: sharded and no
  /// timeline (phase annotations mutate the shared timeline inside Step, so
  /// annotated runs keep the serial reference path for the resume pass —
  /// channel and energy passes stay parallel either way).
  bool ParallelStepEligible() const noexcept {
    return Sharded() && config_.timeline == nullptr;
  }

  /// Pool dispatch only pays off when a pass has enough per-node work to
  /// amortize the barrier handshake; below this many nodes the same shard
  /// loop runs inline on the scheduler thread (ParallelFor with one job).
  /// Bit-identical either way — the shards execute the same disjoint work
  /// in the same serialized merge/filing order — so this is purely a cost
  /// knob, sized so ~µs of pass work meets ~µs of dispatch overhead.
  static constexpr std::size_t kParallelMinNodes = 1024;
  unsigned ShardJobs(std::size_t work_items) const noexcept {
    return work_items >= kParallelMinNodes ? shards_ : 1;
  }

  /// Degree-sum cost model: the direction this round resolves in, given the
  /// pending actions of `actors_`. Also validates actor rounds and feeds the
  /// chan.* counters. Leaves the round's edge sums in round_tx_edges_ /
  /// round_listen_edges_ for PhysicalDirection.
  ChannelDirection ChooseDirection();

  /// The direction the channel *physically* resolves in this round. For the
  /// coroutine engine this is the cost-model direction unchanged. The flat
  /// engine may substitute the cheaper pass: the pull-side word scan (an
  /// AVX2/word-parallel sweep over the transmitter bitset) costs ~4x less
  /// per edge than push's scattered per-neighbor deliveries, so a forced or
  /// model push round with a large transmit side resolves faster as a pull
  /// scan. Receptions are byte-identical in both directions (Channel's
  /// documented contract, pinned by tests), and every chan.* metric is
  /// recorded from the cost-model direction in ChooseDirection — so this is
  /// unobservable in traces, energy, metrics, and reports.
  ChannelDirection PhysicalDirection(ChannelDirection model_dir) const noexcept;

  const Graph* graph_;
  SchedulerConfig config_;
  // Engaged when config.compaction; declared before channel_ so the
  // channel's overlay pointer is never dangling during destruction.
  std::optional<ResidualGraph> residual_;
  Channel channel_;
  EnergyMeter energy_;

  // Declared before tasks_: destroying a task recycles its coroutine frames
  // into the arena, so the arena must be destroyed after (i.e. declared
  // before) the tasks that feed it.
  FrameArena arena_;

  // Per-node context state, split hot/cold into parallel arrays (DESIGN.md
  // §12.2): the resume loop and the channel's action scans stream only
  // ctx_hot_ (16 B/node — round, action argument, packed flags); RNG state,
  // receptions, the coroutine handle, and the energy/timeline pointers live
  // in ctx_cold_ and are touched only when a node actually draws, listens,
  // or resumes a coroutine. Protocols see both halves through the two-
  // pointer NodeContext view built by View().
  std::vector<HotNodeContext> ctx_hot_;
  std::vector<ColdNodeContext> ctx_cold_;
  std::vector<proc::Task<void>> tasks_;

  /// The two-pointer hot/cold view of node v handed to NodeApi / FlatCtx.
  NodeContext View(NodeId v) noexcept { return {&ctx_hot_[v], &ctx_cold_[v]}; }

  // Engaged by SpawnFlat: the batched state-machine backend. When set, the
  // resume hot path steps lanes in place and tasks_/arena_ stay empty.
  std::unique_ptr<FlatProtocol> flat_;
  // Cached at SpawnFlat so the prefetch path pays no virtual call.
  FlatProtocol::LaneLayout flat_lanes_;
  // Edge sums of the current round's actors, written by ChooseDirection and
  // consumed by PhysicalDirection.
  std::uint64_t round_tx_edges_ = 0;
  std::uint64_t round_listen_edges_ = 0;

  // Nodes acting (transmit/listen) in round now_.
  std::vector<NodeId> actors_;
  std::vector<NodeId> next_actors_;  // scratch, swapped each round

  // Intra-run sharding (flat engine only; engaged by SpawnFlat when
  // config.shards > 1). shard_begin_ holds the contiguous node cut
  // (shards_ + 1 boundaries); shard_actors_ mirrors actors_ partitioned by
  // shard, maintained by FileAction and swapped alongside it.
  unsigned shards_ = 1;
  std::vector<NodeId> shard_begin_;
  std::vector<std::vector<NodeId>> shard_actors_;
  std::vector<std::vector<NodeId>> next_shard_actors_;
  std::vector<Channel::TxShardBuffer> tx_buffers_;
  // Per-shard charge tallies from the parallel passes, summed serially into
  // the EnergyMeter totals once per round.
  std::vector<std::uint64_t> shard_tx_count_;
  std::vector<std::uint64_t> shard_listen_count_;
  std::uint64_t merge_words_ = 0;  ///< words OR-merged across all rounds
  std::uint64_t barrier_waits_base_ = 0;  ///< par::BarrierWaits at ctor

  // Calendar-wheel wake queue. Sleeping nodes land in the bucket of their
  // wake round when it is within the wheel horizon (now < round < now + W;
  // strict, since a distance-W round aliases the current slot), else in the
  // unsorted overflow (far phase syncs). The virtual clock visits
  // every wake round (jumps target the minimum pending round), so a bucket is
  // drained exactly at its round; draining sorts the bucket, reproducing the
  // (round, node)-ascending pop order of a binary heap — which resume order,
  // and therefore trace goldens, depend on — at O(1) amortized per event
  // instead of O(log sleepers).
  struct WakeEntry {
    Round round;
    NodeId node;
  };
  void PushWake(Round round, NodeId node);
  /// Smallest pending wake round (wheel and overflow), or kNoWake.
  Round NextWakeRound() const noexcept;
  /// Moves overflow entries that entered the horizon into their buckets.
  void MigrateOverflow();
  static constexpr Round kNoWake = ~Round{0};
  std::vector<std::vector<NodeId>> wake_wheel_{kWheelSize};
  std::vector<NodeId> wake_scratch_;       // drained bucket, sorted
  std::uint64_t wheel_count_ = 0;
  std::vector<WakeEntry> wake_overflow_;
  Round overflow_min_ = kNoWake;

  Round now_ = 0;
  Round last_awake_round_ = 0;
  bool any_awake_round_ = false;
  std::uint64_t node_rounds_ = 0;
  NodeId finished_ = 0;
  NodeId retired_ = 0;  ///< decided nodes (telemetry's "decided" gauge)
  bool spawned_ = false;

  /// Emits the per-round telemetry heartbeat (config.telemetry set).
  void EmitHeartbeat();

  // Metric handles resolved once in the constructor; null when metrics are
  // off, so the hot path pays a branch, not a map lookup.
  obs::Timer* execute_timer_ = nullptr;
  obs::Timer* resume_timer_ = nullptr;
  obs::Timer* wake_timer_ = nullptr;
  obs::Counter* rounds_executed_ = nullptr;
  obs::Counter* rounds_skipped_ = nullptr;
  obs::Counter* wake_events_ = nullptr;
  obs::Counter* push_rounds_ = nullptr;
  obs::Counter* pull_rounds_ = nullptr;
  obs::Counter* edges_scanned_ = nullptr;
  obs::Counter* compactions_metric_ = nullptr;
  obs::Counter* edges_reclaimed_metric_ = nullptr;
  obs::Gauge* live_edges_metric_ = nullptr;
  obs::Gauge* arena_reserved_ = nullptr;
  obs::Gauge* arena_used_ = nullptr;
  obs::Gauge* merge_words_metric_ = nullptr;
  obs::Gauge* barrier_waits_metric_ = nullptr;
  obs::Gauge* mem_hot_metric_ = nullptr;
  obs::Gauge* mem_cold_metric_ = nullptr;
  obs::Gauge* mem_lane_metric_ = nullptr;
  // RunUntil may be called repeatedly; counters flush deltas against these.
  std::uint64_t compactions_flushed_ = 0;
  std::uint64_t edges_reclaimed_flushed_ = 0;
};

}  // namespace emis
