// Per-round collision resolution.
//
// Usage per round: BeginRound(); AddTransmitter(u, payload) for every
// transmitting node; ResolveListener(v) for every listening node. Cost is
// O(Σ deg(transmitter)) per round plus O(1) per listener, with epoch-stamped
// buffers so BeginRound is O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "radio/graph.hpp"
#include "radio/model.hpp"
#include "radio/rng.hpp"

namespace emis {

class Channel {
 public:
  /// The graph must outlive the channel.
  Channel(const Graph& graph, ChannelModel model)
      : graph_(&graph),
        model_(model),
        epoch_mark_(graph.NumNodes(), 0),
        hear_count_(graph.NumNodes(), 0),
        hear_payload_(graph.NumNodes(), 0) {}

  ChannelModel Model() const noexcept { return model_; }

  /// Enables per-link fading: every (transmitter, listener) signal is
  /// independently erased with probability `loss` each round. An erased
  /// signal neither delivers nor interferes (it does not contribute to
  /// collisions). loss = 0 restores the paper's reliable channel.
  void SetLoss(double loss, std::uint64_t seed) {
    EMIS_REQUIRE(loss >= 0.0 && loss < 1.0, "loss probability in [0, 1)");
    loss_ = loss;
    loss_rng_ = Rng(seed);
  }
  double Loss() const noexcept { return loss_; }

  void BeginRound() noexcept { ++epoch_; }

  /// Registers node u as transmitting `payload` this round. A node must not
  /// be registered twice in one round.
  void AddTransmitter(NodeId u, std::uint64_t payload) {
    const auto nbrs = graph_->Neighbors(u);
    if (loss_ > 0.0) {
      // Skip-sample the surviving links: each link survives independently
      // with probability 1 - loss, so the gap to the next survivor is
      // geometric and one RNG draw jumps straight to it. Cost is O(#delivered)
      // draws instead of O(deg) Bernoulli draws — the win on lossy channels
      // with high-degree transmitters.
      const double survive = 1.0 - loss_;
      const std::size_t deg = nbrs.size();
      for (std::size_t i = loss_rng_.GeometricSkip(survive); i < deg;
           i += 1 + loss_rng_.GeometricSkip(survive)) {
        Deliver(nbrs[i], payload);
      }
      return;
    }
    for (NodeId w : nbrs) Deliver(w, payload);
  }

  /// What listener v perceives this round under the channel model.
  /// The transmitter set for the round must be fully registered first.
  Reception ResolveListener(NodeId v) const noexcept {
    const std::uint32_t count = epoch_mark_[v] == epoch_ ? hear_count_[v] : 0;
    switch (model_) {
      case ChannelModel::kCd:
        if (count == 0) return {ReceptionKind::kSilence, 0};
        if (count == 1) return {ReceptionKind::kMessage, hear_payload_[v]};
        return {ReceptionKind::kCollision, 0};
      case ChannelModel::kNoCd:
        // A collision is indistinguishable from silence.
        if (count == 1) return {ReceptionKind::kMessage, hear_payload_[v]};
        return {ReceptionKind::kSilence, 0};
      case ChannelModel::kBeeping:
        // Any number of beeping neighbors is a single contentless beep.
        if (count >= 1) return {ReceptionKind::kBeep, 0};
        return {ReceptionKind::kSilence, 0};
    }
    return {ReceptionKind::kSilence, 0};
  }

  /// Number of transmitting neighbors of v this round (model-independent
  /// ground truth; used by tests and instrumentation, not by protocols).
  std::uint32_t TransmittingNeighbors(NodeId v) const noexcept {
    return epoch_mark_[v] == epoch_ ? hear_count_[v] : 0;
  }

 private:
  void Deliver(NodeId w, std::uint64_t payload) noexcept {
    if (epoch_mark_[w] != epoch_) {
      epoch_mark_[w] = epoch_;
      hear_count_[w] = 1;
      hear_payload_[w] = payload;
    } else {
      ++hear_count_[w];
    }
  }

  const Graph* graph_;
  ChannelModel model_;
  double loss_ = 0.0;
  Rng loss_rng_{0};
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> epoch_mark_;
  std::vector<std::uint32_t> hear_count_;
  std::vector<std::uint64_t> hear_payload_;
};

}  // namespace emis
